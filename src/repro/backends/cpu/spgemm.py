"""Vectorized SpGEMM (mxm) — expand, sort, reduce.

The row-merge (Gustavson) formulation: ``C[i,:] = ⊕_k A[i,k] ⊗ B[k,:]``.
Instead of per-row hash maps (the GPU strategy, see
:mod:`repro.backends.cuda_sim`), the CPU kernel materialises every partial
product — one per FLOP — then sorts by (row, col) flat key and segment-
reduces.  Memory is O(flops); for the benchmark scales this is the fastest
pure-NumPy strategy because every step is a single C-level pass.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...containers.csr import CSRMatrix
from ...containers.sparsevec import SparseVector
from ...core.descriptor import DEFAULT, Descriptor
from ...core.semiring import Semiring
from ...types import GrBType
from .segments import run_starts, segment_reduce
from .spmv import take_ranges

__all__ = ["spgemm_esr", "spgemm_masked_esr", "expand_products", "mask_keys_for"]


def expand_products(a: CSRMatrix, b: CSRMatrix, semiring: Semiring):
    """Materialise all partial products of ``A ⊗ B``.

    Returns ``(rows, cols, prods)`` — one entry per FLOP, ordered by A's
    storage order (row-major, so ``rows`` is nondecreasing).
    """
    a_rows = np.repeat(np.arange(a.nrows, dtype=np.int64), a.row_degrees())
    # For every A entry (i, k, av): expand B's row k.
    take, lens = take_ranges(b.indptr, a.indices)
    rows = np.repeat(a_rows, lens)
    cols = b.indices[take]
    prods = np.asarray(semiring.mult(np.repeat(a.values, lens), b.values[take]))
    return rows, cols, prods


def mask_keys_for(mask: CSRMatrix, desc: Descriptor) -> np.ndarray:
    """Sorted flat keys where a non-complemented mask allows output.

    Returns None-equivalent (empty) only when mask has no allowed entries;
    callers must check ``desc.complement_mask`` before using this (a
    complemented mask cannot prune this way).
    """
    rows = np.repeat(np.arange(mask.nrows, dtype=np.int64), mask.row_degrees())
    keys = rows * np.int64(mask.ncols) + mask.indices
    if desc.structural_mask:
        return keys
    return keys[mask.values.astype(bool)]


def spgemm_masked_esr(
    a: CSRMatrix,
    b: CSRMatrix,
    semiring: Semiring,
    out_type: GrBType,
    allowed_keys: np.ndarray,
) -> CSRMatrix:
    """Masked SpGEMM: drop partial products outside ``allowed_keys`` before
    the sort — the dominant cost when the mask is sparse (triangle counting's
    ``C<L> = L ⊗ L``).  ``allowed_keys`` are sorted flat row-major keys.
    """
    if a.nvals == 0 or b.nvals == 0 or allowed_keys.size == 0:
        return CSRMatrix.empty(a.nrows, b.ncols, out_type)
    rows, cols, prods = expand_products(a, b, semiring)
    if rows.size == 0:
        return CSRMatrix.empty(a.nrows, b.ncols, out_type)
    keys = rows * np.int64(b.ncols) + cols
    pos = np.searchsorted(allowed_keys, keys)
    pos_c = np.minimum(pos, allowed_keys.size - 1)
    keep = (allowed_keys[pos_c] == keys) & (pos < allowed_keys.size)
    keys = keys[keep]
    prods = prods[keep]
    if keys.size == 0:
        return CSRMatrix.empty(a.nrows, b.ncols, out_type)
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    prods = prods[order]
    starts = run_starts(keys)
    out_vals = segment_reduce(prods, starts, semiring.add, out_type.dtype)
    out_keys = keys[starts]
    out_rows = out_keys // b.ncols
    out_cols = out_keys - out_rows * b.ncols
    indptr = np.zeros(a.nrows + 1, dtype=np.int64)
    np.add.at(indptr, out_rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return CSRMatrix(a.nrows, b.ncols, indptr, out_cols, out_vals, out_type)


def spgemm_esr(
    a: CSRMatrix,
    b: CSRMatrix,
    semiring: Semiring,
    out_type: GrBType,
) -> CSRMatrix:
    """Expand–sort–reduce SpGEMM producing canonical CSR."""
    if a.nvals == 0 or b.nvals == 0:
        return CSRMatrix.empty(a.nrows, b.ncols, out_type)
    rows, cols, prods = expand_products(a, b, semiring)
    if rows.size == 0:
        return CSRMatrix.empty(a.nrows, b.ncols, out_type)
    keys = rows * np.int64(b.ncols) + cols
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    prods = prods[order]
    starts = run_starts(keys)
    out_vals = segment_reduce(prods, starts, semiring.add, out_type.dtype)
    out_keys = keys[starts]
    out_rows = out_keys // b.ncols
    out_cols = out_keys - out_rows * b.ncols
    indptr = np.zeros(a.nrows + 1, dtype=np.int64)
    np.add.at(indptr, out_rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return CSRMatrix(a.nrows, b.ncols, indptr, out_cols, out_vals, out_type)
