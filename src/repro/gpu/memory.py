"""Simulated device memory.

The allocator hands out :class:`DeviceBuffer` objects backed by host NumPy
arrays (the simulation computes on the host) while accounting for capacity
and traffic exactly as a real ``cudaMalloc``/``cudaMemcpy`` sequence would:
allocations count against the device's global memory, and every host↔device
copy is recorded so transfer time can be charged by the cost model.

Buffers are freed explicitly or by garbage collection (a finalizer returns
the bytes to the pool), mirroring RAII device vectors in CUSP/GBTL-CUDA.
"""

from __future__ import annotations

import weakref
from typing import Dict, Optional

import numpy as np

from ..exceptions import DeviceOutOfMemoryError, InvalidValueError

__all__ = ["DeviceBuffer", "DeviceAllocator", "MemoryStats"]


class MemoryStats:
    """Counters for allocations and transfers."""

    __slots__ = (
        "alloc_count",
        "free_count",
        "bytes_allocated_total",
        "h2d_count",
        "h2d_bytes",
        "d2h_count",
        "d2h_bytes",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.alloc_count = 0
        self.free_count = 0
        self.bytes_allocated_total = 0
        self.h2d_count = 0
        self.h2d_bytes = 0
        self.d2h_count = 0
        self.d2h_bytes = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class DeviceBuffer:
    """A device allocation holding a host-side mirror array."""

    def __init__(self, allocator: "DeviceAllocator", nbytes: int, array: np.ndarray):
        self._allocator = allocator
        self.nbytes = int(nbytes)
        self.array = array
        self._alive = True
        self._finalizer = weakref.finalize(self, allocator._release, self.nbytes)

    def free(self) -> None:
        """Explicitly return the allocation to the pool (idempotent)."""
        if self._alive:
            self._alive = False
            self._finalizer()

    @property
    def alive(self) -> bool:
        return self._alive

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "alive" if self._alive else "freed"
        return f"<DeviceBuffer {self.nbytes}B {state}>"


class DeviceAllocator:
    """Capacity-tracked allocator for the simulated device."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise InvalidValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity = int(capacity_bytes)
        self.in_use = 0
        self.stats = MemoryStats()

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.in_use

    def _reserve(self, nbytes: int) -> None:
        if nbytes > self.free_bytes:
            raise DeviceOutOfMemoryError(nbytes, self.free_bytes)
        self.in_use += nbytes
        self.stats.alloc_count += 1
        self.stats.bytes_allocated_total += nbytes

    def _release(self, nbytes: int) -> None:
        self.in_use = max(0, self.in_use - nbytes)
        self.stats.free_count += 1

    def alloc(self, shape, dtype) -> DeviceBuffer:
        """``cudaMalloc`` analogue: uninitialised device array."""
        arr = np.empty(shape, dtype=dtype)
        self._reserve(arr.nbytes)
        return DeviceBuffer(self, arr.nbytes, arr)

    def reserve(self, nbytes: int, record_h2d: bool = False) -> DeviceBuffer:
        """Capacity-only allocation (no host mirror array).

        Used when the simulation computes on existing host arrays and only
        needs the device-memory *accounting* — e.g. the cuda_sim backend's
        resident-container tracking.  With ``record_h2d`` the bytes also
        count as upload traffic.
        """
        nbytes = int(nbytes)
        self._reserve(nbytes)
        if record_h2d:
            self.stats.h2d_count += 1
            self.stats.h2d_bytes += nbytes
        return DeviceBuffer(self, nbytes, np.empty(0, dtype=np.uint8))

    def upload(self, host_array: np.ndarray) -> DeviceBuffer:
        """``cudaMemcpy`` H2D into a fresh allocation; records traffic."""
        arr = np.ascontiguousarray(host_array)
        self._reserve(arr.nbytes)
        self.stats.h2d_count += 1
        self.stats.h2d_bytes += arr.nbytes
        # The simulation shares the host array (read-only by convention);
        # copying here would double host memory for zero fidelity gain.
        return DeviceBuffer(self, arr.nbytes, arr)

    def download(self, buf: DeviceBuffer) -> np.ndarray:
        """``cudaMemcpy`` D2H; records traffic and returns the host array."""
        if not buf.alive:
            raise InvalidValueError("download from freed device buffer")
        self.stats.d2h_count += 1
        self.stats.d2h_bytes += buf.nbytes
        return buf.array

    def reset(self) -> None:
        """Drop accounting (buffers already handed out keep working)."""
        self.in_use = 0
        self.stats.reset()
