"""Skew-aware load balancing: row binning, lane schedules, A/B parity.

Covers the lane tentpole end to end:

- binning invariants: ``plan_rows`` is an exact partition of the row set;
  ``merge_partitions`` sizes sum to the unit total and differ by at most
  one (the equal-work guarantee);
- seed parity: forced ``scalar``/``vector`` schedules reproduce the
  ``simt`` divergence functions exactly, and ``off`` mode returns each
  kernel's native lane;
- bit-identity: auto lane selection matches every forced lane (and the
  lanes-off baseline) result-for-result across semirings, masks, and
  push/pull directions, on cuda_sim and on multi_sim at P in {1, 2, 4},
  with launch-counter parity between auto and forced runs;
- the A/B switch: ``configure`` validation, ``forced``/``lanes_disabled``
  scoping, and the profiler's ``name[lane]`` labels.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro as gb
from repro.backends.dispatch import get_backend, use_backend
from repro.core import operations as ops
from repro.core.semiring import LOR_LAND, MIN_PLUS, PLUS_TIMES
from repro.exceptions import InvalidValueError
from repro.generators.rmat import rmat
from repro.gpu import loadbalance as lb
from repro.gpu.device import get_device, reset_device
from repro.gpu.simt import divergence_thread_per_row, divergence_warp_per_row
from repro.testing.equivalence import assert_same


@pytest.fixture(autouse=True)
def fresh_device():
    get_backend("cuda_sim").evict_all()
    dev = reset_device()
    yield dev
    get_backend("cuda_sim").evict_all()
    reset_device()


row_lens = st.lists(st.integers(0, 2000), min_size=0, max_size=200).map(
    lambda xs: np.asarray(xs, dtype=np.int64)
)


# ---------------------------------------------------------------------------
# Binning invariants
# ---------------------------------------------------------------------------


class TestBinning:
    @given(lens=row_lens)
    @settings(max_examples=60, deadline=None)
    def test_plan_rows_is_exact_partition(self, lens):
        plan = lb.plan_rows(lens)
        merged = np.concatenate([plan.scalar, plan.vector, plan.merge])
        assert merged.size == lens.size
        assert np.array_equal(np.sort(merged), np.arange(lens.size))

    @given(lens=row_lens)
    @settings(max_examples=60, deadline=None)
    def test_bins_respect_cutoffs(self, lens):
        plan = lb.plan_rows(lens)
        assert np.all(lens[plan.scalar] <= 4)
        assert np.all((lens[plan.vector] > 4) & (lens[plan.vector] <= 256))
        assert np.all(lens[plan.merge] > 256)

    @given(units=st.integers(0, 10**6), tile=st.integers(2, 4096))
    @settings(max_examples=80, deadline=None)
    def test_merge_partitions_equal_work(self, units, tile):
        parts = lb.merge_partitions(units, tile)
        assert int(parts.sum()) == units
        if parts.size:
            assert np.all(parts <= tile)
            assert int(parts.max()) - int(parts.min()) <= 1

    def test_label_degrades_sensibly(self):
        assert lb.plan_rows(np.zeros(0, dtype=np.int64)).label == "scalar"
        assert lb.plan_rows(np.array([1, 2, 3])).label == "scalar"
        assert lb.plan_rows(np.array([10, 100])).label == "vector"
        assert lb.plan_rows(np.array([1000])).label == "merge"
        assert lb.plan_rows(np.array([1, 1000])).label == "binned"


# ---------------------------------------------------------------------------
# Seed parity: forced single lanes == the simt divergence functions
# ---------------------------------------------------------------------------


class TestSchedules:
    @given(lens=row_lens)
    @settings(max_examples=60, deadline=None)
    def test_scalar_matches_thread_per_row(self, lens):
        sched = lb.schedule(lens, "scalar")
        assert sched.divergence == divergence_thread_per_row(
            lens.astype(np.float64), 32
        )
        assert sched.threads == max(int(lens.size), 1) * 32
        assert sched.extra_read_parts == ()

    @given(lens=row_lens)
    @settings(max_examples=60, deadline=None)
    def test_vector_matches_warp_per_row(self, lens):
        sched = lb.schedule(lens, "vector")
        assert sched.divergence == divergence_warp_per_row(
            lens.astype(np.float64), 32
        )
        assert sched.extra_read_parts == ()

    @given(lens=row_lens)
    @settings(max_examples=60, deadline=None)
    def test_schedules_well_formed(self, lens):
        for lane in ("scalar", "vector", "merge", "binned"):
            sched = lb.schedule(lens, lane)
            assert sched.divergence >= 1.0
            assert sched.threads >= 1
            for nbytes, cls in sched.extra_read_parts:
                assert nbytes >= 0.0 and cls in ("sequential", "gather")

    def test_unknown_lane_rejected(self):
        with pytest.raises(InvalidValueError):
            lb.schedule(np.array([1.0]), "warp")

    def test_merge_divergence_immune_to_skew(self):
        # One hub plus many singletons: thread-per-row serialises hard,
        # merge-path only pays path-length + bookkeeping overhead.
        skewed = np.array([4096] + [1] * 127, dtype=np.int64)
        scalar = lb.schedule(skewed, "scalar")
        merge = lb.schedule(skewed, "merge")
        assert merge.divergence < scalar.divergence / 4


# ---------------------------------------------------------------------------
# Lane choice and the A/B switch
# ---------------------------------------------------------------------------


class TestChoice:
    def test_off_mode_keeps_native(self):
        lens = np.array([1, 1000])
        with lb.lanes_disabled():
            assert lb.choose_lanes(lens, native="vector") == "vector"
            assert lb.choose_lanes(lens, native="scalar") == "scalar"
            assert lb.current_mode() == "off"
            assert not lb.lanes_enabled()
        assert lb.lanes_enabled()

    def test_forced_mode_pins_lane(self):
        lens = np.array([1, 1, 1])
        for lane in lb.LANES:
            with lb.forced(lane):
                assert lb.choose_lanes(lens) == lane

    def test_auto_short_circuits_on_nnz_max(self):
        # nnz_max <= scalar_cutoff: no binning pass needed at all.
        assert lb.choose_lanes(np.array([1, 2, 3]), nnz_max=3) == "scalar"

    def test_auto_empty_returns_native(self):
        assert lb.choose_lanes(np.zeros(0), native="vector") == "vector"

    def test_configure_validation(self):
        with pytest.raises(InvalidValueError):
            lb.configure(mode="warp")
        with pytest.raises(InvalidValueError):
            lb.configure(scalar_cutoff=0)
        with pytest.raises(InvalidValueError):
            lb.configure(vector_cutoff=4)  # must exceed scalar_cutoff (4)
        with pytest.raises(InvalidValueError):
            lb.configure(merge_tile=1)
        assert lb.current_mode() == "auto"

    def test_configure_cutoffs_scoped_restore(self):
        lb.configure(scalar_cutoff=8, vector_cutoff=64)
        try:
            plan = lb.plan_rows(np.array([6, 100]))
            assert plan.scalar.size == 1 and plan.merge.size == 1
        finally:
            lb.configure(scalar_cutoff=4, vector_cutoff=256)

    def test_forced_rejects_unknown(self):
        with pytest.raises(InvalidValueError):
            with lb.forced("warp"):
                pass  # pragma: no cover


# ---------------------------------------------------------------------------
# Bit-identity across lanes, semirings, masks, and backends
# ---------------------------------------------------------------------------


def _skewed_graph():
    return rmat(scale=8, edge_factor=8, seed=7, a=0.57, weighted=True)


def _kernel_launch_count(dev):
    return sum(1 for r in dev.profiler.records if r.kind == "kernel")


class TestBitIdentity:
    @pytest.mark.parametrize("semiring", [PLUS_TIMES, MIN_PLUS, LOR_LAND])
    @pytest.mark.parametrize("direction", ["push", "pull"])
    def test_auto_matches_forced_cuda_sim(self, semiring, direction):
        g = _skewed_graph()
        n = g.nrows
        rng = np.random.default_rng(11)
        idx = np.sort(rng.choice(n, n // 3, replace=False))
        u = gb.Vector.from_lists(idx, np.ones(idx.size), n, gb.FP64)

        def run(mode):
            get_backend("cuda_sim").evict_all()
            reset_device()
            with lb.forced(mode), use_backend("cuda_sim"):
                w = gb.Vector.sparse(gb.FP64, n)
                ops.mxv(w, g, u, semiring, direction=direction)
            return w, _kernel_launch_count(get_device())

        # All modes run the identical semantic function, so even the
        # float PLUS fold is bit-for-bit reproducible, not just the
        # exact MIN_PLUS / LOR_LAND folds.
        ref, launches_off = run("off")
        for mode in ("auto", "scalar", "vector", "merge"):
            got, launches = run(mode)
            assert_same(got, ref, exact=True)
            assert launches == launches_off

    @pytest.mark.parametrize("masked", [False, True])
    def test_auto_matches_forced_masked_mxm(self, masked):
        g = rmat(scale=6, edge_factor=8, seed=3, a=0.57, weighted=True)
        mask = g if masked else None

        def run(mode):
            get_backend("cuda_sim").evict_all()
            reset_device()
            with lb.forced(mode), use_backend("cuda_sim"):
                c = gb.Matrix.sparse(gb.FP64, g.nrows, g.ncols)
                if masked:
                    ops.mxm(c, g, g, MIN_PLUS, mask=mask, desc=gb.STRUCTURE_MASK)
                else:
                    ops.mxm(c, g, g, MIN_PLUS)
            return c, _kernel_launch_count(get_device())

        ref, launches_off = run("off")
        for mode in ("auto", "scalar", "vector", "merge"):
            got, launches = run(mode)
            assert_same(got, ref, exact=True)
            assert launches == launches_off

    @pytest.mark.parametrize("nparts", [1, 2, 4])
    def test_auto_matches_forced_multi_sim(self, nparts):
        g = _skewed_graph()
        n = g.nrows
        src = 0

        backend = get_backend("multi_sim").configure(nparts=nparts)
        # Warm one-time aux builds (distributed transpose) that are cached
        # across resets, so every measured mode sees the same cache state.
        with use_backend("multi_sim"):
            gb.algorithms.bfs_levels(g, src)

        def run(mode):
            backend.reset()
            with lb.forced(mode), use_backend("multi_sim"):
                levels = gb.algorithms.bfs_levels(g, src)
            return levels, backend.metrics()["kernel_launches"]

        ref, launches_off = run("off")
        for mode in ("auto", "scalar", "merge"):
            got, launches = run(mode)
            assert_same(got, ref, exact=True)
            # Lanes reschedule kernels; they never change the sequence.
            assert launches == launches_off

    def test_bfs_levels_auto_vs_scalar_bit_identical(self):
        g = _skewed_graph()
        with lb.forced("scalar"), use_backend("cuda_sim"):
            ref = gb.algorithms.bfs_levels(g, 0)
        get_backend("cuda_sim").evict_all()
        reset_device()
        with use_backend("cuda_sim"):
            got = gb.algorithms.bfs_levels(g, 0)
        assert got.to_lists() == ref.to_lists()


# ---------------------------------------------------------------------------
# Profiler lane labels
# ---------------------------------------------------------------------------


class TestLaneLabels:
    def test_by_kernel_carries_lane_label_on_skewed_push(self):
        g = _skewed_graph()
        n = g.nrows
        u = gb.Vector.from_lists([0, 1, 2], [1.0, 1.0, 1.0], n, gb.FP64)
        with use_backend("cuda_sim"):
            w = gb.Vector.sparse(gb.FP64, n)
            ops.mxv(w, g, u, PLUS_TIMES, direction="push")
        names = set(get_device().profiler.by_kernel())
        labeled = {nm for nm in names if nm.startswith("spmsv_push[")}
        # The skewed frontier should have left thread-per-row for a
        # labeled lane ("spmsv_push[binned]" or a single non-native lane).
        assert labeled, names

    def test_forced_native_lane_keeps_bare_name(self):
        g = _skewed_graph()
        n = g.nrows
        u = gb.Vector.from_lists([0, 1, 2], [1.0, 1.0, 1.0], n, gb.FP64)
        with lb.forced("scalar"), use_backend("cuda_sim"):
            w = gb.Vector.sparse(gb.FP64, n)
            ops.mxv(w, g, u, PLUS_TIMES, direction="push")
        names = set(get_device().profiler.by_kernel())
        assert "spmsv_push" in names
        assert not any(nm.startswith("spmsv_push[") for nm in names)
