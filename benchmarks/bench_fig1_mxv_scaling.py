"""Figure 1 — SpMV (mxv) runtime vs graph scale.

Reconstructed experiment: one dense-input mxv over (PLUS, TIMES) on R-MAT
graphs of increasing scale.  Shape claims:

- reference grows linearly in nnz and is slowest throughout;
- the simulated GPU shows the launch-latency floor (flat curve at small
  scales) and then memory-bound linear growth — the signature GPU SpMV
  curve;
- the GPU-vs-reference gap widens with scale.
"""

from __future__ import annotations

import pytest

import repro as gb
from repro.bench.harness import time_operation
from repro.bench.tables import format_series
from repro.core import operations as ops
from repro.core.semiring import PLUS_TIMES

from conftest import bench_backend, save_table

SCALES = [6, 8, 10, 12]
REFERENCE_MAX_SCALE = 10
BACKENDS = ["reference", "cpu", "cuda_sim"]


def make_case(scale):
    g = gb.generators.rmat(scale=scale, edge_factor=8, seed=20, weighted=True)
    u = gb.Vector.full(1.0, g.nrows, gb.FP64)

    def run():
        w = gb.Vector.sparse(gb.FP64, g.nrows)
        return ops.mxv(w, g, u, PLUS_TIMES)

    return run


_CASES = {s: make_case(s) for s in SCALES}


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("scale", SCALES)
def test_fig1_mxv(benchmark, backend, scale):
    if backend == "reference" and scale > REFERENCE_MAX_SCALE:
        pytest.skip("sequential baseline capped at scale 10")
    bench_backend(benchmark, backend, _CASES[scale], rounds=2)


def test_fig1_render(benchmark):
    def build():
        series = {b: [] for b in BACKENDS}
        for s in SCALES:
            for b in BACKENDS:
                if b == "reference" and s > REFERENCE_MAX_SCALE:
                    series[b].append(float("nan"))
                    continue
                series[b].append(
                    time_operation(b, _CASES[s], repeat=1 if b == "reference" else 3).seconds
                )
        fig = format_series(
            "Figure 1 — mxv runtime vs R-MAT scale (seconds)",
            "scale",
            SCALES,
            series,
        )
        save_table("fig1_mxv_scaling", fig)
        # Shape: gpu-sim beats reference increasingly with scale.
        gaps = [
            series["reference"][i] / series["cuda_sim"][i]
            for i, s in enumerate(SCALES)
            if s <= REFERENCE_MAX_SCALE
        ]
        assert gaps[-1] > gaps[0], f"GPU gap must widen with scale, got {gaps}"
        # Shape: launch-latency floor — small scales nearly flat on gpu-sim.
        assert series["cuda_sim"][1] < 3 * series["cuda_sim"][0], (
            "small-scale GPU times should sit near the launch floor"
        )
        # Shape: gpu-sim time grows with size at large scale (memory bound).
        assert series["cuda_sim"][-1] > series["cuda_sim"][0]
        return fig

    benchmark.pedantic(build, rounds=1, iterations=1)
