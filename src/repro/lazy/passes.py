"""Optimizer passes over one flushed lazy tape.

All passes are linear walks over the program-ordered node list produced by
:func:`repro.lazy.schedule._flush` (after dead-materialization liveness):

- :func:`fuse` — peephole fusion of adjacent producer/consumer pairs into
  single fused kernels (ewise→reduce, constant-fill→ewise);
- :func:`sink` — mask sinking: restrict a masked op's inputs to the mask's
  stored indices before the kernel instead of filtering after it;
- :func:`choose_directions` — loop-level push/pull selection for traversal
  products, replacing the per-op ``choose_direction`` heuristic where the
  whole-tape view proves push cannot lose;
- :func:`register_iso_hints` — detect iso-valued (constant) matrix operands
  once per version and register transfer-demotion hints with the device, so
  the upload charges indices only.

Every pass is a pure schedule decision: the values produced are bitwise
those of the eager pipeline (``lazy_disabled()``), only launches, transfers,
and materializations change.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.accumulate import merge_vector
from .ir import LazyValue, Node

__all__ = ["choose_directions", "fuse", "register_iso_hints", "sink"]

_EWISE_OPS = ("ewise_add_v", "ewise_mult_v", "ewise_apply_v")
_SINK_OPS = (
    "ewise_add_v",
    "ewise_mult_v",
    "ewise_apply_v",
    "apply_v",
    "fill_ewise_fused_v",
)
# Idempotent/selective add-monoids of traversal semirings: products with
# these never benefit from pull's dense sweep once the frontier is sparse,
# and push avoids materialising the transpose entirely.
_PUSH_MONOIDS = frozenset(
    {"LOR_MONOID", "LAND_MONOID", "MIN_MONOID", "MAX_MONOID", "ANY_MONOID"}
)


# ---------------------------------------------------------------------------
# Fusion
# ---------------------------------------------------------------------------


def fuse(nodes: List[Node]) -> List[Node]:
    """Fuse adjacent producer/consumer pairs; returns the new node list.

    The consumer node is mutated *in place* (``emit_scalar`` holds a
    reference to the recorded reduce node and reads its ``value`` after the
    flush); the producer is dropped from the list and never executes.
    """
    out: List[Node] = []
    i = 0
    while i < len(nodes):
        p = nodes[i]
        c = nodes[i + 1] if i + 1 < len(nodes) else None
        if c is not None and (
            _fuse_ewise_reduce(p, c) or _fuse_fill_ewise(p, c, nodes[i + 2 :])
        ):
            out.append(c)
            i += 2
            continue
        out.append(p)
        i += 1
    return out


def _fuse_ewise_reduce(p: Node, c: Node) -> bool:
    """ewise(+apply) → scalar reduce: one ``ewise_reduce_fused_v`` launch.

    The elementwise result still materializes (the fused run returns it
    alongside the scalar), so later consumers and a live owning handle are
    always satisfied — no extra legality conditions beyond adjacency.
    Requires a trivial merge on the producer: with a mask or accumulator
    the reduce would see the merged container, not the raw result.
    """
    if p.op not in _EWISE_OPS or not p.params.get("trivial"):
        return False
    if c.op != "reduce_v" or not c.scalar or not p.outputs:
        return False
    if c.inputs.get("src") is not p.outputs[0]:
        return False
    be = c.backend
    binop = p.params["binop"]
    unop = p.params.get("unop")
    union = bool(p.params.get("union", True))
    desc = p.params["desc"]
    monoid = c.params["monoid"]

    def run(inp: Dict[str, Any], params: Dict[str, Any]) -> Any:
        t, val = be.ewise_reduce_vector(
            inp["a"], inp["b"], binop, unop, union, monoid, inp["out"].type
        )
        tm = merge_vector(inp["out"], t, None, None, desc)
        return tm, val

    c.op = "ewise_reduce_fused_v"
    c.run = run
    c.inputs = {"a": p.inputs["a"], "b": p.inputs["b"], "out": p.inputs["out"]}
    c.params = {"binop": binop, "unop": unop, "union": union, "monoid": monoid}
    c.outputs = p.outputs
    return True


def _fuse_fill_ewise(p: Node, c: Node, rest: List[Node]) -> bool:
    """Constant fill feeding a union ewise: one ``fill_ewise_fused_v``.

    The dense fill is generated in registers inside the consumer's kernel,
    so the producer's scatter-assign launch *and* its container disappear.
    Legal only when the fill is observable nowhere else: its handle has
    moved on (the ewise overwrote it) and no later node consumes it.
    """
    if p.op != "assign_scalar_v" or not p.params.get("fill"):
        return False
    if c.op != "ewise_add_v" or not p.outputs:
        return False
    lv = p.outputs[0]
    fill_first = c.inputs.get("a") is lv
    if not fill_first and c.inputs.get("b") is not lv:
        return False
    other_key = "b" if fill_first else "a"
    other = c.inputs.get(other_key)
    if other is lv:
        return False
    out_in = p.inputs.get("out")
    if isinstance(out_in, LazyValue) or out_in is None:
        return False
    owner = lv.owner() if lv.owner is not None else None
    if owner is not None and getattr(owner, "_lazy", None) is lv:
        return False
    for n in rest:
        for v in n.inputs.values():
            if v is lv:
                return False
    be = c.backend
    value = p.params["value"]
    size = p.params["n"]
    fill_type = out_in.type
    binop = c.params["binop"]
    accum = c.params.get("accum")
    desc = c.params["desc"]

    def run(inp: Dict[str, Any], params: Dict[str, Any]) -> Any:
        other_c = inp["other"]
        if params.get("sink"):
            other_c = be.sink_restrict(other_c, inp.get("mask"))
        t = be.fill_ewise_vector(value, size, fill_type, other_c, binop, fill_first)
        return merge_vector(inp["out"], t, inp.get("mask"), accum, desc)

    c.op = "fill_ewise_fused_v"
    c.run = run
    c.inputs = {"other": other, "mask": c.inputs.get("mask"), "out": c.inputs["out"]}
    c.params = {"binop": binop, "accum": accum, "desc": desc}
    return True


# ---------------------------------------------------------------------------
# Mask sinking
# ---------------------------------------------------------------------------


def sink(nodes: List[Node]) -> None:
    """Mark masked elementwise/apply nodes for input pre-restriction.

    A mask's *stored* index set is a superset of its true positions, and
    the downstream merge re-filters exactly — so restricting the inputs to
    those indices first is value-safe for any non-complemented mask
    (structural or valued), with any accumulator or replace setting.  The
    run closures consult ``params["sink"]`` and call the backend's
    ``sink_restrict``.
    """
    for n in nodes:
        if n.op not in _SINK_OPS:
            continue
        if n.inputs.get("mask") is None:
            continue
        desc = n.params.get("desc")
        if desc is None or desc.complement_mask:
            continue
        n.params["sink"] = True


# ---------------------------------------------------------------------------
# Loop-level push/pull selection
# ---------------------------------------------------------------------------


def choose_directions(nodes: List[Node]) -> None:
    """Force push for traversal-shaped products over sparse matrices.

    The per-op ``choose_direction`` heuristic costs push vs pull from the
    current frontier alone; seen at tape level, a complement/structural
    masked product under an idempotent add-monoid over a sparse matrix
    (avg degree ≤ 32) is a traversal step where pull additionally pays the
    transpose materialization.  Only row-major-native orientations are
    forced (``vxm`` and the fused frontier step, where push walks the CSR
    rows directly); for ``mxv`` push would itself require the transpose,
    so that choice stays with the runtime heuristic.  Push and pull are
    value-identical — this is purely a launch/transfer decision.
    """
    for n in nodes:
        if n.op not in ("vxm", "frontier_step"):
            continue
        if n.params.get("direction") != "auto":
            continue
        sr = n.params.get("semiring")
        if sr is None or sr.add.name not in _PUSH_MONOIDS:
            continue
        desc = n.params.get("desc")
        frontier_style = n.op == "frontier_step" or (
            n.inputs.get("mask") is not None
            and desc is not None
            and (desc.complement_mask or desc.structural_mask)
        )
        if not frontier_style:
            continue
        a = n.inputs.get("a")
        if a is None or isinstance(a, LazyValue):
            continue
        if a.nvals > 32 * max(a.nrows, 1):
            continue
        n.params["direction"] = "push"


# ---------------------------------------------------------------------------
# Iso-value transfer demotion hints
# ---------------------------------------------------------------------------


def register_iso_hints(nodes: List[Node]) -> None:
    """Register upload-demotion hints for iso-valued matrix operands.

    An unweighted graph stored with constant weights (BFS adjacency, a
    uniformly weighted benchmark matrix) need not ship its value array
    host→device — a real backend materialises the constant on-device.  The
    scan runs once per ``(id, version)`` (negative results cache as 0.0);
    :meth:`repro.gpu.residency.ResidentSet.ensure` subtracts the hint when
    charging the upload.
    """
    from ..gpu.device import get_device

    hints = get_device().h2d_hints
    for n in nodes:
        for v in n.inputs.values():
            if v is None or isinstance(v, LazyValue) or not hasattr(v, "indptr"):
                continue
            key = (id(v), getattr(v, "version", 0))
            if key in hints:
                continue
            vals = v.values
            iso = bool(vals.size) and bool((vals == vals.flat[0]).all())
            hints[key] = float(vals.nbytes) if iso else 0.0
