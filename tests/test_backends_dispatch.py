"""Backend registry, selection context, custom backend registration."""

import threading

import pytest

import repro as gb
from repro.backends.base import Backend
from repro.backends.cpu.backend import CpuBackend
from repro.backends.dispatch import (
    available_backends,
    current_backend,
    get_backend,
    register_backend,
    set_default_backend,
    use_backend,
)


class TestRegistry:
    def test_builtins_available(self):
        names = available_backends()
        assert {"reference", "cpu", "cuda_sim"} <= set(names)

    def test_get_backend_singleton(self):
        assert get_backend("cpu") is get_backend("cpu")

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError):
            get_backend("tpu")

    def test_register_custom(self):
        class MyBackend(CpuBackend):
            name = "custom_test"

        register_backend("custom_test", MyBackend)
        assert get_backend("custom_test").name == "custom_test"
        with use_backend("custom_test"):
            assert current_backend().name == "custom_test"


class TestSelection:
    def test_default_is_cpu(self):
        assert current_backend().name == "cpu"

    def test_use_backend_context(self):
        with use_backend("reference"):
            assert current_backend().name == "reference"
        assert current_backend().name == "cpu"

    def test_nested_contexts(self):
        with use_backend("reference"):
            with use_backend("cuda_sim"):
                assert current_backend().name == "cuda_sim"
            assert current_backend().name == "reference"

    def test_use_backend_instance(self):
        inst = get_backend("reference")
        with use_backend(inst):
            assert current_backend() is inst

    def test_context_restored_on_exception(self):
        with pytest.raises(RuntimeError):
            with use_backend("reference"):
                raise RuntimeError("boom")
        assert current_backend().name == "cpu"

    def test_set_default_backend(self):
        set_default_backend("reference")
        try:
            assert current_backend().name == "reference"
        finally:
            set_default_backend("cpu")

    def test_set_default_validates(self):
        with pytest.raises(KeyError):
            set_default_backend("nope")

    def test_thread_local_override(self):
        results = {}

        def worker():
            # Fresh thread: no override stack, sees the process default.
            results["name"] = current_backend().name

        with use_backend("reference"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert results["name"] == "cpu"


class TestBackendABC:
    def test_cannot_instantiate_abstract(self):
        with pytest.raises(TypeError):
            Backend()

    def test_repr(self):
        assert "cpu" in repr(get_backend("cpu"))
