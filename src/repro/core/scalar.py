"""GraphBLAS scalar wrapper.

A :class:`Scalar` is a typed box that may be empty (``GrB_Scalar``).  It
exists so reductions-with-accumulate have a mutable, typed target and so the
API mirrors the spec; plain Python numbers are accepted anywhere a scalar
value is expected.
"""

from __future__ import annotations

from typing import Any, Optional

from ..exceptions import EmptyObjectError
from ..types import GrBType, from_value

__all__ = ["Scalar"]


class Scalar:
    """A typed, possibly-empty scalar container."""

    __slots__ = ("type", "_value", "_present")

    def __init__(self, typ: GrBType, value: Optional[Any] = None):
        self.type = typ
        self._present = value is not None
        self._value = typ.cast(value) if value is not None else None

    @classmethod
    def from_value(cls, value: Any) -> "Scalar":
        """Infer the domain from a Python value."""
        return cls(from_value(value), value)

    @property
    def nvals(self) -> int:
        return 1 if self._present else 0

    @property
    def is_empty(self) -> bool:
        return not self._present

    def set(self, value: Any) -> "Scalar":
        self._value = self.type.cast(value)
        self._present = True
        return self

    def clear(self) -> "Scalar":
        self._value = None
        self._present = False
        return self

    def get(self, default: Optional[Any] = None) -> Any:
        """The stored value, or ``default`` when empty."""
        return self._value if self._present else default

    @property
    def value(self) -> Any:
        """The stored value; raises :class:`EmptyObjectError` when empty."""
        if not self._present:
            raise EmptyObjectError("scalar holds no value")
        return self._value

    def __bool__(self) -> bool:
        return self._present and bool(self._value)

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, Scalar):
            return (
                self._present == other._present
                and (not self._present or self._value == other._value)
            )
        return self._present and self._value == other

    def __hash__(self):  # pragma: no cover - rarely used
        return hash((self.type.name, self._value if self._present else None))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = repr(self._value) if self._present else "empty"
        return f"Scalar({self.type.name}, {body})"
