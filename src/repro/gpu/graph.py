"""Capture/replay kernel graphs — the CUDA Graphs analogue.

Iterative GraphBLAS algorithms (BFS, PageRank, delta-stepping) re-dispatch
an identical kernel sequence every iteration, paying the per-launch overhead
each time.  CUDA Graphs amortise that: the first iteration is *captured*
(recorded launch by launch), later iterations are *replayed* as one graph
launch — one CPU→GPU dispatch regardless of how many kernels the graph
contains.

The simulated analogue keeps full semantic fidelity: every kernel's
semantics still execute on every iteration (the data changes!), and every
kernel's *compute* time is still charged.  What a replay elides is the
per-kernel launch overhead — the whole sequence is charged as a single
profiler record named ``graph_replay[<name>]`` carrying one launch overhead
plus the sum of the member kernels' busy times.

If an iteration's launch sequence diverges from the captured signature
(e.g. BFS flips push→pull mid-traversal), the iteration is charged kernel
by kernel at full cost and becomes the new capture — exactly the
"instantiate a new graph on topology change" cost model of real CUDA
Graphs.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

from ..sanitizer import runtime as _gbsan
from .costmodel import KernelWork
from .device import Device, get_device
from .profiler import LaunchRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle with kernel.py
    from .kernel import Kernel

__all__ = ["GraphStats", "KernelGraph", "NullKernelGraph", "REPLAY_PREFIX"]

REPLAY_PREFIX = "graph_replay["


class GraphStats:
    """Counters for one graph's capture/replay life cycle."""

    __slots__ = ("captures", "replays", "launches_elided", "overhead_saved_us")

    def __init__(self) -> None:
        self.captures = 0
        self.replays = 0
        self.launches_elided = 0
        self.overhead_saved_us = 0.0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class NullKernelGraph:
    """No-op graph for backends without launch-overhead accounting."""

    __slots__ = ("name", "stats")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.stats = GraphStats()

    @contextmanager
    def iteration(self) -> Iterator["NullGraph"]:
        yield self


class KernelGraph:
    """Records one iteration's launch sequence, then replays it cheaply.

    Usage (one graph per algorithm invocation)::

        graph = current_backend().kernel_graph("pagerank")
        while not converged:
            with graph.iteration():
                ...GraphBLAS ops...

    The first ``iteration()`` runs and charges normally while recording the
    kernel-name signature.  Subsequent iterations defer charging: at exit,
    if the sequence matches the signature, ONE aggregated launch record is
    emitted (single launch overhead + summed busy times); otherwise the
    kernels are charged individually and the new sequence becomes the
    signature.
    """

    __slots__ = ("name", "_device", "_signature", "_pending", "_capturing", "stats")

    def __init__(self, name: str, device: Optional[Device] = None) -> None:
        self.name = name
        self._device = device
        self._signature: Optional[Tuple[str, ...]] = None
        # (signature name, record name, busy us, work) per launch.  The
        # signature uses the bare kernel name while records carry the
        # lane-labeled display name, so a load-balancing lane flip between
        # iterations re-costs the launch without forcing a recapture.
        self._pending: List[Tuple[str, str, float, KernelWork]] = []
        self._capturing = False
        self.stats = GraphStats()

    # ------------------------------------------------------------------

    def _dev(self) -> Device:
        return self._device or get_device()

    @contextmanager
    def iteration(self) -> Iterator["KernelGraph"]:
        """Scope one algorithm iteration (capture or replay)."""
        dev = self._dev()
        if dev.active_graph is not None:
            # Nested graphs are not modeled; inner scopes pass through.
            yield self
            return
        self._capturing = self._signature is None
        self._pending = []
        san = _gbsan.ACTIVE
        if san is not None:
            san.on_graph_enter(self)
        dev.active_graph = self
        try:
            yield self
        finally:
            dev.active_graph = None
            self._commit(dev)

    # ------------------------------------------------------------------
    # launch() integration (called from repro.gpu.kernel.launch)
    # ------------------------------------------------------------------

    def on_launch(self, kernel: "Kernel", work: KernelWork, dev: Device) -> bool:
        """Route one launch through the graph.

        Returns True when the graph deferred the charge (replay mode); the
        caller then skips its own clock/profiler accounting.  During
        capture the launch is charged normally — only the name is recorded.
        """
        if self._capturing:
            self._pending.append((kernel.name, kernel.display_name, 0.0, work))
            return False
        busy = dev.cost_model.kernel_time_us(work) - dev.props.launch_overhead_us
        self._pending.append(
            (kernel.name, kernel.display_name, max(busy, 0.0), work)
        )
        return True

    # ------------------------------------------------------------------

    def _commit(self, dev: Device) -> None:
        san = _gbsan.ACTIVE
        pending, self._pending = self._pending, []
        if self._capturing:
            self._capturing = False
            if pending:
                self._signature = tuple(name for name, _, _, _ in pending)
                self.stats.captures += 1
            if san is not None:
                san.on_graph_commit(self, replayed=False)
            return
        if not pending:
            if san is not None:
                san.on_graph_commit(self, replayed=False)
            return  # nothing launched this iteration; nothing to charge
        names = tuple(name for name, _, _, _ in pending)
        overhead = dev.props.launch_overhead_us
        if names == self._signature:
            # One graph launch: single overhead + the members' busy times.
            busy_total = sum(busy for _, _, busy, _ in pending)
            dt = overhead + busy_total
            start = dev.clock_us
            dev.advance(dt)
            dev._profiler.record(
                LaunchRecord(
                    name=f"{REPLAY_PREFIX}{self.name}]",
                    kind="kernel",
                    start_us=start,
                    duration_us=dt,
                    flops=sum(w.flops for _, _, _, w in pending),
                    bytes=sum(w.bytes_total for _, _, _, w in pending),
                    threads=max(w.threads for _, _, _, w in pending),
                    members=tuple(
                        (rec_name, busy, w.flops, w.bytes_total)
                        for _, rec_name, busy, w in pending
                    ),
                )
            )
            self.stats.replays += 1
            self.stats.launches_elided += len(pending) - 1
            self.stats.overhead_saved_us += overhead * (len(pending) - 1)
            if san is not None:
                san.on_graph_commit(self, replayed=True)
            return
        # Sequence diverged: charge kernel by kernel and re-capture.
        for _, rec_name, busy, work in pending:
            dt = overhead + busy
            start = dev.clock_us
            dev.advance(dt)
            dev._profiler.record(
                LaunchRecord(
                    name=rec_name,
                    kind="kernel",
                    start_us=start,
                    duration_us=dt,
                    flops=work.flops,
                    bytes=work.bytes_total,
                    threads=work.threads,
                )
            )
        self._signature = names
        self.stats.captures += 1
        if san is not None:
            san.on_graph_commit(self, replayed=False)
