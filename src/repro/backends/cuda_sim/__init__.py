"""Simulated CUDA backend (see DESIGN.md, hardware substitution)."""

from .backend import CudaSimBackend

__all__ = ["CudaSimBackend"]
