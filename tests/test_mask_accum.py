"""The write pipeline: mask variants, accumulate, replace — spec semantics.

These run on every backend (the pipeline is shared, but backends may prune
with the mask, so cross-backend agreement here guards the pruning logic).
"""

import numpy as np
import pytest

import repro as gb
from repro.core import operations as ops
from repro.core.descriptor import Descriptor
from repro.core.operators import ABS, IDENTITY, PLUS, TIMES
from repro.core.semiring import PLUS_TIMES


@pytest.fixture
def u():
    return gb.Vector.from_lists([0, 1, 2, 3], [1.0, 2.0, 3.0, 4.0], 5)


def identity_into(w, src, mask=None, accum=None, desc=gb.DEFAULT):
    ops.apply(w, src, IDENTITY, mask=mask, accum=accum, desc=desc)
    return w


class TestNoMask:
    def test_plain_write_clears_old(self, backend, u):
        w = gb.Vector.from_lists([4], [99.0], 5)
        identity_into(w, u)
        assert 4 not in w and w.nvals == 4

    def test_accum_merges_with_old(self, backend, u):
        w = gb.Vector.from_lists([0, 4], [10.0, 99.0], 5)
        identity_into(w, u, accum=PLUS)
        assert w.get(0) == 11.0  # accumulated
        assert w.get(4) == 99.0  # old entry survives under accum
        assert w.get(1) == 2.0  # new entry passes through


class TestValuedMask:
    def test_mask_true_positions_written(self, backend, u):
        mask = gb.Vector.from_lists([0, 2], [True, True], 5, gb.BOOL)
        w = gb.Vector.sparse(gb.FP64, 5)
        identity_into(w, u, mask=mask)
        assert w.to_lists() == ([0, 2], [1.0, 3.0])

    def test_false_mask_value_blocks(self, backend, u):
        mask = gb.Vector.from_lists([0, 2], [True, False], 5, gb.BOOL)
        w = gb.Vector.sparse(gb.FP64, 5)
        identity_into(w, u, mask=mask)
        assert w.to_lists() == ([0], [1.0])

    def test_mask_false_keeps_old_without_replace(self, backend, u):
        mask = gb.Vector.from_lists([0], [True], 5, gb.BOOL)
        w = gb.Vector.from_lists([4], [99.0], 5)
        identity_into(w, u, mask=mask)
        assert w.get(4) == 99.0 and w.get(0) == 1.0

    def test_replace_clears_mask_false_old(self, backend, u):
        mask = gb.Vector.from_lists([0], [True], 5, gb.BOOL)
        w = gb.Vector.from_lists([4], [99.0], 5)
        identity_into(w, u, mask=mask, desc=gb.REPLACE)
        assert w.to_lists() == ([0], [1.0])


class TestStructuralMask:
    def test_presence_counts_even_if_false(self, backend, u):
        mask = gb.Vector.from_lists([0, 2], [False, False], 5, gb.BOOL)
        w = gb.Vector.sparse(gb.FP64, 5)
        identity_into(w, u, mask=mask, desc=gb.STRUCTURE_MASK)
        assert w.to_lists() == ([0, 2], [1.0, 3.0])


class TestComplementMask:
    def test_complement_valued(self, backend, u):
        mask = gb.Vector.from_lists([0, 1], [True, True], 5, gb.BOOL)
        w = gb.Vector.sparse(gb.FP64, 5)
        identity_into(w, u, mask=mask, desc=gb.COMP_MASK)
        assert w.to_lists() == ([2, 3], [3.0, 4.0])

    def test_complement_includes_false_valued_entries(self, backend, u):
        mask = gb.Vector.from_lists([0, 1], [True, False], 5, gb.BOOL)
        w = gb.Vector.sparse(gb.FP64, 5)
        identity_into(w, u, mask=mask, desc=gb.COMP_MASK)
        assert w.to_lists() == ([1, 2, 3], [2.0, 3.0, 4.0])

    def test_complement_structural(self, backend, u):
        mask = gb.Vector.from_lists([0, 1], [True, False], 5, gb.BOOL)
        w = gb.Vector.sparse(gb.FP64, 5)
        identity_into(w, u, mask=mask, desc=gb.COMP_STRUCTURE_MASK)
        assert w.to_lists() == ([2, 3], [3.0, 4.0])


class TestMaskAccumInteraction:
    def test_accum_under_mask(self, backend, u):
        # Mask-true positions: accum(old, new); mask-false: old untouched.
        mask = gb.Vector.from_lists([0, 4], [True, True], 5, gb.BOOL)
        w = gb.Vector.from_lists([0, 1], [10.0, 20.0], 5)
        identity_into(w, u, mask=mask, accum=PLUS)
        assert w.get(0) == 11.0
        assert w.get(1) == 20.0  # mask-false keeps old, no accum
        assert 2 not in w  # mask-false, no old

    def test_accum_mask_true_old_only_survives(self, backend, u):
        # Mask-true position with old entry but no new entry: Z keeps old.
        mask = gb.Vector.from_lists([4], [True], 5, gb.BOOL)
        w = gb.Vector.from_lists([4], [50.0], 5)
        identity_into(w, u, mask=mask, accum=PLUS)
        assert w.get(4) == 50.0

    def test_replace_with_accum(self, backend, u):
        mask = gb.Vector.from_lists([0], [True], 5, gb.BOOL)
        w = gb.Vector.from_lists([0, 4], [10.0, 99.0], 5)
        identity_into(w, u, mask=mask, accum=PLUS, desc=gb.REPLACE)
        assert w.to_lists() == ([0], [11.0])


class TestMatrixMask:
    def test_matrix_masked_write(self, backend):
        a = gb.Matrix.from_dense(np.arange(1.0, 5.0).reshape(2, 2))
        mask = gb.Matrix.from_lists([0], [1], [True], 2, 2, gb.BOOL)
        c = gb.Matrix.sparse(gb.FP64, 2, 2)
        ops.apply(c, a, IDENTITY, mask=mask)
        assert c.nvals == 1 and c.get(0, 1) == 2.0

    def test_matrix_complement_replace(self, backend):
        a = gb.Matrix.from_dense(np.ones((2, 2)))
        mask = gb.Matrix.from_lists([0], [0], [True], 2, 2, gb.BOOL)
        c = gb.Matrix.from_lists([0], [0], [42.0], 2, 2)
        ops.apply(
            c, a, IDENTITY, mask=mask, desc=Descriptor(complement_mask=True, replace=True)
        )
        assert (0, 0) not in c
        assert c.nvals == 3

    def test_mask_shape_checked(self, backend):
        a = gb.Matrix.from_dense(np.ones((2, 2)))
        mask = gb.Matrix.sparse(gb.BOOL, 3, 2)
        with pytest.raises(gb.DimensionMismatchError):
            ops.apply(gb.Matrix.sparse(gb.FP64, 2, 2), a, IDENTITY, mask=mask)

    def test_vector_mask_shape_checked(self, backend):
        u = gb.Vector.from_lists([0], [1.0], 3)
        mask = gb.Vector.sparse(gb.BOOL, 4)
        with pytest.raises(gb.DimensionMismatchError):
            ops.apply(gb.Vector.sparse(gb.FP64, 3), u, IDENTITY, mask=mask)


class TestOutputDomain:
    def test_result_cast_to_output_domain(self, backend):
        u = gb.Vector.from_lists([0], [2.7], 2)
        w = gb.Vector.sparse(gb.INT64, 2)
        ops.apply(w, u, ABS)
        assert w.type is gb.INT64
        assert w.get(0) == 2

    def test_masked_product_output_domain(self, backend):
        a = gb.Matrix.from_dense(np.ones((2, 2)))
        u = gb.Vector.from_dense(np.ones(2))
        w = gb.Vector.sparse(gb.INT64, 2)
        ops.mxv(w, a, u, PLUS_TIMES)
        assert w.type is gb.INT64 and w.get(0) == 2
