"""Placing batches on overlapping execution lanes (streams).

The simulated device executes kernels one at a time in wall clock, but its
*modeled* timelines overlap exactly like CUDA streams
(:mod:`repro.gpu.stream`: "work launched on different streams overlaps").
The scheduler exploits that: each batch's device cost is metered once by
the engine, then *placed* on the least-loaded of ``streams`` virtual lanes
— start = max(ready, lane free), completion = start + duration — so
concurrent batches overlap the way stream-dispatched launches would, and
per-query completion times (hence p50/p99 latency and sustained QPS) fall
out deterministically.

On ``multi_sim`` a single batch already spans every device (the
partitioned backend shards each batched launch block-row across the
cluster); lanes then model concurrent *batches* pipelined behind each
other, i.e. stream-level overlap on top of data-parallel sharding.

:func:`simulate_queueing` is the offline replay used by the fig9 harness:
given measured per-query service durations, it recomputes completions for
any arrival schedule without touching the device again — service cost in
the unbatched A/B is load-independent, so one execution pass yields the
whole latency-throughput curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["StreamLane", "BatchScheduler", "simulate_queueing"]


@dataclass
class StreamLane:
    """One virtual stream: a monotone timeline of placed batches."""

    index: int
    free_at_us: float = 0.0
    busy_us: float = 0.0
    batches: int = 0


@dataclass
class BatchScheduler:
    """Least-loaded placement of metered batches onto ``streams`` lanes."""

    streams: int = 2
    lanes: List[StreamLane] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.streams < 1:
            raise ValueError(f"streams must be >= 1, got {self.streams}")
        if not self.lanes:
            self.lanes = [StreamLane(i) for i in range(self.streams)]

    def place(self, ready_us: float, duration_us: float) -> Tuple[float, float, int]:
        """Schedule one batch; returns (start, completion, lane index)."""
        lane = min(self.lanes, key=lambda l: (l.free_at_us, l.index))
        start = max(ready_us, lane.free_at_us)
        completion = start + duration_us
        lane.free_at_us = completion
        lane.busy_us += duration_us
        lane.batches += 1
        return start, completion, lane.index

    @property
    def busy_us(self) -> float:
        """Total device time placed (sum over lanes)."""
        return sum(l.busy_us for l in self.lanes)

    @property
    def makespan_us(self) -> float:
        """Latest completion across lanes."""
        return max((l.free_at_us for l in self.lanes), default=0.0)

    def reset(self) -> None:
        self.lanes = [StreamLane(i) for i in range(self.streams)]


def simulate_queueing(
    arrivals_us: Sequence[float],
    durations_us: Sequence[float],
    streams: int = 2,
) -> np.ndarray:
    """FIFO completion times for jobs replayed over ``streams`` lanes.

    Jobs are taken in arrival order; each starts on the least-loaded lane
    at ``max(arrival, lane free)``.  Returns completions parallel to the
    inputs.  This is the same placement rule :class:`BatchScheduler`
    applies live, factored out so recorded service durations can be
    re-queued under a different offered load for free.
    """
    arr = np.asarray(arrivals_us, dtype=np.float64)
    dur = np.asarray(durations_us, dtype=np.float64)
    if arr.shape != dur.shape:
        raise ValueError("arrivals and durations must be parallel")
    order = np.argsort(arr, kind="stable")
    free = np.zeros(max(1, streams))
    out = np.empty_like(arr)
    for j in order:
        lane = int(np.argmin(free))
        start = max(arr[j], free[lane])
        free[lane] = start + dur[j]
        out[j] = free[lane]
    return out
