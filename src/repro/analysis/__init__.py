"""gbcheck: whole-program static analysis for the GraphBLAS runtime contracts.

The dynamic sanitizer (:mod:`repro.sanitizer`) verifies kernel access sets,
container version bumps, and lazy forcing points on the paths a workload
happens to execute.  This package checks the same three contracts on *every*
path, statically: it parses the whole ``src/repro`` tree, builds a
module-level call graph and per-function summaries, and runs interprocedural
dataflow rules plus a suppression audit.  See ``docs/static_analysis.md``
for the rule catalog and the baseline workflow; ``tools/gbcheck.py`` is the
CLI and CI entry point.
"""

from .engine import Report, analyze_program, analyze_sources, analyze_tree
from .findings import Baseline, Finding, findings_from_json, findings_to_json
from .loader import Program
from .rules import DATAFLOW_RULES, KNOWN_RULES, SYNTACTIC_RULES

__all__ = [
    "Baseline",
    "DATAFLOW_RULES",
    "Finding",
    "KNOWN_RULES",
    "Program",
    "Report",
    "SYNTACTIC_RULES",
    "analyze_program",
    "analyze_sources",
    "analyze_tree",
    "findings_from_json",
    "findings_to_json",
]
