"""SpGEMM reduce-branch invariance: batched rows ≡ batch-of-1 rows.

Found by the serving layer's batched-vs-unbatched digest A/B (fig9): a
k-row SpMM (``R·M`` inside ``ppr_batch``) crossed the dense-accumulator
keyspace cap that a 1-row product stayed under, so the two ran different
reduce branches — dense ``np.bincount`` (sequential per-key fold) vs
stable-sort + ``np.add.reduceat`` (pairwise fold) — and float64 ``PLUS``
rows differed in the last ulp depending on *batch size*.  The fix makes
the fallback branch reduce with the same dense-accumulator strategy over
``np.unique``-compacted keys, so branch selection can never change bits.
"""

import numpy as np
import pytest

from repro.backends.dispatch import use_backend
from repro.core import operations as ops
from repro.core.matrix import Matrix
from repro.core.semiring import PLUS_TIMES
from repro.types import FP64

N = 8192  # keyspace per row; k*N crosses the 65536 dense cap at k=9
ROW_NNZ = 1000


def _build():
    rng = np.random.default_rng(42)
    # B: ROW_NNZ rows, each with a handful of columns, irrational-ish
    # values so reassociating a long PLUS fold moves the last ulp.
    b_rows = np.repeat(np.arange(ROW_NNZ, dtype=np.int64), 4)
    b_cols = rng.integers(0, 64, size=b_rows.size).astype(np.int64)
    sel = np.ones(b_rows.size, dtype=bool)
    # Dedup (row, col) pairs to keep the build canonical.
    keys = b_rows * 64 + b_cols
    _, first = np.unique(keys, return_index=True)
    sel[:] = False
    sel[first] = True
    b = Matrix.from_lists(
        b_rows[sel], b_cols[sel], rng.random(int(sel.sum())), N, N, FP64
    )
    a_cols = np.arange(ROW_NNZ, dtype=np.int64)
    a_vals = rng.random(ROW_NNZ)
    return b, a_cols, a_vals


def _product_rows(b, a_cols, a_vals, k):
    rows = np.repeat(np.arange(k, dtype=np.int64), a_cols.size)
    a = Matrix.from_lists(
        rows, np.tile(a_cols, k), np.tile(a_vals, k), k, N, FP64
    )
    out = Matrix.sparse(FP64, k, N)
    ops.mxm(out, a, b, PLUS_TIMES)
    return [out.container.row(i) for i in range(k)]


@pytest.mark.parametrize("backend", ["reference", "cpu", "cuda_sim"])
def test_spmm_rows_bit_identical_across_batch_sizes(backend):
    b, a_cols, a_vals = _build()
    with use_backend(backend):
        (i1, v1), = _product_rows(b, a_cols, a_vals, 1)
        for k in (9, 16):
            for idx, vals in _product_rows(b, a_cols, a_vals, k):
                assert np.array_equal(idx, i1)
                assert np.array_equal(vals, v1), (
                    f"k={k} row differs from k=1 on {backend}: reduce branch "
                    "changed the float accumulation order"
                )
