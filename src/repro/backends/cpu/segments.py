"""Segmented reduction — the workhorse of all vectorized sparse kernels.

Expand–sort–reduce kernels (SpMV, SpMSpV, SpGEMM) all end by folding runs of
values that share a key with the semiring's additive monoid.  For the
standard monoids this lowers onto ``np.ufunc.reduceat`` (a single C loop);
arbitrary user monoids fall back to a per-segment Python fold.

Segments are described by ``starts`` (indices of the first element of each
segment, strictly increasing, ``starts[0] == 0``); each segment is nonempty
and runs to the next start (last one to ``len(values)``).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from ...core.monoid import Monoid
from ...core.operators import BinaryOp

__all__ = ["segment_reduce", "ufunc_for", "run_starts"]

# BinaryOp name -> NumPy ufunc usable with reduceat.
_UFUNCS: Dict[str, np.ufunc] = {
    "PLUS": np.add,
    "TIMES": np.multiply,
    "MIN": np.minimum,
    "MAX": np.maximum,
    "LOR": np.logical_or,
    "LAND": np.logical_and,
    "LXOR": np.logical_xor,
}


def ufunc_for(op: BinaryOp) -> Optional[np.ufunc]:
    """The reduceat-capable ufunc for a binary op, if one exists."""
    uf = _UFUNCS.get(op.name)
    if uf is not None:
        return uf
    return op.func if isinstance(op.func, np.ufunc) else None


def run_starts(keys: np.ndarray) -> np.ndarray:
    """Start offsets of equal-key runs in a sorted key array."""
    if keys.size == 0:
        return np.empty(0, dtype=np.int64)
    return np.flatnonzero(
        np.concatenate(([True], keys[1:] != keys[:-1]))
    ).astype(np.int64)


def segment_reduce(
    values: np.ndarray,
    starts: np.ndarray,
    monoid: Monoid,
    out_dtype: np.dtype,
) -> np.ndarray:
    """Fold each (nonempty) segment of ``values`` with the monoid's operator.

    Returns one value per segment, cast to ``out_dtype``.
    """
    if starts.size == 0:
        return np.empty(0, dtype=out_dtype)
    name = monoid.op.name
    if name in ("FIRST", "ANY"):
        return values[starts].astype(out_dtype, copy=False)
    if name == "SECOND":
        ends = np.append(starts[1:], values.size) - 1
        return values[ends].astype(out_dtype, copy=False)
    uf = ufunc_for(monoid.op)
    if uf is not None:
        # reduceat needs the values in the ufunc's natural domain; logical
        # ufuncs return bool which out_dtype then fixes up.
        return uf.reduceat(values, starts).astype(out_dtype, copy=False)
    # Generic fallback: Python fold per segment.
    bounds = np.append(starts, values.size)
    out = np.empty(starts.size, dtype=out_dtype)
    for s in range(starts.size):
        lo, hi = bounds[s], bounds[s + 1]
        acc = values[lo]
        for k in range(lo + 1, hi):
            acc = monoid(acc, values[k])
        out[s] = acc
    return out
