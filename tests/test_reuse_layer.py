"""Iteration-aware reuse layer: aux caches, pooling, elision, kernel graphs.

Covers the PR's tentpole pieces end to end:

- version-stamped auxiliary-structure caches on the containers (cached
  transpose, degree vectors, row-nnz maxima) and their invalidation through
  the mutation counter;
- the pooled device allocator and its hit accounting;
- host→device transfer elision via per-container residency dirty bits;
- capture/replay kernel graphs and their launch-overhead amortisation;
- the acceptance comparison: PageRank with the reuse layer vs the same code
  with every reuse feature disabled (the PR 1 cost model), bit-identical
  results with far fewer charged launches and uploaded bytes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro as gb
from repro.backends.dispatch import get_backend, use_backend
from repro.containers.csr import CSRMatrix
from repro.core import operations as ops
from repro.core.semiring import LOR_LAND, PLUS_TIMES
from repro.gpu import reuse
from repro.gpu.costmodel import KernelWork
from repro.gpu.device import get_device, reset_device
from repro.gpu.graph import KernelGraph
from repro.gpu.kernel import Kernel, LaunchConfig, launch
from repro.gpu.memory import DeviceAllocator


@pytest.fixture(autouse=True)
def fresh_device():
    get_backend("cuda_sim").evict_all()
    dev = reset_device()
    yield dev
    get_backend("cuda_sim").evict_all()
    reset_device()


@st.composite
def dense_matrices(draw, max_dim=10):
    nrows = draw(st.integers(1, max_dim))
    ncols = draw(st.integers(1, max_dim))
    elems = st.floats(
        min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
    )
    data = draw(st.lists(elems, min_size=nrows * ncols, max_size=nrows * ncols))
    m = np.array(data, dtype=np.float64).reshape(nrows, ncols)
    mask = draw(
        st.lists(st.booleans(), min_size=nrows * ncols, max_size=nrows * ncols)
    )
    m[np.array(mask, dtype=bool).reshape(nrows, ncols)] = 0.0
    return m


# ---------------------------------------------------------------------------
# Auxiliary-structure caches
# ---------------------------------------------------------------------------


class TestAuxCache:
    def test_cached_transpose_is_memoised(self):
        m = CSRMatrix.from_dense(np.eye(4) + np.diag(np.ones(3), 1))
        t1 = m.cached_transpose()
        t2 = m.cached_transpose()
        assert t1 is t2

    def test_degree_caches_memoised(self):
        m = CSRMatrix.from_dense(np.ones((3, 4)))
        assert m.row_degrees() is m.row_degrees()
        assert m.in_degrees() is m.in_degrees()
        assert m.out_degrees() is m.row_degrees()
        assert m.row_nnz_max() == 4

    def test_version_bump_invalidates(self):
        m = CSRMatrix.from_dense(np.ones((3, 3)))
        t1 = m.cached_transpose()
        d1 = m.row_degrees()
        v = m.version
        m.bump_version()
        assert m.version == v + 1
        assert m.cached_transpose() is not t1
        assert m.row_degrees() is not d1

    @given(dense_matrices())
    @settings(max_examples=40, deadline=None)
    def test_cached_aux_bit_identical_to_fresh(self, dense):
        m = CSRMatrix.from_dense(dense)
        np.testing.assert_array_equal(
            m.cached_transpose().to_dense(), dense.T
        )
        np.testing.assert_array_equal(
            m.row_degrees(), np.diff(m.indptr)
        )
        np.testing.assert_array_equal(
            m.in_degrees(),
            np.bincount(m.indices, minlength=m.ncols).astype(np.int64),
        )

    def test_set_element_overwrite_recomputes_transpose(self):
        # In-place overwrite keeps the container object, so only the
        # mutation counter can invalidate the cached transpose.
        a = gb.Matrix.from_lists([0, 1], [1, 0], [1.0, 2.0], 2, 2)
        t_before = a.container.cached_transpose()
        a.set_element(0, 1, 9.0)
        t_after = a.container.cached_transpose()
        assert t_after is not t_before
        assert t_after.to_dense()[1, 0] == 9.0

    def test_vector_present_mask_invalidated(self):
        v = gb.Vector.from_lists([0, 2], [1.0, 2.0], 4)
        c = v.container
        m1 = c.present_mask()
        v.set_element(2, 5.0)  # overwrite: same container, bumped version
        assert v.container is c
        m2 = c.present_mask()
        np.testing.assert_array_equal(m1, m2)  # structure unchanged
        assert c.version >= 1

    def test_disabled_cache_rebuilds_every_call(self):
        m = CSRMatrix.from_dense(np.ones((3, 3)))
        with reuse.reuse_disabled():
            assert m.cached_transpose() is not m.cached_transpose()


class TestTransposeOncePerVersion:
    def test_pull_mode_products_transpose_at_most_once_per_version(self):
        # Acceptance: repeated pull/push products over a fixed matrix build
        # its transpose at most once until the matrix version changes.
        rng = np.random.default_rng(3)
        A = rng.random((64, 64))
        A[A < 0.7] = 0.0
        a = gb.Matrix.from_dense(A)
        u = gb.Vector.from_dense(rng.random(64))
        with use_backend("cuda_sim"):
            start = CSRMatrix.transpose_builds
            for _ in range(5):
                w = gb.Vector.sparse(gb.FP64, 64)
                ops.mxv(w, a, u, PLUS_TIMES)
                w2 = gb.Vector.sparse(gb.FP64, 64)
                ops.vxm(w2, u, a, PLUS_TIMES)
            built = CSRMatrix.transpose_builds - start
            assert built <= 1
            # A mutation allows exactly one rebuild.
            a.set_element(*map(int, np.argwhere(A > 0)[0]), 1.5)
            for _ in range(3):
                w3 = gb.Vector.sparse(gb.FP64, 64)
                ops.vxm(w3, u, a, PLUS_TIMES)
            assert CSRMatrix.transpose_builds - start <= built + 1


# ---------------------------------------------------------------------------
# Pooled allocator
# ---------------------------------------------------------------------------


class TestMemoryPool:
    def test_free_then_alloc_hits_pool(self):
        a = DeviceAllocator(1 << 20)
        a.alloc(16, np.float64).free()
        buf = a.alloc(16, np.float64)
        assert a.stats.alloc_count == 1
        assert a.stats.pool_hit_count == 1
        assert a.stats.pool_hit_bytes == buf.nbytes
        assert a.stats.pool_hit_rate == 0.5

    def test_size_classes_do_not_cross(self):
        a = DeviceAllocator(1 << 20)
        a.alloc(16, np.float64).free()  # class 128
        a.alloc(1024, np.float64)  # class 8192: no hit
        assert a.stats.pool_hit_count == 0
        assert a.stats.alloc_count == 2

    def test_capacity_unaffected_by_pool(self):
        a = DeviceAllocator(1 << 20)
        b1 = a.alloc(16, np.float64)
        b1.free()
        assert a.in_use == 0
        b2 = a.alloc(16, np.float64)
        assert a.in_use == b2.nbytes

    def test_reset_clears_pool(self):
        a = DeviceAllocator(1 << 20)
        a.alloc(16, np.float64).free()
        assert a.pooled_blocks == 1
        a.reset()
        assert a.pooled_blocks == 0
        a.alloc(16, np.float64)
        assert a.stats.pool_hit_count == 0

    def test_stats_dict_has_pool_and_elision_counters(self):
        d = DeviceAllocator(1 << 20).stats.as_dict()
        for key in (
            "pool_hit_count",
            "pool_hit_bytes",
            "pool_hit_rate",
            "h2d_elided_count",
            "h2d_elided_bytes",
        ):
            assert key in d


# ---------------------------------------------------------------------------
# Transfer elision / residency dirty bits
# ---------------------------------------------------------------------------


def _inputs(n=64, seed=0):
    rng = np.random.default_rng(seed)
    A = rng.random((n, n))
    A[A < 0.8] = 0.0
    return gb.Matrix.from_dense(A), gb.Vector.from_dense(rng.random(n))


class TestTransferElision:
    def test_clean_reuse_counts_elided_bytes(self):
        a, u = _inputs()
        keep = []
        with use_backend("cuda_sim"):
            for _ in range(3):
                w = gb.Vector.sparse(gb.FP64, 64)
                # Keep every product alive: dead outputs never launch (and
                # never consume the resident inputs) under the optimizer.
                keep.append(ops.mxv(w, a, u, PLUS_TIMES))
        stats = get_device().allocator.stats
        assert stats.h2d_elided_count > 0
        assert stats.h2d_elided_bytes > 0

    def test_in_place_mutation_forces_reupload(self):
        a, u = _inputs()
        with use_backend("cuda_sim"):
            w = gb.Vector.sparse(gb.FP64, 64)
            ops.mxv(w, a, u, PLUS_TIMES)
            before = get_device().allocator.stats.h2d_count
            # Overwrite an existing entry: container survives, version bumps.
            i, j = map(int, np.transpose(np.nonzero(a.to_dense()))[0])
            container_before = a.container
            a.set_element(i, j, 42.0)
            assert a.container is container_before
            w2 = gb.Vector.sparse(gb.FP64, 64)
            ops.mxv(w2, a, u, PLUS_TIMES)
            after = get_device().allocator.stats.h2d_count
        assert after > before  # dirty matrix re-uploaded
        assert w2.get(i) != w.get(i) or True  # semantics recomputed

    def test_chained_results_never_reupload(self):
        a, u = _inputs()
        with use_backend("cuda_sim"):
            w = gb.Vector.sparse(gb.FP64, 64)
            ops.mxv(w, a, u, PLUS_TIMES)
            w.nvals  # force the first product before reading the counter
            h2d_after_first = get_device().profiler.h2d_bytes
            for _ in range(4):
                w2 = gb.Vector.sparse(gb.FP64, 64)
                ops.mxv(w2, a, w, PLUS_TIMES)
                w = w2
        # Chained iterations stay on-device: no upload after the first op.
        assert get_device().profiler.h2d_bytes == h2d_after_first

    def test_disabled_elision_restores_seed_traffic(self):
        a, u = _inputs()
        with reuse.reuse_disabled():
            with use_backend("cuda_sim"):
                w = gb.Vector.sparse(gb.FP64, 64)
                ops.mxv(w, a, u, PLUS_TIMES)
                w2 = gb.Vector.sparse(gb.FP64, 64)
                ops.mxv(w2, a, w, PLUS_TIMES)
            stats = get_device().allocator.stats
            # Merged outputs are fresh containers: the second op uploads.
            assert stats.h2d_elided_count == 0


# ---------------------------------------------------------------------------
# Capture/replay kernel graphs
# ---------------------------------------------------------------------------


def _kernel(name, flops=1e6, nbytes=8e5):
    return Kernel(
        name=name,
        run=lambda *a, **k: None,
        work=lambda *a, **k: KernelWork(
            flops=flops, bytes_read=nbytes, threads=1 << 18
        ),
    )


class TestKernelGraph:
    def test_capture_then_replay_single_record(self):
        dev = get_device()
        k1, k2 = _kernel("ka"), _kernel("kb")
        g = KernelGraph("unit")
        for _ in range(3):
            with g.iteration():
                launch(k1, LaunchConfig.cover(1 << 18))
                launch(k2, LaunchConfig.cover(1 << 18))
        assert g.stats.captures == 1
        assert g.stats.replays == 2
        assert g.stats.launches_elided == 2
        names = [r.name for r in dev.profiler.records if r.kind == "kernel"]
        assert names == ["ka", "kb", "graph_replay[unit]", "graph_replay[unit]"]

    def test_replay_charges_one_overhead(self):
        dev = get_device()
        k1, k2 = _kernel("ka"), _kernel("kb")
        overhead = dev.props.launch_overhead_us
        dt1 = dev.cost_model.kernel_time_us(k1.work())
        dt2 = dev.cost_model.kernel_time_us(k2.work())
        g = KernelGraph("unit")
        for _ in range(2):
            with g.iteration():
                launch(k1, LaunchConfig.cover(1 << 18))
                launch(k2, LaunchConfig.cover(1 << 18))
        replay = [r for r in dev.profiler.records if r.name.startswith("graph_replay")]
        assert len(replay) == 1
        expected = overhead + (dt1 - overhead) + (dt2 - overhead)
        assert replay[0].duration_us == pytest.approx(expected)
        assert g.stats.overhead_saved_us == pytest.approx(overhead)

    def test_sequence_divergence_recaptures(self):
        dev = get_device()
        k1, k2, k3 = _kernel("ka"), _kernel("kb"), _kernel("kc")
        g = KernelGraph("unit")
        with g.iteration():
            launch(k1, LaunchConfig.cover(1 << 18))
        with g.iteration():  # diverges: charged per-kernel, re-captured
            launch(k2, LaunchConfig.cover(1 << 18))
            launch(k3, LaunchConfig.cover(1 << 18))
        with g.iteration():  # matches the new signature: replay
            launch(k2, LaunchConfig.cover(1 << 18))
            launch(k3, LaunchConfig.cover(1 << 18))
        assert g.stats.captures == 2
        assert g.stats.replays == 1
        names = [r.name for r in dev.profiler.records if r.kind == "kernel"]
        assert names == ["ka", "kb", "kc", "graph_replay[unit]"]

    def test_replay_preserves_semantics(self):
        # The semantic function must run on every iteration, replay or not.
        calls = []
        k = Kernel(
            name="count",
            run=lambda: calls.append(1),
            work=lambda: KernelWork(flops=1e6, bytes_read=8e5, threads=1 << 18),
        )
        g = KernelGraph("unit")
        for _ in range(4):
            with g.iteration():
                launch(k, LaunchConfig.cover(1 << 18))
        assert len(calls) == 4

    def test_disabled_graphs_use_null_graph(self):
        with reuse.reuse_disabled():
            g = get_backend("cuda_sim").kernel_graph("x")
        with g.iteration():
            pass
        assert g.stats.captures == 0 and g.stats.replays == 0


# ---------------------------------------------------------------------------
# Cross-backend identity with all caches hot
# ---------------------------------------------------------------------------


class TestBackendIdentity:
    def test_bfs_identical_with_and_without_reuse(self):
        g = gb.generators.rmat(scale=8, edge_factor=6, seed=11, weighted=False)
        results = {}
        for label in ("on", "off"):
            get_backend("cuda_sim").evict_all()
            reset_device()
            if label == "off":
                with reuse.reuse_disabled():
                    with use_backend("cuda_sim"):
                        results[label] = gb.algorithms.bfs_levels(g, 0).to_lists()
            else:
                with use_backend("cuda_sim"):
                    results[label] = gb.algorithms.bfs_levels(g, 0).to_lists()
        assert results["on"] == results["off"]

    def test_cached_structures_identical_across_backends(self):
        g = gb.generators.rmat(scale=7, edge_factor=6, seed=13)
        outputs = []
        for b in ("reference", "cpu", "cuda_sim"):
            get_backend("cuda_sim").evict_all()
            reset_device()
            with use_backend(b):
                u = gb.Vector.from_dense(np.ones(g.nrows))
                w = gb.Vector.sparse(gb.FP64, g.nrows)
                ops.vxm(w, u, g, PLUS_TIMES)  # exercises cached transpose
                outputs.append(w.to_lists())
        assert outputs[0] == outputs[1] == outputs[2]


# ---------------------------------------------------------------------------
# Acceptance: PageRank vs the PR 1 cost model
# ---------------------------------------------------------------------------


class TestPageRankAcceptance:
    def test_scale12_launches_and_h2d(self):
        g = gb.generators.rmat(scale=12, edge_factor=8, seed=7)

        def run():
            get_backend("cuda_sim").evict_all()
            reset_device()
            with use_backend("cuda_sim"):
                r = gb.algorithms.pagerank(g, tol=0.0, max_iter=20)
            dev = get_device()
            return r, dev.profiler.launch_count, dev.profiler.h2d_bytes

        r_new, launches_new, h2d_new = run()
        with reuse.reuse_disabled():
            r_old, launches_old, h2d_old = run()
        assert r_new.to_lists() == r_old.to_lists()  # bit-identical
        assert launches_old >= 5 * launches_new, (launches_old, launches_new)
        assert h2d_old >= 10 * h2d_new, (h2d_old, h2d_new)

    def test_bfs_replay_reduces_launch_overhead(self):
        g = gb.generators.rmat(scale=10, edge_factor=8, seed=21, weighted=False)

        def run():
            get_backend("cuda_sim").evict_all()
            reset_device()
            with use_backend("cuda_sim"):
                levels = gb.algorithms.bfs_levels(g, 0)
            return levels, get_device().profiler.replay_count

        levels_new, replays = run()
        with reuse.reuse_disabled():
            levels_old, replays_off = run()
        assert levels_new.to_lists() == levels_old.to_lists()
        assert replays > 0 and replays_off == 0
