"""Device kernels of the simulated CUDA backend.

Each kernel pairs the semantic computation (shared with the CPU backend's
vectorized kernels — the simulation's "device code") with a *work estimator*
that inspects the actual operands and reports FLOPs, bytes by access class,
thread count, and SIMT divergence, from which the cost model derives the
simulated duration.  The kernel structures mirror what GBTL-CUDA used via
CUSP:

- ``spmv_csr_vector`` — warp-per-row CSR SpMV (pull);
- ``spmsv_push`` — frontier-expansion scatter SpMSpV (push);
- ``spgemm_hash`` — block-per-row hash SpGEMM;
- ``ewise_map`` / ``apply_map`` — flat elementwise maps;
- ``reduce_tree`` — tree reduction;
- ``transpose_countsort`` — counting-sort transpose.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from ...containers.csr import CSRMatrix
from ...containers.sparsevec import SparseVector
from ...core.monoid import Monoid
from ...core.operators import BinaryOp, UnaryOp
from ...core.semiring import Semiring
from ...gpu import loadbalance
from ...gpu.costmodel import KernelWork
from ...gpu.kernel import Kernel
from ...sanitizer.access import Access
from ...gpu.simt import (
    COALESCING,
    divergence_thread_per_row,
    divergence_warp_per_row,
)
from ...core.descriptor import DEFAULT
from ...types import GrBType, promote
from ..cpu.ewise import ewise_add_mat, ewise_add_vec, ewise_mult_mat, ewise_mult_vec
from ..cpu.reduce_apply import apply_mat, apply_vec, reduce_mat_vector
from ..cpu.spgemm import spgemm_esr
from ..cpu.spmv import row_gather_product, scatter_product, take_ranges

__all__ = [
    "combine_coalescing",
    "laned",
    "mask_restrict",
    "push_lane",
    "pull_lane",
    "spgemm_lane",
    "SPMV_CSR_VECTOR",
    "SPMSV_PUSH",
    "SPMV_PUSH_FUSED",
    "SPMV_PULL_FUSED",
    "SPGEMM_HASH",
    "EWISE_ADD_V",
    "EWISE_MULT_V",
    "EWISE_ADD_M",
    "EWISE_MULT_M",
    "EWISE_APPLY_FUSED_V",
    "EWISE_APPLY_FUSED_M",
    "EWISE_REDUCE_FUSED_V",
    "FILL_EWISE_FUSED_V",
    "APPLY_V",
    "APPLY_M",
    "REDUCE_TREE",
    "REDUCE_ROWS",
    "TRANSPOSE_COUNTSORT",
]


def combine_coalescing(parts: Iterable[Tuple[float, str]]) -> Tuple[float, float]:
    """Fold (bytes, access-class) parts into (total_bytes, effective factor).

    The cost model divides bandwidth by one factor, so transfer time is
    ``total · factor / bw``; the byte-weighted mean of the per-class factors
    preserves the summed per-part times: ``total · f_eff = Σ bytes_i · f_i``.
    """
    total = 0.0
    weighted = 0.0
    for nbytes, klass in parts:
        f = COALESCING[klass]
        total += nbytes
        weighted += nbytes * f
    if total <= 0.0:
        return 0.0, 1.0
    return total, weighted / total


_IDX = 8  # bytes per index (int64)


def _reads_all(*args, **kwargs) -> Access:
    """Access declaration: every container operand is read, none written.

    All kernels in this backend are functional — they build fresh output
    containers rather than mutating operands — so the read set is exactly
    the container-like launch args (the sanitizer's tracking predicate
    filters out semirings, scalars, and ``None`` masks).
    """
    return Access(reads=tuple(args) + tuple(kwargs.values()))


def _no_declared_access(*args, **kwargs) -> Access:
    """Operands reach this kernel through thunks/arrays; the launch site
    declares them via ``san_reads``/``san_writes``."""
    return Access()


# ---------------------------------------------------------------------------
# Skew-aware lane scheduling (see repro.gpu.loadbalance)
# ---------------------------------------------------------------------------
#
# The row-structured kernels (SpMV/SpMSpV/frontier/SpGEMM) each have a
# *native* lane — the single strategy the seed kernels modeled.  Their work
# estimators now accept an optional ``lane`` chosen by the backend (or
# resolved here from the same policy when called directly), and derive the
# divergence/thread schedule from repro.gpu.loadbalance.  Forcing a
# kernel's native lane reproduces the pre-lanes estimate bit for bit.


def _lane_sched(lens, lane, native, threads_per_row: int = 32):
    resolved = lane if lane is not None else loadbalance.choose_lanes(lens, native=native)
    return loadbalance.schedule(lens, resolved, threads_per_row=threads_per_row)


_LANED: Dict[Tuple[str, str], Kernel] = {}


def laned(base: Kernel, lane: str, native: str) -> Kernel:
    """A lane-pinned variant of ``base`` (memoised per kernel/lane pair).

    The variant shares the semantic function and access declaration —
    lanes are pure schedule decisions — and passes ``lane=`` through to
    the work estimator.  The native lane returns ``base`` itself, so
    default-shaped launches stay bit- and label-identical to seed.
    """
    if lane == native:
        return base
    key = (base.name, lane)
    hit = _LANED.get(key)
    if hit is None:
        work = base.work

        def lane_work(*args, _work=work, _lane=lane, **kwargs):
            return _work(*args, lane=_lane, **kwargs)

        hit = Kernel(base.name, base.run, lane_work, accesses=base.accesses, lane=lane)
        _LANED[key] = hit
    return hit


def push_lane(csr: CSRMatrix, u: SparseVector) -> str:
    """Per-launch lane for a push (SpMSpV/frontier-expand) kernel: bin the
    frontier rows' degrees (an O(frontier) indptr lookup, no matrix pass)."""
    lens = csr.indptr[u.indices + 1] - csr.indptr[u.indices]
    return loadbalance.choose_lanes(lens, native="scalar")


def pull_lane(a: CSRMatrix, rows=None) -> str:
    """Per-launch lane for a pull (CSR-vector SpMV) kernel.

    The full-matrix case reads the version-cached ``row_degrees`` /
    ``row_nnz_max`` aux stats; the row-restricted case bins just the
    requested rows.
    """
    if rows is None:
        return loadbalance.choose_lanes(
            a.row_degrees(), nnz_max=a.row_nnz_max(), native="vector"
        )
    lens = a.indptr[np.asarray(rows) + 1] - a.indptr[np.asarray(rows)]
    return loadbalance.choose_lanes(lens, native="vector")


def spgemm_lane(a: CSRMatrix) -> str:
    """Per-launch lane for the hash SpGEMM: A's cached degree stats proxy
    the per-output-row FLOP distribution (heavy A rows expand the most)."""
    return loadbalance.choose_lanes(
        a.row_degrees(), nnz_max=a.row_nnz_max(), native="scalar"
    )


# ---------------------------------------------------------------------------
# SpMV — warp-per-row CSR-vector kernel (pull direction)
# ---------------------------------------------------------------------------


def _spmv_run(a, u, semiring, out_type, flip, rows):
    return row_gather_product(a, u, semiring, out_type, flip=flip, rows=rows)


def _spmv_work(
    a: CSRMatrix, u: SparseVector, semiring, out_type, flip, rows, lane=None
) -> KernelWork:
    if rows is None:
        lens = a.row_degrees()
        nrows = a.nrows
    else:
        lens = a.indptr[np.asarray(rows) + 1] - a.indptr[np.asarray(rows)]
        nrows = len(rows)
    nnz = float(lens.sum())
    item = a.type.nbytes
    sched = _lane_sched(lens, lane, "vector")
    reads, coal = combine_coalescing(
        [
            (2.0 * nrows * _IDX, "sequential"),  # indptr
            (nnz * (_IDX + item), "segmented"),  # column indices + values
            (nnz * (u.type.nbytes + _IDX), "gather"),  # x[col] lookups (binary probe)
            *sched.extra_read_parts,  # lane bookkeeping (bins / merge path)
        ]
    )
    written = float(min(nrows, u.nvals * 8 + nrows)) * (out_type.nbytes + _IDX)
    return KernelWork(
        flops=2.0 * nnz,
        bytes_read=reads,
        bytes_written=written,
        threads=sched.threads if nrows else nrows * 32,
        divergence=sched.divergence,
        coalescing=coal,
    )


SPMV_CSR_VECTOR = Kernel("spmv_csr_vector", _spmv_run, _spmv_work, accesses=_reads_all)


# ---------------------------------------------------------------------------
# SpMSpV — frontier-expansion push kernel
# ---------------------------------------------------------------------------


def _mask_keep_fraction(mask, desc) -> float:
    """Expected fraction of expanded entries the effective mask lets through.

    A density estimate (the kernel would know only the mask bitmap, not the
    expansion): truthy coverage of the output space, complemented if asked.
    """
    if mask is None:
        return 1.0
    truthy = mask.nvals if desc.structural_mask else int(np.count_nonzero(mask.values))
    frac = truthy / max(mask.size, 1)
    if desc.complement_mask:
        frac = 1.0 - frac
    return min(max(frac, 0.02), 1.0)


def _spmsv_run(csr, u, semiring, out_type, flip, mask=None, desc=DEFAULT):
    return scatter_product(
        csr, u, semiring, out_type, flip=flip, mask=mask, desc=desc
    )


def _spmsv_work(
    csr: CSRMatrix, u: SparseVector, semiring, out_type, flip, mask=None, desc=DEFAULT,
    lane=None,
) -> KernelWork:
    lens = csr.indptr[u.indices + 1] - csr.indptr[u.indices]
    expanded = float(lens.sum())
    item = csr.type.nbytes
    sched = _lane_sched(lens, lane, "scalar")
    read_parts = [
        (2.0 * u.nvals * _IDX, "gather"),  # indptr probes at frontier rows
        (expanded * (_IDX + item), "segmented"),  # expanded row slices
        *sched.extra_read_parts,  # lane bookkeeping (bins / merge path)
    ]
    if mask is not None:
        read_parts.append((expanded * 1.0, "gather"))  # mask bitmap probes
    reads, coal_r = combine_coalescing(read_parts)
    # Scattered combine of duplicates (atomics on the output) — with an
    # in-kernel mask only the surviving entries are ever written, which is
    # the fusion win: atomic traffic scales with the unvisited set.
    kept = expanded * _mask_keep_fraction(mask, desc)
    writes, coal_w = combine_coalescing([(kept * (out_type.nbytes + _IDX), "atomic")])
    total = reads + writes
    coal = (reads * coal_r + writes * coal_w) / total if total else 1.0
    return KernelWork(
        flops=2.0 * kept,
        bytes_read=reads,
        bytes_written=writes,
        threads=sched.threads,
        divergence=sched.divergence,
        coalescing=coal,
    )


SPMSV_PUSH = Kernel("spmsv_push", _spmsv_run, _spmsv_work, accesses=_reads_all)


# ---------------------------------------------------------------------------
# Fused BFS frontier step — level assign + masked SpMSpV + merge, one launch
# ---------------------------------------------------------------------------
#
# The BFS loop body is three device ops (scatter levels, masked product,
# frontier merge).  A real GPU BFS runs them as one kernel: each frontier
# thread writes its level, expands its row, and test-and-sets unvisited
# neighbours.  The fused kernels reproduce that: one launch per hop instead
# of three, and the intermediate frontier products never travel through
# global memory as a standalone vector.


def _frontier_assign(levels, frontier, value):
    from ...core.assign import merge_region_vector

    idx = frontier.indices
    vals = np.full(idx.size, levels.type.cast(value), dtype=levels.type.dtype)
    return merge_region_vector(levels, idx.copy(), vals, idx, None, None, DEFAULT)


def _frontier_push_run(levels, frontier, a, value, semiring, desc):
    from ...core.accumulate import merge_vector

    new_levels = _frontier_assign(levels, frontier, value)
    out_t = semiring.result_type(frontier.type, a.type)
    t = scatter_product(
        a, frontier, semiring, out_t, flip=True, mask=new_levels, desc=desc
    )
    return new_levels, merge_vector(frontier, t, new_levels, None, desc)


def _frontier_push_work(levels, frontier, a, value, semiring, desc, lane=None) -> KernelWork:
    lens = a.indptr[frontier.indices + 1] - a.indptr[frontier.indices]
    expanded = float(lens.sum())
    item = a.type.nbytes
    kept = expanded * _mask_keep_fraction(levels, desc)
    sched = _lane_sched(lens, lane, "scalar")
    reads, coal_r = combine_coalescing(
        [
            (2.0 * frontier.nvals * _IDX, "gather"),  # indptr probes
            (expanded * (_IDX + item), "segmented"),  # row slices
            (expanded * 1.0, "gather"),  # visited-bitmap probes
            *sched.extra_read_parts,  # lane bookkeeping (bins / merge path)
        ]
    )
    writes, coal_w = combine_coalescing(
        [
            (kept * (frontier.type.nbytes + _IDX), "atomic"),  # frontier updates
            (frontier.nvals * (levels.type.nbytes + _IDX), "scatter"),  # levels
        ]
    )
    total = reads + writes
    coal = (reads * coal_r + writes * coal_w) / total if total else 1.0
    return KernelWork(
        flops=2.0 * kept + frontier.nvals,
        bytes_read=reads,
        bytes_written=writes,
        threads=sched.threads,
        divergence=sched.divergence,
        coalescing=coal,
    )


SPMV_PUSH_FUSED = Kernel(
    "spmv_push_fused", _frontier_push_run, _frontier_push_work, accesses=_reads_all
)


def _frontier_pull_run(levels, frontier, tcsr, value, semiring, desc):
    from ...core.accumulate import merge_vector
    from ..cpu.spmv import mask_pull_rows

    new_levels = _frontier_assign(levels, frontier, value)
    out_t = semiring.result_type(frontier.type, tcsr.type)
    rows = mask_pull_rows(new_levels, desc, tcsr.nrows)
    t = row_gather_product(tcsr, frontier, semiring, out_t, flip=True, rows=rows)
    return new_levels, merge_vector(frontier, t, new_levels, None, desc)


def _frontier_pull_work(levels, frontier, tcsr, value, semiring, desc, lane=None) -> KernelWork:
    # Pull over the unvisited rows only (the kernel skips settled vertices).
    unvisited = max(tcsr.nrows - levels.nvals - frontier.nvals, 1)
    lens = tcsr.row_degrees()
    nnz_frac = unvisited / max(tcsr.nrows, 1)
    nnz = float(lens.sum()) * nnz_frac
    item = tcsr.type.nbytes
    # Divergence follows the full degree distribution (the unvisited set is
    # a structural sample of it); threads scale the lane schedule down to
    # the unvisited fraction the kernel actually covers.
    sched = _lane_sched(lens, lane, "vector")
    reads, coal = combine_coalescing(
        [
            (2.0 * unvisited * _IDX, "sequential"),  # indptr
            (nnz * (_IDX + item), "segmented"),  # columns + values
            (nnz * (frontier.type.nbytes + _IDX), "gather"),  # frontier probes
            *sched.extra_read_parts,  # lane bookkeeping (bins / merge path)
        ]
    )
    writes = float(unvisited) * (frontier.type.nbytes + _IDX) + frontier.nvals * (
        levels.type.nbytes + _IDX
    )
    return KernelWork(
        flops=2.0 * nnz + frontier.nvals,
        bytes_read=reads,
        bytes_written=writes,
        threads=max(int(round(sched.threads * nnz_frac)), 1),
        divergence=sched.divergence,
        coalescing=coal,
    )


SPMV_PULL_FUSED = Kernel(
    "spmv_pull_fused", _frontier_pull_run, _frontier_pull_work, accesses=_reads_all
)


# ---------------------------------------------------------------------------
# Fused elementwise + apply — one pass, one launch
# ---------------------------------------------------------------------------


def _ewise_apply_run_v(u, v, binop, unop, union):
    t = ewise_add_vec(u, v, binop) if union else ewise_mult_vec(u, v, binop)
    return apply_vec(t, unop)


def _ewise_apply_run_m(a, b, binop, unop, union):
    t = ewise_add_mat(a, b, binop) if union else ewise_mult_mat(a, b, binop)
    return apply_mat(t, unop)


def _ewise_apply_work(x, y, binop, unop, union) -> KernelWork:
    n = float(x.nvals + y.nvals)
    n_out = n if union else float(min(x.nvals, y.nvals))
    item = max(x.type.nbytes, y.type.nbytes)
    reads, coal = combine_coalescing([(n * (item + _IDX), "sequential")])
    # One launch and one output pass — the separate ewise+apply pair writes
    # the intermediate and immediately re-reads it; fusing erases that round
    # trip (and one launch latency).
    return KernelWork(
        flops=n + n_out,
        bytes_read=reads,
        bytes_written=n_out * (item + _IDX),
        threads=max(int(n), 1),
        divergence=1.0,
        coalescing=coal,
    )


EWISE_APPLY_FUSED_V = Kernel(
    "ewise_apply_fused_v", _ewise_apply_run_v, _ewise_apply_work, accesses=_reads_all
)
EWISE_APPLY_FUSED_M = Kernel(
    "ewise_apply_fused_m", _ewise_apply_run_m, _ewise_apply_work, accesses=_reads_all
)


# ---------------------------------------------------------------------------
# Lazy-optimizer fused kernels — elementwise chains collapsed to one launch
# ---------------------------------------------------------------------------


def mask_restrict(container: SparseVector, mask: SparseVector) -> SparseVector:
    """Restrict ``container`` to the stored indices of ``mask``.

    Used by mask sinking: the stored-index set is a superset of the
    mask-true positions, and the downstream merge re-filters exactly, so
    the restriction is value-safe for non-complemented masks regardless of
    accumulator or replace.  Returns ``container`` unchanged when the
    restriction cannot shrink it (sinking then costs nothing).
    """
    if mask.nvals >= container.nvals or container.nvals == 0:
        return container
    keep = np.isin(container.indices, mask.indices)
    if keep.all():
        return container
    return SparseVector(
        container.size, container.indices[keep], container.values[keep], container.type
    )


def _ewise_reduce_run_v(u, v, binop, unop, union, monoid, out_type):
    t = ewise_add_vec(u, v, binop) if union else ewise_mult_vec(u, v, binop)
    if unop is not None:
        t = apply_vec(t, unop)
    # Cast to the destination type *inside* the kernel: the eager pipeline
    # reduces the merged (already-cast) container, so reducing pre-cast
    # values would diverge bitwise on domain-narrowing outputs.
    t = t.astype(out_type)
    val = monoid.result_type(t.type).cast(monoid.reduce_array(t.values, t.type))
    return t, val


def _ewise_reduce_work(u, v, binop, unop, union, monoid, out_type) -> KernelWork:
    n = float(u.nvals + v.nvals)
    n_out = n if union else float(min(u.nvals, v.nvals))
    item = max(u.type.nbytes, v.type.nbytes)
    reads, coal = combine_coalescing([(n * (item + _IDX), "sequential")])
    # The separate ewise + reduce_tree pair writes the intermediate and
    # immediately re-reads it (2·n_out·item in the tree's first pass);
    # fusing keeps partials in registers/shared memory, so only the ewise
    # input traffic and the block-level reduction partials remain.
    flops = n + n_out + (n_out if unop is not None else 0.0)
    return KernelWork(
        flops=flops,
        bytes_read=reads,
        bytes_written=n_out * (item + _IDX)
        + max(n_out / 256.0, 1.0) * out_type.nbytes,
        threads=max(int(n), 1),
        divergence=1.0,
        coalescing=coal,
    )


EWISE_REDUCE_FUSED_V = Kernel(
    "ewise_reduce_fused_v", _ewise_reduce_run_v, _ewise_reduce_work, accesses=_reads_all
)


def _fill_ewise_run_v(value, size, fill_type, other, binop, fill_first):
    # The fill operand is generated in registers — a dense constant vector
    # never touches device memory as a standalone container.
    fill = SparseVector(
        int(size),
        np.arange(int(size), dtype=np.int64),
        np.full(int(size), fill_type.cast(value), dtype=fill_type.dtype),
        fill_type,
    )
    if fill_first:
        return ewise_add_vec(fill, other, binop)
    return ewise_add_vec(other, fill, binop)


def _fill_ewise_work(value, size, fill_type, other, binop, fill_first) -> KernelWork:
    n = float(size)
    m = float(other.nvals)
    item = max(fill_type.nbytes, other.type.nbytes)
    reads, coal = combine_coalescing([(m * (item + _IDX), "sequential")])
    # Eager would scatter-assign n fill entries, then stream n+m entries
    # through the union; fused, the constant operand costs no memory
    # traffic at all — only the sparse operand is read.
    return KernelWork(
        flops=n + m,
        bytes_read=reads,
        bytes_written=n * (item + _IDX),
        threads=max(int(n), 1),
        divergence=1.0,
        coalescing=coal,
    )


FILL_EWISE_FUSED_V = Kernel(
    "fill_ewise_fused_v", _fill_ewise_run_v, _fill_ewise_work, accesses=_reads_all
)


# ---------------------------------------------------------------------------
# SpGEMM — hash-per-row kernel
# ---------------------------------------------------------------------------


def _spgemm_run(a, b, semiring, out_type):
    return spgemm_esr(a, b, semiring, out_type)


def _spgemm_work(a: CSRMatrix, b: CSRMatrix, semiring, out_type, lane=None) -> KernelWork:
    # FLOPs: one multiply+add per expanded partial product.
    _, lens = take_ranges(b.indptr, a.indices)
    expanded = float(lens.sum())
    item = a.type.nbytes
    # Per-output-row work drives divergence for a block-per-row kernel.
    row_flops = np.zeros(a.nrows, dtype=np.float64)
    if a.nvals:
        a_rows = np.repeat(np.arange(a.nrows, dtype=np.int64), a.row_degrees())
        np.add.at(row_flops, a_rows, lens.astype(np.float64))
    sched = _lane_sched(row_flops, lane, "scalar", threads_per_row=64)
    reads, coal = combine_coalescing(
        [
            (a.nvals * (_IDX + item), "segmented"),  # A entries
            (expanded * (_IDX + item), "gather"),  # B row slices per A entry
            *sched.extra_read_parts,  # lane bookkeeping (bins / merge path)
        ]
    )
    writes = expanded * (out_type.nbytes + _IDX)  # hash-table updates
    total = reads + writes
    coal = (reads * coal + writes * COALESCING["atomic"]) / total if total else 1.0
    return KernelWork(
        flops=2.0 * expanded,
        bytes_read=reads,
        bytes_written=writes,
        threads=sched.threads,
        divergence=sched.divergence,
        coalescing=coal,
    )


SPGEMM_HASH = Kernel("spgemm_hash", _spgemm_run, _spgemm_work, accesses=_reads_all)


def _spgemm_masked_run(a, b, semiring, out_type, allowed_keys):
    from ..cpu.spgemm import spgemm_masked_esr

    return spgemm_masked_esr(a, b, semiring, out_type, allowed_keys)


def _spgemm_masked_work(
    a: CSRMatrix, b: CSRMatrix, semiring, out_type, allowed_keys, lane=None
) -> KernelWork:
    """Masked hash SpGEMM: probes still expand every partial product, but
    hash-table writes only happen at mask positions, so write traffic (the
    atomic, worst-coalesced part) scales with the mask instead of the
    expansion."""
    _, lens = take_ranges(b.indptr, a.indices)
    expanded = float(lens.sum())
    item = a.type.nbytes
    row_flops = np.zeros(a.nrows, dtype=np.float64)
    if a.nvals:
        a_rows = np.repeat(np.arange(a.nrows, dtype=np.int64), a.row_degrees())
        np.add.at(row_flops, a_rows, lens.astype(np.float64))
    sched = _lane_sched(row_flops, lane, "scalar", threads_per_row=64)
    reads, coal_r = combine_coalescing(
        [
            (a.nvals * (_IDX + item), "segmented"),  # A entries
            (expanded * (_IDX + item), "gather"),  # B row slices
            (expanded * _IDX, "gather"),  # mask membership probes
            *sched.extra_read_parts,  # lane bookkeeping (bins / merge path)
        ]
    )
    # Writes bounded by mask size (each allowed key updated ~a few times).
    writes = min(float(allowed_keys.size) * 4.0, max(expanded, 1.0)) * (
        out_type.nbytes + _IDX
    )
    total = reads + writes
    coal = (reads * coal_r + writes * COALESCING["atomic"]) / total if total else 1.0
    return KernelWork(
        flops=2.0 * expanded,
        bytes_read=reads,
        bytes_written=writes,
        threads=sched.threads,
        divergence=sched.divergence,
        coalescing=coal,
    )


SPGEMM_HASH_MASKED = Kernel(
    "spgemm_hash_masked", _spgemm_masked_run, _spgemm_masked_work, accesses=_reads_all
)


# ---------------------------------------------------------------------------
# Elementwise maps
# ---------------------------------------------------------------------------


def _ewise_work_v(u: SparseVector, v: SparseVector, op) -> KernelWork:
    n = float(u.nvals + v.nvals)
    item = max(u.type.nbytes, v.type.nbytes)
    reads, coal = combine_coalescing([(n * (item + _IDX), "sequential")])
    return KernelWork(
        flops=n,
        bytes_read=reads,
        bytes_written=n * (item + _IDX),
        threads=max(int(n), 1),
        divergence=1.0,
        coalescing=coal,
    )


def _ewise_work_m(a: CSRMatrix, b: CSRMatrix, op) -> KernelWork:
    n = float(a.nvals + b.nvals)
    item = max(a.type.nbytes, b.type.nbytes)
    reads, coal = combine_coalescing([(n * (item + _IDX), "sequential")])
    return KernelWork(
        flops=n,
        bytes_read=reads,
        bytes_written=n * (item + _IDX),
        threads=max(int(n), 1),
        divergence=1.0,
        coalescing=coal,
    )


EWISE_ADD_V = Kernel(
    "ewise_add_v", lambda u, v, op: ewise_add_vec(u, v, op), _ewise_work_v,
    accesses=_reads_all,
)
EWISE_MULT_V = Kernel(
    "ewise_mult_v", lambda u, v, op: ewise_mult_vec(u, v, op), _ewise_work_v,
    accesses=_reads_all,
)
EWISE_ADD_M = Kernel(
    "ewise_add_m", lambda a, b, op: ewise_add_mat(a, b, op), _ewise_work_m,
    accesses=_reads_all,
)
EWISE_MULT_M = Kernel(
    "ewise_mult_m", lambda a, b, op: ewise_mult_mat(a, b, op), _ewise_work_m,
    accesses=_reads_all,
)


# ---------------------------------------------------------------------------
# Apply, reduce, transpose
# ---------------------------------------------------------------------------


def _apply_work_v(u: SparseVector, op) -> KernelWork:
    n = float(u.nvals)
    item = u.type.nbytes
    return KernelWork(
        flops=n,
        bytes_read=n * item,
        bytes_written=n * item,
        threads=max(int(n), 1),
    )


def _apply_work_m(a: CSRMatrix, op) -> KernelWork:
    n = float(a.nvals)
    item = a.type.nbytes
    return KernelWork(
        flops=n,
        bytes_read=n * item,
        bytes_written=n * item,
        threads=max(int(n), 1),
    )


APPLY_V = Kernel("apply_v", lambda u, op: apply_vec(u, op), _apply_work_v, accesses=_reads_all)
APPLY_M = Kernel("apply_m", lambda a, op: apply_mat(a, op), _apply_work_m, accesses=_reads_all)


def _reduce_tree_run(values: np.ndarray, monoid: Monoid, typ: GrBType):
    return monoid.reduce_array(values, typ)


def _reduce_tree_work(values: np.ndarray, monoid, typ) -> KernelWork:
    n = float(values.size)
    item = values.dtype.itemsize
    # log2(n) passes, but bytes dominated by the first: charge 2n reads.
    return KernelWork(
        flops=n,
        bytes_read=2.0 * n * item,
        bytes_written=max(n / 256.0, 1.0) * item,
        threads=max(int(n), 1),
    )


REDUCE_TREE = Kernel(
    "reduce_tree", _reduce_tree_run, _reduce_tree_work, accesses=_no_declared_access
)


def _reduce_rows_work(a: CSRMatrix, monoid) -> KernelWork:
    lens = a.row_degrees()
    n = float(a.nvals)
    item = a.type.nbytes
    return KernelWork(
        flops=n,
        bytes_read=n * item + a.nrows * 2 * _IDX,
        bytes_written=a.nrows * (item + _IDX),
        threads=max(a.nrows, 1) * 32,
        divergence=divergence_warp_per_row(lens),
    )


REDUCE_ROWS = Kernel(
    "reduce_rows", lambda a, monoid: reduce_mat_vector(a, monoid), _reduce_rows_work,
    accesses=_reads_all,
)


def _transpose_work(a: CSRMatrix) -> KernelWork:
    n = float(a.nvals)
    item = a.type.nbytes
    reads, coal = combine_coalescing(
        [
            (n * (_IDX + item), "sequential"),
            (n * (_IDX + item), "scatter"),  # counting-sort scatter phase
        ]
    )
    return KernelWork(
        flops=n,
        bytes_read=reads / 2,
        bytes_written=reads / 2,
        threads=max(int(n), 1),
        coalescing=coal,
    )


TRANSPOSE_COUNTSORT = Kernel(
    "transpose_countsort", lambda a: a.transpose(), _transpose_work, accesses=_reads_all
)


# ---------------------------------------------------------------------------
# Extract (gather) and assign (scatter) accounting kernels
# ---------------------------------------------------------------------------


def _gather_work(n_lookups: float, item: int) -> KernelWork:
    reads, coal = combine_coalescing([(n_lookups * (item + _IDX), "gather")])
    return KernelWork(
        flops=n_lookups,
        bytes_read=reads,
        bytes_written=n_lookups * (item + _IDX),
        threads=max(int(n_lookups), 1),
        coalescing=coal,
    )


def _gather_run(fn, n, item):
    # The run arg is a thunk computing the semantics; n/item size the work.
    return fn()


GATHER = Kernel(
    "gather_extract", _gather_run, lambda fn, n, item: _gather_work(n, item),
    accesses=_no_declared_access,
)


def _scatter_work(nvals: float, item: int) -> KernelWork:
    writes, coal = combine_coalescing([(nvals * (item + _IDX), "scatter")])
    return KernelWork(
        flops=nvals,
        bytes_read=nvals * (item + _IDX),
        bytes_written=writes,
        threads=max(int(nvals), 1),
        coalescing=coal,
    )


SCATTER_ASSIGN = Kernel(
    "scatter_assign", lambda n, item: None, lambda n, item: _scatter_work(n, item),
    accesses=_no_declared_access,
)


def _select_work(nvals: float, item: int) -> KernelWork:
    """select / indexed-apply: stream entries, evaluate predicate, compact
    with a prefix-sum (charged as an extra index pass)."""
    reads, coal = combine_coalescing(
        [
            (nvals * (item + 2 * _IDX), "sequential"),  # values + coords
            (nvals * _IDX, "sequential"),  # prefix-sum pass
        ]
    )
    return KernelWork(
        flops=2.0 * nvals,
        bytes_read=reads,
        bytes_written=nvals * (item + _IDX),
        threads=max(int(nvals), 1),
        coalescing=coal,
    )


def _select_run(fn, nvals, item):
    return fn()


SELECT_COMPACT = Kernel(
    "select_compact", _select_run, lambda fn, nvals, item: _select_work(nvals, item),
    accesses=_no_declared_access,
)
