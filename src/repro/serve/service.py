"""The multi-tenant graph-query service.

:class:`GraphService` ties the serving layer together: typed queries
(:mod:`.queries`) arrive from tenants into per-key pools (:mod:`.coalescer`),
close into batched launches executed by the engine (:mod:`.engine`), and
are placed on overlapping stream lanes (:mod:`.scheduler`).  The service is
a **discrete-event simulator over the device's own cost model**: arrivals
carry virtual timestamps (microseconds), batch costs come from the
simulator's deterministic accounting, and every latency quoted downstream
is ``completion − arrival`` in that shared virtual clock — bit-stable run
to run, machine to machine.

Life of a query::

    submit(tenant, query)           admission control: outstanding depth
        │                           over max_queue ⇒ typed Overloaded
        ▼
    pool[(graph, coalesce_key)]     waits ≤ max_wait_us, closes early at
        │                           max_batch (max_batch=1 = unbatched A/B)
        ▼
    engine.execute(batch)           one multi-source launch; duplicate
        │                           sources deduplicated
        ▼
    scheduler.place(...)            least-loaded stream lane; completion
        │                           timestamps every query in the batch
        ▼
    QueryRecord                     latency, batch size, deadline outcome

Per-tenant **weights** shape batch selection under saturation (see the
coalescer's fair drain), **max_queue** bounds each tenant's outstanding
work (queue-depth shedding), and per-query **deadlines** are accounted:
expired-before-dispatch queries are dropped (``drop_expired``) and
completions after deadline are counted as missed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..core.matrix import Matrix
from .coalescer import BatchPolicy, Coalescer, PendingQuery, PoolKey
from .engine import ExecutionEngine, GraphHandle
from .queries import Overloaded, Query, QueryResult
from .scheduler import BatchScheduler

__all__ = ["Tenant", "QueryRecord", "ServiceStats", "GraphService"]

DEFAULT_GRAPH = "default"


@dataclass
class Tenant:
    """One traffic source: a weight for fairness, a depth cap for shedding."""

    name: str
    weight: float = 1.0
    max_queue: int = 1024
    submitted: int = 0
    shed: int = 0


@dataclass
class QueryRecord:
    """The full accounting trail of one submitted query."""

    qid: int
    tenant: str
    graph: str
    query: Query
    arrival_us: float
    deadline_us: Optional[float] = None
    status: str = "queued"  # queued | done | expired | shed | stale
    start_us: float = 0.0
    completion_us: float = 0.0
    batch_size: int = 0
    lane: int = -1
    result: Optional[QueryResult] = None
    digest: Optional[str] = None

    @property
    def latency_us(self) -> float:
        return self.completion_us - self.arrival_us

    @property
    def deadline_met(self) -> Optional[bool]:
        """True/False for completed queries with deadlines, else None."""
        if self.status != "done" or self.deadline_us is None:
            return None
        return self.completion_us <= self.deadline_us


class ServiceStats:
    """Aggregates over a service run's query records."""

    def __init__(
        self,
        records: List[QueryRecord],
        scheduler: BatchScheduler,
        batch_sizes: Optional[List[int]] = None,
    ) -> None:
        self.records = records
        self._sched = scheduler
        self.batch_sizes = list(batch_sizes or [])

    # -- outcome counts -------------------------------------------------

    def _by_status(self, status: str) -> List[QueryRecord]:
        return [r for r in self.records if r.status == status]

    @property
    def completed(self) -> List[QueryRecord]:
        return self._by_status("done")

    @property
    def shed_count(self) -> int:
        return len(self._by_status("shed"))

    @property
    def expired_count(self) -> int:
        return len(self._by_status("expired"))

    @property
    def stale_count(self) -> int:
        """Queries dropped because their graph mutated while they queued."""
        return len(self._by_status("stale"))

    @property
    def deadline_missed_count(self) -> int:
        return sum(1 for r in self.records if r.deadline_met is False)

    # -- latency / throughput ------------------------------------------

    def latencies_us(
        self, tenant: Optional[str] = None, kind: Optional[str] = None
    ) -> np.ndarray:
        rs = (
            r
            for r in self.completed
            if (tenant is None or r.tenant == tenant)
            and (kind is None or r.query.kind == kind)
        )
        return np.array([r.latency_us for r in rs])

    def latency_percentile(self, p: float, **filters: Any) -> float:
        lat = self.latencies_us(**filters)
        if lat.size == 0:
            return float("nan")
        return float(np.percentile(lat, p))

    @property
    def sustained_qps(self) -> float:
        """Completions per second of virtual time, first arrival to last done."""
        done = self.completed
        if not done:
            return 0.0
        t0 = min(r.arrival_us for r in done)
        t1 = max(r.completion_us for r in done)
        if t1 <= t0:
            return float("inf")
        return len(done) / ((t1 - t0) / 1e6)

    @property
    def busy_us(self) -> float:
        return self._sched.busy_us

    @property
    def makespan_us(self) -> float:
        return self._sched.makespan_us

    @property
    def batch_size_histogram(self) -> Dict[int, int]:
        """{batch size: number of batches} — the coalescing-depth record."""
        hist: Dict[int, int] = {}
        for size in self.batch_sizes:
            hist[size] = hist.get(size, 0) + 1
        return dict(sorted(hist.items()))

    def tenant_summary(self) -> Dict[str, Dict[str, float]]:
        out: Dict[str, Dict[str, float]] = {}
        for t in sorted({r.tenant for r in self.records}):
            lat = self.latencies_us(tenant=t)
            out[t] = {
                "completed": float(lat.size),
                "shed": float(
                    sum(1 for r in self.records if r.tenant == t and r.status == "shed")
                ),
                "p50_us": float(np.percentile(lat, 50)) if lat.size else float("nan"),
                "p99_us": float(np.percentile(lat, 99)) if lat.size else float("nan"),
            }
        return out

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (no per-query records)."""
        return {
            "queries": len(self.records),
            "completed": len(self.completed),
            "shed": self.shed_count,
            "expired": self.expired_count,
            "stale": self.stale_count,
            "deadline_missed": self.deadline_missed_count,
            "sustained_qps": round(self.sustained_qps, 3),
            "p50_us": round(self.latency_percentile(50), 3),
            "p99_us": round(self.latency_percentile(99), 3),
            "busy_us": round(self.busy_us, 3),
            "makespan_us": round(self.makespan_us, 3),
            "batch_size_histogram": {
                str(k): v for k, v in self.batch_size_histogram.items()
            },
        }


class GraphService:
    """Async multi-tenant serving over shared resident graphs.

    "Async" in the queueing sense: :meth:`submit` returns an accepted
    :class:`QueryRecord` immediately (or raises :class:`Overloaded`), and
    the record's result materialises when its batch executes — at the size
    trigger, at the age trigger as virtual time advances, or at
    :meth:`drain`.  The :mod:`repro.serve.aio` facade adapts this to
    ``asyncio`` for callers that want real coroutines.
    """

    def __init__(
        self,
        backend: str = "cuda_sim",
        policy: Optional[BatchPolicy] = None,
        streams: int = 2,
        store_results: bool = True,
        store_digests: bool = True,
    ) -> None:
        self.engine = ExecutionEngine(backend)
        self.coalescer = Coalescer(policy)
        self.scheduler = BatchScheduler(streams=streams)
        self.tenants: Dict[str, Tenant] = {}
        self.store_results = store_results
        self.store_digests = store_digests
        self.records: List[QueryRecord] = []
        self.setup_us = 0.0
        self._now_us = 0.0
        self._next_qid = 0
        self._waiting: Dict[PoolKey, List[QueryRecord]] = {}
        self._inflight: List[Tuple[float, str]] = []  # (completion, tenant)
        self.batch_sizes: List[int] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register_graph(
        self, matrix: Matrix, name: str = DEFAULT_GRAPH, warm: bool = True
    ) -> GraphHandle:
        """Share ``matrix`` under ``name``; ``warm`` pre-pays upload+caches."""
        h = self.engine.register(name, matrix, warm=False)
        if warm:
            self.setup_us += self.engine.warm(h)
        return h

    def add_tenant(
        self, name: str, weight: float = 1.0, max_queue: int = 1024
    ) -> Tenant:
        if weight <= 0:
            raise ValueError(f"tenant weight must be > 0, got {weight}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        t = Tenant(name, weight=weight, max_queue=max_queue)
        self.tenants[name] = t
        return t

    def _tenant(self, name: str) -> Tenant:
        t = self.tenants.get(name)
        if t is None:
            t = self.add_tenant(name)
        return t

    @property
    def now_us(self) -> float:
        return self._now_us

    # ------------------------------------------------------------------
    # Submission / admission
    # ------------------------------------------------------------------

    def _outstanding(self, tenant: str, now_us: float) -> int:
        self._inflight = [e for e in self._inflight if e[0] > now_us]
        waiting = sum(
            1
            for recs in self._waiting.values()
            for r in recs
            if r.tenant == tenant
        )
        return waiting + sum(1 for e in self._inflight if e[1] == tenant)

    def submit(
        self,
        tenant: str,
        query: Query,
        graph: str = DEFAULT_GRAPH,
        arrival_us: Optional[float] = None,
        deadline_us: Optional[float] = None,
    ) -> QueryRecord:
        """Admit one query at ``arrival_us`` (default: the current clock).

        Advances virtual time to the arrival (closing any pools whose age
        trigger fires on the way), applies admission control, then pools
        the query — dispatching immediately if it fills its batch.  Raises
        :class:`Overloaded` on queue-depth shedding; the rejected query is
        still recorded with ``status="shed"``.
        """
        t = self._tenant(tenant)
        arrival = self._now_us if arrival_us is None else float(arrival_us)
        query.validate(self.engine.graph(graph).n)
        self.advance_to(arrival)
        t.submitted += 1
        rec = QueryRecord(
            qid=self._next_qid,
            tenant=tenant,
            graph=graph,
            query=query,
            arrival_us=arrival,
            deadline_us=deadline_us,
        )
        self._next_qid += 1
        self.records.append(rec)
        depth = self._outstanding(tenant, arrival)
        if depth + 1 > t.max_queue:
            rec.status = "shed"
            t.shed += 1
            raise Overloaded(tenant, depth, t.max_queue)
        version = self.engine.graph(graph).matrix.container.version
        self._evict_stale(graph, version, arrival)
        key = self.coalescer.add(
            graph,
            PendingQuery(rec.qid, tenant, query, arrival, deadline_us),
            version=version,
        )
        self._waiting.setdefault(key, []).append(rec)
        if self.coalescer.full(key):
            self._dispatch(key, arrival)
        return rec

    # ------------------------------------------------------------------
    # Event pump
    # ------------------------------------------------------------------

    def advance_to(self, now_us: float) -> None:
        """Move virtual time forward, firing age triggers in order."""
        if now_us < self._now_us:
            return
        while True:
            close = self.coalescer.next_close_us()
            if close is None or close > now_us:
                break
            for key in self.coalescer.due_keys(close):
                self._dispatch(key, close)
        self._now_us = now_us

    def drain(self) -> None:
        """Dispatch every pending pool at its age-trigger time."""
        while True:
            keys = self.coalescer.pending_keys()
            if not keys:
                break
            close = self.coalescer.next_close_us()
            now = max(self._now_us, close if close is not None else 0.0)
            self._dispatch(keys[0], now)
            self._now_us = max(self._now_us, now)

    def dispatch_next(self) -> bool:
        """Dispatch the single oldest pending pool (asyncio pump unit)."""
        keys = self.coalescer.pending_keys()
        if not keys:
            return False
        close = self.coalescer.next_close_us()
        now = max(self._now_us, close if close is not None else 0.0)
        self._dispatch(keys[0], now)
        self._now_us = max(self._now_us, now)
        return True

    def _evict_stale(self, graph: str, version: int, now_us: float) -> None:
        """Drop pools whose graph mutated since their queries were admitted.

        The queued queries were validated and admitted against the old
        container; answering them from the mutated graph would silently
        serve results for a graph the caller never submitted against.
        """
        dropped = self.coalescer.evict_stale(graph, version)
        if not dropped:
            return
        stale_qids = {p.qid for p in dropped}
        for key in [k for k in self._waiting if k[0] == graph]:
            kept = []
            for rec in self._waiting[key]:
                if rec.qid in stale_qids:
                    rec.status = "stale"
                    rec.completion_us = now_us
                else:
                    kept.append(rec)
            if kept:
                self._waiting[key] = kept
            else:
                del self._waiting[key]

    def mutate(self, graph: str, mutator: Any) -> None:
        """Apply ``mutator(matrix)`` to a served graph, safely.

        Pending pools for ``graph`` are flushed first — queries already
        admitted are answered against the graph they were submitted to —
        then the mutation runs (bumping the container version, which
        invalidates the engine's derived caches and marks any pool that
        somehow raced the flush as stale).
        """
        for key in [
            k for k in self.coalescer.pending_keys() if k[0] == graph
        ]:
            self._dispatch(key, self._now_us)
        mutator(self.engine.graph(graph).matrix)

    def _dispatch(self, key: PoolKey, now_us: float) -> None:
        # Defensive re-check: a pool whose graph container moved since
        # admission must not execute — drop it as stale instead.
        pver = self.coalescer.pool_version(key)
        cur = self.engine.graph(key[0]).matrix.container.version
        if pver is not None and pver != cur:
            self._evict_stale(key[0], cur, now_us)
            return
        weights = {name: t.weight for name, t in self.tenants.items()}
        batch = self.coalescer.drain(key, weights)
        if not batch:
            return
        taken = {p.qid for p in batch}
        recs_by_qid = {
            r.qid: r for r in self._waiting.get(key, []) if r.qid in taken
        }
        self._waiting[key] = [
            r for r in self._waiting.get(key, []) if r.qid not in taken
        ]
        if not self._waiting[key]:
            del self._waiting[key]
        # Deadline expiry: drop queries that could not possibly meet their
        # deadline (it passed before the batch even formed).
        live: List[PendingQuery] = []
        for p in batch:
            if p.deadline_us is not None and p.deadline_us < now_us:
                rec = recs_by_qid[p.qid]
                rec.status = "expired"
                rec.completion_us = now_us
            else:
                live.append(p)
        if not live:
            return
        graph, ckey = key
        results, duration_us = self.engine.execute(
            graph, ckey, [p.query for p in live]
        )
        start, completion, lane = self.scheduler.place(now_us, duration_us)
        self.batch_sizes.append(len(live))
        for p, res in zip(live, results):
            rec = recs_by_qid[p.qid]
            rec.status = "done"
            rec.start_us = start
            rec.completion_us = completion
            rec.batch_size = len(live)
            rec.lane = lane
            if self.store_results:
                rec.result = res
            if self.store_digests:
                rec.digest = res.digest()
            self._inflight.append((completion, p.tenant))

    # ------------------------------------------------------------------
    # Trace replay
    # ------------------------------------------------------------------

    def run_trace(self, submissions: Iterable[Any]) -> ServiceStats:
        """Feed a pre-generated trace (see :mod:`.traffic`) through the
        service, swallowing :class:`Overloaded` into shed accounting, then
        drain.  Returns the run's stats.
        """
        for sub in submissions:
            try:
                self.submit(
                    sub.tenant,
                    sub.query,
                    graph=sub.graph,
                    arrival_us=sub.arrival_us,
                    deadline_us=sub.deadline_us,
                )
            except Overloaded:
                pass
        self.drain()
        return self.stats()

    def stats(self) -> ServiceStats:
        return ServiceStats(self.records, self.scheduler, self.batch_sizes)
