"""k-truss decomposition via iterated masked SpGEMM.

The k-truss of a graph is the maximal subgraph in which every edge is
supported by at least k-2 triangles.  One GraphBLAS round computes every
edge's support with ``S<E> = E ⊗ E`` over (PLUS, PAIR) and drops
under-supported edges with ``select``; iterate to fixpoint.  This is the
HPEC GraphChallenge formulation.
"""

from __future__ import annotations

from ..core import operations as ops
from ..core.descriptor import STRUCTURE_MASK
from ..core.matrix import Matrix
from ..core.operators import ONE, VALUEGE
from ..core.semiring import PLUS_PAIR
from ..exceptions import InvalidValueError
from ..types import INT64

__all__ = ["ktruss"]


def ktruss(g: Matrix, k: int, max_rounds: int = 0) -> Matrix:
    """The k-truss subgraph's adjacency matrix (entries are edge supports).

    ``g`` must be symmetric with an empty diagonal; ``k >= 3``.  The result
    contains each surviving edge with its triangle-support count in the
    final truss.
    """
    if k < 3:
        raise InvalidValueError(f"k must be >= 3, got {k}")
    if g.nrows != g.ncols:
        raise InvalidValueError(f"adjacency must be square, got {g.shape}")
    n = g.nrows
    # Work on the pattern in INT64 (supports are counts).
    e = Matrix.sparse(INT64, n, n)
    ops.apply(e, g, ONE)
    limit = max_rounds if max_rounds > 0 else max(g.nvals, 1)
    for _ in range(limit):
        # Support of each surviving edge.
        s = Matrix.sparse(INT64, n, n)
        ops.mxm(s, e, e, PLUS_PAIR, mask=e, desc=STRUCTURE_MASK)
        survivors = Matrix.sparse(INT64, n, n)
        ops.select(survivors, s, VALUEGE, thunk=k - 2)
        if survivors.nvals == e.nvals:
            return survivors
        e = Matrix.sparse(INT64, n, n)
        ops.apply(e, survivors, ONE)
        if e.nvals == 0:
            return survivors
    return survivors
