"""Single-source shortest paths over the (MIN, PLUS) tropical semiring.

Two variants:

- :func:`sssp_bellman_ford` — the textbook relax-everything iteration
  ``d = min(d, d ⊗ A)``, n-1 rounds max, with negative-cycle detection;
- :func:`sssp` — the frontier-filtered variant (only vertices whose
  distance improved propagate next round), the GraphBLAS idiom GBTL uses;
  asymptotically the same but far less work on high-diameter graphs.

Both require nonnegative weights for meaningful early exit on the filtered
variant; Bellman–Ford itself is correct for negative weights (no negative
cycles).
"""

from __future__ import annotations

from ..core import operations as ops
from ..core.descriptor import Descriptor
from ..core.matrix import Matrix
from ..core.operators import EQ, IDENTITY, MIN
from ..core.semiring import MIN_PLUS
from ..core.vector import Vector
from ..exceptions import ExecutionError, IndexOutOfBoundsError
from ..types import BOOL, FP64

__all__ = ["sssp", "sssp_bellman_ford"]


class NegativeCycleError(ExecutionError):
    """Raised when Bellman–Ford fails to converge in n-1 rounds."""


def _init_dist(g: Matrix, source: int) -> Vector:
    if not 0 <= source < g.nrows:
        raise IndexOutOfBoundsError(f"source {source} outside [0, {g.nrows})")
    d = Vector.sparse(FP64, g.nrows)
    d.set_element(source, 0.0)
    return d


def sssp_bellman_ford(g: Matrix, source: int) -> Vector:
    """Distances from ``source``; unreachable vertices have no entry.

    ``g[i, j]`` is the weight of edge i→j.  Raises
    :class:`NegativeCycleError` if distances still improve after n-1
    relaxation rounds.
    """
    n = g.nrows
    d = _init_dist(g, source)
    for _ in range(max(n - 1, 1)):
        t = Vector.sparse(FP64, n)
        ops.vxm(t, d, g, MIN_PLUS)
        new_d = d.dup()
        ops.ewise_add(new_d, d, t, MIN)
        if new_d == d:
            return d
        d = new_d
    # One more round: any further improvement implies a negative cycle.
    t = Vector.sparse(FP64, n)
    ops.vxm(t, d, g, MIN_PLUS)
    probe = d.dup()
    ops.ewise_add(probe, d, t, MIN)
    if probe == d:
        return d
    raise NegativeCycleError("graph contains a negative-weight cycle")


def sssp(g: Matrix, source: int, direction: str = "auto") -> Vector:
    """Frontier-filtered SSSP (nonnegative weights).

    Each round only the vertices whose tentative distance improved last
    round relax their out-edges; terminates when the frontier drains.
    """
    n = g.nrows
    d = _init_dist(g, source)
    frontier = d.dup()
    while frontier.nvals:
        t = Vector.sparse(FP64, n)
        ops.vxm(t, frontier, g, MIN_PLUS, direction=direction)
        old = d.dup()
        ops.ewise_add(d, old, t, MIN)
        # New frontier: entries of d that differ from old (new or improved).
        unchanged = Vector.sparse(BOOL, n)
        ops.ewise_mult(unchanged, d, old, EQ)
        frontier = Vector.sparse(FP64, n)
        ops.apply(
            frontier,
            d,
            IDENTITY,
            mask=unchanged,
            desc=Descriptor(complement_mask=True, replace=True),
        )
    return d
