#!/usr/bin/env python
"""Inside the simulated GPU: profiling, memory, cost-model knobs, streams.

Runs SSSP on the cuda_sim backend and dissects what the "device" did:
per-kernel time/flops/bytes, PCIe traffic, the effect of ablating cost-model
terms, and a two-stream overlap demonstration — the observability a real
CUDA backend gives through nvprof, reproduced by the simulator substrate.

Run:  python examples/gpu_profiling.py
"""

import numpy as np

import repro as gb
from repro.backends.dispatch import get_backend
from repro.core import operations as ops
from repro.core.semiring import PLUS_TIMES
from repro.gpu import Kernel, KernelWork, LaunchConfig, Stream, launch
from repro.gpu.device import get_device, reset_device


def profile_sssp() -> None:
    g = gb.generators.rmat(scale=11, edge_factor=8, seed=5, weighted=True)
    reset_device()
    get_backend("cuda_sim").evict_all()
    with gb.use_backend("cuda_sim"):
        dist = gb.algorithms.sssp(g, 0)
    dev = gb.gpu.get_device()
    print(f"SSSP on rmat s11 reached {dist.nvals} vertices")
    print(f"simulated device time: {dev.clock_us:.1f} µs "
          f"({dev.profiler.launch_count} kernel launches)\n")
    print(dev.profiler.summary())
    stats = dev.allocator.stats
    print(f"\nPCIe: {stats.h2d_bytes / 1e6:.2f} MB uploaded in {stats.h2d_count} copies")


def ablate_cost_model() -> None:
    print("\ncost-model ablation on one dense SpMV (modeled µs):")
    g = gb.generators.rmat(scale=11, edge_factor=8, seed=5, weighted=True)
    u = gb.Vector.full(1.0, g.nrows, gb.FP64)
    for label, knobs in [
        ("full model", {}),
        ("no divergence", {"enable_divergence": False}),
        ("no coalescing", {"enable_coalescing": False}),
        ("ideal machine", {
            "enable_divergence": False,
            "enable_coalescing": False,
            "enable_occupancy": False,
        }),
    ]:
        reset_device()
        get_backend("cuda_sim").evict_all()
        dev = get_device()
        for k, v in knobs.items():
            setattr(dev.cost_model, k, v)
        with gb.use_backend("cuda_sim"):
            w = gb.Vector.sparse(gb.FP64, g.nrows)
            ops.mxv(w, g, u, PLUS_TIMES)
        print(f"  {label:14s}: {dev.profiler.kernel_time_us:8.2f}")


def demonstrate_streams() -> None:
    print("\nstream overlap (two independent 'halves' of a computation):")
    reset_device()
    dev = get_device()

    half = Kernel(
        "half_work",
        run=lambda x: np.sort(x),
        work=lambda x: KernelWork(
            flops=float(x.size * 20),
            bytes_read=float(x.nbytes * 4),
            threads=int(x.size),
        ),
    )
    data = np.random.default_rng(0).random(1 << 18)

    # Serial: both kernels on the default timeline.
    launch(half, LaunchConfig.cover(data.size), data, device=dev)
    launch(half, LaunchConfig.cover(data.size), data, device=dev)
    serial = dev.clock_us

    # Overlapped: one kernel per stream.
    reset_device()
    dev = get_device()
    s1, s2 = Stream(dev), Stream(dev)
    launch(half, LaunchConfig.cover(data.size), data, device=dev, stream=s1)
    launch(half, LaunchConfig.cover(data.size), data, device=dev, stream=s2)
    overlapped = max(s1.synchronize(), s2.synchronize())
    print(f"  serial:     {serial:8.1f} µs")
    print(f"  two streams:{overlapped:8.1f} µs  "
          f"({serial / overlapped:.2f}x from overlap)")


if __name__ == "__main__":
    profile_sssp()
    ablate_cost_model()
    demonstrate_streams()
