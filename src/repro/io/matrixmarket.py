"""MatrixMarket coordinate-format I/O.

Supports the subset graph work actually uses: ``matrix coordinate
{real,integer,pattern} {general,symmetric}``.  Written files round-trip
bit-exactly for integer/pattern and to full float precision for real.
"""

from __future__ import annotations

import io as _io
from pathlib import Path
from typing import Optional, TextIO, Union

import numpy as np

from ..core.matrix import Matrix
from ..core.operators import FIRST
from ..exceptions import InvalidValueError
from ..types import BOOL, FP64, GrBType, INT64

__all__ = ["read_matrix_market", "write_matrix_market"]

_FIELD_TYPES = {"real": FP64, "integer": INT64, "pattern": BOOL}


def _open(path_or_file: Union[str, Path, TextIO], mode: str):
    if isinstance(path_or_file, (str, Path)):
        return open(path_or_file, mode), True
    return path_or_file, False


def read_matrix_market(
    path_or_file: Union[str, Path, TextIO],
    typ: Optional[GrBType] = None,
) -> Matrix:
    """Parse a MatrixMarket coordinate file into a Matrix.

    ``symmetric`` files are expanded to both triangles.  1-based indices are
    converted to 0-based.  ``typ`` overrides the domain implied by the
    header field.
    """
    f, should_close = _open(path_or_file, "r")
    try:
        header = f.readline().strip().split()
        if (
            len(header) < 5
            or header[0] not in ("%%MatrixMarket", "%MatrixMarket")
            or header[1].lower() != "matrix"
            or header[2].lower() != "coordinate"
        ):
            raise InvalidValueError(f"not a MatrixMarket coordinate header: {header}")
        field = header[3].lower()
        symmetry = header[4].lower()
        if field not in _FIELD_TYPES:
            raise InvalidValueError(f"unsupported field {field!r}")
        if symmetry not in ("general", "symmetric"):
            raise InvalidValueError(f"unsupported symmetry {symmetry!r}")
        line = f.readline()
        while line.startswith("%"):
            line = f.readline()
        parts = line.split()
        if len(parts) != 3:
            raise InvalidValueError(f"bad size line: {line!r}")
        nrows, ncols, nnz = map(int, parts)
        t = typ or _FIELD_TYPES[field]
        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.empty(nnz, dtype=t.dtype)
        for k in range(nnz):
            entry = f.readline().split()
            if len(entry) < 2:
                raise InvalidValueError(f"truncated entry line {k + 1}")
            rows[k] = int(entry[0]) - 1
            cols[k] = int(entry[1]) - 1
            if field == "pattern":
                vals[k] = True
            else:
                vals[k] = t.cast(float(entry[2]) if field == "real" else int(entry[2]))
        if symmetry == "symmetric":
            off = rows != cols
            mirror_r, mirror_c, mirror_v = cols[off], rows[off], vals[off]
            rows = np.concatenate([rows, mirror_r])
            cols = np.concatenate([cols, mirror_c])
            vals = np.concatenate([vals, mirror_v])
        return Matrix.from_lists(rows, cols, vals, nrows, ncols, t, dup=FIRST)
    finally:
        if should_close:
            f.close()


def write_matrix_market(
    m: Matrix,
    path_or_file: Union[str, Path, TextIO],
    field: Optional[str] = None,
    comment: str = "",
) -> None:
    """Write a Matrix in MatrixMarket general coordinate format."""
    if field is None:
        field = (
            "pattern"
            if m.type.is_boolean
            else ("integer" if m.type.is_integral else "real")
        )
    if field not in _FIELD_TYPES:
        raise InvalidValueError(f"unsupported field {field!r}")
    f, should_close = _open(path_or_file, "w")
    try:
        f.write(f"%%MatrixMarket matrix coordinate {field} general\n")
        for line in comment.splitlines():
            f.write(f"% {line}\n")
        f.write(f"{m.nrows} {m.ncols} {m.nvals}\n")
        coo = m.to_coo()
        for r, c, v in zip(coo.rows, coo.cols, coo.vals):
            if field == "pattern":
                f.write(f"{r + 1} {c + 1}\n")
            elif field == "integer":
                f.write(f"{r + 1} {c + 1} {int(v)}\n")
            else:
                f.write(f"{r + 1} {c + 1} {float(v)!r}\n")
    finally:
        if should_close:
            f.close()
