"""Differential execution: replay one program on every backend and diff.

A *backend spec* is a string naming one execution configuration:

- ``"reference"``, ``"cpu"`` — the host backends;
- ``"cuda_sim"`` — the simulated GPU with the reuse layer in its default
  (fully enabled) state;
- ``"cuda_sim:noreuse"`` — same kernels with aux caches, transfer elision,
  and kernel graphs all off (the pre-reuse baseline);
- ``"cuda_sim:lanes=<mode>"`` — the load-balancing lane policy pinned to
  ``mode`` (a lane name, ``auto``, or ``off`` — see
  :mod:`repro.gpu.loadbalance`), e.g. ``"cuda_sim:lanes=merge"``: lane
  selection is pure scheduling, so results must stay bit-identical;
- ``"multi_sim:P:splitter"`` — the partitioned backend with ``P`` devices
  and the named block-row splitter, e.g. ``"multi_sim:4:degree_balanced"``.

Any spec may append ``:lazy=on`` / ``:lazy=off`` to pin the lazy
evaluation mode (:mod:`repro.lazy`) for the run — e.g.
``"cuda_sim:lazy=off"`` replays eagerly on the simulated GPU and
``"multi_sim:2:equal_rows:lazy=on"`` forces tape recording on a backend
that is eager by default.  The optimizer is pure scheduling, so results
must stay bit-identical either way.

:func:`run_differential` replays the program on the reference backend, then
on every other spec, comparing op-by-op under the shared equivalence policy
(bit-exact for selection semirings, tolerance-bounded for float sums — see
:mod:`repro.testing.equivalence`).  Exceptions are part of the observable
behaviour: an op that raises is recorded as ``("raised", ExcType)`` and
must raise the *same* exception type everywhere.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

import numpy as np

from ..backends.dispatch import get_backend, use_backend
from ..core import operations as ops
from ..core.assign import assign as assign_op
from ..core.descriptor import Descriptor
from ..core.matrix import Matrix
from ..core.vector import Vector
from ..exceptions import GraphBLASError
from ..gpu import loadbalance, reuse
from ..gpu.device import reset_device
from ..lazy import config as lazy_config
from ..types import FP64
from .equivalence import describe_mismatch, same
from .programs import (
    Program,
    annotate_exactness,
    build_env,
    desc_from_names,
    lookup_accum,
    lookup_ewise_op,
    lookup_iop,
    lookup_monoid,
    lookup_semiring,
    lookup_unary,
)

__all__ = [
    "DEFAULT_SPECS",
    "SMOKE_SPECS",
    "Divergence",
    "backend_session",
    "execute",
    "run_differential",
    "backend_specs",
]

SMOKE_SPECS = (
    "reference",
    "cpu",
    "cuda_sim",
    "cuda_sim:lazy=off",
    "multi_sim:2:equal_rows:lazy=on",
)

DEFAULT_SPECS = (
    "reference",
    "cpu",
    "cuda_sim",
    "cuda_sim:noreuse",
    "cuda_sim:lazy=off",
    "cuda_sim:lanes=scalar",
    "cuda_sim:lanes=merge",
    "multi_sim:1:equal_rows",
    "multi_sim:2:equal_rows",
    "multi_sim:2:equal_rows:lazy=on",
    "multi_sim:2:degree_balanced",
    "multi_sim:4:equal_rows",
    "multi_sim:4:degree_balanced",
)


def backend_specs(full: bool = True) -> Tuple[str, ...]:
    return DEFAULT_SPECS if full else SMOKE_SPECS


@dataclass
class Divergence:
    """One observed cross-backend disagreement."""

    backend: str
    op_index: int
    op: str
    detail: str

    def __str__(self) -> str:
        return (
            f"backend {self.backend!r} diverged at op #{self.op_index} "
            f"({self.op}): {self.detail}"
        )


# ---------------------------------------------------------------------------
# Single-backend execution
# ---------------------------------------------------------------------------


def _resolve_backend(spec: str):
    """(context-manager backend object, needs_device_reset)."""
    if spec in ("reference", "cpu"):
        return get_backend(spec), False
    if spec.startswith("cuda_sim"):
        return get_backend("cuda_sim"), True
    if spec.startswith("multi_sim"):
        parts = spec.split(":")
        return (
            get_backend("multi_sim").configure(nparts=int(parts[1]), splitter=parts[2]),
            True,
        )
    raise ValueError(f"unknown backend spec {spec!r}")


def _snapshot(result: Any) -> Any:
    """A host-side, immutable copy of one op result."""
    if isinstance(result, Vector):
        return result.dup()
    if isinstance(result, Matrix):
        return result.dup()
    return result


def _run_op(spec, env) -> Any:
    """Execute one OpSpec against the environment; returns the result."""
    n = env.n
    op = spec["op"]
    desc = desc_from_names(spec.get("desc"))
    accum = lookup_accum(spec.get("accum"))
    mask = None
    mref = spec.get("mask")
    if mref is not None:
        mask = env.mask_vectors[mref[1]] if mref[0] == "mv" else env.mask_matrix

    def out_vector() -> Vector:
        into = spec.get("into")
        if into is not None:
            return env.vectors[into].dup()
        return Vector.sparse(FP64, n)

    def out_matrix() -> Matrix:
        into = spec.get("into")
        if into is not None:
            return env.matrices[into].dup()
        return Matrix.sparse(FP64, n, n)

    if op == "mxv":
        w = out_vector()
        r = ops.mxv(
            w, env.matrices[spec["a"]], env.vectors[spec["u"]],
            lookup_semiring(spec["semiring"]), mask=mask, accum=accum,
            desc=desc, direction=spec.get("direction", "auto"),
        )
        env.vectors.append(r)
        return r
    if op == "vxm":
        w = out_vector()
        r = ops.vxm(
            w, env.vectors[spec["u"]], env.matrices[spec["a"]],
            lookup_semiring(spec["semiring"]), mask=mask, accum=accum,
            desc=desc, direction=spec.get("direction", "auto"),
        )
        env.vectors.append(r)
        return r
    if op == "mxm":
        c = out_matrix()
        r = ops.mxm(
            c, env.matrices[spec["a"]], env.matrices[spec["b"]],
            lookup_semiring(spec["semiring"]), mask=mask, accum=accum, desc=desc,
        )
        env.matrices.append(r)
        return r
    if op in ("ewise_add", "ewise_mult"):
        fn = ops.ewise_add if op == "ewise_add" else ops.ewise_mult
        binop = lookup_ewise_op(spec["binop"])
        if spec["space"] == "v":
            w = out_vector()
            r = fn(w, env.vectors[spec["x"]], env.vectors[spec["y"]], binop,
                   mask=mask, accum=accum, desc=desc)
            env.vectors.append(r)
        else:
            c = out_matrix()
            r = fn(c, env.matrices[spec["x"]], env.matrices[spec["y"]], binop,
                   mask=mask, accum=accum, desc=desc)
            env.matrices.append(r)
        return r
    if op == "apply":
        unary = lookup_unary(spec["unary"])
        if spec["space"] == "v":
            w = out_vector()
            r = ops.apply(w, env.vectors[spec["src"]], unary,
                          mask=mask, accum=accum, desc=desc)
            env.vectors.append(r)
        else:
            c = out_matrix()
            r = ops.apply(c, env.matrices[spec["src"]], unary,
                          mask=mask, accum=accum, desc=desc)
            env.matrices.append(r)
        return r
    if op == "select":
        iop = lookup_iop(spec["iop"])
        thunk = spec.get("thunk", 0)
        if spec["space"] == "v":
            w = out_vector()
            r = ops.select(w, env.vectors[spec["src"]], iop, thunk=thunk,
                           mask=mask, accum=accum, desc=desc)
            env.vectors.append(r)
        else:
            c = out_matrix()
            r = ops.select(c, env.matrices[spec["src"]], iop, thunk=thunk,
                           mask=mask, accum=accum, desc=desc)
            env.matrices.append(r)
        return r
    if op == "reduce":
        src = env.vectors[spec["src"]] if spec["space"] == "v" else env.matrices[spec["src"]]
        val = ops.reduce(src, lookup_monoid(spec["monoid"]))
        env.scalars.append(val)
        return val
    if op == "reduce_to_vector":
        w = out_vector()
        r = ops.reduce_to_vector(w, env.matrices[spec["src"]],
                                 lookup_monoid(spec["monoid"]),
                                 mask=mask, accum=accum, desc=desc)
        env.vectors.append(r)
        return r
    if op == "extract":
        rng = np.random.default_rng(spec["idx_seed"])
        if spec["space"] == "v":
            idx = rng.integers(0, n, n)
            w = out_vector()
            r = ops.extract(w, env.vectors[spec["src"]], idx,
                            mask=mask, accum=accum, desc=desc)
            env.vectors.append(r)
        else:
            rows = rng.integers(0, n, n)
            cols = rng.integers(0, n, n)
            c = out_matrix()
            r = ops.extract_submatrix(c, env.matrices[spec["src"]], rows, cols,
                                      mask=mask, accum=accum, desc=desc)
            env.matrices.append(r)
        return r
    if op == "assign":
        rng = np.random.default_rng(spec["idx_seed"])
        idx = rng.permutation(n)
        dst = env.vectors[spec["dst"]].dup()
        r = assign_op(dst, env.vectors[spec["src"]], idx,
                      mask=mask, accum=accum, desc=desc)
        env.vectors.append(r)
        return r
    if op == "transpose":
        c = out_matrix()
        r = ops.transpose(c, env.matrices[spec["a"]], mask=mask, accum=accum, desc=desc)
        env.matrices.append(r)
        return r
    # Invalid-program mode: each op below must raise a specific
    # GraphBLASError subclass (caught by execute() and snapshotted).
    if op.startswith("bad_"):
        r = _run_invalid_op(op, env)
        # Reached only if the op failed to raise (itself a divergence the
        # comparison will flag); keep slot numbering aligned regardless.
        env.vectors.append(Vector.sparse(FP64, n))
        return r
    raise ValueError(f"unknown op {op!r}")


def _run_invalid_op(op, env):
    """Invalid-mode ops: each must raise a specific GraphBLASError."""
    n = env.n
    if op == "bad_mxv_dims":
        from ..core.semiring import PLUS_TIMES

        return ops.mxv(
            Vector.sparse(FP64, n), env.matrices[0],
            Vector.sparse(FP64, n + 3), PLUS_TIMES,
        )
    if op == "bad_apply_domain":
        from ..core.operators import AINV

        return ops.apply(
            Vector.sparse(env.mask_vectors[0].type, n), env.mask_vectors[0], AINV
        )
    if op == "bad_transpose_desc":
        from ..core.semiring import PLUS_TIMES

        rect = Matrix.sparse(FP64, n, n + 1)
        return ops.mxv(
            Vector.sparse(FP64, n), rect, env.vectors[0], PLUS_TIMES,
            desc=Descriptor(transpose_a=True),
        )
    if op == "bad_extract_oob":
        return ops.extract(
            Vector.sparse(FP64, 2), env.vectors[0], np.array([0, n + 5])
        )
    raise ValueError(f"unknown invalid op {op!r}")


def execute(
    program: Program,
    spec: str = "reference",
    perm: Optional[np.ndarray] = None,
) -> List[Any]:
    """Replay ``program`` under one backend spec; one snapshot per op.

    An op that raises a :class:`GraphBLASError` records ``("raised",
    type-name)`` and the program continues with that result slot holding
    an empty placeholder, so later ops still execute identically on every
    backend (exception *types* are part of the differential contract).
    """
    env = build_env(program, perm=perm)
    snapshots: List[Any] = []
    with backend_session(spec):
        for opspec in program.ops:
            try:
                result = _run_op(opspec, env)
            except GraphBLASError as e:
                snapshots.append(("raised", type(e).__name__))
                _append_placeholder(opspec, env)
                continue
            snapshots.append(_snapshot(result))
    return snapshots


@contextmanager
def backend_session(spec: str):
    """Enter one backend spec end-to-end: resolve the backend, reset
    device state, apply the suffix contexts (``:noreuse`` / ``:lanes=`` /
    ``:lazy=``), and activate the backend for the ``with`` body.

    This is the single definition of what a spec string *means*; the
    program executor above and the streaming mutation runner
    (:mod:`repro.testing.streaming`) both run inside it.
    """
    backend, device_backed = _resolve_backend(spec)
    if device_backed:
        if spec.startswith("multi_sim"):
            backend.reset()
        else:
            backend.evict_all()
            reset_device()
    noreuse = spec.endswith(":noreuse")
    ctx = reuse.reuse_disabled() if noreuse else nullcontext()
    lane_ctx: Any = nullcontext()
    lazy_ctx: Any = nullcontext()
    for part in spec.split(":")[1:]:
        if part.startswith("lanes="):
            lane_ctx = loadbalance.forced(part[len("lanes="):])
        elif part == "lazy=off":
            lazy_ctx = lazy_config.lazy_disabled()
        elif part == "lazy=on":
            lazy_ctx = lazy_config.lazy_enabled()
    with ctx, lane_ctx, lazy_ctx:
        with use_backend(backend):
            yield backend


def _append_placeholder(spec, env) -> None:
    """Keep slot numbering aligned after an op failed."""
    op = spec["op"]
    n = env.n
    if op in ("mxv", "vxm", "reduce_to_vector", "assign"):
        env.vectors.append(Vector.sparse(FP64, n))
    elif op in ("mxm", "transpose"):
        env.matrices.append(Matrix.sparse(FP64, n, n))
    elif op in ("ewise_add", "ewise_mult", "apply", "select", "extract"):
        if spec["space"] == "v":
            env.vectors.append(Vector.sparse(FP64, n))
        else:
            env.matrices.append(Matrix.sparse(FP64, n, n))
    elif op == "reduce":
        env.scalars.append(None)
    elif op.startswith("bad_"):
        env.vectors.append(Vector.sparse(FP64, n))


# ---------------------------------------------------------------------------
# Differential comparison
# ---------------------------------------------------------------------------


def _compare(got, expected, exact: bool) -> Optional[str]:
    if isinstance(expected, tuple) and expected and expected[0] == "raised":
        if got != expected:
            return f"expected {expected[1]} to be raised, got {got!r}"
        return None
    if isinstance(got, tuple) and got and got[0] == "raised":
        return f"unexpectedly raised {got[1]}"
    if not same(got, expected, exact=exact):
        return describe_mismatch(got, expected)
    return None


def run_differential(
    program: Program,
    specs: Optional[Tuple[str, ...]] = None,
) -> Optional[Divergence]:
    """Replay on every spec and return the first divergence (or None).

    The reference backend's snapshots are the oracle; each other spec is
    compared per-op with the statically derived exactness flag.
    """
    specs = tuple(specs or DEFAULT_SPECS)
    exact_flags = annotate_exactness(program)
    oracle = execute(program, "reference")
    for spec in specs:
        if spec == "reference":
            continue
        got = execute(program, spec)
        for i, (g, e) in enumerate(zip(got, oracle)):
            detail = _compare(g, e, exact_flags[i])
            if detail is not None:
                return Divergence(spec, i, program.ops[i]["op"], detail)
    return None
