"""End-to-end integration: load → analyse → save pipelines, device limits,
multi-backend workflows, and the bench substrate."""

import io

import numpy as np
import pytest

import repro as gb
from repro.backends.dispatch import get_backend, use_backend
from repro.bench.harness import simulated_gpu_time, time_operation
from repro.bench.tables import check_ordering, format_series, format_table, speedup
from repro.bench.workloads import WORKLOADS, get_workload, random_frontier
from repro.core import operations as ops
from repro.core.semiring import PLUS_TIMES
from repro.gpu.device import Device, DeviceProperties, get_device, reset_device, set_device


class TestFullPipeline:
    def test_generate_analyse_roundtrip(self, tmp_path):
        """Generate → write → read → analyse → identical results."""
        g = gb.generators.watts_strogatz(60, 4, 0.2, seed=1, weighted=True)
        path = tmp_path / "graph.mtx"
        gb.io.write_matrix_market(g, path)
        g2 = gb.io.read_matrix_market(path)
        assert g2 == g
        assert gb.algorithms.triangle_count(g2) == gb.algorithms.triangle_count(g)
        assert gb.algorithms.sssp(g2, 0) == gb.algorithms.sssp(g, 0)

    def test_edgelist_pipeline(self, tmp_path):
        g = gb.generators.barabasi_albert(50, 2, seed=2)
        path = tmp_path / "graph.tsv"
        gb.io.write_edgelist(g, path)
        g2 = gb.io.read_edgelist(path, n=50)
        assert g2 == g

    def test_multi_algorithm_consistency(self):
        """Cross-algorithm invariants on one graph."""
        g = gb.generators.erdos_renyi_gnp(40, 0.1, seed=9, weighted=True)
        levels = gb.algorithms.bfs_levels(g, 0)
        dist = gb.algorithms.sssp(g, 0)
        comps = gb.algorithms.connected_components(g)
        # Reachable set is identical across BFS/SSSP/CC.
        reach_bfs = set(levels.to_lists()[0])
        reach_sssp = set(dist.to_lists()[0])
        comp0 = set(np.flatnonzero(comps.to_dense(-1) == comps.get(0)).tolist())
        assert reach_bfs == reach_sssp == comp0
        # Weighted distance >= hop count (weights >= 1).
        for v in reach_bfs:
            assert dist.get(v) >= levels.get(v) - 1e-9

    def test_backend_switch_mid_pipeline(self):
        g = gb.generators.rmat(scale=7, edge_factor=6, seed=3)
        with use_backend("cpu"):
            pr_cpu = gb.algorithms.pagerank(g, max_iter=15)
        with use_backend("cuda_sim"):
            levels = gb.algorithms.bfs_levels(g, 0)
        with use_backend("reference"):
            levels_ref = gb.algorithms.bfs_levels(g, 0)
        assert levels == levels_ref
        assert pr_cpu.nvals == g.nrows


class TestDeviceLimits:
    def test_tiny_device_ooms_on_big_graph(self):
        tiny = DeviceProperties(name="Tiny", global_mem_bytes=20_000)
        set_device(Device(tiny))
        get_backend("cuda_sim").evict_all()
        try:
            g = gb.generators.rmat(scale=9, edge_factor=8, seed=1)
            with pytest.raises(gb.DeviceOutOfMemoryError):
                with use_backend("cuda_sim"):
                    gb.algorithms.bfs_levels(g, 0)
        finally:
            reset_device()
            get_backend("cuda_sim").evict_all()

    def test_ablated_device_properties_change_timing(self):
        g = gb.generators.rmat(scale=9, edge_factor=8, seed=1)
        u = gb.Vector.full(1.0, g.nrows, gb.FP64)

        def run():
            w = gb.Vector.sparse(gb.FP64, g.nrows)
            return ops.mxv(w, g, u, PLUS_TIMES)

        def sim_with(props):
            set_device(Device(props))
            get_backend("cuda_sim").evict_all()
            with use_backend("cuda_sim"):
                # Bind the result: a discarded output is dead under the
                # lazy optimizer and would never launch.
                keep = run()  # noqa: F841
            t = get_device().profiler.kernel_time_us
            reset_device()
            get_backend("cuda_sim").evict_all()
            return t

        slow = sim_with(DeviceProperties(mem_bandwidth_gbps=10.0))
        fast = sim_with(DeviceProperties(mem_bandwidth_gbps=1000.0))
        assert slow > fast


class TestBenchSubstrate:
    def test_time_operation_reference_vs_cpu(self):
        g = get_workload("rmat_s8")
        u = gb.Vector.full(1.0, g.nrows, gb.FP64)

        def run():
            w = gb.Vector.sparse(gb.FP64, g.nrows)
            return ops.mxv(w, g, u, PLUS_TIMES)

        ref = time_operation("reference", run, repeat=1)
        cpu = time_operation("cpu", run, repeat=2)
        assert not ref.simulated and not cpu.simulated
        assert ref.seconds > 0 and cpu.seconds > 0

    def test_simulated_measurement_counts_kernels(self):
        g = get_workload("rmat_s8")
        u = gb.Vector.full(1.0, g.nrows, gb.FP64)

        def run():
            w = gb.Vector.sparse(gb.FP64, g.nrows)
            return ops.mxv(w, g, u, PLUS_TIMES)

        m = simulated_gpu_time(run)
        assert m.simulated and m.kernel_launches >= 1
        assert m.transfer_seconds > 0  # fresh device: uploads charged

    def test_workload_cache_returns_same_object(self):
        assert get_workload("rmat_s8") is get_workload("rmat_s8")

    def test_all_workloads_build(self):
        for name in WORKLOADS:
            g = get_workload(name)
            assert g.nrows > 0

    def test_random_frontier(self):
        f = random_frontier(100, 10, seed=1)
        assert f.nvals == 10 and f.size == 100
        f2 = random_frontier(100, 200, seed=1)
        assert f2.nvals == 100  # clamped

    def test_format_table_and_series(self):
        t = format_table("T", ["a", "b"], [[1, 2.5], ["x", 3e-7]])
        assert "T" in t and "x" in t and "2.5000" in t
        s = format_series("S", "x", [1, 2], {"y": [0.1, 0.2]})
        assert "S" in s and "0.2000" in s

    def test_speedup_and_ordering(self):
        assert speedup(10.0, 2.0) == 5.0
        assert speedup(1.0, 0.0) == float("inf")
        ok = check_ordering({"fast": 1.0, "slow": 10.0}, ["fast"], "slow", 5.0)
        assert ok == []
        bad = check_ordering({"fast": 9.0, "slow": 10.0}, ["fast"], "slow", 5.0)
        assert len(bad) == 1


class TestUserExtension:
    def test_custom_semiring_end_to_end(self):
        """A user-defined semiring drives an algorithm-like computation."""
        from repro.core.monoid import MAX_MONOID
        from repro.core.operators import MIN
        from repro.core.semiring import Semiring

        # Widest-path (max-min) semiring: bottleneck capacities.
        widest = Semiring("TEST_WIDEST", MAX_MONOID, MIN)
        g = gb.Matrix.from_lists(
            [0, 0, 1, 2], [1, 2, 3, 3], [5.0, 2.0, 4.0, 9.0], 4, 4
        )
        cap = gb.Vector.from_lists([0], [np.inf], 4)
        for _ in range(3):
            nxt = gb.Vector.sparse(gb.FP64, 4)
            ops.vxm(nxt, cap, g, widest)
            merged = cap.dup()
            from repro.core.operators import MAX

            ops.ewise_add(merged, cap, nxt, MAX)
            if merged == cap:
                break
            cap = merged
        # Best bottleneck to 3: min(5,4)=4 via 0->1->3 vs min(2,9)=2.
        assert cap.get(3) == 4.0

    def test_custom_backend_runs_algorithms(self):
        from repro.backends.cpu.backend import CpuBackend
        from repro.backends.dispatch import register_backend

        calls = {"mxv": 0}

        class CountingBackend(CpuBackend):
            name = "counting"

            def mxv(self, *a, **k):
                calls["mxv"] += 1
                return super().mxv(*a, **k)

        register_backend("counting", CountingBackend)
        g = gb.generators.path_graph(10)
        with use_backend("counting"):
            gb.algorithms.connected_components(g)
        assert calls["mxv"] > 0
