"""Graph generators: structure, determinism, statistical shape."""

import numpy as np
import pytest

import repro as gb
from repro.algorithms import is_symmetric, out_degrees
from repro.generators import (
    barabasi_albert,
    complete_graph,
    cycle_graph,
    erdos_renyi_gnm,
    erdos_renyi_gnp,
    grid_2d,
    path_graph,
    rmat,
    rmat_edges,
    star_graph,
    torus_2d,
    watts_strogatz,
)


class TestRmat:
    def test_vertex_count(self):
        g = rmat(scale=8, edge_factor=4, seed=0)
        assert g.nrows == 256 and g.ncols == 256

    def test_deterministic(self):
        assert rmat(scale=6, edge_factor=4, seed=3) == rmat(scale=6, edge_factor=4, seed=3)

    def test_different_seeds_differ(self):
        assert rmat(scale=6, edge_factor=4, seed=3) != rmat(scale=6, edge_factor=4, seed=4)

    def test_no_self_loops(self):
        g = rmat(scale=6, edge_factor=8, seed=1)
        r, c, _ = g.to_lists()
        assert all(i != j for i, j in zip(r, c))

    def test_undirected_by_default(self):
        assert is_symmetric(rmat(scale=6, edge_factor=4, seed=2))

    def test_directed_option(self):
        g = rmat(scale=6, edge_factor=4, seed=2, directed=True)
        assert not is_symmetric(g)

    def test_weighted_symmetric_weights(self):
        g = rmat(scale=6, edge_factor=4, seed=2, weighted=True)
        r, c, v = g.to_lists()
        for i, j, w in zip(r, c, v):
            assert g.get(j, i) == w

    def test_degree_skew(self):
        # R-MAT with Graph500 params is much more skewed than ER.
        g = rmat(scale=9, edge_factor=8, seed=5)
        e = erdos_renyi_gnp(512, g.nvals / (512 * 511), seed=5)
        d_r = out_degrees(g).to_dense(0).astype(float)
        d_e = e.row_degrees().astype(float)
        assert d_r.max() / max(d_r.mean(), 1) > d_e.max() / max(d_e.mean(), 1)

    def test_invalid_probs(self):
        with pytest.raises(gb.InvalidValueError):
            rmat_edges(4, a=0.9, b=0.9, c=0.9)

    def test_negative_scale(self):
        with pytest.raises(gb.InvalidValueError):
            rmat_edges(-1)

    def test_raw_edges_count(self):
        r, c = rmat_edges(5, edge_factor=3, seed=0)
        assert r.size == 3 * 32 == c.size


class TestErdosRenyi:
    def test_gnp_edge_count_in_expectation(self):
        n, p = 300, 0.05
        g = erdos_renyi_gnp(n, p, seed=0)
        expected = n * (n - 1) / 2 * p * 2  # symmetric storage
        assert 0.6 * expected < g.nvals < 1.4 * expected

    def test_gnp_p_zero_empty(self):
        assert erdos_renyi_gnp(50, 0.0, seed=0).nvals == 0

    def test_gnp_invalid_p(self):
        with pytest.raises(gb.InvalidValueError):
            erdos_renyi_gnp(10, 1.5)

    def test_gnm(self):
        g = erdos_renyi_gnm(100, 200, seed=1)
        # Duplicates/self-loops collapse, so <= 2*200 stored.
        assert 0 < g.nvals <= 400
        assert is_symmetric(g)

    def test_directed(self):
        g = erdos_renyi_gnp(60, 0.1, seed=2, directed=True)
        assert not is_symmetric(g)

    def test_deterministic(self):
        assert erdos_renyi_gnp(40, 0.1, seed=7) == erdos_renyi_gnp(40, 0.1, seed=7)


class TestRegular:
    def test_path(self):
        g = path_graph(5)
        assert g.nvals == 8  # 4 undirected edges
        assert g.get(0, 1) == 1.0 and g.get(1, 0) == 1.0

    def test_cycle(self):
        g = cycle_graph(5)
        assert g.nvals == 10
        assert g.get(4, 0) is not None

    def test_cycle_small_degenerates_to_path(self):
        assert cycle_graph(2).nvals == 2

    def test_grid_degrees(self):
        g = grid_2d(3, 3)
        deg = g.row_degrees()
        assert deg[4] == 4  # center
        assert deg[0] == 2  # corner
        assert g.nvals == 2 * 12

    def test_torus_uniform_degree(self):
        g = torus_2d(4, 4)
        assert np.all(g.row_degrees() == 4)

    def test_complete(self):
        g = complete_graph(5)
        assert g.nvals == 20
        assert np.all(g.row_degrees() == 4)

    def test_star(self):
        g = star_graph(6)
        assert g.row_degrees()[0] == 5
        assert g.nvals == 10

    def test_trivial_sizes(self):
        assert path_graph(0).nvals == 0
        assert path_graph(1).nvals == 0
        assert complete_graph(1).nvals == 0

    def test_negative_rejected(self):
        with pytest.raises(gb.InvalidValueError):
            path_graph(-1)
        with pytest.raises(gb.InvalidValueError):
            grid_2d(-1, 3)


class TestWattsStrogatz:
    def test_no_rewire_is_ring_lattice(self):
        g = watts_strogatz(20, 4, 0.0, seed=0)
        assert np.all(g.row_degrees() == 4)

    def test_rewire_preserves_edge_budget_roughly(self):
        g = watts_strogatz(50, 4, 0.5, seed=1)
        # Rewiring can create duplicates that collapse, so <= n*k.
        assert 0.8 * 50 * 4 <= g.nvals <= 50 * 4

    def test_validation(self):
        with pytest.raises(gb.InvalidValueError):
            watts_strogatz(10, 3, 0.1)  # odd k
        with pytest.raises(gb.InvalidValueError):
            watts_strogatz(4, 4, 0.1)  # n <= k
        with pytest.raises(gb.InvalidValueError):
            watts_strogatz(10, 2, 1.5)  # bad p

    def test_symmetric(self):
        assert is_symmetric(watts_strogatz(30, 4, 0.3, seed=2))


class TestBarabasiAlbert:
    def test_edge_count(self):
        g = barabasi_albert(50, 2, seed=0)
        # (n - m) arrivals × m edges, stored symmetric; collisions collapse.
        assert g.nvals <= 2 * (50 - 2) * 2
        assert g.nvals >= 2 * (50 - 2) * 2 * 0.8

    def test_hub_formation(self):
        g = barabasi_albert(200, 2, seed=1)
        deg = g.row_degrees()
        assert deg.max() > 4 * deg.mean()

    def test_validation(self):
        with pytest.raises(gb.InvalidValueError):
            barabasi_albert(5, 0)
        with pytest.raises(gb.InvalidValueError):
            barabasi_albert(3, 3)

    def test_deterministic(self):
        assert barabasi_albert(40, 2, seed=9) == barabasi_albert(40, 2, seed=9)


class TestWeights:
    def test_weight_range(self):
        g = rmat(scale=7, edge_factor=4, seed=3, weighted=True)
        v = np.asarray(g.to_lists()[2])
        assert v.min() >= 1.0 and v.max() < 256.0

    def test_unweighted_all_ones(self):
        g = path_graph(10)
        assert set(g.to_lists()[2]) == {1.0}
