"""Personalized PageRank — batched as SpMM on a block of rank vectors.

Where :func:`~repro.algorithms.pagerank.pagerank` iterates one rank vector
with ``vxm``, the batched version keeps one rank vector *per source* as the
rows of a k×n matrix ``R`` and advances all of them with one ``mxm`` per
iteration over the cached transition matrix ``M = D⁻¹A`` — the SpMM-on-a-
block-of-vectors formulation that amortises launch overhead and adjacency
traffic across every concurrent query (the same batching win
:mod:`~repro.algorithms.msbfs` gets for traversals).

Every kernel in the iteration is row-wise independent — ``(R·M)[i, :]``
depends only on ``R[i, :]``, the dangling-mass product is a k×1 ``mxm``,
and the teleport add touches row i at ``sources[i]`` alone — so a batch of
k sources is **bit-identical**, row by row, to k single-source runs: the
property the serving layer's coalescer relies on, and the one the
metamorphic batch invariant (:mod:`repro.testing.metamorphic`) checks.

The iteration count is a fixed parameter (no convergence test): a
tolerance-based stop would couple a row's result to its batch-mates and
break batch-of-1 equivalence.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..core import operations as ops
from ..core.matrix import Matrix
from ..core.monoid import PLUS_MONOID
from ..core.operators import MINV, PLUS, TIMES
from ..core.semiring import PLUS_TIMES
from ..core.vector import Vector
from ..exceptions import IndexOutOfBoundsError, InvalidValueError
from ..types import FP64

__all__ = ["ppr", "ppr_batch", "ppr_transition"]


def ppr_transition(g: Matrix) -> Tuple[Matrix, Matrix]:
    """(M, d): the PPR propagation operator for ``g``.

    ``M = D⁻¹·g`` is the out-degree-normalised adjacency (rows of dangling
    vertices are empty) and ``d`` is an n×1 matrix with a 1.0 entry at every
    dangling (zero-out-degree) vertex, so ``R·d`` is the per-row parked
    mass.  Both are pure functions of the graph — the serving layer caches
    them per graph version so thousands of queries share one setup ``mxm``.
    """
    n = g.nrows
    if n != g.ncols:
        raise InvalidValueError(f"adjacency must be square, got {g.shape}")
    gf = g if g.type is FP64 else Matrix(g.container.astype(FP64))
    outdeg = Vector.sparse(FP64, n)
    ops.reduce_to_vector(outdeg, gf, PLUS_MONOID)
    inv = Vector.sparse(FP64, n)
    ops.apply(inv, outdeg, MINV)
    dinv = Matrix.from_lists(
        inv.indices_array(), inv.indices_array(), inv.values_array(), n, n, FP64
    )
    m = Matrix.sparse(FP64, n, n)
    ops.mxm(m, dinv, gf, PLUS_TIMES)
    # Dangling indicator as an n×1 column: present ⇔ no out-edge.
    present = np.zeros(n, dtype=bool)
    present[outdeg.indices_array()] = True
    didx = np.flatnonzero(~present).astype(np.int64)
    d = Matrix.from_lists(
        didx, np.zeros(didx.size, dtype=np.int64), np.ones(didx.size), n, 1, FP64
    )
    return m, d


def ppr_batch(
    g: Matrix,
    sources: Sequence[int],
    damping: float = 0.85,
    iters: int = 20,
    transition: Optional[Tuple[Matrix, Matrix]] = None,
) -> Matrix:
    """k×n rank matrix: row k holds the personalized PageRank of ``sources[k]``.

    Each row sums to 1 and is the ``iters``-step power iteration of

    ``r ← damping·(r·M) + (damping·dangling_mass(r) + 1 − damping)·e_s``

    i.e. both the teleport and the dangling mass return to the *source* —
    the personalized formulation (uniform teleport is plain
    :func:`~repro.algorithms.pagerank.pagerank`).  Duplicate sources are
    allowed (rows are independent).  Pass a cached :func:`ppr_transition`
    result as ``transition`` to skip the setup products.
    """
    if not 0.0 <= damping < 1.0:
        raise InvalidValueError(f"damping must be in [0, 1), got {damping}")
    if iters < 1:
        raise InvalidValueError(f"iters must be >= 1, got {iters}")
    n = g.nrows
    srcs = np.asarray(list(sources), dtype=np.int64)
    if srcs.size == 0:
        return Matrix.sparse(FP64, 0, n)
    for s in srcs:
        if not 0 <= s < n:
            raise IndexOutOfBoundsError(f"source {s} outside [0, {n})")
    m, d = transition if transition is not None else ppr_transition(g)
    k = srcs.size
    rows = np.arange(k, dtype=np.int64)
    # R₀ = E: all mass at the source.
    r = Matrix.from_lists(rows, srcs, np.ones(k), k, n, FP64)
    for _ in range(iters):
        # Parked mass per row: one k×1 product (read back k scalars).
        dm = Matrix.sparse(FP64, k, 1)
        ops.mxm(dm, r, d, PLUS_TIMES)
        dmass = np.zeros(k)
        dri, _, drv = dm.to_lists()
        dmass[np.asarray(dri, dtype=np.int64)] = drv
        # Propagate and damp: damping·(R·M).
        p = Matrix.sparse(FP64, k, n)
        ops.mxm(p, r, m, PLUS_TIMES)
        ops.apply(p, p, TIMES, bind_first=damping)
        # Teleport + recycled dangling mass, each row at its own source.
        tele = Matrix.from_lists(
            rows, srcs, damping * dmass + (1.0 - damping), k, n, FP64
        )
        r = Matrix.sparse(FP64, k, n)
        ops.ewise_add(r, p, tele, PLUS)
    return r


def ppr(
    g: Matrix,
    source: int,
    damping: float = 0.85,
    iters: int = 20,
    transition: Optional[Tuple[Matrix, Matrix]] = None,
) -> Vector:
    """Personalized PageRank vector of one source.

    Defined as (and bit-identical to) the single row of a batch-of-one
    :func:`ppr_batch` call — single-source execution *is* the k=1 case of
    the batched kernel path, so coalescing queries can never change a
    result.
    """
    r = ppr_batch(g, [source], damping=damping, iters=iters, transition=transition)
    idx, vals = r.container.row(0)
    out = Vector.sparse(FP64, g.nrows)
    if idx.size:
        return out.build(idx.copy(), vals.copy())
    return out
