"""Connected components via min-label propagation.

Every vertex starts labelled with its own id; each round it adopts the
minimum label among itself and its neighbours (``mxv`` over (MIN, SECOND)).
Converges in O(diameter) rounds — the simple, backend-portable formulation
(FastSV's hooking tricks trade portability for rounds; see DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from ..core import operations as ops
from ..core.matrix import Matrix
from ..core.operators import MIN
from ..core.semiring import MIN_SECOND
from ..core.vector import Vector
from ..exceptions import InvalidValueError
from ..types import INT64

__all__ = ["connected_components", "component_count"]


def connected_components(g: Matrix, max_iter: int = 0) -> Vector:
    """Component labels (dense INT64): ``labels[v]`` = min vertex id in v's
    component.  ``g`` must be symmetric for the result to mean undirected
    components; on a directed graph this computes a fixpoint of min-label
    propagation along edges in both orientations of iteration order.
    """
    if g.nrows != g.ncols:
        raise InvalidValueError(f"adjacency must be square, got {g.shape}")
    n = g.nrows
    labels = Vector.from_lists(
        np.arange(n, dtype=np.int64), np.arange(n, dtype=np.int64), n, INT64
    )
    limit = max_iter if max_iter > 0 else max(n, 1)
    for _ in range(limit):
        # Min neighbour label: t[i] = min_j A[i,j]·labels[j] under (MIN, SECOND).
        t = Vector.sparse(INT64, n)
        ops.mxv(t, g, labels, MIN_SECOND)
        new_labels = labels.dup()
        ops.ewise_add(new_labels, labels, t, MIN)
        if new_labels == labels:
            break
        labels = new_labels
    return labels


def component_count(g: Matrix) -> int:
    """Number of connected components."""
    labels = connected_components(g)
    return int(np.unique(labels.values_array()).size) if labels.nvals else 0
