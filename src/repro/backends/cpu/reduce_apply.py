"""Vectorized apply and reduce kernels."""

from __future__ import annotations

from typing import Any

import numpy as np

from ...containers.csr import CSRMatrix
from ...containers.sparsevec import SparseVector
from ...core.monoid import Monoid
from ...core.operators import UnaryOp
from .segments import run_starts, segment_reduce

__all__ = [
    "apply_vec",
    "apply_mat",
    "reduce_vec_scalar",
    "reduce_mat_vector",
    "reduce_mat_scalar",
]


def apply_vec(u: SparseVector, op: UnaryOp) -> SparseVector:
    out_t = op.result_type(u.type)
    if u.nvals == 0:
        return SparseVector.empty(u.size, out_t)
    vals = np.asarray(op(u.values)).astype(out_t.dtype, copy=False)
    return SparseVector(u.size, u.indices.copy(), vals, out_t)


def apply_mat(a: CSRMatrix, op: UnaryOp) -> CSRMatrix:
    out_t = op.result_type(a.type)
    if a.nvals == 0:
        return CSRMatrix.empty(a.nrows, a.ncols, out_t)
    vals = np.asarray(op(a.values)).astype(out_t.dtype, copy=False)
    return CSRMatrix(a.nrows, a.ncols, a.indptr.copy(), a.indices.copy(), vals, out_t)


def reduce_vec_scalar(u: SparseVector, monoid: Monoid) -> Any:
    t = monoid.result_type(u.type)
    return t.cast(monoid.reduce_array(u.values, u.type))


def reduce_mat_scalar(a: CSRMatrix, monoid: Monoid) -> Any:
    t = monoid.result_type(a.type)
    return t.cast(monoid.reduce_array(a.values, a.type))


def reduce_mat_vector(a: CSRMatrix, monoid: Monoid) -> SparseVector:
    """Row-wise reduction; empty rows yield no entry (per spec)."""
    out_t = monoid.result_type(a.type)
    if a.nvals == 0:
        return SparseVector.empty(a.nrows, out_t)
    rows = np.repeat(np.arange(a.nrows, dtype=np.int64), a.row_degrees())
    starts = run_starts(rows)
    vals = segment_reduce(a.values, starts, monoid, out_t.dtype)
    return SparseVector(a.nrows, rows[starts], vals, out_t)
