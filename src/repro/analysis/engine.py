"""gbcheck orchestration: syntactic lint + dataflow rules + suppression.

The engine runs the absorbed syntactic rule set (:mod:`repro.sanitizer.lint`)
and the four dataflow rules over a :class:`~repro.analysis.loader.Program`,
audits every suppression directive against the *raw* (pre-suppression)
finding set, then applies valid directives.  Audit findings themselves are
not suppressible — a bad directive cannot vouch for itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Set, Tuple

from ..sanitizer import lint as _lint
from .findings import Finding
from .loader import Program
from .rules import (
    Directive,
    audit_suppressions,
    check_forcing_points,
    check_kernel_accesses,
    check_launch_sites,
    check_version_bumps,
    collect_directives,
)
from .summaries import build_summaries, propagate_effects

__all__ = ["Report", "analyze_program", "analyze_sources", "analyze_tree"]

_AUDIT_RULES = frozenset(
    {"suppression-unknown-rule", "suppression-placeholder-reason", "suppression-stale"}
)


@dataclass
class Report:
    """A full gbcheck run: surviving findings plus audit metadata."""

    findings: List[Finding] = field(default_factory=list)
    raw_findings: List[Finding] = field(default_factory=list)
    directives: List[Directive] = field(default_factory=list)
    modules_analyzed: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def _syntactic_findings(program: Program) -> List[Finding]:
    """Raw (pre-suppression) findings from the absorbed syntactic lint."""
    out: List[Finding] = []
    for mod in program.modules.values():
        rules = _lint._rules_for(mod.relpath)
        if not rules:
            continue
        visitor = _lint._Visitor(mod.relpath, rules)
        visitor.visit(mod.tree)
        for lf in visitor.raw:
            out.append(Finding(lf.path, lf.line, lf.rule, lf.message))
    return out


def analyze_program(program: Program) -> Report:
    summaries = build_summaries(program)
    propagate_effects(program, summaries)

    raw: List[Finding] = []
    raw.extend(_syntactic_findings(program))
    raw.extend(check_kernel_accesses(program, summaries))
    raw.extend(check_launch_sites(program, summaries))
    raw.extend(check_version_bumps(program, summaries))
    raw.extend(check_forcing_points(program, summaries))

    directives: List[Directive] = []
    for mod in program.modules.values():
        directives.extend(collect_directives(mod.source, mod.relpath))

    audit = audit_suppressions(directives, raw)

    # A directive suppresses matching rules on its own line and the line
    # below — but only when it names real rules and carries a real reason.
    suppressed: Dict[Tuple[str, int], Set[str]] = {}
    for d in directives:
        if not d.has_real_reason:
            continue
        for line in (d.line, d.line + 1):
            suppressed.setdefault((d.relpath, line), set()).update(d.rules)

    surviving = [
        f for f in raw if f.rule not in suppressed.get((f.path, f.line), set())
    ]
    surviving.extend(audit)
    surviving.sort(key=lambda f: (f.path, f.line, f.rule, f.message))

    return Report(
        findings=surviving,
        raw_findings=raw,
        directives=directives,
        modules_analyzed=len(program.modules),
    )


def analyze_sources(sources: Dict[str, str]) -> Report:
    """Analyze in-memory ``{relpath: source}`` modules (tests, corpora)."""
    return analyze_program(Program.from_sources(sources))


def analyze_tree(package_root: Path) -> Report:
    """Analyze the whole ``repro/`` package rooted at ``package_root``."""
    return analyze_program(Program.from_tree(package_root))
