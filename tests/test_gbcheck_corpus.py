"""Planted-violation corpus: every static rule paired with its runtime twin.

Each test takes one file from ``tests/corpus`` and asserts both halves of
the contract:

* **static** — gbcheck, analyzing the file's source under a virtual
  in-tree path (which activates the right rule scopes), flags the planted
  violation and stays quiet on the fixed twin in the same file;
* **runtime** — executing the same code (or the hazard pattern it hides)
  against a warm simulated device makes gbsan report the matching runtime
  finding, while the buggy twin demonstrates the blind spot the static
  rule exists to close.

The corpus modules live under ``tests/`` so the real-tree gbcheck run
(`tools/gbcheck.py` over ``src/repro``) never sees them.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

import repro as gb
import repro.sanitizer as gbsan
from repro.algorithms.bfs import bfs_levels
from repro.analysis import analyze_sources
from repro.core.matrix import Matrix
from repro.gpu.device import Device
from repro.streaming import DeltaOverlay, EdgeBatch, merge_overlay
from repro.testing.executor import backend_session
from repro.types import FP64

from tests.corpus import planted_access, planted_bump, planted_forcing
from tests.corpus import planted_suppression

pytestmark = pytest.mark.no_multi_sim

CORPUS = Path(__file__).resolve().parent / "corpus"


def _analyze(filename: str, virtual_relpath: str):
    source = (CORPUS / filename).read_text(encoding="utf-8")
    return analyze_sources({virtual_relpath: source})


def _ring(n: int) -> Matrix:
    rows = np.arange(n, dtype=np.int64)
    cols = (rows + 1) % n
    return Matrix.from_lists(rows, cols, np.ones(n), n, n, FP64)


def _vec(n: int = 8):
    v = gb.Vector.from_lists(
        list(range(n)), [float(i) + 1.0 for i in range(n)], n, gb.FP64
    )
    return v.container


# ---------------------------------------------------------------------------
# Rule 1: access sets — launch of an undeclared-access kernel
# ---------------------------------------------------------------------------


class TestAccessPlant:
    def test_static_flags_undeclared_launch_only(self):
        rep = _analyze("planted_access.py", "backends/cuda_sim/planted_access.py")
        hits = [f for f in rep.findings if f.rule == "launch-undeclared-access"]
        assert len(hits) == 1, rep.findings
        assert hits[0].symbol == "undeclared_reduce"

    def test_runtime_gbsan_blind_without_declaration_catches_with(self):
        with gbsan.sanitized() as san:
            dev = Device()
            c = _vec()  # never uploaded: any declared read is unresident
            planted_access.undeclared_reduce(c, dev)
            blind = san.drain()
            assert "unresident-read" not in {f.kind for f in blind}, blind
            planted_access.declared_reduce(c, dev)
            kinds = {f.kind for f in san.drain()}
        assert "unresident-read" in kinds


# ---------------------------------------------------------------------------
# Rule 2: version-bump soundness
# ---------------------------------------------------------------------------


class TestBumpPlant:
    def test_static_flags_unbumped_store_only(self):
        rep = _analyze("planted_bump.py", "core/planted_bump.py")
        hits = [f for f in rep.findings if f.rule == "version-bump-missing"]
        assert hits, rep.findings
        assert {f.symbol for f in hits} == {"scale_in_place"}

    def test_runtime_bump_is_the_signal_gbsan_needs(self):
        with gbsan.sanitized() as san:
            with backend_session("cuda_sim") as be:
                m = _ring(12)
                base = m.container
                bfs_levels(m, 0)  # warm: adjacency device-resident
                san.drain()

                # The plant: mutate in place, never bump.  The residency
                # shadow sees an unchanged version, so the later device
                # read looks clean — gbsan is blind to exactly this.
                planted_bump.scale_in_place(base, 2.0)
                be._device_transpose(base)
                blind = san.drain()
                assert "stale-read" not in {f.kind for f in blind}, blind

                # Protocol-correct twin: the bump makes the elided device
                # refresh visible as a stale read.
                planted_bump.scale_with_bump(base, 2.0)
                be._device_transpose(base)
                kinds = {f.kind for f in san.drain()}
        assert "stale-read" in kinds


# ---------------------------------------------------------------------------
# Rule 3: forcing points
# ---------------------------------------------------------------------------


class TestForcingPlant:
    def test_static_flags_unforced_swap_and_raw_peek(self):
        rep = _analyze("planted_forcing.py", "serve/planted_forcing.py")
        hits = [f for f in rep.findings if f.rule == "forcing-point-missing"]
        assert {f.symbol for f in hits} == {"swap_unforced", "peek_raw"}, (
            rep.findings
        )

    def test_runtime_unforced_swap_trips_stale_read(self):
        with gbsan.sanitized() as san:
            with backend_session("cuda_sim") as be:
                m = _ring(12)
                base = m.container
                bfs_levels(m, 0)
                san.drain()
                overlay = DeltaOverlay()
                overlay.absorb(EdgeBatch.inserts([0, 3, 5], [4, 7, 2], [1.0] * 3))
                planted_forcing.swap_unforced(base, merge_overlay(base, overlay))
                be._device_transpose(base)
            kinds = {f.kind for f in san.drain()}
        assert "stale-read" in kinds


# ---------------------------------------------------------------------------
# Rule 4: suppression audit
# ---------------------------------------------------------------------------


class TestSuppressionPlant:
    def test_static_audit_findings_and_surviving_hazards(self):
        rep = _analyze(
            "planted_suppression.py", "backends/cpu/planted_suppression.py"
        )
        rules = {f.rule for f in rep.findings}
        # The audit itself.
        assert "suppression-placeholder-reason" in rules, rep.findings
        assert "suppression-unknown-rule" in rules, rep.findings
        assert "suppression-stale" in rules, rep.findings
        # A bogus suppression must not actually suppress: the hazards it
        # tried to hide survive into the report.
        assert any(
            f.rule == "container-mutation" and f.symbol != "honest_mutation"
            for f in rep.findings
        ), rep.findings
        assert any(f.rule == "argsort" for f in rep.findings), rep.findings
        # The one valid directive works: honest_mutation is not reported.
        assert not any(
            f.symbol == "honest_mutation" for f in rep.findings
        ), rep.findings

    def test_runtime_hazard_behind_bogus_suppression_is_real(self):
        # The placeholder-suppressed pattern is an in-place payload
        # mutation; run it under the version protocol against a warm
        # device and gbsan reports the stale read it leads to.
        with gbsan.sanitized() as san:
            with backend_session("cuda_sim") as be:
                m = _ring(12)
                base = m.container
                bfs_levels(m, 0)
                san.drain()
                planted_suppression.sneaky_mutation(base, 2.0)
                base.bump_version()
                be._device_transpose(base)
            kinds = {f.kind for f in san.drain()}
        assert "stale-read" in kinds
