"""Serving smoke burn: ``python -m repro.serve [backend]``.

Runs a short synthetic trace through the service twice on a small RMAT
graph — once batched (coalescing on) and once unbatched (``max_batch=1``,
the per-query single-source A/B) — then asserts the two runs produced
bit-identical result digests for every completed query and prints both
runs' stats.  Exits nonzero on any mismatch, so CI can gate on it
(including under ``GBSAN=1``).
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List, Optional, Tuple

from .. import generators
from .coalescer import BatchPolicy
from .service import GraphService, ServiceStats
from .traffic import TrafficSpec, generate_trace


def main(argv: List[str]) -> int:
    backend = argv[1] if len(argv) > 1 else "cuda_sim"
    g = generators.rmat(scale=9, edge_factor=8, seed=7)
    spec = TrafficSpec(
        qps=5_000.0,
        n_queries=400,
        n_users=1_200_000,
        n_tenants=4,
        ppr_iters=4,
    )
    trace = generate_trace(spec, g.nrows, seed=11)

    def run(policy: BatchPolicy) -> Tuple[ServiceStats, Dict[int, Optional[str]]]:
        svc = GraphService(backend=backend, policy=policy, streams=2)
        svc.register_graph(g)
        for t in range(spec.n_tenants):
            svc.add_tenant(f"tenant{t}", weight=1.0 + t, max_queue=10_000)
        stats = svc.run_trace(trace)
        digests = {r.qid: r.digest for r in stats.completed}
        return stats, digests

    batched, dig_b = run(BatchPolicy(max_batch=32, max_wait_us=4_000.0))
    single, dig_s = run(BatchPolicy(max_batch=1, max_wait_us=0.0))

    if set(dig_b) != set(dig_s):
        print(
            f"FAIL: completed-query sets differ "
            f"(batched={len(dig_b)}, unbatched={len(dig_s)})"
        )
        return 1
    mismatched = [q for q in dig_b if dig_b[q] != dig_s[q]]
    if mismatched:
        print(f"FAIL: {len(mismatched)} digest mismatches, e.g. qid={mismatched[0]}")
        return 1

    report = {
        "backend": backend,
        "queries": spec.n_queries,
        "bit_identical": True,
        "batched": batched.to_dict(),
        "unbatched": single.to_dict(),
        "qps_ratio": round(
            batched.sustained_qps / max(single.sustained_qps, 1e-12), 3
        ),
    }
    print(json.dumps(report, indent=2))
    print(
        f"serving smoke OK on {backend}: {len(dig_b)} queries bit-identical, "
        f"batched/unbatched QPS ratio {report['qps_ratio']}x"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
