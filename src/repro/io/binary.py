"""Binary (NumPy ``.npz``) serialization of matrices and vectors.

Loss-free and fast: stores the canonical container arrays plus the domain
name, so round-trips preserve type, shape, and values bit-exactly — the
format to use for benchmark workload caching.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from ..containers.csr import CSRMatrix
from ..containers.sparsevec import SparseVector
from ..core.matrix import Matrix
from ..core.vector import Vector
from ..exceptions import InvalidValueError
from ..types import lookup

__all__ = ["save_matrix", "load_matrix", "save_vector", "load_vector"]

_MAGIC_M = "repro.matrix.v1"
_MAGIC_V = "repro.vector.v1"


def save_matrix(m: Matrix, path: Union[str, Path]) -> None:
    """Write a Matrix as a compressed ``.npz``."""
    c = m.container
    np.savez_compressed(
        path,
        magic=np.array(_MAGIC_M),
        type_name=np.array(c.type.name),
        nrows=np.int64(c.nrows),
        ncols=np.int64(c.ncols),
        indptr=c.indptr,
        indices=c.indices,
        values=c.values,
    )


def load_matrix(path: Union[str, Path]) -> Matrix:
    """Read a Matrix written by :func:`save_matrix`."""
    with np.load(path, allow_pickle=False) as z:
        if str(z["magic"]) != _MAGIC_M:
            raise InvalidValueError(f"{path}: not a repro matrix file")
        typ = lookup(str(z["type_name"]))
        return Matrix(
            CSRMatrix(
                int(z["nrows"]),
                int(z["ncols"]),
                z["indptr"],
                z["indices"],
                z["values"],
                typ,
            )
        )


def save_vector(v: Vector, path: Union[str, Path]) -> None:
    """Write a Vector as a compressed ``.npz``."""
    c = v.container
    np.savez_compressed(
        path,
        magic=np.array(_MAGIC_V),
        type_name=np.array(c.type.name),
        size=np.int64(c.size),
        indices=c.indices,
        values=c.values,
    )


def load_vector(path: Union[str, Path]) -> Vector:
    """Read a Vector written by :func:`save_vector`."""
    with np.load(path, allow_pickle=False) as z:
        if str(z["magic"]) != _MAGIC_V:
            raise InvalidValueError(f"{path}: not a repro vector file")
        typ = lookup(str(z["type_name"]))
        return Vector(SparseVector(int(z["size"]), z["indices"], z["values"], typ))
