"""Multi-source BFS — batched frontiers as a Boolean matrix.

Where single-source BFS iterates masked ``vxm``, the batched version keeps
one frontier *per source* as the rows of a k×n Boolean matrix and advances
all of them with one masked ``mxm`` per level — the formulation that turns
many small SpMSpV calls into one big SpGEMM, which is how GPU backends
amortise launch overhead for workloads like batched betweenness centrality.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core import operations as ops
from ..core.descriptor import Descriptor
from ..core.matrix import Matrix
from ..core.operators import FIRST
from ..core.semiring import LOR_LAND
from ..exceptions import (
    IndexOutOfBoundsError,
    InvalidValueError,
    NotImplementedInBackendError,
)
from ..types import BOOL, INT64

__all__ = ["bfs_levels_multi"]

_UNVISITED = Descriptor(complement_mask=True, structural_mask=True, replace=True)


def bfs_levels_multi(
    g: Matrix,
    sources: Sequence[int],
    direction: str = "auto",
    max_level: Optional[int] = None,
) -> Matrix:
    """k×n level matrix: row k holds BFS levels from ``sources[k]``.

    Unreached (source, vertex) pairs have no entry.  Matches
    :func:`~repro.algorithms.bfs.bfs_levels` row by row.

    The batched formulation advances every frontier with one push-style
    masked ``mxm`` per level, so ``direction`` accepts ``"auto"`` and
    ``"push"`` (both name the same product) and rejects ``"pull"`` — a
    pull-direction batched traversal would need a transposed-gather SpGEMM
    no backend implements; callers that need pull should run
    :func:`~repro.algorithms.bfs.bfs_levels` per source instead.

    ``max_level`` bounds the traversal: levels are recorded up to
    ``max_level`` inclusive (hop-bounded serving queries stop here rather
    than running every frontier to fixpoint).  ``None`` means no bound.
    """
    if direction not in ("auto", "push", "pull"):
        raise InvalidValueError(
            f"direction must be 'auto', 'push' or 'pull', got {direction!r}"
        )
    if direction == "pull":
        raise NotImplementedInBackendError(
            "batched multi-source BFS always advances frontiers with a "
            "push-style mxm; pull is not available — run bfs_levels per "
            "source for a pull traversal"
        )
    if max_level is not None and max_level < 0:
        raise InvalidValueError(f"max_level must be >= 0, got {max_level}")
    n = g.nrows
    srcs = list(sources)
    if not srcs:
        return Matrix.sparse(INT64, 0, n)
    for s in srcs:
        if not 0 <= s < n:
            raise IndexOutOfBoundsError(f"source {s} outside [0, {n})")
    if len(set(srcs)) != len(srcs):
        raise InvalidValueError("duplicate sources in multi-source BFS")
    k = len(srcs)
    levels = Matrix.sparse(INT64, k, n)
    frontier = Matrix.from_lists(
        np.arange(k, dtype=np.int64),
        np.asarray(srcs, dtype=np.int64),
        np.ones(k, dtype=bool),
        k,
        n,
        BOOL,
    )
    depth = 0
    limit = n if max_level is None else max_level
    while frontier.nvals and depth <= limit:
        # Record depth at the new frontier: union keeping older entries.
        fc = frontier.container
        stamped = Matrix.from_lists(
            np.repeat(np.arange(k, dtype=np.int64), fc.row_degrees()),
            fc.indices,
            np.full(fc.nvals, depth, dtype=np.int64),
            k,
            n,
            INT64,
        )
        merged = Matrix.sparse(INT64, k, n)
        ops.ewise_add(merged, levels, stamped, FIRST)
        levels._replace(merged.container)
        # All frontiers advance with one masked mxm.
        ops.mxm(frontier, frontier, g, LOR_LAND, mask=levels, desc=_UNVISITED)
        depth += 1
    return levels
