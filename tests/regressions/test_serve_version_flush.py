"""Regression: coalescer pools must not survive a mid-pool graph mutation.

Queries queued in a pool were admitted (and validated) against a specific
container version of their graph.  If the graph mutates while they wait —
an edge batch lands, a compaction rewrites the CSR — executing the pooled
batch would silently answer them from a different graph.  The service must
either flush the pool *before* the mutation (``GraphService.mutate``) or
drop the queued batch as ``stale`` when the version mismatch is detected
at submit/dispatch time.  Before the fix, the stale pool dispatched
against the mutated graph and the answers changed under the caller's feet.
"""

import numpy as np
import pytest

from repro.core.matrix import Matrix
from repro.serve.coalescer import BatchPolicy
from repro.serve.queries import BfsQuery
from repro.serve.service import GraphService
from repro.streaming import DynamicGraph, EdgeBatch
from repro.types import FP64


def _path_graph(n: int) -> Matrix:
    rows = np.arange(n - 1, dtype=np.int64)
    cols = rows + 1
    vals = np.ones(n - 1)
    return Matrix.from_lists(rows, cols, vals, n, n, FP64)


def _service(max_batch: int = 8) -> GraphService:
    svc = GraphService(
        backend="cuda_sim",
        policy=BatchPolicy(max_batch=max_batch, max_wait_us=5_000.0),
    )
    svc.register_graph(_path_graph(16))
    return svc


def _mutate_in_place(m: Matrix) -> None:
    """Bump the container version the way a streaming edge batch does."""
    g = DynamicGraph(m)
    g.apply(EdgeBatch.inserts([0], [8], [1.0]))
    g.compact()


def test_stale_pool_dropped_at_dispatch():
    svc = _service()
    rec = svc.submit("a", BfsQuery(source=0))
    assert rec.status == "queued"
    # Mutate the served graph behind the coalescer's back (no flush).
    _mutate_in_place(svc.engine.graph("default").matrix)
    svc.drain()
    assert rec.status == "stale", (
        "queued batch executed against a graph that mutated mid-pool"
    )
    assert rec.result is None
    assert svc.stats().stale_count == 1


def test_stale_pool_dropped_at_submit():
    svc = _service()
    old = svc.submit("a", BfsQuery(source=0))
    _mutate_in_place(svc.engine.graph("default").matrix)
    # The next submission sees the new version and evicts the old pool;
    # it must itself be answered against the *current* graph.
    new = svc.submit("a", BfsQuery(source=0))
    svc.drain()
    assert old.status == "stale"
    assert new.status == "done"
    # Source 0 now reaches vertex 8 directly via the inserted edge.
    levels = dict(zip(new.result.indices.tolist(), new.result.values.tolist()))
    assert levels[8] == 1


def test_mutate_flushes_pending_pools_first():
    svc = _service()
    rec = svc.submit("a", BfsQuery(source=0))
    svc.mutate("default", _mutate_in_place)
    # The queued query was answered against the pre-mutation graph.
    assert rec.status == "done"
    levels = dict(zip(rec.result.indices.tolist(), rec.result.values.tolist()))
    assert levels[8] == 8  # path graph distance, not the shortcut
    # And queries after the mutation see the shortcut.
    rec2 = svc.submit("a", BfsQuery(source=0))
    svc.drain()
    levels2 = dict(zip(rec2.result.indices.tolist(), rec2.result.values.tolist()))
    assert levels2[8] == 1


def test_same_version_pools_untouched():
    svc = _service(max_batch=2)
    r1 = svc.submit("a", BfsQuery(source=0))
    r2 = svc.submit("b", BfsQuery(source=0))  # fills the batch -> dispatch
    assert r1.status == "done" and r2.status == "done"
    assert r1.digest == r2.digest
    assert svc.stats().stale_count == 0
