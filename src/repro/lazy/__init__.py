"""Lazy op-graph with a fusing optimizer.

Frontend calls on vector-valued GraphBLAS operations record into a lazy
expression tape instead of executing; evaluation is forced at observation
points (host extraction, scalar reductions feeding Python control flow,
container mutation, profiler reads, explicit :func:`wait`).  The flush
runs an optimizer over the whole pending program: ewise-chain fusion,
dead-materialization elimination, mask sinking, loop-level push/pull
selection, and automatic whole-loop capture.

Eager mode (:func:`lazy_disabled`, or ``REPRO_LAZY=0``) executes the same
run closures immediately and is bit-identical by construction — every
optimizer decision is a pure launch/transfer/materialization choice.

See ``docs/optimizer.md`` for the pass-by-pass walkthrough.
"""

from __future__ import annotations

from .config import (
    configure,
    lazy_disabled,
    lazy_enabled,
    lazy_mode,
    pass_enabled,
    passes_configured,
)
from .schedule import sync, tape_len, wait

__all__ = [
    "configure",
    "lazy_disabled",
    "lazy_enabled",
    "lazy_mode",
    "pass_enabled",
    "passes_configured",
    "sync",
    "tape_len",
    "wait",
]
