"""Kernels specific to the multi-device backend.

Almost all shard-local work reuses the single-device kernels from
:mod:`repro.backends.cuda_sim.kernels` — their work estimators inspect the
actual operands, so a launch over a 1/P row shard automatically costs ~1/P
of the full launch.  The two kernels here have no single-device analogue:

- ``partial_merge`` — after a push-mode product, every device folds the
  exchanged partial contributions for its owned output range with the
  semiring's additive monoid (the local half of a reduce-scatter).
- ``transpose_shard`` — each device counting-sorts its own block of edges
  during a distributed transpose; the cross-device shuffle that follows is
  charged to the communication model, not this kernel.
"""

from __future__ import annotations

from ...gpu.costmodel import KernelWork
from ...gpu.kernel import Kernel
from ..cuda_sim.kernels import (
    _IDX,
    _no_declared_access,
    _reads_all,
    _transpose_work,
    combine_coalescing,
)

__all__ = ["PARTIAL_MERGE", "TRANSPOSE_SHARD"]


def _partial_merge_work(nvals: float, item: int) -> KernelWork:
    """Fold ~``nvals`` exchanged entries into the owned output slice.

    Sources arrive as P−1 contiguous buffers (sequential reads); the fold
    updates a sparse accumulator keyed by output index (scattered writes).
    """
    reads, coal_r = combine_coalescing([(nvals * (item + _IDX), "sequential")])
    writes, coal_w = combine_coalescing([(nvals * (item + _IDX), "scatter")])
    total = reads + writes
    coal = (reads * coal_r + writes * coal_w) / total if total else 1.0
    return KernelWork(
        flops=nvals,
        bytes_read=reads,
        bytes_written=writes,
        threads=max(int(nvals), 1),
        coalescing=coal,
    )


PARTIAL_MERGE = Kernel(
    "partial_merge",
    lambda nvals, item: None,
    lambda nvals, item: _partial_merge_work(nvals, item),
    accesses=_no_declared_access,  # charge-only; operands are scalars
)


# Charge-only: the shard-local counting sort of a distributed transpose.
# The semantic transpose is computed once on the host (memoised per matrix
# version via ``cached_transpose``); this kernel prices each device's share.
TRANSPOSE_SHARD = Kernel(
    "transpose_shard",
    lambda shard: None,
    _transpose_work,
    accesses=_reads_all,
)
