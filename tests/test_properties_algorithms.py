"""Hypothesis property tests on algorithm-level invariants.

These check *mathematical* properties that must hold on any graph, rather
than comparing to an oracle: triangle-inequality style bounds between BFS
and SSSP, partition laws for components, independence/maximality for MIS,
and tree properties for MST.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro as gb
from repro.algorithms import (
    bfs_levels,
    bfs_parents,
    connected_components,
    mis,
    mst_prim,
    sssp,
    triangle_count,
    verify_mis,
)


@st.composite
def random_graphs(draw, max_n=24, weighted=False):
    n = draw(st.integers(2, max_n))
    n_edges = draw(st.integers(0, 3 * n))
    src = draw(st.lists(st.integers(0, n - 1), min_size=n_edges, max_size=n_edges))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=n_edges, max_size=n_edges))
    seed = draw(st.integers(0, 2**31))
    from repro.generators import finalize_edges

    return finalize_edges(
        n,
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        weighted=weighted,
        directed=False,
        seed=seed,
    )


class TestBfsProperties:
    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_levels_differ_by_at_most_one_across_edges(self, g):
        levels = bfs_levels(g, 0)
        lv = levels.to_dense(-1)
        r, c, _ = g.to_lists()
        for i, j in zip(r, c):
            if lv[i] >= 0:
                # j is reachable via i, so level(j) <= level(i) + 1.
                assert 0 <= lv[j] <= lv[i] + 1

    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_parents_consistent_with_levels(self, g):
        levels = bfs_levels(g, 0)
        parents = bfs_parents(g, 0)
        assert parents.nvals == levels.nvals
        for v, p in zip(*parents.to_lists()):
            if v == 0:
                assert p == 0
            else:
                assert levels.get(int(v)) == levels.get(int(p)) + 1

    @given(random_graphs())
    @settings(max_examples=30, deadline=None)
    def test_levels_lower_bound_sssp_hops(self, g):
        # With unit weights, SSSP distance equals BFS level.
        levels = bfs_levels(g, 0)
        dist = sssp(g, 0)
        assert dist.nvals == levels.nvals
        for v, lvl in zip(*levels.to_lists()):
            assert dist.get(int(v)) == float(lvl)


class TestSsspProperties:
    @given(random_graphs(weighted=True))
    @settings(max_examples=30, deadline=None)
    def test_edge_relaxation_fixpoint(self, g):
        # d is a fixpoint: d[j] <= d[i] + w(i,j) for every edge.
        d = sssp(g, 0)
        dd = d.to_dense(np.inf)
        r, c, v = g.to_lists()
        for i, j, w in zip(r, c, v):
            assert dd[j] <= dd[i] + w + 1e-9

    @given(random_graphs(weighted=True))
    @settings(max_examples=30, deadline=None)
    def test_source_distance_zero(self, g):
        assert sssp(g, 0).get(0) == 0.0


class TestComponentProperties:
    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_labels_constant_on_edges(self, g):
        labels = connected_components(g).to_dense(-1)
        r, c, _ = g.to_lists()
        for i, j in zip(r, c):
            assert labels[i] == labels[j]

    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_label_is_member_minimum(self, g):
        labels = connected_components(g).to_dense(-1)
        for v in range(g.nrows):
            members = np.flatnonzero(labels == labels[v])
            assert labels[v] == members.min()

    @given(random_graphs())
    @settings(max_examples=30, deadline=None)
    def test_bfs_reaches_exactly_source_component(self, g):
        labels = connected_components(g).to_dense(-1)
        reached = set(bfs_levels(g, 0).to_lists()[0])
        component = set(np.flatnonzero(labels == labels[0]).tolist())
        assert reached == component


class TestMisProperties:
    @given(random_graphs(), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_always_valid(self, g, seed):
        s = mis(g, seed=seed)
        assert verify_mis(g, s)


class TestMstProperties:
    @given(random_graphs(weighted=True))
    @settings(max_examples=25, deadline=None)
    def test_tree_size_and_connectivity(self, g):
        total, parents = mst_prim(g, 0)
        comp = set(bfs_levels(g, 0).to_lists()[0])
        # Tree covers exactly the source component; n-1 edges => parents
        # has one entry per covered vertex (root self-loop included).
        assert set(parents.to_lists()[0]) == comp
        # Following parents always terminates at the root.
        pd = dict(zip(*parents.to_lists()))
        for v in comp:
            seen = set()
            while v != 0:
                assert v not in seen, "cycle in MST parents"
                seen.add(v)
                v = int(pd[v])

    @given(random_graphs(weighted=True))
    @settings(max_examples=20, deadline=None)
    def test_weight_nonnegative_and_bounded(self, g):
        total, parents = mst_prim(g, 0)
        assert total >= 0.0
        # Total is at most the sum of all edge weights.
        assert total <= float(np.sum(g.to_lists()[2])) + 1e-9


class TestTriangleProperties:
    @given(random_graphs())
    @settings(max_examples=30, deadline=None)
    def test_count_matches_dense_trace_formula(self, g):
        # triangles = trace(A³) / 6 for simple undirected graphs.
        a = g.to_dense(0.0)
        a = (a != 0).astype(float)
        expected = int(round(np.trace(a @ a @ a) / 6))
        assert triangle_count(g) == expected
