"""The standard workload suite used by every benchmark table.

A small, fixed set of named graphs (R-MAT at several scales, Erdős–Rényi,
a 2-D grid as the road-network proxy) with fixed seeds so table rows are
reproducible run to run.  Graphs are cached per process — generation cost
must not pollute kernel timings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..core.matrix import Matrix
from ..core.vector import Vector
from ..generators import erdos_renyi_gnp, grid_2d, rmat
from ..types import FP64

__all__ = ["Workload", "WORKLOADS", "get_workload", "workload_names", "random_frontier"]


@dataclass(frozen=True)
class Workload:
    """A named benchmark graph."""

    name: str
    description: str
    factory: Callable[[], Matrix]


def _rmat_factory(scale: int, ef: int, weighted: bool = True):
    return lambda: rmat(scale=scale, edge_factor=ef, seed=42, weighted=weighted)


WORKLOADS: Dict[str, Workload] = {
    w.name: w
    for w in [
        Workload("rmat_s8", "R-MAT scale 8, ef 8 (256 vertices)", _rmat_factory(8, 8)),
        Workload("rmat_s10", "R-MAT scale 10, ef 8 (1k vertices)", _rmat_factory(10, 8)),
        Workload("rmat_s12", "R-MAT scale 12, ef 8 (4k vertices)", _rmat_factory(12, 8)),
        Workload("rmat_s13", "R-MAT scale 13, ef 8 (8k vertices)", _rmat_factory(13, 8)),
        Workload(
            "er_4k",
            "Erdős–Rényi n=4096, avg degree ~8",
            lambda: erdos_renyi_gnp(4096, 8 / 4096, seed=42, weighted=True),
        ),
        Workload(
            "grid_64",
            "64x64 grid (road-network proxy)",
            lambda: grid_2d(64, 64, weighted=True, seed=42),
        ),
    ]
}

_CACHE: Dict[str, Matrix] = {}


def get_workload(name: str) -> Matrix:
    """The named graph, cached (do not mutate the returned Matrix)."""
    if name not in _CACHE:
        _CACHE[name] = WORKLOADS[name].factory()
    return _CACHE[name]


def workload_names() -> List[str]:
    return list(WORKLOADS)


def random_frontier(n: int, nnz: int, seed: int = 7) -> Vector:
    """A sparse FP64 vector with ``nnz`` random present positions."""
    import numpy as np

    rng = np.random.default_rng(seed)
    nnz = min(nnz, n)
    idx = np.sort(rng.choice(n, size=nnz, replace=False)).astype(np.int64)
    return Vector.from_lists(idx, rng.random(nnz) + 0.5, n, FP64)
