"""gbsan runtime: the dynamic sanitizer for the simulated GPU stack.

A single module-level :data:`ACTIVE` instance (``None`` when disabled) is
probed by the instrumentation points in :mod:`repro.gpu` and
:mod:`repro.distributed.cluster`.  Disabled, every hook site costs one
attribute load and an ``is None`` test — the sanitizer is zero-overhead by
default and enabled explicitly (``repro.sanitizer.enable()`` or the
``GBSAN`` environment variable).

Checkers (all driven by the per-launch :class:`~repro.sanitizer.access.Access`
sets):

**Races** — FastTrack-style vector clocks.  Timelines: the host (issuing
thread), each device's default queue, and each :class:`~repro.gpu.stream.Stream`.
Default-queue operations and transfers are device-synchronising in the
simulator's timing semantics (they start at ``device.clock_us``, which is
the max over all stream timelines), so they join every stream of their
device; stream launches are asynchronous — ordered after their issue point
but unordered with other streams until an event/synchronize/barrier edge.
A write to a buffer that is unordered with the previous write (W/W) or with
outstanding reads (R/W), or a read unordered with the previous write (W/R),
is reported as a race.

**Residency** — a shadow copy of each device's
:class:`~repro.gpu.residency.ResidentSet`.  A kernel read of a container
with no shadow entry is an ``unresident-read``; one whose host version is
newer than the device stamp is a ``stale-read`` (an H2D that should have
happened was elided); an H2D upload of a container the device itself wrote
but never marked clean (``note_result`` forgotten) is a
``missing-note-result``; a read through a freed device buffer is a
``use-after-free``.

**Pool lifetime** — shadow free-lists of the size-class pool with per-block
identities.  Reissuing a pooled block while a live logical array still
references it is a ``pool-alias``; buffers alive at ``Device.reset()`` (or
an explicit :meth:`Sanitizer.check_leaks`) that no resident set references
are ``leak`` findings.

**Graph replay** — at capture, each kernel graph records the (container,
device-buffer) bindings its launches read; a matched replay whose reads
resolve to a *different* device buffer (the container was re-uploaded after
a host mutation — a real CUDA graph would still dereference the captured
pointer) is a ``stale-replay``.  The binding check requires transfer
elision (stable buffers) and is skipped when elision is off.
"""

from __future__ import annotations

import itertools
import weakref
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set, Tuple

from ..exceptions import SanitizerError
from .access import Access, is_tracked, label
from .hb import Epoch, Timeline, join, merge_frontier

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..gpu.device import Device

__all__ = ["Finding", "Sanitizer", "ACTIVE", "activate", "deactivate"]

#: Tombstoned resident-set entries kept per device before pruning.
_TOMBSTONE_CAP = 4096

#: Process-global block identities.  Buffers outlive sanitizer instances
#: (DeviceBuffer.block persists across enable/disable scopes and across
#: reset()), so per-instance counters would recycle ids and misattribute
#: pool blocks to the wrong buffer.
_BLOCK_IDS = itertools.count(1)


@dataclass(frozen=True)
class Finding:
    """One detected hazard."""

    kind: str  # race | unresident-read | stale-read | missing-note-result |
    #            use-after-free | pool-alias | leak | stale-replay
    message: str
    site: str  # kernel / operation name where detected
    device: str  # device description
    buffer: str = ""  # label() of the buffer involved, if any

    def __str__(self) -> str:
        buf = f" [{self.buffer}]" if self.buffer else ""
        return f"gbsan[{self.kind}] at {self.site} on {self.device}:{buf} {self.message}"


class _BufState:
    """FastTrack per-buffer access history."""

    __slots__ = ("obj", "last_write", "write_site", "reads")

    def __init__(self, obj: Any) -> None:
        self.obj = obj  # strong ref pins id()
        self.last_write: Optional[Epoch] = None
        self.write_site: str = ""
        # tid -> (clock, site) of the latest read on that timeline.
        self.reads: Dict[int, Tuple[int, str]] = {}


@dataclass
class _ResEntry:
    """Shadow of one ResidentSet entry (or tombstone after eviction)."""

    container: Any
    version: int
    buffer: Optional[Any] = None  # DeviceBuffer; None for derived entries
    freed: bool = False
    derived: bool = False  # shard/slice of a tracked parent (multi_sim)
    device_wrote: str = ""  # site of a declared device write not yet marked clean


class _AllocState:
    """Shadow of one DeviceAllocator's pool, with per-block identity."""

    __slots__ = ("pool", "live", "retired")

    def __init__(self) -> None:
        self.pool: Dict[int, List[int]] = {}  # size class -> block-id LIFO
        # block id -> (weakref to owning buffer, nbytes)
        self.live: Dict[int, Tuple["weakref.ref[Any]", int]] = {}
        # pooled block id -> weakref of the buffer that last owned it
        self.retired: Dict[int, "weakref.ref[Any]"] = {}


class _GraphState:
    """Per-KernelGraph capture bindings and current-iteration reads."""

    __slots__ = ("captured", "current")

    def __init__(self) -> None:
        # id(container) -> (container, device buffer bound at capture)
        self.captured: Dict[int, Tuple[Any, Optional[Any]]] = {}
        self.current: List[Tuple[Any, Optional[Any]]] = []


class Sanitizer:
    """Collects hazards from the instrumented simulated-GPU stack."""

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        self.findings: List[Finding] = []
        self._seen: Set[Tuple[str, ...]] = set()
        self._host = Timeline("host")
        self._timelines: Dict[int, Timeline] = {}  # id(device|stream) -> tl
        self._anchors: Dict[int, Any] = {}  # pins ids of timeline owners
        self._dev_streams: Dict[int, List[int]] = {}  # id(device) -> stream keys
        self._bufs: Dict[int, _BufState] = {}  # id(container) -> history
        self._mirror: Dict[int, Dict[int, _ResEntry]] = {}  # id(device) -> shadow
        self._events: Dict[int, Dict[int, int]] = {}  # id(event) -> vc snapshot
        self._alloc: Dict[int, _AllocState] = {}  # id(allocator) -> shadow
        self._graphs: Dict[int, _GraphState] = {}  # id(graph) -> state

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def _emit(
        self, kind: str, message: str, site: str, device: str, buffer: str = ""
    ) -> None:
        key = (kind, site, buffer.split("(")[0], message.split(";")[0])
        if key in self._seen:
            return
        self._seen.add(key)
        finding = Finding(kind, message, site, device, buffer)
        self.findings.append(finding)
        if self.strict:
            raise SanitizerError(finding)

    def drain(self) -> List[Finding]:
        """Return accumulated findings and clear the list (keeps tracking state)."""
        out, self.findings = self.findings, []
        self._seen.clear()
        return out

    def reset(self) -> None:
        """Forget all tracking state and findings (e.g. between fuzz programs)."""
        self.__init__(strict=self.strict)  # type: ignore[misc]

    def report(self) -> str:
        """Human-readable multi-line report of current findings."""
        if not self.findings:
            return "gbsan: no findings"
        lines = [f"gbsan: {len(self.findings)} finding(s)"]
        lines.extend(f"  {i + 1}. {f}" for i, f in enumerate(self.findings))
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # timelines
    # ------------------------------------------------------------------

    def _device_tl(self, device: "Device") -> Timeline:
        key = id(device)
        tl = self._timelines.get(key)
        if tl is None:
            tl = Timeline(f"dev:{device.props.name}@{key:#x}")
            self._timelines[key] = tl
            self._anchors[key] = device
            self._dev_streams.setdefault(key, [])
        return tl

    def _stream_tl(self, stream: Any) -> Timeline:
        key = id(stream)
        tl = self._timelines.get(key)
        if tl is None:
            tl = Timeline(f"stream@{key:#x}")
            self._timelines[key] = tl
            self._anchors[key] = stream
            dev_tl = self._device_tl(stream.device)
            join(tl, dev_tl.vc)  # a new stream observes prior device work
            self._dev_streams.setdefault(id(stream.device), []).append(key)
        return tl

    def _sync_epoch(self, device: "Device", site: str) -> Tuple[Timeline, Epoch]:
        """Tick a device-synchronising op (default-queue launch, transfer)."""
        tl = self._device_tl(device)
        join(tl, self._host.vc)
        for skey in self._dev_streams.get(id(device), ()):
            stl = self._timelines.get(skey)
            if stl is not None:
                join(tl, stl.vc)
        epoch = tl.tick()
        join(self._host, tl.vc)  # host blocks until the sync op completes
        return tl, epoch

    def _async_epoch(self, stream: Any) -> Tuple[Timeline, Epoch]:
        """Tick an asynchronous stream launch (ordered after its issue point)."""
        tl = self._stream_tl(stream)
        join(tl, self._host.vc)
        return tl, tl.tick()

    # ------------------------------------------------------------------
    # race + residency checks on one launch
    # ------------------------------------------------------------------

    def on_launch(
        self,
        kernel_name: str,
        access: Access,
        device: "Device",
        stream: Any = None,
    ) -> None:
        """Check one kernel launch's declared accesses (called pre-execution)."""
        if stream is None:
            tl, _ = self._sync_epoch(device, kernel_name)
        else:
            tl, _ = self._async_epoch(stream)
        graph = getattr(device, "active_graph", None) if stream is None else None
        gstate = self._graphs.get(id(graph)) if graph is not None else None
        shadow = self._mirror.setdefault(id(device), {})
        for obj in access.reads:
            if not is_tracked(obj):
                continue
            self._check_read(obj, tl, kernel_name, device, shadow)
            if gstate is not None:
                entry = shadow.get(id(obj))
                gstate.current.append(
                    (obj, entry.buffer if entry is not None else None)
                )
        for obj in access.writes:
            if not is_tracked(obj):
                continue
            self._check_write(obj, tl, kernel_name, device, shadow)

    def _buf_state(self, obj: Any) -> _BufState:
        st = self._bufs.get(id(obj))
        if st is None:
            st = _BufState(obj)
            self._bufs[id(obj)] = st
        return st

    def _check_read(
        self,
        obj: Any,
        tl: Timeline,
        site: str,
        device: "Device",
        shadow: Dict[int, _ResEntry],
    ) -> None:
        st = self._buf_state(obj)
        if st.last_write is not None and not tl.ordered_after(st.last_write):
            self._emit(
                "race",
                f"read is unordered with write at {st.write_site} "
                "(no stream/event/barrier edge between them)",
                site,
                repr(device),
                label(obj),
            )
        st.reads[tl.tid] = (tl.clock, site)
        self._check_residency(obj, site, device, shadow)

    def _check_write(
        self,
        obj: Any,
        tl: Timeline,
        site: str,
        device: "Device",
        shadow: Dict[int, _ResEntry],
    ) -> None:
        st = self._buf_state(obj)
        if st.last_write is not None and not tl.ordered_after(st.last_write):
            self._emit(
                "race",
                f"write is unordered with write at {st.write_site} "
                "(no stream/event/barrier edge between them)",
                site,
                repr(device),
                label(obj),
            )
        for tid, (clock, rsite) in st.reads.items():
            if tid != tl.tid and not tl.ordered_after((tid, clock)):
                self._emit(
                    "race",
                    f"write is unordered with read at {rsite} "
                    "(no stream/event/barrier edge between them)",
                    site,
                    repr(device),
                    label(obj),
                )
                break
        st.last_write = (tl.tid, tl.clock)
        st.write_site = site
        st.reads.clear()
        # The device now holds the freshest copy; it stays "dirty" until the
        # backend marks it clean (note_result -> ResidentSet.mark).
        entry = shadow.get(id(obj))
        if entry is not None and not entry.freed:
            entry.device_wrote = site

    def _check_residency(
        self, obj: Any, site: str, device: "Device", shadow: Dict[int, _ResEntry]
    ) -> None:
        entry = shadow.get(id(obj))
        version = getattr(obj, "version", 0)
        if entry is None:
            self._emit(
                "unresident-read",
                "kernel reads a container never uploaded to (or marked resident "
                "on) this device — missing ensure/mark before launch",
                site,
                repr(device),
                label(obj),
            )
            return
        if entry.freed or (entry.buffer is not None and not entry.buffer.alive):
            self._emit(
                "use-after-free",
                "kernel reads a container whose device buffer was freed "
                "(evicted or returned to the pool)",
                site,
                repr(device),
                label(obj),
            )
            return
        if entry.version != version and not entry.device_wrote:
            self._emit(
                "stale-read",
                f"device copy is v{entry.version} but the host copy is "
                f"v{version}; the H2D transfer that should refresh it was "
                "elided (dirty bit ignored)",
                site,
                repr(device),
                label(obj),
            )

    # ------------------------------------------------------------------
    # transfers
    # ------------------------------------------------------------------

    def on_transfer(self, container: Any, kind: str, device: "Device") -> None:
        """HB + residency bookkeeping for one tracked-container transfer."""
        if not is_tracked(container):
            return
        site = f"memcpy_{kind}"
        tl, _ = self._sync_epoch(device, site)
        shadow = self._mirror.setdefault(id(device), {})
        entry = shadow.get(id(container))
        st = self._buf_state(container)
        if kind == "h2d":
            if st.last_write is not None and not tl.ordered_after(st.last_write):
                self._emit(
                    "race",
                    f"upload is unordered with device write at {st.write_site}",
                    site,
                    repr(device),
                    label(container),
                )
            # The eviction that precedes a stale re-upload tombstones the
            # entry, so the dirty marker is honoured even on freed entries.
            if entry is not None and entry.device_wrote:
                self._emit(
                    "missing-note-result",
                    f"re-uploading a container the device itself produced at "
                    f"{entry.device_wrote}; the result was never marked clean "
                    "(note_result/dirty-bit gap), so the host copy looks newer "
                    "and the upload is redundant",
                    site,
                    repr(device),
                    label(container),
                )
            st.last_write = (tl.tid, tl.clock)
            st.write_site = site
            st.reads.clear()
        else:  # d2h
            if st.last_write is not None and not tl.ordered_after(st.last_write):
                self._emit(
                    "race",
                    f"download is unordered with write at {st.write_site}",
                    site,
                    repr(device),
                    label(container),
                )
            st.reads[tl.tid] = (tl.clock, site)

    # ------------------------------------------------------------------
    # ResidentSet shadow
    # ------------------------------------------------------------------

    def on_resident_mark(
        self, device: "Device", container: Any, buffer: Any
    ) -> None:
        """Entry created/refreshed in a ResidentSet (container clean on-device)."""
        shadow = self._mirror.setdefault(id(device), {})
        entry = shadow.get(id(container))
        version = getattr(container, "version", 0)
        if entry is not None and not entry.freed:
            entry.version = version
            if buffer is not None:
                entry.buffer = buffer
            entry.device_wrote = ""
            return
        shadow[id(container)] = _ResEntry(container, version, buffer)

    def on_resident_evict(self, device: "Device", container: Any) -> None:
        """Entry dropped from a ResidentSet (device buffer freed)."""
        shadow = self._mirror.setdefault(id(device), {})
        entry = shadow.get(id(container))
        if entry is not None:
            entry.freed = True
        if len(shadow) > _TOMBSTONE_CAP:
            for key in [k for k, e in shadow.items() if e.freed][: len(shadow) // 2]:
                del shadow[key]

    def note_derived(self, device: "Device", child: Any, parent: Any) -> None:
        """Register a device-resident derived view (e.g. a multi_sim shard).

        The child shares storage with ``parent`` (already resident); it gets
        its own shadow entry so kernels reading the shard pass the residency
        check without any allocator traffic.
        """
        if not is_tracked(child):
            return
        shadow = self._mirror.setdefault(id(device), {})
        shadow[id(child)] = _ResEntry(
            child, getattr(child, "version", 0), None, derived=True
        )

    # ------------------------------------------------------------------
    # streams and events
    # ------------------------------------------------------------------

    def on_stream_created(self, stream: Any) -> None:
        self._stream_tl(stream)

    def on_event_record(self, stream: Any, event: Any) -> None:
        tl = self._stream_tl(stream)
        self._events[id(event)] = dict(tl.vc)
        self._anchors[id(event)] = event

    def on_event_wait(self, stream: Any, event: Any) -> None:
        snapshot = self._events.get(id(event))
        if snapshot is not None:
            join(self._stream_tl(stream), snapshot)

    def on_stream_sync(self, stream: Any) -> None:
        join(self._host, self._stream_tl(stream).vc)

    def on_cluster_edge(self, edge: Any, devices: Any, streams: Any) -> None:
        """Apply one explicit cluster ordering edge (barrier/collective)."""
        tls = [self._device_tl(d) for d in devices]
        tls.extend(self._stream_tl(s) for s in streams)
        tls.append(self._host)
        frontier = merge_frontier(tls)
        for tl in tls:
            join(tl, frontier)
            tl.tick()

    # ------------------------------------------------------------------
    # allocator shadow (pool lifetime)
    # ------------------------------------------------------------------

    def _alloc_state(self, allocator: Any) -> _AllocState:
        st = self._alloc.get(id(allocator))
        if st is None:
            st = _AllocState()
            self._alloc[id(allocator)] = st
            self._anchors[id(allocator)] = allocator
        return st

    def on_reserve(self, allocator: Any, size_class: int, pooled: bool) -> int:
        """Assign a block identity to one allocation; alias-check pool reuse."""
        st = self._alloc_state(allocator)
        free_list = st.pool.get(size_class)
        if pooled and free_list:
            block = free_list.pop()
            wref = st.retired.pop(block, None)
            old = wref() if wref is not None else None
            if old is not None and self._referenced_by_live_entry(old):
                self._emit(
                    "pool-alias",
                    f"pool block #{block} (class {size_class}) reissued while a "
                    "live logical array still maps onto it; two containers now "
                    "alias one device allocation",
                    "allocator.reserve",
                    repr(allocator),
                    repr(old),
                )
            return block
        return next(_BLOCK_IDS)

    def _referenced_by_live_entry(self, buffer: Any) -> bool:
        for shadow in self._mirror.values():
            for entry in shadow.values():
                if not entry.freed and entry.buffer is buffer:
                    return True
        return False

    def on_buffer_created(self, allocator: Any, buffer: Any) -> None:
        block = getattr(buffer, "block", None)
        if block is None:
            return
        st = self._alloc_state(allocator)
        st.live[block] = (weakref.ref(buffer), buffer.nbytes)

    def on_release(
        self, allocator: Any, size_class: int, block: Optional[int], pooled: bool
    ) -> None:
        if block is None:
            return
        st = self._alloc_state(allocator)
        item = st.live.pop(block, None)
        if pooled:
            st.pool.setdefault(size_class, []).append(block)
            if item is not None:
                st.retired[block] = item[0]

    def check_leaks(self, allocator: Any, site: str = "check_leaks") -> int:
        """Report device buffers still alive but unreachable from any resident set."""
        st = self._alloc.get(id(allocator))
        if st is None:
            return 0
        referenced = {
            id(entry.buffer)
            for shadow in self._mirror.values()
            for entry in shadow.values()
            if not entry.freed and entry.buffer is not None
        }
        leaks = 0
        for block, (wref, nbytes) in list(st.live.items()):
            buf = wref()
            if buf is None or not buf.alive:
                st.live.pop(block, None)
                continue
            if id(buf) not in referenced:
                leaks += 1
                self._emit(
                    "leak",
                    f"device buffer ({nbytes}B, block #{block}) is still "
                    "allocated but no resident set references it",
                    site,
                    repr(allocator),
                    repr(buf),
                )
        return leaks

    def on_device_reset(self, device: "Device") -> None:
        """Leak report at sim reset; the allocator's accounting restarts."""
        self.check_leaks(device.allocator, site="device.reset")
        self._alloc.pop(id(device.allocator), None)

    # ------------------------------------------------------------------
    # kernel-graph replay
    # ------------------------------------------------------------------

    def on_graph_enter(self, graph: Any) -> None:
        gs = self._graphs.get(id(graph))
        if gs is None:
            gs = _GraphState()
            self._graphs[id(graph)] = gs
            self._anchors[id(graph)] = graph
        gs.current = []

    def on_graph_commit(self, graph: Any, replayed: bool) -> None:
        """Capture rebinds; a matched replay checks bindings against capture.

        Binding identity is only stable when transfer elision keeps clean
        containers on their original device buffers, so the check is skipped
        when elision is disabled.
        """
        gs = self._graphs.get(id(graph))
        if gs is None:
            return
        current, gs.current = gs.current, []
        if not replayed:
            gs.captured = {id(c): (c, buf) for c, buf in current}
            return
        from ..gpu import reuse

        if not reuse.elision_enabled():
            return
        for c, buf_now in current:
            cap = gs.captured.get(id(c))
            if cap is None:
                continue
            c_cap, buf_cap = cap
            if c_cap is not c:
                continue
            if buf_cap is not None and buf_now is not None and buf_cap is not buf_now:
                self._emit(
                    "stale-replay",
                    "replayed graph reads a container that was re-uploaded to a "
                    "new device buffer after capture (host mutated it); a real "
                    "CUDA graph would still dereference the captured pointer — "
                    "re-instantiate the graph after host writes",
                    f"graph[{getattr(graph, 'name', '?')}]",
                    "<graph replay>",
                    label(c),
                )


#: The process-wide sanitizer; ``None`` == disabled (the zero-overhead state).
ACTIVE: Optional[Sanitizer] = None


def activate(strict: bool = False) -> Sanitizer:
    """Install (or return the existing) process-wide sanitizer."""
    global ACTIVE
    if ACTIVE is None:
        ACTIVE = Sanitizer(strict=strict)
    else:
        ACTIVE.strict = strict or ACTIVE.strict
    return ACTIVE


def deactivate() -> Optional[Sanitizer]:
    """Remove the process-wide sanitizer; returns it (with its findings)."""
    global ACTIVE
    san, ACTIVE = ACTIVE, None
    return san
