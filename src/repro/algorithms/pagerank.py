"""PageRank via repeated vxm over the arithmetic semiring.

The power iteration uses the scaled-vector formulation: each pass scales the
rank vector by the reciprocal out-degrees (one ewise_mult) and propagates it
along the raw adjacency, which equals r·(D⁻¹A) without materialising the
row-stochastic matrix.  Dangling vertices (zero out-degree) redistribute
their mass uniformly — the standard formulation.  :func:`row_stochastic`
still builds the explicit transition matrix for callers that want it.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core import operations as ops
from ..core.assign import assign_scalar
from ..core.descriptor import Descriptor
from ..core.fused import ewise_apply
from ..core.matrix import Matrix
from ..core.operators import ABS, MINUS, MINV, PLUS, TIMES
from ..core.monoid import PLUS_MONOID
from ..core.semiring import PLUS_TIMES
from ..core.vector import Vector
from ..exceptions import InvalidValueError
from ..types import FP64

__all__ = ["pagerank", "row_stochastic"]


def row_stochastic(g: Matrix) -> Tuple[Matrix, Vector]:
    """(M, dangling): M = D⁻¹·g with rows normalised; dangling row-sum=0.

    ``dangling`` is a BOOL-ish vector marking zero-out-degree vertices
    (value 1.0 at each dangling vertex).
    """
    n = g.nrows
    if n != g.ncols:
        raise InvalidValueError(f"adjacency must be square, got {g.shape}")
    gf = g if g.type is FP64 else Matrix(g.container.astype(FP64))
    outdeg = Vector.sparse(FP64, n)
    ops.reduce_to_vector(outdeg, gf, PLUS_MONOID)
    inv = Vector.sparse(FP64, n)
    ops.apply(inv, outdeg, MINV)
    dinv = Matrix.from_lists(
        inv.indices_array(), inv.indices_array(), inv.values_array(), n, n, FP64
    )
    m = Matrix.sparse(FP64, n, n)
    ops.mxm(m, dinv, gf, PLUS_TIMES)
    dangling = Vector.full(1.0, n, FP64)
    for i in outdeg.indices_array():
        dangling.remove_element(int(i))
    return m, dangling


def pagerank(
    g: Matrix,
    damping: float = 0.85,
    tol: float = 1e-8,
    max_iter: int = 100,
    warm_start: Optional[Vector] = None,
) -> Vector:
    """PageRank vector (dense; sums to 1). Converges in L1 norm to ``tol``.

    ``warm_start`` seeds the power iteration with a previous rank vector
    instead of the uniform distribution (read-only; a fresh vector is
    returned).  Streaming updates restart from the pre-batch ranks: the
    iteration converges to the same fixpoint from any stochastic start, so
    a warm restart after a small edge batch needs only the iterations that
    the perturbation actually displaced.
    """
    if not 0.0 <= damping < 1.0:
        raise InvalidValueError(f"damping must be in [0, 1), got {damping}")
    n = g.nrows
    if n == 0:
        return Vector.sparse(FP64, 0)
    gf = g if g.type is FP64 else Matrix(g.container.astype(FP64))
    # Out-degree (weighted) and its reciprocal, computed device-side.
    outdeg = Vector.sparse(FP64, n)
    ops.reduce_to_vector(outdeg, gf, PLUS_MONOID)
    inv = Vector.sparse(FP64, n)
    ops.apply(inv, outdeg, MINV)
    # Dangling indicator built on-device: 1 wherever outdeg has no entry.
    dangling = Vector.sparse(FP64, n)
    assign_scalar(
        dangling,
        1.0,
        mask=outdeg,
        desc=Descriptor(complement_mask=True, structural_mask=True),
    )
    if warm_start is not None:
        if warm_start.size != n:
            raise InvalidValueError(
                f"warm_start size {warm_start.size} != nrows {n}"
            )
        r = warm_start
    else:
        # Uniform start vector as a device-side fill — never uploaded.
        r = Vector.sparse(FP64, n)
        assign_scalar(r, 1.0 / n)
    teleport = (1.0 - damping) / n
    # Every iteration flushes the same lazy tape; the optimizer captures
    # the steady-state signature automatically (repro.lazy.capture) and
    # replays it as aggregated graph launches — no manual capture scope.
    for _ in range(max_iter):
        # Mass parked on dangling vertices, redistributed uniformly.
        dmass = 0.0
        if dangling.nvals:
            captured = Vector.sparse(FP64, n)
            ops.ewise_mult(captured, r, dangling, TIMES)
            dmass = float(ops.reduce(captured, PLUS_MONOID))
        # Scale by 1/outdeg, then propagate along the raw adjacency:
        # (r ⊙ d⁻¹)·A ≡ r·(D⁻¹A) without ever materialising the
        # row-stochastic matrix (no setup mxm, no diagonal upload).
        q = Vector.sparse(FP64, n)
        ops.ewise_mult(q, r, inv, TIMES)
        r_new = Vector.sparse(FP64, n)
        ops.vxm(r_new, q, gf, PLUS_TIMES)
        ops.apply(r_new, r_new, TIMES, bind_first=damping)
        base = teleport + damping * dmass / n
        # Device-side constant fill instead of a host-built dense vector;
        # under the fusing optimizer the fill never even materialises — it
        # is generated inside the union-add kernel.
        shifted = Vector.sparse(FP64, n)
        assign_scalar(shifted, base)
        ops.ewise_add(shifted, shifted, r_new, PLUS)
        r_new = shifted
        # L1 convergence check — |r_new − r| in one fused pass.
        diff = Vector.sparse(FP64, n)
        ewise_apply(diff, r_new, r, MINUS, ABS)
        delta = float(ops.reduce(diff, PLUS_MONOID))
        r = r_new
        if delta < tol:
            break
    return r
