"""Figure 3 — SpGEMM (mxm) runtime vs problem size and density.

Reconstructed experiment: C = A·A over (PLUS, TIMES) on Erdős–Rényi graphs,
(a) sweeping n at fixed average degree and (b) sweeping density at fixed n.
Shape claims: runtime grows with FLOPs (≈ nnz·avg_deg) — superlinear in
density at fixed n; the backend ordering holds throughout.
"""

from __future__ import annotations

import pytest

import repro as gb
from repro.bench.harness import time_operation
from repro.bench.tables import format_series
from repro.core import operations as ops
from repro.core.semiring import PLUS_TIMES

from conftest import bench_backend, save_json, save_table, sim_metrics

SIZES = [256, 512, 1024, 2048]
DEGREES = [2, 4, 8, 16]  # density sweep at n = 1024
REFERENCE_MAX_N = 512
BACKENDS = ["reference", "cpu", "cuda_sim"]


def make_case(n, avg_deg):
    g = gb.generators.erdos_renyi_gnp(n, avg_deg / n, seed=22, weighted=True)

    def run():
        c = gb.Matrix.sparse(gb.FP64, n, n)
        return ops.mxm(c, g, g, PLUS_TIMES)

    return run


_SIZE_CASES = {n: make_case(n, 8) for n in SIZES}
_DENSITY_CASES = {d: make_case(1024, d) for d in DEGREES}


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("n", SIZES)
def test_fig3a_mxm_size(benchmark, backend, n):
    if backend == "reference" and n > REFERENCE_MAX_N:
        pytest.skip("sequential baseline capped at n=512")
    bench_backend(benchmark, backend, _SIZE_CASES[n], rounds=2)


@pytest.mark.parametrize("backend", ["cpu", "cuda_sim"])
@pytest.mark.parametrize("deg", DEGREES)
def test_fig3b_mxm_density(benchmark, backend, deg):
    bench_backend(benchmark, backend, _DENSITY_CASES[deg], rounds=2)


def test_fig3_render(benchmark):
    def build():
        series = {b: [] for b in BACKENDS}
        for n in SIZES:
            for b in BACKENDS:
                if b == "reference" and n > REFERENCE_MAX_N:
                    series[b].append(float("nan"))
                    continue
                series[b].append(
                    time_operation(b, _SIZE_CASES[n], repeat=1 if b == "reference" else 2).seconds
                )
        fig_a = format_series(
            "Figure 3a — mxm runtime vs n (ER, avg degree 8; seconds)",
            "n",
            SIZES,
            series,
        )
        dens = {b: [] for b in ("cpu", "cuda_sim")}
        for d in DEGREES:
            for b in dens:
                dens[b].append(time_operation(b, _DENSITY_CASES[d], repeat=2).seconds)
        fig_b = format_series(
            "Figure 3b — mxm runtime vs avg degree (n=1024; seconds)",
            "avg_deg",
            DEGREES,
            dens,
        )
        save_table("fig3_mxm_scaling", fig_a + "\n\n" + fig_b)
        # Shape: growth in both sweeps for the simulated GPU.
        assert series["cuda_sim"][-1] > series["cuda_sim"][0]
        assert dens["cuda_sim"][-1] > dens["cuda_sim"][0]
        # Shape: superlinear in degree (FLOPs ~ deg² at fixed n): 8x degree
        # should cost much more than 8x time on the modeled device.
        assert dens["cuda_sim"][-1] / dens["cuda_sim"][0] > 8.0
        # Backend ordering at the largest measured reference point.
        i = SIZES.index(REFERENCE_MAX_N)
        assert series["reference"][i] > series["cpu"][i]
        assert series["reference"][i] > series["cuda_sim"][i]
        # Machine-readable record with deterministic simulator counters for
        # both sweeps (CI regression gate, see check_bench_regressions.py).
        record = {
            "figure": "fig3_mxm_scaling",
            "sizes": SIZES,
            "degrees": DEGREES,
            "seconds": series,
            "seconds_density": dens,
            "cuda_sim_metrics": {
                **{f"n_{n}": sim_metrics(_SIZE_CASES[n]) for n in SIZES},
                **{f"deg_{d}": sim_metrics(_DENSITY_CASES[d]) for d in DEGREES},
            },
        }
        save_json("fig3", record)
        return fig_a

    benchmark.pedantic(build, rounds=1, iterations=1)
