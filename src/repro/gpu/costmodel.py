"""Analytic GPU cost model.

Kernel time is modeled with the standard roofline-plus-overheads form::

    t = launch_overhead
      + max( flops / (effective_compute_rate),
             bytes  / (effective_bandwidth) )

with three first-order corrections that dominate real sparse-kernel
behaviour on GPUs and that the Table 3 ablation sweeps:

- **occupancy** — a grid too small to fill the machine scales compute rate
  by ``resident_threads / (cores)`` (bounded by 1);
- **divergence** — intra-warp branch divergence divides compute throughput
  (1 = uniform, warp_size = fully serialised lanes);
- **coalescing** — scattered global-memory access divides effective
  bandwidth (1 = fully coalesced, up to 32 for per-lane random access).

Host↔device transfers are charged ``pcie_latency + bytes / pcie_bandwidth``.
The model intentionally ignores caches, shared-memory bank conflicts, and
ILP; a GABB'16-scale evaluation only needs first-order ordering and
crossover behaviour, which these three terms reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .device import DeviceProperties

__all__ = ["CostModel", "KernelWork"]


@dataclass(frozen=True)
class KernelWork:
    """Work description a kernel reports at launch time."""

    flops: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    threads: int = 1
    divergence: float = 1.0  # >= 1; divides compute throughput
    coalescing: float = 1.0  # >= 1; divides memory bandwidth

    @property
    def bytes_total(self) -> float:
        return self.bytes_read + self.bytes_written


class CostModel:
    """Maps :class:`KernelWork` to simulated microseconds."""

    def __init__(self, props: "DeviceProperties"):
        self.props = props
        # Ablation switches (Table 3): disabling a term sets its factor to 1.
        self.enable_divergence = True
        self.enable_coalescing = True
        self.enable_occupancy = True

    # ------------------------------------------------------------------

    def occupancy(self, threads: int) -> float:
        """Fraction of peak compute the grid can engage (0, 1]."""
        if not self.enable_occupancy:
            return 1.0
        total = self.props.total_cores
        return min(1.0, max(threads, 1) / total)

    def kernel_time_us(self, work: KernelWork) -> float:
        """Simulated duration of one kernel launch.

        Divergence scales the whole busy time, not just ALU time: lanes that
        serialise (thread-per-row skew) or idle (warp-per-row short rows)
        stall both instruction issue and LD/ST issue, so effective compute
        *and* memory throughput drop together — which is why CSR kernel
        choice matters on GPUs at all.
        """
        p = self.props
        div = work.divergence if self.enable_divergence else 1.0
        coal = work.coalescing if self.enable_coalescing else 1.0
        compute_rate = p.peak_gflops * self.occupancy(work.threads)
        # GFLOP/s == FLOP/ns; convert to FLOP/us.
        compute_us = work.flops / max(compute_rate * 1e3, 1e-12)
        bandwidth = p.mem_bandwidth_gbps / max(coal, 1.0)
        # GB/s == byte/ns; convert to byte/us.
        memory_us = work.bytes_total / max(bandwidth * 1e3, 1e-12)
        return p.launch_overhead_us + max(compute_us, memory_us) * max(div, 1.0)

    def transfer_time_us(self, nbytes: float) -> float:
        """Simulated duration of one H2D or D2H copy."""
        p = self.props
        return p.pcie_latency_us + nbytes / max(p.pcie_bandwidth_gbps * 1e3, 1e-12)
