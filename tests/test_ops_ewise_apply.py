"""eWiseAdd / eWiseMult / apply / select / reduce semantics on all backends."""

import numpy as np
import pytest

import repro as gb
from repro.core import operations as ops
from repro.core.monoid import MAX_MONOID, MIN_MONOID, PLUS_MONOID
from repro.core.operators import (
    ABS,
    AINV,
    DIV,
    GT,
    MIN,
    MINUS,
    PLUS,
    ROWINDEX,
    TIMES,
    TRIL,
    VALUEGT,
)

from .conftest import random_dense_matrix, random_dense_vector


class TestEwiseAddVector:
    def test_union_semantics(self, backend):
        u = gb.Vector.from_lists([0, 1], [1.0, 2.0], 4)
        v = gb.Vector.from_lists([1, 2], [10.0, 20.0], 4)
        w = gb.Vector.sparse(gb.FP64, 4)
        ops.ewise_add(w, u, v, PLUS)
        assert w.to_lists() == ([0, 1, 2], [1.0, 12.0, 20.0])

    def test_minus_is_not_commutative(self, backend):
        u = gb.Vector.from_lists([0], [5.0], 2)
        v = gb.Vector.from_lists([0], [3.0], 2)
        w = gb.Vector.sparse(gb.FP64, 2)
        ops.ewise_add(w, u, v, MINUS)
        assert w.get(0) == 2.0

    def test_one_sided_passthrough_unmodified(self, backend):
        # eWiseAdd with MINUS: entries present on one side pass through
        # without negation (union semantics, not arithmetic subtraction).
        u = gb.Vector.from_lists([0], [5.0], 3)
        v = gb.Vector.from_lists([2], [3.0], 3)
        w = gb.Vector.sparse(gb.FP64, 3)
        ops.ewise_add(w, u, v, MINUS)
        assert w.get(0) == 5.0 and w.get(2) == 3.0

    def test_size_mismatch(self, backend):
        with pytest.raises(gb.DimensionMismatchError):
            ops.ewise_add(
                gb.Vector.sparse(gb.FP64, 3),
                gb.Vector.sparse(gb.FP64, 3),
                gb.Vector.sparse(gb.FP64, 4),
                PLUS,
            )

    def test_matches_dense(self, backend, rng):
        a = random_dense_vector(rng, 20)
        b = random_dense_vector(rng, 20)
        w = gb.Vector.sparse(gb.FP64, 20)
        ops.ewise_add(w, gb.Vector.from_dense(a), gb.Vector.from_dense(b), PLUS)
        np.testing.assert_allclose(w.to_dense(), a + b, atol=1e-12)


class TestEwiseMultVector:
    def test_intersection_semantics(self, backend):
        u = gb.Vector.from_lists([0, 1], [2.0, 3.0], 4)
        v = gb.Vector.from_lists([1, 2], [10.0, 20.0], 4)
        w = gb.Vector.sparse(gb.FP64, 4)
        ops.ewise_mult(w, u, v, TIMES)
        assert w.to_lists() == ([1], [30.0])

    def test_div_order(self, backend):
        u = gb.Vector.from_lists([0], [6.0], 1)
        v = gb.Vector.from_lists([0], [3.0], 1)
        w = gb.Vector.sparse(gb.FP64, 1)
        ops.ewise_mult(w, u, v, DIV)
        assert w.get(0) == 2.0

    def test_comparison_gives_bool(self, backend):
        u = gb.Vector.from_lists([0, 1], [5.0, 1.0], 2)
        v = gb.Vector.from_lists([0, 1], [3.0, 3.0], 2)
        w = gb.Vector.sparse(gb.BOOL, 2)
        ops.ewise_mult(w, u, v, GT)
        assert w.get(0) == True and w.get(1) == False  # noqa: E712

    def test_empty_intersection(self, backend):
        u = gb.Vector.from_lists([0], [1.0], 3)
        v = gb.Vector.from_lists([2], [1.0], 3)
        w = gb.Vector.sparse(gb.FP64, 3)
        ops.ewise_mult(w, u, v, TIMES)
        assert w.nvals == 0


class TestEwiseMatrix:
    def test_add_matches_dense(self, backend, rng):
        A = random_dense_matrix(rng, 5, 6)
        B = random_dense_matrix(rng, 5, 6)
        c = gb.Matrix.sparse(gb.FP64, 5, 6)
        ops.ewise_add(c, gb.Matrix.from_dense(A), gb.Matrix.from_dense(B), PLUS)
        np.testing.assert_allclose(c.to_dense(), A + B, atol=1e-12)

    def test_mult_intersection_count(self, backend):
        a = gb.Matrix.from_lists([0, 0], [0, 1], [1.0, 2.0], 2, 2)
        b = gb.Matrix.from_lists([0, 1], [1, 1], [3.0, 4.0], 2, 2)
        c = gb.Matrix.sparse(gb.FP64, 2, 2)
        ops.ewise_mult(c, a, b, TIMES)
        assert c.nvals == 1 and c.get(0, 1) == 6.0

    def test_shape_mismatch(self, backend):
        with pytest.raises(gb.DimensionMismatchError):
            ops.ewise_add(
                gb.Matrix.sparse(gb.FP64, 2, 2),
                gb.Matrix.sparse(gb.FP64, 2, 2),
                gb.Matrix.sparse(gb.FP64, 3, 2),
                PLUS,
            )

    def test_min_union(self, backend):
        a = gb.Matrix.from_lists([0], [0], [5.0], 1, 2)
        b = gb.Matrix.from_lists([0, 0], [0, 1], [3.0, 9.0], 1, 2)
        c = gb.Matrix.sparse(gb.FP64, 1, 2)
        ops.ewise_add(c, a, b, MIN)
        assert c.get(0, 0) == 3.0 and c.get(0, 1) == 9.0


class TestApply:
    def test_unary_vector(self, backend):
        u = gb.Vector.from_lists([1, 3], [-2.0, 4.0], 5)
        w = gb.Vector.sparse(gb.FP64, 5)
        ops.apply(w, u, ABS)
        assert w.to_lists() == ([1, 3], [2.0, 4.0])

    def test_unary_matrix(self, backend):
        a = gb.Matrix.from_lists([0], [1], [-3.0], 2, 2)
        c = gb.Matrix.sparse(gb.FP64, 2, 2)
        ops.apply(c, a, AINV)
        assert c.get(0, 1) == 3.0

    def test_bind_first(self, backend):
        u = gb.Vector.from_lists([0], [4.0], 1)
        w = gb.Vector.sparse(gb.FP64, 1)
        ops.apply(w, u, MINUS, bind_first=10.0)
        assert w.get(0) == 6.0  # 10 - 4

    def test_bind_second(self, backend):
        u = gb.Vector.from_lists([0], [4.0], 1)
        w = gb.Vector.sparse(gb.FP64, 1)
        ops.apply(w, u, MINUS, bind_second=10.0)
        assert w.get(0) == -6.0  # 4 - 10

    def test_bind_requires_exactly_one(self, backend):
        u = gb.Vector.from_lists([0], [4.0], 1)
        w = gb.Vector.sparse(gb.FP64, 1)
        with pytest.raises(gb.InvalidValueError):
            ops.apply(w, u, MINUS)
        with pytest.raises(gb.InvalidValueError):
            ops.apply(w, u, MINUS, bind_first=1.0, bind_second=2.0)

    def test_index_op_apply(self, backend):
        u = gb.Vector.from_lists([2, 4], [1.0, 1.0], 6)
        w = gb.Vector.sparse(gb.INT64, 6)
        ops.apply(w, u, ROWINDEX, thunk=0)
        assert w.to_lists() == ([2, 4], [2, 4])

    def test_empty_apply(self, backend):
        w = gb.Vector.sparse(gb.FP64, 3)
        ops.apply(w, gb.Vector.sparse(gb.FP64, 3), ABS)
        assert w.nvals == 0


class TestSelect:
    def test_select_value_predicate_vector(self, backend):
        u = gb.Vector.from_lists([0, 1, 2], [1.0, 5.0, 3.0], 3)
        w = gb.Vector.sparse(gb.FP64, 3)
        ops.select(w, u, VALUEGT, thunk=2.0)
        assert w.to_lists() == ([1, 2], [5.0, 3.0])

    def test_select_tril_matrix(self, backend):
        a = gb.Matrix.from_dense(np.arange(1, 10, dtype=float).reshape(3, 3))
        c = gb.Matrix.sparse(gb.FP64, 3, 3)
        ops.select(c, a, TRIL, thunk=-1)
        np.testing.assert_array_equal(c.to_dense(), np.tril(a.to_dense(), -1))

    def test_select_keeps_nothing(self, backend):
        u = gb.Vector.from_lists([0], [1.0], 2)
        w = gb.Vector.sparse(gb.FP64, 2)
        ops.select(w, u, VALUEGT, thunk=100.0)
        assert w.nvals == 0


class TestReduce:
    def test_vector_sum(self, backend):
        u = gb.Vector.from_lists([0, 2], [1.5, 2.5], 4)
        assert ops.reduce(u, PLUS_MONOID) == 4.0

    def test_vector_empty_gives_identity(self, backend):
        u = gb.Vector.sparse(gb.FP64, 4)
        assert ops.reduce(u, PLUS_MONOID) == 0.0
        assert ops.reduce(u, MIN_MONOID) == np.inf

    def test_matrix_sum(self, backend, rng):
        A = random_dense_matrix(rng, 5, 5)
        assert abs(ops.reduce(gb.Matrix.from_dense(A), PLUS_MONOID) - A.sum()) < 1e-9

    def test_matrix_max(self, backend):
        a = gb.Matrix.from_lists([0, 1], [0, 1], [3.0, 7.0], 2, 2)
        assert ops.reduce(a, MAX_MONOID) == 7.0

    def test_reduce_with_scalar_accum(self, backend):
        u = gb.Vector.from_lists([0], [5.0], 2)
        s = gb.Scalar(gb.FP64, 10.0)
        out = ops.reduce(u, PLUS_MONOID, accum=PLUS, out=s)
        assert out == 15.0 and s.value == 15.0

    def test_reduce_rows(self, backend):
        a = gb.Matrix.from_dense(np.array([[1.0, 2.0], [0.0, 0.0], [3.0, 4.0]]))
        w = gb.Vector.sparse(gb.FP64, 3)
        ops.reduce_to_vector(w, a, PLUS_MONOID)
        assert w.to_lists() == ([0, 2], [3.0, 7.0])  # empty row -> no entry

    def test_reduce_cols_via_transpose(self, backend):
        a = gb.Matrix.from_dense(np.array([[1.0, 2.0], [3.0, 4.0]]))
        w = gb.Vector.sparse(gb.FP64, 2)
        ops.reduce_to_vector(w, a, PLUS_MONOID, desc=gb.TRANSPOSE_A)
        assert w.to_lists() == ([0, 1], [4.0, 6.0])
