"""Rule 4 plant: suppression directives that lie.

Three bad directives: a placeholder reason (which therefore suppresses
nothing — the hazard it tried to hide stays reported), an unknown rule
name, and a stale directive matching no finding.  ``honest_mutation``
carries the one valid directive in the file.  The pattern hidden behind
the placeholder is an in-place payload mutation; executed against a warm
device, the mutation plus an elided refresh is the ``stale-read`` gbsan
reports at runtime — a bogus suppression must not be able to hide it.
"""

import numpy as np


def sneaky_mutation(c, factor):
    c.values[:] = c.values * factor  # gbsan: ok(container-mutation, version-bump-missing) -- reason
    return c


def stale_site(keys):
    total = keys.sum()  # gbsan: ok(argsort) -- nothing on this line sorts anything at all
    return total


def unknown_site(keys):
    order = np.argsort(keys)  # gbsan: ok(argsorted) -- counting sort not worth it for this cold path
    return keys[order]


def honest_mutation(c, k, value):
    c.values[k] = value  # gbsan: ok(container-mutation) -- setElement overwrite; the bump below flips the dirty bit
    c.bump_version()
    return c
