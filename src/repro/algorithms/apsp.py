"""All-pairs shortest paths over the (MIN, PLUS) semiring.

Two formulations, both pure GraphBLAS:

- :func:`apsp` — repeated squaring of the distance matrix: with
  ``D₀ = A ⊕ 0·I``, iterate ``D ← D ⊗ D`` over (MIN, PLUS); after
  ⌈log₂ n⌉ squarings D holds all-pairs distances.  O(log n) mxm calls —
  the formulation that maps well to a GPU backend.
- :func:`apsp_from_sources` — one frontier-filtered SSSP per requested
  source; cheaper when only a few rows are needed.

Distances to unreachable vertices are simply absent (no +inf entries).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core import operations as ops
from ..core.matrix import Matrix
from ..core.operators import MIN
from ..core.semiring import MIN_PLUS
from ..exceptions import InvalidValueError
from ..types import FP64
from .sssp import sssp

__all__ = ["apsp", "apsp_from_sources"]


def apsp(g: Matrix) -> Matrix:
    """Distance matrix D with D[i,j] = shortest-path weight i→j.

    The diagonal is explicit zero (every vertex reaches itself).  Requires
    nonnegative weights (min-plus squaring does not detect negative
    cycles).
    """
    if g.nrows != g.ncols:
        raise InvalidValueError(f"adjacency must be square, got {g.shape}")
    n = g.nrows
    if n == 0:
        return Matrix.sparse(FP64, 0, 0)
    gf = g if g.type is FP64 else Matrix(g.container.astype(FP64))
    # D0 = min(A, 0·I): direct edges plus the zero diagonal.
    d = Matrix.sparse(FP64, n, n)
    eye = Matrix.identity(n, value=0.0, typ=FP64)
    ops.ewise_add(d, gf, eye, MIN)
    # Repeated squaring: paths double in hop count every iteration.
    hops = 1
    while hops < n:
        nxt = Matrix.sparse(FP64, n, n)
        ops.mxm(nxt, d, d, MIN_PLUS)
        if nxt == d:
            break
        d = nxt
        hops *= 2
    return d


def apsp_from_sources(g: Matrix, sources: Optional[Sequence[int]] = None) -> Matrix:
    """Distance rows for the given sources (all vertices when None).

    Returns a ``len(sources) × n`` matrix whose row k is the SSSP distance
    vector of ``sources[k]``.
    """
    if g.nrows != g.ncols:
        raise InvalidValueError(f"adjacency must be square, got {g.shape}")
    n = g.nrows
    srcs = list(range(n)) if sources is None else list(sources)
    rows, cols, vals = [], [], []
    for k, s in enumerate(srcs):
        d = sssp(g, int(s))
        rows.append(np.full(d.nvals, k, dtype=np.int64))
        cols.append(d.indices_array().copy())
        vals.append(d.values_array().copy())
    if not rows:
        return Matrix.sparse(FP64, 0, n)
    return Matrix.from_lists(
        np.concatenate(rows),
        np.concatenate(cols),
        np.concatenate(vals),
        len(srcs),
        n,
        FP64,
    )
