"""Property tests for the sort-free fast-path layer (PR: fastpath).

Three families of invariants:

- ``fast_reduce_by_key`` is *bit-exact* against a stable-sort + sequential
  left-fold oracle, for the additive monoid of every registered semiring
  across the dtype lattice — the contract that lets kernels swap the
  O(m log m) sort for a dense-accumulator scatter.
- Mask-fused kernels (push mxv / masked SpGEMM) equal the reference
  backend's compute-then-mask semantics on random systems, for every mask
  flavour (structural/valued × complemented).
- The logarithmic pairwise fold behind ``segment_reduce``'s generic
  fallback equals a sequential fold for associative ops, and the fused
  BFS step keeps the cuda_sim launch count at one kernel per hop.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro as gb
from repro.backends.cpu.fastpath import (
    dense_keyspace_ok,
    fast_reduce_by_key,
    has_fast_path,
    has_fast_reduce,
)
from repro.backends.cpu.segments import segment_reduce, ufunc_for
from repro.backends.cpu.spmv import choose_direction, mask_pull_rows
from repro.core import operations as ops
from repro.core.descriptor import DEFAULT, Descriptor, STRUCTURE_MASK
from repro.core.monoid import Monoid
from repro.core.operators import binary_op
from repro.core.semiring import SEMIRINGS
from repro.types import BOOL, FP32, FP64, INT64, from_dtype

# One representative semiring per distinct additive monoid, so every
# registered add path is exercised without redundant runs.
_ADD_REPS = {}
for _s in SEMIRINGS.values():
    _ADD_REPS.setdefault(_s.add.op.name, _s)
ADD_SEMIRINGS = sorted(_ADD_REPS.values(), key=lambda s: s.name)

DTYPES = [np.int64, np.int32, np.float64, np.float32, np.bool_]


def _sorted_fold_oracle(keys, values, monoid):
    """Stable sort by key, then a sequential left fold per group — the
    semantics the pre-fastpath kernels implemented."""
    order = np.argsort(keys, kind="stable")
    sk = keys[order]
    sv = values[order]
    out_keys = []
    out_vals = []
    i = 0
    while i < sk.size:
        j = i
        acc = sv[i]
        while j + 1 < sk.size and sk[j + 1] == sk[i]:
            j += 1
            acc = monoid.op(acc, sv[j])
        out_keys.append(int(sk[i]))
        out_vals.append(acc)
        i = j + 1
    return np.array(out_keys, dtype=np.int64), out_vals


@st.composite
def keyed_values(draw, max_n=40, n_out=12):
    n = draw(st.integers(min_value=0, max_value=max_n))
    keys = np.array(
        draw(st.lists(st.integers(0, n_out - 1), min_size=n, max_size=n)),
        dtype=np.int64,
    )
    raw = np.array(
        draw(st.lists(st.integers(-50, 50), min_size=n, max_size=n)),
        dtype=np.int64,
    )
    return keys, raw, n_out


class TestFastReduceBitExact:
    @pytest.mark.parametrize("semiring", ADD_SEMIRINGS, ids=lambda s: s.name)
    @pytest.mark.parametrize("dtype", DTYPES, ids=lambda d: np.dtype(d).name)
    @given(kv=keyed_values())
    @settings(max_examples=25, deadline=None)
    def test_matches_sorted_fold(self, semiring, dtype, kv):
        keys, raw, n_out = kv
        values = raw.astype(dtype)
        monoid = semiring.add
        assert has_fast_reduce(monoid), semiring.name
        got = fast_reduce_by_key(keys, values, n_out, monoid)
        assert got is not None
        got_keys, got_vals = got
        exp_keys, exp_vals = _sorted_fold_oracle(keys, values, monoid)
        np.testing.assert_array_equal(got_keys, exp_keys)
        assert got_vals.shape == (exp_keys.size,)
        for gv, ev in zip(got_vals, exp_vals):
            # Bit-exact: fold order on the fast path is expansion order,
            # identical to the stable sort's within-key order.
            assert np.asarray(gv, dtype=got_vals.dtype) == np.asarray(
                ev
            ).astype(got_vals.dtype), (semiring.name, dtype)

    def test_dispatch_table_covers_registered_semirings(self):
        for s in SEMIRINGS.values():
            assert has_fast_path(s, np.float64), s.name

    def test_unknown_monoid_returns_none(self):
        fold = binary_op("TEST_NOFAST", lambda x, y: x, associative=True)
        m = Monoid("TEST_NOFAST_M", fold, lambda t: t.cast(0))
        assert (
            fast_reduce_by_key(np.zeros(2, np.int64), np.ones(2), 1, m) is None
        )

    def test_dense_keyspace_gate(self):
        assert dense_keyspace_ok(1 << 16, 1)
        assert not dense_keyspace_ok((1 << 16) + 1, 8)
        assert dense_keyspace_ok(80, 10)


@st.composite
def masked_system(draw, m=8, n=7):
    elems = st.integers(-9, 9)
    A = np.array(
        draw(st.lists(elems, min_size=m * n, max_size=m * n))
    ).reshape(m, n).astype(np.float64)
    zA = np.array(
        draw(st.lists(st.booleans(), min_size=m * n, max_size=m * n)),
        dtype=bool,
    ).reshape(m, n)
    A[zA] = 0.0
    u = np.array(draw(st.lists(elems, min_size=m, max_size=m))).astype(
        np.float64
    )
    zu = np.array(
        draw(st.lists(st.booleans(), min_size=m, max_size=m)), dtype=bool
    )
    u[zu] = 0.0
    mask_present = np.array(
        draw(st.lists(st.booleans(), min_size=n, max_size=n)), dtype=bool
    )
    mask_vals = np.array(
        draw(st.lists(st.booleans(), min_size=n, max_size=n)), dtype=bool
    )
    structural = draw(st.booleans())
    complement = draw(st.booleans())
    return A, u, mask_present, mask_vals, structural, complement


def _vec_from_dense(arr, typ):
    idx = np.flatnonzero(arr)
    return gb.Vector.from_lists(
        idx.astype(np.int64), arr[idx], arr.size, typ
    )


class TestMaskFusionEquivalence:
    """Mask-fused kernels vs the reference backend's post-mask semantics."""

    @pytest.mark.parametrize(
        "semiring_name", ["PLUS_TIMES", "MIN_PLUS", "LOR_LAND", "PLUS_PAIR"]
    )
    @given(sys=masked_system())
    @settings(max_examples=30, deadline=None)
    def test_push_mxv_fused_equals_reference(self, semiring_name, sys):
        A, u, mpresent, mvals, structural, complement = sys
        semiring = SEMIRINGS[semiring_name]
        if not mpresent.any():
            mpresent[0] = True
        am = gb.Matrix.from_dense(A, FP64)  # vxm: u(m) * A(m×n) → out(n)
        uv = _vec_from_dense(u, FP64)
        midx = np.flatnonzero(mpresent)
        mask = gb.Vector.from_lists(
            midx.astype(np.int64), mvals[midx], mpresent.size, BOOL
        )
        desc = Descriptor(
            structural_mask=structural,
            complement_mask=complement,
            replace=True,
        )
        results = {}
        for backend in ("cpu", "reference"):
            with gb.use_backend(backend):
                out = gb.Vector.sparse(FP64, mpresent.size)
                ops.vxm(
                    out, uv, am, semiring, mask=mask, desc=desc,
                    direction="push",
                )
                results[backend] = out.to_lists()
        assert results["cpu"] == results["reference"]

    @given(sys=masked_system())
    @settings(max_examples=25, deadline=None)
    def test_masked_spgemm_fused_equals_reference(self, sys):
        A, _, _, _, structural, complement = sys
        B = A.T.copy()
        mask_dense = (A @ B) != 0
        # Thin the mask so the in-kernel filter actually prunes.
        mask_dense &= np.arange(mask_dense.size).reshape(mask_dense.shape) % 3 != 0
        mr, mc = np.nonzero(mask_dense)
        if mr.size == 0:
            mr, mc = np.array([0]), np.array([0])
        maskm = gb.Matrix.from_lists(
            mr.astype(np.int64),
            mc.astype(np.int64),
            np.ones(mr.size, dtype=bool),
            A.shape[0],
            B.shape[1],
            BOOL,
        )
        desc = Descriptor(
            structural_mask=structural,
            complement_mask=complement,
            replace=True,
        )
        results = {}
        for backend in ("cpu", "reference"):
            with gb.use_backend(backend):
                am = gb.Matrix.from_dense(A, FP64)
                bm = gb.Matrix.from_dense(B, FP64)
                c = gb.Matrix.sparse(FP64, A.shape[0], B.shape[1])
                ops.mxm(c, am, bm, SEMIRINGS["PLUS_TIMES"], mask=maskm, desc=desc)
                results[backend] = c.to_lists()
        assert results["cpu"] == results["reference"]

    @given(sys=masked_system())
    @settings(max_examples=20, deadline=None)
    def test_pair_counting_shortcut_equals_reference(self, sys):
        """PLUS_PAIR (the triangle-counting semiring) takes the pure
        counting lane on the cpu backend; the reference backend multiplies
        and sums for real."""
        A, _, _, _, _, _ = sys
        As = (A != 0).astype(np.int64)
        mr, mc = np.nonzero(np.tril(As @ As.T, -1))
        if mr.size == 0:
            mr, mc = np.array([1]), np.array([0])
        maskm = gb.Matrix.from_lists(
            mr.astype(np.int64),
            mc.astype(np.int64),
            np.ones(mr.size, dtype=bool),
            As.shape[0],
            As.shape[0],
            BOOL,
        )
        results = {}
        for backend in ("cpu", "reference"):
            with gb.use_backend(backend):
                am = gb.Matrix.from_dense(As, INT64)
                bm = gb.Matrix.from_dense(As.T.copy(), INT64)
                c = gb.Matrix.sparse(INT64, As.shape[0], As.shape[0])
                ops.mxm(
                    c, am, bm, SEMIRINGS["PLUS_PAIR"], mask=maskm,
                    desc=STRUCTURE_MASK,
                )
                results[backend] = c.to_lists()
        assert results["cpu"] == results["reference"]


class TestPairwiseFoldFallback:
    @given(
        lens=st.lists(st.integers(1, 9), min_size=1, max_size=8),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_pairwise_fold_matches_sequential_for_associative_op(
        self, lens, seed
    ):
        # A plain lambda is not a ufunc, so segment_reduce must take the
        # pairwise-fold fallback; minimum is associative AND commutative,
        # so pairing order cannot change the result.
        op = binary_op(
            "TEST_PMIN", lambda x, y: np.minimum(x, y), associative=True
        )
        m = Monoid("TEST_PMIN_M", op, lambda t: t.cast(2**31))
        rng = np.random.default_rng(seed)
        vals = rng.integers(-100, 100, int(np.sum(lens))).astype(np.int64)
        starts = np.concatenate(([0], np.cumsum(lens)[:-1])).astype(np.int64)
        got = segment_reduce(vals, starts, m, np.int64)
        exp = np.minimum.reduceat(vals, starts)
        np.testing.assert_array_equal(got, exp)

    def test_ufunc_for_rejects_mismatched_identity(self):
        # np.add's reduction identity is 0; pairing it with a MAX-identity
        # monoid must NOT take the reduceat lane.
        wrong = binary_op("TEST_ADDMAX", np.hypot, associative=True)
        m = Monoid("TEST_ADDMAX_M", wrong, lambda t: t.cast(7))
        assert ufunc_for(wrong, m, np.float64) is None


class TestDirectionAndFusion:
    def test_mask_pull_rows_complement_prunes_visited(self):
        mask = gb.Vector.from_lists(
            np.arange(900, dtype=np.int64),
            np.ones(900, dtype=bool),
            1000,
            BOOL,
        ).container
        desc = Descriptor(complement_mask=True, structural_mask=True)
        rows = mask_pull_rows(mask, desc, 1000)
        np.testing.assert_array_equal(rows, np.arange(900, 1000))

    def test_mask_pull_rows_complement_dense_unpruned(self):
        # Excluded set too small to pay for pruning: compute all rows.
        mask = gb.Vector.from_lists(
            np.arange(10, dtype=np.int64), np.ones(10, dtype=bool), 1000, BOOL
        ).container
        desc = Descriptor(complement_mask=True, structural_mask=True)
        assert mask_pull_rows(mask, desc, 1000) is None

    def test_choose_direction_exact_degree_hints(self):
        # Star graph: hub row 0 has huge degree.  A frontier on the hub
        # must push-cost ~deg(hub); with only the old avg-degree estimate
        # it would look cheap.
        n = 64
        rows = np.concatenate(([0] * (n - 1), np.arange(1, n)))
        cols = np.concatenate((np.arange(1, n), [0] * (n - 1)))
        g = gb.Matrix.from_lists(
            rows.astype(np.int64),
            cols.astype(np.int64),
            np.ones(rows.size, dtype=bool),
            n,
            n,
            BOOL,
        ).container
        csc = g  # symmetric pattern; degrees match
        hub = gb.Vector.from_lists(
            np.array([0], dtype=np.int64), np.array([True]), n, BOOL
        ).container
        leaf = gb.Vector.from_lists(
            np.array([5], dtype=np.int64), np.array([True]), n, BOOL
        ).container
        # Exact costs: hub frontier sums deg 63, leaf frontier deg 1.
        d_hub = choose_direction(
            g, hub, None, DEFAULT, "auto", True,
            push_indptr=csc.indptr, pull_indptr=g.indptr,
        )
        d_leaf = choose_direction(
            g, leaf, None, DEFAULT, "auto", True,
            push_indptr=csc.indptr, pull_indptr=g.indptr,
        )
        assert d_leaf == "push"
        # The hub's exact push cost (2 * 63) exceeds the pull cost of
        # scanning all rows' nnz (126) only via the exact sum — both are
        # comparable here, but the leaf case must clearly push.
        assert d_hub in ("push", "pull")

    def test_cuda_sim_bfs_one_launch_per_hop(self):
        from repro.gpu.device import get_device

        g = gb.generators.rmat(scale=8, edge_factor=8, seed=3, weighted=False)
        with gb.use_backend("reference"):
            ref_levels = gb.algorithms.bfs_levels(g, 0)
        hops = int(np.max(ref_levels.values_array())) + 1
        with gb.use_backend("cuda_sim"):
            dev = get_device()
            dev.profiler.reset()
            levels = gb.algorithms.bfs_levels(g, 0)
            kernels = [r for r in dev.profiler.records if r.kind == "kernel"]
        assert levels.to_lists() == ref_levels.to_lists()
        # Load-balancing lanes annotate records as "name[lane]"; strip the
        # label — the launch structure is what this test pins.
        names = {r.name.split("[", 1)[0] for r in kernels if not r.name.startswith("graph_replay")}
        names |= {r.name for r in kernels if r.name.startswith("graph_replay")}
        # Captured hops charge the fused kernel directly; steady-state hops
        # are aggregated by the lazy optimizer (repro.lazy.capture) into a
        # single replay record.  The first pull-mode hop also derives the
        # transpose on-device, a one-time aux-structure build.
        assert names <= {
            "spmv_push_fused",
            "spmv_pull_fused",
            "graph_replay[bfs]",
            "graph_replay[lazy:frontier_stepx1]",
            "transpose_countsort",
        }
        # One launch per BFS hop in the *expanded* view (plus at most the
        # one transpose build) — the seed pipeline needed an assign launch
        # plus a vxm launch (and its masked merge) per hop.  Raw records
        # can only be fewer (aggregation never adds launches).
        agg = dev.profiler.by_kernel(expand_replays=True)
        expanded = sum(
            int(row["count"])
            for name, row in agg.items()
            if not name.startswith("graph_replay[")
        )
        assert hops <= expanded <= hops + 1
        assert len(kernels) <= hops + 1

    def test_fused_frontier_step_matches_composition(self):
        from repro.core.fused import frontier_step
        from repro.core.semiring import LOR_LAND

        g = gb.generators.rmat(scale=7, edge_factor=6, seed=9, weighted=False)
        desc = Descriptor(
            complement_mask=True, structural_mask=True, replace=True
        )
        for backend in ("cpu", "cuda_sim", "reference"):
            with gb.use_backend(backend):
                levels = gb.Vector.sparse(INT64, g.nrows)
                frontier = gb.Vector.sparse(BOOL, g.nrows)
                frontier.set_element(0, True)
                frontier_step(levels, frontier, g, 0, LOR_LAND, desc, "auto")
                # Composition oracle.
                levels2 = gb.Vector.sparse(INT64, g.nrows)
                frontier2 = gb.Vector.sparse(BOOL, g.nrows)
                frontier2.set_element(0, True)
                gb.algorithms  # keep import
                from repro.core.assign import assign

                assign(
                    levels2,
                    gb.Vector.from_lists(
                        np.arange(1, dtype=np.int64),
                        np.zeros(1, dtype=np.int64),
                        1,
                        INT64,
                    ),
                    indices=np.array([0], dtype=np.int64),
                )
                ops.vxm(
                    frontier2, frontier2, g, LOR_LAND, mask=levels2, desc=desc
                )
                assert levels.to_lists() == levels2.to_lists()
                assert frontier.to_lists() == frontier2.to_lists()
