"""SparseVector and BitmapVector containers."""

import numpy as np
import pytest

from repro.containers.bitmap import BitmapVector
from repro.containers.sparsevec import SparseVector
from repro.core.operators import PLUS, SECOND
from repro.exceptions import (
    IndexOutOfBoundsError,
    InvalidObjectError,
    InvalidValueError,
)
from repro.types import BOOL, FP64, INT64


class TestSparseVectorConstruction:
    def test_empty(self):
        v = SparseVector.empty(5, FP64)
        assert v.size == 5 and v.nvals == 0
        v.validate()

    def test_negative_size_raises(self):
        with pytest.raises(InvalidValueError):
            SparseVector.empty(-1, FP64)

    def test_from_lists_sorts(self):
        v = SparseVector.from_lists(10, [5, 1, 3], [50.0, 10.0, 30.0])
        np.testing.assert_array_equal(v.indices, [1, 3, 5])
        np.testing.assert_array_equal(v.values, [10.0, 30.0, 50.0])
        v.validate()

    def test_from_lists_dup_combines(self):
        v = SparseVector.from_lists(10, [2, 2, 2], [1.0, 2.0, 3.0], dup=PLUS)
        assert v.nvals == 1 and v.get(2) == 6.0

    def test_from_lists_dup_second_takes_last(self):
        v = SparseVector.from_lists(10, [2, 2], [1.0, 9.0], dup=SECOND)
        assert v.get(2) == 9.0

    def test_from_lists_dup_none_raises(self):
        with pytest.raises(InvalidValueError):
            SparseVector.from_lists(10, [2, 2], [1.0, 2.0])

    def test_from_lists_out_of_bounds(self):
        with pytest.raises(IndexOutOfBoundsError):
            SparseVector.from_lists(3, [3], [1.0])

    def test_from_lists_length_mismatch(self):
        with pytest.raises(InvalidValueError):
            SparseVector.from_lists(5, [1, 2], [1.0])

    def test_from_dense(self):
        v = SparseVector.from_dense(np.array([0.0, 2.0, 0.0, 4.0]))
        assert v.nvals == 2
        np.testing.assert_array_equal(v.indices, [1, 3])

    def test_from_dense_rejects_2d(self):
        with pytest.raises(InvalidValueError):
            SparseVector.from_dense(np.zeros((2, 2)))

    def test_full(self):
        v = SparseVector.full(4, 7.0, FP64)
        assert v.nvals == 4
        np.testing.assert_array_equal(v.to_dense(), [7.0] * 4)


class TestSparseVectorAccess:
    def test_get(self):
        v = SparseVector.from_lists(5, [1, 3], [10.0, 30.0])
        assert v.get(1) == 10.0
        assert v.get(0) is None

    def test_get_out_of_bounds(self):
        v = SparseVector.empty(3, FP64)
        with pytest.raises(IndexOutOfBoundsError):
            v.get(3)

    def test_iter_entries(self):
        v = SparseVector.from_lists(5, [1, 3], [10.0, 30.0])
        assert list(v.iter_entries()) == [(1, 10.0), (3, 30.0)]

    def test_to_dense_fill(self):
        v = SparseVector.from_lists(3, [1], [5.0])
        np.testing.assert_array_equal(v.to_dense(fill=-1.0), [-1.0, 5.0, -1.0])

    def test_present_mask(self):
        v = SparseVector.from_lists(4, [0, 2], [1.0, 1.0])
        np.testing.assert_array_equal(v.present_mask(), [True, False, True, False])

    def test_copy_independent(self):
        v = SparseVector.from_lists(3, [0], [1.0])
        c = v.copy()
        c.values[0] = 9.0
        assert v.values[0] == 1.0

    def test_astype(self):
        v = SparseVector.from_lists(3, [0], [1.5])
        i = v.astype(INT64)
        assert i.values.dtype == np.int64 and i.get(0) == 1

    def test_validate_catches_unsorted(self):
        bad = SparseVector(5, [3, 1], [1.0, 2.0])
        with pytest.raises(InvalidObjectError):
            bad.validate()

    def test_validate_catches_duplicates(self):
        bad = SparseVector(5, [1, 1], [1.0, 2.0])
        with pytest.raises(InvalidObjectError):
            bad.validate()


class TestBitmapVector:
    def test_roundtrip_sparse(self):
        sv = SparseVector.from_lists(6, [1, 4], [10.0, 40.0])
        bv = BitmapVector.from_sparse(sv)
        assert bv.nvals == 2
        back = bv.to_sparse()
        np.testing.assert_array_equal(back.indices, sv.indices)
        np.testing.assert_array_equal(back.values, sv.values)

    def test_empty_and_full(self):
        assert BitmapVector.empty(4, FP64).nvals == 0
        assert BitmapVector.full(4, 2.0, FP64).nvals == 4

    def test_get_set(self):
        bv = BitmapVector.empty(4, FP64)
        assert bv.get(2) is None
        bv.set(2, 5.0)
        assert bv.get(2) == 5.0

    def test_bounds(self):
        bv = BitmapVector.empty(4, FP64)
        with pytest.raises(IndexOutOfBoundsError):
            bv.get(4)
        with pytest.raises(IndexOutOfBoundsError):
            bv.set(-1, 0.0)

    def test_copy_independent(self):
        bv = BitmapVector.full(2, 1.0, FP64)
        c = bv.copy()
        c.dense[0] = 9.0
        assert bv.dense[0] == 1.0

    def test_validate(self):
        bv = BitmapVector.full(3, 1.0, FP64)
        bv.validate()
