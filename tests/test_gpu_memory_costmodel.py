"""GPU simulator: device memory, cost model, SIMT estimators."""

import numpy as np
import pytest

from repro.exceptions import DeviceOutOfMemoryError, InvalidValueError
from repro.gpu.costmodel import CostModel, KernelWork
from repro.gpu.device import Device, DeviceProperties, K40
from repro.gpu.memory import DeviceAllocator
from repro.gpu.simt import (
    COALESCING,
    blocks_for,
    divergence_thread_per_row,
    divergence_warp_per_row,
    warps_for,
)


class TestAllocator:
    def test_alloc_tracks_usage(self):
        a = DeviceAllocator(1024)
        buf = a.alloc(16, np.float64)
        assert a.in_use == 128
        buf.free()
        assert a.in_use == 0

    def test_free_idempotent(self):
        a = DeviceAllocator(1024)
        buf = a.alloc(4, np.float64)
        buf.free()
        buf.free()
        assert a.in_use == 0 and a.stats.free_count == 1

    def test_oom(self):
        a = DeviceAllocator(64)
        with pytest.raises(DeviceOutOfMemoryError) as ei:
            a.alloc(100, np.float64)
        assert ei.value.requested == 800

    def test_gc_returns_memory(self):
        a = DeviceAllocator(1024)
        a.alloc(16, np.float64)  # dropped immediately
        import gc

        gc.collect()
        assert a.in_use == 0

    def test_upload_download_traffic_counted(self):
        a = DeviceAllocator(10**6)
        host = np.arange(100, dtype=np.float64)
        buf = a.upload(host)
        assert a.stats.h2d_bytes == 800 and a.stats.h2d_count == 1
        back = a.download(buf)
        assert a.stats.d2h_bytes == 800
        np.testing.assert_array_equal(back, host)

    def test_download_freed_buffer_raises(self):
        a = DeviceAllocator(10**6)
        buf = a.upload(np.zeros(4))
        buf.free()
        with pytest.raises(InvalidValueError):
            a.download(buf)

    def test_capacity_must_be_positive(self):
        with pytest.raises(InvalidValueError):
            DeviceAllocator(0)

    def test_reset(self):
        a = DeviceAllocator(1024)
        a.upload(np.zeros(8))
        a.reset()
        assert a.in_use == 0 and a.stats.h2d_count == 0


class TestDeviceProperties:
    def test_k40_defaults(self):
        assert K40.total_cores == 15 * 192
        assert K40.peak_gflops == pytest.approx(15 * 192 * 0.745)

    def test_with_derives(self):
        fast = K40.with_(mem_bandwidth_gbps=1000.0)
        assert fast.mem_bandwidth_gbps == 1000.0
        assert K40.mem_bandwidth_gbps == 288.0


class TestCostModel:
    @pytest.fixture
    def cm(self):
        return CostModel(K40)

    def test_launch_overhead_floor(self, cm):
        t = cm.kernel_time_us(KernelWork(flops=1, bytes_read=8, threads=1))
        assert t >= K40.launch_overhead_us

    def test_memory_bound_scales_with_bytes(self, cm):
        t1 = cm.kernel_time_us(
            KernelWork(flops=0, bytes_read=1e6, threads=10**6)
        )
        t2 = cm.kernel_time_us(
            KernelWork(flops=0, bytes_read=2e6, threads=10**6)
        )
        assert t2 > t1
        # Doubling bytes roughly doubles the over-floor portion.
        assert (t2 - K40.launch_overhead_us) == pytest.approx(
            2 * (t1 - K40.launch_overhead_us), rel=1e-6
        )

    def test_compute_bound_scales_with_flops(self, cm):
        t1 = cm.kernel_time_us(KernelWork(flops=1e9, bytes_read=8, threads=10**6))
        t2 = cm.kernel_time_us(KernelWork(flops=2e9, bytes_read=8, threads=10**6))
        assert (t2 - K40.launch_overhead_us) == pytest.approx(
            2 * (t1 - K40.launch_overhead_us), rel=1e-6
        )

    def test_divergence_slows_compute(self, cm):
        base = KernelWork(flops=1e9, bytes_read=8, threads=10**6, divergence=1.0)
        div = KernelWork(flops=1e9, bytes_read=8, threads=10**6, divergence=4.0)
        assert cm.kernel_time_us(div) > cm.kernel_time_us(base)

    def test_coalescing_slows_memory(self, cm):
        base = KernelWork(bytes_read=1e7, threads=10**6, coalescing=1.0)
        scat = KernelWork(bytes_read=1e7, threads=10**6, coalescing=8.0)
        assert cm.kernel_time_us(scat) == pytest.approx(
            K40.launch_overhead_us
            + 8 * (cm.kernel_time_us(base) - K40.launch_overhead_us),
            rel=1e-6,
        )

    def test_occupancy_penalises_small_grids(self, cm):
        small = KernelWork(flops=1e7, bytes_read=8, threads=32)
        big = KernelWork(flops=1e7, bytes_read=8, threads=10**6)
        assert cm.kernel_time_us(small) > cm.kernel_time_us(big)

    def test_ablation_switches(self, cm):
        w = KernelWork(flops=1e9, bytes_read=1e7, threads=64, divergence=8.0, coalescing=8.0)
        full = cm.kernel_time_us(w)
        cm.enable_divergence = False
        cm.enable_coalescing = False
        cm.enable_occupancy = False
        ideal = cm.kernel_time_us(w)
        assert ideal < full

    def test_transfer_time(self, cm):
        t = cm.transfer_time_us(10e6)  # 10 MB over 10 GB/s = 1000 us + latency
        assert t == pytest.approx(K40.pcie_latency_us + 1000.0, rel=1e-6)


class TestSimtEstimators:
    def test_warps_blocks(self):
        assert warps_for(1) == 1
        assert warps_for(33) == 2
        assert blocks_for(257, 256) == 2

    def test_uniform_rows_no_divergence(self):
        lens = np.full(64, 8)
        assert divergence_thread_per_row(lens) == 1.0

    def test_skew_causes_divergence(self):
        lens = np.ones(32)
        lens[0] = 320  # one monster row serialises its warp
        d = divergence_thread_per_row(lens)
        assert d > 5.0

    def test_warp_per_row_short_rows_waste_lanes(self):
        # Rows of length 1: each uses a 32-lane step for 1 useful op.
        lens = np.ones(100)
        assert divergence_warp_per_row(lens) == pytest.approx(32.0)

    def test_warp_per_row_long_rows_efficient(self):
        lens = np.full(10, 320)
        assert divergence_warp_per_row(lens) == pytest.approx(1.0)

    def test_empty_inputs(self):
        assert divergence_thread_per_row(np.array([])) == 1.0
        assert divergence_warp_per_row(np.zeros(5)) == 1.0

    def test_coalescing_classes_ordered(self):
        assert (
            COALESCING["sequential"]
            < COALESCING["segmented"]
            < COALESCING["gather"]
            < COALESCING["scatter"]
            < COALESCING["atomic"]
        )


class TestDevice:
    def test_clock_advances(self):
        d = Device()
        d.advance(5.0)
        d.advance(2.5)
        assert d.clock_us == 7.5

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            Device().advance(-1.0)

    def test_reset(self):
        d = Device()
        d.advance(10.0)
        d.reset()
        assert d.clock_us == 0.0 and not d.profiler.records
