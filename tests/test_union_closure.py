"""eWiseUnion semantics and transitive closure/reachability."""

import networkx as nx
import numpy as np
import pytest

import repro as gb
from repro.algorithms import reachable_from, transitive_closure
from repro.core.operators import DIV, MINUS, PLUS
from repro.core.union_op import ewise_union


class TestEwiseUnion:
    def test_fill_applied_to_lone_entries(self, backend):
        u = gb.Vector.from_lists([0], [5.0], 3)
        v = gb.Vector.from_lists([2], [3.0], 3)
        w = gb.Vector.sparse(gb.FP64, 3)
        ewise_union(w, u, 0.0, v, 0.0, MINUS)
        assert w.to_lists() == ([0, 2], [5.0, -3.0])

    def test_differs_from_ewise_add(self, backend):
        # eWiseAdd passes the lone right entry through un-negated.
        u = gb.Vector.from_lists([0], [5.0], 3)
        v = gb.Vector.from_lists([2], [3.0], 3)
        w_add = gb.Vector.sparse(gb.FP64, 3)
        gb.ewise_add(w_add, u, v, MINUS)
        assert w_add.get(2) == 3.0
        w_un = gb.Vector.sparse(gb.FP64, 3)
        ewise_union(w_un, u, 0.0, v, 0.0, MINUS)
        assert w_un.get(2) == -3.0

    def test_both_present_ignores_fills(self, backend):
        u = gb.Vector.from_lists([1], [6.0], 2)
        v = gb.Vector.from_lists([1], [2.0], 2)
        w = gb.Vector.sparse(gb.FP64, 2)
        ewise_union(w, u, 99.0, v, 99.0, DIV)
        assert w.get(1) == 3.0

    def test_nonzero_fills(self, backend):
        u = gb.Vector.from_lists([0], [10.0], 2)
        v = gb.Vector.sparse(gb.FP64, 2)
        w = gb.Vector.sparse(gb.FP64, 2)
        ewise_union(w, u, 0.0, v, 4.0, DIV)
        assert w.get(0) == 2.5
        assert 1 not in w  # absent on both sides stays absent

    def test_matrix_union(self, backend):
        a = gb.Matrix.from_lists([0], [0], [7.0], 2, 2)
        b = gb.Matrix.from_lists([1], [1], [2.0], 2, 2)
        c = gb.Matrix.sparse(gb.FP64, 2, 2)
        ewise_union(c, a, 1.0, b, 1.0, MINUS)
        assert c.get(0, 0) == 6.0 and c.get(1, 1) == -1.0
        assert c.nvals == 2

    def test_mask_and_accum(self, backend):
        u = gb.Vector.from_lists([0, 1], [1.0, 2.0], 3)
        v = gb.Vector.from_lists([1, 2], [10.0, 20.0], 3)
        mask = gb.Vector.from_lists([1], [True], 3, gb.BOOL)
        w = gb.Vector.from_lists([1], [100.0], 3)
        ewise_union(w, u, 0.0, v, 0.0, PLUS, mask=mask, accum=PLUS)
        assert w.to_lists() == ([1], [112.0])

    def test_dim_checks(self, backend):
        with pytest.raises(gb.DimensionMismatchError):
            ewise_union(
                gb.Vector.sparse(gb.FP64, 3),
                gb.Vector.sparse(gb.FP64, 3),
                0.0,
                gb.Vector.sparse(gb.FP64, 4),
                0.0,
                PLUS,
            )

    def test_matches_dense_subtraction(self, backend, rng):
        from .conftest import random_dense_vector

        a = random_dense_vector(rng, 25)
        b = random_dense_vector(rng, 25)
        w = gb.Vector.sparse(gb.FP64, 25)
        ewise_union(
            w, gb.Vector.from_dense(a), 0.0, gb.Vector.from_dense(b), 0.0, MINUS
        )
        expect = a - b
        for i, val in zip(*w.to_lists()):
            assert val == pytest.approx(expect[i])


class TestTransitiveClosure:
    def test_chain(self, backend):
        g = gb.Matrix.from_lists([0, 1, 2], [1, 2, 3], [1.0] * 3, 4, 4)
        r = transitive_closure(g)
        assert r.get(0, 3) and r.get(0, 0)
        assert r.get(3, 0) is None

    def test_strict_excludes_self_unless_cycle(self, backend):
        g = gb.Matrix.from_lists([0, 1], [1, 0], [1.0, 1.0], 3, 3)
        r = transitive_closure(g, reflexive=False)
        assert r.get(0, 0)  # on a cycle: reachable from itself
        assert r.get(2, 2) is None  # isolated: not

    def test_matches_networkx(self, backend):
        g = gb.generators.erdos_renyi_gnp(18, 0.12, seed=3, directed=True)
        r = transitive_closure(g, reflexive=False)
        G = nx.DiGraph()
        G.add_nodes_from(range(18))
        rr, cc, _ = g.to_lists()
        G.add_edges_from(zip(rr, cc))
        expected = nx.transitive_closure(G)
        got = {(i, j) for i, j, _ in zip(*r.to_lists())}
        assert got == set(expected.edges())

    def test_empty_graph(self, backend):
        r = transitive_closure(gb.Matrix.sparse(gb.FP64, 0, 0))
        assert r.shape == (0, 0)

    def test_requires_square(self, backend):
        with pytest.raises(gb.InvalidValueError):
            transitive_closure(gb.Matrix.sparse(gb.FP64, 2, 3))


class TestReachableFrom:
    def test_matches_closure_row(self, backend):
        g = gb.generators.erdos_renyi_gnp(15, 0.15, seed=5, directed=True)
        r = transitive_closure(g)
        for s in (0, 7):
            reach = set(reachable_from(g, s).to_lists()[0])
            row = {j for j in range(15) if r.get(s, j) is not None}
            assert reach == row

    def test_matches_bfs(self, backend):
        g = gb.generators.rmat(scale=6, edge_factor=4, seed=6)
        reach = set(reachable_from(g, 0).to_lists()[0])
        bfs = set(gb.algorithms.bfs_levels(g, 0).to_lists()[0])
        assert reach == bfs

    def test_bounds(self, backend):
        with pytest.raises(gb.IndexOutOfBoundsError):
            reachable_from(gb.Matrix.sparse(gb.FP64, 2, 2), 2)
