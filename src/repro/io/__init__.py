"""Graph/matrix file I/O: MatrixMarket, edge lists, binary npz."""

from .binary import load_matrix, load_vector, save_matrix, save_vector
from .edgelist import read_edgelist, write_edgelist
from .matrixmarket import read_matrix_market, write_matrix_market

__all__ = [
    "load_matrix",
    "load_vector",
    "save_matrix",
    "save_vector",
    "read_edgelist",
    "write_edgelist",
    "read_matrix_market",
    "write_matrix_market",
]
