"""APSP and k-core algorithms vs networkx."""

import networkx as nx
import numpy as np
import pytest

import repro as gb
from repro.algorithms import (
    apsp,
    apsp_from_sources,
    core_numbers,
    kcore,
    sssp,
)


def to_nx(g):
    G = nx.Graph()
    G.add_nodes_from(range(g.nrows))
    r, c, v = g.to_lists()
    for i, j, w in zip(r, c, v):
        G.add_edge(i, j, weight=w)
    return G


class TestApsp:
    def test_small_graph(self, backend, small_graph):
        d = apsp(small_graph)
        assert d.get(0, 0) == 0.0
        assert d.get(0, 2) == 3.0  # 0->1->2
        assert d.get(0, 5) == 9.0
        assert d.get(5, 0) is None  # 5 reaches nothing

    def test_matches_networkx(self, backend):
        g = gb.generators.erdos_renyi_gnp(20, 0.2, seed=3, weighted=True)
        d = apsp(g)
        G = to_nx(g)
        for s, lengths in nx.all_pairs_dijkstra_path_length(G):
            for t, dist in lengths.items():
                assert d.get(s, t) == pytest.approx(dist)

    def test_rows_match_sssp(self, backend):
        g = gb.generators.erdos_renyi_gnp(15, 0.25, seed=4, weighted=True)
        d = apsp(g)
        for s in (0, 7):
            single = sssp(g, s)
            for v, dist in zip(*single.to_lists()):
                assert d.get(s, int(v)) == pytest.approx(dist)

    def test_diagonal_zero(self, backend):
        g = gb.generators.cycle_graph(5)
        d = apsp(g)
        for i in range(5):
            assert d.get(i, i) == 0.0

    def test_empty_graph(self, backend):
        d = apsp(gb.Matrix.sparse(gb.FP64, 0, 0))
        assert d.shape == (0, 0)

    def test_disconnected_absent(self, backend):
        g = gb.Matrix.from_lists([0, 1], [1, 0], [1.0, 1.0], 3, 3)
        d = apsp(g)
        assert d.get(0, 2) is None and d.get(2, 2) == 0.0

    def test_requires_square(self, backend):
        with pytest.raises(gb.InvalidValueError):
            apsp(gb.Matrix.sparse(gb.FP64, 2, 3))

    def test_from_sources(self, backend):
        g = gb.generators.erdos_renyi_gnp(12, 0.3, seed=5, weighted=True)
        rows = apsp_from_sources(g, [3, 7])
        assert rows.shape == (2, 12)
        d3 = sssp(g, 3)
        for v, dist in zip(*d3.to_lists()):
            assert rows.get(0, int(v)) == pytest.approx(dist)

    def test_from_all_sources_matches_apsp(self, backend):
        g = gb.generators.erdos_renyi_gnp(10, 0.3, seed=6, weighted=True)
        full = apsp(g)
        rows = apsp_from_sources(g)
        # Same structure; values agree to rounding (squaring associates path
        # sums differently than edge-by-edge relaxation).
        assert rows.shape == full.shape and rows.nvals == full.nvals
        np.testing.assert_array_equal(rows.container.indptr, full.container.indptr)
        np.testing.assert_array_equal(rows.container.indices, full.container.indices)
        np.testing.assert_allclose(
            rows.container.values, full.container.values, rtol=1e-12
        )


class TestKcore:
    def test_triangle_with_tail(self, backend):
        # Triangle 0-1-2 plus tail 2-3: 2-core is the triangle.
        g = gb.Matrix.from_lists(
            [0, 1, 0, 2, 1, 2, 2, 3],
            [1, 0, 2, 0, 2, 1, 3, 2],
            [1.0] * 8,
            4,
            4,
        )
        core2 = kcore(g, 2)
        assert sorted(core2.to_lists()[0]) == [0, 1, 2]

    def test_k0_keeps_everything(self, backend):
        g = gb.generators.path_graph(5)
        assert kcore(g, 0).nvals == 5

    def test_too_large_k_empty(self, backend):
        g = gb.generators.path_graph(5)
        assert kcore(g, 3).nvals == 0

    def test_complete_graph(self, backend):
        g = gb.generators.complete_graph(5)
        assert kcore(g, 4).nvals == 5
        assert kcore(g, 5).nvals == 0

    def test_negative_k_rejected(self, backend):
        with pytest.raises(gb.InvalidValueError):
            kcore(gb.generators.path_graph(3), -1)

    def test_matches_networkx(self, backend):
        g = gb.generators.erdos_renyi_gnp(30, 0.15, seed=7)
        G = to_nx(g)
        for k in (1, 2, 3):
            expected = set(nx.k_core(G, k).nodes()) - {
                v for v in G if G.degree(v) == 0
            }
            got = set(kcore(g, k).to_lists()[0])
            # networkx keeps isolated nodes in the 0-core only.
            assert got == expected

    def test_core_numbers_match_networkx(self, backend):
        g = gb.generators.erdos_renyi_gnp(25, 0.2, seed=8)
        G = to_nx(g)
        expected = nx.core_number(G)
        got = core_numbers(g)
        for v in range(25):
            assert got.get(v) == expected[v]

    def test_core_numbers_dense_output(self, backend):
        g = gb.Matrix.sparse(gb.FP64, 4, 4)
        cn = core_numbers(g)
        assert cn.nvals == 4
        assert all(cn.get(i) == 0 for i in range(4))
