"""Public API surface: everything advertised exists and round-trips."""

import importlib

import pytest

import repro as gb


class TestExports:
    def test_version(self):
        assert gb.__version__

    def test_all_names_resolve(self):
        for name in gb.__all__:
            assert hasattr(gb, name), name

    def test_subpackage_all_resolve(self):
        for pkg in (gb.algorithms, gb.generators, gb.io, gb.gpu, gb.containers):
            for name in pkg.__all__:
                assert hasattr(pkg, name), f"{pkg.__name__}.{name}"

    def test_core_operations_reexported(self):
        for name in (
            "mxm",
            "mxv",
            "vxm",
            "ewise_add",
            "ewise_mult",
            "ewise_union",
            "apply",
            "select",
            "reduce",
            "reduce_to_vector",
            "transpose",
            "extract",
            "assign",
            "assign_scalar",
            "kronecker",
        ):
            assert callable(getattr(gb, name)), name

    def test_types_reexported(self):
        assert gb.FP64.name == "FP64"
        assert len(gb.ALL_TYPES) == 11

    def test_descriptors_reexported(self):
        assert gb.DEFAULT is not None and gb.REPLACE.replace

    def test_error_root_reexported(self):
        assert issubclass(gb.DimensionMismatchError, gb.GraphBLASError)

    def test_semirings_monoids_registries(self):
        from repro.core.monoid import MONOIDS
        from repro.core.operators import BINARY_OPS, UNARY_OPS
        from repro.core.semiring import SEMIRINGS

        assert "PLUS_TIMES" in SEMIRINGS
        assert "MIN_MONOID" in MONOIDS
        assert "PLUS" in BINARY_OPS and "ABS" in UNARY_OPS

    def test_docstrings_on_public_functions(self):
        # Every advertised callable/class carries a docstring.
        missing = [
            name
            for name in gb.__all__
            if callable(getattr(gb, name)) and not getattr(gb, name).__doc__
        ]
        assert not missing, missing

    def test_algorithm_docstrings(self):
        missing = [
            name
            for name in gb.algorithms.__all__
            if not getattr(gb.algorithms, name).__doc__
        ]
        assert not missing, missing

    def test_modules_importable(self):
        for mod in (
            "repro.core.operations",
            "repro.core.union_op",
            "repro.backends.cpu.backend",
            "repro.backends.cuda_sim.kernels",
            "repro.gpu.occupancy",
            "repro.bench.harness",
        ):
            importlib.import_module(mod)
