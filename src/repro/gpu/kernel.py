"""Kernel abstraction and launch machinery for the simulated device.

A :class:`Kernel` bundles a semantic function (NumPy code that computes the
result on the host — the simulation's "device code") with a work estimator
that inspects the actual arguments and reports a
:class:`~repro.gpu.costmodel.KernelWork`.  :func:`launch` validates the
launch configuration against the device limits, executes the semantics,
charges the modeled time to the device clock, and records a profiler entry —
the full life cycle of a ``kernel<<<grid, block>>>(...)`` call.

Kernels additionally declare their **access sets** (``accesses``): a callable
receiving the launch arguments verbatim and returning an
:class:`~repro.sanitizer.access.Access` naming the containers the kernel
reads and writes.  The declarations are free when the sanitizer is off and
drive gbsan's race/residency/lifetime checkers when it is on (see
:mod:`repro.sanitizer`).  Call sites whose operands travel through thunks or
raw arrays pass ``san_reads``/``san_writes`` to :func:`launch` instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

from ..exceptions import InvalidLaunchError
from ..sanitizer import runtime as _gbsan
from ..sanitizer.access import Access, is_tracked, label
from .costmodel import KernelWork
from .device import Device, get_device
from .profiler import LaunchRecord

__all__ = ["LaunchConfig", "Kernel", "launch", "charge_transfer"]

_EMPTY_ACCESS = Access()


@dataclass(frozen=True)
class LaunchConfig:
    """``<<<grid, block>>>`` pair."""

    grid: int
    block: int

    def validate(self, device: Device) -> None:
        p = device.props
        if self.block < 1 or self.block > p.max_threads_per_block:
            raise InvalidLaunchError(
                f"block size {self.block} outside [1, {p.max_threads_per_block}]"
            )
        if self.grid < 1 or self.grid > p.max_blocks_per_grid:
            raise InvalidLaunchError(
                f"grid size {self.grid} outside [1, {p.max_blocks_per_grid}]"
            )

    @property
    def threads(self) -> int:
        return self.grid * self.block

    @classmethod
    def cover(cls, threads: int, block: int = 256) -> "LaunchConfig":
        """Smallest grid of ``block``-sized blocks covering ``threads``."""
        return cls(max(1, -(-max(1, int(threads)) // block)), block)


@dataclass(frozen=True)
class Kernel:
    """A named device kernel.

    ``run`` computes the semantics; ``work`` estimates the hardware work;
    ``accesses`` declares the read/write container sets for the sanitizer.
    All three receive the launch args verbatim.
    """

    name: str
    run: Callable[..., Any]
    work: Callable[..., KernelWork]
    accesses: Optional[Callable[..., Access]] = None
    # Load-balancing lane this variant is pinned to (see
    # repro.gpu.loadbalance).  Profiler records carry it as a
    # "name[lane]" label; kernel-graph signatures use the bare name, so a
    # lane flip between iterations re-costs the launch without forcing a
    # recapture.
    lane: Optional[str] = None

    @property
    def display_name(self) -> str:
        if self.lane is None:
            return self.name
        return f"{self.name}[{self.lane}]"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Kernel({self.display_name})"


def launch(
    kernel: Kernel,
    config: LaunchConfig,
    *args: Any,
    device: Optional[Device] = None,
    stream: Any = None,
    san_reads: Tuple[Any, ...] = (),
    san_writes: Tuple[Any, ...] = (),
    **kwargs: Any,
) -> Any:
    """Execute a kernel on the simulated device and charge its time.

    Returns whatever the kernel's semantic function returns.  When a stream
    is given the launch is enqueued on that stream's timeline; otherwise it
    runs on the device's default (serialising) timeline.

    ``san_reads``/``san_writes`` extend the kernel's declared access sets at
    the call site (for operands that reach the kernel as raw arrays or
    thunks); they are ignored unless the sanitizer is enabled.
    """
    dev = device or get_device()
    config.validate(dev)
    work = kernel.work(*args, **kwargs)
    if work.threads <= 1:
        work = KernelWork(
            flops=work.flops,
            bytes_read=work.bytes_read,
            bytes_written=work.bytes_written,
            threads=config.threads,
            divergence=work.divergence,
            coalescing=work.coalescing,
        )
    san = _gbsan.ACTIVE
    read_labels: Tuple[str, ...] = ()
    write_labels: Tuple[str, ...] = ()
    if san is not None:
        declared = (
            kernel.accesses(*args, **kwargs)
            if kernel.accesses is not None
            else _EMPTY_ACCESS
        )
        access = declared.merged(tuple(san_reads), tuple(san_writes))
        san.on_launch(kernel.name, access, dev, stream)
        read_labels = tuple(label(o) for o in access.reads if is_tracked(o))
        write_labels = tuple(label(o) for o in access.writes if is_tracked(o))
    graph = dev.active_graph
    if graph is not None and stream is None:
        # Inside a graph iteration: capture records the name and charges
        # normally; replay defers charging to the graph's commit (one
        # aggregated launch-overhead for the whole sequence).  Semantics
        # always execute — the data changes every iteration.
        if graph.on_launch(kernel, work, dev):
            return kernel.run(*args, **kwargs)
    dt = dev.cost_model.kernel_time_us(work)
    if stream is not None:
        start = stream.enqueue(dt)
    else:
        start = dev.clock_us
        dev.advance(dt)
    dev._profiler.record(
        LaunchRecord(
            name=kernel.display_name,
            kind="kernel",
            start_us=start,
            duration_us=dt,
            flops=work.flops,
            bytes=work.bytes_total,
            threads=work.threads,
            reads=read_labels,
            writes=write_labels,
        )
    )
    return kernel.run(*args, **kwargs)


def charge_transfer(
    nbytes: float,
    kind: str,
    device: Optional[Device] = None,
    container: Any = None,
) -> float:
    """Charge one H2D/D2H transfer to the device clock; returns duration.

    ``container`` (when the transfer moves a tracked container rather than
    loose bytes) feeds the sanitizer's happens-before and residency
    checkers; it does not affect accounting.
    """
    dev = device or get_device()
    dt = dev.cost_model.transfer_time_us(nbytes)
    start = dev.clock_us
    dev.advance(dt)
    dev._profiler.record(
        LaunchRecord(name=f"memcpy_{kind}", kind=kind, start_us=start, duration_us=dt, bytes=nbytes)
    )
    san = _gbsan.ACTIVE
    if san is not None and container is not None:
        san.on_transfer(container, kind, dev)
    return dt
