"""Hypothesis property tests on the sparse containers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.containers.coo import COO
from repro.containers.csr import CSRMatrix
from repro.containers.sparsevec import SparseVector
from repro.core.operators import PLUS
from repro.types import FP64


@st.composite
def dense_matrices(draw, max_dim=12):
    nrows = draw(st.integers(0, max_dim))
    ncols = draw(st.integers(0, max_dim))
    elems = st.floats(
        min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
    )
    data = draw(
        st.lists(elems, min_size=nrows * ncols, max_size=nrows * ncols)
    )
    m = np.array(data, dtype=np.float64).reshape(nrows, ncols)
    # Sparsify ~half the entries.
    mask = draw(
        st.lists(st.booleans(), min_size=nrows * ncols, max_size=nrows * ncols)
    )
    m[np.array(mask, dtype=bool).reshape(nrows, ncols)] = 0.0
    return m


@st.composite
def dense_vectors(draw, max_dim=30):
    n = draw(st.integers(0, max_dim))
    elems = st.floats(
        min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
    )
    data = draw(st.lists(elems, min_size=n, max_size=n))
    v = np.array(data, dtype=np.float64)
    mask = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    v[np.array(mask, dtype=bool)] = 0.0
    return v


class TestCSRProperties:
    @given(dense_matrices())
    @settings(max_examples=60, deadline=None)
    def test_from_dense_roundtrip(self, m):
        csr = CSRMatrix.from_dense(m)
        csr.validate()
        np.testing.assert_array_equal(csr.to_dense(), m)

    @given(dense_matrices())
    @settings(max_examples=60, deadline=None)
    def test_transpose_involution(self, m):
        csr = CSRMatrix.from_dense(m)
        tt = csr.transpose().transpose()
        tt.validate()
        np.testing.assert_array_equal(tt.to_dense(), m)

    @given(dense_matrices())
    @settings(max_examples=60, deadline=None)
    def test_transpose_matches_numpy(self, m):
        t = CSRMatrix.from_dense(m).transpose()
        np.testing.assert_array_equal(t.to_dense(), m.T)

    @given(dense_matrices())
    @settings(max_examples=60, deadline=None)
    def test_coo_roundtrip_preserves(self, m):
        csr = CSRMatrix.from_dense(m)
        back = CSRMatrix.from_coo(csr.to_coo())
        back.validate()
        np.testing.assert_array_equal(back.to_dense(), m)

    @given(dense_matrices())
    @settings(max_examples=40, deadline=None)
    def test_nvals_equals_nonzeros(self, m):
        assert CSRMatrix.from_dense(m).nvals == np.count_nonzero(m)


class TestSparseVectorProperties:
    @given(dense_vectors())
    @settings(max_examples=60, deadline=None)
    def test_from_dense_roundtrip(self, v):
        sv = SparseVector.from_dense(v)
        sv.validate()
        np.testing.assert_array_equal(sv.to_dense(), v)

    @given(dense_vectors())
    @settings(max_examples=60, deadline=None)
    def test_indices_strictly_increasing(self, v):
        sv = SparseVector.from_dense(v)
        assert np.all(np.diff(sv.indices) > 0) or sv.nvals <= 1

    @given(
        st.lists(
            st.tuples(st.integers(0, 19), st.floats(-10, 10, allow_nan=False)),
            max_size=50,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_build_with_plus_dup_matches_dense_scatter_add(self, pairs):
        idx = [i for i, _ in pairs]
        vals = [v for _, v in pairs]
        sv = SparseVector.from_lists(20, idx, vals, FP64, dup=PLUS)
        sv.validate()
        dense = np.zeros(20)
        np.add.at(dense, idx, vals)
        # Positions that were touched are present even if the sum is 0.0.
        for i in set(idx):
            assert sv.get(i) is not None
            np.testing.assert_allclose(float(sv.get(i)), dense[i], atol=1e-9)


class TestCOOProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 9),
                st.integers(0, 9),
                st.floats(-10, 10, allow_nan=False),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_dedupe_plus_matches_dense(self, trips):
        rows = np.array([t[0] for t in trips], dtype=np.int64)
        cols = np.array([t[1] for t in trips], dtype=np.int64)
        vals = np.array([t[2] for t in trips], dtype=np.float64)
        coo = COO(10, 10, rows, cols, vals).deduped(PLUS)
        dense = np.zeros((10, 10))
        np.add.at(dense, (rows, cols), vals)
        got = CSRMatrix.from_coo(coo).to_dense()
        np.testing.assert_allclose(got, dense, atol=1e-9)

    @given(
        st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 9)),
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_dedupe_output_is_canonical(self, pairs):
        rows = np.array([p[0] for p in pairs], dtype=np.int64)
        cols = np.array([p[1] for p in pairs], dtype=np.int64)
        vals = np.ones(len(pairs))
        coo = COO(10, 10, rows, cols, vals).deduped(PLUS)
        keys = coo.rows * 10 + coo.cols
        assert np.all(np.diff(keys) > 0) or coo.nvals <= 1
