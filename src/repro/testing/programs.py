"""Random well-typed GraphBLAS programs.

A *program* is a replayable value: a graph recipe (generator name, size,
seed), a value seed, and a sequence of operation specs.  Everything is a
plain JSON-serialisable dict, so a failing program can be shrunk, embedded
in a regression test, and reconstructed byte-identically in another process.

Programs are generated to be **statically well-typed and comparison-safe**:

- every matrix is square (n×n) and every vector has size n, so any operand
  combination is dimension-valid — including the results of earlier ops,
  which feed back into the operand pools to form chains;
- the generator tracks two static facts per value slot, *tainted* (the
  value passed through an association-sensitive float fold, so backends may
  differ in the last ulp) and *positive* (all stored values > 0), and only
  applies truthiness-sensitive operators (boolean semirings, logical ewise
  ops, value-predicate selects) to untainted positive slots.  Without this
  a sum that rounds to exactly 0.0 on one backend and 1e-17 on another
  would legitimately flip a boolean result — a false positive, not a bug;
- ``ANY_FIRST``/``ANY_SECOND`` are excluded from the differential pool
  (the ANY monoid is specified to be nondeterministic); ``ANY_PAIR`` is
  kept because every candidate value is 1.

The ``equivariant`` profile restricts generation to operations that commute
with vertex relabelling (no extract/assign index arrays, no index-based
selects), which the metamorphic permutation invariant requires.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .. import generators
from ..core.matrix import Matrix
from ..core.vector import Vector
from ..core.monoid import (
    LAND_MONOID,
    LOR_MONOID,
    MAX_MONOID,
    MIN_MONOID,
    PLUS_MONOID,
)
from ..core.operators import (
    ABS,
    AINV,
    IDENTITY,
    MAX,
    MIN,
    OFFDIAG,
    ONE,
    PLUS,
    SECOND,
    TIMES,
    TRIL,
    TRIU,
    VALUEGT,
    VALUELE,
)
from ..core.semiring import SEMIRINGS
from ..core.descriptor import Descriptor
from ..types import BOOL, FP64

__all__ = [
    "Program",
    "generate_program",
    "generate_mutation_program",
    "build_env",
    "GRAPH_RECIPES",
    "SEMIRING_POOL",
    "MUTATION_OPS",
    "QUERY_ALGOS",
    "annotate_exactness",
]


# ---------------------------------------------------------------------------
# Graph recipes — one per repro.generators entry
# ---------------------------------------------------------------------------

# name -> builder(size, seed, weighted) -> Matrix.  Sizes are approximate
# vertex budgets; recipes round to whatever their generator needs.


def _sq(size: int) -> int:
    return max(2, int(np.sqrt(size)))


GRAPH_RECIPES: Dict[str, Any] = {
    "erdos_renyi_gnp": lambda s, seed, w: generators.erdos_renyi_gnp(
        s, min(1.0, 4.0 / max(s, 1)), seed=seed, weighted=w, directed=True
    ),
    "erdos_renyi_gnm": lambda s, seed, w: generators.erdos_renyi_gnm(
        s, 3 * s, seed=seed, weighted=w, directed=True
    ),
    "rmat": lambda s, seed, w: generators.rmat(
        max(2, int(np.ceil(np.log2(max(s, 2))))), edge_factor=4, seed=seed, weighted=w
    ),
    "watts_strogatz": lambda s, seed, w: generators.watts_strogatz(
        max(s, 5), 4, 0.2, seed=seed, weighted=w
    ),
    "barabasi_albert": lambda s, seed, w: generators.barabasi_albert(
        max(s, 4), 2, seed=seed, weighted=w
    ),
    "stochastic_block_model": lambda s, seed, w: generators.stochastic_block_model(
        [max(s // 2, 2), max(s - s // 2, 2)], 0.4, 0.05, seed=seed, weighted=w
    ),
    "grid_2d": lambda s, seed, w: generators.grid_2d(_sq(s), _sq(s), weighted=w, seed=seed),
    "torus_2d": lambda s, seed, w: generators.torus_2d(_sq(s), _sq(s), weighted=w, seed=seed),
    "path_graph": lambda s, seed, w: generators.path_graph(max(s, 2), weighted=w, seed=seed),
    "cycle_graph": lambda s, seed, w: generators.cycle_graph(max(s, 3), weighted=w, seed=seed),
    "complete_graph": lambda s, seed, w: generators.complete_graph(
        min(max(s, 3), 12), weighted=w, seed=seed
    ),
    "star_graph": lambda s, seed, w: generators.star_graph(max(s, 3), weighted=w, seed=seed),
}


# ---------------------------------------------------------------------------
# Operator pools
# ---------------------------------------------------------------------------

# The ANY monoid is spec-nondeterministic; with FIRST/SECOND multiplicands
# different backends may legally select different values, so those two stay
# out of the differential pool.  ANY_PAIR is deterministic (all inputs 1).
SEMIRING_POOL: List[str] = sorted(set(SEMIRINGS) - {"ANY_FIRST", "ANY_SECOND"})

# Semirings whose additive fold is truthiness-sensitive on float inputs.
_BOOLEAN_SEMIRINGS = {"LOR_LAND", "LAND_LOR"}

_EWISE_OPS = {"PLUS": PLUS, "MIN": MIN, "MAX": MAX, "TIMES": TIMES}
_ACCUM_OPS = {"PLUS": PLUS, "MIN": MIN, "MAX": MAX, "SECOND": SECOND}
_UNARY_OPS = {"IDENTITY": IDENTITY, "AINV": AINV, "ABS": ABS, "ONE": ONE}
_MONOIDS = {
    "PLUS_MONOID": PLUS_MONOID,
    "MIN_MONOID": MIN_MONOID,
    "MAX_MONOID": MAX_MONOID,
    "LOR_MONOID": LOR_MONOID,
    "LAND_MONOID": LAND_MONOID,
}
_INDEX_IOPS = {"TRIL": TRIL, "TRIU": TRIU, "OFFDIAG": OFFDIAG}
_VALUE_IOPS = {"VALUEGT": VALUEGT, "VALUELE": VALUELE}

_DESC_FLAGS = ("complement_mask", "structural_mask", "replace")


def lookup_semiring(name: str):
    return SEMIRINGS[name]


def lookup_ewise_op(name: str):
    return _EWISE_OPS[name]


def lookup_accum(name: Optional[str]):
    return _ACCUM_OPS[name] if name else None


def lookup_unary(name: str):
    return _UNARY_OPS[name]


def lookup_monoid(name: str):
    return _MONOIDS[name]


def lookup_iop(name: str):
    return _INDEX_IOPS.get(name) or _VALUE_IOPS[name]


def desc_from_names(names) -> Descriptor:
    return Descriptor(**{f: True for f in names}) if names else Descriptor()


# ---------------------------------------------------------------------------
# Program value
# ---------------------------------------------------------------------------


@dataclass
class Program:
    """A replayable GraphBLAS op sequence over a generated graph."""

    graph: Dict[str, Any]  # {"generator", "size", "seed", "weighted"}
    seed: int              # value/mask/index randomness
    ops: List[Dict[str, Any]] = field(default_factory=list)
    version: int = 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "graph": dict(self.graph),
            "seed": self.seed,
            "ops": [dict(o) for o in self.ops],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Program":
        return cls(
            graph=dict(d["graph"]),
            seed=int(d["seed"]),
            ops=[dict(o) for o in d["ops"]],
            version=int(d.get("version", 1)),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, s: str) -> "Program":
        return cls.from_dict(json.loads(s))

    def describe(self) -> str:
        g = self.graph
        ops = ", ".join(o["op"] for o in self.ops)
        return (
            f"{g['generator']}(size={g['size']}, seed={g['seed']}, "
            f"weighted={g['weighted']}) seed={self.seed}: [{ops}]"
        )


# ---------------------------------------------------------------------------
# Environment construction
# ---------------------------------------------------------------------------


class Env:
    """The value store a program executes against.

    ``matrices``/``vectors``/``scalars`` hold operands and results;
    ``mask_vectors``/``mask_matrix`` are the dedicated boolean masks.
    Ops append their results, so slot indices are stable per program.
    """

    __slots__ = ("n", "matrices", "vectors", "scalars", "mask_vectors", "mask_matrix")

    def __init__(self, n: int) -> None:
        self.n = n
        self.matrices: List[Matrix] = []
        self.vectors: List[Vector] = []
        self.scalars: List[Any] = []
        self.mask_vectors: List[Vector] = []
        self.mask_matrix: Optional[Matrix] = None


def build_graph(graph_spec: Dict[str, Any]) -> Matrix:
    recipe = GRAPH_RECIPES[graph_spec["generator"]]
    return recipe(int(graph_spec["size"]), int(graph_spec["seed"]), bool(graph_spec["weighted"]))


def build_env(program: Program, perm: Optional[np.ndarray] = None) -> Env:
    """Materialise the initial environment (optionally vertex-permuted).

    With ``perm``, every initial value is relabelled: ``A'[p(i), p(j)] =
    A[i, j]`` and ``v'[p(i)] = v[i]`` — the input transformation of the
    permutation-equivariance invariant.
    """
    a = build_graph(program.graph)
    n = a.nrows
    rng = np.random.default_rng(program.seed)

    if perm is not None:
        ri, ci, vv = a.to_lists()
        p = np.asarray(perm, dtype=np.int64)
        a = Matrix.from_lists(
            p[np.asarray(ri, dtype=np.int64)],
            p[np.asarray(ci, dtype=np.int64)],
            np.asarray(vv, dtype=a.type.dtype),
            n, n, a.type,
        )

    env = Env(n)
    env.matrices.append(a)

    def rand_vector(density: float, lo: float = 1.0, hi: float = 10.0) -> Vector:
        keep = rng.random(n) < density
        idx = np.nonzero(keep)[0]
        # Integral values in [lo, hi): float sums stay exact until a real
        # float fold (semiring product) taints them.
        vals = np.floor(rng.uniform(lo, hi, idx.size))
        if perm is not None:
            order = np.argsort(perm[idx], kind="stable")
            return Vector.from_lists(np.sort(perm[idx]), vals[order], n, FP64)
        return Vector.from_lists(idx, vals, n, FP64)

    def rand_mask(density: float) -> Vector:
        keep = rng.random(n) < density
        idx = np.nonzero(keep)[0]
        vals = rng.random(idx.size) > 0.3
        if perm is not None:
            order = np.argsort(perm[idx], kind="stable")
            return Vector.from_lists(np.sort(perm[idx]), vals[order], n, BOOL)
        return Vector.from_lists(idx, vals, n, BOOL)

    env.vectors.append(rand_vector(0.5))
    env.vectors.append(rand_vector(max(0.1, 3.0 / n)))
    env.mask_vectors.append(rand_mask(0.4))
    env.mask_vectors.append(rand_mask(0.15))

    mi = rng.integers(0, n, 3 * n)
    mj = rng.integers(0, n, 3 * n)
    mv = rng.random(3 * n) > 0.3
    if perm is not None:
        mi, mj = perm[mi], perm[mj]
    env.mask_matrix = Matrix.from_lists(mi, mj, mv, n, n, BOOL, dup=SECOND)
    return env


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------


class _SlotMeta:
    """Static per-slot facts the generator tracks for comparison safety."""

    __slots__ = ("tainted", "positive")

    def __init__(self, tainted: bool = False, positive: bool = True) -> None:
        self.tainted = tainted
        self.positive = positive


_FULL_OPS = (
    "mxv", "vxm", "mxm", "ewise_add", "ewise_mult", "apply", "select",
    "reduce", "reduce_to_vector", "extract", "assign", "transpose",
)
_EQUIVARIANT_OPS = (
    "mxv", "vxm", "mxm", "ewise_add", "ewise_mult", "apply",
    "reduce", "reduce_to_vector", "transpose",
)

# Graph-mutation op pool (streaming fuzz mode, repro.testing.streaming):
# random edge batches interleaved with explicit compactions and incremental
# analytics queries.  Batches are derived at runtime from "bseed" via
# repro.streaming.batch.random_edge_batch against the *logical* (base ⊕
# delta) edge set, which is identical on every backend, so one program
# replays bit-identically across specs.
MUTATION_OPS = ("edge_batch", "compact", "query")

#: Algorithms the "query" mutation op can ask for (each is maintained
#: incrementally by repro.streaming.incremental and checked against a full
#: recompute on the materialised graph).
QUERY_ALGOS = ("bfs", "cc", "pagerank")

# Deliberately ill-formed ops for the invalid-program mode.  Each one must
# raise a specific GraphBLASError subclass in the shared frontend, so every
# backend observes the identical exception type; the executor records the
# ("raised", type-name) snapshot and continues with an empty vector slot.
INVALID_OPS = (
    "bad_mxv_dims",        # operand size mismatch   -> DimensionMismatchError
    "bad_apply_domain",    # op undefined on domain  -> DomainMismatchError
    "bad_transpose_desc",  # TRANSPOSE_A flips dims  -> DimensionMismatchError
    "bad_extract_oob",     # index out of range      -> IndexOutOfBoundsError
)


def generate_program(
    seed: int,
    n_ops: Optional[int] = None,
    profile: str = "full",
    size: Optional[int] = None,
) -> Program:
    """Generate a random well-typed program from ``seed``.

    ``profile`` is ``"full"`` (every op kind) or ``"equivariant"`` (only
    vertex-relabelling-equivariant ops, for the permutation invariant).
    """
    rng = np.random.default_rng(np.random.SeedSequence([0x5EED, int(seed)]))
    gen_names = sorted(GRAPH_RECIPES)
    gname = gen_names[int(rng.integers(0, len(gen_names)))]
    gsize = int(size if size is not None else rng.integers(8, 40))
    weighted = bool(rng.random() < 0.6)
    graph = {
        "generator": gname,
        "size": gsize,
        "seed": int(rng.integers(0, 2**31 - 1)),
        "weighted": weighted,
    }
    prog = Program(graph=graph, seed=int(rng.integers(0, 2**31 - 1)))

    count = int(n_ops if n_ops is not None else rng.integers(2, 7))
    ops = _FULL_OPS if profile == "full" else _EQUIVARIANT_OPS

    # Slot metadata mirrors build_env: matrices [graph], vectors [u0, u1].
    # Generated weights are integral, so even PLUS folds of *initial* values
    # are exact; taint appears once an inexact semiring product runs.
    mats = [_SlotMeta()]
    vecs = [_SlotMeta(), _SlotMeta()]

    def pick_mat() -> int:
        return int(rng.integers(0, len(mats)))

    def pick_vec() -> int:
        return int(rng.integers(0, len(vecs)))

    def pick_semiring(operands_meta) -> str:
        tainted = any(m.tainted for m in operands_meta)
        unsigned = all(m.positive for m in operands_meta)
        pool = [
            s
            for s in SEMIRING_POOL
            if s not in _BOOLEAN_SEMIRINGS or (unsigned and not tainted)
        ]
        return pool[int(rng.integers(0, len(pool)))]

    def pick_mask(space: str):
        r = rng.random()
        if r < 0.55:
            return None
        if space == "v":
            return ["mv", int(rng.integers(0, 2))]
        return ["mm", 0]

    def pick_desc() -> List[str]:
        flags = [f for f in _DESC_FLAGS if rng.random() < 0.18]
        return flags

    def pick_accum() -> Optional[str]:
        if rng.random() < 0.3:
            names = sorted(_ACCUM_OPS)
            return names[int(rng.integers(0, len(names)))]
        return None

    def pick_into(space: str) -> Optional[int]:
        # Start the output from a dup of an existing slot sometimes, so the
        # accumulate/merge write pipeline sees non-empty targets.
        if rng.random() < 0.3:
            return pick_vec() if space == "v" else pick_mat()
        return None

    def result_meta(semiring_name: str, operands_meta) -> _SlotMeta:
        from .equivalence import product_exact

        s = SEMIRINGS[semiring_name]
        tainted = any(m.tainted for m in operands_meta) or not product_exact(s, np.float64)
        positive = all(m.positive for m in operands_meta)
        return _SlotMeta(tainted, positive)

    for _ in range(count):
        kind = ops[int(rng.integers(0, len(ops)))]
        spec: Dict[str, Any] = {"op": kind}

        if kind in ("mxv", "vxm"):
            ai, ui = pick_mat(), pick_vec()
            sr = pick_semiring([mats[ai], vecs[ui]])
            spec.update(
                a=ai,
                u=ui,
                semiring=sr,
                direction=["auto", "push", "pull"][int(rng.integers(0, 3))],
                mask=pick_mask("v"),
                accum=pick_accum(),
                desc=pick_desc(),
                into=pick_into("v"),
            )
            vecs.append(result_meta(sr, [mats[ai], vecs[ui]]))
        elif kind == "mxm":
            ai, bi = pick_mat(), pick_mat()
            sr = pick_semiring([mats[ai], mats[bi]])
            spec.update(
                a=ai, b=bi, semiring=sr,
                mask=pick_mask("m"), accum=pick_accum(), desc=pick_desc(),
                into=pick_into("m"),
            )
            mats.append(result_meta(sr, [mats[ai], mats[bi]]))
        elif kind in ("ewise_add", "ewise_mult"):
            space = "v" if rng.random() < 0.6 else "m"
            names = sorted(_EWISE_OPS)
            opname = names[int(rng.integers(0, len(names)))]
            if space == "v":
                xi, yi = pick_vec(), pick_vec()
                metas = [vecs[xi], vecs[yi]]
            else:
                xi, yi = pick_mat(), pick_mat()
                metas = [mats[xi], mats[yi]]
            spec.update(
                space=space, x=xi, y=yi, binop=opname,
                mask=pick_mask(space), accum=pick_accum(), desc=pick_desc(),
                into=pick_into(space),
            )
            meta = _SlotMeta(
                any(m.tainted for m in metas), all(m.positive for m in metas)
            )
            (vecs if space == "v" else mats).append(meta)
        elif kind == "apply":
            space = "v" if rng.random() < 0.6 else "m"
            si = pick_vec() if space == "v" else pick_mat()
            src = (vecs if space == "v" else mats)[si]
            names = sorted(_UNARY_OPS)
            uname = names[int(rng.integers(0, len(names)))]
            spec.update(
                space=space, src=si, unary=uname,
                mask=pick_mask(space), accum=pick_accum(), desc=pick_desc(),
                into=pick_into(space),
            )
            if uname == "ONE":
                meta = _SlotMeta(False, True)
            elif uname == "ABS":
                meta = _SlotMeta(src.tainted, True)
            elif uname == "AINV":
                meta = _SlotMeta(src.tainted, False)
            else:
                meta = _SlotMeta(src.tainted, src.positive)
            (vecs if space == "v" else mats).append(meta)
        elif kind == "select":
            space = "v" if rng.random() < 0.5 else "m"
            si = pick_vec() if space == "v" else pick_mat()
            src = (vecs if space == "v" else mats)[si]
            iop_pool = sorted(_INDEX_IOPS) if space == "m" else []
            if not src.tainted:
                iop_pool = iop_pool + sorted(_VALUE_IOPS)
            if not iop_pool:
                iop_pool = ["VALUEGT"] if not src.tainted else []
            if not iop_pool:
                continue  # tainted vector: no comparison-safe select exists
            iname = iop_pool[int(rng.integers(0, len(iop_pool)))]
            spec.update(
                space=space, src=si, iop=iname,
                thunk=int(rng.integers(0, 6)),
                mask=pick_mask(space), accum=pick_accum(), desc=pick_desc(),
                into=pick_into(space),
            )
            (vecs if space == "v" else mats).append(_SlotMeta(src.tainted, src.positive))
        elif kind == "reduce":
            space = "v" if rng.random() < 0.6 else "m"
            si = pick_vec() if space == "v" else pick_mat()
            src = (vecs if space == "v" else mats)[si]
            pool = sorted(_MONOIDS)
            if src.tainted or not src.positive:
                pool = [p for p in pool if p not in ("LOR_MONOID", "LAND_MONOID")]
            mname = pool[int(rng.integers(0, len(pool)))]
            spec.update(space=space, src=si, monoid=mname)
        elif kind == "reduce_to_vector":
            ai = pick_mat()
            src = mats[ai]
            pool = sorted(_MONOIDS)
            if src.tainted or not src.positive:
                pool = [p for p in pool if p not in ("LOR_MONOID", "LAND_MONOID")]
            mname = pool[int(rng.integers(0, len(pool)))]
            spec.update(
                src=ai, monoid=mname,
                mask=pick_mask("v"), accum=pick_accum(), desc=pick_desc(),
                into=pick_into("v"),
            )
            from .equivalence import reduce_exact

            vecs.append(
                _SlotMeta(
                    src.tainted or not reduce_exact(_MONOIDS[mname], np.float64),
                    src.positive,
                )
            )
        elif kind == "extract":
            space = "v" if rng.random() < 0.6 else "m"
            si = pick_vec() if space == "v" else pick_mat()
            src = (vecs if space == "v" else mats)[si]
            spec.update(
                space=space, src=si,
                idx_seed=int(rng.integers(0, 2**31 - 1)),
                mask=pick_mask(space), accum=pick_accum(), desc=pick_desc(),
                into=pick_into(space),
            )
            (vecs if space == "v" else mats).append(_SlotMeta(src.tainted, src.positive))
        elif kind == "assign":
            di, si = pick_vec(), pick_vec()
            spec.update(
                dst=di, src=si,
                idx_seed=int(rng.integers(0, 2**31 - 1)),
                mask=pick_mask("v"), accum=pick_accum(), desc=pick_desc(),
            )
            dm, sm = vecs[di], vecs[si]
            vecs.append(
                _SlotMeta(dm.tainted or sm.tainted, dm.positive and sm.positive)
            )
        elif kind == "transpose":
            ai = pick_mat()
            spec.update(
                a=ai, mask=pick_mask("m"), accum=pick_accum(), desc=pick_desc(),
                into=pick_into("m"),
            )
            mats.append(_SlotMeta(mats[ai].tainted, mats[ai].positive))
        prog.ops.append(spec)
    return prog


def generate_mutation_program(
    seed: int,
    n_ops: Optional[int] = None,
    size: Optional[int] = None,
) -> Program:
    """A random graph-mutation program: batches, compactions, queries.

    Executed by :mod:`repro.testing.streaming`: the graph becomes a
    :class:`~repro.streaming.graph.DynamicGraph` and every ``query`` op is
    answered by the matching incremental view *and* checked against a full
    recompute on the materialised graph — the streaming metamorphic
    invariant — before the result is compared across backend specs.

    ``source`` is stored unreduced and taken mod ``n`` at run time, since
    graph recipes round the requested size.
    """
    rng = np.random.default_rng(np.random.SeedSequence([0x57AB, int(seed)]))
    gen_names = sorted(GRAPH_RECIPES)
    gname = gen_names[int(rng.integers(0, len(gen_names)))]
    gsize = int(size if size is not None else rng.integers(8, 40))
    graph = {
        "generator": gname,
        "size": gsize,
        "seed": int(rng.integers(0, 2**31 - 1)),
        "weighted": bool(rng.random() < 0.6),
    }

    def edge_batch_op(inserts: int, deletes: int) -> Dict[str, Any]:
        return {
            "op": "edge_batch",
            "bseed": int(rng.integers(0, 2**31 - 1)),
            "inserts": inserts,
            "deletes": deletes,
        }

    def query_op() -> Dict[str, Any]:
        algo = QUERY_ALGOS[int(rng.integers(0, len(QUERY_ALGOS)))]
        return {"op": "query", "algo": algo, "source": int(rng.integers(0, 2**16))}

    count = int(n_ops if n_ops is not None else rng.integers(4, 10))
    ops_list: List[Dict[str, Any]] = []
    for _ in range(count):
        r = rng.random()
        if r < 0.40:
            ops_list.append(
                edge_batch_op(int(rng.integers(0, 9)), int(rng.integers(0, 5)))
            )
        elif r < 0.55:
            ops_list.append({"op": "compact"})
        else:
            ops_list.append(query_op())
    # Every program must mutate and observe at least once, else it tests
    # nothing; pin both ends.
    if not any(o["op"] == "edge_batch" for o in ops_list):
        ops_list.insert(0, edge_batch_op(4, 1))
    if not any(o["op"] == "query" for o in ops_list):
        ops_list.append(query_op())
    return Program(
        graph=graph, seed=int(rng.integers(0, 2**31 - 1)), ops=ops_list
    )


def generate_invalid_program(seed: int, n_ops: Optional[int] = None) -> Program:
    """A well-typed program with deliberately ill-formed ops spliced in.

    The error paths are part of the differential contract: every backend
    must raise the *same* :class:`~repro.exceptions.GraphBLASError`
    subclass at the same op.  Valid ops surrounding the invalid ones prove
    that an error leaves the environment usable (failed ops contribute an
    empty placeholder slot on every backend alike).
    """
    prog = generate_program(seed, n_ops=n_ops)
    rng = np.random.default_rng(np.random.SeedSequence([0xBAD, int(seed)]))
    n_bad = int(rng.integers(1, 3))
    for _ in range(n_bad):
        kind = INVALID_OPS[int(rng.integers(0, len(INVALID_OPS)))]
        pos = int(rng.integers(0, len(prog.ops) + 1))
        prog.ops.insert(pos, {"op": kind})
    # Invalid ops consume no slots and produce a placeholder vector, so
    # later slot references stay valid only if we account for the inserted
    # vector slots.  Easiest correct fix: renumber later vector references.
    _renumber_after_insertions(prog)
    return prog


def _renumber_after_insertions(prog: Program) -> None:
    """Fix vector slot references after invalid-op insertions.

    Every op (valid or not) appends exactly one result slot; an invalid op
    always appends a *vector*.  Valid ops generated before the insertion
    referenced vector slots numbered without the interlopers, so any
    reference >= the slot index an earlier invalid op produced must shift
    up by one.
    """
    from .shrink import result_slots

    # Compute, for each op position, how many invalid-op vector slots were
    # produced before it, then shift that op's vector references past those
    # slots.  Invalid slots occupy the index they were created at.
    slots = result_slots(prog)
    invalid_vec_slots = [
        s for (k, s), spec in zip(slots, prog.ops)
        if spec["op"] in INVALID_OPS and k == "v"
    ]
    for j, spec in enumerate(prog.ops):
        if spec["op"] in INVALID_OPS:
            continue
        produced_before = sorted(s for s in invalid_vec_slots if s < slots[j][1])
        if not produced_before:
            continue
        for f in _vector_ref_fields(spec):
            ref = spec.get(f)
            if ref is None or not isinstance(ref, int):
                continue
            # Map the old reference to its new index: bump once for every
            # inserted slot at or below the running value (a fixpoint walk
            # over the inserted positions in ascending order).
            shifted = ref
            for s in produced_before:
                if s <= shifted:
                    shifted += 1
            spec[f] = shifted
        # Mask vectors live in their own pool; never renumbered.


def _vector_ref_fields(spec) -> Tuple[str, ...]:
    """Fields of ``spec`` that reference the *vector* slot pool."""
    op = spec["op"]
    if op in ("mxv", "vxm"):
        return ("u", "into")
    if op == "reduce_to_vector":
        return ("into",)
    if op == "assign":
        return ("dst", "src")
    if op in ("ewise_add", "ewise_mult"):
        return ("x", "y", "into") if spec.get("space") == "v" else ()
    if op in ("apply", "select", "extract"):
        return ("src", "into") if spec.get("space") == "v" else ()
    if op == "reduce":
        return ("src",) if spec.get("space") == "v" else ()
    return ()


# ---------------------------------------------------------------------------
# Static exactness annotation (drives the comparison tolerance per op)
# ---------------------------------------------------------------------------


def annotate_exactness(program: Program) -> List[bool]:
    """Per-op ``exact`` flags: False where backends may differ in rounding.

    Mirrors the taint tracking the generator performs, but recomputed from
    the program alone so shrunk/edited programs stay correctly classified.
    """
    from .equivalence import product_exact, reduce_exact

    mats = [False]          # graph matrix: exact
    vecs = [False, False]   # u0, u1: exact
    flags: List[bool] = []

    for spec in program.ops:
        op = spec["op"]
        if op in ("mxv", "vxm"):
            t = (
                mats[spec["a"]]
                or vecs[spec["u"]]
                or not product_exact(SEMIRINGS[spec["semiring"]], np.float64)
            )
            if spec.get("into") is not None:
                t = t or vecs[spec["into"]]
            vecs.append(t)
            flags.append(not t)
        elif op == "mxm":
            t = (
                mats[spec["a"]]
                or mats[spec["b"]]
                or not product_exact(SEMIRINGS[spec["semiring"]], np.float64)
            )
            if spec.get("into") is not None:
                t = t or mats[spec["into"]]
            mats.append(t)
            flags.append(not t)
        elif op in ("ewise_add", "ewise_mult"):
            pool = vecs if spec["space"] == "v" else mats
            t = pool[spec["x"]] or pool[spec["y"]]
            if spec.get("into") is not None:
                t = t or pool[spec["into"]]
            pool.append(t)
            flags.append(not t)
        elif op in ("apply", "select", "extract"):
            pool = vecs if spec["space"] == "v" else mats
            t = pool[spec["src"]]
            if spec.get("into") is not None:
                t = t or pool[spec["into"]]
            pool.append(t)
            flags.append(not t)
        elif op == "reduce":
            pool = vecs if spec["space"] == "v" else mats
            t = pool[spec["src"]] or not reduce_exact(
                _MONOIDS[spec["monoid"]], np.float64
            )
            flags.append(not t)
        elif op == "reduce_to_vector":
            t = mats[spec["src"]] or not reduce_exact(
                _MONOIDS[spec["monoid"]], np.float64
            )
            if spec.get("into") is not None:
                t = t or vecs[spec["into"]]
            vecs.append(t)
            flags.append(not t)
        elif op == "assign":
            t = vecs[spec["dst"]] or vecs[spec["src"]]
            vecs.append(t)
            flags.append(not t)
        elif op == "transpose":
            t = mats[spec["a"]]
            if spec.get("into") is not None:
                t = t or mats[spec["into"]]
            mats.append(t)
            flags.append(not t)
        elif op in INVALID_OPS:
            # The op must raise; ("raised", type) snapshots compare exactly,
            # and the placeholder result slot is an (exact) empty vector.
            vecs.append(False)
            flags.append(True)
        else:  # pragma: no cover - defensive
            flags.append(False)
    return flags
