"""Erdős–Rényi random graphs: G(n, p) and G(n, m)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.matrix import Matrix
from ..exceptions import InvalidValueError
from ..types import FP64, GrBType
from .common import finalize_edges

__all__ = ["erdos_renyi_gnp", "erdos_renyi_gnm"]


def erdos_renyi_gnp(
    n: int,
    p: float,
    seed: Optional[int] = None,
    weighted: bool = False,
    directed: bool = False,
    typ: GrBType = FP64,
) -> Matrix:
    """G(n, p): each ordered pair (i≠j) is an edge with probability ``p``.

    Sampled by drawing a Binomial edge count and then endpoints uniformly —
    exact in distribution up to duplicate collisions, which are collapsed
    (standard practice for sparse p, and O(m) instead of O(n²)).
    """
    if not 0.0 <= p <= 1.0:
        raise InvalidValueError(f"p must be in [0, 1], got {p}")
    if n < 0:
        raise InvalidValueError(f"negative n {n}")
    rng = np.random.default_rng(seed)
    n_pairs = n * (n - 1) if directed else n * (n - 1) // 2
    m = rng.binomial(n_pairs, p) if n_pairs > 0 else 0
    rows = rng.integers(0, max(n, 1), m, dtype=np.int64)
    cols = rng.integers(0, max(n, 1), m, dtype=np.int64)
    return finalize_edges(
        n, rows, cols, weighted=weighted, directed=directed, typ=typ, seed=seed
    )


def erdos_renyi_gnm(
    n: int,
    m: int,
    seed: Optional[int] = None,
    weighted: bool = False,
    directed: bool = False,
    typ: GrBType = FP64,
) -> Matrix:
    """G(n, m): ``m`` edge slots drawn uniformly (duplicates collapsed)."""
    if n < 0 or m < 0:
        raise InvalidValueError(f"negative n or m ({n}, {m})")
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, max(n, 1), m, dtype=np.int64)
    cols = rng.integers(0, max(n, 1), m, dtype=np.int64)
    return finalize_edges(
        n, rows, cols, weighted=weighted, directed=directed, typ=typ, seed=seed
    )
