"""Shared edge-list post-processing for all generators."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..containers.convert import build_matrix
from ..core.matrix import Matrix
from ..core.operators import FIRST
from ..types import FP64, GrBType

__all__ = ["finalize_edges"]


def finalize_edges(
    n: int,
    rows: np.ndarray,
    cols: np.ndarray,
    weighted: bool = False,
    directed: bool = False,
    typ: GrBType = FP64,
    seed: Optional[int] = None,
    max_weight: float = 256.0,
) -> Matrix:
    """Edge endpoints -> canonical adjacency Matrix.

    Removes self-loops, collapses duplicates (keeping the first weight, so
    results are deterministic for a fixed seed), optionally symmetrises, and
    attaches weights (uniform [1, max_weight) when ``weighted``, else 1).
    For undirected graphs duplicates are collapsed on the *unordered* pair
    before mirroring, guaranteeing a symmetric weight matrix.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    if not directed:
        lo = np.minimum(rows, cols)
        hi = np.maximum(rows, cols)
        # Unique unordered pairs, keeping first occurrence (stable).
        key = lo * np.int64(n) + hi
        _, first_pos = np.unique(key, return_index=True)
        first_pos.sort()
        lo, hi = lo[first_pos], hi[first_pos]
        m = lo.size
        rows = np.concatenate([lo, hi])
        cols = np.concatenate([hi, lo])
    if weighted:
        rng = np.random.default_rng(None if seed is None else seed + 0x5EED)
        if directed:
            vals = rng.uniform(1.0, max_weight, rows.size).astype(typ.dtype)
        else:
            w = rng.uniform(1.0, max_weight, m).astype(typ.dtype)
            vals = np.concatenate([w, w])
    else:
        vals = np.ones(rows.size, dtype=typ.dtype)
    return Matrix(build_matrix(n, n, rows, cols, vals, typ, dup=FIRST))
