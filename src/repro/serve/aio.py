"""``asyncio`` facade over :class:`~repro.serve.service.GraphService`.

The core service is a discrete-event simulator on a virtual clock; this
adapter exposes it to coroutine callers.  ``await submit(...)`` resolves
with the query's :class:`~repro.serve.service.QueryRecord` once its batch
has executed — which may be immediately (size trigger), after other
submissions advance virtual time past the pool's age trigger, or when a
drain flushes the tail.  A background pump task cooperatively dispatches
one pending pool per scheduling slice, yielding control between batches so
many tenants' coroutines interleave naturally.

Admission control surfaces as the same typed
:class:`~repro.serve.queries.Overloaded` exception, raised out of the
``await``.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional

from .queries import Query
from .service import DEFAULT_GRAPH, GraphService, QueryRecord

__all__ = ["AsyncGraphService"]


class AsyncGraphService:
    """Awaitable submission API over a (virtual-clock) GraphService."""

    def __init__(self, service: GraphService) -> None:
        self.service = service
        self._futures: Dict[int, "asyncio.Future[QueryRecord]"] = {}

    async def submit(
        self,
        tenant: str,
        query: Query,
        graph: str = DEFAULT_GRAPH,
        arrival_us: Optional[float] = None,
        deadline_us: Optional[float] = None,
    ) -> QueryRecord:
        """Admit one query and wait for its batch to complete.

        Raises :class:`~repro.serve.queries.Overloaded` synchronously when
        the tenant's queue is full.
        """
        rec = self.service.submit(
            tenant, query, graph=graph,
            arrival_us=arrival_us, deadline_us=deadline_us,
        )
        loop = asyncio.get_running_loop()
        fut: "asyncio.Future[QueryRecord]" = loop.create_future()
        self._futures[rec.qid] = fut
        self._settle()
        if fut.done():
            return fut.result()
        # Not yet batched: pump pending pools cooperatively until it is.
        # Yield BEFORE forcing a dispatch so sibling coroutines that are
        # about to submit get to join the pool — a size-trigger fill then
        # settles everyone at once; only a pool nobody else tops up gets
        # flushed by its own waiter.
        while not fut.done():
            await asyncio.sleep(0)
            self._settle()
            if fut.done():
                break
            self.service.dispatch_next()
            self._settle()
        return fut.result()

    async def drain(self) -> None:
        """Flush every pending pool, yielding between batch dispatches."""
        while self.service.dispatch_next():
            self._settle()
            await asyncio.sleep(0)
        self._settle()

    def _settle(self) -> None:
        if not self._futures:
            return
        done = [
            rec
            for rec in self.service.records
            if rec.qid in self._futures and rec.status != "queued"
        ]
        for rec in done:
            fut = self._futures.pop(rec.qid)
            if not fut.done():
                fut.set_result(rec)
