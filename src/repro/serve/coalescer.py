"""Batch coalescing: drain compatible queries into multi-source launches.

The coalescer keeps one pool per (graph, coalesce-key).  A pool closes —
i.e. its queries are drained into one batched launch — when either

- it holds ``max_batch`` queries (size trigger, fires at the arrival that
  fills it), or
- its **oldest** query has waited ``max_wait_us`` (age trigger: the wait a
  query can be taxed to help later arrivals amortise launches; the knob
  that trades p50 latency for throughput).

``max_batch=1`` *is* the unbatched A/B: every query dispatches alone on
arrival, which is also the single-source execution the bit-identity
acceptance compares against.

Draining is **fairness-aware**: when a pool holds more than one batch of
work (saturation — exactly when selection matters), slots are divided
among the tenants waiting in it by weighted largest-remainder quotas, so a
flooding tenant cannot push a light tenant's queries out of every batch.
Within a tenant, arrival order is preserved; leftover capacity goes to the
globally oldest queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = ["BatchPolicy", "PendingQuery", "Coalescer"]

PoolKey = Tuple[str, Tuple[Any, ...]]  # (graph, coalesce_key)


@dataclass(frozen=True)
class BatchPolicy:
    """Coalescing knobs: how big and how stale a batch may get."""

    max_batch: int = 32
    max_wait_us: float = 2_000.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_us < 0:
            raise ValueError(
                f"max_wait_us must be >= 0, got {self.max_wait_us}"
            )


@dataclass
class PendingQuery:
    """One admitted query waiting in a pool."""

    qid: int
    tenant: str
    query: Any
    arrival_us: float
    deadline_us: Optional[float] = None


@dataclass
class _Pool:
    key: PoolKey
    queries: List[PendingQuery] = field(default_factory=list)
    # Container version of the graph the pooled queries were admitted
    # against; a mismatch at dispatch means the graph mutated mid-pool and
    # the batch must not run (the answers would be for a different graph).
    version: int = 0

    @property
    def oldest_us(self) -> float:
        return self.queries[0].arrival_us

    def close_at(self, max_wait_us: float) -> float:
        return self.oldest_us + max_wait_us


class Coalescer:
    """Per-key pending pools with size/age close triggers."""

    def __init__(self, policy: Optional[BatchPolicy] = None) -> None:
        self.policy = policy or BatchPolicy()
        self._pools: Dict[PoolKey, _Pool] = {}

    def __len__(self) -> int:
        return sum(len(p.queries) for p in self._pools.values())

    def waiting(self, tenant: Optional[str] = None) -> int:
        if tenant is None:
            return len(self)
        return sum(
            1
            for p in self._pools.values()
            for q in p.queries
            if q.tenant == tenant
        )

    def add(self, graph: str, pending: PendingQuery, version: int = 0) -> PoolKey:
        """Admit one query; returns its pool key.

        ``version`` is the graph's container version at admission; the pool
        is stamped with the first arrival's version (callers evict stale
        pools via :meth:`evict_stale` before adding at a newer version).
        """
        key = (graph, pending.query.coalesce_key())
        pool = self._pools.get(key)
        if pool is None:
            pool = self._pools[key] = _Pool(key, version=version)
        pool.queries.append(pending)
        return key

    def pool_version(self, key: PoolKey) -> Optional[int]:
        pool = self._pools.get(key)
        return None if pool is None else pool.version

    def evict_stale(self, graph: str, version: int) -> List[PendingQuery]:
        """Remove every pool for ``graph`` stamped with a different version.

        Returns the dropped queries so the caller can account them; they
        were admitted against a graph that no longer exists and must not be
        answered from the mutated one.
        """
        dropped: List[PendingQuery] = []
        for key in [k for k in self._pools if k[0] == graph]:
            pool = self._pools[key]
            if pool.version != version:
                dropped.extend(pool.queries)
                del self._pools[key]
        return dropped

    def full(self, key: PoolKey) -> bool:
        pool = self._pools.get(key)
        return pool is not None and len(pool.queries) >= self.policy.max_batch

    def next_close_us(self) -> Optional[float]:
        """Earliest age-trigger deadline across pools (None when empty)."""
        if not self._pools:
            return None
        return min(
            p.close_at(self.policy.max_wait_us) for p in self._pools.values()
        )

    def due_keys(self, now_us: float) -> List[PoolKey]:
        """Pools whose age trigger has fired by ``now_us``, oldest first."""
        due = [
            p
            for p in self._pools.values()
            if p.close_at(self.policy.max_wait_us) <= now_us
        ]
        due.sort(key=lambda p: (p.oldest_us, p.key))
        return [p.key for p in due]

    def pending_keys(self) -> List[PoolKey]:
        pools = sorted(self._pools.values(), key=lambda p: (p.oldest_us, p.key))
        return [p.key for p in pools]

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------

    def drain(
        self, key: PoolKey, weights: Mapping[str, float]
    ) -> List[PendingQuery]:
        """Remove and return up to ``max_batch`` queries from ``key``.

        When the pool overflows one batch, slots are split across waiting
        tenants by weighted largest-remainder quotas (see module doc);
        otherwise the whole pool drains in arrival order.
        """
        pool = self._pools.get(key)
        if pool is None:
            return []
        take = self.policy.max_batch
        if len(pool.queries) <= take:
            batch = pool.queries
            del self._pools[key]
            return batch
        batch = self._fair_select(pool.queries, take, weights)
        chosen = {id(q) for q in batch}
        pool.queries = [q for q in pool.queries if id(q) not in chosen]
        if not pool.queries:
            del self._pools[key]
        return batch

    @staticmethod
    def _fair_select(
        queries: List[PendingQuery], take: int, weights: Mapping[str, float]
    ) -> List[PendingQuery]:
        by_tenant: Dict[str, List[PendingQuery]] = {}
        for q in queries:
            by_tenant.setdefault(q.tenant, []).append(q)
        tenants = sorted(by_tenant)
        total_w = sum(max(weights.get(t, 1.0), 0.0) for t in tenants) or 1.0
        # Integer quotas by largest remainder, capped by each queue length.
        shares = {
            t: take * max(weights.get(t, 1.0), 0.0) / total_w for t in tenants
        }
        quota = {t: min(int(shares[t]), len(by_tenant[t])) for t in tenants}
        leftover = take - sum(quota.values())
        by_remainder = sorted(
            tenants,
            key=lambda t: (-(shares[t] - int(shares[t])), by_tenant[t][0].arrival_us),
        )
        while leftover > 0:
            progressed = False
            for t in by_remainder:
                if leftover == 0:
                    break
                if quota[t] < len(by_tenant[t]):
                    quota[t] += 1
                    leftover -= 1
                    progressed = True
            if not progressed:
                break
        batch = [q for t in tenants for q in by_tenant[t][: quota[t]]]
        batch.sort(key=lambda q: (q.arrival_us, q.qid))
        return batch
