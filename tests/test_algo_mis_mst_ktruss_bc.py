"""MIS, MST, k-truss, betweenness centrality, metrics."""

import networkx as nx
import numpy as np
import pytest

import repro as gb
from repro.algorithms import (
    average_degree,
    betweenness_centrality,
    edge_count,
    graph_density,
    graph_diameter,
    in_degrees,
    is_symmetric,
    ktruss,
    mis,
    mst_prim,
    out_degrees,
    verify_mis,
    vertex_eccentricity,
)


def to_nx_weighted(g):
    G = nx.Graph()
    G.add_nodes_from(range(g.nrows))
    r, c, v = g.to_lists()
    for i, j, w in zip(r, c, v):
        G.add_edge(i, j, weight=w)
    return G


class TestMis:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_valid_on_random_graphs(self, backend, seed):
        g = gb.generators.erdos_renyi_gnp(40, 0.1, seed=seed)
        s = mis(g, seed=seed)
        assert verify_mis(g, s)

    def test_empty_graph_takes_all(self, backend):
        g = gb.Matrix.sparse(gb.FP64, 5, 5)
        s = mis(g, seed=0)
        assert s.nvals == 5

    def test_complete_graph_takes_one(self, backend):
        g = gb.generators.complete_graph(6)
        s = mis(g, seed=0)
        assert s.nvals == 1 and verify_mis(g, s)

    def test_star_graph(self, backend):
        g = gb.generators.star_graph(8)
        s = mis(g, seed=3)
        assert verify_mis(g, s)
        # Either the center alone or all the leaves.
        assert s.nvals in (1, 7)

    def test_deterministic_for_seed(self, backend):
        g = gb.generators.erdos_renyi_gnp(30, 0.15, seed=9)
        assert mis(g, seed=5) == mis(g, seed=5)

    def test_verify_rejects_dependent_set(self, backend):
        g = gb.generators.complete_graph(3)
        bad = gb.Vector.from_lists([0, 1], [True, True], 3, gb.BOOL)
        assert not verify_mis(g, bad)

    def test_verify_rejects_non_maximal(self, backend):
        g = gb.generators.path_graph(5)
        bad = gb.Vector.from_lists([0], [True], 5, gb.BOOL)
        assert not verify_mis(g, bad)


class TestMst:
    def test_path_graph_weight(self, backend):
        g = gb.generators.path_graph(5)  # unit weights
        total, parents = mst_prim(g, 0)
        assert total == 4.0
        assert parents.nvals == 5

    def test_matches_networkx(self, backend):
        g = gb.generators.erdos_renyi_gnp(25, 0.25, seed=11, weighted=True)
        G = to_nx_weighted(g)
        comp = nx.node_connected_component(G, 0)
        expected = nx.minimum_spanning_tree(G.subgraph(comp)).size(weight="weight")
        total, parents = mst_prim(g, 0)
        assert total == pytest.approx(expected)
        assert parents.nvals == len(comp)

    def test_parents_form_tree_edges(self, backend):
        g = gb.generators.erdos_renyi_gnp(20, 0.3, seed=12, weighted=True)
        total, parents = mst_prim(g, 0)
        for v, p in zip(*parents.to_lists()):
            if v == 0:
                assert p == 0
            else:
                assert g.get(int(p), int(v)) is not None

    def test_disconnected_covers_only_component(self, backend):
        g = gb.Matrix.from_lists(
            [0, 1, 2, 3], [1, 0, 3, 2], [1.0] * 4, 4, 4
        )
        total, parents = mst_prim(g, 0)
        assert total == 1.0
        assert parents.nvals == 2


class TestKtruss:
    def test_k3_is_triangle_edges(self, backend):
        # Triangle + pendant edge: 3-truss drops the pendant.
        g = gb.Matrix.from_lists(
            [0, 1, 0, 2, 1, 2, 2, 3],
            [1, 0, 2, 0, 2, 1, 3, 2],
            [1.0] * 8,
            4,
            4,
        )
        t = ktruss(g, 3)
        assert t.nvals == 6  # both directions of the 3 triangle edges
        assert t.get(2, 3) is None

    def test_k4_of_k4_graph(self, backend):
        g = gb.generators.complete_graph(4)
        t = ktruss(g, 4)
        assert t.nvals == 12  # K4 is a 4-truss

    def test_too_large_k_empties(self, backend):
        g = gb.generators.complete_graph(4)
        assert ktruss(g, 5).nvals == 0

    def test_k_validation(self, backend):
        with pytest.raises(gb.InvalidValueError):
            ktruss(gb.generators.complete_graph(3), 2)

    def test_matches_networkx(self, backend):
        g = gb.generators.erdos_renyi_gnp(25, 0.3, seed=13)
        G = nx.Graph()
        G.add_nodes_from(range(25))
        r, c, _ = g.to_lists()
        G.add_edges_from(zip(r, c))
        expected = nx.k_truss(G, 3)
        t = ktruss(g, 3)
        assert t.nvals == 2 * expected.number_of_edges()


class TestBetweenness:
    def test_path_graph(self, backend):
        g = gb.generators.path_graph(5)
        bc = betweenness_centrality(g)
        expected = nx.betweenness_centrality(
            nx.DiGraph([(i, i + 1) for i in range(4)] + [(i + 1, i) for i in range(4)]),
            normalized=False,
        )
        for v in range(5):
            assert bc.get(v, 0.0) == pytest.approx(expected[v])

    def test_matches_networkx_random(self, backend):
        g = gb.generators.erdos_renyi_gnp(25, 0.12, seed=14)
        G = nx.DiGraph()
        G.add_nodes_from(range(25))
        r, c, _ = g.to_lists()
        G.add_edges_from(zip(r, c))
        expected = nx.betweenness_centrality(G, normalized=False)
        bc = betweenness_centrality(g)
        for v in range(25):
            assert bc.get(v, 0.0) == pytest.approx(expected[v], abs=1e-9)

    def test_sampled_sources_subset(self, backend):
        g = gb.generators.erdos_renyi_gnp(20, 0.2, seed=15)
        bc = betweenness_centrality(g, sources=[0, 1, 2])
        assert bc.size == 20  # runs without error, partial sums

    def test_normalize(self, backend):
        g = gb.generators.complete_graph(5)
        bc = betweenness_centrality(g, normalize=True)
        # No intermediate vertices on K5 shortest paths.
        assert bc.nvals == 0 or max(bc.to_dense()) == 0.0

    def test_weights_ignored(self, backend):
        g1 = gb.generators.erdos_renyi_gnp(15, 0.25, seed=16, weighted=True)
        pattern = gb.Matrix.sparse(gb.FP64, 15, 15)
        from repro.core import operations as ops
        from repro.core.operators import ONE

        ops.apply(pattern, g1, ONE)
        b1 = betweenness_centrality(g1)
        b2 = betweenness_centrality(pattern)
        np.testing.assert_allclose(b1.to_dense(), b2.to_dense())


class TestMetrics:
    def test_degrees(self, backend, small_graph):
        outd = out_degrees(small_graph)
        ind = in_degrees(small_graph)
        assert outd.get(0) == 2 and outd.get(4) == 2
        assert ind.get(5) == 2 and ind.get(0, 0) == 0

    def test_density_and_counts(self, backend, small_graph):
        assert edge_count(small_graph) == 8
        assert graph_density(small_graph) == pytest.approx(8 / 30)
        assert average_degree(small_graph) == pytest.approx(8 / 6)

    def test_symmetry(self, backend, small_graph, undirected_graph):
        assert not is_symmetric(small_graph)
        assert is_symmetric(undirected_graph)

    def test_eccentricity(self, backend):
        g = gb.generators.path_graph(6)
        assert vertex_eccentricity(g, 0) == 5
        assert vertex_eccentricity(g, 3) == 3

    def test_diameter(self, backend):
        assert graph_diameter(gb.generators.path_graph(7)) == 6
        assert graph_diameter(gb.generators.cycle_graph(8)) == 4

    def test_diameter_sampled_is_lower_bound(self, backend):
        g = gb.generators.path_graph(10)
        assert graph_diameter(g, sample=3, seed=1) <= 9

    def test_diameter_empty(self, backend):
        assert graph_diameter(gb.Matrix.sparse(gb.FP64, 0, 0)) == 0
