"""Simulated CUDA substrate.

This package stands in for the GPU hardware the paper evaluated on (see
DESIGN.md "Hardware substitution"): a device model with allocator, SIMT
divergence/coalescing estimators, an analytic roofline cost model, kernel
launch machinery, streams/events, and a profiler.  Kernel *semantics* run
for real on the host; only *time* is modeled.
"""

from .costmodel import CostModel, KernelWork
from .device import (
    Device,
    DeviceProperties,
    K40,
    P100,
    V100,
    get_device,
    reset_device,
    set_device,
)
from .kernel import Kernel, LaunchConfig, charge_transfer, launch
from .memory import DeviceAllocator, DeviceBuffer, MemoryStats
from .occupancy import (
    K40_LIMITS,
    KernelResources,
    OccupancyResult,
    SMLimits,
    occupancy,
)
from .profiler import LaunchRecord, Profiler
from .simt import (
    COALESCING,
    blocks_for,
    divergence_thread_per_row,
    divergence_warp_per_row,
    warps_for,
)
from .stream import Event, Stream

__all__ = [
    "CostModel",
    "KernelWork",
    "Device",
    "DeviceProperties",
    "K40",
    "P100",
    "V100",
    "get_device",
    "reset_device",
    "set_device",
    "Kernel",
    "LaunchConfig",
    "charge_transfer",
    "launch",
    "DeviceAllocator",
    "DeviceBuffer",
    "MemoryStats",
    "K40_LIMITS",
    "KernelResources",
    "OccupancyResult",
    "SMLimits",
    "occupancy",
    "LaunchRecord",
    "Profiler",
    "COALESCING",
    "blocks_for",
    "divergence_thread_per_row",
    "divergence_warp_per_row",
    "warps_for",
    "Event",
    "Stream",
]
