"""Edge-list (TSV/CSV/space-separated) I/O.

The format real-world graph dumps come in: one ``src dst [weight]`` line per
edge, ``#``-prefixed comments, configurable delimiter.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, TextIO, Union

import numpy as np

from ..core.matrix import Matrix
from ..core.operators import FIRST
from ..exceptions import InvalidValueError
from ..types import FP64, GrBType

__all__ = ["read_edgelist", "write_edgelist"]


def _open(path_or_file: Union[str, Path, TextIO], mode: str):
    if isinstance(path_or_file, (str, Path)):
        return open(path_or_file, mode), True
    return path_or_file, False


def read_edgelist(
    path_or_file: Union[str, Path, TextIO],
    n: Optional[int] = None,
    typ: GrBType = FP64,
    delimiter: Optional[str] = None,
    directed: bool = True,
    default_weight: float = 1.0,
    comment: str = "#",
) -> Matrix:
    """Parse ``src dst [weight]`` lines into an adjacency Matrix.

    ``n`` fixes the vertex count; when omitted it is ``max(id) + 1``.
    ``delimiter=None`` splits on any whitespace.  Undirected input is
    symmetrised.
    """
    f, should_close = _open(path_or_file, "r")
    try:
        srcs, dsts, ws = [], [], []
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split(delimiter)
            if len(parts) < 2:
                raise InvalidValueError(f"line {lineno}: need at least src dst")
            srcs.append(int(parts[0]))
            dsts.append(int(parts[1]))
            ws.append(float(parts[2]) if len(parts) > 2 else default_weight)
        src = np.asarray(srcs, dtype=np.int64)
        dst = np.asarray(dsts, dtype=np.int64)
        w = np.asarray(ws, dtype=typ.dtype)
        if n is None:
            n = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1)
        if not directed:
            src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
            w = np.concatenate([w, w])
        return Matrix.from_lists(src, dst, w, n, n, typ, dup=FIRST)
    finally:
        if should_close:
            f.close()


def write_edgelist(
    m: Matrix,
    path_or_file: Union[str, Path, TextIO],
    delimiter: str = "\t",
    weights: bool = True,
) -> None:
    """Write one ``src<delim>dst[<delim>weight]`` line per stored entry."""
    f, should_close = _open(path_or_file, "w")
    try:
        coo = m.to_coo()
        for r, c, v in zip(coo.rows, coo.cols, coo.vals):
            if weights:
                f.write(f"{r}{delimiter}{c}{delimiter}{v}\n")
            else:
                f.write(f"{r}{delimiter}{c}\n")
    finally:
        if should_close:
            f.close()
