"""Barabási–Albert preferential-attachment graphs."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.matrix import Matrix
from ..exceptions import InvalidValueError
from ..types import FP64, GrBType
from .common import finalize_edges

__all__ = ["barabasi_albert"]


def barabasi_albert(
    n: int,
    m: int,
    seed: Optional[int] = None,
    weighted: bool = False,
    typ: GrBType = FP64,
) -> Matrix:
    """Each arriving vertex attaches to ``m`` existing vertices, preferring
    high degree (implemented with the standard repeated-endpoints urn).
    """
    if m < 1 or n <= m:
        raise InvalidValueError(f"need 1 <= m < n, got m={m}, n={n}")
    rng = np.random.default_rng(seed)
    # The urn holds every edge endpoint seen so far; sampling uniformly from
    # it is sampling proportionally to degree.
    urn = list(range(m))  # seed clique-ish core: first m vertices
    src, dst = [], []
    for v in range(m, n):
        targets = set()
        while len(targets) < m:
            pick = urn[rng.integers(0, len(urn))] if urn else int(rng.integers(0, v))
            targets.add(int(pick))
        for t in targets:
            src.append(v)
            dst.append(t)
            urn.append(v)
            urn.append(t)
    return finalize_edges(
        n,
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        weighted=weighted,
        typ=typ,
        seed=seed,
    )
