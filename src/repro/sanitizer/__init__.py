"""gbsan — sanitizer suite for the simulated GPU stack.

Runtime checkers (race / residency / pool-lifetime / graph-replay, see
:mod:`repro.sanitizer.runtime`) plus the static kernel-contract lint
(:mod:`repro.sanitizer.lint`).

Off by default with zero overhead.  Enable programmatically::

    import repro.sanitizer as gbsan
    gbsan.enable()
    ... run GraphBLAS ops ...
    for finding in gbsan.findings():
        print(finding)

or scoped::

    with gbsan.sanitized() as san:
        ...
    assert not san.findings

or for a whole process via the environment: ``GBSAN=1`` (collect) or
``GBSAN=strict`` (raise :class:`~repro.exceptions.SanitizerError` on the
first hazard).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, List, Optional

from ..exceptions import SanitizerError
from .access import Access
from .runtime import Finding, Sanitizer, activate, deactivate
from . import runtime as _runtime

__all__ = [
    "Access",
    "Finding",
    "Sanitizer",
    "SanitizerError",
    "enable",
    "disable",
    "active",
    "enabled",
    "findings",
    "sanitized",
]


def enable(strict: bool = False) -> Sanitizer:
    """Turn the sanitizer on for the whole process; returns the instance."""
    return activate(strict=strict)


def disable() -> Optional[Sanitizer]:
    """Turn the sanitizer off; returns the instance (findings intact)."""
    return deactivate()


def active() -> Optional[Sanitizer]:
    """The live :class:`Sanitizer`, or ``None`` when disabled."""
    return _runtime.ACTIVE


def enabled() -> bool:
    return _runtime.ACTIVE is not None


def findings() -> List[Finding]:
    """Findings collected so far (empty when disabled)."""
    san = _runtime.ACTIVE
    return list(san.findings) if san is not None else []


@contextmanager
def sanitized(strict: bool = False) -> Iterator[Sanitizer]:
    """Run a block under a fresh sanitizer scope.

    If a sanitizer is already active it is reused (nested scopes share the
    instance and it stays active on exit); otherwise a fresh one is
    installed and removed when the block exits.
    """
    prior = _runtime.ACTIVE
    prior_strict = prior.strict if prior is not None else False
    san = activate(strict=strict)
    try:
        yield san
    finally:
        if prior is None:
            deactivate()
        else:
            # Shared ambient instance (e.g. GBSAN=1): the scope must not
            # leave its strictness behind.
            san.strict = prior_strict


def _from_env() -> None:
    value = os.environ.get("GBSAN", "").strip().lower()
    if value in ("", "0", "false", "off", "no"):
        return
    enable(strict=value == "strict")


_from_env()
