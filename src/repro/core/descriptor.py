"""GraphBLAS descriptors.

A descriptor modifies how an operation treats its arguments:

- ``transpose_a`` / ``transpose_b`` — operate on the transpose of an input
  (``GrB_INP0``/``GrB_INP1`` = ``GrB_TRAN``);
- ``complement_mask`` — use the complement of the mask (``GrB_COMP``);
- ``structural_mask`` — a mask entry counts if *present*, regardless of its
  value (``GrB_STRUCTURE``);
- ``replace`` — clear the output before writing the masked result
  (``GrB_REPLACE``).

Descriptors are immutable; convenience constants cover the common cases and
``Descriptor.with_()`` derives variants.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dc_replace

__all__ = [
    "Descriptor",
    "DEFAULT",
    "REPLACE",
    "TRANSPOSE_A",
    "TRANSPOSE_B",
    "TRANSPOSE_AB",
    "COMP_MASK",
    "STRUCTURE_MASK",
    "COMP_STRUCTURE_MASK",
    "REPLACE_COMP_MASK",
    "REPLACE_STRUCTURE_MASK",
]


@dataclass(frozen=True)
class Descriptor:
    """Immutable bundle of operation-modifier flags."""

    transpose_a: bool = False
    transpose_b: bool = False
    complement_mask: bool = False
    structural_mask: bool = False
    replace: bool = False

    def with_(self, **kwargs) -> "Descriptor":
        """Return a copy with the given flags overridden."""
        return _dc_replace(self, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flags = [
            name
            for name, val in (
                ("tranA", self.transpose_a),
                ("tranB", self.transpose_b),
                ("comp", self.complement_mask),
                ("structure", self.structural_mask),
                ("replace", self.replace),
            )
            if val
        ]
        return f"Descriptor({'|'.join(flags) or 'default'})"


DEFAULT = Descriptor()
REPLACE = Descriptor(replace=True)
TRANSPOSE_A = Descriptor(transpose_a=True)
TRANSPOSE_B = Descriptor(transpose_b=True)
TRANSPOSE_AB = Descriptor(transpose_a=True, transpose_b=True)
COMP_MASK = Descriptor(complement_mask=True)
STRUCTURE_MASK = Descriptor(structural_mask=True)
COMP_STRUCTURE_MASK = Descriptor(complement_mask=True, structural_mask=True)
REPLACE_COMP_MASK = Descriptor(replace=True, complement_mask=True)
REPLACE_STRUCTURE_MASK = Descriptor(replace=True, structural_mask=True)
