"""Figure 2 — BFS runtime vs graph scale, per backend.

Reconstructed experiment: full level-BFS from vertex 0 on R-MAT graphs of
increasing scale.  Shape claims: the sequential reference is slowest and
grows fastest; cpu and gpu-sim stay orders of magnitude below it; the
gpu-sim curve is dominated by per-iteration kernel launches at small scales
(the "small graphs don't pay off on GPUs" observation every GPU graph paper
makes).
"""

from __future__ import annotations

import pytest

import repro as gb
from repro.bench.harness import time_operation
from repro.bench.tables import format_series
from conftest import bench_backend, save_json, save_table, sim_metrics

SCALES = [6, 8, 10, 12]
REFERENCE_MAX_SCALE = 10
BACKENDS = ["reference", "cpu", "cuda_sim"]


def make_case(scale):
    g = gb.generators.rmat(scale=scale, edge_factor=8, seed=21)
    return lambda: gb.algorithms.bfs_levels(g, 0)


_CASES = {s: make_case(s) for s in SCALES}


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("scale", SCALES)
def test_fig2_bfs(benchmark, backend, scale):
    if backend == "reference" and scale > REFERENCE_MAX_SCALE:
        pytest.skip("sequential baseline capped at scale 10")
    bench_backend(benchmark, backend, _CASES[scale], rounds=2)


def test_fig2_render(benchmark):
    def build():
        series = {b: [] for b in BACKENDS}
        for s in SCALES:
            for b in BACKENDS:
                if b == "reference" and s > REFERENCE_MAX_SCALE:
                    series[b].append(float("nan"))
                    continue
                series[b].append(
                    time_operation(b, _CASES[s], repeat=1 if b == "reference" else 2).seconds
                )
        fig = format_series(
            "Figure 2 — BFS runtime vs R-MAT scale (seconds)",
            "scale",
            SCALES,
            series,
        )
        save_table("fig2_bfs_scaling", fig)
        # Shape: reference slowest at every measured scale.
        for i, s in enumerate(SCALES):
            if s <= REFERENCE_MAX_SCALE and s >= 8:
                assert series["reference"][i] > series["cpu"][i]
                assert series["reference"][i] > series["cuda_sim"][i]
        # Shape: the reference/gpu gap widens with scale.
        gaps = [
            series["reference"][i] / series["cuda_sim"][i]
            for i, s in enumerate(SCALES)
            if s <= REFERENCE_MAX_SCALE
        ]
        assert gaps[-1] > gaps[0]
        # Machine-readable record with the deterministic simulator counters
        # per scale — CI's regression gate diffs these against the committed
        # baseline (see check_bench_regressions.py).
        record = {
            "figure": "fig2_bfs_scaling",
            "scales": SCALES,
            "seconds": series,
            "cuda_sim_metrics": {
                str(s): sim_metrics(_CASES[s]) for s in SCALES
            },
        }
        save_json("fig2", record)
        return fig

    benchmark.pedantic(build, rounds=1, iterations=1)
