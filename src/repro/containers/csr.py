"""CSR (compressed sparse row) matrix container.

CSR is the canonical compute format, as in CUSP/GBTL-CUDA.  The container is
*canonical*: column indices within each row are strictly increasing and
duplicate-free, which every kernel relies on.  Construction from unsorted
data goes through :class:`~repro.containers.coo.COO`.

The arrays are plain NumPy so the CPU backend vectorizes over them directly
and the GPU simulator "uploads" them as device buffers without copies.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from ..exceptions import IndexOutOfBoundsError, InvalidObjectError, InvalidValueError
from ..types import GrBType, from_dtype
from .coo import COO

__all__ = ["CSRMatrix"]


class CSRMatrix:
    """Canonical CSR storage: ``indptr`` (n+1), ``indices``, ``values``.

    Invariants (checked by :meth:`validate`):

    - ``indptr`` is nondecreasing, ``indptr[0] == 0``,
      ``indptr[-1] == len(indices) == len(values)``;
    - column indices are strictly increasing within each row;
    - all column indices lie in ``[0, ncols)``.
    """

    __slots__ = ("nrows", "ncols", "indptr", "indices", "values", "type", "_version", "_aux")

    #: Process-wide count of counting-sort transpose *builds* (cache misses
    #: included, cache hits not).  Tests pin "at most one build per matrix
    #: version" against this counter.
    transpose_builds = 0

    def __init__(self, nrows, ncols, indptr, indices, values, typ: Optional[GrBType] = None):
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        values = np.asarray(values)
        if typ is not None:
            values = values.astype(typ.dtype, copy=False)
        self.values = np.ascontiguousarray(values)
        self.type = typ if typ is not None else from_dtype(self.values.dtype)
        self._version = 0
        self._aux: dict = {}

    # ------------------------------------------------------------------
    # Version stamp + auxiliary-structure cache
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic mutation counter; bumped whenever stored data changes."""
        return self._version

    def bump_version(self) -> int:
        """Invalidate every cached auxiliary structure after a mutation."""
        self._version += 1
        self._aux.clear()
        return self._version

    def _cached(self, key: str, build):
        from ..gpu import reuse

        if not reuse.aux_cache_enabled():
            return build()
        hit = self._aux.get(key)
        if hit is None:
            hit = build()
            self._aux[key] = hit
        return hit

    def install_arrays(
        self, indptr: np.ndarray, indices: np.ndarray, values: np.ndarray
    ) -> int:
        """Replace the stored arrays **in place** and bump the version.

        The container object survives (same ``id()``), so every consumer
        keyed on identity — device residency entries, multi_sim partition
        caches, serving-layer handles — sees the mutation through the
        version stamp rather than through a dangling reference.  This is
        the install path for streaming compaction (:mod:`repro.streaming`),
        where a delta overlay is merged into the base CSR without
        reregistering the graph anywhere.
        """
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        values = np.ascontiguousarray(np.asarray(values, dtype=self.type.dtype))
        if indptr.shape != (self.nrows + 1,):
            raise InvalidObjectError(
                f"indptr length {indptr.size} != nrows+1 ({self.nrows + 1})"
            )
        if indices.size != values.size:
            raise InvalidObjectError("indices and values lengths differ")
        self.indptr = indptr
        self.indices = indices
        self.values = values
        return self.bump_version()

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls, nrows: int, ncols: int, typ: GrBType) -> "CSRMatrix":
        """A matrix with no stored entries."""
        if nrows < 0 or ncols < 0:
            raise InvalidValueError(f"negative dimensions ({nrows}, {ncols})")
        return cls(
            nrows,
            ncols,
            np.zeros(nrows + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=typ.dtype),
            typ,
        )

    @classmethod
    def from_coo(cls, coo: COO) -> "CSRMatrix":
        """Build from *deduplicated, sorted* COO triplets."""
        indptr = np.zeros(coo.nrows + 1, dtype=np.int64)
        np.add.at(indptr, coo.rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(coo.nrows, coo.ncols, indptr, coo.cols.copy(), coo.vals.copy(), coo.type)

    @classmethod
    def from_dense(cls, dense: np.ndarray, typ: Optional[GrBType] = None) -> "CSRMatrix":
        """Build from a 2-D array; zeros become implicit (not stored)."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise InvalidValueError("from_dense requires a 2-D array")
        rows, cols = np.nonzero(dense)
        coo = COO(dense.shape[0], dense.shape[1], rows, cols, dense[rows, cols], typ)
        return cls.from_coo(coo)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.nrows, self.ncols)

    @property
    def nvals(self) -> int:
        return int(self.indices.size)

    @property
    def nbytes(self) -> int:
        """Storage footprint — what a device upload would move."""
        return self.indptr.nbytes + self.indices.nbytes + self.values.nbytes

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Views of row ``i``'s column indices and values."""
        if not 0 <= i < self.nrows:
            raise IndexOutOfBoundsError(f"row {i} outside [0, {self.nrows})")
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.values[lo:hi]

    def row_degrees(self) -> np.ndarray:
        """Number of stored entries in each row (cached; treat read-only)."""
        return self._cached("row_degrees", lambda: np.diff(self.indptr))

    def out_degrees(self) -> np.ndarray:
        """Alias of :meth:`row_degrees` — out-degrees of an adjacency matrix."""
        return self.row_degrees()

    def in_degrees(self) -> np.ndarray:
        """Entries per column (in-degrees); cached, no transpose needed."""
        return self._cached(
            "in_degrees",
            lambda: np.bincount(self.indices, minlength=self.ncols).astype(np.int64),
        )

    def row_nnz_max(self) -> int:
        """Largest row degree (kernel-shape heuristics); cached."""
        return self._cached(
            "row_nnz_max",
            lambda: int(self.row_degrees().max()) if self.nrows else 0,
        )

    def get(self, i: int, j: int):
        """The stored value at (i, j), or None if implicit."""
        if not 0 <= i < self.nrows:
            raise IndexOutOfBoundsError(f"row {i} outside [0, {self.nrows})")
        if not 0 <= j < self.ncols:
            raise IndexOutOfBoundsError(f"col {j} outside [0, {self.ncols})")
        lo, hi = self.indptr[i], self.indptr[i + 1]
        k = np.searchsorted(self.indices[lo:hi], j)
        if k < hi - lo and self.indices[lo + k] == j:
            return self.values[lo + k]
        return None

    def iter_triplets(self) -> Iterator[Tuple[int, int, object]]:
        """Yield (row, col, value) in row-major order (reference backend)."""
        for i in range(self.nrows):
            lo, hi = self.indptr[i], self.indptr[i + 1]
            for k in range(lo, hi):
                yield i, int(self.indices[k]), self.values[k]

    def to_coo(self) -> COO:
        rows = np.repeat(np.arange(self.nrows, dtype=np.int64), self.row_degrees())
        return COO(self.nrows, self.ncols, rows, self.indices.copy(), self.values.copy(), self.type)

    def to_dense(self, fill=0) -> np.ndarray:
        """Dense 2-D array with ``fill`` at implicit positions."""
        out = np.full((self.nrows, self.ncols), fill, dtype=self.type.dtype)
        rows = np.repeat(np.arange(self.nrows, dtype=np.int64), self.row_degrees())
        out[rows, self.indices] = self.values
        return out

    def copy(self) -> "CSRMatrix":
        return CSRMatrix(
            self.nrows,
            self.ncols,
            self.indptr.copy(),
            self.indices.copy(),
            self.values.copy(),
            self.type,
        )

    def astype(self, typ: GrBType) -> "CSRMatrix":
        if typ is self.type:
            return self
        return CSRMatrix(
            self.nrows,
            self.ncols,
            self.indptr,
            self.indices,
            self.values.astype(typ.dtype),
            typ,
        )

    # ------------------------------------------------------------------
    # Transforms
    # ------------------------------------------------------------------

    def cached_transpose(self) -> "CSRMatrix":
        """Memoised :meth:`transpose`, invalidated by :meth:`bump_version`.

        Pull-mode SpMV, CSC views, and default vxm routing all need the
        transpose; caching it here means one counting sort per matrix
        *version* instead of one per call.
        """
        return self._cached("tcsr", self.transpose)

    def transpose(self) -> "CSRMatrix":
        """CSR of the transpose (a stable counting-sort by column)."""
        CSRMatrix.transpose_builds += 1
        nnz = self.nvals
        t_indptr = np.zeros(self.ncols + 1, dtype=np.int64)
        if nnz:
            np.add.at(t_indptr, self.indices + 1, 1)
        np.cumsum(t_indptr, out=t_indptr)
        t_indices = np.empty(nnz, dtype=np.int64)
        t_values = np.empty(nnz, dtype=self.values.dtype)
        if nnz:
            rows = np.repeat(np.arange(self.nrows, dtype=np.int64), self.row_degrees())
            # Stable sort by column preserves row order within each column,
            # so the transposed rows come out with sorted indices.
            order = np.argsort(self.indices, kind="stable")
            t_indices[:] = rows[order]
            t_values[:] = self.values[order]
        return CSRMatrix(self.ncols, self.nrows, t_indptr, t_indices, t_values, self.type)

    def validate(self) -> None:
        """Check all structural invariants; raise InvalidObjectError if broken."""
        ip = self.indptr
        if ip.shape != (self.nrows + 1,):
            raise InvalidObjectError("indptr has wrong length")
        if ip.size and (ip[0] != 0 or ip[-1] != self.indices.size):
            raise InvalidObjectError("indptr endpoints inconsistent with indices")
        if np.any(np.diff(ip) < 0):
            raise InvalidObjectError("indptr is not nondecreasing")
        if self.indices.size != self.values.size:
            raise InvalidObjectError("indices and values lengths differ")
        if self.indices.size:
            if self.indices.min() < 0 or self.indices.max() >= self.ncols:
                raise InvalidObjectError("column index out of range")
            # Strictly increasing within each row.
            d = np.diff(self.indices)
            # Positions where a new row begins are not within-row gaps.
            row_starts = ip[1:-1]
            row_starts = row_starts[(row_starts > 0) & (row_starts < self.indices.size)]
            interior = np.ones(self.indices.size - 1, dtype=bool)
            interior[row_starts - 1] = False
            if np.any(d[interior] <= 0):
                raise InvalidObjectError("column indices not strictly increasing in a row")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRMatrix({self.nrows}x{self.ncols}, nvals={self.nvals}, {self.type.name})"
