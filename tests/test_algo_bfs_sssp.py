"""BFS and SSSP: hand-checked cases, networkx cross-validation, edge cases."""

import networkx as nx
import numpy as np
import pytest

import repro as gb
from repro.algorithms import bfs_levels, bfs_parents, sssp, sssp_bellman_ford
from repro.algorithms.sssp import NegativeCycleError


def to_nx(g, directed=True, weighted=True):
    G = nx.DiGraph() if directed else nx.Graph()
    G.add_nodes_from(range(g.nrows))
    r, c, v = g.to_lists()
    for i, j, w in zip(r, c, v):
        G.add_edge(i, j, weight=w if weighted else 1.0)
    return G


class TestBfsLevels:
    def test_small_graph(self, small_graph, backend):
        levels = bfs_levels(small_graph, 0)
        assert levels.get(0) == 0
        assert levels.get(1) == 1 and levels.get(2) == 1
        assert levels.get(3) == 2 and levels.get(4) == 2
        assert levels.get(5) == 3

    def test_unreachable_has_no_entry(self, backend):
        g = gb.Matrix.from_lists([0], [1], [1.0], 4, 4)
        levels = bfs_levels(g, 0)
        assert levels.nvals == 2
        assert 3 not in levels

    def test_isolated_source(self, backend):
        g = gb.Matrix.sparse(gb.FP64, 3, 3)
        levels = bfs_levels(g, 1)
        assert levels.to_lists() == ([1], [0])

    def test_source_out_of_range(self, backend):
        g = gb.Matrix.sparse(gb.FP64, 3, 3)
        with pytest.raises(gb.IndexOutOfBoundsError):
            bfs_levels(g, 3)

    def test_max_depth_truncates(self, backend):
        g = gb.generators.path_graph(10)
        levels = bfs_levels(g, 0, max_depth=3)
        assert levels.nvals == 4  # levels 0..3

    @pytest.mark.parametrize("direction", ["push", "pull", "auto"])
    def test_directions_equivalent(self, backend, direction):
        g = gb.generators.rmat(scale=6, edge_factor=4, seed=2)
        base = bfs_levels(g, 0, direction="auto")
        assert bfs_levels(g, 0, direction=direction) == base

    def test_matches_networkx(self, backend):
        g = gb.generators.erdos_renyi_gnp(50, 0.08, seed=4)
        G = to_nx(g)
        expected = nx.single_source_shortest_path_length(G, 0)
        levels = bfs_levels(g, 0)
        assert levels.nvals == len(expected)
        for v, d in expected.items():
            assert levels.get(v) == d

    def test_cycle(self, backend):
        g = gb.generators.cycle_graph(6)
        levels = bfs_levels(g, 0)
        assert levels.get(3) == 3  # opposite point of the ring
        assert levels.get(5) == 1  # wraps the other way


class TestBfsParents:
    def test_source_is_own_parent(self, backend, small_graph):
        parents = bfs_parents(small_graph, 0)
        assert parents.get(0) == 0

    def test_parent_edges_exist_and_levels_consistent(self, backend, small_graph):
        parents = bfs_parents(small_graph, 0)
        levels = bfs_levels(small_graph, 0)
        for v, p in zip(*parents.to_lists()):
            if v == 0:
                continue
            assert small_graph.get(int(p), int(v)) is not None
            assert levels.get(int(v)) == levels.get(int(p)) + 1

    def test_deterministic_min_parent(self, backend):
        # Both 0 and 1 reach 2; the MIN monoid must pick parent 0.
        g = gb.Matrix.from_lists([0, 0, 1], [1, 2, 2], [1.0] * 3, 3, 3)
        parents = bfs_parents(g, 0)
        assert parents.get(2) == 0

    def test_covers_reachable_set(self, backend):
        g = gb.generators.erdos_renyi_gnp(40, 0.1, seed=6)
        assert bfs_parents(g, 0).nvals == bfs_levels(g, 0).nvals


class TestSssp:
    def test_small_graph_distances(self, backend, small_graph):
        d = sssp(small_graph, 0)
        assert d.get(0) == 0.0
        assert d.get(1) == 1.0
        assert d.get(2) == 3.0  # 0->1->2 beats 0->2
        assert d.get(3) == 8.0
        assert d.get(4) == 6.0
        assert d.get(5) == 9.0

    def test_bellman_ford_agrees(self, backend, small_graph):
        assert sssp(small_graph, 0) == sssp_bellman_ford(small_graph, 0)

    def test_matches_networkx_dijkstra(self, backend):
        g = gb.generators.erdos_renyi_gnp(40, 0.12, seed=8, weighted=True)
        G = to_nx(g)
        expected = nx.single_source_dijkstra_path_length(G, 0)
        d = sssp(g, 0)
        assert d.nvals == len(expected)
        for v, dist in expected.items():
            assert d.get(v) == pytest.approx(dist)

    def test_unreachable_no_entry(self, backend):
        g = gb.Matrix.from_lists([0], [1], [2.0], 3, 3)
        d = sssp(g, 0)
        assert 2 not in d and d.get(1) == 2.0

    def test_negative_edges_ok_bellman_ford(self, backend):
        g = gb.Matrix.from_lists([0, 1], [1, 2], [5.0, -2.0], 3, 3)
        d = sssp_bellman_ford(g, 0)
        assert d.get(2) == 3.0

    def test_negative_cycle_detected(self, backend):
        g = gb.Matrix.from_lists([0, 1, 2], [1, 2, 1], [1.0, -3.0, 1.0], 3, 3)
        with pytest.raises(NegativeCycleError):
            sssp_bellman_ford(g, 0)

    def test_source_out_of_range(self, backend):
        with pytest.raises(gb.IndexOutOfBoundsError):
            sssp(gb.Matrix.sparse(gb.FP64, 2, 2), 5)

    def test_grid_distances(self, backend):
        g = gb.generators.grid_2d(4, 4)  # unit weights
        d = sssp(g, 0)
        # Manhattan distance on unit-weight grid.
        assert d.get(15) == 6.0
        assert d.get(5) == 2.0
