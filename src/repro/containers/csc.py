"""CSC (compressed sparse column) view.

Pull-direction kernels (e.g. the pull variant of masked SpMV that Fig. 5's
ablation measures) need fast access to *columns* of A, i.e. rows of Aᵀ.
:class:`CSCMatrix` is a lightweight wrapper holding the CSR of the transpose
together with the logical (untransposed) shape, so kernels can iterate
columns of A without re-transposing per call.  Frontends cache one per
matrix and invalidate on mutation.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .csr import CSRMatrix

__all__ = ["CSCMatrix"]


class CSCMatrix:
    """Column-compressed view of a matrix, stored as CSR of its transpose."""

    __slots__ = ("_tcsr",)

    def __init__(self, tcsr: CSRMatrix):
        self._tcsr = tcsr

    @classmethod
    def from_csr(cls, csr: CSRMatrix) -> "CSCMatrix":
        # Version-stamped cache on the container: one counting sort per
        # matrix version no matter how many handles/views ask for columns.
        return cls(csr.cached_transpose())

    @property
    def tcsr(self) -> CSRMatrix:
        """The stored CSR of the transpose (rows of this are columns of A)."""
        return self._tcsr

    @property
    def nrows(self) -> int:
        return self._tcsr.ncols

    @property
    def ncols(self) -> int:
        return self._tcsr.nrows

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.nrows, self.ncols)

    @property
    def nvals(self) -> int:
        return self._tcsr.nvals

    @property
    def type(self):
        return self._tcsr.type

    @property
    def indptr(self) -> np.ndarray:
        """Column pointer array (length ncols+1)."""
        return self._tcsr.indptr

    @property
    def row_indices(self) -> np.ndarray:
        """Row indices, grouped by column."""
        return self._tcsr.indices

    @property
    def values(self) -> np.ndarray:
        return self._tcsr.values

    def col(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """Views of column ``j``'s row indices and values."""
        return self._tcsr.row(j)

    def col_degrees(self) -> np.ndarray:
        return self._tcsr.row_degrees()

    def to_csr(self) -> CSRMatrix:
        """Materialise back to CSR (transposes the stored transpose)."""
        return self._tcsr.cached_transpose()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSCMatrix({self.nrows}x{self.ncols}, nvals={self.nvals}, {self.type.name})"
