"""Whole-program loader: modules, imports, kernel declarations, call graph.

gbcheck analyses the ``src/repro`` tree as one program.  The loader parses
every module, records where each top-level function/method is defined,
resolves ``import``/``from ... import`` bindings (including relative
imports), and collects module-level ``NAME = Kernel(...)`` declarations so
the access rules can resolve a ``launch(NAME, ...)`` site back to the
kernel's declared access sets — across module boundaries.

Paths are rooted at ``repro/`` throughout (``backends/cuda_sim/kernels.py``),
matching the syntactic lint, so the same sources can be analysed from a
checkout or from a test's in-memory snippet via :meth:`Program.from_sources`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

__all__ = ["KernelDecl", "Module", "Program"]


@dataclass(frozen=True)
class KernelDecl:
    """One module-level ``VAR = Kernel("name", run=..., accesses=...)``."""

    var: str
    kernel_name: str
    line: int
    run: Optional[ast.expr]
    accesses: Optional[ast.expr]


@dataclass
class Module:
    """One parsed source module, addressed by dotted name and relpath."""

    name: str  # dotted module name, e.g. "repro.backends.cuda_sim.kernels"
    relpath: str  # repro/-rooted posix path
    source: str
    tree: ast.Module
    # qualname ("fn" or "Class.method") -> def node
    functions: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    # local binding -> fully-qualified dotted target ("module" or "module.attr")
    imports: Dict[str, str] = field(default_factory=dict)
    kernels: Dict[str, KernelDecl] = field(default_factory=dict)
    # module-level VAR = OTHER or VAR = OTHER.attr aliases (for
    # ``accesses=TRANSPOSE_COUNTSORT.accesses``-style indirection)
    aliases: Dict[str, str] = field(default_factory=dict)


def _relpath_to_modname(relpath: str) -> str:
    parts = relpath[: -len(".py")].split("/") if relpath.endswith(".py") else [relpath]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(["repro", *parts]) if parts else "repro"


def _collect_functions(tree: ast.Module) -> Dict[str, ast.FunctionDef]:
    out: Dict[str, ast.FunctionDef] = {}
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            out[node.name] = node
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, ast.FunctionDef):
                    out[f"{node.name}.{sub.name}"] = sub
    return out


def _collect_imports(tree: ast.Module, modname: str) -> Dict[str, str]:
    pkg_parts = modname.split(".")[:-1] if modname != "repro" else ["repro"]
    out: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = pkg_parts[: len(pkg_parts) - (node.level - 1)]
                base = ".".join(base_parts)
                target = f"{base}.{node.module}" if node.module else base
            else:
                target = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                out[alias.asname or alias.name] = f"{target}.{alias.name}"
    return out


def _collect_kernels_and_aliases(
    tree: ast.Module,
) -> Tuple[Dict[str, KernelDecl], Dict[str, str]]:
    kernels: Dict[str, KernelDecl] = {}
    aliases: Dict[str, str] = {}
    for node in tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = node.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "Kernel"
        ):
            kname = ""
            if value.args and isinstance(value.args[0], ast.Constant):
                if isinstance(value.args[0].value, str):
                    kname = value.args[0].value
            run: Optional[ast.expr] = None
            accesses: Optional[ast.expr] = None
            if len(value.args) >= 2:
                run = value.args[1]
            if len(value.args) >= 4:
                accesses = value.args[3]
            for kw in value.keywords:
                if kw.arg == "run":
                    run = kw.value
                elif kw.arg == "accesses":
                    accesses = kw.value
            kernels[target.id] = KernelDecl(
                var=target.id,
                kernel_name=kname,
                line=node.lineno,
                run=run,
                accesses=accesses,
            )
        elif isinstance(value, ast.Name):
            aliases[target.id] = value.id
    return kernels, aliases


class Program:
    """A set of parsed modules plus cross-module resolution helpers."""

    def __init__(self, modules: Dict[str, Module]) -> None:
        self.modules = modules
        self._by_relpath = {m.relpath: m for m in modules.values()}

    @classmethod
    def from_sources(cls, sources: Dict[str, str]) -> "Program":
        """Build a program from ``{relpath: source}`` (tests, corpora)."""
        modules: Dict[str, Module] = {}
        for relpath, source in sources.items():
            modname = _relpath_to_modname(relpath)
            tree = ast.parse(source, filename=relpath)
            kernels, aliases = _collect_kernels_and_aliases(tree)
            modules[modname] = Module(
                name=modname,
                relpath=relpath,
                source=source,
                tree=tree,
                functions=_collect_functions(tree),
                imports=_collect_imports(tree, modname),
                kernels=kernels,
                aliases=aliases,
            )
        return cls(modules)

    @classmethod
    def from_tree(cls, package_root: Path) -> "Program":
        """Parse every ``*.py`` under the ``repro/`` package root."""
        sources: Dict[str, str] = {}
        for path in sorted(package_root.rglob("*.py")):
            rel = path.relative_to(package_root).as_posix()
            if rel.startswith("analysis/"):
                # The analyzer does not analyse itself: its sources mention
                # payload attribute names and directive syntax as *data*.
                continue
            sources[rel] = path.read_text(encoding="utf-8")
        return cls.from_sources(sources)

    # -- resolution ------------------------------------------------------

    def module_for(self, relpath: str) -> Optional[Module]:
        return self._by_relpath.get(relpath)

    def resolve_function(
        self, module: Module, name: str
    ) -> Optional[Tuple[Module, str]]:
        """Resolve a bare callee name to ``(module, qualname)`` if static.

        Handles locally-defined functions and ``from x import f`` bindings.
        Method calls are resolved by the summariser (it knows ``self``).
        """
        if name in module.functions:
            return module, name
        target = module.imports.get(name)
        if target is None:
            return None
        mod_part, _, attr = target.rpartition(".")
        tmod = self.modules.get(mod_part)
        if tmod is not None and attr in tmod.functions:
            return tmod, attr
        tmod = self.modules.get(target)
        return None

    def resolve_kernel(
        self, module: Module, name: str
    ) -> Optional[Tuple[Module, KernelDecl]]:
        """Resolve a ``launch(NAME, ...)`` first argument to its declaration.

        Returns the *defining* module alongside the declaration so the
        declaration's ``accesses=`` expression can be classified in the
        namespace it was written in.
        """
        seen = 0
        while name in module.aliases and seen < 8:
            name = module.aliases[name]
            seen += 1
        if name in module.kernels:
            return module, module.kernels[name]
        target = module.imports.get(name)
        if target is None:
            return None
        mod_part, _, attr = target.rpartition(".")
        tmod = self.modules.get(mod_part)
        if tmod is not None and attr in tmod.kernels:
            return tmod, tmod.kernels[attr]
        return None

    def call_sites_of(self, relpath: str, qualname: str) -> List[Tuple[Module, str, int]]:
        """All in-program call sites of a function: ``(module, caller, line)``.

        Matches by callee *name* (last qualname segment) after checking the
        name genuinely refers to this definition in the calling module —
        either a local def or an import binding.  Method calls
        (``x.name(...)``) match by attribute name; that is deliberately
        object-insensitive but precise enough at this codebase's scale.
        """
        target_mod = self._by_relpath.get(relpath)
        if target_mod is None:
            return []
        short = qualname.rsplit(".", 1)[-1]
        is_method = "." in qualname
        sites: List[Tuple[Module, str, int]] = []
        for mod in self.modules.values():
            for caller, fn in mod.functions.items():
                if mod.relpath == relpath and caller == qualname:
                    continue
                for node in ast.walk(fn):
                    if not isinstance(node, ast.Call):
                        continue
                    f = node.func
                    if isinstance(f, ast.Name) and not is_method:
                        resolved = self.resolve_function(mod, f.id)
                        if resolved and resolved[0] is target_mod and resolved[1] == qualname:
                            sites.append((mod, caller, node.lineno))
                    elif isinstance(f, ast.Attribute) and f.attr == short and is_method:
                        sites.append((mod, caller, node.lineno))
        return sites
