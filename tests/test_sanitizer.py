"""gbsan: planted hazards must be caught; clean workloads must stay clean.

Each planted-hazard test constructs the minimal buggy interaction pattern
directly against the gpu layer (streams, residency, allocator, graphs) and
asserts both that the sanitizer reports the expected hazard class and that
the diagnostic message carries enough context to act on.  The zero-FP tests
run real algorithm workloads on every simulated backend and assert gbsan
stays silent (the full tier-1 suite enforces the same through the autouse
fixture in conftest.py whenever ``GBSAN=1``).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro as gb
from repro import sanitizer as sz
from repro.backends.dispatch import get_backend, use_backend
from repro.exceptions import SanitizerError
from repro.gpu.costmodel import KernelWork
from repro.gpu.device import Device
from repro.gpu.graph import KernelGraph
from repro.gpu.kernel import Kernel, LaunchConfig, launch
from repro.gpu.residency import ResidentSet
from repro.gpu.stream import Stream
from repro.gpu import reuse
from repro.sanitizer import runtime as _runtime
from repro.sanitizer.access import Access
from repro.sanitizer.lint import lint_source

pytestmark = pytest.mark.no_multi_sim


NOP = Kernel(
    "nop_test_kernel",
    lambda *a, **k: None,
    lambda *a, **k: KernelWork(flops=8.0, bytes_read=64.0, bytes_written=64.0),
)
CFG = LaunchConfig(1, 32)


def _vec(n=8, seed=0):
    rng = np.random.default_rng(seed)
    v = gb.Vector.from_lists(
        list(range(n)), [float(x) for x in rng.uniform(1, 9, n)], n, gb.FP64
    )
    return v.container


@pytest.fixture
def dev():
    return Device()


@pytest.fixture
def san():
    with sz.sanitized() as s:
        yield s


def kinds(s):
    return [f.kind for f in s.findings]


# ---------------------------------------------------------------------------
# Hazard 1: unordered cross-stream writes (race)
# ---------------------------------------------------------------------------


class TestRaceDetector:
    def test_unordered_cross_stream_writes_race(self, dev, san):
        c = _vec()
        s1, s2 = Stream(dev), Stream(dev)
        launch(NOP, CFG, device=dev, stream=s1, san_writes=(c,))
        launch(NOP, CFG, device=dev, stream=s2, san_writes=(c,))
        assert "race" in kinds(san)
        f = next(f for f in san.findings if f.kind == "race")
        # The report must name both racing sites and the buffer.
        assert "nop_test_kernel" in f.message or f.site == "nop_test_kernel"
        assert "unordered" in f.message
        assert "SparseVector" in f.buffer
        san.drain()

    def test_event_edge_orders_the_streams(self, dev, san):
        c = _vec()
        s1, s2 = Stream(dev), Stream(dev)
        launch(NOP, CFG, device=dev, stream=s1, san_writes=(c,))
        ev = s1.record_event()
        s2.wait_event(ev)
        launch(NOP, CFG, device=dev, stream=s2, san_writes=(c,))
        assert san.findings == []

    def test_write_after_unsynced_stream_read_races(self, dev, san):
        c = _vec()
        s1 = Stream(dev)
        launch(NOP, CFG, device=dev, stream=s1, san_reads=(c,))
        s2 = Stream(dev)
        launch(NOP, CFG, device=dev, stream=s2, san_writes=(c,))
        assert "race" in kinds(san)
        san.drain()

    def test_stream_synchronize_orders_against_host(self, dev, san):
        c = _vec()
        s1 = Stream(dev)
        launch(NOP, CFG, device=dev, stream=s1, san_writes=(c,))
        s1.synchronize()
        # Default-queue ops join every stream of the device: ordered.
        launch(NOP, CFG, device=dev, san_writes=(c,))
        assert san.findings == []


# ---------------------------------------------------------------------------
# Hazard 2: elided transfer (stale-read) and residency bookkeeping
# ---------------------------------------------------------------------------


class TestResidencySanitizer:
    def test_stale_read_after_host_mutation(self, dev, san):
        c = _vec()
        rs = ResidentSet(lambda: dev)
        rs.ensure(c)  # uploaded, clean
        c.bump_version()  # host mutates in place; device copy now stale
        launch(NOP, CFG, device=dev, san_reads=(c,))  # ensure() forgotten
        assert kinds(san) == ["stale-read"]
        f = san.findings[0]
        assert "elided" in f.message and "v" in f.buffer
        san.drain()

    def test_unresident_read_reported(self, dev, san):
        c = _vec()
        launch(NOP, CFG, device=dev, san_reads=(c,))
        assert kinds(san) == ["unresident-read"]
        assert "never uploaded" in san.findings[0].message
        san.drain()

    def test_missing_note_result_on_redundant_upload(self, dev, san):
        c = _vec()
        rs = ResidentSet(lambda: dev)
        rs.ensure(c)
        # Kernel produces c on-device, but the backend forgets note_result…
        launch(NOP, CFG, device=dev, san_writes=(c,))
        # …so when the frontend stamps the output, the host copy "looks
        # newer" and the next use re-uploads data the device already has.
        c.bump_version()
        rs.ensure(c)
        assert "missing-note-result" in kinds(san)
        f = next(f for f in san.findings if f.kind == "missing-note-result")
        assert "note_result" in f.message and "nop_test_kernel" in f.message
        san.drain()

    def test_note_result_quiets_the_report(self, dev, san):
        c = _vec()
        rs = ResidentSet(lambda: dev)
        rs.ensure(c)
        launch(NOP, CFG, device=dev, san_writes=(c,))
        rs.mark(c)  # note_result done right: device copy declared clean
        launch(NOP, CFG, device=dev, san_reads=(c,))
        assert san.findings == []


# ---------------------------------------------------------------------------
# Hazard 3: pool lifetime (use-after-free, alias, leak)
# ---------------------------------------------------------------------------


class TestPoolLifetime:
    def test_use_after_free_read(self, dev, san):
        c = _vec()
        rs = ResidentSet(lambda: dev)
        rs.ensure(c)
        # Free the device buffer behind the resident set's back.
        for cont, buf, _ in list(rs._entries.values()):
            buf.free()
        launch(NOP, CFG, device=dev, san_reads=(c,))
        assert "use-after-free" in kinds(san)
        assert "freed" in san.findings[0].message
        san.drain()

    def test_pool_alias_on_reissued_block(self, dev, san):
        c = _vec()
        rs = ResidentSet(lambda: dev)
        rs.ensure(c)
        entry = next(iter(rs._entries.values()))
        entry[1].free()  # block returns to the pool; rs still maps c onto it
        # Same-size allocation reissues the pooled block.
        dev.allocator.reserve(c.nbytes)
        assert "pool-alias" in kinds(san)
        assert "reissued" in san.findings[0].message
        san.drain()

    def test_leak_reported_at_device_reset(self, dev, san):
        buf = dev.allocator.reserve(4096)
        assert buf.alive
        dev.reset()
        assert "leak" in kinds(san)
        assert "no resident set references it" in san.findings[0].message
        san.drain()

    def test_resident_buffers_do_not_leak(self, dev, san):
        c = _vec()
        rs = ResidentSet(lambda: dev)
        rs.ensure(c)
        san.check_leaks(dev.allocator)
        assert san.findings == []


# ---------------------------------------------------------------------------
# Hazard 4: stale kernel-graph replay
# ---------------------------------------------------------------------------


class TestGraphReplayChecker:
    def test_replay_after_reupload_is_stale(self, dev, san):
        c = _vec()
        rs = ResidentSet(lambda: dev)
        rs.ensure(c)
        g = KernelGraph("iter", device=dev)
        with g.iteration():
            launch(NOP, CFG, device=dev, san_reads=(c,))  # capture
        c.bump_version()
        rs.ensure(c)  # host mutated: re-upload lands in a NEW device buffer
        with g.iteration():
            launch(NOP, CFG, device=dev, san_reads=(c,))  # replayed
        assert "stale-replay" in kinds(san)
        f = next(f for f in san.findings if f.kind == "stale-replay")
        assert "re-instantiate" in f.message and "iter" in f.site
        san.drain()

    def test_stable_buffers_replay_clean(self, dev, san):
        c = _vec()
        rs = ResidentSet(lambda: dev)
        rs.ensure(c)
        g = KernelGraph("iter", device=dev)
        for _ in range(3):
            with g.iteration():
                launch(NOP, CFG, device=dev, san_reads=(c,))
        assert san.findings == []
        assert g.stats.replays >= 1


# ---------------------------------------------------------------------------
# Modes: strict raising, enable/disable, reporting
# ---------------------------------------------------------------------------


class TestModes:
    def test_strict_mode_raises(self, dev):
        c = _vec()
        with pytest.raises(SanitizerError) as ei:
            with sz.sanitized(strict=True):
                launch(NOP, CFG, device=dev, san_reads=(c,))
        assert ei.value.finding.kind == "unresident-read"
        # Under GBSAN=1 the scope reused the ambient sanitizer, which still
        # holds the planted finding; drain it so the suite stays zero-FP.
        ambient = sz.active()
        if ambient is not None:
            ambient.drain()

    def test_disabled_records_nothing(self, dev):
        prior = sz.disable()  # force-disable even under an ambient GBSAN=1
        try:
            assert sz.active() is None
            c = _vec()
            launch(NOP, CFG, device=dev, san_reads=(c,))  # hook is a no-op
            assert sz.findings() == []
        finally:
            _runtime.ACTIVE = prior

    def test_report_and_str_formats(self, dev, san):
        c = _vec()
        launch(NOP, CFG, device=dev, san_reads=(c,))
        text = san.report()
        assert "gbsan" in text and "unresident-read" in text
        assert str(san.findings[0]).startswith("gbsan[unresident-read]")
        san.drain()
        assert san.report() == "gbsan: no findings"

    def test_findings_dedup(self, dev, san):
        c = _vec()
        for _ in range(5):
            launch(NOP, CFG, device=dev, san_reads=(c,))
        assert len(san.findings) == 1
        san.drain()


# ---------------------------------------------------------------------------
# Zero false positives on real workloads, every simulated backend
# ---------------------------------------------------------------------------


def _workload():
    from repro.algorithms.bfs import bfs_levels
    from repro.algorithms.pagerank import pagerank
    from repro.generators.rmat import rmat

    a = rmat(7, 8, seed=3)
    bfs_levels(a, 0)
    pagerank(a, max_iter=12)


class TestZeroFalsePositives:
    def test_cuda_sim_clean(self):
        with use_backend("cuda_sim"):
            with sz.sanitized() as san:
                _workload()
                assert san.findings == [], san.report()

    @pytest.mark.parametrize("nparts", [1, 2, 4])
    def test_multi_sim_clean(self, nparts):
        be = get_backend("multi_sim").configure(nparts=nparts)
        with use_backend("multi_sim"):
            with sz.sanitized() as san:
                _workload()
                assert san.findings == [], san.report()

    def test_cuda_sim_clean_without_reuse(self):
        with use_backend("cuda_sim"):
            with reuse.reuse_disabled():
                with sz.sanitized() as san:
                    _workload()
                    assert san.findings == [], san.report()


# ---------------------------------------------------------------------------
# Static lint unit tests
# ---------------------------------------------------------------------------


class TestLint:
    def test_kernel_without_accesses_flagged(self):
        src = "K = Kernel('k', run, work)\n"
        out = lint_source(src, "backends/cuda_sim/kernels.py")
        assert [f.rule for f in out] == ["kernel-decl"]

    def test_kernel_with_accesses_clean(self):
        src = "K = Kernel('k', run, work, accesses=_reads_all)\n"
        assert lint_source(src, "backends/cuda_sim/kernels.py") == []

    def test_argsort_flagged_and_suppressible(self):
        src = "o = np.argsort(keys)\n"
        out = lint_source(src, "backends/cpu/spmv.py")
        assert [f.rule for f in out] == ["argsort"]
        ok = "o = np.argsort(keys)  # gbsan: ok(argsort) -- fallback path\n"
        assert lint_source(ok, "backends/cpu/spmv.py") == []

    def test_directive_without_reason_does_not_suppress(self):
        src = "o = np.argsort(keys)  # gbsan: ok(argsort)\n"
        out = lint_source(src, "backends/cpu/spmv.py")
        assert [f.rule for f in out] == ["argsort"]

    def test_container_mutation_flagged(self):
        src = "c.values[k] = v\n"
        out = lint_source(src, "core/vector.py")
        assert [f.rule for f in out] == ["container-mutation"]

    def test_heavy_numpy_in_orchestrator_flagged(self):
        src = "s = np.searchsorted(rows, x)\n"
        out = lint_source(src, "backends/multi_sim/backend.py")
        assert any(f.rule == "uncharged-numpy" for f in out)

    def test_out_of_scope_files_unlinted(self):
        src = "o = np.argsort(keys)\nc.values[k] = v\n"
        assert lint_source(src, "testing/programs.py") == []

    def test_fused_kernel_without_accesses_flagged_everywhere(self):
        # Fused kernels are emitted by the lazy optimizer; an undeclared one
        # is flagged no matter which module instantiates it.
        src = "K = Kernel('ewise_reduce_fused_v', run, work)\n"
        out = lint_source(src, "testing/helpers.py")
        assert [f.rule for f in out] == ["fused-kernel-decl"]
        out = lint_source(src, "backends/cuda_sim/kernels.py")
        assert {f.rule for f in out} == {"kernel-decl", "fused-kernel-decl"}

    def test_fused_kernel_with_accesses_clean(self):
        src = "K = Kernel('fill_ewise_fused_v', run, work, accesses=_reads_all)\n"
        assert lint_source(src, "lazy/passes.py") == []

    def test_lazy_package_held_to_backend_rules(self):
        src = "o = np.argsort(keys)\nK = Kernel('k', run, work)\n"
        out = lint_source(src, "lazy/schedule.py")
        assert {f.rule for f in out} == {"argsort", "kernel-decl"}

    def test_repo_tree_is_clean(self):
        from pathlib import Path

        from repro.sanitizer.lint import lint_tree

        root = Path(gb.__file__).resolve().parent
        assert lint_tree(root) == []
