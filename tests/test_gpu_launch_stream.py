"""Kernel launch machinery, profiler, streams/events."""

import numpy as np
import pytest

from repro.exceptions import InvalidLaunchError
from repro.gpu.costmodel import KernelWork
from repro.gpu.device import Device, DeviceProperties, K40
from repro.gpu.kernel import Kernel, LaunchConfig, charge_transfer, launch
from repro.gpu.profiler import LaunchRecord, Profiler
from repro.gpu.stream import Event, Stream

DOUBLER = Kernel(
    "doubler",
    run=lambda x: x * 2,
    work=lambda x: KernelWork(flops=float(x.size), bytes_read=float(x.nbytes), threads=int(x.size)),
)


class TestLaunchConfig:
    def test_cover(self):
        cfg = LaunchConfig.cover(1000, block=256)
        assert cfg.grid == 4 and cfg.threads == 1024

    def test_cover_zero_threads(self):
        assert LaunchConfig.cover(0).grid == 1

    def test_validate_block_too_large(self):
        d = Device()
        with pytest.raises(InvalidLaunchError):
            LaunchConfig(1, 2048).validate(d)

    def test_validate_zero_block(self):
        with pytest.raises(InvalidLaunchError):
            LaunchConfig(1, 0).validate(Device())


class TestLaunch:
    def test_launch_runs_semantics(self):
        d = Device()
        x = np.arange(4.0)
        out = launch(DOUBLER, LaunchConfig.cover(4), x, device=d)
        np.testing.assert_array_equal(out, x * 2)

    def test_launch_advances_clock_and_profiles(self):
        d = Device()
        launch(DOUBLER, LaunchConfig.cover(4), np.arange(4.0), device=d)
        assert d.clock_us >= d.props.launch_overhead_us
        assert d.profiler.launch_count == 1
        rec = d.profiler.records[0]
        assert rec.name == "doubler" and rec.kind == "kernel"

    def test_launch_validates_config(self):
        d = Device()
        with pytest.raises(InvalidLaunchError):
            launch(DOUBLER, LaunchConfig(1, 9999), np.arange(4.0), device=d)

    def test_sequential_launches_accumulate(self):
        d = Device()
        launch(DOUBLER, LaunchConfig.cover(4), np.arange(4.0), device=d)
        t1 = d.clock_us
        launch(DOUBLER, LaunchConfig.cover(4), np.arange(4.0), device=d)
        assert d.clock_us > t1

    def test_charge_transfer(self):
        d = Device()
        dt = charge_transfer(1e6, "h2d", device=d)
        assert dt == pytest.approx(d.props.pcie_latency_us + 100.0, rel=1e-6)
        assert d.profiler.transfer_time_us == pytest.approx(dt)


class TestProfiler:
    def test_aggregates(self):
        p = Profiler()
        p.record(LaunchRecord("k1", "kernel", 0, 5.0, flops=10, bytes=100))
        p.record(LaunchRecord("k1", "kernel", 5, 7.0, flops=20, bytes=200))
        p.record(LaunchRecord("memcpy_h2d", "h2d", 12, 3.0, bytes=50))
        assert p.kernel_time_us == 12.0
        assert p.transfer_time_us == 3.0
        assert p.total_time_us == 15.0
        assert p.launch_count == 2
        agg = p.by_kernel()["k1"]
        assert agg["count"] == 2 and agg["flops"] == 30

    def test_summary_renders(self):
        p = Profiler()
        p.record(LaunchRecord("spmv", "kernel", 0, 5.0, bytes=1e9))
        s = p.summary()
        assert "spmv" in s and "transfers" in s

    def test_end_us(self):
        r = LaunchRecord("k", "kernel", 2.0, 3.0)
        assert r.end_us == 5.0


class TestStreams:
    def test_stream_timeline(self):
        d = Device()
        s = Stream(d)
        start = s.enqueue(10.0)
        assert start == 0.0 and s.timeline_us == 10.0
        assert d.clock_us == 10.0

    def test_two_streams_overlap(self):
        d = Device()
        s1, s2 = Stream(d), Stream(d)
        s1.enqueue(10.0)
        s2.enqueue(10.0)
        # Overlapping streams: device time is max, not sum.
        assert d.clock_us == 10.0

    def test_event_dependency_serialises(self):
        d = Device()
        s1, s2 = Stream(d), Stream(d)
        s1.enqueue(10.0)
        ev = s1.record_event()
        s2.wait_event(ev)
        s2.enqueue(5.0)
        assert s2.timeline_us == 15.0
        assert d.clock_us == 15.0

    def test_wait_unrecorded_event_raises(self):
        s = Stream(Device())
        with pytest.raises(ValueError):
            s.wait_event(Event())

    def test_synchronize_returns_timeline(self):
        d = Device()
        s = Stream(d)
        s.enqueue(3.0)
        assert s.synchronize() == s.timeline_us

    def test_launch_on_stream(self):
        d = Device()
        s = Stream(d)
        launch(DOUBLER, LaunchConfig.cover(4), np.arange(4.0), device=d, stream=s)
        assert s.timeline_us > 0
        assert d.profiler.launch_count == 1

    def test_new_stream_starts_at_device_now(self):
        d = Device()
        d.advance(42.0)
        s = Stream(d)
        assert s.timeline_us == 42.0
