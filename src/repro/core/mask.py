"""Mask evaluation.

A GraphBLAS mask controls which output positions an operation may write.  The
mask may be *valued* (an entry controls only if present **and** truthy) or
*structural* (presence alone controls), and may be *complemented*.  The write
pipeline never materialises a complemented mask; instead it evaluates mask
membership at the finite set of candidate positions (union of the old output
and the computed result), which is all the semantics require.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..containers.csr import CSRMatrix
from ..containers.sparsevec import SparseVector
from ..exceptions import DimensionMismatchError
from .descriptor import Descriptor

__all__ = ["vector_mask_at", "matrix_mask_at", "flat_keys", "check_mask_shape"]


def check_mask_shape(
    mask: Optional[Union[SparseVector, CSRMatrix]],
    out_shape,
) -> None:
    """Validate that the mask's shape matches the output's shape."""
    if mask is None:
        return
    if isinstance(mask, SparseVector):
        if (mask.size,) != tuple(np.atleast_1d(out_shape)):
            raise DimensionMismatchError(
                "mask shape", expected=tuple(np.atleast_1d(out_shape)), actual=(mask.size,)
            )
    else:
        if mask.shape != tuple(out_shape):
            raise DimensionMismatchError(
                "mask shape", expected=tuple(out_shape), actual=mask.shape
            )


def flat_keys(rows: np.ndarray, cols: np.ndarray, ncols: int) -> np.ndarray:
    """Encode (row, col) pairs as sortable int64 keys (row-major)."""
    return rows.astype(np.int64) * np.int64(ncols) + cols.astype(np.int64)


def _mask_truthy_sorted(indices: np.ndarray, values: np.ndarray, structural: bool):
    """Sorted index array of positions where the mask 'fires' (pre-complement)."""
    if structural:
        return indices
    keep = values.astype(bool)
    return indices[keep]


def vector_mask_at(
    mask: Optional[SparseVector],
    desc: Descriptor,
    positions: np.ndarray,
) -> np.ndarray:
    """Boolean array: does the (effective) mask allow each of ``positions``?

    ``positions`` must be sorted ascending (the pipeline guarantees it); the
    mask's own indices are canonical, so a merge via ``searchsorted`` is
    exact.
    """
    if mask is None:
        return np.ones(positions.size, dtype=bool)
    truthy = _mask_truthy_sorted(mask.indices, mask.values, desc.structural_mask)
    hit = np.zeros(positions.size, dtype=bool)
    if truthy.size:
        loc = np.searchsorted(truthy, positions)
        loc_clipped = np.minimum(loc, truthy.size - 1)
        hit = truthy[loc_clipped] == positions
        hit &= loc < truthy.size
    return ~hit if desc.complement_mask else hit


def matrix_mask_at(
    mask: Optional[CSRMatrix],
    desc: Descriptor,
    keys: np.ndarray,
) -> np.ndarray:
    """Matrix analogue of :func:`vector_mask_at` over flat row-major keys."""
    if mask is None:
        return np.ones(keys.size, dtype=bool)
    rows = np.repeat(np.arange(mask.nrows, dtype=np.int64), mask.row_degrees())
    mkeys = flat_keys(rows, mask.indices, mask.ncols)
    truthy = _mask_truthy_sorted(mkeys, mask.values, desc.structural_mask)
    hit = np.zeros(keys.size, dtype=bool)
    if truthy.size:
        loc = np.searchsorted(truthy, keys)
        loc_clipped = np.minimum(loc, truthy.size - 1)
        hit = truthy[loc_clipped] == keys
        hit &= loc < truthy.size
    return ~hit if desc.complement_mask else hit
