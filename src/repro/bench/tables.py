"""Paper-style table and series rendering for benchmark output.

The benchmark files print the same rows/series the reconstructed paper
tables contain; these helpers keep the formatting consistent and also do
the "shape assertions" (who wins, by what factor) that stand in for
matching absolute numbers from 2016 hardware.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["format_table", "format_series", "ascii_chart", "speedup", "check_ordering"]


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
    col_width: int = 14,
) -> str:
    """Fixed-width text table with a title rule."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            if cell != 0 and (abs(cell) < 1e-3 or abs(cell) >= 1e5):
                return f"{cell:.3e}"
            return f"{cell:.4f}"
        return str(cell)

    rendered = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(
            col_width,
            len(columns[j]) + 2,
            max((len(r[j]) for r in rendered), default=0) + 2,
        )
        for j in range(len(columns))
    ]
    lines = [title, "=" * min(len(title), 78)]
    lines.append("".join(f"{c:>{w}}" for c, w in zip(columns, widths)))
    lines.append("-" * sum(widths))
    for row in rendered:
        lines.append("".join(f"{c:>{w}}" for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    xs: Sequence[object],
    series: Dict[str, Sequence[float]],
    chart: bool = True,
) -> str:
    """A figure rendered as columns: x, then one column per series.

    With ``chart=True`` a log-scale ASCII chart of the same series is
    appended — the "figure" half of a text-only paper reproduction.
    """
    cols = [x_label] + list(series)
    rows = [[x] + [series[s][i] for s in series] for i, x in enumerate(xs)]
    out = format_table(title, cols, rows)
    if chart:
        plot = ascii_chart(xs, series)
        if plot:
            out += "\n\n" + plot
    return out


def ascii_chart(
    xs: Sequence[object],
    series: Dict[str, Sequence[float]],
    width: int = 52,
    log: bool = True,
) -> str:
    """Horizontal-bar log chart of one value per (x, series) pair.

    NaNs (unmeasured cells) are skipped.  Returns "" when nothing is
    plottable.
    """
    import math

    points = []
    for name, ys in series.items():
        for x, y in zip(xs, ys):
            if y is None or (isinstance(y, float) and (y != y)):
                continue
            if y <= 0:
                continue
            points.append((name, x, float(y)))
    if not points:
        return ""
    lo = min(p[2] for p in points)
    hi = max(p[2] for p in points)
    if log:
        span = max(math.log10(hi / lo), 1e-9)
        scale = lambda y: int(round(width * math.log10(y / lo) / span))
    else:
        span = max(hi - lo, 1e-300)
        scale = lambda y: int(round(width * (y - lo) / span))
    label_w = max(len(f"{name} @ {x}") for name, x, _ in points) + 2
    lines = [f"(log scale, {lo:.3e} .. {hi:.3e})" if log else f"({lo:.3e} .. {hi:.3e})"]
    for name in series:
        for x, y in zip(xs, series[name]):
            if y is None or (isinstance(y, float) and (y != y)) or y <= 0:
                continue
            bar = "█" * max(scale(y), 1)
            lines.append(f"{f'{name} @ {x}':<{label_w}}|{bar} {y:.3e}")
    return "\n".join(lines)


def speedup(baseline: float, other: float) -> float:
    """baseline/other (how many times faster ``other`` is)."""
    return baseline / other if other > 0 else float("inf")


def check_ordering(
    values: Dict[str, float],
    expect_faster: Sequence[str],
    expect_slower: str,
    min_factor: float = 1.0,
) -> List[str]:
    """Shape assertion: each of ``expect_faster`` beats ``expect_slower``
    by at least ``min_factor``.  Returns a list of violation messages
    (empty = shape holds)."""
    problems = []
    slow = values[expect_slower]
    for fast in expect_faster:
        f = values[fast]
        if f <= 0:
            continue
        if slow / f < min_factor:
            problems.append(
                f"{fast} ({f:.3e}s) not {min_factor}x faster than "
                f"{expect_slower} ({slow:.3e}s)"
            )
    return problems
