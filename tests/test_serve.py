"""The serving layer: coalescing, bit-identity, fairness, admission,
deadlines, traffic determinism, stream overlap, and the asyncio facade."""

import asyncio

import numpy as np
import pytest

import repro as gb
from repro.serve import (
    BatchPolicy,
    BatchScheduler,
    BfsQuery,
    Coalescer,
    FeatureQuery,
    GraphService,
    KHopQuery,
    Overloaded,
    PendingQuery,
    PprQuery,
    TrafficSpec,
    generate_trace,
    simulate_queueing,
    zipf_choice,
)
from repro.serve.aio import AsyncGraphService

SERVE_BACKENDS = ["cuda_sim", "multi_sim:1", "multi_sim:2"]


def _make_service(spec, **kwargs):
    """Build a GraphService on a backend spec like ``multi_sim:2``."""
    if spec.startswith("multi_sim"):
        nparts = int(spec.split(":")[1])
        be = gb.get_backend("multi_sim").configure(
            nparts=nparts, splitter="degree_balanced"
        )
        be.reset()
        return GraphService(backend="multi_sim", **kwargs)
    return GraphService(backend=spec, **kwargs)


@pytest.fixture
def graph():
    return gb.generators.rmat(scale=7, edge_factor=6, seed=5)


@pytest.fixture
def trace(graph):
    spec = TrafficSpec(
        qps=4_000.0,
        n_queries=200,
        n_users=1_000_000,
        n_tenants=3,
        ppr_iters=3,
    )
    return generate_trace(spec, graph.nrows, seed=21)


# ---------------------------------------------------------------------------
# Batched vs sequential bit-identity (the acceptance criterion)
# ---------------------------------------------------------------------------


class TestBitIdentity:
    @pytest.mark.parametrize("backend_spec", SERVE_BACKENDS)
    def test_batched_equals_single_source_per_type(self, backend_spec, graph):
        """Every query type, batched, matches its per-query single-source run."""
        queries = [
            BfsQuery(0),
            BfsQuery(5),
            KHopQuery(3, hops=1),
            KHopQuery(9, hops=2),
            KHopQuery(5, hops=3),  # source shared with the BfsQuery above
            PprQuery(2, iters=4),
            PprQuery(11, iters=4),
            PprQuery(2, iters=4),  # duplicate query
            FeatureQuery(7),
            FeatureQuery(0),
        ]

        def run(policy):
            svc = _make_service(backend_spec, policy=policy)
            svc.register_graph(graph)
            for i, q in enumerate(queries):
                svc.submit("t0", q, arrival_us=float(i))
            svc.drain()
            return {r.qid: r for r in svc.stats().completed}

        batched = run(BatchPolicy(max_batch=16, max_wait_us=1e6))
        single = run(BatchPolicy(max_batch=1, max_wait_us=0.0))
        assert len(batched) == len(single) == len(queries)
        for qid in batched:
            b, s = batched[qid], single[qid]
            assert s.batch_size == 1
            assert b.result == s.result, f"qid {qid} ({b.query})"
            assert b.digest == s.digest
        # Coalescing actually happened: traversals shared one launch.
        sizes = sorted(r.batch_size for r in batched.values())
        assert sizes[-1] >= 3

    @pytest.mark.parametrize("backend_spec", SERVE_BACKENDS)
    def test_trace_digests_backend_invariant_batching(self, backend_spec, graph, trace):
        """A whole Zipf trace: batched digests == unbatched digests."""
        def run(policy):
            svc = _make_service(backend_spec, policy=policy, streams=2)
            svc.register_graph(graph)
            for t in range(3):
                svc.add_tenant(f"tenant{t}", max_queue=10_000)
            stats = svc.run_trace(trace)
            return {r.qid: r.digest for r in stats.completed}

        batched = run(BatchPolicy(max_batch=24, max_wait_us=3_000.0))
        single = run(BatchPolicy(max_batch=1, max_wait_us=0.0))
        assert batched == single and len(batched) == len(trace)

    def test_khop_filters_deeper_shared_batch(self, graph):
        """A khop query batched with a deeper khop still gets only its hops."""
        svc = _make_service("cuda_sim", policy=BatchPolicy(max_batch=8, max_wait_us=1e6))
        svc.register_graph(graph)
        r_hop = svc.submit("t0", KHopQuery(4, hops=1), arrival_us=0.0)
        svc.submit("t0", KHopQuery(4, hops=3), arrival_us=1.0)
        svc.drain()
        assert r_hop.status == "done" and r_hop.batch_size == 2
        assert r_hop.result.values.max() <= 1

    def test_full_bfs_never_joins_bounded_pool(self, graph):
        """An unbounded BFS must not void a k-hop batch's early exit."""
        svc = _make_service("cuda_sim", policy=BatchPolicy(max_batch=8, max_wait_us=1e6))
        svc.register_graph(graph)
        r_hop = svc.submit("t0", KHopQuery(4, hops=1), arrival_us=0.0)
        r_bfs = svc.submit("t0", BfsQuery(4), arrival_us=1.0)
        svc.drain()
        assert r_hop.status == "done" and r_hop.batch_size == 1
        assert r_bfs.status == "done" and r_bfs.batch_size == 1
        assert r_hop.result.values.max() <= 1


# ---------------------------------------------------------------------------
# Coalescer mechanics
# ---------------------------------------------------------------------------


class TestCoalescer:
    def test_keys_separate_incompatible_queries(self):
        c = Coalescer(BatchPolicy(max_batch=8))
        c.add("g", PendingQuery(0, "a", KHopQuery(0, hops=2), 0.0))
        c.add("g", PendingQuery(1, "a", BfsQuery(1), 0.0))
        c.add("g", PendingQuery(2, "a", PprQuery(2), 0.0))
        c.add("g", PendingQuery(3, "a", PprQuery(3, damping=0.5), 0.0))
        c.add("other", PendingQuery(4, "a", BfsQuery(0), 0.0))
        # bounded traverse, full traverse, ppr(0.85), ppr(0.5), and the
        # other graph: 5 pools (full BFS never rides in a k-hop batch).
        assert len(c.pending_keys()) == 5 and len(c) == 5

    def test_size_trigger(self):
        c = Coalescer(BatchPolicy(max_batch=2, max_wait_us=1e9))
        key = c.add("g", PendingQuery(0, "a", BfsQuery(0), 0.0))
        assert not c.full(key)
        c.add("g", PendingQuery(1, "a", BfsQuery(1), 1.0))
        assert c.full(key)

    def test_age_trigger_tracks_oldest(self):
        c = Coalescer(BatchPolicy(max_batch=100, max_wait_us=50.0))
        c.add("g", PendingQuery(0, "a", BfsQuery(0), 10.0))
        c.add("g", PendingQuery(1, "a", BfsQuery(1), 40.0))
        assert c.next_close_us() == 60.0
        assert c.due_keys(59.0) == []
        assert c.due_keys(60.0) == [("g", ("traverse", "full"))]

    def test_drain_respects_max_batch_and_arrival_order(self):
        c = Coalescer(BatchPolicy(max_batch=3, max_wait_us=0.0))
        for i in range(5):
            key = c.add("g", PendingQuery(i, "a", BfsQuery(i), float(i)))
        batch = c.drain(key, {"a": 1.0})
        assert [p.qid for p in batch] == [0, 1, 2]
        assert len(c) == 2

    def test_fair_drain_protects_light_tenant(self):
        """A flooding tenant cannot exclude a light tenant from the batch."""
        c = Coalescer(BatchPolicy(max_batch=4, max_wait_us=0.0))
        for i in range(20):
            key = c.add("g", PendingQuery(i, "heavy", BfsQuery(i % 7), float(i)))
        c.add("g", PendingQuery(100, "light", BfsQuery(3), 50.0))
        batch = c.drain(key, {"heavy": 1.0, "light": 1.0})
        tenants = [p.tenant for p in batch]
        assert "light" in tenants and tenants.count("heavy") == 3

    def test_fair_drain_weights_shift_shares(self):
        c = Coalescer(BatchPolicy(max_batch=6, max_wait_us=0.0))
        for i in range(12):
            key = c.add("g", PendingQuery(i, "a", BfsQuery(i), float(i)))
        for i in range(12, 24):
            c.add("g", PendingQuery(i, "b", BfsQuery(i), float(i)))
        batch = c.drain(key, {"a": 2.0, "b": 1.0})
        tenants = [p.tenant for p in batch]
        assert tenants.count("a") == 4 and tenants.count("b") == 2

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_wait_us=-1.0)


# ---------------------------------------------------------------------------
# Scheduler lanes
# ---------------------------------------------------------------------------


class TestScheduler:
    def test_streams_overlap(self):
        s = BatchScheduler(streams=2)
        a = s.place(0.0, 100.0)
        b = s.place(0.0, 100.0)
        assert a[0] == b[0] == 0.0 and a[2] != b[2]
        c = s.place(0.0, 50.0)  # both lanes busy until 100
        assert c[0] == 100.0
        assert s.makespan_us == 150.0 and s.busy_us == 250.0

    def test_single_stream_serialises(self):
        s = BatchScheduler(streams=1)
        s.place(0.0, 10.0)
        start, done, _ = s.place(0.0, 10.0)
        assert (start, done) == (10.0, 20.0)

    def test_simulate_queueing_matches_live_placement(self):
        rng = np.random.default_rng(3)
        arrivals = np.sort(rng.uniform(0, 1_000, 50))
        durations = rng.uniform(5, 50, 50)
        offline = simulate_queueing(arrivals, durations, streams=2)
        live = BatchScheduler(streams=2)
        expect = np.array([live.place(a, d)[1] for a, d in zip(arrivals, durations)])
        assert np.array_equal(offline, expect)

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchScheduler(streams=0)
        with pytest.raises(ValueError):
            simulate_queueing([0.0], [1.0, 2.0])


# ---------------------------------------------------------------------------
# Admission control / fairness / deadlines
# ---------------------------------------------------------------------------


class TestAdmissionAndDeadlines:
    def test_overloaded_is_typed_and_recorded(self, graph):
        svc = _make_service(
            "cuda_sim", policy=BatchPolicy(max_batch=100, max_wait_us=1e9)
        )
        svc.register_graph(graph)
        svc.add_tenant("t0", max_queue=3)
        for i in range(3):
            svc.submit("t0", BfsQuery(i), arrival_us=float(i))
        with pytest.raises(Overloaded) as exc:
            svc.submit("t0", BfsQuery(9), arrival_us=3.0)
        assert exc.value.tenant == "t0"
        assert exc.value.depth == 3 and exc.value.limit == 3
        shed = [r for r in svc.records if r.status == "shed"]
        assert len(shed) == 1 and svc.tenants["t0"].shed == 1

    def test_overload_is_per_tenant(self, graph):
        svc = _make_service(
            "cuda_sim", policy=BatchPolicy(max_batch=100, max_wait_us=1e9)
        )
        svc.register_graph(graph)
        svc.add_tenant("greedy", max_queue=2)
        svc.add_tenant("modest", max_queue=2)
        svc.submit("greedy", BfsQuery(0), arrival_us=0.0)
        svc.submit("greedy", BfsQuery(1), arrival_us=0.0)
        with pytest.raises(Overloaded):
            svc.submit("greedy", BfsQuery(2), arrival_us=0.0)
        # The other tenant is unaffected.
        rec = svc.submit("modest", BfsQuery(3), arrival_us=0.0)
        assert rec.status == "queued"

    def test_queue_frees_after_completion(self, graph):
        svc = _make_service("cuda_sim", policy=BatchPolicy(max_batch=2, max_wait_us=10.0))
        svc.register_graph(graph)
        svc.add_tenant("t0", max_queue=2)
        svc.submit("t0", BfsQuery(0), arrival_us=0.0)
        svc.submit("t0", BfsQuery(1), arrival_us=1.0)  # fills batch, dispatches
        done = max(r.completion_us for r in svc.records)
        rec = svc.submit("t0", BfsQuery(2), arrival_us=done + 1.0)
        assert rec.status == "queued"

    def test_expired_before_dispatch_dropped(self, graph):
        svc = _make_service(
            "cuda_sim", policy=BatchPolicy(max_batch=100, max_wait_us=500.0)
        )
        svc.register_graph(graph)
        rec = svc.submit("t0", BfsQuery(0), arrival_us=0.0, deadline_us=100.0)
        svc.advance_to(1_000.0)  # age trigger at 500 > deadline 100
        assert rec.status == "expired"
        assert rec.result is None
        stats = svc.stats()
        assert stats.expired_count == 1 and not stats.completed

    def test_deadline_missed_after_completion_counted(self, graph):
        svc = _make_service("cuda_sim", policy=BatchPolicy(max_batch=1))
        svc.register_graph(graph)
        ok = svc.submit("t0", BfsQuery(0), arrival_us=0.0, deadline_us=1e9)
        tight = svc.submit("t0", BfsQuery(1), arrival_us=0.0, deadline_us=1e-3)
        svc.drain()
        assert ok.status == tight.status == "done"
        assert ok.deadline_met is True and tight.deadline_met is False
        assert svc.stats().deadline_missed_count == 1

    def test_fairness_under_adversarial_skew(self, graph):
        """A tenant flooding 10x the traffic cannot starve the light tenant:
        with equal weights, the light tenant's p99 stays in the same regime
        as the heavy tenant's (no unbounded queue growth for the victim)."""
        svc = _make_service(
            "cuda_sim", policy=BatchPolicy(max_batch=8, max_wait_us=2_000.0)
        )
        svc.register_graph(graph)
        svc.add_tenant("heavy", weight=1.0, max_queue=100_000)
        svc.add_tenant("light", weight=1.0, max_queue=100_000)
        qid = 0
        for burst in range(40):
            t = burst * 500.0
            for j in range(10):
                svc.submit("heavy", KHopQuery((qid * 7) % graph.nrows, hops=2),
                           arrival_us=t + j * 0.1)
                qid += 1
            svc.submit("light", KHopQuery((qid * 13) % graph.nrows, hops=2),
                       arrival_us=t + 5.0)
            qid += 1
        svc.drain()
        stats = svc.stats()
        p99_light = stats.latency_percentile(99, tenant="light")
        p99_heavy = stats.latency_percentile(99, tenant="heavy")
        assert stats.tenant_summary()["light"]["completed"] == 40
        assert p99_light <= 2.0 * p99_heavy

    def test_tenant_validation(self, graph):
        svc = _make_service("cuda_sim")
        with pytest.raises(ValueError):
            svc.add_tenant("t", weight=0.0)
        with pytest.raises(ValueError):
            svc.add_tenant("t", max_queue=0)

    def test_query_validation_at_submit(self, graph):
        svc = _make_service("cuda_sim")
        svc.register_graph(graph)
        with pytest.raises(gb.IndexOutOfBoundsError):
            svc.submit("t0", BfsQuery(graph.nrows))
        with pytest.raises(gb.InvalidValueError):
            svc.submit("t0", PprQuery(0, damping=1.5))
        with pytest.raises(KeyError):
            svc.submit("t0", BfsQuery(0), graph="nope")


# ---------------------------------------------------------------------------
# Traffic generator
# ---------------------------------------------------------------------------


class TestTraffic:
    def test_deterministic_given_seed(self, graph):
        spec = TrafficSpec(n_queries=100, n_users=1_000_000)
        a = generate_trace(spec, graph.nrows, seed=5)
        b = generate_trace(spec, graph.nrows, seed=5)
        assert a == b
        c = generate_trace(spec, graph.nrows, seed=6)
        assert a != c

    def test_zipf_skews_head(self):
        rng = np.random.default_rng(0)
        draws = zipf_choice(rng, 1_000_000, 1.2, 20_000)
        assert draws.min() >= 0 and draws.max() < 1_000_000
        # Rank 0 alone should beat the entire tail half.
        head = (draws == 0).sum()
        assert head > (draws >= 500_000).sum()

    def test_zipf_zero_skew_is_uniformish(self):
        rng = np.random.default_rng(1)
        draws = zipf_choice(rng, 10, 0.0, 50_000)
        counts = np.bincount(draws, minlength=10)
        assert counts.min() > 4_000

    def test_mix_and_deadlines_respected(self, graph):
        spec = TrafficSpec(
            n_queries=300,
            mix=(("bfs", 0.5), ("feature", 0.5)),
            deadline_us=1_234.0,
        )
        trace = generate_trace(spec, graph.nrows, seed=2)
        kinds = {s.query.kind for s in trace}
        assert kinds == {"bfs", "feature"}
        for s in trace:
            assert s.deadline_us == pytest.approx(s.arrival_us + 1_234.0)

    def test_arrival_rate_matches_qps(self, graph):
        spec = TrafficSpec(qps=10_000.0, n_queries=5_000)
        trace = generate_trace(spec, graph.nrows, seed=3)
        span_s = trace[-1].arrival_us / 1e6
        assert 5_000 / span_s == pytest.approx(10_000.0, rel=0.1)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            TrafficSpec(qps=0)
        with pytest.raises(ValueError):
            TrafficSpec(n_tenants=0)
        with pytest.raises(ValueError):
            TrafficSpec(mix=(("bfs", -1.0),))


# ---------------------------------------------------------------------------
# asyncio facade
# ---------------------------------------------------------------------------


class TestAsyncFacade:
    def test_awaited_submissions_batch_and_match(self, graph):
        svc = _make_service(
            "cuda_sim", policy=BatchPolicy(max_batch=4, max_wait_us=1e6)
        )
        svc.register_graph(graph)
        aio = AsyncGraphService(svc)

        async def client(i):
            return await aio.submit("t0", KHopQuery(i, hops=2), arrival_us=float(i))

        async def main():
            recs = await asyncio.gather(*(client(i) for i in range(4)))
            await aio.drain()
            return recs

        recs = asyncio.run(main())
        assert all(r.status == "done" for r in recs)
        assert max(r.batch_size for r in recs) == 4
        expect = {r.qid: r.digest for r in recs}
        # Against per-query single-source execution:
        ssvc = _make_service("cuda_sim", policy=BatchPolicy(max_batch=1))
        ssvc.register_graph(graph)
        for i in range(4):
            ssvc.submit("t0", KHopQuery(i, hops=2), arrival_us=float(i))
        ssvc.drain()
        singles = {r.qid: r.digest for r in ssvc.stats().completed}
        assert expect == singles

    def test_async_overload_raises_out_of_await(self, graph):
        svc = _make_service(
            "cuda_sim", policy=BatchPolicy(max_batch=100, max_wait_us=1e9)
        )
        svc.register_graph(graph)
        svc.add_tenant("t0", max_queue=1)
        aio = AsyncGraphService(svc)

        async def main():
            svc.submit("t0", BfsQuery(0), arrival_us=0.0)
            with pytest.raises(Overloaded):
                await aio.submit("t0", BfsQuery(1), arrival_us=0.0)

        asyncio.run(main())


# ---------------------------------------------------------------------------
# Stats plumbing
# ---------------------------------------------------------------------------


class TestStats:
    def test_batch_size_histogram_counts_every_batch(self, graph, trace):
        svc = _make_service(
            "cuda_sim", policy=BatchPolicy(max_batch=16, max_wait_us=2_000.0)
        )
        svc.register_graph(graph)
        stats = svc.run_trace(trace)
        hist = stats.batch_size_histogram
        assert sum(k * v for k, v in hist.items()) == len(stats.completed)
        assert sum(hist.values()) == len(svc.batch_sizes)
        assert max(hist) > 1  # coalescing happened

    def test_to_dict_is_json_ready(self, graph, trace):
        import json

        svc = _make_service("cuda_sim")
        svc.register_graph(graph)
        stats = svc.run_trace(trace)
        d = json.loads(json.dumps(stats.to_dict()))
        assert d["completed"] == len(trace) and d["sustained_qps"] > 0

    def test_warm_setup_accounted_separately(self, graph):
        svc = _make_service("cuda_sim")
        svc.register_graph(graph, warm=True)
        assert svc.setup_us > 0
        assert svc.scheduler.busy_us == 0  # warmup is not query time
