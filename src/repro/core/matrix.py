"""The frontend Matrix object.

A typed handle over a :class:`~repro.containers.csr.CSRMatrix` with a cached
column (CSC) view.  The cache powers the push/pull direction optimization
and descriptor transposes without repeated O(nnz) work; any mutation
invalidates it.  Compute goes through :mod:`repro.core.operations`.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Tuple

import numpy as np

from ..containers.coo import COO
from ..containers.convert import build_matrix
from ..containers.csc import CSCMatrix
from ..containers.csr import CSRMatrix
from ..exceptions import (
    DimensionMismatchError,
    EmptyObjectError,
    OutputNotEmptyError,
)
from ..types import FP64, GrBType, from_dtype
from .operators import BinaryOp

__all__ = ["Matrix"]


class Matrix:
    """A sparse GraphBLAS matrix of fixed shape and domain."""

    __slots__ = ("_container", "_csc")

    def __init__(self, container: CSRMatrix):
        self._container = container
        self._csc: Optional[CSCMatrix] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def sparse(cls, typ: GrBType = FP64, nrows: int = 0, ncols: int = 0) -> "Matrix":
        """An empty matrix (``GrB_Matrix_new`` analogue)."""
        return cls(CSRMatrix.empty(nrows, ncols, typ))

    @classmethod
    def from_lists(
        cls,
        rows: Iterable[int],
        cols: Iterable[int],
        values: Iterable[Any],
        nrows: int,
        ncols: int,
        typ: Optional[GrBType] = None,
        dup: Optional[BinaryOp] = None,
    ) -> "Matrix":
        """Build from parallel (row, col, value) lists."""
        r = np.asarray(list(rows) if not isinstance(rows, np.ndarray) else rows, dtype=np.int64)
        c = np.asarray(list(cols) if not isinstance(cols, np.ndarray) else cols, dtype=np.int64)
        v = np.asarray(list(values) if not isinstance(values, np.ndarray) else values)
        t = typ or from_dtype(v.dtype)
        return cls(build_matrix(nrows, ncols, r, c, v, t, dup))

    @classmethod
    def from_dense(cls, dense, typ: Optional[GrBType] = None) -> "Matrix":
        """Build from a 2-D array; zeros become implicit."""
        return cls(CSRMatrix.from_dense(np.asarray(dense), typ))

    @classmethod
    def identity(cls, n: int, value: Any = 1, typ: Optional[GrBType] = None) -> "Matrix":
        """n×n diagonal matrix with ``value`` on the diagonal."""
        from ..types import from_value

        t = typ or from_value(value)
        idx = np.arange(n, dtype=np.int64)
        return cls(
            CSRMatrix(
                n,
                n,
                np.arange(n + 1, dtype=np.int64),
                idx,
                np.full(n, value, dtype=t.dtype),
                t,
            )
        )

    @classmethod
    def from_diag(cls, v: "np.ndarray", typ: Optional[GrBType] = None) -> "Matrix":
        """Diagonal matrix from a dense 1-D array (zeros kept implicit)."""
        v = np.asarray(v)
        keep = np.flatnonzero(v)
        return cls.from_lists(keep, keep, v[keep], v.size, v.size, typ)

    def dup(self) -> "Matrix":
        """Deep copy (``GrB_Matrix_dup``)."""
        return Matrix(self._container.copy())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def container(self) -> CSRMatrix:
        return self._container

    def csc(self) -> CSCMatrix:
        """Cached column view (built lazily, invalidated by mutation)."""
        if self._csc is None:
            self._csc = CSCMatrix.from_csr(self._container)
        return self._csc

    @property
    def nrows(self) -> int:
        return self._container.nrows

    @property
    def ncols(self) -> int:
        return self._container.ncols

    @property
    def shape(self) -> Tuple[int, int]:
        return self._container.shape

    @property
    def nvals(self) -> int:
        return self._container.nvals

    @property
    def type(self) -> GrBType:
        return self._container.type

    def get(self, i: int, j: int, default: Optional[Any] = None) -> Any:
        v = self._container.get(i, j)
        return default if v is None else v

    def __getitem__(self, ij: Tuple[int, int]) -> Any:
        v = self._container.get(*ij)
        if v is None:
            raise EmptyObjectError(f"no stored value at {ij}")
        return v

    def __setitem__(self, ij: Tuple[int, int], value: Any) -> None:
        self.set_element(ij[0], ij[1], value)

    def __contains__(self, ij: Tuple[int, int]) -> bool:
        return self._container.get(*ij) is not None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def _invalidate(self) -> None:
        self._csc = None

    def _settle(self) -> None:
        """Barrier before mutation: recorded lazy ops may read us."""
        from ..lazy import schedule

        schedule.sync()

    def build(
        self,
        rows: Iterable[int],
        cols: Iterable[int],
        values: Iterable[Any],
        dup: Optional[BinaryOp] = None,
    ) -> "Matrix":
        """``GrB_Matrix_build``: populate an empty matrix from triplets."""
        self._settle()
        if self.nvals:
            raise OutputNotEmptyError("build target must be empty")
        r = np.asarray(list(rows) if not isinstance(rows, np.ndarray) else rows, dtype=np.int64)
        c = np.asarray(list(cols) if not isinstance(cols, np.ndarray) else cols, dtype=np.int64)
        v = np.asarray(list(values) if not isinstance(values, np.ndarray) else values)
        self._container = build_matrix(self.nrows, self.ncols, r, c, v, self.type, dup)
        self._invalidate()
        return self

    def set_element(self, i: int, j: int, value: Any) -> "Matrix":
        """Insert or overwrite one element (``GrB_Matrix_setElement``)."""
        self._settle()
        m = self._container
        value = self.type.cast(value)
        if not (0 <= i < m.nrows and 0 <= j < m.ncols):
            from ..exceptions import IndexOutOfBoundsError

            raise IndexOutOfBoundsError(f"({i}, {j}) outside {m.shape}")
        lo, hi = int(m.indptr[i]), int(m.indptr[i + 1])
        k = lo + int(np.searchsorted(m.indices[lo:hi], j))
        if k < hi and m.indices[k] == j:
            m.values[k] = value  # gbsan: ok(container-mutation) -- setElement overwrite; bump_version below flips the dirty bit
            # In-place overwrite: the container object survives, so cached
            # auxiliary structures and device-resident copies must be
            # invalidated through the mutation counter (dirty bit).
            m.bump_version()
            self._invalidate()
            return self
        indptr = m.indptr.copy()
        indptr[i + 1 :] += 1
        self._container = CSRMatrix(
            m.nrows,
            m.ncols,
            indptr,
            np.insert(m.indices, k, j),
            np.insert(m.values, k, value),
            m.type,
        )
        self._invalidate()
        return self

    def remove_element(self, i: int, j: int) -> "Matrix":
        """Delete one element if present."""
        self._settle()
        m = self._container
        if not (0 <= i < m.nrows and 0 <= j < m.ncols):
            from ..exceptions import IndexOutOfBoundsError

            raise IndexOutOfBoundsError(f"({i}, {j}) outside {m.shape}")
        lo, hi = int(m.indptr[i]), int(m.indptr[i + 1])
        k = lo + int(np.searchsorted(m.indices[lo:hi], j))
        if k < hi and m.indices[k] == j:
            indptr = m.indptr.copy()
            indptr[i + 1 :] -= 1
            self._container = CSRMatrix(
                m.nrows,
                m.ncols,
                indptr,
                np.delete(m.indices, k),
                np.delete(m.values, k),
                m.type,
            )
            self._invalidate()
        return self

    def clear(self) -> "Matrix":
        """Drop all stored entries, keeping shape and domain."""
        self._settle()
        self._container = CSRMatrix.empty(self.nrows, self.ncols, self.type)
        self._invalidate()
        return self

    def _replace(self, container: CSRMatrix) -> "Matrix":
        """Internal: install a merged result (used by operations)."""
        if container.shape != self.shape:
            raise DimensionMismatchError(
                "replacement container", expected=self.shape, actual=container.shape
            )
        self._container = container
        self._invalidate()
        return self

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_lists(self) -> Tuple[List[int], List[int], List[Any]]:
        """(rows, cols, values) as Python lists (``extractTuples``)."""
        coo = self._container.to_coo()
        return list(map(int, coo.rows)), list(map(int, coo.cols)), list(coo.vals)

    def to_coo(self) -> COO:
        return self._container.to_coo()

    def to_dense(self, fill: Any = 0) -> np.ndarray:
        return self._container.to_dense(fill)

    def row_degrees(self) -> np.ndarray:
        return self._container.row_degrees()

    # ------------------------------------------------------------------
    # Operator sugar (allocating convenience wrappers over operations)
    # ------------------------------------------------------------------

    def __matmul__(self, other):
        """``A @ B`` (mxm) or ``A @ v`` (mxv), over (PLUS, TIMES)."""
        from . import operations as _ops
        from .semiring import PLUS_TIMES
        from .vector import Vector

        if isinstance(other, Vector):
            out = Vector.sparse(self.type, self.nrows)
            return _ops.mxv(out, self, other, PLUS_TIMES)
        out = Matrix.sparse(self.type, self.nrows, other.ncols)
        return _ops.mxm(out, self, other, PLUS_TIMES)

    def __add__(self, other: "Matrix") -> "Matrix":
        """Elementwise union with PLUS into a fresh matrix."""
        from . import operations as _ops
        from .operators import PLUS

        out = Matrix.sparse(self.type, self.nrows, self.ncols)
        return _ops.ewise_add(out, self, other, PLUS)

    def __mul__(self, other: "Matrix") -> "Matrix":
        """Elementwise intersection with TIMES into a fresh matrix."""
        from . import operations as _ops
        from .operators import TIMES

        out = Matrix.sparse(self.type, self.nrows, self.ncols)
        return _ops.ewise_mult(out, self, other, TIMES)

    @property
    def T(self) -> "Matrix":
        """Transposed copy (``GrB_transpose`` into a fresh matrix)."""
        from . import operations as _ops

        out = Matrix.sparse(self.type, self.ncols, self.nrows)
        return _ops.transpose(out, self)

    def reduce(self, monoid=None) -> Any:
        """Fold all stored values (default: PLUS)."""
        from . import operations as _ops
        from .monoid import PLUS_MONOID

        return _ops.reduce(self, monoid or PLUS_MONOID)

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Matrix):
            return NotImplemented
        a, b = self._container, other._container
        return (
            a.shape == b.shape
            and a.nvals == b.nvals
            and bool(np.array_equal(a.indptr, b.indptr))
            and bool(np.array_equal(a.indices, b.indices))
            and bool(np.array_equal(a.values, b.values))
        )

    def __hash__(self):  # pragma: no cover
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Matrix({self.nrows}x{self.ncols}, nvals={self.nvals}, {self.type.name})"
