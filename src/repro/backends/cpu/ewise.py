"""Vectorized elementwise kernels (eWiseAdd / eWiseMult).

Both operands are canonical (sorted, unique indices), so union and
intersection are merge problems solved with ``searchsorted`` — no hashing,
no Python loops.  Matrices reduce to the vector kernels via flat row-major
keys.
"""

from __future__ import annotations

import numpy as np

from ...containers.csr import CSRMatrix
from ...containers.sparsevec import SparseVector
from ...core.operators import BinaryOp
from ...types import GrBType, promote

__all__ = [
    "ewise_add_indexed",
    "ewise_mult_indexed",
    "ewise_add_vec",
    "ewise_mult_vec",
    "ewise_add_mat",
    "ewise_mult_mat",
]


def _membership(haystack: np.ndarray, needles: np.ndarray):
    """(present, position) of each needle in a sorted unique haystack."""
    pos = np.searchsorted(haystack, needles)
    if haystack.size == 0:
        return np.zeros(needles.size, dtype=bool), pos
    pos_c = np.minimum(pos, haystack.size - 1)
    present = (haystack[pos_c] == needles) & (pos < haystack.size)
    return present, pos


def ewise_add_indexed(
    u_idx: np.ndarray,
    u_vals: np.ndarray,
    v_idx: np.ndarray,
    v_vals: np.ndarray,
    op: BinaryOp,
    out_dtype: np.dtype,
):
    """Union merge over sorted index arrays. Returns (indices, values)."""
    union = np.union1d(u_idx, v_idx)
    out = np.empty(union.size, dtype=out_dtype)
    in_u, pos_u = _membership(u_idx, union)
    in_v, pos_v = _membership(v_idx, union)
    only_u = in_u & ~in_v
    only_v = in_v & ~in_u
    both = in_u & in_v
    if only_u.any():
        out[only_u] = u_vals[pos_u[only_u]]
    if only_v.any():
        out[only_v] = v_vals[pos_v[only_v]]
    if both.any():
        out[both] = np.asarray(op(u_vals[pos_u[both]], v_vals[pos_v[both]]))
    return union, out


def ewise_mult_indexed(
    u_idx: np.ndarray,
    u_vals: np.ndarray,
    v_idx: np.ndarray,
    v_vals: np.ndarray,
    op: BinaryOp,
    out_dtype: np.dtype,
):
    """Intersection merge over sorted index arrays."""
    if u_idx.size > v_idx.size:
        # Search the smaller set in the larger one.
        present, pos = _membership(u_idx, v_idx)
        idx = v_idx[present]
        lhs = u_vals[pos[present]]
        rhs = v_vals[present]
    else:
        present, pos = _membership(v_idx, u_idx)
        idx = u_idx[present]
        lhs = u_vals[present]
        rhs = v_vals[pos[present]]
    if idx.size == 0:
        return idx.astype(np.int64), np.empty(0, dtype=out_dtype)
    vals = np.asarray(op(lhs, rhs)).astype(out_dtype, copy=False)
    return idx, vals


def ewise_add_vec(u: SparseVector, v: SparseVector, op: BinaryOp) -> SparseVector:
    out_t = op.result_type(promote(u.type, v.type))
    idx, vals = ewise_add_indexed(
        u.indices, u.values, v.indices, v.values, op, out_t.dtype
    )
    return SparseVector(u.size, idx, vals, out_t)


def ewise_mult_vec(u: SparseVector, v: SparseVector, op: BinaryOp) -> SparseVector:
    out_t = op.result_type(promote(u.type, v.type))
    idx, vals = ewise_mult_indexed(
        u.indices, u.values, v.indices, v.values, op, out_t.dtype
    )
    return SparseVector(u.size, idx, vals, out_t)


def _mat_keys(a: CSRMatrix) -> np.ndarray:
    rows = np.repeat(np.arange(a.nrows, dtype=np.int64), a.row_degrees())
    return rows * np.int64(a.ncols) + a.indices


def _keys_to_csr(
    keys: np.ndarray, vals: np.ndarray, nrows: int, ncols: int, out_t: GrBType
) -> CSRMatrix:
    rows = keys // ncols if ncols else keys
    cols = keys - rows * ncols if ncols else keys
    indptr = np.zeros(nrows + 1, dtype=np.int64)
    if rows.size:
        np.add.at(indptr, rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return CSRMatrix(nrows, ncols, indptr, cols, vals, out_t)


def ewise_add_mat(a: CSRMatrix, b: CSRMatrix, op: BinaryOp) -> CSRMatrix:
    out_t = op.result_type(promote(a.type, b.type))
    keys, vals = ewise_add_indexed(
        _mat_keys(a), a.values, _mat_keys(b), b.values, op, out_t.dtype
    )
    return _keys_to_csr(keys, vals, a.nrows, a.ncols, out_t)


def ewise_mult_mat(a: CSRMatrix, b: CSRMatrix, op: BinaryOp) -> CSRMatrix:
    out_t = op.result_type(promote(a.type, b.type))
    keys, vals = ewise_mult_indexed(
        _mat_keys(a), a.values, _mat_keys(b), b.values, op, out_t.dtype
    )
    return _keys_to_csr(keys, vals, a.nrows, a.ncols, out_t)
