"""R-MAT / Kronecker graph generator (Graph500 style).

The workload of record for GPU graph papers: recursively partition the
adjacency matrix into quadrants with probabilities (a, b, c, d) and drop
each edge into one, bit by bit.  Defaults are the Graph500 parameters
(0.57, 0.19, 0.19, 0.05) producing the skewed degree distributions that
stress warp-divergence handling — exactly why GBTL-CUDA-era papers bench on
them.

Generation is fully vectorized: one RNG draw per (edge, level).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core.matrix import Matrix
from ..core.operators import FIRST, PLUS
from ..exceptions import InvalidValueError
from ..types import FP64, GrBType
from .common import finalize_edges

__all__ = ["rmat", "rmat_edges"]


def rmat_edges(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Raw R-MAT edge endpoints (with duplicates and self-loops).

    ``2**scale`` vertices, ``edge_factor * 2**scale`` generated edges.
    """
    d = 1.0 - (a + b + c)
    if min(a, b, c, d) < 0 or max(a, b, c, d) > 1:
        raise InvalidValueError(f"invalid R-MAT probabilities ({a}, {b}, {c}, {d})")
    if scale < 0:
        raise InvalidValueError(f"negative scale {scale}")
    n_edges = edge_factor << scale
    rng = np.random.default_rng(seed)
    rows = np.zeros(n_edges, dtype=np.int64)
    cols = np.zeros(n_edges, dtype=np.int64)
    # Per level: P(row bit set) = c + d, P(col bit set | row bit) differs.
    ab = a + b
    for _ in range(scale):
        r = rng.random(n_edges)
        row_bit = r >= ab  # falls in lower half (c or d quadrant)
        r2 = rng.random(n_edges)
        # Conditional column-bit probability within each half.
        col_bit = np.where(
            row_bit,
            r2 >= c / max(c + d, 1e-300),
            r2 >= a / max(ab, 1e-300),
        )
        rows = (rows << 1) | row_bit
        cols = (cols << 1) | col_bit
    return rows, cols


def rmat(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: Optional[int] = None,
    weighted: bool = False,
    directed: bool = False,
    typ: GrBType = FP64,
) -> Matrix:
    """R-MAT adjacency matrix with ``2**scale`` vertices.

    Self-loops are removed and duplicate edges collapsed; ``directed=False``
    symmetrises (the Graph500 convention).  ``weighted`` draws uniform
    weights in [1, 256) (Graph500 SSSP kernel convention), else all edges
    weigh 1.
    """
    rows, cols = rmat_edges(scale, edge_factor, a, b, c, seed)
    n = 1 << scale
    return finalize_edges(
        n, rows, cols, weighted=weighted, directed=directed, typ=typ, seed=seed
    )
