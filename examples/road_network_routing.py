#!/usr/bin/env python
"""Routing on a road-network-like grid: SSSP, MST, diameter, push-vs-pull.

Regular low-degree, high-diameter graphs are the counterpoint to social
networks: frontiers stay small for many iterations, which is exactly where
the push (SpMSpV) direction earns its keep.  This example computes shortest
routes and a minimum-cost road maintenance tree, then demonstrates the
direction ablation on one BFS.

Run:  python examples/road_network_routing.py [side]
"""

import sys
import time

import numpy as np

import repro as gb
from repro.algorithms import (
    bfs_levels,
    connected_components,
    graph_diameter,
    mst_prim,
    sssp,
)


def main(side: int = 48) -> None:
    print(f"building {side}x{side} weighted road grid ...")
    g = gb.generators.grid_2d(side, side, weighted=True, seed=3)
    n = g.nrows
    print(f"  {n} intersections, {g.nvals // 2} road segments")

    # --- shortest routes from the depot (corner 0) -------------------------
    depot = 0
    dist = sssp(g, depot)
    far = int(np.argmax(dist.to_dense(-np.inf)))
    print(
        f"\nshortest travel cost depot→anywhere: "
        f"max {dist.get(far):.1f} (to intersection {far})"
    )
    center = side // 2 * side + side // 2
    print(f"  cost to the city centre ({center}): {dist.get(center):.1f}")

    # --- connectivity sanity -------------------------------------------------
    comps = connected_components(g)
    assert np.all(comps.to_dense(-1) == 0), "grid must be one component"
    print("  network is fully connected")

    # --- minimum-cost maintenance tree ---------------------------------------
    total, parents = mst_prim(g, depot)
    print(f"\nminimum spanning tree: total maintenance cost {total:.1f}")
    print(f"  ({parents.nvals} intersections covered)")

    # --- structure metrics ----------------------------------------------------
    diam = graph_diameter(g, sample=8, seed=1)
    print(f"  hop diameter (sampled lower bound): {diam}")

    # --- push vs pull on a high-diameter graph ---------------------------------
    print("\nBFS direction ablation (CPU backend, wall time):")
    for direction in ("push", "pull", "auto"):
        t0 = time.perf_counter()
        levels = bfs_levels(g, depot, direction=direction)
        dt = time.perf_counter() - t0
        print(f"  direction={direction:5s}: {dt * 1e3:7.2f} ms "
              f"({levels.nvals} reached)")
    print(
        "  (small frontiers over ~{} iterations favour push; see Fig. 5 "
        "benchmark)".format(diam)
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 48)
