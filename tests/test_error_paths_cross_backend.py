"""Error paths must raise the *same* exception type on every backend.

The differential fuzzer treats exceptions as observable behaviour — an op
that raises on the reference backend must raise the identical
:class:`~repro.exceptions.GraphBLASError` subclass on cpu, cuda_sim, and
multi_sim.  This file pins the contract for each error family directly
(dimension mismatch, domain mismatch, invalid descriptor combinations,
index bounds, invalid values, non-empty build targets), using the shared
``backend`` fixture so every scenario runs on all four backends.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro as gb
from repro.core import operations as ops
from repro.core.assign import assign
from repro.core.operators import AINV, PLUS
from repro.core.semiring import PLUS_TIMES
from repro.exceptions import (
    DimensionMismatchError,
    DomainMismatchError,
    IndexOutOfBoundsError,
    InvalidValueError,
    OutputNotEmptyError,
)


@pytest.fixture
def vec4():
    return gb.Vector.from_lists([0, 1, 2], [1.0, 2.0, 3.0], 4)


@pytest.fixture
def mat34():
    return gb.Matrix.from_lists([0, 1, 2], [0, 1, 2], [1.0, 2.0, 3.0], 3, 4)


class TestDimensionMismatch:
    def test_mxv_input_size(self, backend, mat34):
        u_bad = gb.Vector.from_lists([0], [1.0], 7)
        with pytest.raises(DimensionMismatchError):
            ops.mxv(gb.Vector.sparse(gb.FP64, 3), mat34, u_bad, PLUS_TIMES)

    def test_mxv_output_size(self, backend, mat34):
        u = gb.Vector.from_lists([0], [1.0], 4)
        with pytest.raises(DimensionMismatchError):
            ops.mxv(gb.Vector.sparse(gb.FP64, 9), mat34, u, PLUS_TIMES)

    def test_mxm_inner_dimension(self, backend, mat34):
        b = gb.Matrix.from_lists([0], [0], [1.0], 7, 3)
        with pytest.raises(DimensionMismatchError):
            ops.mxm(gb.Matrix.sparse(gb.FP64, 3, 3), mat34, b, PLUS_TIMES)

    def test_ewise_operand_sizes(self, backend, vec4):
        v_bad = gb.Vector.from_lists([0], [1.0], 5)
        with pytest.raises(DimensionMismatchError):
            ops.ewise_add(gb.Vector.sparse(gb.FP64, 4), vec4, v_bad, PLUS)

    def test_mask_size(self, backend, mat34):
        u = gb.Vector.from_lists([0], [1.0], 4)
        mask_bad = gb.Vector.from_lists([0], [True], 11, gb.BOOL)
        with pytest.raises(DimensionMismatchError):
            ops.mxv(gb.Vector.sparse(gb.FP64, 3), mat34, u, PLUS_TIMES, mask=mask_bad)

    def test_assign_index_length(self, backend, vec4):
        dst = gb.Vector.sparse(gb.FP64, 4)
        with pytest.raises(DimensionMismatchError):
            assign(dst, vec4, [0, 1])  # u.size == 4, only 2 indices


class TestInvalidDescriptor:
    def test_transpose_makes_dims_invalid(self, backend, mat34):
        """TRANSPOSE_A on a rectangular matrix flips the required sizes."""
        u = gb.Vector.from_lists([0], [1.0], 4)
        d = gb.Descriptor(transpose_a=True)
        with pytest.raises(DimensionMismatchError):
            # Aᵀ is 4x3, so u must have size 3 and w size 4 — both wrong.
            ops.mxv(gb.Vector.sparse(gb.FP64, 3), mat34, u, PLUS_TIMES, desc=d)

    def test_transpose_output_shape(self, backend, mat34):
        # With TRANSPOSE_A the op computes (Aᵀ)ᵀ == A, so the output must
        # be A-shaped (3x4); the plain-transpose shape 4x3 becomes wrong.
        d = gb.Descriptor(transpose_a=True)
        with pytest.raises(DimensionMismatchError):
            ops.transpose(gb.Matrix.sparse(gb.FP64, 4, 3), mat34, desc=d)


class TestDomainMismatch:
    """np-level type errors surface as DomainMismatchError pre-flight."""

    def test_apply_negate_bool_vector(self, backend):
        v = gb.Vector.from_lists([0, 2], [True, True], 4, gb.BOOL)
        with pytest.raises(DomainMismatchError):
            ops.apply(gb.Vector.sparse(gb.BOOL, 4), v, AINV)

    def test_apply_negate_bool_matrix(self, backend):
        m = gb.Matrix.from_lists([0], [1], [True], 3, 3, gb.BOOL)
        with pytest.raises(DomainMismatchError):
            ops.apply(gb.Matrix.sparse(gb.BOOL, 3, 3), m, AINV)

    def test_domain_mismatch_is_a_type_error(self, backend):
        """Pythonic callers catching TypeError keep working."""
        v = gb.Vector.from_lists([0], [True], 2, gb.BOOL)
        with pytest.raises(TypeError):
            ops.apply(gb.Vector.sparse(gb.BOOL, 2), v, AINV)


class TestIndexOutOfBounds:
    def test_extract_vector(self, backend, vec4):
        with pytest.raises(IndexOutOfBoundsError):
            ops.extract(gb.Vector.sparse(gb.FP64, 3), vec4, [0, 2, 9])

    def test_extract_submatrix(self, backend, mat34):
        with pytest.raises(IndexOutOfBoundsError):
            ops.extract_submatrix(
                gb.Matrix.sparse(gb.FP64, 2, 2), mat34, [0, 5], [0, 1]
            )

    def test_vector_getitem(self, backend, vec4):
        with pytest.raises(IndexOutOfBoundsError):
            vec4[17]


class TestInvalidValue:
    def test_duplicate_build_without_dup(self, backend):
        with pytest.raises(InvalidValueError):
            gb.Vector.from_lists([1, 1], [1.0, 2.0], 4)

    def test_negative_dimension(self, backend):
        with pytest.raises(InvalidValueError):
            gb.Matrix.sparse(gb.FP64, -1, 4)


class TestOutputNotEmpty:
    def test_vector_build_on_nonempty(self, backend, vec4):
        with pytest.raises(OutputNotEmptyError):
            vec4.build([3], [9.0])

    def test_matrix_build_on_nonempty(self, backend, mat34):
        with pytest.raises(OutputNotEmptyError):
            mat34.build([0], [0], [9.0])


class TestInvalidProgramMode:
    """The generator's invalid-program mode covers these paths at scale.

    ``generate_invalid_program`` splices deliberately ill-formed ops into a
    valid program; every backend must raise the identical exception type at
    the same op, recorded as a ``("raised", type)`` snapshot, and the
    program must keep running identically afterwards.
    """

    def test_invalid_ops_raise_and_snapshot(self):
        from repro.testing import INVALID_OPS, generate_invalid_program
        from repro.testing.executor import execute

        seen_kinds = set()
        for seed in range(25):
            p = generate_invalid_program(seed)
            seen_kinds.update(o["op"] for o in p.ops if o["op"] in INVALID_OPS)
            snaps = execute(p, "reference")
            raised = [s for s in snaps if isinstance(s, tuple) and s[0] == "raised"]
            assert raised, "invalid program produced no exception snapshot"
            for _, exc_name in raised:
                assert exc_name in (
                    "DimensionMismatchError",
                    "DomainMismatchError",
                    "IndexOutOfBoundsError",
                )
        assert len(seen_kinds) >= 3  # mode actually varies the error family

    def test_exception_types_identical_on_every_backend(self):
        from repro.testing import generate_invalid_program
        from repro.testing.executor import DEFAULT_SPECS, run_differential

        for seed in range(10):
            d = run_differential(generate_invalid_program(seed), DEFAULT_SPECS)
            assert d is None, str(d)
