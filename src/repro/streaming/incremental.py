"""Incrementally-maintained analytics over a :class:`DynamicGraph`.

Each view caches its last result keyed on the graph's mutation sequence
number and, when a batch arrives, chooses the cheapest sound update:

- **cached** — graph unchanged since the last query: zero launches;
- **incremental** — inserts only: seed a frontier at the affected vertices
  and re-run the propagation loop from there (BFS/CC), or warm-restart the
  power iteration from the previous ranks (PageRank);
- **full recompute** — an *effective* delete that can invalidate the
  cached state (a potential BFS tree edge, any present edge for CC), or a
  delta too large for incremental to win (:class:`RecomputePolicy`).

Soundness of the incremental paths (inserts only):

- *BFS*: old levels are valid upper bounds in the new graph (every old
  path survives).  Any vertex whose true level drops lies downstream of an
  inserted edge ``(u, v)`` with ``lv[v] > lv[u] + 1``; seeding those and
  relaxing ``(MIN, FIRST)`` waves to a fixpoint yields exactly the new
  levels — integers, so bit-identical to a fresh BFS.
- *CC*: old min-labels are upper bounds; an inserted edge ``(u, v)`` with
  ``labels[v] < labels[u]`` is the only immediately-violated constraint,
  and min-label relaxation from the changed vertices converges to the
  unique fixpoint a full run reaches.
- *PageRank*: the power iteration converges to the same fixpoint from any
  start; warm-restarting from the pre-batch ranks needs only the
  iterations the perturbation displaced.  Results agree with a cold run to
  the convergence tolerance (not bit-identical — both are ``tol``-accurate
  approximations of the same fixpoint).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..algorithms.bfs import bfs_levels
from ..algorithms.components import connected_components
from ..algorithms.pagerank import pagerank
from ..core import operations as ops
from ..core.semiring import MIN_FIRST, MIN_SECOND
from ..core.vector import Vector
from ..exceptions import IndexOutOfBoundsError
from ..types import INT64
from .batch import EdgeBatch
from .graph import DynamicGraph

__all__ = [
    "RecomputePolicy",
    "ViewStats",
    "IncrementalBFS",
    "IncrementalCC",
    "IncrementalPageRank",
]


@dataclass(frozen=True)
class RecomputePolicy:
    """When is an accumulated delta too large for incremental to win?

    Fallback triggers once the pending edge ops exceed
    ``max_delta_fraction`` of the graph's edge count *and* the
    ``min_delta_ops`` floor (the floor keeps small fuzz graphs on the
    incremental path, which is the code we want exercised).
    """

    max_delta_fraction: float = 0.05
    min_delta_ops: int = 32

    def should_fallback(self, pending_ops: int, nvals: int) -> bool:
        return pending_ops > max(
            self.min_delta_ops, self.max_delta_fraction * max(nvals, 1)
        )


@dataclass
class ViewStats:
    """How each query was answered (the bench gate reads these)."""

    full_recomputes: int = 0
    incremental_updates: int = 0
    cached_hits: int = 0
    delete_fallbacks: int = 0
    size_fallbacks: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "full_recomputes": self.full_recomputes,
            "incremental_updates": self.incremental_updates,
            "cached_hits": self.cached_hits,
            "delete_fallbacks": self.delete_fallbacks,
            "size_fallbacks": self.size_fallbacks,
        }


class _View:
    """Shared observer plumbing: pending-edge tracking + dirty flag."""

    def __init__(self, graph: DynamicGraph, policy: Optional[RecomputePolicy]) -> None:
        self.graph = graph
        self.policy = policy if policy is not None else RecomputePolicy()
        self.stats = ViewStats()
        self._pending: List[Tuple[int, int]] = []  # inserted edges to seed
        self._pending_ops = 0  # all delta ops (size heuristic input)
        self._dirty_full = True
        self._seq = -1
        graph.attach(self)

    def invalidate(self) -> None:
        """Force the next query to recompute from scratch."""
        self._dirty_full = True
        self._pending.clear()
        self._pending_ops = 0

    def _is_cached(self) -> bool:
        return (
            self._seq == self.graph.seq
            and not self._dirty_full
            and not self._pending
        )

    def _note_size(self) -> None:
        if not self._dirty_full and self.policy.should_fallback(
            self._pending_ops, self.graph.base_nvals + self.graph.pending_ops
        ):
            self._dirty_full = True
            self.stats.size_fallbacks += 1
            self._pending.clear()
            self._pending_ops = 0

    # Subclasses override: is this *effective* delete survivable?
    def _delete_invalidates(self, g: DynamicGraph, u: int, v: int) -> bool:
        raise NotImplementedError

    def on_batch(self, g: DynamicGraph, batch: EdgeBatch) -> None:
        """Observer hook — runs *before* the overlay absorbs the batch."""
        if self._dirty_full:
            return
        self._pending_ops += len(batch)
        rows, cols, ins = batch.rows, batch.cols, batch.is_insert
        for k in range(len(batch)):
            u, v = int(rows[k]), int(cols[k])
            if ins[k]:
                self._pending.append((u, v))
            elif g.has_edge(u, v) and self._delete_invalidates(g, u, v):
                self._dirty_full = True
                self.stats.delete_fallbacks += 1
                self._pending.clear()
                self._pending_ops = 0
                return
        self._note_size()


class IncrementalBFS(_View):
    """BFS levels from a fixed source, maintained under edge batches."""

    def __init__(
        self,
        graph: DynamicGraph,
        source: int,
        direction: str = "auto",
        policy: Optional[RecomputePolicy] = None,
    ) -> None:
        if not 0 <= source < graph.n:
            raise IndexOutOfBoundsError(f"source {source} outside [0, {graph.n})")
        self.source = source
        self.direction = direction
        self._lv: Optional[np.ndarray] = None  # dense; -1 = unreachable
        super().__init__(graph, policy)

    def _delete_invalidates(self, g: DynamicGraph, u: int, v: int) -> bool:
        # Deleting (u, v) can only raise a level if it lay on some shortest
        # path, i.e. lv[v] == lv[u] + 1.  Everything else is irrelevant.
        lv = self._lv
        assert lv is not None
        return lv[u] >= 0 and lv[v] == lv[u] + 1

    def query(self) -> Vector:
        """Current BFS levels (sparse INT64; unreachable = absent)."""
        g = self.graph
        if self._lv is not None and self._is_cached():
            self.stats.cached_hits += 1
            return self._as_vector()
        if self._dirty_full or self._lv is None:
            levels = bfs_levels(g.matrix, self.source, self.direction)
            self._lv = np.full(g.n, -1, dtype=np.int64)
            self._lv[levels.indices_array()] = levels.values_array()
            self.stats.full_recomputes += 1
        else:
            self._relax_inserts()
            self.stats.incremental_updates += 1
        self._pending.clear()
        self._pending_ops = 0
        self._dirty_full = False
        self._seq = g.seq
        return self._as_vector()

    def _relax_inserts(self) -> None:
        g = self.graph
        m = g.matrix  # compacts: propagation runs on the materialised CSR
        lv = self._lv
        assert lv is not None
        seeds: List[int] = []
        for u, v in self._pending:
            if lv[u] >= 0 and (lv[v] < 0 or lv[v] > lv[u] + 1):
                lv[v] = lv[u] + 1
                seeds.append(v)
        frontier = np.unique(np.asarray(seeds, dtype=np.int64))
        n = g.n
        while frontier.size:
            # Wave: candidate levels for out-neighbours of changed vertices.
            f = Vector.from_lists(frontier, lv[frontier] + 1, n, INT64)
            t = Vector.sparse(INT64, n)
            ops.vxm(t, f, m, MIN_FIRST, direction=self.direction)
            ti, tv = t.indices_array(), t.values_array()
            if ti.size == 0:
                break
            better = (lv[ti] < 0) | (tv < lv[ti])
            frontier = ti[better]
            lv[frontier] = tv[better]

    def _as_vector(self) -> Vector:
        lv = self._lv
        assert lv is not None
        idx = np.nonzero(lv >= 0)[0].astype(np.int64)
        return Vector.from_lists(idx, lv[idx], self.graph.n, INT64)


class IncrementalCC(_View):
    """Min-label connected components maintained under edge batches."""

    def __init__(
        self, graph: DynamicGraph, policy: Optional[RecomputePolicy] = None
    ) -> None:
        self._labels: Optional[np.ndarray] = None  # dense min-labels
        super().__init__(graph, policy)

    def _delete_invalidates(self, g: DynamicGraph, u: int, v: int) -> bool:
        # Any effective delete can split a component (labels only rise);
        # min-propagation cannot undo a too-small label, so recompute.
        return True

    def query(self) -> Vector:
        """Current component labels (dense INT64 fixpoint)."""
        g = self.graph
        if self._labels is not None and self._is_cached():
            self.stats.cached_hits += 1
            return self._as_vector()
        if self._dirty_full or self._labels is None:
            labels = connected_components(g.matrix)
            dense = np.full(g.n, -1, dtype=np.int64)
            dense[labels.indices_array()] = labels.values_array()
            self._labels = dense
            self.stats.full_recomputes += 1
        else:
            self._relax_inserts()
            self.stats.incremental_updates += 1
        self._pending.clear()
        self._pending_ops = 0
        self._dirty_full = False
        self._seq = g.seq
        return self._as_vector()

    def _relax_inserts(self) -> None:
        g = self.graph
        m = g.matrix
        lb = self._labels
        assert lb is not None
        seeds: List[int] = []
        for u, v in self._pending:
            # New edge u→v: u may now adopt v's (smaller) label.
            if lb[v] < lb[u]:
                lb[u] = lb[v]
                seeds.append(u)
        frontier = np.unique(np.asarray(seeds, dtype=np.int64))
        n = g.n
        while frontier.size:
            f = Vector.from_lists(frontier, lb[frontier], n, INT64)
            t = Vector.sparse(INT64, n)
            # t[i] = min label among i's out-neighbours that just changed.
            ops.mxv(t, m, f, MIN_SECOND)
            ti, tv = t.indices_array(), t.values_array()
            if ti.size == 0:
                break
            better = tv < lb[ti]
            frontier = ti[better]
            lb[frontier] = tv[better]

    def _as_vector(self) -> Vector:
        lb = self._labels
        assert lb is not None
        idx = np.arange(self.graph.n, dtype=np.int64)
        return Vector.from_lists(idx, lb.copy(), self.graph.n, INT64)


class IncrementalPageRank(_View):
    """PageRank maintained by warm-restarting the power iteration.

    Unlike BFS/CC the cached state survives deletes — the iteration
    converges from any start — so only the size heuristic forces a cold
    restart.  Incremental results match a cold run to the convergence
    tolerance, not bit-for-bit.
    """

    def __init__(
        self,
        graph: DynamicGraph,
        damping: float = 0.85,
        tol: float = 1e-8,
        max_iter: int = 100,
        policy: Optional[RecomputePolicy] = None,
    ) -> None:
        self.damping = damping
        self.tol = tol
        self.max_iter = max_iter
        self._r: Optional[Vector] = None
        super().__init__(graph, policy)

    def _delete_invalidates(self, g: DynamicGraph, u: int, v: int) -> bool:
        return False  # warm restart absorbs deletes

    def query(self) -> Vector:
        """Current ranks (dense FP64; treat as read-only)."""
        g = self.graph
        if self._r is not None and self._is_cached():
            self.stats.cached_hits += 1
            return self._r
        m = g.matrix
        if self._dirty_full or self._r is None:
            self._r = pagerank(m, self.damping, self.tol, self.max_iter)
            self.stats.full_recomputes += 1
        else:
            self._r = pagerank(
                m, self.damping, self.tol, self.max_iter, warm_start=self._r
            )
            self.stats.incremental_updates += 1
        self._pending.clear()
        self._pending_ops = 0
        self._dirty_full = False
        self._seq = g.seq
        return self._r
