"""Bench table/series rendering, ASCII charts, device presets."""

import math

import pytest

from repro.bench.tables import ascii_chart, check_ordering, format_series, format_table
from repro.gpu.device import K40, P100, V100


class TestFormatTable:
    def test_wide_cells_do_not_collide(self):
        t = format_table("T", ["a", "b"], [["averyveryverylongcellvalue", 1]])
        line = t.splitlines()[-1]
        assert "averyveryverylongcellvalue" in line
        assert line.endswith("1")
        # Columns separated by at least one space.
        assert "value 1" in line or "value  1" in line or line.split()[-1] == "1"

    def test_float_formats(self):
        t = format_table("T", ["x"], [[1.5], [3e-7], [2e6]])
        assert "1.5000" in t
        assert "3.000e-07" in t
        assert "2.000e+06" in t

    def test_empty_rows(self):
        t = format_table("T", ["x"], [])
        assert "T" in t


class TestAsciiChart:
    def test_log_scaling_monotone(self):
        chart = ascii_chart([1, 2], {"s": [1e-5, 1e-2]})
        lines = [l for l in chart.splitlines() if "|" in l]
        assert lines[0].count("█") < lines[1].count("█")

    def test_nan_and_nonpositive_skipped(self):
        chart = ascii_chart([1, 2, 3], {"s": [float("nan"), 0.0, 1.0]})
        assert chart.count("|") == 1

    def test_empty_when_nothing_plottable(self):
        assert ascii_chart([1], {"s": [float("nan")]}) == ""

    def test_linear_mode(self):
        chart = ascii_chart([1, 2], {"s": [1.0, 2.0]}, log=False)
        assert "log" not in chart.splitlines()[0]

    def test_series_appended_by_format_series(self):
        out = format_series("F", "x", [1], {"s": [0.5]})
        assert "█" in out

    def test_chart_suppressible(self):
        out = format_series("F", "x", [1], {"s": [0.5]}, chart=False)
        assert "█" not in out


class TestCheckOrdering:
    def test_inf_fast_value_skipped(self):
        # A zero-time "fast" entry cannot be compared; not a violation.
        out = check_ordering({"fast": 0.0, "slow": 1.0}, ["fast"], "slow", 2.0)
        assert out == []


class TestDevicePresets:
    def test_generations_monotone_bandwidth(self):
        assert K40.mem_bandwidth_gbps < P100.mem_bandwidth_gbps < V100.mem_bandwidth_gbps

    def test_peak_flops_grow(self):
        assert K40.peak_gflops < P100.peak_gflops < V100.peak_gflops

    def test_names(self):
        assert P100.name == "SimP100" and V100.name == "SimV100"

    def test_memory_capacity(self):
        assert V100.global_mem_bytes > K40.global_mem_bytes
