"""Graph algorithms written once against the GraphBLAS frontend.

Every algorithm here runs unchanged on any registered backend — the central
claim of GBTL reproduced.  Switch with::

    with repro.use_backend("cuda_sim"):
        levels = bfs_levels(g, 0)
"""

from .apsp import apsp, apsp_from_sources
from .bc import betweenness_centrality
from .bfs import bfs_levels, bfs_parents
from .closure import reachable_from, transitive_closure
from .coloring import greedy_color, verify_coloring
from .components import component_count, connected_components
from .delta_stepping import split_light_heavy, sssp_delta_stepping
from .kcore import core_numbers, kcore
from .lpa import label_propagation, modularity
from .ktruss import ktruss
from .metrics import (
    average_degree,
    edge_count,
    graph_density,
    graph_diameter,
    in_degrees,
    is_symmetric,
    out_degrees,
    vertex_count,
    vertex_eccentricity,
)
from .mis import mis, verify_mis
from .msbfs import bfs_levels_multi
from .mst import mst_prim
from .pagerank import pagerank, row_stochastic
from .ppr import ppr, ppr_batch, ppr_transition
from .sssp import sssp, sssp_bellman_ford
from .triangles import lower_triangle, triangle_count, triangles_per_vertex

__all__ = [
    "apsp",
    "apsp_from_sources",
    "betweenness_centrality",
    "bfs_levels",
    "bfs_parents",
    "reachable_from",
    "transitive_closure",
    "greedy_color",
    "verify_coloring",
    "component_count",
    "connected_components",
    "kcore",
    "core_numbers",
    "label_propagation",
    "modularity",
    "ktruss",
    "average_degree",
    "edge_count",
    "graph_density",
    "graph_diameter",
    "in_degrees",
    "is_symmetric",
    "out_degrees",
    "vertex_count",
    "vertex_eccentricity",
    "mis",
    "verify_mis",
    "bfs_levels_multi",
    "mst_prim",
    "pagerank",
    "row_stochastic",
    "ppr",
    "ppr_batch",
    "ppr_transition",
    "sssp",
    "sssp_delta_stepping",
    "split_light_heavy",
    "sssp_bellman_ford",
    "lower_triangle",
    "triangle_count",
    "triangles_per_vertex",
]
