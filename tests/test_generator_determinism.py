"""Every graph generator must be bit-deterministic for a fixed seed.

The fuzzer stores graphs as (generator, size, seed, weighted) recipes and
regenerates them on every backend replay — and the nightly CI job replays
failures from a different process on a different machine.  That only works
if identical seeds produce identical COO data *across process boundaries*
(no dict-ordering, id()-hashing, or uninitialised-memory dependence).
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.testing.programs import GRAPH_RECIPES

REPO = Path(__file__).resolve().parents[1]


def _graph_digest(name: str, size: int, seed: int, weighted: bool) -> str:
    """SHA-256 over the exact COO content of one recipe's graph."""
    m = GRAPH_RECIPES[name](size, seed, weighted)
    ri, ci, vv = m.to_lists()
    h = hashlib.sha256()
    h.update(np.asarray(ri, dtype=np.int64).tobytes())
    h.update(np.asarray(ci, dtype=np.int64).tobytes())
    h.update(np.asarray(vv, dtype=np.float64).tobytes())
    h.update(f"{m.nrows}x{m.ncols}".encode())
    return h.hexdigest()


@pytest.mark.parametrize("name", sorted(GRAPH_RECIPES))
def test_same_seed_same_graph_in_process(name):
    for seed in (0, 7):
        a = _graph_digest(name, 14, seed, True)
        b = _graph_digest(name, 14, seed, True)
        assert a == b
    # and different seeds must (for the random families) be allowed to
    # differ — deterministic structures (cycle, path, ...) legitimately
    # ignore the seed, so only assert equality above.


def test_same_seed_same_graph_across_processes():
    """Spawn a fresh interpreter and compare digests for every generator."""
    script = (
        "import json, sys; sys.path.insert(0, 'src'); sys.path.insert(0, 'tests');"
        "from test_generator_determinism import _graph_digest;"
        "from repro.testing.programs import GRAPH_RECIPES;"
        "print(json.dumps({n: _graph_digest(n, 14, 7, True)"
        "                  for n in sorted(GRAPH_RECIPES)}))"
    )
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, cwd=REPO, check=True,
        env={"PYTHONPATH": "src", "PYTHONHASHSEED": "random"},
    )
    theirs = json.loads(out.stdout)
    ours = {n: _graph_digest(n, 14, 7, True) for n in sorted(GRAPH_RECIPES)}
    assert theirs == ours


def test_program_generation_deterministic_across_processes():
    """The fuzzer's program stream itself is process-independent."""
    script = (
        "import json, sys; sys.path.insert(0, 'src');"
        "from repro.testing import generate_program;"
        "print(json.dumps([generate_program(s).to_json() for s in range(10)]))"
    )
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, cwd=REPO, check=True,
        env={"PYTHONPATH": "src", "PYTHONHASHSEED": "random"},
    )
    from repro.testing import generate_program

    theirs = json.loads(out.stdout)
    ours = [generate_program(s).to_json() for s in range(10)]
    assert theirs == ours
