"""gbcheck unit + acceptance tests: the analyzer itself.

Covers the loader (imports, kernel registry), each dataflow rule on
minimal synthetic programs (including the interprocedural paths), the
finding/baseline machinery, the CLI, and the two tree-wide acceptance
criteria: the real tree is clean, and access-set inference reports zero
undeclared reads/writes across the cuda_sim and multi_sim kernels.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    Finding,
    Program,
    analyze_sources,
    analyze_tree,
    findings_from_json,
    findings_to_json,
)
from repro.analysis.rules import (
    check_kernel_accesses,
    check_launch_sites,
    collect_directives,
)
from repro.analysis.summaries import build_summaries, propagate_effects

REPO = Path(__file__).resolve().parent.parent
PKG_ROOT = REPO / "src" / "repro"

pytestmark = pytest.mark.no_multi_sim


def _rules(report, rule):
    return [f for f in report.findings if f.rule == rule]


# ---------------------------------------------------------------------------
# Loader
# ---------------------------------------------------------------------------


class TestLoader:
    def test_kernel_resolution_across_modules(self):
        prog = Program.from_sources(
            {
                "backends/x/kernels.py": (
                    "K = Kernel('k', lambda a: a.values, lambda a: None,\n"
                    "           accesses=lambda a: Access(reads=(a,)))\n"
                ),
                "backends/x/backend.py": (
                    "from .kernels import K\n"
                    "def go(c):\n"
                    "    launch(K, cfg, c)\n"
                ),
            }
        )
        mod = prog.module_for("backends/x/backend.py")
        resolved = prog.resolve_kernel(mod, "K")
        assert resolved is not None
        kmod, decl = resolved
        assert kmod.relpath == "backends/x/kernels.py"
        assert decl.kernel_name == "k"

    def test_alias_resolution(self):
        prog = Program.from_sources(
            {
                "backends/x/k.py": (
                    "K = Kernel('k', lambda a: a, lambda a: None,\n"
                    "           accesses=lambda a: Access(reads=(a,)))\n"
                    "ALIAS = K\n"
                ),
            }
        )
        mod = prog.module_for("backends/x/k.py")
        resolved = prog.resolve_kernel(mod, "ALIAS")
        assert resolved is not None and resolved[1].var == "K"

    def test_relative_import_resolution(self):
        prog = Program.from_sources(
            {
                "streaming/overlay.py": "def merge_overlay(base, overlay):\n    return base.values\n",
                "streaming/graph.py": (
                    "from .overlay import merge_overlay\n"
                    "def use(b, o):\n"
                    "    return merge_overlay(b, o)\n"
                ),
            }
        )
        gmod = prog.module_for("streaming/graph.py")
        resolved = prog.resolve_function(gmod, "merge_overlay")
        assert resolved is not None
        assert resolved[0].relpath == "streaming/overlay.py"


# ---------------------------------------------------------------------------
# Rule 1: access-set inference
# ---------------------------------------------------------------------------


class TestAccessInference:
    def test_undeclared_write_flagged(self):
        rep = analyze_sources(
            {
                "backends/x/k.py": (
                    "def _scale(out, s):\n"
                    "    out.values[:] = out.values * s\n"
                    "K = Kernel('scale', _scale, lambda out, s: None,\n"
                    "           accesses=lambda out, s: Access(reads=(out,)))\n"
                )
            }
        )
        assert _rules(rep, "access-undeclared-write"), rep.findings

    def test_undeclared_read_through_helper(self):
        # The read happens two calls deep; the fixpoint must surface it.
        rep = analyze_sources(
            {
                "backends/x/k.py": (
                    "def _inner(m):\n"
                    "    return m.indptr\n"
                    "def _outer(m):\n"
                    "    return _inner(m)\n"
                    "K = Kernel('r', lambda a, b: _outer(b), lambda a, b: None,\n"
                    "           accesses=lambda a, b: Access(reads=(a,)))\n"
                )
            }
        )
        found = _rules(rep, "access-undeclared-read")
        assert found and "'b'" in found[0].message, rep.findings

    def test_over_declaration_flagged(self):
        rep = analyze_sources(
            {
                "backends/x/k.py": (
                    "K = Kernel('r', lambda a, b: a.values, lambda a, b: None,\n"
                    "           accesses=lambda a, b: Access(reads=(a, b)))\n"
                )
            }
        )
        found = _rules(rep, "access-over-declared")
        assert found and "'b'" in found[0].message, rep.findings

    def test_reads_all_idiom_accepts_reads_rejects_writes(self):
        src = (
            "def _reads_all(*args, **kwargs):\n"
            "    return Access(reads=tuple(args) + tuple(kwargs.values()))\n"
            "GOOD = Kernel('g', lambda a, b: a.values + b.values,\n"
            "              lambda a, b: None, accesses=_reads_all)\n"
            "def _mut(a):\n"
            "    a.values[:] = 0\n"
            "BAD = Kernel('m', _mut, lambda a: None, accesses=_reads_all)\n"
        )
        rep = analyze_sources({"backends/x/k.py": src})
        assert not _rules(rep, "access-undeclared-read")
        bad = _rules(rep, "access-undeclared-write")
        assert bad and bad[0].symbol == "BAD", rep.findings

    def test_clean_explicit_declaration(self):
        rep = analyze_sources(
            {
                "backends/x/k.py": (
                    "def _copy(a, out):\n"
                    "    out.values[:] = a.values\n"
                    "K = Kernel('k', _copy, lambda a, out: None,\n"
                    "           accesses=lambda a, out: Access(reads=(a,), writes=(out,)))\n"
                )
            }
        )
        # (The syntactic container-mutation rule still notes the raw store;
        # only the access-set verdict is under test here.)
        assert not [f for f in rep.findings if f.rule.startswith("access-")], (
            rep.findings
        )


# ---------------------------------------------------------------------------
# Rule 2: version-bump soundness
# ---------------------------------------------------------------------------


class TestVersionBump:
    def test_local_store_without_bump_flagged(self):
        rep = analyze_sources(
            {
                "core/x.py": (
                    "def patch(m):\n"
                    "    c = m.container\n"
                    "    c.values[0] = 1.0\n"
                )
            }
        )
        assert _rules(rep, "version-bump-missing"), rep.findings

    def test_local_store_with_bump_clean(self):
        rep = analyze_sources(
            {
                "core/x.py": (
                    "def patch(m):\n"
                    "    c = m.container\n"
                    "    c.values[0] = 1.0  # gbsan: ok(container-mutation) -- overwrite; bump below flips the dirty bit\n"
                    "    c.bump_version()\n"
                )
            }
        )
        assert rep.clean, rep.findings

    def test_helper_store_discharged_by_calling_bumper(self):
        # The helper stores; its only caller bumps after the call — the
        # interprocedural pass must accept this split.
        rep = analyze_sources(
            {
                "core/x.py": (
                    "def _raw_store(c, v):\n"
                    "    c.values[0] = v  # gbsan: ok(container-mutation) -- caller bumps; split store/bump helper\n"
                    "def set_elem(c, v):\n"
                    "    _raw_store(c, v)\n"
                    "    c.bump_version()\n"
                )
            }
        )
        assert not _rules(rep, "version-bump-missing"), rep.findings

    def test_helper_store_without_caller_bump_flagged_at_call_site(self):
        rep = analyze_sources(
            {
                "core/x.py": (
                    "def _raw_store(c, v):\n"
                    "    c.values[0] = v  # gbsan: ok(container-mutation) -- caller bumps; split store/bump helper\n"
                    "def set_elem(c, v):\n"
                    "    _raw_store(c, v)\n"
                )
            }
        )
        found = _rules(rep, "version-bump-missing")
        assert found, rep.findings

    def test_fresh_container_store_exempt(self):
        rep = analyze_sources(
            {
                "core/x.py": (
                    "def build(n):\n"
                    "    c = CSRMatrix(n, n)\n"
                    "    c.values[:] = 1.0  # gbsan: ok(container-mutation) -- fresh container, pre-first-version fill\n"
                    "    return c\n"
                )
            }
        )
        assert not _rules(rep, "version-bump-missing"), rep.findings


# ---------------------------------------------------------------------------
# Rule 3: forcing-point completeness
# ---------------------------------------------------------------------------


class TestForcingPoints:
    def test_unforced_observation_flagged(self):
        rep = analyze_sources(
            {"serve/x.py": "def peek(v):\n    return v._container\n"}
        )
        assert _rules(rep, "forcing-point-missing"), rep.findings

    def test_local_force_dominates(self):
        rep = analyze_sources(
            {
                "serve/x.py": (
                    "def peek(v):\n"
                    "    v._settle()\n"
                    "    return v._container\n"
                )
            }
        )
        assert rep.clean, rep.findings

    def test_caller_force_dominates_callee_observation(self):
        # compact()-style split: the public entry settles, the helper swaps.
        rep = analyze_sources(
            {
                "streaming/x.py": (
                    "def _swap(base, arrays):\n"
                    "    base.install_arrays(*arrays)\n"
                    "def compact(m, base, arrays):\n"
                    "    m._settle()\n"
                    "    _swap(base, arrays)\n"
                )
            }
        )
        assert not _rules(rep, "forcing-point-missing"), rep.findings

    def test_undominated_call_site_flagged(self):
        rep = analyze_sources(
            {
                "streaming/x.py": (
                    "def _swap(base, arrays):\n"
                    "    base.install_arrays(*arrays)\n"
                    "def compact(m, base, arrays):\n"
                    "    _swap(base, arrays)\n"
                )
            }
        )
        assert _rules(rep, "forcing-point-missing"), rep.findings


# ---------------------------------------------------------------------------
# Findings / baseline machinery
# ---------------------------------------------------------------------------


class TestFindingsAndBaseline:
    def test_fingerprint_is_line_independent(self):
        a = Finding("x.py", 10, "argsort", "argsort on a hot path", "f")
        b = Finding("x.py", 99, "argsort", "argsort on a hot path", "f")
        assert a.fingerprint == b.fingerprint
        c = Finding("x.py", 10, "argsort", "argsort on a hot path", "g")
        assert a.fingerprint != c.fingerprint

    def test_json_roundtrip(self):
        fs = [Finding("a.py", 1, "r", "m", "s"), Finding("b.py", 2, "r2", "m2")]
        back = findings_from_json(findings_to_json(fs))
        assert back == fs

    def test_baseline_gates_only_new_findings(self, tmp_path):
        old = Finding("a.py", 1, "argsort", "known issue", "f")
        new = Finding("b.py", 2, "argsort", "fresh issue", "g")
        path = tmp_path / "baseline.json"
        Baseline().save(path, [old])
        bl = Baseline.load(path)
        assert bl.new_findings([old, new]) == [new]
        # Line drift must not un-baseline a finding.
        drifted = Finding("a.py", 55, "argsort", "known issue", "f")
        assert bl.new_findings([drifted]) == []

    def test_missing_baseline_is_empty(self, tmp_path):
        bl = Baseline.load(tmp_path / "nope.json")
        f = Finding("a.py", 1, "r", "m")
        assert bl.new_findings([f]) == [f]


# ---------------------------------------------------------------------------
# Suppression audit plumbing
# ---------------------------------------------------------------------------


class TestDirectives:
    def test_docstring_examples_are_not_directives(self):
        src = '"""Example::\n\n    x  # gbsan: ok(argsort) -- docstring sample\n"""\nX = 1\n'
        assert collect_directives(src, "x.py") == []

    def test_comment_directives_collected_with_reason(self):
        src = "import numpy as np\norder = np.argsort(k)  # gbsan: ok(argsort) -- cold diagnostics path only\n"
        ds = collect_directives(src, "x.py")
        assert len(ds) == 1
        assert ds[0].rules == ("argsort",)
        assert ds[0].has_real_reason

    def test_placeholder_reasons_rejected(self):
        for reason in ("reason", "todo", "x"):
            src = f"a = 1  # gbsan: ok(argsort) -- {reason}\n"
            (d,) = collect_directives(src, "x.py")
            assert not d.has_real_reason, reason


# ---------------------------------------------------------------------------
# Tree-wide acceptance
# ---------------------------------------------------------------------------


class TestTreeAcceptance:
    @pytest.fixture(scope="class")
    def tree_report(self):
        return analyze_tree(PKG_ROOT)

    def test_whole_tree_is_clean(self, tree_report):
        assert tree_report.findings == [], "\n".join(
            str(f) for f in tree_report.findings
        )

    def test_every_directive_in_tree_is_reasoned(self, tree_report):
        for d in tree_report.directives:
            assert d.has_real_reason, f"{d.relpath}:{d.line}: {d.reason!r}"

    def test_zero_undeclared_accesses_in_sim_backends(self):
        # Acceptance: access-set inference across every cuda_sim and
        # multi_sim kernel and launch site reports nothing undeclared.
        prog = Program.from_tree(PKG_ROOT)
        summaries = build_summaries(prog)
        propagate_effects(prog, summaries)
        findings = check_kernel_accesses(prog, summaries)
        findings += check_launch_sites(prog, summaries)
        sim = [
            f
            for f in findings
            if f.path.startswith(("backends/cuda_sim/", "backends/multi_sim/"))
            and f.rule in ("access-undeclared-read", "access-undeclared-write",
                           "launch-undeclared-access")
        ]
        assert sim == [], "\n".join(str(f) for f in sim)

    def test_analyzer_subsumes_syntactic_lint(self, tree_report):
        # Every syntactic rule is represented in the raw finding pipeline
        # (the lint's own unit tests cover rule semantics; this pins the
        # absorption wiring: suppressed-but-live argsort sites are seen raw).
        raw_rules = {f.rule for f in tree_report.raw_findings}
        assert "argsort" in raw_rules and "uncharged-numpy" in raw_rules


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _load_cli():
    spec = importlib.util.spec_from_file_location(
        "gbcheck_cli", REPO / "tools" / "gbcheck.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestCLI:
    def test_clean_tree_exits_zero_and_writes_json(self, tmp_path, capsys):
        cli = _load_cli()
        out = tmp_path / "findings.json"
        rc = cli.main(["--json", str(out), "--baseline",
                       str(REPO / "tools" / "gbcheck_baseline.json")])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["tool"] == "gbcheck" and payload["count"] == 0
        assert "clean" in capsys.readouterr().out

    def test_update_baseline_roundtrip(self, tmp_path, capsys):
        cli = _load_cli()
        bl = tmp_path / "bl.json"
        rc = cli.main(["--update-baseline", str(bl)])
        assert rc == 0
        assert json.loads(bl.read_text())["findings"] == []
