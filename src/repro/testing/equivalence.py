"""Shared result-equivalence policy for cross-backend comparisons.

The library's core claim is that one GraphBLAS program produces the same
answer on every backend.  "Same" has exactly one subtlety: semirings whose
additive reduction is a float sum (or float product) are only reproducible
to rounding, because each backend folds a row's partial products in its own
order (``reduceat`` association differs from a sequential fold, sharded
folds differ again).  Every other standard semiring *selects* stored values
(MIN/MAX/LOR/LAND/FIRST/...) and must match bit-for-bit.

This module is the single home of that policy.  The cross-backend oracle,
the distributed tests, and the differential fuzzer all import from here so
the tolerance rules cannot drift apart.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = [
    "INEXACT",
    "EXACT_FOLD_OPS",
    "product_exact",
    "reduce_exact",
    "assert_same",
    "same",
    "describe_mismatch",
]

# Semiring names whose cross-backend comparison needs a float tolerance
# (kept for the oracle's original spelling of the policy; prefer
# :func:`product_exact` which derives the answer from the semiring itself).
INEXACT = {"PLUS_TIMES", "PLUS_MIN", "PLUS_FIRST", "PLUS_SECOND"}

# Additive folds that are pure selections: associative, idempotent-or-exact,
# and insensitive to association order even in floating point.
EXACT_FOLD_OPS = frozenset(
    {"MIN", "MAX", "LOR", "LAND", "LXOR", "LXNOR", "ANY", "FIRST", "SECOND"}
)


def _dtype_of(obj: Any):
    t = getattr(obj, "type", None)
    if t is not None:
        return t.dtype
    return np.asarray(obj).dtype


def product_exact(semiring, dtype=np.float64) -> bool:
    """Whether a product over ``semiring`` must match bit-for-bit.

    Exact when the additive monoid selects values, when the domain is
    integral/boolean (integer adds are associative exactly), or when the
    multiplicative op is PAIR (the fold sums exact ones — counting).
    """
    add = semiring.add.op.name
    if add in EXACT_FOLD_OPS:
        return True
    if semiring.mult.name == "PAIR":
        return True
    return not np.issubdtype(np.dtype(dtype), np.floating)


def reduce_exact(monoid, dtype=np.float64) -> bool:
    """Whether a scalar/vector reduction over ``monoid`` is bitwise."""
    if monoid.op.name in EXACT_FOLD_OPS:
        return True
    return not np.issubdtype(np.dtype(dtype), np.floating)


def assert_same(got, expected, exact: bool = True, rtol: float = 1e-12) -> None:
    """Assert two results (Vector/Matrix/scalar) agree under the policy.

    ``exact=True`` demands the objects compare equal (bitwise values and
    identical sparsity); ``exact=False`` demands identical structure with
    values matching to ``rtol``.
    """
    # Imported lazily: this module must stay importable from conftest before
    # the core package finishes initialising.
    from ..core.matrix import Matrix
    from ..core.vector import Vector

    if exact:
        if isinstance(got, (Vector, Matrix)):
            assert got == expected, describe_mismatch(got, expected)
            return
        np.testing.assert_array_equal(np.asarray(got), np.asarray(expected))
        return
    if isinstance(got, Vector):
        np.testing.assert_array_equal(got.indices_array(), expected.indices_array())
        np.testing.assert_allclose(got.values_array(), expected.values_array(), rtol=rtol)
    elif isinstance(got, Matrix):
        assert got.shape == expected.shape
        gc, ec = got.container, expected.container
        np.testing.assert_array_equal(gc.indptr, ec.indptr)
        np.testing.assert_array_equal(gc.indices, ec.indices)
        np.testing.assert_allclose(gc.values, ec.values, rtol=rtol)
    else:
        np.testing.assert_allclose(got, expected, rtol=rtol)


def same(got, expected, exact: bool = True, rtol: float = 1e-12) -> bool:
    """Boolean form of :func:`assert_same` (the fuzzer's hot loop)."""
    try:
        assert_same(got, expected, exact=exact, rtol=rtol)
    except AssertionError:
        return False
    return True


def describe_mismatch(got, expected) -> str:
    """A short human-readable account of how two results differ."""
    from ..core.matrix import Matrix
    from ..core.vector import Vector

    if isinstance(got, Vector) and isinstance(expected, Vector):
        gi, ei = got.indices_array(), expected.indices_array()
        if gi.shape != ei.shape or not np.array_equal(gi, ei):
            return (
                f"vector sparsity differs: {gi.size} vs {ei.size} entries "
                f"(first indices {gi[:8].tolist()} vs {ei[:8].tolist()})"
            )
        gv, ev = got.values_array(), expected.values_array()
        bad = np.nonzero(gv != ev)[0]
        k = int(bad[0]) if bad.size else -1
        return f"vector values differ at {bad.size} positions (first: idx {gi[k]}: {gv[k]!r} vs {ev[k]!r})"
    if isinstance(got, Matrix) and isinstance(expected, Matrix):
        if got.shape != expected.shape:
            return f"matrix shapes differ: {got.shape} vs {expected.shape}"
        gc, ec = got.container, expected.container
        if not np.array_equal(gc.indptr, ec.indptr) or not np.array_equal(
            gc.indices, ec.indices
        ):
            return f"matrix sparsity differs ({gc.nvals} vs {ec.nvals} entries)"
        bad = np.nonzero(gc.values != ec.values)[0]
        return f"matrix values differ at {bad.size} stored positions"
    return f"results differ: {got!r} vs {expected!r}"
