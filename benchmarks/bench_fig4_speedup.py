"""Figure 4 — speedup of the fast backends over the sequential reference.

Reconstructed experiment: the bar chart every backend paper ends with — per
primitive, speedup of cpu and cuda_sim over the reference backend at a fixed
scale.  Shape claims: every bar > 1 for the heavy primitives; cuda_sim bars
exceed cpu bars for the product kernels (massively parallel wins), reported
as modeled-device-time vs measured wall time per DESIGN.md.
"""

from __future__ import annotations

import pytest

import repro as gb
from repro.bench.harness import time_operation
from repro.bench.tables import format_table
from repro.bench.workloads import get_workload, random_frontier
from repro.core import operations as ops
from repro.core.monoid import PLUS_MONOID
from repro.core.operators import ABS
from repro.core.semiring import LOR_LAND, MIN_PLUS, PLUS_TIMES

from conftest import bench_backend, save_table

WORKLOAD = "rmat_s10"


def cases():
    g = get_workload(WORKLOAD)
    n = g.nrows
    frontier = random_frontier(n, 32, seed=2)
    dense = gb.Vector.full(1.0, n, gb.FP64)
    small = gb.generators.rmat(scale=7, edge_factor=4, seed=23)

    def mxv_dense():
        w = gb.Vector.sparse(gb.FP64, n)
        return ops.mxv(w, g, dense, PLUS_TIMES)

    def mxv_sparse_frontier():
        w = gb.Vector.sparse(gb.FP64, n)
        return ops.vxm(w, frontier, g, LOR_LAND)

    def mxv_tropical():
        w = gb.Vector.sparse(gb.FP64, n)
        return ops.mxv(w, g, dense, MIN_PLUS)

    def mxm():
        c = gb.Matrix.sparse(gb.FP64, small.nrows, small.ncols)
        return ops.mxm(c, small, small, PLUS_TIMES)

    def apply_():
        c = gb.Matrix.sparse(gb.FP64, n, n)
        return ops.apply(c, g, ABS)

    def reduce_rows():
        w = gb.Vector.sparse(gb.FP64, n)
        return ops.reduce_to_vector(w, g, PLUS_MONOID)

    return [
        ("mxv(dense)", mxv_dense),
        ("vxm(frontier)", mxv_sparse_frontier),
        ("mxv(minplus)", mxv_tropical),
        ("mxm", mxm),
        ("apply", apply_),
        ("reduceRows", reduce_rows),
    ]


_CASES = cases()


@pytest.mark.parametrize("backend", ["reference", "cpu", "cuda_sim"])
@pytest.mark.parametrize("case", [name for name, _ in _CASES])
def test_fig4_case(benchmark, backend, case):
    fn = dict(_CASES)[case]
    bench_backend(benchmark, backend, fn, rounds=1 if backend == "reference" else 3)


def test_fig4_render(benchmark):
    def build():
        rows = []
        gpu_speedups = {}
        for name, fn in _CASES:
            ref = time_operation("reference", fn, repeat=1).seconds
            cpu = time_operation("cpu", fn, repeat=3).seconds
            gpu = time_operation("cuda_sim", fn).seconds
            rows.append([name, round(ref / cpu, 1), round(ref / gpu, 1)])
            gpu_speedups[name] = ref / gpu
        fig = format_table(
            f"Figure 4 — speedup over reference backend on {WORKLOAD} (×)",
            ["primitive", "cpu", "cuda_sim"],
            rows,
        )
        save_table("fig4_speedup", fig)
        # Shape: every gpu bar for heavy kernels clears 10x at this scale.
        for name in ("mxv(dense)", "mxv(minplus)", "mxm", "apply"):
            assert gpu_speedups[name] > 10.0, f"{name}: {gpu_speedups[name]:.1f}x"
        return fig

    benchmark.pedantic(build, rounds=1, iterations=1)
