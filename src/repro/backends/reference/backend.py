"""The reference backend — GBTL's "sequential" analogue.

Correctness-first, pure-Python kernels.  Every operation converts the shared
NumPy containers into plain dictionaries, loops, and converts back.  Slow by
construction; it is the oracle the other backends are verified against and
the sequential baseline in every benchmark table.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ...containers.csr import CSRMatrix
from ...containers.sparsevec import SparseVector
from ...core.descriptor import DEFAULT, Descriptor
from ...core.monoid import Monoid
from ...core.operators import BinaryOp, UnaryOp
from ...core.semiring import Semiring
from ...types import promote
from ..base import Backend
from .kernels import (
    dict_to_mat,
    dict_to_vec,
    ewise_intersect_dict,
    ewise_union_dict,
    mat_to_dict,
    spgemm_dict,
    spmv_dict,
    vec_to_dict,
)

__all__ = ["ReferenceBackend"]


class ReferenceBackend(Backend):
    """Pure-Python oracle backend."""

    name = "reference"

    # ------------------------------------------------------------------
    # Products
    # ------------------------------------------------------------------

    def mxv(
        self,
        a: CSRMatrix,
        u: SparseVector,
        semiring: Semiring,
        mask: Optional[SparseVector] = None,
        desc: Descriptor = DEFAULT,
        direction: str = "auto",
        csc=None,
    ) -> SparseVector:
        out_t = semiring.result_type(a.type, u.type)
        t = spmv_dict(mat_to_dict(a), vec_to_dict(u), semiring, out_t)
        return dict_to_vec(t, a.nrows, out_t)

    def vxm(
        self,
        u: SparseVector,
        a: CSRMatrix,
        semiring: Semiring,
        mask: Optional[SparseVector] = None,
        desc: Descriptor = DEFAULT,
        direction: str = "auto",
        csc=None,
    ) -> SparseVector:
        # Column picture without materialising Aᵀ: scatter u[k]·A[k, :].
        out_t = semiring.result_type(u.type, a.type)
        acc: dict = {}
        u_d = vec_to_dict(u)
        for k, uv in u_d.items():
            cidx, cvals = a.row(k)
            for j, av in zip(cidx, cvals):
                prod = semiring.multiply(uv, av)
                j = int(j)
                if j in acc:
                    acc[j] = semiring.combine(acc[j], prod)
                else:
                    acc[j] = prod
        return dict_to_vec(acc, a.ncols, out_t)

    def mxm(
        self,
        a: CSRMatrix,
        b: CSRMatrix,
        semiring: Semiring,
        mask: Optional[CSRMatrix] = None,
        desc: Descriptor = DEFAULT,
    ) -> CSRMatrix:
        out_t = semiring.result_type(a.type, b.type)
        t = spgemm_dict(mat_to_dict(a), mat_to_dict(b), semiring, out_t)
        return dict_to_mat(t, a.nrows, b.ncols, out_t)

    # ------------------------------------------------------------------
    # Elementwise
    # ------------------------------------------------------------------

    def ewise_add_vector(self, u: SparseVector, v: SparseVector, op: BinaryOp) -> SparseVector:
        out_t = op.result_type(promote(u.type, v.type))
        return dict_to_vec(
            ewise_union_dict(vec_to_dict(u), vec_to_dict(v), op, out_t), u.size, out_t
        )

    def ewise_mult_vector(self, u: SparseVector, v: SparseVector, op: BinaryOp) -> SparseVector:
        out_t = op.result_type(promote(u.type, v.type))
        return dict_to_vec(
            ewise_intersect_dict(vec_to_dict(u), vec_to_dict(v), op, out_t), u.size, out_t
        )

    def ewise_add_matrix(self, a: CSRMatrix, b: CSRMatrix, op: BinaryOp) -> CSRMatrix:
        out_t = op.result_type(promote(a.type, b.type))
        ad, bd = mat_to_dict(a), mat_to_dict(b)
        out: dict = {}
        for i in ad.keys() | bd.keys():
            out[i] = ewise_union_dict(ad.get(i, {}), bd.get(i, {}), op, out_t)
        return dict_to_mat(out, a.nrows, a.ncols, out_t)

    def ewise_mult_matrix(self, a: CSRMatrix, b: CSRMatrix, op: BinaryOp) -> CSRMatrix:
        out_t = op.result_type(promote(a.type, b.type))
        ad, bd = mat_to_dict(a), mat_to_dict(b)
        out: dict = {}
        for i in ad.keys() & bd.keys():
            row = ewise_intersect_dict(ad[i], bd[i], op, out_t)
            if row:
                out[i] = row
        return dict_to_mat(out, a.nrows, a.ncols, out_t)

    # ------------------------------------------------------------------
    # Apply / reduce
    # ------------------------------------------------------------------

    def apply_vector(self, u: SparseVector, op: UnaryOp) -> SparseVector:
        out_t = op.result_type(u.type)
        return dict_to_vec(
            {i: op(v) for i, v in vec_to_dict(u).items()}, u.size, out_t
        )

    def apply_matrix(self, a: CSRMatrix, op: UnaryOp) -> CSRMatrix:
        out_t = op.result_type(a.type)
        d = {
            i: {j: op(v) for j, v in row.items()}
            for i, row in mat_to_dict(a).items()
        }
        return dict_to_mat(d, a.nrows, a.ncols, out_t)

    def reduce_vector_scalar(self, u: SparseVector, monoid: Monoid) -> Any:
        t = monoid.result_type(u.type)
        acc = monoid.identity(t)
        for v in u.values:
            acc = monoid(acc, v)
        return t.cast(acc)

    def reduce_matrix_vector(self, a: CSRMatrix, monoid: Monoid) -> SparseVector:
        out_t = monoid.result_type(a.type)
        out: dict = {}
        for i in range(a.nrows):
            _, vals = a.row(i)
            if vals.size == 0:
                continue
            acc = vals[0]
            for v in vals[1:]:
                acc = monoid(acc, v)
            out[i] = acc
        return dict_to_vec(out, a.nrows, out_t)

    def reduce_matrix_scalar(self, a: CSRMatrix, monoid: Monoid) -> Any:
        t = monoid.result_type(a.type)
        acc = monoid.identity(t)
        for v in a.values:
            acc = monoid(acc, v)
        return t.cast(acc)
