"""The lazy tape: recording, forcing, and the optimizing flush.

Vector-valued frontend operations call :func:`emit` with a run closure
(their original eager body over resolved containers).  When recording is
active the call appends a :class:`~repro.lazy.ir.Node` to the process-wide
tape and returns immediately; otherwise the closure executes on the spot —
eager mode is the same code path minus the tape, which is what makes
``lazy_disabled()`` bit-identical by construction.

Evaluation is forced at *observation points*:

- reading a Vector's container (extract to host, ``to_lists``, equality,
  ``dup`` — anything that needs values);
- a scalar reduction (its value feeds Python control flow immediately);
- mutating any container (``set_element``/``build``/``clear``/``resize``
  would otherwise be reordered against recorded readers);
- ``Device.profiler`` reads and device resets (hooked via
  :func:`repro.gpu.device.set_observe_hook`);
- leaving a ``use_backend`` scope (hooked via
  :func:`repro.backends.dispatch.set_sync_hook`);
- explicit :func:`wait`, and every lazy-config transition.

A flush runs the optimizer over the whole pending tape in program order:
dead-materialization elimination (liveness from the owning handles), fusion,
mask sinking, loop-level direction selection, and whole-loop capture — see
:mod:`repro.lazy.passes` and :mod:`repro.lazy.capture`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple
import weakref

from ..backends.dispatch import current_backend, set_sync_hook
from ..gpu import reuse
from ..gpu.device import get_device, set_observe_hook
from . import config
from .ir import LazyValue, Node, RunFn

__all__ = [
    "arg",
    "arg_mask",
    "emit",
    "emit_scalar",
    "force",
    "out_arg",
    "recording",
    "sync",
    "tape_len",
    "wait",
]

_TAPE: List[Node] = []
_FLUSHING = False


def tape_len() -> int:
    """Number of pending recorded nodes (diagnostics/tests)."""
    return len(_TAPE)


def recording() -> bool:
    """True when frontend ops should record instead of executing."""
    if _FLUSHING:
        return False
    mode = config._FLAGS.mode
    if mode == "off":
        return False
    if mode == "on":
        return True
    return bool(getattr(current_backend(), "lazy_by_default", False))


# ---------------------------------------------------------------------------
# Recording helpers (used by the frontend record sites)
# ---------------------------------------------------------------------------


def arg(v: Any) -> Any:
    """A handle's recorded form: its pending LazyValue, else its container."""
    lv = getattr(v, "_lazy", None)
    if lv is not None:
        return lv
    return v._container


def arg_mask(mask: Any) -> Any:
    """``arg`` for an optional mask handle."""
    if mask is None:
        return None
    return arg(mask)


def out_arg(v: Any, mask: Any, accum: Any) -> Any:
    """The recorded form of an op's output operand.

    With no mask and no accumulator the merge pipeline's result is
    independent of the output's prior *values* (a trivial merge replaces
    them wholesale), so the current concrete container is recorded instead
    of the pending value — severing the dependence edge on the previous
    producer is what lets dead-materialization elimination drop overwritten
    temporaries.  Size and type are the only properties the merge reads,
    and both are invariant under replacement.
    """
    if mask is None and accum is None:
        return v._container
    return arg(v)


def emit(
    op: str,
    run: RunFn,
    inputs: Dict[str, Any],
    params: Dict[str, Any],
    outs: Tuple[Any, ...],
) -> Any:
    """Record one op (lazy) or execute its run closure now (eager).

    Returns the first output handle, matching the frontend convention of
    returning ``out`` for chaining.
    """
    if recording():
        node = Node(op, run, inputs, params, current_backend())
        lvs = []
        for o in outs:
            lv = LazyValue(node, weakref.ref(o))
            o._lazy = lv
            lvs.append(lv)
        node.outputs = tuple(lvs)
        _TAPE.append(node)
        return outs[0]
    resolved = {k: _concrete(v) for k, v in inputs.items()}
    r = run(resolved, params)
    results = r if len(outs) > 1 else (r,)
    for o, c in zip(outs, results):
        o._lazy = None
        o._replace(c)
    return outs[0]


def emit_scalar(
    op: str, run: RunFn, inputs: Dict[str, Any], params: Dict[str, Any]
) -> Any:
    """Record a scalar-producing op and force it immediately.

    A reduction's value feeds Python control flow, so it is an observation
    point — but recording it first lets the fusion pass see the reduce
    adjacent to its producer before the flush executes either.
    """
    if recording():
        node = Node(op, run, inputs, params, current_backend(), scalar=True)
        _TAPE.append(node)
        sync()
        return node.value
    resolved = {k: _concrete(v) for k, v in inputs.items()}
    return run(resolved, params)


# ---------------------------------------------------------------------------
# Forcing
# ---------------------------------------------------------------------------


def _concrete(v: Any) -> Any:
    if isinstance(v, LazyValue):
        return force(v)
    return v


def force(lv: LazyValue) -> Any:
    """Materialise one pending value (flushes the whole tape)."""
    if lv.container is None:
        sync(root=lv)
        if lv.container is None:  # pragma: no cover - scheduling invariant
            raise RuntimeError(
                f"lazy value for {lv.node.op} not materialised by flush"
            )
    return lv.container


def sync(root: Optional[LazyValue] = None) -> None:
    """Force the whole pending tape in program order (reentrancy-guarded)."""
    global _FLUSHING
    if _FLUSHING or not _TAPE:
        return
    _FLUSHING = True
    try:
        while _TAPE:
            tape = _TAPE[:]
            del _TAPE[:]
            _flush(tape, root)
    finally:
        _FLUSHING = False


def wait() -> None:
    """Explicit barrier: force pending work, close open capture aggregates."""
    sync()
    from . import capture

    capture.close(get_device())


# ---------------------------------------------------------------------------
# Flush: liveness -> passes -> execution
# ---------------------------------------------------------------------------


def _live_nodes(tape: List[Node], root: Optional[LazyValue]) -> List[Node]:
    """Program-ordered live subset of the tape (dead-materialization cut).

    Roots: scalar nodes (their value is being waited on), outputs that are
    still the current value of a live handle, and the explicit force
    target.  Everything reachable backwards through pending inputs is live;
    the rest produced values nobody can ever observe.
    """
    live: set = set()

    def mark(node: Node) -> None:
        stack = [node]
        while stack:
            n = stack.pop()
            if id(n) in live or n.done:
                continue
            live.add(id(n))
            for v in n.inputs.values():
                if isinstance(v, LazyValue) and v.container is None:
                    stack.append(v.node)

    for node in tape:
        if node.scalar:
            mark(node)
            continue
        for lv in node.outputs:
            owner = lv.owner() if lv.owner is not None else None
            if owner is not None and getattr(owner, "_lazy", None) is lv:
                mark(node)
                break
    if root is not None and root.container is None:
        mark(root.node)
    return [n for n in tape if id(n) in live]


def _flush(tape: List[Node], root: Optional[LazyValue]) -> None:
    from . import capture, passes

    flags = config._FLAGS
    nodes = _live_nodes(tape, root) if flags.dme else list(tape)
    if not nodes:
        return
    be = nodes[0].backend
    uniform = all(n.backend is be for n in nodes)
    if uniform and flags.fuse:
        nodes = passes.fuse(nodes)
    gpu_single = uniform and bool(getattr(be, "lazy_by_default", False))
    if gpu_single:
        if flags.sink:
            passes.sink(nodes)
        if flags.direction:
            passes.choose_directions(nodes)
        if flags.dme:
            passes.register_iso_hints(nodes)
    agg = None
    if gpu_single and flags.capture and reuse.graphs_enabled():
        agg = capture.enter(nodes)
    if agg is None:
        for node in nodes:
            _execute(node)
        return
    dev = get_device()
    prev = dev.active_graph
    dev.active_graph = agg
    try:
        for node in nodes:
            _execute(node)
    finally:
        dev.active_graph = prev


def _resolve(v: Any) -> Any:
    if isinstance(v, LazyValue):
        if v.container is None:  # pragma: no cover - scheduling invariant
            raise RuntimeError(
                f"input from {v.node.op} consumed before its producer ran"
            )
        return v.container
    return v


def _execute(node: Node) -> None:
    inp = {k: _resolve(v) for k, v in node.inputs.items()}
    r = node.run(inp, node.params)
    outs = node.outputs
    if node.scalar:
        if outs:
            containers = list(r[:-1])
            node.value = r[-1]
        else:
            node.value = r
            containers = []
    elif len(outs) > 1:
        containers = list(r)
    else:
        containers = [r]
    for lv, c in zip(outs, containers):
        lv.container = c
        owner = lv.owner() if lv.owner is not None else None
        if owner is not None and getattr(owner, "_lazy", None) is lv:
            owner._replace(c)
            owner._lazy = None
    node.done = True


# ---------------------------------------------------------------------------
# Observation hooks (device + dispatch integration)
# ---------------------------------------------------------------------------


def _observe(event: str) -> None:
    from . import capture

    if event == "reset":
        # A device reset abandons the measurement: execute pending
        # semantics (the handles stay valid) into the profiler that is
        # about to be wiped, then drop the capture state with it.
        sync()
        capture.discard(get_device())
        return
    sync()
    capture.close(get_device())


set_observe_hook(_observe)
set_sync_hook(wait)
