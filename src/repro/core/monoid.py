"""GraphBLAS monoids: an associative binary operator plus its identity.

A monoid is what ``reduce`` and the additive half of a semiring require.  The
identity may depend on the domain (e.g. the identity of MIN over INT32 is
``INT32_MAX`` but over FP64 is ``+inf``), so identities here are functions of
the :class:`~repro.types.GrBType`.

A *terminal* (annihilator) value, when present, lets backends short-circuit
reductions (e.g. LOR can stop at the first True) — the same early-exit trick
GBTL-CUDA's BFS relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

import numpy as np

from ..types import BOOL, GrBType
from .operators import BinaryOp, LAND, LOR, LXNOR, LXOR, MAX, MIN, PLUS, TIMES, ANY

__all__ = [
    "Monoid",
    "make_monoid",
    "PLUS_MONOID",
    "TIMES_MONOID",
    "MIN_MONOID",
    "MAX_MONOID",
    "LOR_MONOID",
    "LAND_MONOID",
    "LXOR_MONOID",
    "LXNOR_MONOID",
    "ANY_MONOID",
    "MONOIDS",
]


def _min_identity(t: GrBType) -> Any:
    """Identity of MIN: the largest representable value of the domain."""
    if t.is_floating:
        return t.cast(np.inf)
    if t.is_boolean:
        return t.cast(True)
    return t.cast(np.iinfo(t.dtype).max)


def _max_identity(t: GrBType) -> Any:
    """Identity of MAX: the smallest representable value of the domain."""
    if t.is_floating:
        return t.cast(-np.inf)
    if t.is_boolean:
        return t.cast(False)
    return t.cast(np.iinfo(t.dtype).min)


@dataclass(frozen=True)
class Monoid:
    """An associative, commutative binary operator with identity.

    Attributes
    ----------
    op:
        The underlying :class:`BinaryOp` (must be associative).
    identity_fn:
        Maps a domain to the identity element in that domain.
    terminal_fn:
        Optional: maps a domain to an annihilator value ``a`` with
        ``op(a, x) == a`` for all ``x``, enabling early exit.
    """

    name: str
    op: BinaryOp = field(compare=False)
    identity_fn: Callable[[GrBType], Any] = field(compare=False)
    terminal_fn: Optional[Callable[[GrBType], Any]] = field(
        default=None, compare=False
    )

    def __post_init__(self) -> None:
        if not self.op.associative:
            raise ValueError(
                f"monoid {self.name!r} requires an associative operator, "
                f"got {self.op.name}"
            )

    def identity(self, t: GrBType) -> Any:
        return self.identity_fn(t)

    def terminal(self, t: GrBType) -> Optional[Any]:
        return None if self.terminal_fn is None else self.terminal_fn(t)

    def __call__(self, x: Any, y: Any) -> Any:
        return self.op(x, y)

    def result_type(self, t: GrBType) -> GrBType:
        # A monoid maps DxD->D; for logical monoids the domain is BOOL.
        return self.op.result_type(t)

    def reduce_array(self, values: np.ndarray, t: GrBType) -> Any:
        """Reduce a 1-D NumPy array of stored values to a scalar.

        Empty input reduces to the identity (per spec, for typed reduce with
        no accumulator the result of reducing no entries is the identity).
        """
        if values.size == 0:
            return self.identity(t)
        reducer = _NP_REDUCERS.get(self.op.name)
        if reducer is not None:
            return t.cast(reducer(values))
        acc = values[0]
        for v in values[1:]:
            acc = self.op(acc, v)
        return acc

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Monoid({self.name})"


_NP_REDUCERS: Dict[str, Callable[[np.ndarray], Any]] = {
    "PLUS": np.sum,
    "TIMES": np.prod,
    "MIN": np.min,
    "MAX": np.max,
    "LOR": np.any,
    "LAND": np.all,
    "LXOR": lambda v: bool(np.count_nonzero(v) % 2),
    "LXNOR": lambda v: not bool(np.count_nonzero(np.logical_not(v)) % 2),
    "ANY": lambda v: v[0],
}

MONOIDS: Dict[str, Monoid] = {}


def make_monoid(name, op, identity_fn, terminal_fn=None) -> Monoid:
    """Create and register a :class:`Monoid`."""
    m = Monoid(name, op, identity_fn, terminal_fn)
    MONOIDS[name] = m
    return m


PLUS_MONOID = make_monoid("PLUS_MONOID", PLUS, lambda t: t.cast(0))
TIMES_MONOID = make_monoid(
    "TIMES_MONOID", TIMES, lambda t: t.cast(1), terminal_fn=lambda t: t.cast(0)
)
MIN_MONOID = make_monoid("MIN_MONOID", MIN, _min_identity, terminal_fn=_max_identity)
MAX_MONOID = make_monoid("MAX_MONOID", MAX, _max_identity, terminal_fn=_min_identity)
LOR_MONOID = make_monoid(
    "LOR_MONOID", LOR, lambda t: BOOL.cast(False), terminal_fn=lambda t: BOOL.cast(True)
)
LAND_MONOID = make_monoid(
    "LAND_MONOID", LAND, lambda t: BOOL.cast(True), terminal_fn=lambda t: BOOL.cast(False)
)
LXOR_MONOID = make_monoid("LXOR_MONOID", LXOR, lambda t: BOOL.cast(False))
LXNOR_MONOID = make_monoid("LXNOR_MONOID", LXNOR, lambda t: BOOL.cast(True))
# ANY has no true identity; the spec's GxB_ANY monoid treats any stored value
# as terminal.  We use the domain zero as a formal identity (it is never
# observed because reduce of the empty set is handled explicitly).
ANY_MONOID = make_monoid(
    "ANY_MONOID", ANY, lambda t: t.cast(0), terminal_fn=lambda t: None
)
