"""Device-residency tracking for simulated backends.

A backend that models PCIe traffic needs to know which containers are
already on the device: operands are uploaded on first use, cached, and
re-uploaded only when the host copy mutated (version stamp mismatch).
This was born inside the cuda_sim backend; the multi-device backend needs
one resident set *per device*, so the bookkeeping lives here as a class
parameterised by the device it accounts against.

The device is supplied as a zero-argument callable rather than an object so
the single-GPU backend keeps its historical ``reset_device()`` semantics
(the global device can be swapped out underneath it); per-shard devices in
a cluster bind a fixed device instead.

Every state transition notifies the sanitizer (when enabled) so gbsan's
shadow resident set stays exact: marks, evictions, and re-uploads are
the ground truth its residency and lifetime checkers compare kernel
accesses against.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Optional

from ..sanitizer import runtime as _gbsan
from .device import Device, get_device
from .kernel import charge_transfer

__all__ = ["ResidentSet", "RESIDENT_CAP"]

#: LRU capacity: containers tracked per device before eviction.
RESIDENT_CAP = 256


class ResidentSet:
    """LRU set of containers resident in one simulated device's memory.

    Entries map ``id(container)`` to ``(container, device buffer, version at
    upload)``; strong refs pin ids (no reuse while cached).  The version
    stamp is the container's mutation counter — a stale stamp means the host
    copy was mutated in place and the device copy is dirty, so the next use
    re-uploads.  Evicting frees the simulated device memory.
    """

    def __init__(
        self,
        device_fn: Optional[Callable[[], Device]] = None,
        cap: int = RESIDENT_CAP,
    ) -> None:
        self._device_fn = device_fn or get_device
        self._cap = cap
        self._entries: "OrderedDict[int, Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, container: Any) -> bool:
        return id(container) in self._entries

    def is_clean(self, container: Any) -> bool:
        """True when the device copy exists and matches the host version."""
        entry = self._entries.get(id(container))
        return entry is not None and entry[2] == getattr(container, "version", 0)

    def ensure(self, container: Any) -> None:
        """Charge an H2D upload unless the container is clean on-device."""
        from . import reuse

        key = id(container)
        entry = self._entries.get(key)
        version = getattr(container, "version", 0)
        dev = self._device_fn()
        san = _gbsan.ACTIVE
        if entry is not None:
            if entry[2] == version:
                self._entries.move_to_end(key)
                if reuse.elision_enabled():
                    dev.allocator.record_h2d_elided(container.nbytes)
                if san is not None:
                    # Self-heal a sanitizer enabled mid-session: the shadow
                    # learns about clean entries it never saw marked.
                    san.on_resident_mark(dev, container, entry[1])
                return
            # Host copy mutated since upload: the device copy is stale.
            # Free the old block (it lands in the pool) and re-upload.
            entry[1].free()
            del self._entries[key]
            if san is not None:
                san.on_resident_evict(dev, container)
        nbytes = container.nbytes
        # Lazy-optimizer payload demotion (see repro.lazy.passes): an
        # iso-valued payload registered in the device's hint table is filled
        # on-device rather than copied, so the upload moves structure only.
        # The skipped bytes are *accounted* as elided — transfer conservation
        # (repro.testing.conservation) requires every saved byte to appear in
        # the elided counter, and the elision flag to gate the whole
        # mechanism.
        if dev.h2d_hints and reuse.elision_enabled():
            skip = dev.h2d_hints.get((key, version), 0.0)
            if skip:
                nbytes = max(nbytes - skip, 0.0)
                dev.allocator.record_h2d_elided(skip)
        charge_transfer(nbytes, "h2d", device=dev, container=container)
        self.mark(container, record_h2d=True)

    def mark(self, container: Any, record_h2d: bool = False) -> None:
        """Record the container as device-resident (clean) without a copy."""
        key = id(container)
        version = getattr(container, "version", 0)
        entry = self._entries.get(key)
        dev = self._device_fn()
        san = _gbsan.ACTIVE
        if entry is not None:
            # Refresh the stamp: device-produced data is clean by definition.
            self._entries[key] = (container, entry[1], version)
            self._entries.move_to_end(key)
            if san is not None:
                san.on_resident_mark(dev, container, entry[1])
            return
        buf = dev.allocator.reserve(container.nbytes, record_h2d=record_h2d)
        self._entries[key] = (container, buf, version)
        self._entries.move_to_end(key)
        if san is not None:
            san.on_resident_mark(dev, container, buf)
        while len(self._entries) > self._cap:
            _, (old_container, old_buf, _) = self._entries.popitem(last=False)
            old_buf.free()
            if san is not None:
                san.on_resident_evict(dev, old_container)

    def evict_all(self) -> None:
        """Forget residency (e.g. between benchmark repetitions)."""
        san = _gbsan.ACTIVE
        dev = self._device_fn() if san is not None else None
        for container, buf, _ in self._entries.values():
            buf.free()
            if san is not None and dev is not None:
                san.on_resident_evict(dev, container)
        self._entries.clear()
