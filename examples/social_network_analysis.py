#!/usr/bin/env python
"""Social-network analysis on a scale-free graph.

The motivating workload of the GraphBLAS papers: a skewed, scale-free
"social network" (R-MAT), analysed with influence ranking (PageRank),
cohesion (triangles, k-truss cores), independent sets (MIS — e.g.
non-interfering ad placements), and reach (BFS from the top hub).

Run:  python examples/social_network_analysis.py [scale]
"""

import sys

import numpy as np

import repro as gb
from repro.algorithms import (
    bfs_levels,
    ktruss,
    mis,
    out_degrees,
    pagerank,
    triangle_count,
    triangles_per_vertex,
    verify_mis,
)


def main(scale: int = 11) -> None:
    print(f"generating R-MAT social network, scale={scale} ...")
    g = gb.generators.rmat(scale=scale, edge_factor=16, seed=1)
    n = g.nrows
    print(f"  {n} users, {g.nvals // 2} friendships")

    # --- degree structure ---------------------------------------------------
    deg = out_degrees(g)
    deg_dense = deg.to_dense(0)
    hubs = np.argsort(deg_dense)[::-1][:5]
    print("\ntop-5 hubs by degree:")
    for h in hubs:
        print(f"  user {h}: {deg_dense[h]} friends")

    # --- influence ranking --------------------------------------------------
    pr = pagerank(g, damping=0.85, tol=1e-10)
    pr_dense = pr.to_dense(0.0)
    influencers = np.argsort(pr_dense)[::-1][:5]
    print("\ntop-5 influencers by PageRank:")
    for i in influencers:
        print(f"  user {i}: rank {pr_dense[i]:.5f} (degree {deg_dense[i]})")

    # --- cohesion -------------------------------------------------------------
    tris = triangle_count(g)
    per = triangles_per_vertex(g)
    print(f"\ntriangles: {tris} total")
    if per.nvals:
        busiest = int(np.argmax(per.to_dense(0)))
        print(f"  most clustered user: {busiest} ({per.get(busiest)} triangles)")

    core = ktruss(g, 4)
    members = np.flatnonzero(core.row_degrees())
    print(f"  4-truss core: {core.nvals // 2} edges over {members.size} users")

    # --- independent set ------------------------------------------------------
    s = mis(g, seed=42)
    assert verify_mis(g, s)
    print(f"\nmaximal independent set: {s.nvals} users ({100 * s.nvals / n:.1f}%)")

    # --- reach from the top influencer -----------------------------------------
    src = int(influencers[0])
    levels = bfs_levels(g, src)
    lv = levels.to_dense(-1)
    print(f"\nreach of user {src}:")
    for d in range(int(lv.max()) + 1):
        print(f"  {np.count_nonzero(lv == d):6d} users at distance {d}")
    print(f"  {np.count_nonzero(lv == -1):6d} unreachable")

    # The same analysis runs verbatim on the simulated GPU:
    with gb.use_backend("cuda_sim"):
        gpu_levels = bfs_levels(g, src)
    assert gpu_levels == levels
    dev = gb.gpu.get_device()
    print(
        f"\n(cuda_sim re-ran the BFS in {dev.profiler.kernel_time_us:.0f} "
        f"simulated µs over {dev.profiler.launch_count} kernel launches)"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 11)
