"""Figure 7 (ablation) — delta-stepping's Δ sweep.

The knob the Lumsdaine group's SSSP papers ("The Value of Variance",
"Distributed Control") obsess over: Δ interpolates between Dijkstra-like
(tiny Δ: many buckets, high per-bucket overhead) and Bellman–Ford-like
(huge Δ: one bucket).  Shape claims asserted here: the Dijkstra-like end is
severely slower (per-bucket overhead dominates, >3× the best Δ), runtime
improves monotonically away from it, and the auto heuristic lands within 3×
of the best swept Δ.

An honest negative finding, recorded in EXPERIMENTS.md: the classic
*right*-hand rise of the U (wasted re-relaxation at huge Δ) does **not**
appear in this implementation, because every relaxation is already
frontier-filtered — only vertices whose distance improved relax again — so
the one-bucket limit degenerates to the (efficient) filtered Bellman–Ford
rather than the naive one the textbook comparison assumes.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro as gb
from repro.algorithms import sssp_delta_stepping
from repro.bench.harness import time_operation
from repro.bench.tables import format_series

from conftest import bench_backend, save_table

DELTAS = [0.5, 2.0, 8.0, 32.0, 128.0, 1024.0, 1e9]
_G = gb.generators.rmat(scale=10, edge_factor=8, seed=66, weighted=True)


def make_case(delta):
    return lambda: sssp_delta_stepping(_G, 0, delta=delta)


@pytest.mark.parametrize("delta", DELTAS)
def test_fig7_delta(benchmark, delta):
    bench_backend(benchmark, "cpu", make_case(delta), rounds=2)


def test_fig7_default_heuristic(benchmark):
    bench_backend(benchmark, "cpu", lambda: sssp_delta_stepping(_G, 0), rounds=2)


def test_fig7_render(benchmark):
    def build():
        times = [time_operation("cpu", make_case(d), repeat=3).seconds for d in DELTAS]
        default_t = time_operation(
            "cpu", lambda: sssp_delta_stepping(_G, 0), repeat=3
        ).seconds
        fig = format_series(
            "Figure 7 — delta-stepping runtime vs Δ (rmat s10, CPU wall s)",
            "delta",
            DELTAS + ["auto"],
            {"time": times + [default_t]},
        )
        save_table("fig7_delta_sweep", fig)
        best = min(times)
        # Shape: the Dijkstra-like extreme pays heavily for its buckets.
        assert times[0] > 3.0 * best
        # Shape: moving right from tiny Δ monotonically helps (allow noise).
        assert times[0] > times[1] > times[2]
        # The default heuristic is competitive.
        assert default_t < 3.0 * best
        return fig

    benchmark.pedantic(build, rounds=1, iterations=1)
