"""Regular-structure graphs: paths, cycles, grids, tori, complete, star.

Road-network-like regular topologies are the counterpoint workload to
R-MAT: low, uniform degree and large diameter, which flips the push/pull
BFS trade-off and minimises warp divergence.
"""

from __future__ import annotations

import numpy as np

from ..core.matrix import Matrix
from ..exceptions import InvalidValueError
from ..types import FP64, GrBType
from .common import finalize_edges

__all__ = ["path_graph", "cycle_graph", "grid_2d", "torus_2d", "complete_graph", "star_graph"]


def path_graph(n: int, weighted: bool = False, typ: GrBType = FP64, seed=None) -> Matrix:
    """Undirected path 0–1–…–(n-1)."""
    if n < 0:
        raise InvalidValueError(f"negative n {n}")
    idx = np.arange(max(n - 1, 0), dtype=np.int64)
    return finalize_edges(n, idx, idx + 1, weighted=weighted, typ=typ, seed=seed)


def cycle_graph(n: int, weighted: bool = False, typ: GrBType = FP64, seed=None) -> Matrix:
    """Undirected cycle on n vertices (n >= 3 for a simple cycle)."""
    if n < 0:
        raise InvalidValueError(f"negative n {n}")
    if n < 3:
        return path_graph(n, weighted, typ, seed)
    idx = np.arange(n, dtype=np.int64)
    return finalize_edges(n, idx, (idx + 1) % n, weighted=weighted, typ=typ, seed=seed)


def grid_2d(rows: int, cols: int, weighted: bool = False, typ: GrBType = FP64, seed=None) -> Matrix:
    """Undirected rows×cols 4-neighbour grid (road-network proxy)."""
    if rows < 0 or cols < 0:
        raise InvalidValueError(f"negative grid dims ({rows}, {cols})")
    n = rows * cols
    r, c = np.meshgrid(
        np.arange(rows, dtype=np.int64), np.arange(cols, dtype=np.int64), indexing="ij"
    )
    vid = (r * cols + c).ravel()
    right = vid.reshape(rows, cols)[:, :-1].ravel()
    down = vid.reshape(rows, cols)[:-1, :].ravel()
    src = np.concatenate([right, down])
    dst = np.concatenate([right + 1, down + cols])
    return finalize_edges(n, src, dst, weighted=weighted, typ=typ, seed=seed)


def torus_2d(rows: int, cols: int, weighted: bool = False, typ: GrBType = FP64, seed=None) -> Matrix:
    """Grid with wraparound edges (uniform degree 4)."""
    if rows < 0 or cols < 0:
        raise InvalidValueError(f"negative torus dims ({rows}, {cols})")
    n = rows * cols
    r, c = np.meshgrid(
        np.arange(rows, dtype=np.int64), np.arange(cols, dtype=np.int64), indexing="ij"
    )
    vid = (r * cols + c).ravel()
    right = (r * cols + (c + 1) % cols).ravel()
    down = (((r + 1) % rows) * cols + c).ravel()
    src = np.concatenate([vid, vid])
    dst = np.concatenate([right, down])
    return finalize_edges(n, src, dst, weighted=weighted, typ=typ, seed=seed)


def complete_graph(n: int, weighted: bool = False, typ: GrBType = FP64, seed=None) -> Matrix:
    """K_n — every unordered pair connected."""
    if n < 0:
        raise InvalidValueError(f"negative n {n}")
    i, j = np.triu_indices(n, k=1)
    return finalize_edges(
        n, i.astype(np.int64), j.astype(np.int64), weighted=weighted, typ=typ, seed=seed
    )


def star_graph(n: int, weighted: bool = False, typ: GrBType = FP64, seed=None) -> Matrix:
    """Vertex 0 connected to 1..n-1 (extreme degree skew)."""
    if n < 0:
        raise InvalidValueError(f"negative n {n}")
    leaves = np.arange(1, n, dtype=np.int64)
    return finalize_edges(
        n, np.zeros(leaves.size, dtype=np.int64), leaves, weighted=weighted, typ=typ, seed=seed
    )
