"""Graph metrics: degrees, density, symmetry, eccentricity, diameter.

Small utilities built on the primitive set — the ``metrics.hpp`` collection
of GBTL.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core import operations as ops
from ..core.descriptor import TRANSPOSE_A
from ..core.matrix import Matrix
from ..core.monoid import MAX_MONOID, PLUS_MONOID
from ..core.operators import ONE, PLUS
from ..core.vector import Vector
from ..exceptions import InvalidValueError
from ..types import FP64, INT64
from .bfs import bfs_levels

__all__ = [
    "out_degrees",
    "in_degrees",
    "graph_density",
    "is_symmetric",
    "vertex_eccentricity",
    "graph_diameter",
    "average_degree",
    "vertex_count",
    "edge_count",
]


def out_degrees(g: Matrix) -> Vector:
    """Number of stored out-edges per vertex (no entry for isolated rows)."""
    pattern = Matrix.sparse(INT64, g.nrows, g.ncols)
    ops.apply(pattern, g, ONE)
    deg = Vector.sparse(INT64, g.nrows)
    ops.reduce_to_vector(deg, pattern, PLUS_MONOID)
    return deg


def in_degrees(g: Matrix) -> Vector:
    """Number of stored in-edges per vertex."""
    pattern = Matrix.sparse(INT64, g.nrows, g.ncols)
    ops.apply(pattern, g, ONE)
    deg = Vector.sparse(INT64, g.ncols)
    ops.reduce_to_vector(deg, pattern, PLUS_MONOID, desc=TRANSPOSE_A)
    return deg


def vertex_count(g: Matrix) -> int:
    """Number of vertices (the adjacency dimension)."""
    return g.nrows


def edge_count(g: Matrix, directed: bool = True) -> int:
    """Stored entries; halved for the undirected convention."""
    return g.nvals if directed else g.nvals // 2


def average_degree(g: Matrix) -> float:
    """Mean stored out-degree, nvals / n (0 for the empty graph)."""
    return g.nvals / g.nrows if g.nrows else 0.0


def graph_density(g: Matrix) -> float:
    """nvals / (n·(n-1)) — fraction of possible directed edges present."""
    n = g.nrows
    possible = n * (n - 1)
    return g.nvals / possible if possible else 0.0


def is_symmetric(g: Matrix) -> bool:
    """True iff ``g`` equals its transpose (structure and values)."""
    if g.nrows != g.ncols:
        return False
    t = Matrix.sparse(g.type, g.nrows, g.ncols)
    ops.transpose(t, g)
    return t == g


def vertex_eccentricity(g: Matrix, v: int) -> int:
    """Max BFS level reachable from ``v`` (0 for isolated vertices)."""
    levels = bfs_levels(g, v)
    if not levels.nvals:
        return 0
    return int(ops.reduce(levels, MAX_MONOID))


def graph_diameter(g: Matrix, sample: Optional[int] = None, seed: int = 0) -> int:
    """Exact diameter (max eccentricity over all vertices), or a lower
    bound from ``sample`` random sources for large graphs.

    Unreachable pairs are ignored (per-component eccentricities).
    """
    n = g.nrows
    if n == 0:
        return 0
    if sample is None or sample >= n:
        sources = range(n)
    else:
        if sample <= 0:
            raise InvalidValueError(f"sample must be positive, got {sample}")
        rng = np.random.default_rng(seed)
        sources = rng.choice(n, size=sample, replace=False)
    return max(vertex_eccentricity(g, int(s)) for s in sources)
