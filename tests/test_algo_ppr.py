"""Batched personalized PageRank and the msbfs serving extensions."""

import numpy as np
import pytest

import repro as gb
from repro.algorithms import bfs_levels_multi, ppr, ppr_batch, ppr_transition


def _rows_equal(m, i, vec):
    idx, vals = m.container.row(i)
    return np.array_equal(idx, vec.indices_array()) and np.array_equal(
        vals, vec.values_array()
    )


class TestPprBatch:
    def test_batch_rows_bit_identical_to_singles(self, backend):
        g = gb.generators.rmat(scale=6, edge_factor=6, seed=3)
        sources = [0, 5, 17, 5]  # duplicates allowed
        r = ppr_batch(g, sources, damping=0.85, iters=6)
        assert r.shape == (4, g.nrows)
        for i, s in enumerate(sources):
            single = ppr(g, s, damping=0.85, iters=6)
            assert _rows_equal(r, i, single), f"row {i} (source {s})"

    def test_rows_are_distributions(self, backend):
        g = gb.generators.rmat(scale=6, edge_factor=5, seed=9)
        r = ppr_batch(g, [1, 2, 3], iters=10)
        for i in range(3):
            _, vals = r.container.row(i)
            assert vals.sum() == pytest.approx(1.0, rel=1e-12)
            assert (vals >= 0).all()

    def test_damping_zero_is_pure_teleport(self, backend):
        # All mass stays at the source; propagated entries are explicit
        # zeros (GraphBLAS keeps stored zeros — no pattern assertions).
        g = gb.generators.path_graph(5)
        r = ppr_batch(g, [3], damping=0.0, iters=4)
        idx, vals = r.container.row(0)
        assert dict(zip(idx.tolist(), vals.tolist()))[3] == 1.0
        assert vals.sum() == 1.0

    def test_dangling_mass_returns_to_source(self, backend):
        # 0 -> 1, and 1 is dangling: its mass must park back at 0, not leak.
        g = gb.Matrix.from_lists([0], [1], [1.0], 2, 2)
        v = ppr(g, 0, damping=0.5, iters=8)
        vals = dict(zip(*v.to_lists()))
        assert sum(vals.values()) == pytest.approx(1.0, rel=1e-12)
        assert vals[0] > vals[1] > 0

    def test_cached_transition_identical(self, backend):
        g = gb.generators.rmat(scale=5, edge_factor=6, seed=4)
        t = ppr_transition(g)
        a = ppr_batch(g, [2, 7], iters=5, transition=t)
        b = ppr_batch(g, [2, 7], iters=5)
        assert a == b

    def test_empty_sources(self, backend):
        g = gb.generators.path_graph(4)
        r = ppr_batch(g, [])
        assert r.shape == (0, 4) and r.nvals == 0

    def test_validation(self, backend):
        g = gb.generators.path_graph(4)
        with pytest.raises(gb.InvalidValueError):
            ppr_batch(g, [0], damping=1.0)
        with pytest.raises(gb.InvalidValueError):
            ppr_batch(g, [0], damping=-0.1)
        with pytest.raises(gb.InvalidValueError):
            ppr_batch(g, [0], iters=0)
        with pytest.raises(gb.IndexOutOfBoundsError):
            ppr_batch(g, [4])
        with pytest.raises(gb.InvalidValueError):
            ppr_transition(gb.Matrix.sparse(gb.FP64, 2, 3))

    def test_source_concentrates_mass(self, backend):
        # Personalization: the source outranks every vertex it feeds.
        g = gb.generators.rmat(scale=6, edge_factor=4, seed=12)
        v = ppr(g, 0, damping=0.6, iters=12)
        vals = dict(zip(*v.to_lists()))
        assert vals[0] == max(vals.values())


class TestMsbfsServingExtensions:
    def test_push_equals_auto(self, backend):
        g = gb.generators.rmat(scale=5, edge_factor=6, seed=2)
        assert bfs_levels_multi(g, [0, 3], direction="push") == bfs_levels_multi(
            g, [0, 3], direction="auto"
        )

    def test_pull_cleanly_rejected(self, backend):
        g = gb.generators.path_graph(4)
        with pytest.raises(gb.NotImplementedInBackendError):
            bfs_levels_multi(g, [0], direction="pull")

    def test_bad_direction_rejected(self, backend):
        g = gb.generators.path_graph(4)
        with pytest.raises(gb.InvalidValueError):
            bfs_levels_multi(g, [0], direction="sideways")

    def test_negative_max_level_rejected(self, backend):
        g = gb.generators.path_graph(4)
        with pytest.raises(gb.InvalidValueError):
            bfs_levels_multi(g, [0], max_level=-1)

    def test_max_level_zero_is_sources_only(self, backend):
        g = gb.generators.path_graph(5)
        levels = bfs_levels_multi(g, [1, 3], max_level=0)
        assert levels.nvals == 2
        assert levels.get(0, 1) == 0 and levels.get(1, 3) == 0

    def test_max_level_prefix_of_full_run(self, backend):
        g = gb.generators.rmat(scale=6, edge_factor=5, seed=6)
        sources = [0, 9, 21]
        full = bfs_levels_multi(g, sources)
        for bound in (1, 2, 3):
            capped = bfs_levels_multi(g, sources, max_level=bound)
            ri, ci, vv = full.to_lists()
            keep = np.asarray(vv) <= bound
            expect = gb.Matrix.from_lists(
                np.asarray(ri)[keep],
                np.asarray(ci)[keep],
                np.asarray(vv)[keep],
                len(sources),
                g.nrows,
                gb.INT64,
            )
            assert capped == expect

    def test_max_level_beyond_diameter_is_full(self, backend):
        g = gb.generators.path_graph(6)
        assert bfs_levels_multi(g, [0], max_level=50) == bfs_levels_multi(g, [0])
