"""Table 7 — lazy-optimizer pass ablation: fusion, DME, sinking, capture.

Runs three pipelines — BFS on the Graph500-skew s13 R-MAT, PageRank on the
s12 R-MAT pinned to 20 power iterations, and a masked-SpGEMM statistics
pipeline — under every optimizer configuration: ``eager`` (the pre-lazy
baseline, ``lazy_disabled()``), ``lazy`` (all five passes on), and one
ablation per pass (``passes_configured(<pass>=False)``).

Shape claims:

- every configuration is bit-identical — passes are schedule decisions,
  never value decisions;
- with all passes on, PageRank s12x20it and BFS s13 drop kernel launches
  *and* H2D bytes by >= 25% vs the eager baseline (the acceptance bar);
- no ablation beats the full pipeline: turning a pass off never reduces
  launches, H2D traffic, or modeled time;
- each pass pays its way: for every pass there is at least one (workload,
  counter) cell where ablating it is strictly worse.

Emits ``BENCH_table7.json`` with the deterministic cuda_sim counters that
``check_bench_regressions.py`` gates.
"""

from __future__ import annotations

from contextlib import nullcontext

import pytest

import repro as gb
from repro.backends.dispatch import use_backend
from repro.bench.tables import format_table
from repro.core import operations as ops
from repro.core.descriptor import Descriptor
from repro.core.monoid import PLUS_MONOID
from repro.core.operators import TIMES
from repro.core.semiring import PLUS_TIMES
from repro.gpu.device import get_device
from repro.lazy import config as lazy_config
from repro.testing.equivalence import assert_same

from conftest import fresh_device_state, save_json, save_table

PASSES = ["fuse", "dme", "sink", "direction", "capture"]
MODES = ["eager", "lazy"] + [f"no_{p}" for p in PASSES]

# Acceptance bar: lazy-all-on vs eager on launches and H2D bytes.
MIN_REDUCTION = 0.25

GRAPHS = {
    "rmat_s13": lambda: gb.generators.rmat(
        scale=13, edge_factor=16, seed=1, a=0.57
    ),
    "rmat_s12": lambda: gb.generators.rmat(
        scale=12, edge_factor=16, seed=1, a=0.57
    ),
}

_CACHE = {}


def graph(name):
    if name not in _CACHE:
        _CACHE[name] = GRAPHS[name]()
    return _CACHE[name]


def mode_ctx(mode):
    """The lazy-layer configuration for one table column."""
    if mode == "eager":
        return lazy_config.lazy_disabled()
    if mode == "lazy":
        return nullcontext()  # cuda_sim records by default; all passes on
    return lazy_config.passes_configured(**{mode[3:]: False})


def run_bfs():
    return gb.algorithms.bfs_levels(graph("rmat_s13"), 0)


def run_pagerank():
    # tol=0 pins the power iteration to exactly 20 passes (s12x20it).
    return gb.algorithms.pagerank(graph("rmat_s12"), max_iter=20, tol=0.0)


def run_masked_spgemm():
    """Masked SpGEMM feeding an ewise chain and scalar reductions.

    ``C<G> = G*G`` (two-hop counts restricted to existing edges, the
    triangle-counting shape) then row sums, an elementwise square, and a
    scalar total — the tail is exactly the ewise→reduce shape the fusion
    pass collapses.  A second, *masked* square restricted to one vertex's
    neighbourhood exercises mask sinking: the sparse mask prunes the dense
    inputs before the kernel instead of filtering after it.
    """
    g = graph("rmat_s12")
    n = g.nrows
    c = gb.Matrix.sparse(gb.FP64, n, n)
    ops.mxm(c, g, g, PLUS_TIMES, mask=g, desc=Descriptor(structural_mask=True))
    w = gb.Vector.sparse(gb.FP64, n)
    ops.reduce_to_vector(w, c, PLUS_MONOID)
    nbrs = gb.Vector.sparse(gb.FP64, n)
    ops.extract_col(nbrs, g, 0, desc=Descriptor(transpose_a=True))
    local = gb.Vector.sparse(gb.FP64, n)
    ops.ewise_mult(
        local, w, w, TIMES, mask=nbrs, desc=Descriptor(structural_mask=True)
    )
    around0 = float(ops.reduce(local, PLUS_MONOID))
    t = gb.Vector.sparse(gb.FP64, n)
    ops.ewise_mult(t, w, w, TIMES)
    total = float(ops.reduce(t, PLUS_MONOID))
    return w, total + around0


WORKLOADS = {
    "bfs_s13": run_bfs,
    "pagerank_s12_20it": run_pagerank,
    "masked_spgemm_s12": run_masked_spgemm,
}


def run_case(workload, mode):
    """One (workload, mode) cell; returns (result, us, launches, h2d)."""
    fresh_device_state()
    dev = get_device()
    with mode_ctx(mode), use_backend("cuda_sim"):
        result = WORKLOADS[workload]()
    prof = dev.profiler
    return result, prof.kernel_time_us, prof.launch_count, prof.h2d_bytes


@pytest.mark.parametrize("workload", list(WORKLOADS))
@pytest.mark.parametrize("mode", ["eager", "lazy"])
def test_table7_cell(benchmark, workload, mode):
    _, us, launches, h2d = run_case(workload, mode)
    benchmark.extra_info["simulated_us"] = round(us, 3)
    benchmark.extra_info["kernel_launches"] = launches
    benchmark.extra_info["h2d_bytes"] = round(h2d)
    benchmark.pedantic(
        lambda: run_case(workload, mode), rounds=1, iterations=1
    )


def _same(a, b):
    if isinstance(a, tuple):
        vec_a, tot_a = a
        vec_b, tot_b = b
        assert_same(vec_a, vec_b, exact=True)
        assert tot_a == tot_b
    else:
        assert_same(a, b, exact=True)


def test_table7_render(benchmark):
    def build():
        rows = []
        cells = {}
        metrics = {}
        for workload in WORKLOADS:
            results = {}
            for mode in MODES:
                result, us, launches, h2d = run_case(workload, mode)
                results[mode] = result
                cells[(workload, mode)] = (us, launches, h2d)
                metrics[f"{workload}.{mode}"] = {
                    "kernel_launches": launches,
                    "h2d_bytes": round(h2d),
                }
                rows.append(
                    [workload, mode, round(us, 2), launches, round(h2d)]
                )
            # Passes are schedule decisions only: every configuration is
            # bitwise the eager result.
            for mode in MODES[1:]:
                _same(results[mode], results["eager"])

        table = format_table(
            "Table 7 — lazy-optimizer ablation: modeled time / launches / H2D",
            ["workload", "mode", "sim time (us)", "launches", "h2d bytes"],
            rows,
        )
        save_table("table7_fusion_ablation", table)

        # Acceptance: >= 25% fewer launches and H2D bytes on both headline
        # pipelines with every pass enabled.
        reductions = {}
        for workload in ("bfs_s13", "pagerank_s12_20it"):
            _, el, eb = cells[(workload, "eager")]
            _, ll, lb = cells[(workload, "lazy")]
            reductions[workload] = {
                "kernel_launches": round(1.0 - ll / el, 3),
                "h2d_bytes": round(1.0 - lb / eb, 3),
            }
            assert ll <= el * (1.0 - MIN_REDUCTION), (workload, ll, el)
            assert lb <= eb * (1.0 - MIN_REDUCTION), (workload, lb, eb)

        # No ablation beats the full pipeline (each pass is monotone), and
        # every pass contributes somewhere: at least one workload gets
        # strictly worse on some counter when the pass is turned off.
        contributions = {}
        for p in PASSES:
            contrib = []
            for workload in WORKLOADS:
                us, launches, h2d = cells[(workload, f"no_{p}")]
                lus, llaunches, lh2d = cells[(workload, "lazy")]
                assert launches >= llaunches, (p, workload)
                assert h2d >= lh2d - 1e-6, (p, workload)
                assert us >= lus - 1e-6, (p, workload)
                # The cost model is deterministic, so any strict delta is a
                # stable, reproducible contribution — no noise floor needed.
                if launches > llaunches or h2d > lh2d + 1e-6 or us > lus + 1e-6:
                    contrib.append(workload)
            contributions[p] = contrib
            assert contrib, f"pass {p!r} shows no contribution anywhere"

        record = {
            "table": "table7_fusion_ablation",
            "modes": MODES,
            "workloads": sorted(WORKLOADS),
            "simulated_us": {
                f"{w}.{m}": round(cells[(w, m)][0], 3)
                for w in WORKLOADS
                for m in MODES
            },
            "lazy_vs_eager_reduction": reductions,
            "min_required_reduction": MIN_REDUCTION,
            "pass_contributions": contributions,
            "cuda_sim_metrics": metrics,
        }
        save_json("table7", record)
        return table

    benchmark.pedantic(build, rounds=1, iterations=1)
