"""Mask evaluation.

A GraphBLAS mask controls which output positions an operation may write.  The
mask may be *valued* (an entry controls only if present **and** truthy) or
*structural* (presence alone controls), and may be *complemented*.  The write
pipeline never materialises a complemented mask; instead it evaluates mask
membership at the finite set of candidate positions (union of the old output
and the computed result), which is all the semantics require.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..containers.csr import CSRMatrix
from ..containers.sparsevec import SparseVector
from ..exceptions import DimensionMismatchError
from .descriptor import Descriptor

__all__ = ["vector_mask_at", "matrix_mask_at", "flat_keys", "check_mask_shape"]


def check_mask_shape(
    mask: Optional[Union[SparseVector, CSRMatrix]],
    out_shape,
) -> None:
    """Validate that the mask's shape matches the output's shape."""
    if mask is None:
        return
    if isinstance(mask, SparseVector):
        if (mask.size,) != tuple(np.atleast_1d(out_shape)):
            raise DimensionMismatchError(
                "mask shape", expected=tuple(np.atleast_1d(out_shape)), actual=(mask.size,)
            )
    else:
        if mask.shape != tuple(out_shape):
            raise DimensionMismatchError(
                "mask shape", expected=tuple(out_shape), actual=mask.shape
            )


def flat_keys(rows: np.ndarray, cols: np.ndarray, ncols: int) -> np.ndarray:
    """Encode (row, col) pairs as sortable int64 keys (row-major)."""
    return rows.astype(np.int64) * np.int64(ncols) + cols.astype(np.int64)


def _mask_truthy_sorted(indices: np.ndarray, values: np.ndarray, structural: bool):
    """Sorted index array of positions where the mask 'fires' (pre-complement)."""
    if structural:
        return indices
    keep = values.astype(bool)
    return indices[keep]


# Dense membership probe: for domains up to the cap (4 MB of bools) a
# cached all-False byte map answers every probe with one gather instead of
# an O(log nnz) binary search per position.  The buffer is reused across
# calls under an all-False invariant — writers scatter True at the truthy
# positions, gather, and restore — so steady-state cost is
# O(nnz(mask) + positions), independent of the domain size.
_DENSE_PROBE_CAP = 1 << 22
_PROBE_MAP: dict = {}


def _dense_probe_map(domain: int) -> np.ndarray:
    buf = _PROBE_MAP.get("map")
    if buf is None or buf.size < domain:
        cap = 1 << max(10, int(domain - 1).bit_length() if domain > 1 else 0)
        buf = np.zeros(cap, dtype=bool)
        _PROBE_MAP["map"] = buf
    return buf


def _membership(truthy: np.ndarray, positions: np.ndarray, domain: int):
    """Boolean array: is each of ``positions`` present in sorted ``truthy``?"""
    if truthy.size == 0:
        return np.zeros(positions.size, dtype=bool)
    if domain <= _DENSE_PROBE_CAP and positions.size >= 8:
        m = _dense_probe_map(domain)
        m[truthy] = True
        hit = m[positions]
        m[truthy] = False  # restore the all-False invariant
        return hit
    loc = np.searchsorted(truthy, positions)
    loc_clipped = np.minimum(loc, truthy.size - 1)
    hit = truthy[loc_clipped] == positions
    hit &= loc < truthy.size
    return hit


def vector_mask_at(
    mask: Optional[SparseVector],
    desc: Descriptor,
    positions: np.ndarray,
) -> np.ndarray:
    """Boolean array: does the (effective) mask allow each of ``positions``?

    The probe is elementwise (``searchsorted`` against the mask's canonical
    indices), so ``positions`` may arrive in any order — mask-fused kernels
    test expansion-ordered candidates, the write pipeline sorted ones.
    """
    if mask is None:
        return np.ones(positions.size, dtype=bool)
    truthy = _mask_truthy_sorted(mask.indices, mask.values, desc.structural_mask)
    hit = _membership(truthy, positions, mask.size)
    return ~hit if desc.complement_mask else hit


def matrix_mask_at(
    mask: Optional[CSRMatrix],
    desc: Descriptor,
    keys: np.ndarray,
) -> np.ndarray:
    """Matrix analogue of :func:`vector_mask_at` over flat row-major keys."""
    if mask is None:
        return np.ones(keys.size, dtype=bool)
    rows = np.repeat(np.arange(mask.nrows, dtype=np.int64), mask.row_degrees())
    mkeys = flat_keys(rows, mask.indices, mask.ncols)
    truthy = _mask_truthy_sorted(mkeys, mask.values, desc.structural_mask)
    hit = _membership(truthy, keys, mask.nrows * mask.ncols)
    return ~hit if desc.complement_mask else hit
