"""Table 3 (ablation) — what each cost-model term contributes.

Design-choice ablation from DESIGN.md: modeled kernel time with each cost
term (divergence, coalescing, occupancy) toggled off, for the two kernel
styles the backend uses, on a skewed R-MAT graph and a uniform grid.

Shape claims (the classic CSR-kernel-choice argument):

- the **warp-per-row** SpMV wastes lanes on *short* rows, so removing the
  divergence term helps the uniform degree-4 grid far more than the skewed
  R-MAT whose heavy rows keep warps busy;
- the **thread-per-row** push kernel serialises warps on *long* rows, so
  the same toggle helps the skewed R-MAT far more than the grid;
- removing coalescing always helps (sparse gathers are never coalesced);
- the ideal machine (all terms off) lower-bounds every configuration.
"""

from __future__ import annotations

import pytest

import repro as gb
from repro.backends.dispatch import get_backend, use_backend
from repro.bench.tables import format_table
from repro.bench.workloads import random_frontier
from repro.core import operations as ops
from repro.core.semiring import PLUS_TIMES
from repro.gpu import loadbalance
from repro.gpu.device import get_device, reset_device

from conftest import save_table

CONFIGS = [
    ("full model", dict()),
    ("no divergence", dict(enable_divergence=False)),
    ("no coalescing", dict(enable_coalescing=False)),
    ("no occupancy", dict(enable_occupancy=False)),
    (
        "ideal machine",
        dict(enable_divergence=False, enable_coalescing=False, enable_occupancy=False),
    ),
]

GRAPHS = {
    "rmat_s11": lambda: gb.generators.rmat(scale=11, edge_factor=8, seed=30),
    "grid_48": lambda: gb.generators.grid_2d(48, 48, seed=30),
}
KERNELS = ["warp-per-row (pull)", "thread-per-row (push)"]


def simulated_kernel_us(g, kernel: str, overrides) -> float:
    reset_device()
    get_backend("cuda_sim").evict_all()
    dev = get_device()
    for attr, val in overrides.items():
        setattr(dev.cost_model, attr, val)
    n = g.nrows
    if kernel.startswith("warp"):
        u = gb.Vector.full(1.0, n, gb.FP64)
        direction = "pull"
        lane = "vector"
    else:
        u = random_frontier(n, n, seed=4)  # dense frontier: worst-case push
        direction = "push"
        lane = "scalar"
    g.csc()  # pre-built column view so push pays no transpose
    # This table ablates the cost model *per kernel style*; pin the lane so
    # the load balancer doesn't swap styles out from under the claim.
    with loadbalance.forced(lane), use_backend("cuda_sim"):
        w = gb.Vector.sparse(gb.FP64, n)
        ops.mxv(w, g, u, PLUS_TIMES, direction=direction)
    return dev.profiler.kernel_time_us


@pytest.mark.parametrize("graph", list(GRAPHS))
@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("config", [name for name, _ in CONFIGS])
def test_table3_config(benchmark, graph, kernel, config):
    g = GRAPHS[graph]()
    overrides = dict(CONFIGS)[config]
    us = simulated_kernel_us(g, kernel, overrides)
    benchmark.extra_info["simulated_us"] = round(us, 3)
    benchmark.pedantic(
        lambda: simulated_kernel_us(g, kernel, overrides), rounds=1, iterations=1
    )


def test_table3_render(benchmark):
    def build():
        rows = []
        results = {}
        graphs = {name: gf() for name, gf in GRAPHS.items()}
        for gname, g in graphs.items():
            for kernel in KERNELS:
                for cname, overrides in CONFIGS:
                    us = simulated_kernel_us(g, kernel, overrides)
                    results[(gname, kernel, cname)] = us
                    rows.append([gname, kernel, cname, round(us, 2)])
        table = format_table(
            "Table 3 — cost-model ablation: modeled kernel time (µs)",
            ["graph", "kernel", "model config", "sim time"],
            rows,
        )
        save_table("table3_costmodel_ablation", table)

        def gain(gname, kernel):
            return (
                results[(gname, kernel, "full model")]
                / results[(gname, kernel, "no divergence")]
            )

        for gname in graphs:
            for kernel in KERNELS:
                full = results[(gname, kernel, "full model")]
                assert results[(gname, kernel, "ideal machine")] <= full
                assert results[(gname, kernel, "no coalescing")] < full
        # Warp-per-row: lane waste dominates on the low-degree uniform grid.
        assert gain("grid_48", "warp-per-row (pull)") > gain(
            "rmat_s11", "warp-per-row (pull)"
        )
        # Thread-per-row: serialisation dominates on the skewed R-MAT.
        assert gain("rmat_s11", "thread-per-row (push)") > gain(
            "grid_48", "thread-per-row (push)"
        )
        return table

    benchmark.pedantic(build, rounds=1, iterations=1)
