"""Maximal independent set — Luby's randomized algorithm.

Each round, every remaining candidate draws a random priority; a candidate
joins the set iff its priority beats every remaining neighbour's (computed
with one masked ``mxv`` over (MAX, SECOND)).  Winners and their neighbours
leave the candidate pool.  Expected O(log n) rounds.  This is the
``mis.hpp`` algorithm shipped with GBTL.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core import operations as ops
from ..core.descriptor import Descriptor, STRUCTURE_MASK
from ..core.matrix import Matrix
from ..core.operators import GT, IDENTITY, LOR
from ..core.semiring import MAX_SECOND, LOR_LAND
from ..core.vector import Vector
from ..exceptions import InvalidValueError
from ..types import BOOL, FP64

__all__ = ["mis", "verify_mis"]


def mis(g: Matrix, seed: Optional[int] = None) -> Vector:
    """Maximal independent set of the undirected graph ``g``.

    Returns a BOOL vector with True at set members.  Isolated vertices are
    always included.  Deterministic for a fixed ``seed``.
    """
    if g.nrows != g.ncols:
        raise InvalidValueError(f"adjacency must be square, got {g.shape}")
    n = g.nrows
    rng = np.random.default_rng(seed)
    in_set = Vector.sparse(BOOL, n)
    candidates = Vector.full(True, n, BOOL)
    while candidates.nvals:
        cand_idx = candidates.indices_array()
        # Random priority per remaining candidate, perturbed by degree so
        # low-degree vertices win more often (Luby's degree weighting);
        # strictly positive so priorities always beat the implicit zero.
        prios = Vector.from_lists(
            cand_idx,
            rng.random(cand_idx.size) + 1e-9,
            n,
            FP64,
        )
        # Max neighbouring priority among candidates only.
        nbr_max = Vector.sparse(FP64, n)
        ops.mxv(
            nbr_max,
            g,
            prios,
            MAX_SECOND,
            mask=candidates,
            desc=STRUCTURE_MASK,
        )
        # Winner: candidate whose priority exceeds all neighbours' (vertices
        # with no candidate neighbour have no nbr_max entry and win too).
        beats = Vector.sparse(BOOL, n)
        ops.ewise_mult(beats, prios, nbr_max, GT)
        lonely = Vector.sparse(FP64, n)
        ops.apply(
            lonely,
            prios,
            GT,
            bind_second=0.0,
            mask=nbr_max,
            desc=Descriptor(complement_mask=True, structural_mask=True, replace=True),
        )
        winners = Vector.sparse(BOOL, n)
        ops.ewise_add(winners, beats, lonely, LOR)
        true_w = Vector.sparse(BOOL, n)
        ops.apply(true_w, winners, IDENTITY, mask=winners, desc=Descriptor(replace=True))
        if not true_w.nvals:
            # All remaining candidates tied (measure-zero with float RNG,
            # but guard against adversarial priorities): pick lowest index.
            true_w.set_element(int(cand_idx[0]), True)
        ops.ewise_add(in_set, in_set, true_w, LOR)
        # Remove winners and their neighbours from the candidate pool.
        nbrs = Vector.sparse(BOOL, n)
        ops.mxv(nbrs, g, true_w, LOR_LAND)
        removed = Vector.sparse(BOOL, n)
        ops.ewise_add(removed, true_w, nbrs, LOR)
        remaining = Vector.sparse(BOOL, n)
        ops.apply(
            remaining,
            candidates,
            IDENTITY,
            mask=removed,
            desc=Descriptor(complement_mask=True, structural_mask=True, replace=True),
        )
        candidates = remaining
    return in_set


def verify_mis(g: Matrix, s: Vector) -> bool:
    """Check independence (no edge within s) and maximality (every vertex
    outside s has a neighbour in s)."""
    n = g.nrows
    # Independence: A ⊗ s restricted to s must be empty.
    hit = Vector.sparse(BOOL, n)
    ops.mxv(hit, g, s, LOR_LAND, mask=s, desc=STRUCTURE_MASK)
    if hit.nvals:
        return False
    # Maximality: vertices not in s and with no neighbour in s must not exist.
    cover = Vector.sparse(BOOL, n)
    ops.mxv(cover, g, s, LOR_LAND)
    ops.ewise_add(cover, cover, s, LOR)
    return cover.nvals == n
