"""Hypothesis property tests for the delta-COO overlay.

The overlay is only sound if it is *invisible*: folding pending ops into
the CSR (compaction) must land bit-identically on the same arrays a
from-scratch rebuild produces, deletes of absent edges must change
nothing, and reads through the overlay (point lookups, edge lists, and
full GraphBLAS ops on the compacted matrix) must agree with reads of an
independently materialised graph — across semirings, masks, and SpMSpV
directions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.containers.csr import CSRMatrix
from repro.core import operations as ops
from repro.core.descriptor import Descriptor
from repro.core.matrix import Matrix
from repro.core.semiring import MIN_PLUS, PLUS_TIMES
from repro.core.vector import Vector
from repro.streaming import DeltaOverlay, DynamicGraph, EdgeBatch, merge_overlay
from repro.types import FP64


@st.composite
def graph_and_batch(draw, max_dim=10):
    """A square dense adjacency plus one mixed insert/delete batch."""
    n = draw(st.integers(2, max_dim))
    elems = st.floats(min_value=1, max_value=9, allow_nan=False)
    dense = np.zeros((n, n))
    nnz = draw(st.integers(0, n * n))
    for _ in range(nnz):
        i = draw(st.integers(0, n - 1))
        j = draw(st.integers(0, n - 1))
        dense[i, j] = draw(elems)
    nops = draw(st.integers(0, 12))
    rows, cols, vals, ins = [], [], [], []
    for _ in range(nops):
        rows.append(draw(st.integers(0, n - 1)))
        cols.append(draw(st.integers(0, n - 1)))
        vals.append(draw(elems))
        ins.append(draw(st.booleans()))
    batch = EdgeBatch(
        np.array(rows, dtype=np.int64),
        np.array(cols, dtype=np.int64),
        np.array(vals),
        np.array(ins, dtype=bool),
    )
    return dense, batch


def _apply_to_dense(dense: np.ndarray, batch: EdgeBatch) -> np.ndarray:
    out = dense.copy()
    for k in range(len(batch)):
        i, j = int(batch.rows[k]), int(batch.cols[k])
        out[i, j] = float(batch.vals[k]) if batch.is_insert[k] else 0.0
    return out


def _assert_bit_identical(got: CSRMatrix, want: CSRMatrix) -> None:
    got.validate()
    np.testing.assert_array_equal(got.indptr, want.indptr)
    np.testing.assert_array_equal(got.indices, want.indices)
    np.testing.assert_array_equal(got.values, want.values)


class TestMergeOverlay:
    @given(graph_and_batch())
    @settings(max_examples=80, deadline=None)
    def test_compact_matches_rebuilt_csr(self, data):
        """apply → compact lands on the exact arrays a rebuild produces."""
        dense, batch = data
        g = DynamicGraph(Matrix.from_dense(dense, FP64))
        g.apply(batch)
        g.compact()
        want = CSRMatrix.from_dense(_apply_to_dense(dense, batch))
        _assert_bit_identical(g.matrix.container, want)

    @given(graph_and_batch())
    @settings(max_examples=80, deadline=None)
    def test_delete_of_absent_edge_is_noop(self, data):
        """Deleting only edges the graph never had changes nothing."""
        dense, batch = data
        absent = [
            k
            for k in range(len(batch))
            if dense[batch.rows[k], batch.cols[k]] == 0.0
        ]
        if not absent:
            return
        idx = np.array(absent, dtype=np.int64)
        deletes = EdgeBatch.deletes(batch.rows[idx], batch.cols[idx])
        g = DynamicGraph(Matrix.from_dense(dense, FP64))
        before = CSRMatrix.from_dense(dense)
        g.apply(deletes)
        g.compact()
        _assert_bit_identical(g.matrix.container, before)

    @given(graph_and_batch())
    @settings(max_examples=80, deadline=None)
    def test_overlay_absorb_last_wins(self, data):
        """Re-absorbing ops for the same edge keeps only the last one."""
        dense, batch = data
        if len(batch) == 0:
            return
        overlay = DeltaOverlay()
        overlay.absorb(batch)
        # Override every touched edge with a delete; the merge must agree
        # with applying the batch then deleting those edges.
        overlay.absorb(EdgeBatch.deletes(batch.rows, batch.cols))
        base = CSRMatrix.from_dense(dense)
        got = CSRMatrix(base.nrows, base.ncols, *merge_overlay(base, overlay))
        expect = _apply_to_dense(dense, batch)
        expect[batch.rows, batch.cols] = 0.0
        _assert_bit_identical(got, CSRMatrix.from_dense(expect))

    @given(graph_and_batch())
    @settings(max_examples=60, deadline=None)
    def test_point_reads_through_overlay(self, data):
        """has_edge / edge_value see through pending (uncompacted) ops."""
        dense, batch = data
        g = DynamicGraph(Matrix.from_dense(dense, FP64))
        g.apply(batch)  # NOT compacted: reads must merge base + overlay
        expect = _apply_to_dense(dense, batch)
        n = expect.shape[0]
        for i in range(n):
            for j in range(n):
                assert g.has_edge(i, j) == (expect[i, j] != 0.0)
                if expect[i, j] != 0.0:
                    assert g.edge_value(i, j) == expect[i, j]
        rows, cols = g.edges()
        logical = np.zeros_like(expect)
        logical[rows, cols] = 1.0
        np.testing.assert_array_equal(logical != 0, expect != 0)


class TestOverlayOpAgreement:
    @given(graph_and_batch(), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_ops_agree_with_materialized(self, data, vseed):
        """mxv over the compacted graph == mxv over an independent rebuild,
        across semirings × masks × directions."""
        dense, batch = data
        g = DynamicGraph(Matrix.from_dense(dense, FP64))
        g.apply(batch)
        m_overlay = g.matrix  # compacts the overlay in place
        m_fresh = Matrix.from_dense(_apply_to_dense(dense, batch), FP64)
        n = m_fresh.nrows
        rng = np.random.default_rng(vseed)
        uidx = np.nonzero(rng.random(n) < 0.6)[0].astype(np.int64)
        u = Vector.from_lists(uidx, rng.integers(1, 9, uidx.size), n, FP64)
        midx = np.nonzero(rng.random(n) < 0.5)[0].astype(np.int64)
        mask = Vector.from_lists(midx, np.ones(midx.size), n, FP64)
        desc = Descriptor(structural_mask=True, replace=True)
        for semiring in (PLUS_TIMES, MIN_PLUS):
            for use_mask in (False, True) if midx.size else (False,):
                for direction in ("push", "pull"):
                    kw = {"direction": direction}
                    if use_mask:
                        kw.update(mask=mask, desc=desc)
                    w1 = ops.mxv(Vector.sparse(FP64, n), m_overlay, u, semiring, **kw)
                    w2 = ops.mxv(Vector.sparse(FP64, n), m_fresh, u, semiring, **kw)
                    np.testing.assert_array_equal(
                        w1.indices_array(), w2.indices_array()
                    )
                    np.testing.assert_array_equal(
                        w1.values_array(), w2.values_array()
                    )
