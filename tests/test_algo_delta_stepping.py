"""Delta-stepping SSSP: correctness across Δ values and backends."""

import networkx as nx
import numpy as np
import pytest

import repro as gb
from repro.algorithms import split_light_heavy, sssp, sssp_delta_stepping


class TestSplitLightHeavy:
    def test_partition(self):
        g = gb.Matrix.from_lists([0, 0, 1], [1, 2, 2], [1.0, 5.0, 3.0], 3, 3)
        light, heavy = split_light_heavy(g, 3.0)
        assert light.nvals == 2 and heavy.nvals == 1
        assert light.get(0, 1) == 1.0 and light.get(1, 2) == 3.0
        assert heavy.get(0, 2) == 5.0

    def test_union_is_original(self):
        g = gb.generators.erdos_renyi_gnp(20, 0.2, seed=1, weighted=True)
        light, heavy = split_light_heavy(g, 100.0)
        assert light.nvals + heavy.nvals == g.nvals


class TestDeltaStepping:
    def test_small_graph(self, backend, small_graph):
        d = sssp_delta_stepping(small_graph, 0, delta=2.0)
        assert d.get(0) == 0.0
        assert d.get(2) == 3.0
        assert d.get(5) == 9.0

    @pytest.mark.parametrize("delta", [0.5, 4.0, 64.0, 1e6, None])
    def test_delta_invariance(self, backend, delta):
        g = gb.generators.erdos_renyi_gnp(35, 0.12, seed=2, weighted=True)
        ref = sssp(g, 0)
        d = sssp_delta_stepping(g, 0, delta=delta)
        assert d.to_lists()[0] == ref.to_lists()[0]
        np.testing.assert_allclose(d.values_array(), ref.values_array(), rtol=1e-12)

    def test_matches_dijkstra(self, backend):
        g = gb.generators.erdos_renyi_gnp(30, 0.15, seed=4, weighted=True)
        G = nx.Graph()
        G.add_nodes_from(range(30))
        r, c, v = g.to_lists()
        for i, j, w in zip(r, c, v):
            G.add_edge(i, j, weight=w)
        expected = nx.single_source_dijkstra_path_length(G, 0)
        d = sssp_delta_stepping(g, 0)
        assert d.nvals == len(expected)
        for vtx, dist in expected.items():
            assert d.get(vtx) == pytest.approx(dist)

    def test_unit_weights_bucket_per_level(self, backend):
        g = gb.generators.path_graph(8)
        d = sssp_delta_stepping(g, 0, delta=1.0)
        for v in range(8):
            assert d.get(v) == float(v)

    def test_empty_graph(self, backend):
        g = gb.Matrix.sparse(gb.FP64, 4, 4)
        d = sssp_delta_stepping(g, 2)
        assert d.to_lists() == ([2], [0.0])

    def test_disconnected(self, backend):
        g = gb.Matrix.from_lists([0, 1], [1, 0], [2.0, 2.0], 4, 4)
        d = sssp_delta_stepping(g, 0, delta=1.0)
        assert d.nvals == 2 and 3 not in d

    def test_validation(self, backend):
        g = gb.generators.path_graph(3)
        with pytest.raises(gb.IndexOutOfBoundsError):
            sssp_delta_stepping(g, 9)
        with pytest.raises(gb.InvalidValueError):
            sssp_delta_stepping(g, 0, delta=0.0)

    def test_negative_weights_rejected(self, backend):
        g = gb.Matrix.from_lists([0], [1], [-1.0], 2, 2)
        with pytest.raises(gb.InvalidValueError):
            sssp_delta_stepping(g, 0)

    def test_grid_road_network(self, backend):
        g = gb.generators.grid_2d(8, 8, weighted=True, seed=5)
        ref = sssp(g, 0)
        d = sssp_delta_stepping(g, 0, delta=32.0)
        assert d.to_lists()[0] == ref.to_lists()[0]
        np.testing.assert_allclose(d.values_array(), ref.values_array(), rtol=1e-12)
