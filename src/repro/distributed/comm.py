"""Inter-device communication primitives and their byte accounting.

The collectives follow the standard ring/tree cost models (the same
algebra NCCL's performance model uses):

- ``allgather`` / ``reduce_scatter`` — ring with P−1 steps, each moving a
  1/P chunk of the payload over the slowest link on the ring; wire traffic
  is ``(P−1)·bytes`` (every device receives everyone else's share).
- ``broadcast`` — binomial tree, ``ceil(log2 P)`` full-payload steps.
- ``all_to_all`` — P−1 exchange rounds of 1/P chunks.
- ``frontier_exchange`` — the sparse primitive: every device sends the
  partial-result entries it produced for rows another device owns.  Cost
  is latency per peer plus the *maximum* per-device send serialised over
  its link, reflecting that exchanges are bottlenecked by the busiest
  device, not the sum.
- ``allreduce_scalar`` — latency-bound ring on one scalar (convergence
  checks).

Every primitive returns its modeled duration and records wire bytes into a
:class:`CommStats` — the inter-device analogue of
:class:`~repro.gpu.memory.MemoryStats`.  All primitives are free at P=1.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

from .topology import Topology

__all__ = ["CommStats", "CommModel"]

_PRIMITIVES = (
    "allgather",
    "reduce_scatter",
    "broadcast",
    "all_to_all",
    "frontier_exchange",
    "allreduce",
)


class CommStats:
    """Counters for inter-device traffic, by primitive."""

    __slots__ = ("counts", "bytes", "time_us")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.counts: Dict[str, int] = {p: 0 for p in _PRIMITIVES}
        self.bytes: Dict[str, float] = {p: 0.0 for p in _PRIMITIVES}
        self.time_us = 0.0

    def record(self, primitive: str, nbytes: float, duration_us: float) -> None:
        self.counts[primitive] += 1
        self.bytes[primitive] += float(nbytes)
        self.time_us += float(duration_us)

    @property
    def total_bytes(self) -> float:
        return sum(self.bytes.values())

    @property
    def total_count(self) -> int:
        return sum(self.counts.values())

    def as_dict(self) -> dict:
        return {
            "total_bytes": self.total_bytes,
            "time_us": round(self.time_us, 3),
            "counts": dict(self.counts),
            "bytes": {k: round(v) for k, v in self.bytes.items()},
        }


class CommModel:
    """Prices collectives for a fixed (topology, P) pair and keeps stats.

    Methods return the modeled duration in µs; the caller (the cluster
    scheduler) charges it to the device timelines.  At ``P == 1`` every
    primitive costs nothing and records nothing — a one-device cluster has
    no wires.
    """

    def __init__(self, topology: Topology, nparts: int) -> None:
        self.topology = topology
        self.nparts = int(nparts)
        self.stats = CommStats()

    # ------------------------------------------------------------------

    def _ring_step_us(self, chunk_bytes: float) -> float:
        """One ring step: every device forwards a chunk to its successor;
        the step finishes when the slowest neighbour link does."""
        p = self.nparts
        return max(
            self.topology.transfer_time_us(chunk_bytes, i, (i + 1) % p)
            for i in range(p)
        )

    def _charge(self, primitive: str, wire_bytes: float, dt_us: float) -> float:
        self.stats.record(primitive, wire_bytes, dt_us)
        return dt_us

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------

    def allgather(self, total_bytes: float) -> float:
        """Each device ends with the full payload, starting from its 1/P."""
        p = self.nparts
        if p <= 1 or total_bytes <= 0:
            return 0.0
        chunk = total_bytes / p
        dt = (p - 1) * self._ring_step_us(chunk)
        # Each of the P devices receives the other P−1 chunks.
        return self._charge("allgather", (p - 1) * total_bytes, dt)

    def reduce_scatter(self, total_bytes: float) -> float:
        """Each device ends with the reduced 1/P it owns."""
        p = self.nparts
        if p <= 1 or total_bytes <= 0:
            return 0.0
        chunk = total_bytes / p
        dt = (p - 1) * self._ring_step_us(chunk)
        return self._charge("reduce_scatter", (p - 1) * total_bytes, dt)

    def broadcast(self, nbytes: float, nreceivers: int | None = None) -> float:
        """Root replicates a payload to every (or ``nreceivers``) peer."""
        p = self.nparts
        n = p - 1 if nreceivers is None else int(nreceivers)
        if p <= 1 or n <= 0 or nbytes <= 0:
            return 0.0
        worst = self.topology.worst_link(p)
        steps = max(1, math.ceil(math.log2(n + 1)))
        dt = steps * worst.transfer_time_us(nbytes)
        return self._charge("broadcast", n * nbytes, dt)

    def all_to_all(self, total_bytes: float) -> float:
        """Every device redistributes its 1/P share across all peers."""
        p = self.nparts
        if p <= 1 or total_bytes <= 0:
            return 0.0
        chunk = total_bytes / p
        dt = (p - 1) * self._ring_step_us(chunk)
        # A fraction (P−1)/P of the payload changes devices.
        return self._charge("all_to_all", (p - 1) * total_bytes / p, dt)

    def frontier_exchange(self, send_bytes: Sequence[float]) -> float:
        """Sparse exchange: device p sends ``send_bytes[p]`` to peers.

        The duration is the busiest device's serialized send (latency per
        active peer round plus its bytes over the worst link); wire bytes
        are the true total — sparse frontiers are what make multi-GPU BFS
        communication cheap when the frontier is small.
        """
        p = self.nparts
        total = float(sum(send_bytes))
        if p <= 1:
            return 0.0
        worst = self.topology.worst_link(p)
        busiest = max(send_bytes) if len(send_bytes) else 0.0
        dt = worst.latency_us * (p - 1) + (
            busiest * 1e-3 / worst.bandwidth_gbps if busiest > 0 else 0.0
        )
        return self._charge("frontier_exchange", total, dt)

    def allreduce_scalar(self, item_bytes: int = 8) -> float:
        """Reduce one scalar to all devices (latency-bound ring)."""
        p = self.nparts
        if p <= 1:
            return 0.0
        worst = self.topology.worst_link(p)
        dt = 2.0 * (p - 1) * worst.latency_us
        return self._charge("allreduce", 2.0 * (p - 1) * item_bytes, dt)
