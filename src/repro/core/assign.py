"""Assign operations: write a vector/matrix/scalar into a region of another.

Semantics follow ``GxB_subassign`` (the variant GBTL-era code used): the
mask and the ``replace`` flag act only *inside* the assigned region
``I`` (×``J``); entries outside the region are never touched.  Within the
region the standard pipeline applies:

- no accumulator → region positions allowed by the mask take the source
  entry, or become empty when the source has none there;
- accumulator → source entries merge into existing entries;
- ``replace`` → region entries whose mask is false are deleted.

Index lists must be duplicate-free (spec requirement); ``None`` means "all
indices" (``GrB_ALL``).
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ..backends.dispatch import current_backend
from ..containers.csr import CSRMatrix
from ..containers.sparsevec import SparseVector
from ..exceptions import DimensionMismatchError, IndexOutOfBoundsError, InvalidValueError
from ..lazy import schedule as _lz
from .accumulate import _note_result
from .descriptor import DEFAULT, Descriptor
from .mask import flat_keys, matrix_mask_at, vector_mask_at
from .matrix import Matrix
from .operators import BinaryOp
from .vector import Vector

__all__ = [
    "assign",
    "assign_scalar",
    "assign_row",
    "assign_col",
    "merge_region_vector",
]


def _check_mask_v(mask, size: int) -> None:
    """Eager mask-shape validation (the region merge runs deferred)."""
    if mask is not None and mask.size != size:
        raise DimensionMismatchError(
            "mask shape", expected=(size,), actual=(mask.size,)
        )


def _index_array(idx, dim: int, what: str) -> np.ndarray:
    if idx is None:
        return np.arange(dim, dtype=np.int64)
    arr = np.asarray(idx, dtype=np.int64)
    if arr.size:
        if arr.min() < 0 or arr.max() >= dim:
            raise IndexOutOfBoundsError(f"{what} index outside [0, {dim})")
        if np.unique(arr).size != arr.size:
            raise InvalidValueError(f"duplicate {what} indices in assign")
    return arr


def _merge_region_vector(
    c: SparseVector,
    t_idx: np.ndarray,
    t_vals: np.ndarray,
    region: np.ndarray,
    mask,
    accum: Optional[BinaryOp],
    desc: Descriptor,
) -> SparseVector:
    """Write (t_idx, t_vals) into ``c`` restricted to sorted ``region``."""
    out_dtype = c.type.dtype
    t_vals = np.asarray(t_vals).astype(out_dtype, copy=False)
    # Sort the incoming entries (they are region-mapped, order arbitrary).
    order = np.argsort(t_idx, kind="stable")
    t_idx, t_vals = t_idx[order], t_vals[order]
    allowed_t = vector_mask_at(mask, desc, t_idx)
    t_idx, t_vals = t_idx[allowed_t], t_vals[allowed_t]

    c_in_region = np.isin(c.indices, region, assume_unique=True)
    c_masked = vector_mask_at(mask, desc, c.indices)
    if accum is None:
        # Region ∧ mask-true positions are fully rewritten by T.
        drop = c_in_region & c_masked
    else:
        # Accumulate: existing entries survive; T merges in.
        both = np.isin(c.indices, t_idx, assume_unique=True)
        drop = np.zeros(c.nvals, dtype=bool)
        if both.any():
            sel = np.searchsorted(t_idx, c.indices[both])
            merged = np.asarray(accum(c.values[both], t_vals[sel])).astype(out_dtype)
            t_vals = t_vals.copy()
            t_vals[sel] = merged
            drop = both  # replaced by merged T entries
    if desc.replace:
        drop = drop | (c_in_region & ~c_masked)
    keep_idx = c.indices[~drop]
    keep_vals = c.values[~drop]
    merged_idx = np.concatenate([keep_idx, t_idx])
    merged_vals = np.concatenate([keep_vals, t_vals])
    order = np.argsort(merged_idx, kind="stable")
    return SparseVector(c.size, merged_idx[order], merged_vals[order], c.type)


# Public alias: fused operations (see :mod:`repro.core.fused`) replay the
# scalar-assign region merge at the container level without re-validating
# index lists the caller already knows are canonical.
merge_region_vector = _merge_region_vector


def _merge_region_matrix(
    c: CSRMatrix,
    t_rows: np.ndarray,
    t_cols: np.ndarray,
    t_vals: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    mask,
    accum: Optional[BinaryOp],
    desc: Descriptor,
) -> CSRMatrix:
    """Matrix analogue of :func:`_merge_region_vector` via flat keys."""
    out_dtype = c.type.dtype
    t_keys = flat_keys(t_rows, t_cols, c.ncols)
    t_vals = np.asarray(t_vals).astype(out_dtype, copy=False)
    order = np.argsort(t_keys, kind="stable")
    t_keys, t_vals = t_keys[order], t_vals[order]
    allowed_t = matrix_mask_at(mask, desc, t_keys)
    t_keys, t_vals = t_keys[allowed_t], t_vals[allowed_t]

    c_rows = np.repeat(np.arange(c.nrows, dtype=np.int64), c.row_degrees())
    c_keys = flat_keys(c_rows, c.indices, c.ncols)
    in_region = np.isin(c_rows, rows, assume_unique=False) & np.isin(
        c.indices, cols, assume_unique=False
    )
    c_masked = matrix_mask_at(mask, desc, c_keys)
    if accum is None:
        drop = in_region & c_masked
    else:
        both = np.isin(c_keys, t_keys, assume_unique=True)
        drop = np.zeros(c.nvals, dtype=bool)
        if both.any():
            sel = np.searchsorted(t_keys, c_keys[both])
            merged = np.asarray(accum(c.values[both], t_vals[sel])).astype(out_dtype)
            t_vals = t_vals.copy()
            t_vals[sel] = merged
            drop = both
    if desc.replace:
        drop = drop | (in_region & ~c_masked)
    keys = np.concatenate([c_keys[~drop], t_keys])
    vals = np.concatenate([c.values[~drop], t_vals])
    order = np.argsort(keys, kind="stable")
    keys, vals = keys[order], vals[order]
    out_rows = keys // c.ncols
    out_cols = keys - out_rows * c.ncols
    indptr = np.zeros(c.nrows + 1, dtype=np.int64)
    if out_rows.size:
        np.add.at(indptr, out_rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return CSRMatrix(c.nrows, c.ncols, indptr, out_cols, vals, c.type)


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def assign(
    out,
    src,
    indices=None,
    cols=None,
    mask=None,
    accum: Optional[BinaryOp] = None,
    desc: Descriptor = DEFAULT,
):
    """``out(indices[, cols])<mask> accum= src`` — region assignment.

    Vector form: ``assign(w, u, I)`` with ``len(I) == u.size``.
    Matrix form: ``assign(C, A, I, J)`` with ``(len(I), len(J)) == A.shape``.
    """
    if isinstance(out, Vector):
        idx = _index_array(indices, out.size, "target")
        if idx.size != src.size:
            raise DimensionMismatchError(
                "assign source size", expected=idx.size, actual=src.size
            )
        _check_mask_v(mask, out.size)
        be = current_backend()
        region = np.sort(idx)

        def run(inp, params):
            sc = inp["src"]
            be.charge_assign(sc.nvals, inp["out"])
            return _note_result(_merge_region_vector(
                inp["out"],
                idx[sc.indices],
                sc.values,
                region,
                inp.get("mask"),
                accum,
                desc,
            ))

        return _lz.emit(
            "assign_v",
            run,
            {
                "src": _lz.arg(src),
                "mask": _lz.arg_mask(mask),
                "out": _lz.arg(out),
            },
            {"desc": desc},
            (out,),
        )
    r = _index_array(indices, out.nrows, "row")
    s = _index_array(cols, out.ncols, "column")
    if (r.size, s.size) != src.shape:
        raise DimensionMismatchError(
            "assign source shape", expected=(r.size, s.size), actual=src.shape
        )
    sc = src.container
    current_backend().charge_assign(sc.nvals, out)
    src_rows = np.repeat(np.arange(sc.nrows, dtype=np.int64), sc.row_degrees())
    return out._replace(
        _note_result(_merge_region_matrix(
            out.container,
            r[src_rows],
            s[sc.indices],
            sc.values,
            np.sort(r),
            np.sort(s),
            mask.container if mask is not None else None,
            accum,
            desc,
        ))
    )


def assign_scalar(
    out,
    value: Any,
    indices=None,
    cols=None,
    mask=None,
    accum: Optional[BinaryOp] = None,
    desc: Descriptor = DEFAULT,
):
    """``out(indices[, cols])<mask> accum= value`` — constant fill.

    Unlike matrix/vector assign, every region position receives an entry.
    """
    if isinstance(out, Vector):
        idx = _index_array(indices, out.size, "target")
        _check_mask_v(mask, out.size)
        vals = np.full(idx.size, out.type.cast(value), dtype=out.type.dtype)
        be = current_backend()
        region = np.sort(idx)
        # A full-region unmasked, unaccumulated fill overwrites every
        # position: the result is independent of the prior values, which is
        # what lets the optimizer treat the fill as a pure constant source
        # (dead-materialization + fill→ewise fusion).
        fill = indices is None and mask is None and accum is None

        def run(inp, params):
            be.charge_assign(idx.size, inp["out"])
            return _note_result(_merge_region_vector(
                inp["out"],
                idx.copy(),
                vals,
                region,
                inp.get("mask"),
                accum,
                desc,
            ))

        return _lz.emit(
            "assign_scalar_v",
            run,
            {
                "mask": _lz.arg_mask(mask),
                "out": out._container if fill else _lz.arg(out),
            },
            {"fill": fill, "value": value, "n": out.size, "desc": desc},
            (out,),
        )
    r = _index_array(indices, out.nrows, "row")
    s = _index_array(cols, out.ncols, "column")
    rr = np.repeat(r, s.size)
    cc = np.tile(s, r.size)
    vals = np.full(rr.size, out.type.cast(value), dtype=out.type.dtype)
    current_backend().charge_assign(rr.size, out)
    return out._replace(
        _note_result(_merge_region_matrix(
            out.container,
            rr,
            cc,
            vals,
            np.sort(r),
            np.sort(s),
            mask.container if mask is not None else None,
            accum,
            desc,
        ))
    )


def assign_row(
    c: Matrix,
    u: Vector,
    i: int,
    cols=None,
    mask: Optional[Vector] = None,
    accum: Optional[BinaryOp] = None,
    desc: Descriptor = DEFAULT,
) -> Matrix:
    """``C(i, cols)<mask> accum= u`` (GrB_Row_assign).

    The mask, when given, is a vector over the row's columns; it is lifted
    to a one-row matrix mask internally.
    """
    mat_mask = _lift_row_mask(mask, c, i)
    s = _index_array(cols, c.ncols, "column")
    if s.size != u.size:
        raise DimensionMismatchError("row assign size", expected=s.size, actual=u.size)
    uc = u.container
    current_backend().charge_assign(uc.nvals, c)
    return c._replace(
        _note_result(_merge_region_matrix(
            c.container,
            np.full(uc.nvals, i, dtype=np.int64),
            s[uc.indices],
            uc.values,
            np.array([i], dtype=np.int64),
            np.sort(s),
            mat_mask,
            accum,
            desc,
        ))
    )


def assign_col(
    c: Matrix,
    u: Vector,
    j: int,
    rows=None,
    mask: Optional[Vector] = None,
    accum: Optional[BinaryOp] = None,
    desc: Descriptor = DEFAULT,
) -> Matrix:
    """``C(rows, j)<mask> accum= u`` (GrB_Col_assign)."""
    mat_mask = _lift_col_mask(mask, c, j)
    r = _index_array(rows, c.nrows, "row")
    if r.size != u.size:
        raise DimensionMismatchError("col assign size", expected=r.size, actual=u.size)
    uc = u.container
    current_backend().charge_assign(uc.nvals, c)
    return c._replace(
        _note_result(_merge_region_matrix(
            c.container,
            r[uc.indices],
            np.full(uc.nvals, j, dtype=np.int64),
            uc.values,
            np.sort(r),
            np.array([j], dtype=np.int64),
            mat_mask,
            accum,
            desc,
        ))
    )


def _lift_row_mask(mask: Optional[Vector], c: Matrix, i: int) -> Optional[CSRMatrix]:
    """Vector mask over columns -> C-shaped one-row matrix mask."""
    if mask is None:
        return None
    mc = mask.container
    indptr = np.zeros(c.nrows + 1, dtype=np.int64)
    indptr[i + 1 :] = mc.nvals
    return CSRMatrix(c.nrows, c.ncols, indptr, mc.indices.copy(), mc.values.copy(), mc.type)


def _lift_col_mask(mask: Optional[Vector], c: Matrix, j: int) -> Optional[CSRMatrix]:
    """Vector mask over rows -> C-shaped one-column matrix mask."""
    if mask is None:
        return None
    mc = mask.container
    indptr = np.zeros(c.nrows + 1, dtype=np.int64)
    indptr[mc.indices + 1] = 1
    np.cumsum(indptr, out=indptr)
    cols = np.full(mc.nvals, j, dtype=np.int64)
    return CSRMatrix(c.nrows, c.ncols, indptr, cols, mc.values.copy(), mc.type)
