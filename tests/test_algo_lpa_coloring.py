"""Label propagation, modularity, and greedy coloring."""

import networkx as nx
import numpy as np
import pytest

import repro as gb
from repro.algorithms import (
    greedy_color,
    label_propagation,
    modularity,
    verify_coloring,
)


def two_cliques(k=6):
    """Two k-cliques joined by a single bridge edge."""
    G1 = nx.complete_graph(k)
    G2 = nx.relabel_nodes(nx.complete_graph(k), {i: i + k for i in range(k)})
    G = nx.compose(G1, G2)
    G.add_edge(0, k)
    r = [e[0] for e in G.edges()] + [e[1] for e in G.edges()]
    c = [e[1] for e in G.edges()] + [e[0] for e in G.edges()]
    return gb.Matrix.from_lists(r, c, [1.0] * len(r), 2 * k, 2 * k), G


class TestLabelPropagation:
    def test_two_cliques_found(self, backend):
        g, _ = two_cliques()
        labels = label_propagation(g)
        lv = labels.to_dense(-1)
        assert len(set(lv[:6])) == 1 and len(set(lv[6:])) == 1
        assert lv[0] != lv[6]

    def test_labels_canonical_minimum(self, backend):
        g, _ = two_cliques()
        lv = label_propagation(g).to_dense(-1)
        for c in np.unique(lv):
            assert c == np.flatnonzero(lv == c).min()

    def test_empty_graph_singletons(self, backend):
        g = gb.Matrix.sparse(gb.FP64, 5, 5)
        lv = label_propagation(g).to_dense(-1)
        np.testing.assert_array_equal(lv, np.arange(5))

    def test_complete_graph_one_community(self, backend):
        g = gb.generators.complete_graph(7)
        lv = label_propagation(g).to_dense(-1)
        assert len(set(lv.tolist())) == 1

    def test_requires_square(self, backend):
        with pytest.raises(gb.InvalidValueError):
            label_propagation(gb.Matrix.sparse(gb.FP64, 2, 3))

    def test_deterministic(self, backend):
        g = gb.generators.watts_strogatz(40, 4, 0.1, seed=4)
        assert label_propagation(g) == label_propagation(g)


class TestModularity:
    def test_matches_networkx(self, backend):
        g, G = two_cliques()
        labels = label_propagation(g)
        lv = labels.to_dense(-1)
        communities = [
            set(np.flatnonzero(lv == c).tolist()) for c in np.unique(lv)
        ]
        expected = nx.community.modularity(G, communities)
        assert modularity(g, labels) == pytest.approx(expected)

    def test_single_community_negative_or_zero(self, backend):
        g = gb.generators.complete_graph(5)
        labels = gb.Vector.from_lists(range(5), [0] * 5, 5, gb.INT64)
        assert modularity(g, labels) == pytest.approx(0.0, abs=1e-12)

    def test_empty_graph(self, backend):
        g = gb.Matrix.sparse(gb.FP64, 3, 3)
        labels = gb.Vector.from_lists(range(3), range(3), 3, gb.INT64)
        assert modularity(g, labels) == 0.0

    def test_good_split_beats_bad_split(self, backend):
        g, _ = two_cliques()
        good = gb.Vector.from_lists(range(12), [0] * 6 + [1] * 6, 12, gb.INT64)
        bad = gb.Vector.from_lists(range(12), [i % 2 for i in range(12)], 12, gb.INT64)
        assert modularity(g, good) > modularity(g, bad)


class TestGreedyColoring:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_valid_on_random_graphs(self, backend, seed):
        g = gb.generators.erdos_renyi_gnp(30, 0.15, seed=seed)
        colors = greedy_color(g, seed=seed)
        assert verify_coloring(g, colors)

    def test_bipartite_two_colors(self, backend):
        g = gb.generators.path_graph(10)
        colors = greedy_color(g, seed=0)
        assert verify_coloring(g, colors)
        assert len(set(colors.to_dense(-1).tolist())) <= 3

    def test_complete_graph_needs_n(self, backend):
        g = gb.generators.complete_graph(5)
        colors = greedy_color(g, seed=1)
        assert verify_coloring(g, colors)
        assert len(set(colors.to_dense(-1).tolist())) == 5

    def test_empty_graph_one_color(self, backend):
        g = gb.Matrix.sparse(gb.FP64, 4, 4)
        colors = greedy_color(g, seed=0)
        assert verify_coloring(g, colors)
        assert set(colors.to_dense(-1).tolist()) == {0}

    def test_verify_rejects_monochromatic_edge(self, backend):
        g = gb.generators.path_graph(3)
        bad = gb.Vector.from_lists(range(3), [0, 0, 1], 3, gb.INT64)
        assert not verify_coloring(g, bad)

    def test_verify_rejects_partial(self, backend):
        g = gb.generators.path_graph(3)
        partial = gb.Vector.from_lists([0], [0], 3, gb.INT64)
        assert not verify_coloring(g, partial)


class TestOccupancyCalculator:
    def test_full_occupancy(self):
        from repro.gpu.occupancy import KernelResources, occupancy

        r = occupancy(KernelResources(256, registers_per_thread=32))
        assert r.occupancy == 1.0 and r.limiter == "warp slots"

    def test_register_limited(self):
        from repro.gpu.occupancy import KernelResources, occupancy

        r = occupancy(KernelResources(256, registers_per_thread=255))
        assert r.limiter == "registers" and r.occupancy < 0.25

    def test_shared_memory_limited(self):
        from repro.gpu.occupancy import KernelResources, occupancy

        r = occupancy(KernelResources(64, shared_mem_per_block=24 * 1024))
        assert r.limiter == "shared memory" and r.blocks_per_sm == 2

    def test_block_slot_limited(self):
        from repro.gpu.occupancy import KernelResources, occupancy

        r = occupancy(KernelResources(32, registers_per_thread=8))
        assert r.limiter == "block slots" and r.blocks_per_sm == 16

    def test_invalid_configs(self):
        from repro.gpu.occupancy import KernelResources, occupancy

        with pytest.raises(gb.InvalidLaunchError):
            occupancy(KernelResources(0))
        with pytest.raises(gb.InvalidLaunchError):
            occupancy(KernelResources(4096))
        with pytest.raises(gb.InvalidLaunchError):
            occupancy(KernelResources(64, shared_mem_per_block=10**6))


class TestBinaryIO:
    def test_matrix_roundtrip(self, tmp_path):
        g = gb.generators.rmat(scale=6, edge_factor=4, seed=1, weighted=True)
        p = tmp_path / "g.npz"
        gb.io.save_matrix(g, p)
        assert gb.io.load_matrix(p) == g

    def test_vector_roundtrip(self, tmp_path):
        v = gb.Vector.from_lists([3, 9], [1.5, -2.5], 16)
        p = tmp_path / "v.npz"
        gb.io.save_vector(v, p)
        assert gb.io.load_vector(p) == v

    def test_type_preserved(self, tmp_path):
        m = gb.Matrix.from_lists([0], [1], [7], 2, 2, gb.INT32)
        p = tmp_path / "m.npz"
        gb.io.save_matrix(m, p)
        assert gb.io.load_matrix(p).type is gb.INT32

    def test_wrong_magic_rejected(self, tmp_path):
        v = gb.Vector.from_lists([0], [1.0], 2)
        p = tmp_path / "v.npz"
        gb.io.save_vector(v, p)
        with pytest.raises(gb.InvalidValueError):
            gb.io.load_matrix(p)
