"""Differential execution of graph-mutation programs.

A mutation program (:func:`repro.testing.programs.generate_mutation_program`)
interleaves random edge batches, explicit compactions, and incremental
analytics queries over one generated graph.  This module replays it on a
backend spec with the graph wrapped in a
:class:`~repro.streaming.graph.DynamicGraph` and the queries answered by
the incremental views (:mod:`repro.streaming.incremental`).

Two independent oracles check every run:

1. **incremental ≡ full recompute** — inside each spec, every query's
   incremental answer is compared against the plain algorithm run on an
   independent materialisation of the current graph (bit-identical for
   BFS/CC; tolerance-bounded for PageRank, whose warm and cold runs are
   both ``tol``-accurate approximations of the same fixpoint);
2. **cross-backend agreement** — per-op snapshots (applied-batch shapes,
   compaction nnz, query results, and the final materialised CSR) must
   agree with the reference backend under the shared equivalence policy.

Failures shrink through a mutation-aware greedy shrinker (ops here have no
slot dependencies, so dropping any op keeps the program valid) and are
written to ``tests/regressions/`` as standalone pytest repros.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Any, Callable, List, Optional, Tuple

from ..algorithms.bfs import bfs_levels
from ..algorithms.components import connected_components
from ..algorithms.pagerank import pagerank
from ..core.vector import Vector
from ..streaming import (
    DynamicGraph,
    IncrementalBFS,
    IncrementalCC,
    IncrementalPageRank,
    random_edge_batch,
)
from .equivalence import describe_mismatch, same
from .executor import Divergence, backend_session
from .programs import Program, build_graph

__all__ = [
    "STREAMING_SMOKE_SPECS",
    "STREAMING_SPECS",
    "execute_streaming",
    "run_streaming_differential",
    "shrink_streaming",
    "write_streaming_repro",
]

# The replay matrix the ISSUE names: cuda_sim with the lazy tape on and
# off, and multi_sim at P ∈ {1, 2, 4}.
STREAMING_SMOKE_SPECS = (
    "reference",
    "cpu",
    "cuda_sim",
    "cuda_sim:lazy=off",
    "multi_sim:2:degree_balanced",
)

STREAMING_SPECS = (
    "reference",
    "cpu",
    "cuda_sim",
    "cuda_sim:lazy=off",
    "cuda_sim:noreuse",
    "multi_sim:1:equal_rows",
    "multi_sim:2:degree_balanced",
    "multi_sim:4:equal_rows",
)

# PageRank settings for fuzz queries: tight tolerance so the warm- and
# cold-started iterations land within _PR_RTOL of each other and of every
# other backend's answer.
_PR_TOL = 1e-12
_PR_MAX_ITER = 400
_PR_RTOL = 1e-6


def _full_recompute(algo: str, g: DynamicGraph, source: int) -> Vector:
    """The oracle: the plain algorithm on an independent materialisation."""
    snap = g.snapshot()
    if algo == "bfs":
        return bfs_levels(snap, source)
    if algo == "cc":
        return connected_components(snap)
    return pagerank(snap, tol=_PR_TOL, max_iter=_PR_MAX_ITER)


def execute_streaming(
    program: Program, spec: str = "reference", oracle: bool = True
) -> Tuple[List[Any], Optional[Divergence]]:
    """Replay one mutation program under ``spec``.

    Returns ``(snapshots, oracle_divergence)``: one snapshot per op, plus
    the first incremental-vs-full-recompute mismatch observed inside this
    spec (or None).  Snapshots are host-side values suitable for
    cross-backend comparison.
    """
    snapshots: List[Any] = []
    oracle_div: Optional[Divergence] = None
    with backend_session(spec):
        g = DynamicGraph(build_graph(program.graph).dup())
        views: dict = {}

        def view_for(algo: str, source: int):
            key = (algo, source)
            if key not in views:
                if algo == "bfs":
                    views[key] = IncrementalBFS(g, source)
                elif algo == "cc":
                    views[key] = IncrementalCC(g)
                else:
                    views[key] = IncrementalPageRank(
                        g, tol=_PR_TOL, max_iter=_PR_MAX_ITER
                    )
            return views[key]

        for i, op in enumerate(program.ops):
            kind = op["op"]
            if kind == "edge_batch":
                batch = random_edge_batch(
                    int(op["bseed"]),
                    g.n,
                    inserts=int(op["inserts"]),
                    deletes=int(op["deletes"]),
                    existing=g.edges(),
                )
                g.apply(batch)
                snapshots.append(
                    ("applied", len(batch), batch.insert_count, g.nvals())
                )
            elif kind == "compact":
                did = g.compact()
                snapshots.append(("compacted", bool(did), g.base_nvals))
            elif kind == "query":
                algo = op["algo"]
                source = int(op["source"]) % g.n
                got = view_for(algo, source).query().dup()
                snapshots.append((algo, got))
                if oracle and oracle_div is None:
                    expected = _full_recompute(algo, g, source)
                    exact = algo != "pagerank"
                    rtol = 1e-12 if exact else _PR_RTOL
                    if not same(got, expected, exact=exact, rtol=rtol):
                        oracle_div = Divergence(
                            spec,
                            i,
                            f"query:{algo}",
                            "incremental != full recompute: "
                            + describe_mismatch(got, expected),
                        )
            else:  # pragma: no cover - generator never emits unknown ops
                raise ValueError(f"unknown mutation op {kind!r}")
        # The materialised end state is part of the observable behaviour.
        final = g.matrix.dup()
        final.container.validate()
        snapshots.append(("final_graph", final))
    return snapshots, oracle_div


def _compare_streaming(got: Any, expected: Any) -> Optional[str]:
    """Compare one snapshot pair; returns a mismatch description or None."""
    if isinstance(expected, tuple) and expected and isinstance(expected[0], str):
        tag_e = expected[0]
        tag_g = got[0] if isinstance(got, tuple) and got else None
        if tag_g != tag_e:
            return f"snapshot kind {tag_g!r} != {tag_e!r}"
        if tag_e in ("applied", "compacted"):
            if tuple(got[1:]) != tuple(expected[1:]):
                return f"{tag_e} snapshot {got[1:]} != {expected[1:]}"
            return None
        # (algo, Vector) query snapshots and ("final_graph", Matrix).
        exact = tag_e != "pagerank"
        rtol = 1e-12 if exact else _PR_RTOL
        if not same(got[1], expected[1], exact=exact, rtol=rtol):
            return describe_mismatch(got[1], expected[1])
        return None
    if not same(got, expected, exact=True):
        return describe_mismatch(got, expected)
    return None


def run_streaming_differential(
    program: Program,
    specs: Optional[Tuple[str, ...]] = None,
) -> Optional[Divergence]:
    """Replay a mutation program on every spec; first divergence or None.

    Both oracles apply: the in-spec incremental-vs-full check runs on every
    spec (including reference), then snapshots are compared against the
    reference run.
    """
    specs = tuple(specs or STREAMING_SPECS)
    oracle, odiv = execute_streaming(program, "reference")
    if odiv is not None:
        return odiv
    op_names = [o["op"] for o in program.ops] + ["final_graph"]
    for spec in specs:
        if spec == "reference":
            continue
        got, gdiv = execute_streaming(program, spec)
        if gdiv is not None:
            return gdiv
        for i, (gs, es) in enumerate(zip(got, oracle)):
            detail = _compare_streaming(gs, es)
            if detail is not None:
                return Divergence(spec, i, op_names[i], detail)
    return None


# ---------------------------------------------------------------------------
# Mutation-aware shrinking
# ---------------------------------------------------------------------------


def _shrink_candidates(program: Program):
    """Smaller mutation programs, most aggressive first.

    Mutation ops carry no slot references, so any subset of ops is a valid
    program; candidates drop ops, shrink the graph, and thin batches.
    """
    ops = program.ops

    def with_ops(new_ops) -> Program:
        return Program(
            graph=dict(program.graph), seed=program.seed,
            ops=[dict(o) for o in new_ops],
        )

    # Drop ops, last first (keeps earlier state-building mutations).
    for i in reversed(range(len(ops))):
        if len(ops) > 1:
            yield with_ops(ops[:i] + ops[i + 1:])
    # Shrink the graph.
    size = int(program.graph["size"])
    for smaller in (size // 2, size // 4, 8, 5):
        if 2 <= smaller < size:
            yield Program(
                graph=dict(program.graph, size=smaller), seed=program.seed,
                ops=[dict(o) for o in ops],
            )
    if program.graph["weighted"]:
        yield Program(
            graph=dict(program.graph, weighted=False), seed=program.seed,
            ops=[dict(o) for o in ops],
        )
    # Thin batches: drop deletes first (simpler failure class), then halve
    # inserts.
    for i, op in enumerate(ops):
        if op["op"] != "edge_batch":
            continue
        if int(op["deletes"]) > 0:
            cand = [dict(o) for o in ops]
            cand[i]["deletes"] = 0
            yield with_ops(cand)
        if int(op["inserts"]) > 1:
            cand = [dict(o) for o in ops]
            cand[i]["inserts"] = int(op["inserts"]) // 2
            yield with_ops(cand)


def shrink_streaming(
    program: Program,
    still_fails: Callable[[Program], bool],
    max_probes: int = 300,
) -> Program:
    """Greedily minimise a failing mutation program."""
    probes = 0

    def probe(cand: Program) -> bool:
        nonlocal probes
        if probes >= max_probes:
            return False
        probes += 1
        try:
            return bool(still_fails(cand))
        except Exception:
            return False

    current = program
    changed = True
    while changed and probes < max_probes:
        changed = False
        for cand in _shrink_candidates(current):
            if probe(cand):
                current = cand
                changed = True
                break
    return current


_REPRO_TEMPLATE = '''"""Auto-generated streaming regression repro (repro.testing.streaming).

Shrunk failing mutation program: {describe}
Original divergence: {divergence}

Reproduce / investigate with::

    PYTHONPATH=src python -m repro.testing.fuzz --streaming --replay {filename}

This test stays green once the underlying bug is fixed; keep it as a
permanent regression guard.
"""

from repro.testing.programs import Program
from repro.testing.streaming import run_streaming_differential

PROGRAM = {program_dict!r}


def test_shrunk_mutation_program_{tag}():
    divergence = run_streaming_differential(Program.from_dict(PROGRAM))
    assert divergence is None, str(divergence)
'''


def write_streaming_repro(program: Program, divergence, directory: Path) -> Path:
    """Write a standalone pytest repro for a mutation-program failure."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    tag = hashlib.sha1(program.to_json().encode()).hexdigest()[:10]
    path = directory / f"test_shrunk_stream_{tag}.py"
    path.write_text(
        _REPRO_TEMPLATE.format(
            describe=program.describe(),
            divergence=str(divergence),
            filename=path.name,
            program_dict=program.to_dict(),
            tag=tag,
        )
    )
    return path
