"""Figure 5 (ablation) — push vs pull masked SpMSpV by frontier density.

Design-choice ablation from DESIGN.md: the masked (MIN, PLUS) mxv that
drives BFS/SSSP, with the frontier occupancy swept from 0.1% to ~100%, run
with the direction forced to push and to pull.  Shape claims: push wins on
sparse frontiers (work ∝ frontier degree sum), pull wins on dense frontiers
(work ∝ nnz but sequential access, and masked-row pruning), and the two
curves cross — the direction-optimisation argument of Beamer et al. that
GBTL's masked SpMV inherits.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro as gb
from repro.bench.harness import time_operation
from repro.bench.tables import format_series
from repro.bench.workloads import random_frontier
from repro.core import operations as ops
from repro.core.semiring import MIN_PLUS
from repro.gpu import loadbalance

from conftest import bench_backend, save_table

FRACTIONS = [0.001, 0.01, 0.05, 0.2, 0.6, 1.0]
_G = gb.generators.rmat(scale=12, edge_factor=8, seed=31, weighted=True)


def make_case(fraction, direction):
    n = _G.nrows
    nnz = max(1, int(n * fraction))
    u = random_frontier(n, nnz, seed=5)
    _G.csc()  # pre-build the column cache so push needs no transpose

    def run():
        w = gb.Vector.sparse(gb.FP64, n)
        return ops.mxv(w, _G, u, MIN_PLUS, direction=direction)

    return run


@pytest.mark.parametrize("direction", ["push", "pull"])
@pytest.mark.parametrize("fraction", FRACTIONS)
def test_fig5_direction(benchmark, direction, fraction):
    bench_backend(benchmark, "cpu", make_case(fraction, direction), rounds=3)


def test_fig5_render(benchmark):
    def build():
        series = {"push": [], "pull": [], "auto": []}
        sim = {"push": [], "pull": []}
        for f in FRACTIONS:
            for d in series:
                series[d].append(
                    time_operation("cpu", make_case(f, d), repeat=5).seconds
                )
            for d in sim:
                # This figure ablates *direction* with each kernel's native
                # schedule; lane rebinning (bench_table6) would otherwise
                # narrow pull's short-row penalty and blur the crossover.
                with loadbalance.lanes_disabled():
                    sim[d].append(
                        time_operation("cuda_sim", make_case(f, d)).seconds
                    )
        fig = format_series(
            "Figure 5 — push vs pull mxv on rmat_s12, CPU wall time (s)",
            "frontier frac",
            FRACTIONS,
            series,
        )
        fig_sim = format_series(
            "Figure 5b — same sweep, simulated GPU device time (s)",
            "frontier frac",
            FRACTIONS,
            sim,
        )
        save_table("fig5_push_pull", fig + "\n\n" + fig_sim)
        # Shape: push wins at the sparsest point, pull wins at the densest,
        # on both the measured CPU and the modeled GPU.
        for d in (series, sim):
            assert d["push"][0] < d["pull"][0], "push must win on sparse frontiers"
            assert d["pull"][-1] < d["push"][-1], "pull must win on dense frontiers"
        # Shape: auto tracks the winner within 3x at the extremes.
        assert series["auto"][0] < 3 * series["push"][0]
        assert series["auto"][-1] < 3 * series["pull"][-1]
        return fig

    benchmark.pedantic(build, rounds=1, iterations=1)
