"""Kernel-launch profiler for the simulated device.

Records one :class:`LaunchRecord` per kernel launch and per transfer; the
benchmark harness reads the aggregate to report simulated GPU times (the
host wall-clock of the simulation itself is meaningless for the GPU series).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["LaunchRecord", "Profiler"]


@dataclass(frozen=True)
class LaunchRecord:
    """One simulated event: a kernel launch or a PCIe transfer."""

    name: str
    kind: str  # "kernel" | "h2d" | "d2h"
    start_us: float
    duration_us: float
    flops: float = 0.0
    bytes: float = 0.0
    threads: int = 0

    @property
    def end_us(self) -> float:
        return self.start_us + self.duration_us


class Profiler:
    """Accumulates launch records and provides aggregates."""

    def __init__(self) -> None:
        self.records: List[LaunchRecord] = []

    def record(self, rec: LaunchRecord) -> None:
        self.records.append(rec)

    def reset(self) -> None:
        self.records.clear()

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    @property
    def total_time_us(self) -> float:
        return sum(r.duration_us for r in self.records)

    @property
    def kernel_time_us(self) -> float:
        return sum(r.duration_us for r in self.records if r.kind == "kernel")

    @property
    def transfer_time_us(self) -> float:
        return sum(r.duration_us for r in self.records if r.kind in ("h2d", "d2h"))

    @property
    def launch_count(self) -> int:
        return sum(1 for r in self.records if r.kind == "kernel")

    @property
    def h2d_bytes(self) -> float:
        """Bytes actually copied host→device (elided uploads excluded)."""
        return sum(r.bytes for r in self.records if r.kind == "h2d")

    @property
    def replay_count(self) -> int:
        """Aggregated graph-replay launches (see repro.gpu.graph)."""
        return sum(
            1
            for r in self.records
            if r.kind == "kernel" and r.name.startswith("graph_replay[")
        )

    def by_kernel(self) -> Dict[str, Dict[str, float]]:
        """Per-kernel-name aggregate: count, total time, flops, bytes."""
        out: Dict[str, Dict[str, float]] = {}
        for r in self.records:
            if r.kind != "kernel":
                continue
            agg = out.setdefault(
                r.name, {"count": 0, "time_us": 0.0, "flops": 0.0, "bytes": 0.0}
            )
            agg["count"] += 1
            agg["time_us"] += r.duration_us
            agg["flops"] += r.flops
            agg["bytes"] += r.bytes
        return out

    def summary(self) -> str:
        """Human-readable per-kernel table (for examples/EXPERIMENTS)."""
        lines = [f"{'kernel':<28}{'count':>7}{'time_us':>12}{'GB':>9}"]
        for name, agg in sorted(self.by_kernel().items()):
            lines.append(
                f"{name:<28}{int(agg['count']):>7}{agg['time_us']:>12.1f}"
                f"{agg['bytes'] / 1e9:>9.3f}"
            )
        lines.append(
            f"{'transfers':<28}{'':>7}{self.transfer_time_us:>12.1f}"
        )
        return "\n".join(lines)
