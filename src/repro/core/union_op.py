"""``eWiseUnion`` — elementwise union with fill values (GxB extension).

Unlike :func:`~repro.core.operations.ewise_add`, which passes lone entries
through *unchanged*, ``ewise_union`` always applies the operator,
substituting ``alpha`` for an absent left operand and ``beta`` for an
absent right operand::

    eWiseAdd  (MINUS): a present, b absent -> a          (pass-through)
    eWiseUnion(MINUS): a present, b absent -> a - beta   (operator applied)

This is the operation that makes non-commutative subtraction/division over
sparse operands behave like its dense counterpart.  The result pattern is
still the union (positions absent on both sides stay absent).

Implemented once at the frontend over the canonical containers (it is a
pure merge with no backend-specific value), then routed through the shared
write pipeline for mask/accum/replace.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ..containers.csr import CSRMatrix
from ..containers.sparsevec import SparseVector
from ..exceptions import DimensionMismatchError
from ..types import promote
from .accumulate import merge_matrix, merge_vector
from .descriptor import DEFAULT, Descriptor
from .matrix import Matrix
from .operators import BinaryOp
from .vector import Vector

__all__ = ["ewise_union"]


def _union_indexed(
    a_idx: np.ndarray,
    a_vals: np.ndarray,
    alpha: Any,
    b_idx: np.ndarray,
    b_vals: np.ndarray,
    beta: Any,
    op: BinaryOp,
    out_dtype: np.dtype,
):
    union = np.union1d(a_idx, b_idx)
    lhs = np.full(union.size, alpha, dtype=np.result_type(a_vals.dtype, type(alpha)))
    rhs = np.full(union.size, beta, dtype=np.result_type(b_vals.dtype, type(beta)))
    if a_idx.size:
        pos = np.searchsorted(union, a_idx)
        lhs[pos] = a_vals
    if b_idx.size:
        pos = np.searchsorted(union, b_idx)
        rhs[pos] = b_vals
    vals = np.asarray(op(lhs, rhs)).astype(out_dtype, copy=False)
    return union, vals


def ewise_union(
    out,
    a,
    alpha: Any,
    b,
    beta: Any,
    op: BinaryOp,
    mask=None,
    accum: Optional[BinaryOp] = None,
    desc: Descriptor = DEFAULT,
):
    """``out<mask> accum= op(a ∪ alpha, b ∪ beta)`` (GxB_eWiseUnion).

    ``a``/``b`` are both Vectors or both Matrices matching ``out``;
    ``alpha``/``beta`` are the fill scalars for absent entries.
    """
    if isinstance(out, Vector):
        if a.size != b.size:
            raise DimensionMismatchError("operand sizes", expected=a.size, actual=b.size)
        if out.size != a.size:
            raise DimensionMismatchError("output size", expected=a.size, actual=out.size)
        ac, bc = a.container, b.container
        out_t = op.result_type(promote(ac.type, bc.type))
        idx, vals = _union_indexed(
            ac.indices, ac.values, alpha, bc.indices, bc.values, beta, op, out_t.dtype
        )
        t = SparseVector(a.size, idx, vals, out_t)
        mc = mask.container if mask is not None else None
        return out._replace(merge_vector(out.container, t, mc, accum, desc))
    if a.shape != b.shape:
        raise DimensionMismatchError("operand shapes", expected=a.shape, actual=b.shape)
    if out.shape != a.shape:
        raise DimensionMismatchError("output shape", expected=a.shape, actual=out.shape)
    ac, bc = a.container, b.container
    out_t = op.result_type(promote(ac.type, bc.type))
    a_rows = np.repeat(np.arange(ac.nrows, dtype=np.int64), ac.row_degrees())
    b_rows = np.repeat(np.arange(bc.nrows, dtype=np.int64), bc.row_degrees())
    a_keys = a_rows * np.int64(ac.ncols) + ac.indices
    b_keys = b_rows * np.int64(bc.ncols) + bc.indices
    keys, vals = _union_indexed(
        a_keys, ac.values, alpha, b_keys, bc.values, beta, op, out_t.dtype
    )
    rows = keys // ac.ncols if ac.ncols else keys
    cols = keys - rows * ac.ncols if ac.ncols else keys
    indptr = np.zeros(ac.nrows + 1, dtype=np.int64)
    if rows.size:
        np.add.at(indptr, rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    t = CSRMatrix(ac.nrows, ac.ncols, indptr, cols, vals, out_t)
    mc = mask.container if mask is not None else None
    return out._replace(merge_matrix(out.container, t, mc, accum, desc))
