"""COO (coordinate / triplet) staging container.

COO is the *build* format: ``Matrix.build`` and the generators produce
(row, col, value) triplets, possibly with duplicates, which are deduplicated
with a user-supplied binary operator and converted to CSR/CSC for compute.
This mirrors ``GrB_Matrix_build`` semantics: duplicates are combined with
``dup`` (default is an error in the strict spec; like most implementations we
default to PLUS-style combining only when asked).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..exceptions import IndexOutOfBoundsError, InvalidValueError
from ..types import GrBType, from_dtype
from ..core.operators import BinaryOp

__all__ = ["COO", "dedupe_triplets"]


def dedupe_triplets(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    dup: Optional[BinaryOp],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort triplets by (row, col) and combine duplicates with ``dup``.

    Returns sorted, duplicate-free ``(rows, cols, vals)``.  Raises
    :class:`InvalidValueError` when duplicates exist and ``dup`` is None.
    Combining is performed left-to-right in input order, matching the spec's
    sequential-combine semantics for non-associative ``dup`` operators.
    """
    if rows.size == 0:
        return rows, cols, vals
    order = np.lexsort((cols, rows))
    rows, cols, vals = rows[order], cols[order], vals[order]
    same = (rows[1:] == rows[:-1]) & (cols[1:] == cols[:-1])
    if not same.any():
        return rows, cols, vals
    if dup is None:
        raise InvalidValueError("duplicate indices in build and no dup operator")
    # Group boundaries: positions where a new (row, col) starts.
    starts = np.flatnonzero(np.concatenate(([True], ~same)))
    out_vals = vals[starts].copy()
    # Fast path for associative+commutative dups expressible as ufunc.reduceat.
    ufunc = getattr(dup.func, "reduceat", None)
    if ufunc is not None and dup.associative:
        out_vals = dup.func.reduceat(vals, starts)
    else:
        counts = np.diff(np.append(starts, rows.size))
        for gi in np.flatnonzero(counts > 1):
            s = starts[gi]
            acc = vals[s]
            for k in range(1, counts[gi]):
                acc = dup(acc, vals[s + k])
            out_vals[gi] = acc
    return rows[starts], cols[starts], np.asarray(out_vals, dtype=vals.dtype)


class COO:
    """Coordinate-format triplets with validation.

    Parameters
    ----------
    nrows, ncols:
        Logical dimensions (both >= 1 per spec; 0 allowed for convenience).
    rows, cols, vals:
        Parallel arrays.  They are validated against the dimensions and
        stored as contiguous NumPy arrays.  ``vals`` fixes the domain.
    """

    __slots__ = ("nrows", "ncols", "rows", "cols", "vals", "type")

    def __init__(self, nrows: int, ncols: int, rows, cols, vals, typ: Optional[GrBType] = None):
        if nrows < 0 or ncols < 0:
            raise InvalidValueError(f"negative dimensions ({nrows}, {ncols})")
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.rows = np.ascontiguousarray(rows, dtype=np.int64)
        self.cols = np.ascontiguousarray(cols, dtype=np.int64)
        vals = np.asarray(vals)
        if typ is not None:
            vals = vals.astype(typ.dtype, copy=False)
        self.vals = np.ascontiguousarray(vals)
        self.type = typ if typ is not None else from_dtype(self.vals.dtype)
        if not (self.rows.shape == self.cols.shape == self.vals.shape):
            raise InvalidValueError(
                "rows, cols, vals must have equal lengths "
                f"({self.rows.size}, {self.cols.size}, {self.vals.size})"
            )
        if self.rows.size:
            if self.rows.min(initial=0) < 0 or (
                self.nrows and self.rows.max(initial=-1) >= self.nrows
            ):
                raise IndexOutOfBoundsError(
                    f"row index outside [0, {self.nrows})"
                )
            if self.cols.min(initial=0) < 0 or (
                self.ncols and self.cols.max(initial=-1) >= self.ncols
            ):
                raise IndexOutOfBoundsError(
                    f"column index outside [0, {self.ncols})"
                )

    @property
    def nvals(self) -> int:
        return int(self.rows.size)

    def deduped(self, dup: Optional[BinaryOp]) -> "COO":
        """Return a sorted duplicate-free copy (see :func:`dedupe_triplets`)."""
        r, c, v = dedupe_triplets(self.rows, self.cols, self.vals, dup)
        return COO(self.nrows, self.ncols, r, c, v, self.type)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"COO({self.nrows}x{self.ncols}, nvals={self.nvals}, {self.type.name})"
