"""mxv / vxm / mxm semantics, validated against dense NumPy on all backends."""

import numpy as np
import pytest

import repro as gb
from repro.core import operations as ops
from repro.core.semiring import (
    LOR_LAND,
    MAX_SECOND,
    MIN_FIRST,
    MIN_PLUS,
    PLUS_PAIR,
    PLUS_TIMES,
)

from .conftest import random_dense_matrix, random_dense_vector


def dense_mxv_plus_times(A, u):
    """Sparse-aware dense reference: output present iff some product exists."""
    out = np.zeros(A.shape[0])
    present = np.zeros(A.shape[0], dtype=bool)
    for i in range(A.shape[0]):
        for j in range(A.shape[1]):
            if A[i, j] != 0 and u[j] != 0:
                out[i] += A[i, j] * u[j]
                present[i] = True
    return out, present


def dense_mxv_min_plus(A, u):
    out = np.full(A.shape[0], np.inf)
    present = np.zeros(A.shape[0], dtype=bool)
    for i in range(A.shape[0]):
        for j in range(A.shape[1]):
            if A[i, j] != 0 and u[j] != 0:
                out[i] = min(out[i], A[i, j] + u[j])
                present[i] = True
    return out, present


class TestMxv:
    def test_plus_times_matches_dense(self, backend, rng):
        A = random_dense_matrix(rng, 8, 6)
        u = random_dense_vector(rng, 6)
        a = gb.Matrix.from_dense(A)
        v = gb.Vector.from_dense(u)
        w = gb.Vector.sparse(gb.FP64, 8)
        ops.mxv(w, a, v, PLUS_TIMES)
        expect, present = dense_mxv_plus_times(A, u)
        np.testing.assert_array_equal(w.to_dense(0) != 0, present | (w.to_dense(0) != 0))
        for i in range(8):
            if present[i]:
                assert abs(w.get(i, 0.0) - expect[i]) < 1e-9
            else:
                assert i not in w

    def test_min_plus(self, backend, rng):
        A = random_dense_matrix(rng, 7, 7, density=0.4)
        u = random_dense_vector(rng, 7)
        w = gb.Vector.sparse(gb.FP64, 7)
        ops.mxv(w, gb.Matrix.from_dense(A), gb.Vector.from_dense(u), MIN_PLUS)
        expect, present = dense_mxv_min_plus(A, u)
        for i in range(7):
            if present[i]:
                assert abs(w.get(i) - expect[i]) < 1e-9
            else:
                assert i not in w

    def test_empty_vector_gives_empty(self, backend):
        a = gb.Matrix.from_dense(np.ones((3, 3)))
        w = gb.Vector.sparse(gb.FP64, 3)
        ops.mxv(w, a, gb.Vector.sparse(gb.FP64, 3), PLUS_TIMES)
        assert w.nvals == 0

    def test_dim_mismatch(self, backend):
        a = gb.Matrix.sparse(gb.FP64, 3, 4)
        with pytest.raises(gb.DimensionMismatchError):
            ops.mxv(gb.Vector.sparse(gb.FP64, 3), a, gb.Vector.sparse(gb.FP64, 3))
        with pytest.raises(gb.DimensionMismatchError):
            ops.mxv(gb.Vector.sparse(gb.FP64, 2), a, gb.Vector.sparse(gb.FP64, 4))

    def test_transpose_a(self, backend, rng):
        A = random_dense_matrix(rng, 5, 7)
        u = random_dense_vector(rng, 5, density=0.8)
        w = gb.Vector.sparse(gb.FP64, 7)
        ops.mxv(w, gb.Matrix.from_dense(A), gb.Vector.from_dense(u), PLUS_TIMES, desc=gb.TRANSPOSE_A)
        expect, present = dense_mxv_plus_times(A.T, u)
        for i in range(7):
            if present[i]:
                assert abs(w.get(i) - expect[i]) < 1e-9

    @pytest.mark.parametrize("direction", ["push", "pull"])
    def test_push_pull_same_result(self, backend, rng, direction):
        A = random_dense_matrix(rng, 9, 9, density=0.3)
        u = random_dense_vector(rng, 9, density=0.3)
        a = gb.Matrix.from_dense(A)
        v = gb.Vector.from_dense(u)
        w = gb.Vector.sparse(gb.FP64, 9)
        ops.mxv(w, a, v, PLUS_TIMES, direction=direction)
        w_auto = gb.Vector.sparse(gb.FP64, 9)
        ops.mxv(w_auto, a, v, PLUS_TIMES, direction="auto")
        assert w == w_auto

    def test_masked_mxv_only_writes_mask_true(self, backend):
        a = gb.Matrix.from_dense(np.ones((4, 4)))
        u = gb.Vector.from_dense(np.ones(4))
        mask = gb.Vector.from_lists([0, 2], [True, True], 4, gb.BOOL)
        w = gb.Vector.sparse(gb.FP64, 4)
        ops.mxv(w, a, u, PLUS_TIMES, mask=mask)
        assert sorted(w.to_lists()[0]) == [0, 2]
        assert w.get(0) == 4.0


class TestVxm:
    def test_matches_transposed_mxv(self, backend, rng):
        A = random_dense_matrix(rng, 6, 8)
        u = random_dense_vector(rng, 6)
        a = gb.Matrix.from_dense(A)
        v = gb.Vector.from_dense(u)
        w1 = gb.Vector.sparse(gb.FP64, 8)
        ops.vxm(w1, v, a, PLUS_TIMES)
        w2 = gb.Vector.sparse(gb.FP64, 8)
        ops.mxv(w2, a, v, PLUS_TIMES, desc=gb.TRANSPOSE_A)
        assert w1 == w2

    def test_non_commutative_mult_order(self, backend):
        # vxm must compute mult(u_k, A_kj): with FIRST the result is u's value.
        a = gb.Matrix.from_lists([0], [1], [99.0], 2, 2)
        u = gb.Vector.from_lists([0], [7.0], 2)
        w = gb.Vector.sparse(gb.FP64, 2)
        ops.vxm(w, u, a, MIN_FIRST)
        assert w.get(1) == 7.0

    def test_mxv_non_commutative_mult_order(self, backend):
        # mxv must compute mult(A_ij, u_j): with FIRST the result is A's value.
        a = gb.Matrix.from_lists([0], [1], [99.0], 2, 2)
        u = gb.Vector.from_lists([1], [7.0], 2)
        w = gb.Vector.sparse(gb.FP64, 2)
        ops.mxv(w, a, u, MIN_FIRST)
        assert w.get(0) == 99.0

    @pytest.mark.parametrize("direction", ["push", "pull"])
    def test_directions_agree(self, backend, rng, direction):
        A = random_dense_matrix(rng, 9, 9, density=0.3)
        u = random_dense_vector(rng, 9, density=0.4)
        w = gb.Vector.sparse(gb.FP64, 9)
        ops.vxm(w, gb.Vector.from_dense(u), gb.Matrix.from_dense(A), MIN_PLUS, direction=direction)
        w2 = gb.Vector.sparse(gb.FP64, 9)
        ops.vxm(w2, gb.Vector.from_dense(u), gb.Matrix.from_dense(A), MIN_PLUS, direction="pull")
        assert w == w2


class TestMxm:
    def test_plus_times_matches_numpy(self, backend, rng):
        A = random_dense_matrix(rng, 6, 5)
        B = random_dense_matrix(rng, 5, 7)
        c = gb.Matrix.sparse(gb.FP64, 6, 7)
        ops.mxm(c, gb.Matrix.from_dense(A), gb.Matrix.from_dense(B), PLUS_TIMES)
        np.testing.assert_allclose(c.to_dense(), A @ B, atol=1e-9)

    def test_bool_semiring_reachability(self, backend):
        A = np.array([[0, 1, 0], [0, 0, 1], [0, 0, 0]], dtype=float)
        c = gb.Matrix.sparse(gb.BOOL, 3, 3)
        ops.mxm(c, gb.Matrix.from_dense(A), gb.Matrix.from_dense(A), LOR_LAND)
        assert c.get(0, 2) == True  # noqa: E712
        assert c.nvals == 1

    def test_inner_dim_mismatch(self, backend):
        with pytest.raises(gb.DimensionMismatchError):
            ops.mxm(
                gb.Matrix.sparse(gb.FP64, 2, 2),
                gb.Matrix.sparse(gb.FP64, 2, 3),
                gb.Matrix.sparse(gb.FP64, 4, 2),
            )

    def test_output_shape_mismatch(self, backend):
        with pytest.raises(gb.DimensionMismatchError):
            ops.mxm(
                gb.Matrix.sparse(gb.FP64, 3, 3),
                gb.Matrix.sparse(gb.FP64, 2, 3),
                gb.Matrix.sparse(gb.FP64, 3, 2),
            )

    def test_transpose_b(self, backend, rng):
        A = random_dense_matrix(rng, 4, 5)
        B = random_dense_matrix(rng, 6, 5)
        c = gb.Matrix.sparse(gb.FP64, 4, 6)
        ops.mxm(c, gb.Matrix.from_dense(A), gb.Matrix.from_dense(B), PLUS_TIMES, desc=gb.TRANSPOSE_B)
        np.testing.assert_allclose(c.to_dense(), A @ B.T, atol=1e-9)

    def test_transpose_both(self, backend, rng):
        A = random_dense_matrix(rng, 5, 4)
        B = random_dense_matrix(rng, 6, 5)
        c = gb.Matrix.sparse(gb.FP64, 4, 6)
        ops.mxm(
            c,
            gb.Matrix.from_dense(A),
            gb.Matrix.from_dense(B),
            PLUS_TIMES,
            desc=gb.TRANSPOSE_AB,
        )
        np.testing.assert_allclose(c.to_dense(), A.T @ B.T, atol=1e-9)

    def test_masked_mxm_structure(self, backend):
        A = np.ones((3, 3))
        mask = gb.Matrix.from_lists([0, 1], [0, 2], [True, True], 3, 3, gb.BOOL)
        c = gb.Matrix.sparse(gb.FP64, 3, 3)
        ops.mxm(c, gb.Matrix.from_dense(A), gb.Matrix.from_dense(A), PLUS_TIMES, mask=mask, desc=gb.STRUCTURE_MASK)
        assert c.nvals == 2 and c.get(0, 0) == 3.0

    def test_plus_pair_counts_intersections(self, backend):
        A = np.array([[1.0, 1.0, 0.0], [0.0, 1.0, 1.0]])
        B = A.T
        c = gb.Matrix.sparse(gb.INT64, 2, 2)
        ops.mxm(c, gb.Matrix.from_dense(A), gb.Matrix.from_dense(B), PLUS_PAIR)
        assert c.get(0, 1) == 1  # one shared column
        assert c.get(0, 0) == 2

    def test_mxm_accumulate(self, backend):
        a = gb.Matrix.from_dense(np.eye(2))
        c = gb.Matrix.from_dense(np.array([[1.0, 0.0], [0.0, 0.0]]))
        from repro.core.operators import PLUS

        ops.mxm(c, a, a, PLUS_TIMES, accum=PLUS)
        assert c.get(0, 0) == 2.0
        assert c.get(1, 1) == 1.0
