"""Reuse-layer switches.

The iteration-aware reuse layer has three independently toggleable parts:

- ``aux_cache`` — version-stamped memoisation of auxiliary structures
  (transpose/CSC, degree vectors, row-nnz maxima) on the containers;
- ``elision`` — identity-preserving trivial merges plus device-resident
  result marking, so clean containers skip repeated H2D uploads;
- ``graphs`` — capture/replay kernel graphs (the CUDA Graphs analogue)
  collapsing a steady-state iteration to one charged launch.

All three default to on.  :func:`reuse_disabled` restores the pre-reuse
behaviour — benchmarks and the acceptance tests use it to measure the layer
against its own baseline within one process.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = [
    "aux_cache_enabled",
    "elision_enabled",
    "graphs_enabled",
    "configure",
    "reuse_disabled",
]


class _Flags:
    __slots__ = ("aux_cache", "elision", "graphs")

    def __init__(self) -> None:
        self.aux_cache = True
        self.elision = True
        self.graphs = True


_FLAGS = _Flags()


def aux_cache_enabled() -> bool:
    return _FLAGS.aux_cache


def elision_enabled() -> bool:
    return _FLAGS.elision


def graphs_enabled() -> bool:
    return _FLAGS.graphs


def configure(
    aux_cache: Optional[bool] = None,
    elision: Optional[bool] = None,
    graphs: Optional[bool] = None,
) -> None:
    """Set individual reuse switches (None leaves a switch untouched)."""
    if aux_cache is not None:
        _FLAGS.aux_cache = bool(aux_cache)
    if elision is not None:
        _FLAGS.elision = bool(elision)
    if graphs is not None:
        _FLAGS.graphs = bool(graphs)


@contextmanager
def reuse_disabled() -> Iterator[None]:
    """Run with every reuse mechanism off (the pre-reuse baseline)."""
    prev = (_FLAGS.aux_cache, _FLAGS.elision, _FLAGS.graphs)
    _FLAGS.aux_cache = _FLAGS.elision = _FLAGS.graphs = False
    try:
        yield
    finally:
        _FLAGS.aux_cache, _FLAGS.elision, _FLAGS.graphs = prev
