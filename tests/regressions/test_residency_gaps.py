# Residency gaps surfaced by gbsan (hand-written, unlike the shrunk repros).
#
# Two note_result/dirty-bit bugs in the cuda_sim backend were found by
# running the sanitizer's residency checker over the operation paths:
#
# 1. push-mode mxv/vxm probed the mask bitmap in-kernel without ever
#    ensuring the mask was device-resident — the H2D upload was never
#    charged, so masked push products under-counted transfer bytes and
#    gbsan flagged an ``unresident-read`` on the mask.
# 2. with the aux cache disabled, ``_device_transpose`` returned its
#    on-device output without marking it resident, so the push/pull kernel
#    consuming it next read an unresident container.
#
# Each test asserts both the accounting fix (counters) and, when the
# sanitizer is importable, that the operation is clean under gbsan.

from __future__ import annotations

import numpy as np

import repro as gb
from repro import sanitizer as sz
from repro.backends.dispatch import get_backend, use_backend
from repro.core import operations as ops
from repro.core.semiring import PLUS_TIMES
from repro.gpu import reuse
from repro.gpu.device import get_device


def _graph_and_operands():
    a = gb.Matrix.from_lists(
        [0, 0, 1, 2, 2, 3],
        [1, 2, 3, 0, 3, 1],
        [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        4,
        4,
        gb.FP64,
    )
    u = gb.Vector.from_lists([0, 2], [1.0, 1.0], 4, gb.FP64)
    mask = gb.Vector.from_lists([1, 3], [1.0, 1.0], 4, gb.FP64)
    return a, u, mask


def test_masked_push_mxv_charges_mask_upload():
    """The mask read by the push kernel must be uploaded (and charged)."""
    be = get_backend("cuda_sim")
    with use_backend(be):
        a, u, mask = _graph_and_operands()
        be.evict_all()
        dev = get_device()
        dev.reset()
        with sz.sanitized() as san:
            out = be.mxv(
                a.container,
                u.container,
                PLUS_TIMES,
                mask=mask.container,
                direction="push",
            )
            assert out is not None
            assert san.findings == [], sz.active().report()
        uploads = [r for r in dev.profiler.records if r.kind == "h2d"]
        assert sum(r.bytes for r in uploads) >= (
            a.container.nbytes + u.container.nbytes + mask.container.nbytes
        )


def test_uncached_device_transpose_is_marked_resident():
    """No-aux-cache transpose output must be resident for its consumer."""
    be = get_backend("cuda_sim")
    with use_backend(be):
        a, u, _ = _graph_and_operands()
        be.evict_all()
        get_device().reset()
        with reuse.reuse_disabled():
            with sz.sanitized() as san:
                out = be.mxv(
                    a.container, u.container, PLUS_TIMES, direction="push"
                )
                assert out is not None
                assert san.findings == [], san.report()


def test_masked_push_full_pipeline_clean_under_gbsan():
    """End-to-end frontend masked mxv is gbsan-clean in both directions."""
    with use_backend("cuda_sim"):
        a, u, mask = _graph_and_operands()
        for direction in ("push", "pull"):
            with sz.sanitized() as san:
                out = gb.Vector.sparse(gb.FP64, 4)
                ops.mxv(out, a, u, PLUS_TIMES, mask=mask, direction=direction)
                assert san.findings == [], san.report()
                ref = np.asarray(out.to_dense(0.0))
                assert ref.shape == (4,)
