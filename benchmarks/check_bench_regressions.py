#!/usr/bin/env python
"""Gate deterministic benchmark counters against committed baselines.

The cuda_sim backend's kernel-launch counts and H2D byte totals come from
the cost model, not the host clock, so they are bit-stable across machines.
This script compares the ``cuda_sim_metrics`` blocks of freshly generated
``BENCH_<fig>.json`` records against the committed baselines and fails when
any counter grew by more than the tolerance (default 10%) — catching
regressions like a lost transfer-elision path or a kernel sequence that
stopped fusing, without any wall-clock noise.

Usage::

    python benchmarks/check_bench_regressions.py \
        --baseline-dir <dir with committed BENCH_*.json> \
        --current-dir  benchmarks/results \
        fig1 fig2
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

TRACKED_KEYS = ("kernel_launches", "h2d_bytes")


def _flatten(metrics: dict, prefix: str = "") -> dict:
    """{case: {counter: value}} -> {"case.counter": value}."""
    flat = {}
    for case, counters in sorted(metrics.items()):
        for key in TRACKED_KEYS:
            if key in counters:
                flat[f"{prefix}{case}.{key}"] = float(counters[key])
    return flat


def compare(baseline: dict, current: dict, tolerance: float) -> list:
    """Regression messages for counters that grew beyond tolerance."""
    problems = []
    base = _flatten(baseline.get("cuda_sim_metrics", {}))
    cur = _flatten(current.get("cuda_sim_metrics", {}))
    for name, old in sorted(base.items()):
        if name not in cur:
            problems.append(f"{name}: missing from current run (baseline {old:g})")
            continue
        new = cur[name]
        if old == 0:
            if new > 0:
                problems.append(f"{name}: {old:g} -> {new:g} (was zero)")
            continue
        growth = (new - old) / old
        if growth > tolerance:
            problems.append(
                f"{name}: {old:g} -> {new:g} (+{growth * 100:.1f}% > "
                f"{tolerance * 100:.0f}% tolerance)"
            )
    return problems


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("figures", nargs="+", help="figure names, e.g. fig1 fig2")
    ap.add_argument("--baseline-dir", required=True, type=Path)
    ap.add_argument("--current-dir", required=True, type=Path)
    ap.add_argument("--tolerance", type=float, default=0.10)
    args = ap.parse_args(argv)

    failures = []
    for fig in args.figures:
        base_path = args.baseline_dir / f"BENCH_{fig}.json"
        cur_path = args.current_dir / f"BENCH_{fig}.json"
        if not base_path.exists():
            # A figure added in the current change has no committed baseline
            # yet.  Seed one from the current run so the very next run is
            # gated — a brand-new figure should never stay ungated for more
            # than one pass.
            if cur_path.exists():
                base_path.parent.mkdir(parents=True, exist_ok=True)
                base_path.write_text(cur_path.read_text())
                print(
                    f"[bench-gate] {fig}: baseline seeded from {cur_path}",
                    file=sys.stderr,
                )
            else:
                print(
                    f"[bench-gate] {fig}: no baseline at {base_path} and no "
                    f"current record at {cur_path}; skipping",
                    file=sys.stderr,
                )
            continue
        if not cur_path.exists():
            failures.append(f"{fig}: current record {cur_path} not found")
            continue
        baseline = json.loads(base_path.read_text())
        current = json.loads(cur_path.read_text())
        problems = compare(baseline, current, args.tolerance)
        if problems:
            failures.extend(f"{fig}: {p}" for p in problems)
        else:
            n = len(_flatten(baseline.get("cuda_sim_metrics", {})))
            print(f"[bench-gate] {fig}: {n} counters within tolerance")

    if failures:
        print("[bench-gate] REGRESSIONS DETECTED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
