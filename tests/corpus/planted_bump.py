"""Rule 2 plant: in-place payload mutation that never bumps the version.

``scale_in_place`` stores into ``c.values`` and returns without
``bump_version`` — gbcheck flags it (``version-bump-missing``; it also
trips the syntactic ``container-mutation`` rule).  Without the bump the
residency shadow cannot tell the host copy moved, so gbsan is blind to the
mutation; ``scale_with_bump`` is the protocol-correct twin whose version
bump is exactly the signal that lets gbsan catch an elided device refresh
as a ``stale-read``.
"""


def scale_in_place(c, factor):
    # BUG: payload store with no bump_version on any path out.
    c.values[:] = c.values * factor
    return c


def scale_with_bump(c, factor):
    c.values[:] = c.values * factor
    c.bump_version()
    return c
