"""Differential fuzzing and metamorphic testing harness.

Layers (each usable on its own):

- :mod:`repro.testing.equivalence` — the shared cross-backend equivalence
  policy: which semirings must match bit-exactly, which only within a
  floating-point tolerance, and the ``assert_same`` comparator implementing
  it.  Also used by the hand-written oracle and distributed test suites.
- :mod:`repro.testing.programs` — random well-typed GraphBLAS program
  generation over every graph generator, semiring, mask/accumulator and
  descriptor combination, with static exactness annotation.
- :mod:`repro.testing.executor` — replay a program on any backend spec and
  diff the per-op snapshots against the reference oracle.
- :mod:`repro.testing.metamorphic` — implementation-independent invariants
  (permutation equivariance, semiring isomorphism, mask partition,
  duplicate-edge idempotence) that can catch the reference itself lying.
- :mod:`repro.testing.conservation` — transfer/flop/replay counter
  conservation laws on the simulator profiles.
- :mod:`repro.testing.shrink` — greedy failing-program minimisation and
  standalone pytest repro emission into ``tests/regressions/``.
- :mod:`repro.testing.fuzz` — the CLI tying it together
  (``python -m repro.testing.fuzz``).
"""

from .equivalence import (
    EXACT_FOLD_OPS,
    INEXACT,
    assert_same,
    describe_mismatch,
    product_exact,
    reduce_exact,
    same,
)
from .executor import (
    DEFAULT_SPECS,
    SMOKE_SPECS,
    Divergence,
    backend_specs,
    execute,
    run_differential,
)
from .programs import (
    GRAPH_RECIPES,
    INVALID_OPS,
    SEMIRING_POOL,
    Program,
    annotate_exactness,
    build_env,
    build_graph,
    generate_invalid_program,
    generate_program,
)
from .metamorphic import (
    check_duplicate_idempotence,
    check_mask_partition,
    check_permutation_equivariance,
    check_semiring_negation,
    run_metamorphic_suite,
)
from .conservation import (
    check_flop_conservation,
    check_replay_conservation,
    check_transfer_conservation,
    run_conservation_suite,
)
from .shrink import shrink, write_repro

__all__ = [
    "EXACT_FOLD_OPS",
    "INEXACT",
    "assert_same",
    "describe_mismatch",
    "product_exact",
    "reduce_exact",
    "same",
    "DEFAULT_SPECS",
    "SMOKE_SPECS",
    "Divergence",
    "backend_specs",
    "execute",
    "run_differential",
    "GRAPH_RECIPES",
    "INVALID_OPS",
    "SEMIRING_POOL",
    "Program",
    "annotate_exactness",
    "build_env",
    "build_graph",
    "generate_invalid_program",
    "generate_program",
    "check_duplicate_idempotence",
    "check_mask_partition",
    "check_permutation_equivariance",
    "check_semiring_negation",
    "run_metamorphic_suite",
    "check_flop_conservation",
    "check_replay_conservation",
    "check_transfer_conservation",
    "run_conservation_suite",
    "shrink",
    "write_repro",
]
