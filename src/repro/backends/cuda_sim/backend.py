"""The simulated CUDA backend.

Orchestrates the device kernels in :mod:`.kernels` exactly the way
GBTL-CUDA's backend orchestrated CUSP kernels:

- operand containers are **uploaded** to simulated device memory on first
  use and cached (a resident set), so repeated operations on the same graph
  pay the PCIe cost once — as a real GPU graph library keeps the graph on
  the device across BFS iterations;
- results are **created device-resident** (no download charged; use
  :meth:`CudaSimBackend.download` to model an explicit copy-out);
- each operation is one or more kernel launches whose modeled times
  accumulate on the device clock; benchmarks read
  ``get_device().profiler`` for the simulated GPU series.

Semantics are bit-identical to the other backends (the kernels share the
CPU backend's vectorized semantic code), so the test suite cross-checks all
three.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ...containers.csc import CSCMatrix
from ...containers.csr import CSRMatrix
from ...containers.sparsevec import SparseVector
from ...core.descriptor import DEFAULT, Descriptor
from ...core.monoid import Monoid
from ...core.operators import BinaryOp, UnaryOp
from ...core.semiring import Semiring
from ...gpu import reuse
from ...gpu.device import Device, get_device
from ...gpu.graph import KernelGraph, NullKernelGraph
from ...gpu.kernel import Kernel, LaunchConfig, charge_transfer, launch
from ...gpu.residency import RESIDENT_CAP, ResidentSet
from .. import dispatch
from ..base import Backend
from ..cpu.spmv import choose_direction, mask_pull_rows
from . import kernels
from .kernels import (
    APPLY_M,
    APPLY_V,
    EWISE_ADD_M,
    EWISE_ADD_V,
    EWISE_APPLY_FUSED_M,
    EWISE_APPLY_FUSED_V,
    EWISE_MULT_M,
    EWISE_MULT_V,
    EWISE_REDUCE_FUSED_V,
    FILL_EWISE_FUSED_V,
    GATHER,
    REDUCE_ROWS,
    REDUCE_TREE,
    SCATTER_ASSIGN,
    SELECT_COMPACT,
    SPGEMM_HASH,
    SPGEMM_HASH_MASKED,
    SPMSV_PUSH,
    SPMV_CSR_VECTOR,
    SPMV_PULL_FUSED,
    SPMV_PUSH_FUSED,
    TRANSPOSE_COUNTSORT,
    laned,
)

__all__ = ["CudaSimBackend"]

_RESIDENT_CAP = RESIDENT_CAP

# Same launch charge as TRANSPOSE_COUNTSORT, but the semantic function is
# the per-version memoised transpose: a host-side a.csc() and a device-side
# derivation share one counting sort per matrix version.
_TRANSPOSE_MEMOISED = Kernel(
    TRANSPOSE_COUNTSORT.name,
    lambda a: a.cached_transpose(),
    TRANSPOSE_COUNTSORT.work,
    accesses=TRANSPOSE_COUNTSORT.accesses,
)


class CudaSimBackend(Backend):
    """GraphBLAS kernels on the simulated GPU.

    By default the backend charges work to the process-global device (see
    :func:`repro.gpu.device.get_device`), preserving ``reset_device()``
    semantics.  Passing ``device`` binds all launches, transfers, and
    residency accounting to that device — the multi-device backend
    instantiates one such executor per shard.
    """

    name = "cuda_sim"

    def __init__(self, device: Optional[Device] = None) -> None:
        self._device = device
        self._resident = ResidentSet(self._dev)
        # The lazy layer records against this backend in ``auto`` mode.
        # Device-bound executors (multi-device shards) stay eager: their
        # launches are driven inside another backend's operation.
        self.lazy_by_default = device is None

    def _dev(self) -> Device:
        return self._device or get_device()

    # ------------------------------------------------------------------
    # Residency management
    # ------------------------------------------------------------------

    def _ensure_resident(self, container) -> None:
        """Charge an H2D upload unless the container is clean on-device."""
        self._resident.ensure(container)

    def _mark_resident(self, container, record_h2d: bool = False) -> None:
        self._resident.mark(container, record_h2d=record_h2d)

    def note_result(self, container) -> None:
        """Frontend produced this container from device-resident inputs.

        Marks it resident without charging an upload, so the next kernel
        that reads it elides the H2D copy (the data never left the device).
        """
        self._mark_resident(container)

    def kernel_graph(self, name: str):
        """A capture/replay graph when enabled, else the no-op variant."""
        if reuse.graphs_enabled():
            return KernelGraph(name, device=self._device)
        return NullKernelGraph(name)

    def download(self, container) -> Any:
        """Model an explicit D2H copy of a result; returns the container."""
        charge_transfer(
            container.nbytes, "d2h", device=self._dev(), container=container
        )
        return container

    def evict_all(self) -> None:
        """Forget residency (e.g. between benchmark repetitions)."""
        # Deferred work must run against the pre-eviction residency set,
        # exactly as if every op had executed at its call site.
        dispatch.sync_pending()
        self._resident.evict_all()

    # ------------------------------------------------------------------
    # Device-side transpose with per-version memoisation
    # ------------------------------------------------------------------

    def _device_transpose(self, a: CSRMatrix) -> CSRMatrix:
        """Launch TRANSPOSE_COUNTSORT at most once per matrix version.

        The result is stored in the container's auxiliary cache under the
        same key as :meth:`CSRMatrix.cached_transpose`, so host- and
        device-side consumers share one transpose per version.
        """
        if not reuse.aux_cache_enabled():
            out = launch(
                TRANSPOSE_COUNTSORT, LaunchConfig.cover(a.nvals), a, device=self._dev()
            )
            # The transpose is produced on-device; without this mark the
            # push/pull kernel that consumes it next would read an
            # unresident container (gbsan residency gap).
            self._mark_resident(out)
            return out
        hit = a._aux.get("tcsr")
        if hit is not None and hit in self._resident:
            self._mark_resident(hit)  # LRU touch
            return hit
        # Derive aᵀ on-device — charged as one transpose kernel per matrix
        # version.  The semantic function is the memoised cached_transpose,
        # so if the frontend's a.csc() already built the structure this
        # launch charges the derivation without rebuilding it: at most one
        # counting sort per matrix version, host and device combined.
        # Aux-structure builds are one-time costs, so they are charged
        # outside any capturing graph to keep iteration signatures stable
        # (real CUDA Graphs capture steady-state sequences too).
        dev = self._dev()
        saved, dev.active_graph = dev.active_graph, None
        try:
            hit = launch(_TRANSPOSE_MEMOISED, LaunchConfig.cover(a.nvals), a, device=dev)
        finally:
            dev.active_graph = saved
        self._mark_resident(hit)
        return hit

    def _transposed_operand(self, a: CSRMatrix, csc: Optional[CSCMatrix]) -> CSRMatrix:
        """Device-resident aᵀ for push-mxv / pull-vxm / pull-frontier kernels.

        With the aux cache on, the transpose is derived on-device at most
        once per matrix version (sharing the container the frontend's
        ``a.csc()`` cached, when present).  Without it, a frontend-supplied
        CSC was materialised on the host, so its device use charges an
        upload of the transposed copy.
        """
        if reuse.aux_cache_enabled():
            return self._device_transpose(a)
        if csc is not None:
            self._ensure_resident(csc.tcsr)
            return csc.tcsr
        return self._device_transpose(a)

    # ------------------------------------------------------------------
    # Products
    # ------------------------------------------------------------------

    def mxv(
        self,
        a: CSRMatrix,
        u: SparseVector,
        semiring: Semiring,
        mask: Optional[SparseVector] = None,
        desc: Descriptor = DEFAULT,
        direction: str = "auto",
        csc: Optional[CSCMatrix] = None,
    ) -> SparseVector:
        self._ensure_resident(a)
        self._ensure_resident(u)
        out_t = semiring.result_type(a.type, u.type)
        d = choose_direction(
            a,
            u,
            mask,
            desc,
            direction,
            csc is not None,
            push_indptr=csc.indptr if csc is not None else None,
            pull_indptr=a.indptr,
        )
        if d == "push":
            if mask is not None:
                # The push kernel probes the mask bitmap in-kernel; it must
                # be on the device (gbsan residency gap: the upload was
                # never charged before).
                self._ensure_resident(mask)
            tcsr = self._transposed_operand(a, csc)
            cfg = LaunchConfig.cover(max(u.nvals, 1) * 32)
            out = launch(
                laned(SPMSV_PUSH, kernels.push_lane(tcsr, u), "scalar"),
                cfg, tcsr, u, semiring, out_t, False, mask, desc,
                device=self._dev(),
            )
        else:
            rows = mask_pull_rows(mask, desc, a.nrows)
            nrows = a.nrows if rows is None else len(rows)
            cfg = LaunchConfig.cover(max(nrows, 1) * 32)
            out = launch(
                laned(SPMV_CSR_VECTOR, kernels.pull_lane(a, rows), "vector"),
                cfg, a, u, semiring, out_t, False, rows,
                device=self._dev(),
            )
        self._mark_resident(out)
        return out

    def vxm(
        self,
        u: SparseVector,
        a: CSRMatrix,
        semiring: Semiring,
        mask: Optional[SparseVector] = None,
        desc: Descriptor = DEFAULT,
        direction: str = "auto",
        csc: Optional[CSCMatrix] = None,
    ) -> SparseVector:
        self._ensure_resident(a)
        self._ensure_resident(u)
        out_t = semiring.result_type(u.type, a.type)
        d = choose_direction(
            a,
            u,
            mask,
            desc,
            direction,
            True,
            push_indptr=a.indptr,
            pull_indptr=csc.indptr if csc is not None else None,
        )
        if d == "push":
            if mask is not None:
                # Same in-kernel mask probe as mxv's push path.
                self._ensure_resident(mask)
            cfg = LaunchConfig.cover(max(u.nvals, 1) * 32)
            out = launch(
                laned(SPMSV_PUSH, kernels.push_lane(a, u), "scalar"),
                cfg, a, u, semiring, out_t, True, mask, desc,
                device=self._dev(),
            )
        else:
            tcsr = self._transposed_operand(a, csc)
            rows = mask_pull_rows(mask, desc, a.ncols)
            nrows = tcsr.nrows if rows is None else len(rows)
            cfg = LaunchConfig.cover(max(nrows, 1) * 32)
            out = launch(
                laned(SPMV_CSR_VECTOR, kernels.pull_lane(tcsr, rows), "vector"),
                cfg, tcsr, u, semiring, out_t, True, rows,
                device=self._dev(),
            )
        self._mark_resident(out)
        return out

    def mxm(
        self,
        a: CSRMatrix,
        b: CSRMatrix,
        semiring: Semiring,
        mask: Optional[CSRMatrix] = None,
        desc: Descriptor = DEFAULT,
    ) -> CSRMatrix:
        self._ensure_resident(a)
        self._ensure_resident(b)
        out_t = semiring.result_type(a.type, b.type)
        cfg = LaunchConfig.cover(max(a.nrows, 1) * 64)
        if mask is not None and not desc.complement_mask:
            from ..cpu.spgemm import mask_keys_for

            self._ensure_resident(mask)
            keys = mask_keys_for(mask, desc)
            out = launch(
                laned(SPGEMM_HASH_MASKED, kernels.spgemm_lane(a), "scalar"),
                cfg, a, b, semiring, out_t, keys, device=self._dev(),
            )
        else:
            out = launch(
                laned(SPGEMM_HASH, kernels.spgemm_lane(a), "scalar"),
                cfg, a, b, semiring, out_t, device=self._dev(),
            )
        self._mark_resident(out)
        return out

    # ------------------------------------------------------------------
    # Elementwise
    # ------------------------------------------------------------------

    def _ewise(self, kernel, x, y, op):
        self._ensure_resident(x)
        self._ensure_resident(y)
        out = launch(
            kernel, LaunchConfig.cover(x.nvals + y.nvals), x, y, op, device=self._dev()
        )
        self._mark_resident(out)
        return out

    def ewise_add_vector(self, u: SparseVector, v: SparseVector, op: BinaryOp) -> SparseVector:
        return self._ewise(EWISE_ADD_V, u, v, op)

    def ewise_mult_vector(self, u: SparseVector, v: SparseVector, op: BinaryOp) -> SparseVector:
        return self._ewise(EWISE_MULT_V, u, v, op)

    def ewise_add_matrix(self, a: CSRMatrix, b: CSRMatrix, op: BinaryOp) -> CSRMatrix:
        return self._ewise(EWISE_ADD_M, a, b, op)

    def ewise_mult_matrix(self, a: CSRMatrix, b: CSRMatrix, op: BinaryOp) -> CSRMatrix:
        return self._ewise(EWISE_MULT_M, a, b, op)

    # ------------------------------------------------------------------
    # Fused kernels — single launches instead of compositions
    # ------------------------------------------------------------------

    def ewise_apply_vector(self, u, v, binop, unop, union=True):
        self._ensure_resident(u)
        self._ensure_resident(v)
        out = launch(
            EWISE_APPLY_FUSED_V,
            LaunchConfig.cover(u.nvals + v.nvals),
            u, v, binop, unop, union,
            device=self._dev(),
        )
        self._mark_resident(out)
        return out

    def ewise_reduce_vector(self, u, v, binop, unop, union, monoid, out_type):
        """Elementwise(+apply) chain feeding a reduction — ONE launch.

        Returns ``(t, val)``: the materialized elementwise result (the
        handle the reduce's producer was recorded into still observes it)
        and the already-cast scalar.
        """
        self._ensure_resident(u)
        self._ensure_resident(v)
        t, val = launch(
            EWISE_REDUCE_FUSED_V,
            LaunchConfig.cover(u.nvals + v.nvals),
            u, v, binop, unop, union, monoid, out_type,
            device=self._dev(),
        )
        self._mark_resident(t)
        return t, val

    def fill_ewise_vector(self, value, size, fill_type, other, binop, fill_first):
        """Constant-fill operand consumed by a union ewise — ONE launch.

        The dense fill never materializes: it is generated in registers, so
        the scatter-assign launch and its container are both eliminated.
        """
        self._ensure_resident(other)
        out = launch(
            FILL_EWISE_FUSED_V,
            LaunchConfig.cover(max(int(size), 1) + other.nvals),
            value, size, fill_type, other, binop, fill_first,
            device=self._dev(),
        )
        self._mark_resident(out)
        return out

    def sink_restrict(self, container, mask):
        """Mask sinking: pre-restrict an input to the mask's stored indices.

        Pure schedule decision — the restricted view is derived on-device
        from resident operands (no launch, no transfer charged), and the
        downstream merge re-filters exactly.
        """
        if mask is None:
            return container
        self._ensure_resident(container)
        self._ensure_resident(mask)
        out = kernels.mask_restrict(container, mask)
        if out is not container:
            self._mark_resident(out)
        return out

    def ewise_apply_matrix(self, a, b, binop, unop, union=True):
        self._ensure_resident(a)
        self._ensure_resident(b)
        out = launch(
            EWISE_APPLY_FUSED_M,
            LaunchConfig.cover(a.nvals + b.nvals),
            a, b, binop, unop, union,
            device=self._dev(),
        )
        self._mark_resident(out)
        return out

    def frontier_step(
        self,
        levels: SparseVector,
        frontier: SparseVector,
        a: CSRMatrix,
        value: Any,
        semiring: Semiring,
        desc: Descriptor,
        direction: str = "auto",
        csc: Optional[CSCMatrix] = None,
    ):
        """Level assign + masked SpMSpV + frontier merge as ONE launch."""
        self._ensure_resident(a)
        self._ensure_resident(frontier)
        self._ensure_resident(levels)
        d = choose_direction(
            a,
            frontier,
            levels,
            desc,
            direction,
            True,
            push_indptr=a.indptr,
            pull_indptr=csc.indptr if csc is not None else None,
        )
        if d == "push":
            cfg = LaunchConfig.cover(max(frontier.nvals, 1) * 32)
            out = launch(
                laned(SPMV_PUSH_FUSED, kernels.push_lane(a, frontier), "scalar"),
                cfg, levels, frontier, a, value, semiring, desc,
                device=self._dev(),
            )
        else:
            tcsr = self._transposed_operand(a, csc)
            cfg = LaunchConfig.cover(max(tcsr.nrows, 1) * 32)
            out = launch(
                laned(SPMV_PULL_FUSED, kernels.pull_lane(tcsr), "vector"),
                cfg, levels, frontier, tcsr, value, semiring, desc,
                device=self._dev(),
            )
        new_levels, new_frontier = out
        self._mark_resident(new_levels)
        self._mark_resident(new_frontier)
        return out

    # ------------------------------------------------------------------
    # Apply / reduce / transpose
    # ------------------------------------------------------------------

    def apply_vector(self, u: SparseVector, op: UnaryOp) -> SparseVector:
        self._ensure_resident(u)
        out = launch(APPLY_V, LaunchConfig.cover(u.nvals), u, op, device=self._dev())
        self._mark_resident(out)
        return out

    def apply_matrix(self, a: CSRMatrix, op: UnaryOp) -> CSRMatrix:
        self._ensure_resident(a)
        out = launch(APPLY_M, LaunchConfig.cover(a.nvals), a, op, device=self._dev())
        self._mark_resident(out)
        return out

    def reduce_vector_scalar(self, u: SparseVector, monoid: Monoid) -> Any:
        self._ensure_resident(u)
        t = monoid.result_type(u.type)
        val = launch(
            REDUCE_TREE, LaunchConfig.cover(u.nvals), u.values, monoid, u.type,
            device=self._dev(), san_reads=(u,),
        )
        return t.cast(val)

    def reduce_matrix_vector(self, a: CSRMatrix, monoid: Monoid) -> SparseVector:
        self._ensure_resident(a)
        out = launch(
            REDUCE_ROWS, LaunchConfig.cover(max(a.nrows, 1) * 32), a, monoid,
            device=self._dev(),
        )
        self._mark_resident(out)
        return out

    def reduce_matrix_scalar(self, a: CSRMatrix, monoid: Monoid) -> Any:
        self._ensure_resident(a)
        t = monoid.result_type(a.type)
        val = launch(
            REDUCE_TREE, LaunchConfig.cover(a.nvals), a.values, monoid, a.type,
            device=self._dev(), san_reads=(a,),
        )
        return t.cast(val)

    def transpose(self, a: CSRMatrix) -> CSRMatrix:
        self._ensure_resident(a)
        out = launch(
            TRANSPOSE_COUNTSORT, LaunchConfig.cover(a.nvals), a, device=self._dev()
        )
        self._mark_resident(out)
        return out

    # ------------------------------------------------------------------
    # Select / indexed apply accounting
    # ------------------------------------------------------------------

    def _select_launch(self, src, thunk_fn):
        self._ensure_resident(src)
        out = launch(
            SELECT_COMPACT,
            LaunchConfig.cover(src.nvals),
            thunk_fn,
            float(src.nvals),
            src.type.nbytes,
            device=self._dev(),
            san_reads=(src,),
        )
        self._mark_resident(out)
        return out

    def select_vector(self, u, op, thunk):
        return self._select_launch(u, lambda: super(CudaSimBackend, self).select_vector(u, op, thunk))

    def select_matrix(self, a, op, thunk):
        return self._select_launch(a, lambda: super(CudaSimBackend, self).select_matrix(a, op, thunk))

    def apply_indexop_vector(self, u, op, thunk):
        return self._select_launch(
            u, lambda: super(CudaSimBackend, self).apply_indexop_vector(u, op, thunk)
        )

    def apply_indexop_matrix(self, a, op, thunk):
        return self._select_launch(
            a, lambda: super(CudaSimBackend, self).apply_indexop_matrix(a, op, thunk)
        )

    # ------------------------------------------------------------------
    # Extract / assign accounting
    # ------------------------------------------------------------------

    def extract_vector(self, u: SparseVector, idx: np.ndarray) -> SparseVector:
        self._ensure_resident(u)
        out = launch(
            GATHER,
            LaunchConfig.cover(len(idx)),
            lambda: super(CudaSimBackend, self).extract_vector(u, idx),
            len(idx),
            u.type.nbytes,
            device=self._dev(),
            san_reads=(u,),
        )
        self._mark_resident(out)
        return out

    def extract_matrix(self, a: CSRMatrix, rows: np.ndarray, cols: np.ndarray) -> CSRMatrix:
        self._ensure_resident(a)
        out = launch(
            GATHER,
            LaunchConfig.cover(len(rows) * max(len(cols), 1)),
            lambda: super(CudaSimBackend, self).extract_matrix(a, rows, cols),
            float(len(rows)) * max(len(cols), 1),
            a.type.nbytes,
            device=self._dev(),
            san_reads=(a,),
        )
        self._mark_resident(out)
        return out

    def charge_assign(self, nvals: int, out) -> None:
        launch(
            SCATTER_ASSIGN, LaunchConfig.cover(nvals), float(nvals), 8,
            device=self._dev(), san_writes=(out,),
        )
