"""Simulated GPU device model.

The device properties default to a Tesla-K40-class part — the kind of GPU a
2016 GABB paper evaluated on: 15 SMs × 192 cores at ~745 MHz, 288 GB/s GDDR5,
12 GB of device memory, PCIe gen3 host link, and a few microseconds of
kernel-launch overhead.  All numbers are knobs: the cost-model ablation
(Table 3) sweeps them.

A :class:`Device` owns an allocator, a cost model, a profiler, and a
simulated clock; kernels advance the clock by their modeled duration.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .costmodel import CostModel
from .memory import DeviceAllocator
from .profiler import Profiler

__all__ = [
    "DeviceProperties",
    "Device",
    "get_device",
    "reset_device",
    "K40",
    "P100",
    "V100",
    "set_device",
    "set_observe_hook",
]

# Observation hook installed by repro.lazy (None when lazy is not imported).
# Reading ``Device.profiler`` is an *observation point*: pending lazy work
# must be forced and open loop-capture aggregates closed before the counters
# are meaningful.  The hook receives "observe" (profiler read) or "reset"
# (device reset — pending accounting is discarded with the profiler).
_OBSERVE_HOOK = None


def set_observe_hook(hook) -> None:
    """Install the lazy-evaluation observation hook (see repro.lazy)."""
    global _OBSERVE_HOOK
    _OBSERVE_HOOK = hook


@dataclass(frozen=True)
class DeviceProperties:
    """Static hardware characteristics of the simulated part."""

    name: str = "SimK40"
    num_sms: int = 15
    cores_per_sm: int = 192
    warp_size: int = 32
    max_threads_per_block: int = 1024
    max_blocks_per_grid: int = 2**31 - 1
    clock_ghz: float = 0.745
    mem_bandwidth_gbps: float = 288.0
    global_mem_bytes: int = 12 * 1024**3
    pcie_bandwidth_gbps: float = 10.0
    pcie_latency_us: float = 10.0
    launch_overhead_us: float = 5.0
    ipc: float = 1.0  # fused multiply-add counted as one instruction

    @property
    def total_cores(self) -> int:
        return self.num_sms * self.cores_per_sm

    @property
    def peak_gflops(self) -> float:
        return self.total_cores * self.clock_ghz * self.ipc

    def with_(self, **kwargs) -> "DeviceProperties":
        """Derive a variant (ablation knob)."""
        return replace(self, **kwargs)


K40 = DeviceProperties()

# Later generations, for cross-device what-if studies (Table 5).  Numbers are
# the public spec-sheet values; the model only uses cores/clock/bandwidth/
# PCIe/launch figures.
P100 = DeviceProperties(
    name="SimP100",
    num_sms=56,
    cores_per_sm=64,
    clock_ghz=1.19,
    mem_bandwidth_gbps=732.0,
    global_mem_bytes=16 * 1024**3,
    pcie_bandwidth_gbps=12.0,
    launch_overhead_us=4.0,
)
V100 = DeviceProperties(
    name="SimV100",
    num_sms=80,
    cores_per_sm=64,
    clock_ghz=1.53,
    mem_bandwidth_gbps=900.0,
    global_mem_bytes=32 * 1024**3,
    pcie_bandwidth_gbps=14.0,
    launch_overhead_us=3.5,
)


class Device:
    """A simulated GPU: properties + allocator + clock + profiler."""

    def __init__(self, props: DeviceProperties = K40):
        self.props = props
        self.allocator = DeviceAllocator(props.global_mem_bytes)
        self.cost_model = CostModel(props)
        self._profiler = Profiler()
        self.clock_us = 0.0
        # Kernel graph currently capturing/replaying launches (see
        # repro.gpu.graph); None outside graph iteration scopes.
        self.active_graph = None
        # H2D payload discounts registered by the lazy optimizer's
        # dead-materialization pass: (id(container), version) -> bytes the
        # upload may skip (iso-valued payloads filled on-device instead of
        # copied).  Consulted by ResidentSet.ensure; cleared on reset.
        self.h2d_hints = {}

    @property
    def profiler(self):
        """The device profiler; reading it is an observation point.

        Under lazy evaluation (repro.lazy) the counters are only complete
        once the pending op tape is forced and open loop-capture aggregates
        are committed; the hook does both (and is reentrancy-guarded, so
        launches recorded *during* the forced flush go straight through).
        """
        if _OBSERVE_HOOK is not None:
            _OBSERVE_HOOK("observe")
        return self._profiler

    def advance(self, dt_us: float) -> float:
        """Advance the simulated clock; returns the new time."""
        if dt_us < 0:
            raise ValueError(f"negative time step {dt_us}")
        self.clock_us += dt_us
        return self.clock_us

    def reset(self) -> None:
        """Clear clock, profiler, and allocations (between benchmark runs)."""
        from ..sanitizer import runtime as _gbsan

        if _OBSERVE_HOOK is not None:
            # Discard pending lazy accounting alongside the profiler it
            # would have landed in (a reset abandons the measurement).
            _OBSERVE_HOOK("reset")
        san = _gbsan.ACTIVE
        if san is not None:
            # Leak report: buffers still allocated that no resident set
            # references would never be freed by a real driver at this point.
            san.on_device_reset(self)
        self.allocator.reset()
        self._profiler.reset()
        self.clock_us = 0.0
        self.active_graph = None
        self.h2d_hints.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Device {self.props.name}: {self.props.total_cores} cores, "
            f"{self.props.mem_bandwidth_gbps} GB/s, t={self.clock_us:.1f}us>"
        )


_CURRENT: Optional[Device] = None


def get_device() -> Device:
    """The process-wide simulated device (created on first use)."""
    global _CURRENT
    if _CURRENT is None:
        _CURRENT = Device()
    return _CURRENT


def set_device(device: Device) -> Device:
    """Install a specific device (e.g. with ablated properties)."""
    global _CURRENT
    _CURRENT = device
    return device


def reset_device(props: Optional[DeviceProperties] = None) -> Device:
    """Replace the device with a fresh one (optionally new properties)."""
    return set_device(Device(props or K40))
