"""Less-travelled operation paths: combined descriptors, masked variants,
degenerate shapes."""

import numpy as np
import pytest

import repro as gb
from repro.core import operations as ops
from repro.core.assign import assign, assign_scalar
from repro.core.descriptor import Descriptor
from repro.core.monoid import MIN_MONOID, PLUS_MONOID
from repro.core.operators import ABS, PLUS, TIMES, TRIL, VALUEGT
from repro.core.semiring import MIN_PLUS, PLUS_TIMES


class TestExtractVariants:
    @pytest.fixture
    def a(self):
        return gb.Matrix.from_dense(np.arange(12, dtype=float).reshape(3, 4))

    def test_extract_col_row_subset(self, backend, a):
        w = gb.Vector.sparse(gb.FP64, 2)
        ops.extract_col(w, a, 1, rows=[2, 0])
        np.testing.assert_array_equal(w.to_dense(), [9.0, 1.0])

    def test_extract_col_transposed_is_row(self, backend, a):
        w = gb.Vector.sparse(gb.FP64, 4)
        ops.extract_col(w, a, 1, desc=gb.TRANSPOSE_A)
        np.testing.assert_array_equal(w.to_dense(), [4.0, 5.0, 6.0, 7.0])

    def test_extract_row_col_subset(self, backend, a):
        w = gb.Vector.sparse(gb.FP64, 2)
        ops.extract_row(w, a, 2, cols=[3, 0])
        np.testing.assert_array_equal(w.to_dense(), [11.0, 8.0])

    def test_extract_with_accum(self, backend, a):
        w = gb.Vector.from_lists([0], [100.0], 3)
        ops.extract_col(w, a, 0, accum=PLUS)
        assert w.get(0) == 100.0  # A[0,0] == 0 is implicit in from_dense
        assert w.get(1) == 4.0

    def test_extract_submatrix_masked(self, backend, a):
        mask = gb.Matrix.from_lists([0], [0], [True], 2, 2, gb.BOOL)
        c = gb.Matrix.sparse(gb.FP64, 2, 2)
        ops.extract_submatrix(c, a, [1, 2], [1, 2], mask=mask)
        assert c.nvals == 1 and c.get(0, 0) == 5.0


class TestSelectVariants:
    def test_select_matrix_with_mask_and_accum(self, backend):
        a = gb.Matrix.from_dense(np.arange(1.0, 10.0).reshape(3, 3))
        mask = gb.Matrix.from_lists([1, 2], [0, 1], [True, True], 3, 3, gb.BOOL)
        c = gb.Matrix.from_lists([1], [0], [100.0], 3, 3)
        ops.select(c, a, TRIL, thunk=-1, mask=mask, accum=PLUS)
        assert c.get(1, 0) == 104.0
        assert c.get(2, 1) == 8.0
        assert c.get(2, 0) is None  # mask-false

    def test_select_transposed_source(self, backend):
        a = gb.Matrix.from_lists([0], [2], [9.0], 3, 3)
        c = gb.Matrix.sparse(gb.FP64, 3, 3)
        ops.select(c, a, TRIL, thunk=-1, desc=gb.TRANSPOSE_A)
        assert c.get(2, 0) == 9.0


class TestReduceVariants:
    def test_reduce_to_vector_masked_accum(self, backend):
        a = gb.Matrix.from_dense(np.ones((3, 2)))
        w = gb.Vector.from_lists([0, 1], [10.0, 10.0], 3)
        mask = gb.Vector.from_lists([1], [True], 3, gb.BOOL)
        ops.reduce_to_vector(w, a, PLUS_MONOID, mask=mask, accum=PLUS)
        assert w.get(1) == 12.0
        assert w.get(0) == 10.0  # mask-false keeps old

    def test_reduce_min_monoid_vector(self, backend):
        u = gb.Vector.from_lists([0, 5], [3.0, -2.0], 8)
        assert ops.reduce(u, MIN_MONOID) == -2.0

    def test_reduce_scalar_out_without_accum_overwrites(self, backend):
        u = gb.Vector.from_lists([0], [5.0], 2)
        s = gb.Scalar(gb.FP64, 100.0)
        ops.reduce(u, PLUS_MONOID, out=s)
        assert s.value == 5.0


class TestApplyVariants:
    def test_apply_matrix_transposed(self, backend):
        a = gb.Matrix.from_lists([0], [1], [-3.0], 2, 2)
        c = gb.Matrix.sparse(gb.FP64, 2, 2)
        ops.apply(c, a, ABS, desc=gb.TRANSPOSE_A)
        assert c.get(1, 0) == 3.0

    def test_apply_matrix_bind_with_mask(self, backend):
        a = gb.Matrix.from_dense(np.ones((2, 2)))
        mask = gb.Matrix.from_lists([0], [1], [True], 2, 2, gb.BOOL)
        c = gb.Matrix.sparse(gb.FP64, 2, 2)
        ops.apply(c, a, TIMES, bind_first=5.0, mask=mask)
        assert c.nvals == 1 and c.get(0, 1) == 5.0

    def test_index_op_matrix_thunk(self, backend):
        a = gb.Matrix.from_dense(np.arange(1.0, 5.0).reshape(2, 2))
        c = gb.Matrix.sparse(gb.BOOL, 2, 2)
        ops.apply(c, a, gb.operators.DIAG, thunk=1)
        # DIAG with thunk 1 marks the superdiagonal.
        assert c.get(0, 1) == True and c.get(0, 0) == False  # noqa: E712


class TestDegenerateShapes:
    def test_zero_by_zero_matrix_ops(self, backend):
        a = gb.Matrix.sparse(gb.FP64, 0, 0)
        c = gb.Matrix.sparse(gb.FP64, 0, 0)
        ops.mxm(c, a, a, PLUS_TIMES)
        ops.ewise_add(c, a, a, PLUS)
        ops.transpose(c, a)
        assert c.nvals == 0

    def test_empty_vector_ops(self, backend):
        u = gb.Vector.sparse(gb.FP64, 0)
        w = gb.Vector.sparse(gb.FP64, 0)
        ops.ewise_mult(w, u, u, TIMES)
        assert w.size == 0

    def test_one_by_n(self, backend):
        a = gb.Matrix.from_lists([0, 0], [0, 3], [1.0, 2.0], 1, 4)
        u = gb.Vector.full(1.0, 4)
        w = gb.Vector.sparse(gb.FP64, 1)
        ops.mxv(w, a, u, PLUS_TIMES)
        assert w.get(0) == 3.0

    def test_kronecker_empty_operand(self, backend):
        a = gb.Matrix.sparse(gb.FP64, 2, 2)
        b = gb.Matrix.identity(2)
        c = gb.Matrix.sparse(gb.FP64, 4, 4)
        ops.kronecker(c, a, b, TIMES)
        assert c.nvals == 0


class TestAssignVariants:
    def test_assign_matrix_with_structural_mask(self, backend):
        c = gb.Matrix.sparse(gb.FP64, 3, 3)
        src = gb.Matrix.from_dense(np.ones((2, 2)))
        mask = gb.Matrix.from_lists([0], [0], [False], 3, 3, gb.BOOL)
        assign(
            c,
            src,
            indices=[0, 1],
            cols=[0, 1],
            mask=mask,
            desc=gb.STRUCTURE_MASK,
        )
        assert c.nvals == 1 and c.get(0, 0) == 1.0

    def test_assign_replace_clears_masked_false_in_region(self, backend):
        c = gb.Vector.from_lists([0, 1, 3], [9.0, 9.0, 9.0], 4)
        src = gb.Vector.from_lists([0, 1], [1.0, 1.0], 2)
        mask = gb.Vector.from_lists([0], [True], 4, gb.BOOL)
        assign(c, src, indices=[0, 1], mask=mask, desc=gb.REPLACE)
        # Position 0: mask-true, gets 1.0. Position 1: in region, mask
        # false, replace clears it. Position 3: outside region, untouched.
        assert c.to_lists() == ([0, 3], [1.0, 9.0])

    def test_assign_scalar_accum_masked(self, backend):
        w = gb.Vector.from_lists([0, 1], [1.0, 1.0], 3)
        mask = gb.Vector.from_lists([0], [True], 3, gb.BOOL)
        assign_scalar(w, 10.0, indices=[0, 1], mask=mask, accum=PLUS)
        assert w.get(0) == 11.0 and w.get(1) == 1.0

    def test_assign_into_zero_size(self, backend):
        w = gb.Vector.sparse(gb.FP64, 0)
        assign_scalar(w, 1.0, indices=[])
        assert w.nvals == 0


class TestMaskedProductsMorePaths:
    def test_mxv_valued_complement_mask_no_pruning(self, backend):
        # Complement masks disable pruning; result must still be exact.
        a = gb.Matrix.from_dense(np.ones((5, 5)))
        u = gb.Vector.full(1.0, 5)
        mask = gb.Vector.from_lists([0, 1], [True, False], 5, gb.BOOL)
        w = gb.Vector.sparse(gb.FP64, 5)
        ops.mxv(w, a, u, PLUS_TIMES, mask=mask, desc=gb.COMP_MASK)
        assert sorted(w.to_lists()[0]) == [1, 2, 3, 4]

    def test_vxm_masked_pull_with_valued_mask(self, backend):
        a = gb.Matrix.from_dense(np.eye(4) + np.diag(np.ones(3), 1))
        u = gb.Vector.full(1.0, 4)
        mask = gb.Vector.from_lists([1, 2], [True, False], 4, gb.BOOL)
        w = gb.Vector.sparse(gb.FP64, 4)
        ops.vxm(w, u, a, MIN_PLUS, mask=mask, direction="pull")
        assert w.to_lists()[0] == [1]

    def test_mxv_push_empty_frontier(self, backend):
        a = gb.Matrix.from_dense(np.ones((3, 3)))
        u = gb.Vector.sparse(gb.FP64, 3)
        w = gb.Vector.sparse(gb.FP64, 3)
        ops.mxv(w, a, u, PLUS_TIMES, direction="push")
        assert w.nvals == 0
