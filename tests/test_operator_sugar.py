"""Pythonic operator sugar on Matrix/Vector (@, +, *, .T, .reduce)."""

import numpy as np
import pytest

import repro as gb

from .conftest import random_dense_matrix, random_dense_vector


class TestMatmul:
    def test_matrix_vector(self, backend, rng):
        A = random_dense_matrix(rng, 6, 5)
        v = random_dense_vector(rng, 5, density=0.9)
        w = gb.Matrix.from_dense(A) @ gb.Vector.from_dense(v)
        np.testing.assert_allclose(w.to_dense(0), A @ v, atol=1e-9)

    def test_matrix_matrix(self, backend, rng):
        A = random_dense_matrix(rng, 4, 6)
        B = random_dense_matrix(rng, 6, 3)
        c = gb.Matrix.from_dense(A) @ gb.Matrix.from_dense(B)
        np.testing.assert_allclose(c.to_dense(), A @ B, atol=1e-9)

    def test_vector_matrix(self, backend, rng):
        A = random_dense_matrix(rng, 5, 7)
        v = random_dense_vector(rng, 5, density=0.9)
        w = gb.Vector.from_dense(v) @ gb.Matrix.from_dense(A)
        np.testing.assert_allclose(w.to_dense(0), v @ A, atol=1e-9)

    def test_chained(self, backend):
        a = gb.Matrix.identity(3, value=2.0)
        v = gb.Vector.full(1.0, 3)
        w = a @ (a @ v)
        np.testing.assert_allclose(w.to_dense(), [4.0] * 3)

    def test_dim_mismatch_raises(self, backend):
        with pytest.raises(gb.DimensionMismatchError):
            gb.Matrix.sparse(gb.FP64, 2, 3) @ gb.Vector.sparse(gb.FP64, 2)


class TestElementwiseSugar:
    def test_vector_add(self, backend):
        u = gb.Vector.from_lists([0], [1.0], 3)
        v = gb.Vector.from_lists([0, 1], [2.0, 5.0], 3)
        w = u + v
        assert w.to_lists() == ([0, 1], [3.0, 5.0])
        # Operands untouched.
        assert u.nvals == 1

    def test_vector_mul(self, backend):
        u = gb.Vector.from_lists([0, 1], [2.0, 3.0], 3)
        v = gb.Vector.from_lists([1, 2], [4.0, 9.0], 3)
        w = u * v
        assert w.to_lists() == ([1], [12.0])

    def test_matrix_add_mul(self, backend, rng):
        A = random_dense_matrix(rng, 4, 4)
        B = random_dense_matrix(rng, 4, 4)
        ma, mb = gb.Matrix.from_dense(A), gb.Matrix.from_dense(B)
        np.testing.assert_allclose((ma + mb).to_dense(), A + B, atol=1e-12)
        both = (A != 0) & (B != 0)
        got = (ma * mb).to_dense()
        np.testing.assert_allclose(got[both], (A * B)[both], atol=1e-12)
        assert not got[~both].any()


class TestTransposeProperty:
    def test_T(self, backend, rng):
        A = random_dense_matrix(rng, 3, 5)
        np.testing.assert_array_equal(gb.Matrix.from_dense(A).T.to_dense(), A.T)

    def test_double_T(self, backend):
        a = gb.Matrix.from_lists([0], [1], [5.0], 2, 3)
        assert a.T.T == a


class TestReduceMethod:
    def test_vector_default_plus(self, backend):
        assert gb.Vector.from_lists([0, 1], [2.0, 3.0], 4).reduce() == 5.0

    def test_vector_custom_monoid(self, backend):
        from repro.core.monoid import MAX_MONOID

        assert gb.Vector.from_lists([0, 1], [2.0, 9.0], 4).reduce(MAX_MONOID) == 9.0

    def test_matrix_reduce(self, backend):
        m = gb.Matrix.identity(4, value=2.5)
        assert m.reduce() == 10.0
