"""The CPU backend — vectorized NumPy kernels.

The measured "fast CPU" baseline in every benchmark.  It consumes the same
containers and produces bit-identical results to the reference backend (the
test suite enforces this), but each kernel is a handful of whole-array NumPy
passes instead of Python loops.

``mxv``/``vxm`` accept an optional pre-transposed CSC hint (supplied by the
frontend's cache) enabling the push/pull direction optimization; ``auto``
chooses by comparing the frontier's total degree against nnz(A) (see
:func:`~repro.backends.cpu.spmv.choose_direction`).
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ...containers.csc import CSCMatrix
from ...containers.csr import CSRMatrix
from ...containers.sparsevec import SparseVector
from ...core.descriptor import DEFAULT, Descriptor
from ...core.monoid import Monoid
from ...core.operators import BinaryOp, UnaryOp
from ...core.semiring import Semiring
from ..base import Backend
from .ewise import ewise_add_mat, ewise_add_vec, ewise_mult_mat, ewise_mult_vec
from .reduce_apply import (
    apply_mat,
    apply_vec,
    reduce_mat_scalar,
    reduce_mat_vector,
    reduce_vec_scalar,
)
from .spgemm import mask_keys_for, spgemm_esr, spgemm_masked_esr
from .spmv import (
    choose_direction,
    mask_pull_rows,
    row_gather_product,
    scatter_product,
)

__all__ = ["CpuBackend"]


class CpuBackend(Backend):
    """Vectorized NumPy backend."""

    name = "cpu"

    # ------------------------------------------------------------------
    # Products
    # ------------------------------------------------------------------

    def mxv(
        self,
        a: CSRMatrix,
        u: SparseVector,
        semiring: Semiring,
        mask: Optional[SparseVector] = None,
        desc: Descriptor = DEFAULT,
        direction: str = "auto",
        csc: Optional[CSCMatrix] = None,
    ) -> SparseVector:
        out_t = semiring.result_type(a.type, u.type)
        d = choose_direction(
            a,
            u,
            mask,
            desc,
            direction,
            csc is not None,
            push_indptr=csc.indptr if csc is not None else None,
            pull_indptr=a.indptr,
        )
        if d == "push":
            tcsr = csc.tcsr if csc is not None else a.transpose()
            return scatter_product(
                tcsr, u, semiring, out_t, flip=False, mask=mask, desc=desc
            )
        rows = mask_pull_rows(mask, desc, a.nrows)
        return row_gather_product(a, u, semiring, out_t, flip=False, rows=rows)

    def vxm(
        self,
        u: SparseVector,
        a: CSRMatrix,
        semiring: Semiring,
        mask: Optional[SparseVector] = None,
        desc: Descriptor = DEFAULT,
        direction: str = "auto",
        csc: Optional[CSCMatrix] = None,
    ) -> SparseVector:
        out_t = semiring.result_type(u.type, a.type)
        d = choose_direction(
            a,
            u,
            mask,
            desc,
            direction,
            True,
            push_indptr=a.indptr,
            pull_indptr=csc.indptr if csc is not None else None,
        )
        if d == "push":
            # Push never needs the transpose for vxm: u selects rows of A.
            return scatter_product(
                a, u, semiring, out_t, flip=True, mask=mask, desc=desc
            )
        tcsr = csc.tcsr if csc is not None else a.transpose()
        rows = mask_pull_rows(mask, desc, a.ncols)
        return row_gather_product(tcsr, u, semiring, out_t, flip=True, rows=rows)

    def mxm(
        self,
        a: CSRMatrix,
        b: CSRMatrix,
        semiring: Semiring,
        mask: Optional[CSRMatrix] = None,
        desc: Descriptor = DEFAULT,
    ) -> CSRMatrix:
        out_t = semiring.result_type(a.type, b.type)
        if mask is not None and not desc.complement_mask:
            # Masked SpGEMM: pre-filtering T by the mask commutes with the
            # write pipeline and skips sorting the partial products that the
            # mask would discard anyway.
            return spgemm_masked_esr(
                a, b, semiring, out_t, mask_keys_for(mask, desc)
            )
        return spgemm_esr(a, b, semiring, out_t)

    # ------------------------------------------------------------------
    # Elementwise
    # ------------------------------------------------------------------

    def ewise_add_vector(self, u: SparseVector, v: SparseVector, op: BinaryOp) -> SparseVector:
        return ewise_add_vec(u, v, op)

    def ewise_mult_vector(self, u: SparseVector, v: SparseVector, op: BinaryOp) -> SparseVector:
        return ewise_mult_vec(u, v, op)

    def ewise_add_matrix(self, a: CSRMatrix, b: CSRMatrix, op: BinaryOp) -> CSRMatrix:
        return ewise_add_mat(a, b, op)

    def ewise_mult_matrix(self, a: CSRMatrix, b: CSRMatrix, op: BinaryOp) -> CSRMatrix:
        return ewise_mult_mat(a, b, op)

    # ------------------------------------------------------------------
    # Apply / reduce
    # ------------------------------------------------------------------

    def apply_vector(self, u: SparseVector, op: UnaryOp) -> SparseVector:
        return apply_vec(u, op)

    def apply_matrix(self, a: CSRMatrix, op: UnaryOp) -> CSRMatrix:
        return apply_mat(a, op)

    def reduce_vector_scalar(self, u: SparseVector, monoid: Monoid) -> Any:
        return reduce_vec_scalar(u, monoid)

    def reduce_matrix_vector(self, a: CSRMatrix, monoid: Monoid) -> SparseVector:
        return reduce_mat_vector(a, monoid)

    def reduce_matrix_scalar(self, a: CSRMatrix, monoid: Monoid) -> Any:
        return reduce_mat_scalar(a, monoid)
