"""Table 5 (what-if) — the same kernels across GPU generations.

The cost model is fully parameterised by :class:`DeviceProperties`, so the
reproduction can answer the question the 2016 paper could not: how would
the same GraphBLAS workload scale on later parts?  Runs SpMV, SpGEMM, and
a full BFS on simulated K40, P100, and V100 presets (public spec-sheet
numbers).

Shape claims: the memory-bound SpMV speeds up roughly with the bandwidth
ratio (K40→V100 ≈ 3.1×); BFS — dominated by per-level launch overhead on
this graph size — improves far *less* than the bandwidth ratio, the
classic "small graphs don't scale with the hardware" effect.
"""

from __future__ import annotations

import pytest

import repro as gb
from repro.backends.dispatch import get_backend, use_backend
from repro.bench.tables import format_table
from repro.core import operations as ops
from repro.core.semiring import PLUS_TIMES
from repro.gpu.device import Device, K40, P100, V100, get_device, reset_device, set_device

from conftest import save_table

DEVICES = {"K40": K40, "P100": P100, "V100": V100}


def workloads():
    g = gb.generators.rmat(scale=12, edge_factor=16, seed=55, weighted=True)
    u = gb.Vector.full(1.0, g.nrows, gb.FP64)
    small = gb.generators.rmat(scale=8, edge_factor=8, seed=55)

    def spmv():
        w = gb.Vector.sparse(gb.FP64, g.nrows)
        return ops.mxv(w, g, u, PLUS_TIMES)

    def spgemm():
        c = gb.Matrix.sparse(gb.FP64, small.nrows, small.ncols)
        return ops.mxm(c, small, small, PLUS_TIMES)

    def bfs():
        return gb.algorithms.bfs_levels(g, 0)

    return [("SpMV (s12)", spmv), ("SpGEMM (s8)", spgemm), ("BFS (s12)", bfs)]


_WORK = workloads()


def sim_us(props, fn) -> float:
    set_device(Device(props))
    get_backend("cuda_sim").evict_all()
    with use_backend("cuda_sim"):
        fn()
    us = get_device().profiler.kernel_time_us
    reset_device()
    get_backend("cuda_sim").evict_all()
    return us


@pytest.mark.parametrize("device", list(DEVICES))
@pytest.mark.parametrize("work", [name for name, _ in _WORK])
def test_table5_cell(benchmark, device, work):
    fn = dict(_WORK)[work]
    us = sim_us(DEVICES[device], fn)
    benchmark.extra_info["simulated_us"] = round(us, 2)
    benchmark.pedantic(lambda: sim_us(DEVICES[device], fn), rounds=1, iterations=1)


def test_table5_render(benchmark):
    def build():
        rows = []
        res = {}
        for wname, fn in _WORK:
            row = [wname]
            for dname, props in DEVICES.items():
                us = sim_us(props, fn)
                res[(wname, dname)] = us
                row.append(round(us, 2))
            row.append(round(res[(wname, "K40")] / res[(wname, "V100")], 2))
            rows.append(row)
        table = format_table(
            "Table 5 — modeled kernel time across GPU generations (µs)",
            ["workload", "K40", "P100", "V100", "K40/V100"],
            rows,
        )
        save_table("table5_device_generations", table)
        bw_ratio = V100.mem_bandwidth_gbps / K40.mem_bandwidth_gbps  # ≈3.1
        spmv_gain = res[("SpMV (s12)", "K40")] / res[("SpMV (s12)", "V100")]
        bfs_gain = res[("BFS (s12)", "K40")] / res[("BFS (s12)", "V100")]
        # Memory-bound SpMV tracks bandwidth within 40%.
        assert 0.6 * bw_ratio < spmv_gain < 1.4 * bw_ratio, spmv_gain
        # Launch-bound BFS gains much less than the bandwidth ratio.
        assert bfs_gain < spmv_gain
        # Newer is never slower.
        for wname, _ in _WORK:
            assert res[(wname, "V100")] <= res[(wname, "K40")]
        return table

    benchmark.pedantic(build, rounds=1, iterations=1)
