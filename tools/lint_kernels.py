#!/usr/bin/env python
"""CI entry point for the gbsan static lint.

Equivalent to ``python -m repro.sanitizer.lint``; kept under tools/ so the
lint can run without installing the package (CI adds src/ to PYTHONPATH).
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.sanitizer.lint import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:] or [str(REPO / "src" / "repro")]))
