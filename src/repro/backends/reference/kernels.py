"""Pure-Python kernels for the reference backend.

These are deliberately written as textbook loops over dictionaries — the same
way GBTL's sequential reference backend is written as straightforward C++
loops.  They are the semantics oracle: every other backend's kernel is tested
for bit-equality against these, and every benchmark's "sequential CPU
baseline" series measures them.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

from ...containers.csr import CSRMatrix
from ...containers.sparsevec import SparseVector
from ...core.monoid import Monoid
from ...core.operators import BinaryOp
from ...core.semiring import Semiring
from ...types import GrBType

__all__ = [
    "vec_to_dict",
    "dict_to_vec",
    "mat_to_dict",
    "dict_to_mat",
    "spmv_dict",
    "spgemm_dict",
    "ewise_union_dict",
    "ewise_intersect_dict",
]


def vec_to_dict(u: SparseVector) -> Dict[int, Any]:
    return {int(i): v for i, v in zip(u.indices, u.values)}


def dict_to_vec(d: Dict[int, Any], size: int, typ: GrBType) -> SparseVector:
    if not d:
        return SparseVector.empty(size, typ)
    items = sorted(d.items())
    idx = [i for i, _ in items]
    vals = [typ.cast(v) for _, v in items]
    return SparseVector(size, idx, vals, typ)


def mat_to_dict(a: CSRMatrix) -> Dict[int, Dict[int, Any]]:
    out: Dict[int, Dict[int, Any]] = {}
    for i, j, v in a.iter_triplets():
        out.setdefault(i, {})[j] = v
    return out


def dict_to_mat(
    d: Dict[int, Dict[int, Any]], nrows: int, ncols: int, typ: GrBType
) -> CSRMatrix:
    import numpy as np

    rows, cols, vals = [], [], []
    for i in sorted(d):
        row = d[i]
        for j in sorted(row):
            rows.append(i)
            cols.append(j)
            vals.append(typ.cast(row[j]))
    indptr = np.zeros(nrows + 1, dtype=np.int64)
    for i in rows:
        indptr[i + 1] += 1
    np.cumsum(indptr, out=indptr)
    return CSRMatrix(
        nrows,
        ncols,
        indptr,
        np.asarray(cols, dtype=np.int64),
        np.asarray(vals, dtype=typ.dtype),
        typ,
    )


def spmv_dict(
    a_rows: Dict[int, Dict[int, Any]],
    u: Dict[int, Any],
    semiring: Semiring,
    out_type: GrBType,
) -> Dict[int, Any]:
    """Row-picture sparse matrix * sparse vector: t[i] = ⊕_j A[i,j] ⊗ u[j]."""
    out: Dict[int, Any] = {}
    for i, row in a_rows.items():
        acc = None
        # Iterate the smaller side of the intersection.
        if len(u) < len(row):
            it = ((j, u[j], row[j]) for j in u if j in row)
        else:
            it = ((j, u[j], row[j]) for j in row if j in u)
        for _, uv, av in it:
            prod = semiring.multiply(av, uv)
            acc = prod if acc is None else semiring.combine(acc, prod)
        if acc is not None:
            out[i] = out_type.cast(acc)
    return out


def spgemm_dict(
    a_rows: Dict[int, Dict[int, Any]],
    b_rows: Dict[int, Dict[int, Any]],
    semiring: Semiring,
    out_type: GrBType,
) -> Dict[int, Dict[int, Any]]:
    """Gustavson SpGEMM: C[i,:] = ⊕_k A[i,k] ⊗ B[k,:]."""
    out: Dict[int, Dict[int, Any]] = {}
    for i, arow in a_rows.items():
        crow: Dict[int, Any] = {}
        for k, av in arow.items():
            brow = b_rows.get(k)
            if not brow:
                continue
            for j, bv in brow.items():
                prod = semiring.multiply(av, bv)
                if j in crow:
                    crow[j] = semiring.combine(crow[j], prod)
                else:
                    crow[j] = prod
        if crow:
            out[i] = {j: out_type.cast(v) for j, v in crow.items()}
    return out


def ewise_union_dict(
    u: Dict[int, Any], v: Dict[int, Any], op: BinaryOp, out_type: GrBType
) -> Dict[int, Any]:
    out: Dict[int, Any] = {}
    for k in u.keys() | v.keys():
        if k in u and k in v:
            out[k] = out_type.cast(op(u[k], v[k]))
        elif k in u:
            out[k] = out_type.cast(u[k])
        else:
            out[k] = out_type.cast(v[k])
    return out


def ewise_intersect_dict(
    u: Dict[int, Any], v: Dict[int, Any], op: BinaryOp, out_type: GrBType
) -> Dict[int, Any]:
    small, big, flipped = (u, v, False) if len(u) <= len(v) else (v, u, True)
    out: Dict[int, Any] = {}
    for k, sv in small.items():
        if k in big:
            x, y = (sv, big[k]) if not flipped else (big[k], sv)
            out[k] = out_type.cast(op(x, y))
    return out
