"""Segmented reduction — the workhorse of all vectorized sparse kernels.

Expand–sort–reduce kernels (SpMV, SpMSpV, SpGEMM) all end by folding runs of
values that share a key with the semiring's additive monoid.  For the
standard monoids this lowers onto ``np.ufunc.reduceat`` (a single C loop);
arbitrary user monoids fall back to a per-segment Python fold.

Segments are described by ``starts`` (indices of the first element of each
segment, strictly increasing, ``starts[0] == 0``); each segment is nonempty
and runs to the next start (last one to ``len(values)``).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from ...core.monoid import Monoid
from ...core.operators import BinaryOp

__all__ = ["segment_reduce", "ufunc_for", "run_starts"]

# BinaryOp name -> NumPy ufunc usable with reduceat.
_UFUNCS: Dict[str, np.ufunc] = {
    "PLUS": np.add,
    "TIMES": np.multiply,
    "MIN": np.minimum,
    "MAX": np.maximum,
    "LOR": np.logical_or,
    "LAND": np.logical_and,
    "LXOR": np.logical_xor,
}


def ufunc_for(
    op: BinaryOp,
    monoid: Optional[Monoid] = None,
    dtype: Optional[np.dtype] = None,
) -> Optional[np.ufunc]:
    """The reduceat-capable ufunc for a binary op, if one exists.

    With ``monoid``/``dtype`` given, an op resolved only through its raw
    ``func`` (not the curated table) is additionally required to carry a
    reduction identity matching the monoid's — ``np.subtract`` is a ufunc
    but has no fold identity, and a monoid claiming one for it would make
    ``reduceat`` and identity-seeded reductions disagree.  Curated entries
    are exempt: their identities are known-consistent (NumPy leaves
    ``minimum.identity`` as None even though MIN is a lawful monoid).
    """
    uf = _UFUNCS.get(op.name)
    if uf is not None:
        return uf
    if not isinstance(op.func, np.ufunc):
        return None
    uf = op.func
    if monoid is not None:
        if uf.identity is None:
            return None
        from ...types import from_dtype

        want = monoid.identity(from_dtype(np.dtype(dtype)))
        if not np.asarray(uf.identity == want).all():
            return None
    return uf


def run_starts(keys: np.ndarray) -> np.ndarray:
    """Start offsets of equal-key runs in a sorted key array."""
    if keys.size == 0:
        return np.empty(0, dtype=np.int64)
    return np.flatnonzero(
        np.concatenate(([True], keys[1:] != keys[:-1]))
    ).astype(np.int64)


def segment_reduce(
    values: np.ndarray,
    starts: np.ndarray,
    monoid: Monoid,
    out_dtype: np.dtype,
) -> np.ndarray:
    """Fold each (nonempty) segment of ``values`` with the monoid's operator.

    Returns one value per segment, cast to ``out_dtype``.
    """
    if starts.size == 0:
        return np.empty(0, dtype=out_dtype)
    name = monoid.op.name
    if name in ("FIRST", "ANY"):
        return values[starts].astype(out_dtype, copy=False)
    if name == "SECOND":
        ends = np.append(starts[1:], values.size) - 1
        return values[ends].astype(out_dtype, copy=False)
    uf = ufunc_for(monoid.op, monoid, values.dtype)
    if uf is not None:
        # reduceat needs the values in the ufunc's natural domain; logical
        # ufuncs return bool which out_dtype then fixes up.
        return uf.reduceat(values, starts).astype(out_dtype, copy=False)
    # Generic fallback: logarithmic pairwise fold over segment strata.
    # Each round combines adjacent element pairs within every segment in one
    # vectorized op call, halving the longest segment — O(log max_len)
    # Python-level steps instead of one per element.  Associativity (which
    # Monoid requires) makes the tree fold equal to the sequential fold.
    bounds = np.append(starts, values.size)
    seg = np.repeat(np.arange(starts.size, dtype=np.int64), np.diff(bounds))
    vals = values
    while vals.size > starts.size:
        starts_cur = run_starts(seg)
        lens_cur = np.append(starts_cur[1:], seg.size) - starts_cur
        pos = np.arange(seg.size, dtype=np.int64) - np.repeat(starts_cur, lens_cur)
        left = pos % 2 == 0
        # A left element is paired iff its successor sits at an odd local
        # position (same segment); the final element never has a partner.
        paired = left.copy()
        paired[-1] = False
        paired[:-1] &= ~left[1:]
        lefts = np.flatnonzero(paired)
        combined = np.asarray(monoid.op(vals[lefts], vals[lefts + 1]))
        # Pairs collapse onto their left slot; lone odd tails pass through.
        vals = vals[left]
        np.place(vals, paired[left], combined.astype(vals.dtype, copy=False))
        seg = seg[left]
    out = np.empty(starts.size, dtype=out_dtype)
    out[:] = vals
    return out
