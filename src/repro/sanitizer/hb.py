"""Happens-before machinery: timelines, vector clocks, epochs.

Every execution timeline of the simulated stack — each device's default
(serialising) queue and every explicit :class:`~repro.gpu.stream.Stream` —
gets a :class:`Timeline` carrying a vector clock.  Ordering edges come from:

* program order within one timeline (the clock increments per operation),
* stream creation (a new stream observes everything already on its
  device's default timeline),
* ``record_event`` / ``wait_event`` pairs (the waiter joins the recorded
  snapshot),
* ``stream.synchronize()`` (the device default timeline joins the stream),
* cluster barriers and collectives (all participating timelines join a
  common frontier — see :class:`repro.distributed.cluster.OrderingEdge`).

Two accesses conflict iff they touch the same buffer, at least one writes,
and neither happens-before the other — the standard vector-clock race
condition (FastTrack keeps a last-write epoch plus a read map per buffer;
:mod:`repro.sanitizer.runtime` does the same).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Tuple

__all__ = ["Epoch", "Timeline", "join", "merge_frontier"]

#: ``(timeline id, clock value)`` — one access's position in the HB order.
Epoch = Tuple[int, int]

_TIDS = itertools.count(1)


class Timeline:
    """One execution timeline with its vector clock."""

    __slots__ = ("tid", "name", "clock", "vc")

    def __init__(self, name: str) -> None:
        self.tid: int = next(_TIDS)
        self.name = name
        self.clock: int = 0
        # Vector clock: tid -> highest clock value of that timeline known
        # to have happened before this timeline's current point.
        self.vc: Dict[int, int] = {self.tid: 0}

    def tick(self) -> Epoch:
        """Advance program order by one operation; returns the new epoch."""
        self.clock += 1
        self.vc[self.tid] = self.clock
        return (self.tid, self.clock)

    def ordered_after(self, epoch: Epoch) -> bool:
        """True when ``epoch`` happens-before this timeline's current point."""
        tid, clock = epoch
        return self.vc.get(tid, 0) >= clock

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Timeline {self.name} tid={self.tid} clock={self.clock}>"


def join(target: Timeline, snapshot: Dict[int, int]) -> None:
    """Merge a vector-clock snapshot into ``target`` (pointwise max)."""
    vc = target.vc
    for tid, clock in snapshot.items():
        if clock > vc.get(tid, 0):
            vc[tid] = clock


def merge_frontier(timelines: Iterable[Timeline]) -> Dict[int, int]:
    """Pointwise max over all clocks — the common frontier of a barrier.

    After a barrier every participant adopts (a copy of) the merged
    frontier, making all pre-barrier work on any participant ordered
    before all post-barrier work on every participant.
    """
    frontier: Dict[int, int] = {}
    for t in timelines:
        for tid, clock in t.vc.items():
            if clock > frontier.get(tid, 0):
                frontier[tid] = clock
    return frontier
