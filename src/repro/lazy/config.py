"""Lazy-optimizer switches.

The lazy evaluation layer has one mode knob and five independently
toggleable optimizer passes:

- ``mode`` — ``"auto"`` (record on backends that opt in via their
  ``lazy_by_default`` attribute, i.e. the single-device cuda_sim backend),
  ``"on"`` (record on every backend), or ``"off"`` (eager, the pre-lazy
  behaviour).  The environment variable ``REPRO_LAZY`` overrides the
  initial mode (``0``/``off`` or ``1``/``on``);
- ``fuse`` — ewise-chain fusion (ewise→reduce, fill→ewise) into single
  fused kernels;
- ``dme`` — dead-materialization elimination: nodes whose outputs are
  never observed are skipped entirely, and iso-valued payloads are demoted
  to structure-only uploads;
- ``sink`` — mask sinking: non-complemented output masks restrict the
  *inputs* of elementwise/apply kernels before the kernel runs;
- ``direction`` — loop-level push/pull selection from cached degree stats,
  replacing the per-op runtime heuristic for frontier-style products;
- ``capture`` — whole-loop capture: steady-state flush signatures are
  aggregated into one replay record (the CUDA Graphs analogue, applied
  automatically instead of via manual capture scopes).

Every mode or pass transition is an observation point: pending recorded
work is forced (and open capture aggregates closed) *before* the switch
flips, so a toggle can never change the semantics of work recorded under
the previous configuration.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = [
    "configure",
    "lazy_disabled",
    "lazy_enabled",
    "lazy_mode",
    "pass_enabled",
    "passes_configured",
]

_MODES = ("auto", "on", "off")
_PASSES = ("fuse", "dme", "sink", "direction", "capture")


def _initial_mode() -> str:
    env = os.environ.get("REPRO_LAZY", "").strip().lower()
    if env in ("0", "off", "false", "no"):
        return "off"
    if env in ("1", "on", "true", "yes"):
        return "on"
    return "auto"


class _Flags:
    __slots__ = ("mode", "fuse", "dme", "sink", "direction", "capture")

    def __init__(self) -> None:
        self.mode = _initial_mode()
        self.fuse = True
        self.dme = True
        self.sink = True
        self.direction = True
        self.capture = True


_FLAGS = _Flags()


def lazy_mode() -> str:
    return _FLAGS.mode


def pass_enabled(name: str) -> bool:
    if name not in _PASSES:
        raise ValueError(f"unknown lazy pass {name!r}; expected one of {_PASSES}")
    return bool(getattr(_FLAGS, name))


def _settle() -> None:
    """Force pending work before a configuration transition."""
    from . import schedule

    schedule.wait()


def configure(
    mode: Optional[str] = None,
    fuse: Optional[bool] = None,
    dme: Optional[bool] = None,
    sink: Optional[bool] = None,
    direction: Optional[bool] = None,
    capture: Optional[bool] = None,
) -> None:
    """Set the lazy mode and/or pass switches (None leaves one untouched)."""
    if mode is not None and mode not in _MODES:
        raise ValueError(f"unknown lazy mode {mode!r}; expected one of {_MODES}")
    _settle()
    if mode is not None:
        _FLAGS.mode = mode
    for name, value in (
        ("fuse", fuse),
        ("dme", dme),
        ("sink", sink),
        ("direction", direction),
        ("capture", capture),
    ):
        if value is not None:
            setattr(_FLAGS, name, bool(value))


@contextmanager
def lazy_disabled() -> Iterator[None]:
    """Run eagerly (the pre-lazy baseline); bit-identical by construction."""
    _settle()
    prev = _FLAGS.mode
    _FLAGS.mode = "off"
    try:
        yield
    finally:
        _FLAGS.mode = prev


@contextmanager
def lazy_enabled() -> Iterator[None]:
    """Force recording on every backend (A/B switch for the property tests)."""
    _settle()
    prev = _FLAGS.mode
    _FLAGS.mode = "on"
    try:
        yield
    finally:
        _settle()
        _FLAGS.mode = prev


@contextmanager
def passes_configured(**passes: bool) -> Iterator[None]:
    """Temporarily pin individual optimizer passes (ablation knob)."""
    for name in passes:
        if name not in _PASSES:
            raise ValueError(
                f"unknown lazy pass {name!r}; expected one of {_PASSES}"
            )
    _settle()
    prev = {name: getattr(_FLAGS, name) for name in passes}
    for name, value in passes.items():
        setattr(_FLAGS, name, bool(value))
    try:
        yield
    finally:
        _settle()
        for name, value in prev.items():
            setattr(_FLAGS, name, value)
