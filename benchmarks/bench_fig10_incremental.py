"""Figure 10 — streaming incremental recompute vs the full-recompute oracle.

New-workload experiment (no counterpart in the paper): an R-MAT scale-13
graph under churn — batches of 64 edge inserts (~0.06% of m, well under
the 1%-of-m regime the streaming views target) interleaved with reads.
After every batch each of BFS levels, connected components, and PageRank
is queried ``QUERIES_PER_BATCH`` times (a 1:4 write:read ratio — far more
write-heavy than production serving traces; fig9 replays 10k reads
against a static graph).  Two arms answer the identical query sequence:

- **incremental** — ``repro.streaming`` views over one `DynamicGraph`:
  frontier-seeded BFS/CC repair, PageRank power-iteration warm restart,
  and sound seq-keyed caching between batches;
- **full recompute** — the differential fuzzer's oracle semantics
  (``repro.testing.streaming``): materialise the graph after each batch
  and recompute every query from scratch, cold.

Shape claims (the CI gate):

- **work** — the incremental arm beats full recompute ≥ 3x in charged
  device work (modeled kernel + transfer time) and in kernel launches,
  per algorithm and for the pipeline.  BFS/CC win by an order of
  magnitude (insert repair touches only the affected frontier); PageRank
  wins by read amortisation — a warm restart converging to the same
  tolerance costs roughly one cold run (the geometric tail dominates;
  the uniform start's transient is fast), so its ratio comes from
  serving cached ranks to the reads between batches, not from cheaper
  iterations.  The delta overlay also keeps H2D traffic ~1000x below
  the oracle's per-batch re-upload (recorded, not a ratio gate).
- **bit identity** — every BFS/CC result is bit-identical to the oracle
  on cuda_sim and multi_sim P ∈ {1, 2, 4}.  PageRank converges to an
  ulp-degenerate family of floating-point fixpoints (the float iteration
  map has many bitwise fixed points within one ulp of each other, and
  which one a trajectory lands on depends on the start), so warm and
  cold runs at ``tol=1e-12`` agree to ~1e-9 relative — asserted at 1e-7
  and recorded exactly.
- **deletes** — an ungated sub-case: a mixed batch with deletes forces
  the documented BFS/CC fallback to full recompute (still bit-identical)
  while PageRank's warm restart absorbs deletes without a fallback.

Both arms run eagerly (``repro.lazy`` disabled) so kernel-launch counts
are per-kernel and comparable; the lazy optimizer is pure scheduling and
is covered by the streaming differential fuzzer's ``lazy=on/off`` specs.
The JSON record carries the deterministic launch/H2D counters of both
cuda_sim arms (CI-gated by ``check_bench_regressions.py``).
"""

from __future__ import annotations

import numpy as np

import repro as gb
from repro.algorithms.bfs import bfs_levels
from repro.algorithms.components import connected_components
from repro.algorithms.pagerank import pagerank
from repro.bench.tables import format_table
from repro.gpu.device import get_device
from repro.lazy import config as lazy_config
from repro.streaming import (
    DynamicGraph,
    IncrementalBFS,
    IncrementalCC,
    IncrementalPageRank,
    random_edge_batch,
)
from conftest import fresh_device_state, save_json, save_table

SCALE = 13
EDGE_FACTOR = 8
GRAPH_SEED = 21
BATCH_SEED = 100
SOURCE = 0
N_BATCHES = 5
BATCH_EDGES = 64
QUERIES_PER_BATCH = 4
PR_TOL = 1e-12
PR_MAX_ITER = 400
PR_RTOL = 1e-7  # asserted bound; the observed value is recorded exactly
MIN_RATIO = 3.0
# multi_sim replays a prefix: the A/B there certifies distributed
# bit-identity, not the work ratio, so it doesn't need the full workload.
MULTI_BATCHES = 2
MULTI_QUERIES = 2
MULTI_PARTS = [1, 2, 4]
ALGOS = ("bfs", "cc", "pagerank")


def _batches(n: int, count: int):
    return [
        random_edge_batch(BATCH_SEED + b, n, inserts=BATCH_EDGES)
        for b in range(count)
    ]


def _counters():
    prof = get_device().profiler
    return (
        prof.launch_count,
        prof.kernel_time_us + prof.transfer_time_us,
        prof.h2d_bytes,
    )


class _Attribution:
    """Per-algorithm launch/charged-time deltas, plus arm totals."""

    def __init__(self):
        self.launches = {a: 0 for a in ALGOS}
        self.charged_us = {a: 0.0 for a in ALGOS}
        self._arm0 = None

    def run(self, algo, fn):
        k0, u0, _ = _counters()
        out = fn()
        k1, u1, _ = _counters()
        self.launches[algo] += k1 - k0
        self.charged_us[algo] += u1 - u0
        return out

    def arm_start(self):
        self._arm0 = _counters()

    def arm_totals(self):
        k1, u1, h1 = _counters()
        k0, u0, h0 = self._arm0
        return {
            "kernel_launches": int(k1 - k0),
            "charged_us": round(u1 - u0, 1),
            "h2d_bytes": round(h1 - h0),
        }


def _run_incremental(base, batches, queries, attr=None):
    """Warm the views, then answer ``queries`` reads per batch."""
    g = DynamicGraph(base.dup())
    views = {
        "bfs": IncrementalBFS(g, SOURCE),
        "cc": IncrementalCC(g),
        "pagerank": IncrementalPageRank(g, tol=PR_TOL, max_iter=PR_MAX_ITER),
    }
    for v in views.values():
        v.query()
    if attr:
        attr.arm_start()
    results = []
    for batch in batches:
        g.apply(batch)
        for _ in range(queries):
            step = {}
            for algo, view in views.items():
                fn = view.query
                out = attr.run(algo, fn) if attr else fn()
                step[algo] = out.dup()
            results.append(step)
    totals = attr.arm_totals() if attr else None
    return results, views, totals


def _run_full(base, batches, queries, attr=None):
    """The oracle arm: materialise after each batch, recompute per read."""
    oracle = {
        "bfs": lambda m: bfs_levels(m, SOURCE),
        "cc": connected_components,
        "pagerank": lambda m: pagerank(m, tol=PR_TOL, max_iter=PR_MAX_ITER),
    }
    g = DynamicGraph(base.dup())
    snap = g.snapshot()
    for fn in oracle.values():
        fn(snap)  # same residency warm-up the incremental arm gets
    if attr:
        attr.arm_start()
    results = []
    for batch in batches:
        g.apply(batch)
        snap = g.snapshot()
        for _ in range(queries):
            step = {}
            for algo, fn in oracle.items():
                out = attr.run(algo, lambda f=fn: f(snap)) if attr else fn(snap)
                step[algo] = out.dup()
            results.append(step)
    totals = attr.arm_totals() if attr else None
    return results, totals


def _compare(inc_results, full_results):
    """BFS/CC bitwise; PageRank max relative divergence (returned)."""
    max_rel = 0.0
    for step, (a, b) in enumerate(zip(inc_results, full_results)):
        for algo in ("bfs", "cc"):
            x, y = a[algo], b[algo]
            assert np.array_equal(
                x.indices_array(), y.indices_array()
            ) and np.array_equal(x.values_array(), y.values_array()), (
                f"{algo} diverged from the oracle at query {step}"
            )
        x, y = a["pagerank"].values_array(), b["pagerank"].values_array()
        max_rel = max(max_rel, float(np.max(np.abs(x - y) / np.abs(y))))
    assert max_rel <= PR_RTOL, (
        f"pagerank warm/cold fixpoints diverged: {max_rel:.2e} > {PR_RTOL}"
    )
    return max_rel


def _delete_case(base):
    """Mixed insert/delete batch: BFS/CC fall back (bit-identical), PR not."""
    g = DynamicGraph(base.dup())
    views = {
        "bfs": IncrementalBFS(g, SOURCE),
        "cc": IncrementalCC(g),
        "pagerank": IncrementalPageRank(g, tol=PR_TOL, max_iter=PR_MAX_ITER),
    }
    for v in views.values():
        v.query()
    rows, cols = g.edges()
    batch = random_edge_batch(
        BATCH_SEED + 999, g.n, inserts=8, deletes=8, existing=(rows, cols)
    )
    g.apply(batch)
    snap = g.snapshot()
    oracle = {
        "bfs": bfs_levels(snap, SOURCE),
        "cc": connected_components(snap),
        "pagerank": pagerank(snap, tol=PR_TOL, max_iter=PR_MAX_ITER),
    }
    for algo in ("bfs", "cc"):
        got, want = views[algo].query(), oracle[algo]
        assert np.array_equal(
            got.indices_array(), want.indices_array()
        ) and np.array_equal(got.values_array(), want.values_array()), (
            f"{algo} delete fallback diverged from the oracle"
        )
    pr = views["pagerank"].query().values_array()
    want = oracle["pagerank"].values_array()
    rel = float(np.max(np.abs(pr - want) / np.abs(want)))
    assert rel <= PR_RTOL
    assert views["bfs"].stats.delete_fallbacks == 1
    assert views["cc"].stats.delete_fallbacks == 1
    assert views["pagerank"].stats.delete_fallbacks == 0
    return {
        "deletes": int(batch.delete_count),
        "bfs_fallback": True,
        "cc_fallback": True,
        "pagerank_fallback": False,
        "bit_identical": True,
        "pagerank_max_rel": rel,
    }


def test_fig10_render(benchmark):
    def build():
        base = gb.generators.rmat(
            scale=SCALE, edge_factor=EDGE_FACTOR, seed=GRAPH_SEED
        )
        m = base.nvals
        assert BATCH_EDGES <= 0.01 * m, "batches must stay within 1% of m"
        batches = _batches(base.nrows, N_BATCHES)

        # -- cuda_sim: the gated work-ratio A/B (eager launch accounting) --
        fresh_device_state()
        inc_attr, full_attr = _Attribution(), _Attribution()
        with lazy_config.lazy_disabled(), gb.use_backend("cuda_sim"):
            inc_results, views, inc_tot = _run_incremental(
                base, batches, QUERIES_PER_BATCH, inc_attr
            )
            full_results, full_tot = _run_full(
                base, batches, QUERIES_PER_BATCH, full_attr
            )
        pr_max_rel = _compare(inc_results, full_results)

        ratios = {}
        for algo in ALGOS:
            lr = full_attr.launches[algo] / max(inc_attr.launches[algo], 1)
            cr = full_attr.charged_us[algo] / max(inc_attr.charged_us[algo], 1e-9)
            ratios[algo] = {"launches": round(lr, 2), "charged": round(cr, 2)}
            assert lr >= MIN_RATIO, f"{algo} launch ratio {lr:.2f} < {MIN_RATIO}"
            assert cr >= MIN_RATIO, f"{algo} charged ratio {cr:.2f} < {MIN_RATIO}"
        pipe_l = full_tot["kernel_launches"] / max(inc_tot["kernel_launches"], 1)
        pipe_c = full_tot["charged_us"] / max(inc_tot["charged_us"], 1e-9)
        assert pipe_l >= MIN_RATIO and pipe_c >= MIN_RATIO
        ratios["pipeline"] = {
            "launches": round(pipe_l, 2),
            "charged": round(pipe_c, 2),
            "h2d": round(full_tot["h2d_bytes"] / max(inc_tot["h2d_bytes"], 1), 1),
        }
        # The reads between batches must be served from the seq-keyed cache
        # — that amortisation is the PageRank win, so pin it.
        expected_hits = N_BATCHES * (QUERIES_PER_BATCH - 1)
        for view in views.values():
            assert view.stats.cached_hits == expected_hits

        # -- delete fallback sub-case (ungated) ---------------------------
        fresh_device_state()
        with lazy_config.lazy_disabled(), gb.use_backend("cuda_sim"):
            delete_case = _delete_case(base)

        # -- multi_sim P∈{1,2,4}: distributed bit-identity on a prefix ----
        prefix = batches[:MULTI_BATCHES]
        multi = {}
        for nparts in MULTI_PARTS:
            be = gb.get_backend("multi_sim")
            be.configure(nparts=nparts, splitter="degree_balanced")
            be.reset()
            with gb.use_backend(be):
                inc_p, _, _ = _run_incremental(base, prefix, MULTI_QUERIES)
                full_p, _ = _run_full(base, prefix, MULTI_QUERIES)
            rel = _compare(inc_p, full_p)
            multi[f"P{nparts}"] = {
                "queries": MULTI_BATCHES * MULTI_QUERIES * len(ALGOS),
                "bit_identical": True,
                "pagerank_max_rel": rel,
            }

        rows = [
            [
                algo,
                full_attr.launches[algo],
                inc_attr.launches[algo],
                ratios[algo]["launches"],
                round(full_attr.charged_us[algo]),
                round(inc_attr.charged_us[algo]),
                ratios[algo]["charged"],
            ]
            for algo in ALGOS
        ] + [
            [
                "pipeline",
                full_tot["kernel_launches"],
                inc_tot["kernel_launches"],
                ratios["pipeline"]["launches"],
                round(full_tot["charged_us"]),
                round(inc_tot["charged_us"]),
                ratios["pipeline"]["charged"],
            ]
        ]
        fig = format_table(
            f"Figure 10 — incremental recompute vs full-recompute oracle "
            f"(R-MAT scale {SCALE}, {N_BATCHES} batches x {BATCH_EDGES} "
            f"inserts, {QUERIES_PER_BATCH} reads/batch)",
            ["algo", "full_k", "inc_k", "k_ratio", "full_us", "inc_us",
             "us_ratio"],
            rows,
        )
        fig += (
            f"\n\nH2D bytes full/incremental: {ratios['pipeline']['h2d']}x"
            f"\npagerank warm/cold max rel divergence: {pr_max_rel:.2e}"
            f"\nmulti_sim bit-identity: "
            + ", ".join(f"{k} ok" for k in sorted(multi))
        )
        save_table("fig10_incremental", fig)

        record = {
            "figure": "fig10_incremental",
            "scale": SCALE,
            "workload": {
                "edges": int(m),
                "batches": N_BATCHES,
                "batch_edges": BATCH_EDGES,
                "batch_fraction_of_m": round(BATCH_EDGES / m, 6),
                "queries_per_batch": QUERIES_PER_BATCH,
                "pr_tol": PR_TOL,
                "pr_max_iter": PR_MAX_ITER,
            },
            "ratios": ratios,
            "per_algo": {
                a: {
                    "full": {
                        "kernel_launches": full_attr.launches[a],
                        "charged_us": round(full_attr.charged_us[a], 1),
                    },
                    "incremental": {
                        "kernel_launches": inc_attr.launches[a],
                        "charged_us": round(inc_attr.charged_us[a], 1),
                    },
                }
                for a in ALGOS
            },
            "bit_identical": {
                "bfs": True,
                "cc": True,
                "pagerank_max_rel": pr_max_rel,
                "multi_sim": multi,
            },
            "delete_case": delete_case,
            # Deterministic counters — CI-gated like every other figure.
            "cuda_sim_metrics": {
                "incremental": {
                    "kernel_launches": inc_tot["kernel_launches"],
                    "h2d_bytes": inc_tot["h2d_bytes"],
                },
                "full_recompute": {
                    "kernel_launches": full_tot["kernel_launches"],
                    "h2d_bytes": full_tot["h2d_bytes"],
                },
            },
        }
        save_json("fig10", record)
        return fig

    benchmark.pedantic(build, rounds=1, iterations=1)
