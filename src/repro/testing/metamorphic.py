"""Metamorphic invariants checked on reference-backend output.

Differential testing catches backends disagreeing with the reference; these
invariants catch the reference itself being wrong, by checking properties
that hold for *any* correct GraphBLAS implementation:

- **vertex-permutation equivariance** — relabelling the vertices of every
  input relabels the output the same way: ``f(P·x) == P·f(x)``;
- **semiring isomorphism** — negation is an isomorphism between the
  (MIN, +) and (MAX, +) semirings: ``min_plus(A, u) == -max_plus(-A, -u)``
  (the ISSUE's MIN_PLUS ↔ MAX_MINUS pairing: max of negated sums);
- **mask/complement partition** — a structural mask and its complement
  split the unmasked result into two disjoint parts whose union is exactly
  the unmasked result (with REPLACE, no accumulator);
- **duplicate-edge idempotence** — for an idempotent dup monoid, building
  a graph from a doubled edge list yields the same matrix, and therefore
  the same products, as building from the unique list;
- **batch composition** — batched multi-source kernels (multi-source BFS,
  blocked personalized PageRank) are row-wise independent: each source's
  row in a batch-of-k must be bit-identical to its batch-of-1 run.  This
  is the contract the serving layer's coalescer relies on to merge
  queries from different users into one launch (:mod:`repro.serve`);
- **incremental ≡ full recompute** — replaying a graph-mutation program,
  every incrementally-maintained query (BFS levels, CC labels, PageRank)
  must match the plain algorithm run on an independent materialisation of
  the mutated graph: bit-identical for the integer fixpoints (BFS/CC),
  tolerance-bounded for PageRank (:mod:`repro.streaming`).

All checks return ``None`` on success or a human-readable failure string.
"""

from __future__ import annotations

from typing import Any, List, Optional

import numpy as np

from ..backends.dispatch import use_backend
from ..core import operations as ops
from ..core.descriptor import Descriptor
from ..core.matrix import Matrix
from ..core.operators import AINV, LAND, LOR, MAX, MIN, SECOND
from ..core.semiring import MAX_PLUS, MIN_PLUS
from ..core.vector import Vector
from ..types import FP64
from .equivalence import same
from .executor import execute
from .programs import Program, annotate_exactness, build_env, build_graph, generate_program

__all__ = [
    "check_permutation_equivariance",
    "check_semiring_negation",
    "check_mask_partition",
    "check_duplicate_idempotence",
    "check_batch_composition",
    "check_incremental_recompute",
    "run_metamorphic_suite",
]


# ---------------------------------------------------------------------------
# Permutation equivariance
# ---------------------------------------------------------------------------


def _permute_snapshot(snap: Any, perm: np.ndarray) -> Any:
    """Apply the vertex relabelling to a reference snapshot."""
    if isinstance(snap, Vector):
        idx = perm[snap.indices_array()]
        order = np.argsort(idx, kind="stable")
        return Vector.from_lists(
            idx[order], snap.values_array()[order], snap.size, snap.type
        )
    if isinstance(snap, Matrix):
        ri, ci, vv = snap.to_lists()
        return Matrix.from_lists(
            perm[np.asarray(ri, dtype=np.int64)],
            perm[np.asarray(ci, dtype=np.int64)],
            np.asarray(vv, dtype=snap.type.dtype),
            snap.nrows, snap.ncols, snap.type,
        )
    return snap  # scalars are permutation-invariant


def check_permutation_equivariance(
    program: Program, perm_seed: int = 0
) -> Optional[str]:
    """``f(P·x) == P·f(x)`` for an equivariant-profile program.

    The program must avoid index-dependent ops (extract/assign/TRIL-style
    selects) — generate it with ``profile="equivariant"``.
    """
    base = execute(program, "reference")
    env = build_env(program)
    perm = np.random.default_rng(perm_seed).permutation(env.n).astype(np.int64)
    permuted = execute(program, "reference", perm=perm)
    exact = annotate_exactness(program)
    for i, (b, p) in enumerate(zip(base, permuted)):
        expected = _permute_snapshot(b, perm)
        # Permutation reorders the additive folds, so inexact ops compare
        # with tolerance even within the single reference backend.
        if not same(p, expected, exact=exact[i], rtol=1e-9):
            return (
                f"op #{i} ({program.ops[i]['op']}) is not "
                f"permutation-equivariant (perm_seed={perm_seed})"
            )
    return None


# ---------------------------------------------------------------------------
# Semiring isomorphism: MIN_PLUS vs negated MAX_PLUS
# ---------------------------------------------------------------------------


def _negated(m: Matrix) -> Matrix:
    out = Matrix.sparse(m.type, m.nrows, m.ncols)
    return ops.apply(out, m, AINV)


def _negated_vec(v: Vector) -> Vector:
    out = Vector.sparse(v.type, v.size)
    return ops.apply(out, v, AINV)


def check_semiring_negation(graph: Matrix, u: Vector) -> Optional[str]:
    """``min_plus(A, u) == -max_plus(-A, -u)`` bit-for-bit.

    Negation is exact in floating point and maps MIN onto MAX and ``+``
    onto itself, so the two computations must agree exactly — any
    difference means one of the two additive fold implementations is
    broken (e.g. a wrong identity or a wrong terminal element).
    """
    with use_backend("reference"):
        w1 = ops.mxv(Vector.sparse(FP64, graph.nrows), graph, u, MIN_PLUS)
        w2 = ops.mxv(
            Vector.sparse(FP64, graph.nrows), _negated(graph), _negated_vec(u), MAX_PLUS
        )
        w2n = _negated_vec(w2)
    if not same(w2n, w1, exact=True):
        return "MIN_PLUS(A,u) != -MAX_PLUS(-A,-u): additive fold asymmetry"
    with use_backend("reference"):
        c1 = ops.mxm(Matrix.sparse(FP64, graph.nrows, graph.ncols), graph, graph, MIN_PLUS)
        na = _negated(graph)
        c2 = ops.mxm(Matrix.sparse(FP64, graph.nrows, graph.ncols), na, na, MAX_PLUS)
        c2n = _negated(c2)
    if not same(c2n, c1, exact=True):
        return "MIN_PLUS(A,A) != -MAX_PLUS(-A,-A): mxm additive fold asymmetry"
    return None


# ---------------------------------------------------------------------------
# Mask/complement partition
# ---------------------------------------------------------------------------


def check_mask_partition(graph: Matrix, u: Vector, mask: Vector, semiring) -> Optional[str]:
    """``r<M,struct,replace> ⊎ r<¬M,struct,replace> == r`` exactly.

    The two structural-masked results live on disjoint index sets (the
    mask's pattern and its complement), so their entry-union must
    reconstruct the unmasked result — masked kernels may *prune* work but
    must not change any kept value or drop any kept entry.
    """
    n = graph.nrows
    d_keep = Descriptor(structural_mask=True, replace=True)
    d_comp = Descriptor(structural_mask=True, complement_mask=True, replace=True)
    with use_backend("reference"):
        r = ops.mxv(Vector.sparse(FP64, n), graph, u, semiring)
        rm = ops.mxv(Vector.sparse(FP64, n), graph, u, semiring, mask=mask, desc=d_keep)
        rc = ops.mxv(Vector.sparse(FP64, n), graph, u, semiring, mask=mask, desc=d_comp)
        # Disjointness first: no index may appear on both sides.
        inter = np.intersect1d(rm.indices_array(), rc.indices_array())
        if inter.size:
            return f"mask partition overlap at indices {inter[:5].tolist()}"
        union = ops.ewise_add(Vector.sparse(FP64, n), rm, rc, SECOND)
    if not same(union, r, exact=True):
        return f"mask/complement union does not reconstruct the unmasked {semiring.name} result"
    return None


# ---------------------------------------------------------------------------
# Duplicate-edge idempotence
# ---------------------------------------------------------------------------

_IDEMPOTENT_DUPS = {"MIN": MIN, "MAX": MAX, "LOR": LOR, "LAND": LAND}


def check_duplicate_idempotence(graph: Matrix, dup_name: str = "MIN") -> Optional[str]:
    """Doubling every edge must be a no-op under an idempotent dup monoid.

    ``build(E ++ E, dup=⊕) == build(E)`` whenever ``x ⊕ x == x`` — this
    guards the COO deduplication path (sort + reduceat fast path vs the
    sequential fallback) that every generator and the fuzzer itself rely
    on for replayability.
    """
    dup = _IDEMPOTENT_DUPS[dup_name]
    ri, ci, vv = graph.to_lists()
    typ = graph.type
    if dup_name in ("LOR", "LAND"):
        # Logical dups are only value-preserving on the boolean domain
        # (LOR(2.0, 2.0) is True, not 2.0) — check them on the pattern.
        from ..types import BOOL

        vv = [True] * len(vv)
        typ = BOOL
    base = Matrix.from_lists(ri, ci, vv, graph.nrows, graph.ncols, typ)
    ri2 = list(ri) + list(ri)
    ci2 = list(ci) + list(ci)
    vv2 = list(vv) + list(vv)
    doubled = Matrix.from_lists(ri2, ci2, vv2, graph.nrows, graph.ncols, typ, dup=dup)
    if not same(doubled, base, exact=True):
        return f"doubled edge list under idempotent {dup_name} changed the matrix"
    return None


# ---------------------------------------------------------------------------
# Batch composition: batch-of-1 ≡ single row of batch-of-k
# ---------------------------------------------------------------------------


def check_batch_composition(graph: Matrix, sources: List[int]) -> Optional[str]:
    """Each row of a batched launch must equal its batch-of-1 run, exactly.

    Checks the two batched kernels the serving layer coalesces onto:
    multi-source BFS (k frontiers, one masked mxm per level) and blocked
    personalized PageRank (k rank rows, one SpMM per iteration).  Both are
    row-wise independent by construction, so batch composition must not
    perturb any bit of any row — the invariant that makes coalescing
    queries from unrelated users safe.
    """
    from ..algorithms.msbfs import bfs_levels_multi
    from ..algorithms.ppr import ppr_batch

    def _row(m: Matrix, i: int):
        idx, vals = m.container.row(i)
        return idx.copy(), vals.copy()

    with use_backend("reference"):
        levels = bfs_levels_multi(graph, sources)
        ranks = ppr_batch(graph, sources, damping=0.85, iters=4)
        for i, s in enumerate(sources):
            li, lv = _row(levels, i)
            si, sv = _row(bfs_levels_multi(graph, [s]), 0)
            if not (np.array_equal(li, si) and np.array_equal(lv, sv)):
                return (
                    f"msbfs row for source {s} differs between batch-of-"
                    f"{len(sources)} and batch-of-1"
                )
            ri, rv = _row(ranks, i)
            pi, pv = _row(ppr_batch(graph, [s], damping=0.85, iters=4), 0)
            if not (np.array_equal(ri, pi) and np.array_equal(rv, pv)):
                return (
                    f"ppr row for source {s} differs between batch-of-"
                    f"{len(sources)} and batch-of-1"
                )
    return None


# ---------------------------------------------------------------------------
# Incremental ≡ full recompute (the streaming invariant)
# ---------------------------------------------------------------------------


def check_incremental_recompute(seed: int) -> Optional[str]:
    """Incremental views must agree with full recompute on the mutated graph.

    Generates a mutation program for ``seed`` and replays it on the
    reference backend; every query op compares the incremental answer
    against the plain algorithm run on an independent snapshot of the
    current graph state (exact for BFS/CC, rtol for PageRank).  The
    divergence check against other backends lives in the fuzzer's
    streaming lane; this is the backend-independent half of the invariant.
    """
    from .programs import generate_mutation_program
    from .streaming import execute_streaming

    prog = generate_mutation_program(seed)
    _, divergence = execute_streaming(prog, "reference")
    if divergence is not None:
        return f"{prog.describe()}: {divergence}"
    return None


# ---------------------------------------------------------------------------
# Suite driver (used by the fuzzer's sampled metamorphic lane)
# ---------------------------------------------------------------------------


def run_metamorphic_suite(seed: int) -> List[str]:
    """Run every invariant once for ``seed``; returns failure strings."""
    failures: List[str] = []

    prog = generate_program(seed, profile="equivariant")
    msg = check_permutation_equivariance(prog, perm_seed=seed)
    if msg:
        failures.append(f"[permutation] {prog.describe()}: {msg}")

    full = generate_program(seed, profile="full")
    env = build_env(full)
    graph, u, mask = env.matrices[0], env.vectors[0], env.mask_vectors[0]

    msg = check_semiring_negation(graph, u)
    if msg:
        failures.append(f"[negation] {full.describe()}: {msg}")

    from ..core.semiring import LOR_LAND, MIN_PLUS as _MP, PLUS_TIMES

    for sr in (PLUS_TIMES, _MP, LOR_LAND):
        msg = check_mask_partition(graph, u, mask, sr)
        if msg:
            failures.append(f"[mask-partition] {full.describe()}: {msg}")

    for dup_name in sorted(_IDEMPOTENT_DUPS):
        msg = check_duplicate_idempotence(graph, dup_name)
        if msg:
            failures.append(f"[dup-idempotence:{dup_name}] {full.describe()}: {msg}")

    rng = np.random.default_rng(seed)
    k = min(int(rng.integers(2, 6)), graph.nrows)
    sources = rng.choice(graph.nrows, size=k, replace=False).tolist()
    msg = check_batch_composition(graph, [int(s) for s in sources])
    if msg:
        failures.append(f"[batch-composition] {full.describe()}: {msg}")

    msg = check_incremental_recompute(seed)
    if msg:
        failures.append(f"[incremental-recompute] {msg}")
    return failures
