"""Vectorized SpGEMM (mxm) — expand, reduce (sort-free when possible).

The row-merge (Gustavson) formulation: ``C[i,:] = ⊕_k A[i,k] ⊗ B[k,:]``.
Instead of per-row hash maps (the GPU strategy, see
:mod:`repro.backends.cuda_sim`), the CPU kernel materialises the partial-
product *coordinates* — one per FLOP — then groups by (row, col) flat key.

Two refinements over the classic expand–sort–reduce:

- **Mask fusion**: the masked kernel tests every expanded coordinate
  against the mask *before* computing any product value.  Membership and
  slot lookup are one fused gather through a dense int32 *slot map* over
  the output keyspace (``slot + 1`` at allowed keys, zero elsewhere) when
  that fits, falling back to ``searchsorted`` against the sorted allowed
  keys.  Surviving entries are reduced into a dense accumulator indexed by
  the mask-slot number — the CPU mirror of bounding hash-table writes by
  the mask in a GPU kernel — so nothing outside the mask is ever
  multiplied, sorted, or written.  The slot map and the expansion arrays
  live in reusable :func:`~.fastpath.scratch` workspaces, so steady-state
  calls allocate nothing proportional to the FLOP count.
- **Sort-free reduce**: grouped reduction lowers onto the
  :mod:`.fastpath` dense-accumulator strategies for standard monoids; the
  stable sort + ``segment_reduce`` remains the generic fallback and is
  bit-identical.  ``PLUS`` over the value-blind ``PAIR`` multiply (triangle
  counting's semiring) degenerates to pure key *counting* — no value is
  gathered or multiplied at all.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...containers.csr import CSRMatrix
from ...containers.sparsevec import SparseVector
from ...core.descriptor import DEFAULT, Descriptor
from ...core.semiring import Semiring
from ...types import GrBType
from .fastpath import (
    dense_keyspace_ok,
    fast_reduce_by_key,
    mask_slot_map,
    reduce_strategy,
    scratch,
)
from .segments import run_starts, segment_reduce
from .spmv import take_ranges

__all__ = [
    "spgemm_esr",
    "spgemm_masked_esr",
    "expand_products",
    "expand_structure",
    "mask_keys_for",
]

# The mask slot map is four bytes per output cell; cap its footprint
# (128 MB) and require the expansion to be large enough to amortise the
# one-time zeroing (steady-state reuse costs only O(nnz(mask)) per call).
_SLOT_MAP_CAP = 1 << 25


def expand_structure(a: CSRMatrix, b: CSRMatrix):
    """Coordinates of all partial products of ``A ⊗ B`` — values untouched.

    Returns ``(rows, cols, b_take, a_take)``: entry ``p`` of the expansion
    multiplies ``a.values[a_take[p]]`` with ``b.values[b_take[p]]`` into
    output cell ``(rows[p], cols[p])``.  Ordered by A's storage order
    (row-major, so ``rows`` is nondecreasing).  Deferring the value gathers
    lets masked SpGEMM drop coordinates before any multiply happens.
    """
    a_rows = np.repeat(np.arange(a.nrows, dtype=np.int64), a.row_degrees())
    # For every A entry (i, k, av): expand B's row k.
    b_take, lens = take_ranges(b.indptr, a.indices)
    rows = np.repeat(a_rows, lens)
    cols = b.indices[b_take]
    a_take = np.repeat(np.arange(a.nvals, dtype=np.int64), lens)
    return rows, cols, b_take, a_take


def expand_products(a: CSRMatrix, b: CSRMatrix, semiring: Semiring):
    """Materialise all partial products of ``A ⊗ B``.

    Returns ``(rows, cols, prods)`` — one entry per FLOP, ordered by A's
    storage order (row-major, so ``rows`` is nondecreasing).
    """
    rows, cols, b_take, a_take = expand_structure(a, b)
    prods = np.asarray(semiring.mult(a.values[a_take], b.values[b_take]))
    return rows, cols, prods


def mask_keys_for(mask: CSRMatrix, desc: Descriptor) -> np.ndarray:
    """Sorted flat keys where a non-complemented mask allows output.

    Returns None-equivalent (empty) only when mask has no allowed entries;
    callers must check ``desc.complement_mask`` before using this (a
    complemented mask cannot prune this way).
    """
    rows = np.repeat(np.arange(mask.nrows, dtype=np.int64), mask.row_degrees())
    keys = rows * np.int64(mask.ncols) + mask.indices
    if desc.structural_mask:
        return keys
    return keys[mask.values.astype(bool)]


def _csr_from_flat(nrows, ncols, out_keys, out_vals, out_type) -> CSRMatrix:
    """Assemble canonical CSR from sorted unique flat keys + reduced values."""
    out_rows = out_keys // ncols
    out_cols = out_keys - out_rows * ncols
    indptr = np.zeros(nrows + 1, dtype=np.int64)
    if out_rows.size:
        np.add.at(indptr, out_rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return CSRMatrix(
        nrows,
        ncols,
        indptr,
        out_cols,
        np.asarray(out_vals).astype(out_type.dtype, copy=False),
        out_type,
    )


def _sorted_reduce_flat(nrows, ncols, keys, prods, semiring, out_type) -> CSRMatrix:
    """Fallback reduce when the dense flat-key accumulator is too large.

    For monoids with a dense-accumulator strategy the keys are *compacted*
    (``np.unique``) and reduced with the **same** strategy the dense path
    uses, over the compressed keyspace.  This keeps every per-key
    accumulation order identical between the two branches, which matters
    for inexact monoids: float64 ``PLUS`` via ``bincount`` folds
    sequentially while ``np.add.reduceat`` folds pairwise, so mixing the
    two makes a row's bits depend on which branch the *whole matrix*
    selected — batch-of-k SpMM would stop being row-identical to batch-of-1
    (the contract :mod:`repro.serve`'s coalescer and ``ppr_batch`` rely
    on).  Monoids with no dense strategy take the stable sort +
    :func:`segment_reduce` path, unchanged.
    """
    fn = reduce_strategy(semiring.add)
    if fn is not None:
        uniq, inv = np.unique(keys, return_inverse=True)
        acc = fn(inv.astype(np.int64, copy=False), prods, uniq.size, semiring.add)
        return _csr_from_flat(nrows, ncols, uniq, acc, out_type)
    order = np.argsort(keys, kind="stable")  # gbsan: ok(argsort) -- generic fallback; hot shapes take the sort-free fastpath
    keys = keys[order]
    prods = prods[order]
    starts = run_starts(keys)
    out_vals = segment_reduce(prods, starts, semiring.add, out_type.dtype)
    return _csr_from_flat(nrows, ncols, keys[starts], out_vals, out_type)


def _expand_keys_ws(a: CSRMatrix, b: CSRMatrix):
    """Workspace-backed expansion: ``(keys, a_take, b_take, total)`` or None.

    The flat output key plus the two value-gather maps of every partial
    product, in A-storage (row-major) order — semantically the same stream
    :func:`expand_structure` produces, but every O(FLOPs) array is the
    diff+cumsum formulation of ``np.repeat`` written into a reusable
    :func:`~.fastpath.scratch` buffer, so steady-state calls fault no fresh
    pages.  Views are valid until the next call.
    """
    lo_all = b.indptr[a.indices]
    lens_all = b.indptr[a.indices + 1] - lo_all
    # Segments must be non-empty for the diff trick (duplicate segment
    # starts would collide); A entries whose B row is empty contribute
    # nothing anyway.
    src = np.flatnonzero(lens_all)
    if src.size == 0:
        return None
    lo = lo_all[src]
    lens = lens_all[src]
    total = int(lens.sum())
    bounds = np.cumsum(lens[:-1]) if lens.size > 1 else np.empty(0, np.int64)

    # b_take: lo[s] + within-segment offset — ones, rebased at each start.
    b_take = scratch("spgemm.b_take", total, np.int64)
    b_take.fill(1)
    b_take[0] = lo[0]
    if bounds.size:
        b_take[bounds] = lo[1:] - lo[:-1] - (lens[:-1] - 1)
    np.cumsum(b_take, out=b_take)

    # a_take: repeat(src, lens) — piecewise constant via diffs.
    a_take = scratch("spgemm.a_take", total, np.int64)
    a_take.fill(0)
    a_take[0] = src[0]
    if bounds.size:
        a_take[bounds] = src[1:] - src[:-1]
    np.cumsum(a_take, out=a_take)

    # keys: repeat(row(i) * ncols, lens) + B's column ids.
    a_rows = np.repeat(np.arange(a.nrows, dtype=np.int64), a.row_degrees())
    base = a_rows[src] * np.int64(b.ncols)
    keys = scratch("spgemm.keys", total, np.int64)
    keys.fill(0)
    keys[0] = base[0]
    if bounds.size:
        keys[bounds] = base[1:] - base[:-1]
    np.cumsum(keys, out=keys)
    cols = scratch("spgemm.cols", total, np.int64)
    np.take(b.indices, b_take, out=cols)
    np.add(keys, cols, out=keys)
    return keys, a_take, b_take, total


def _pair_count_ok(semiring: Semiring, a: CSRMatrix, out_type: GrBType) -> bool:
    """May ``PLUS`` over the value-blind ``PAIR`` multiply reduce to pure
    counting?  Only where an integer count round-trips exactly through the
    value domain (integers, or float64 with its 2^53 integer range)."""
    if semiring.add.op.name != "PLUS" or semiring.mult.name != "PAIR":
        return False

    def exact(dt: np.dtype) -> bool:
        return dt.kind in "iu" or dt == np.float64

    return exact(np.dtype(a.values.dtype)) and exact(np.dtype(out_type.dtype))


def spgemm_masked_esr(
    a: CSRMatrix,
    b: CSRMatrix,
    semiring: Semiring,
    out_type: GrBType,
    allowed_keys: np.ndarray,
) -> CSRMatrix:
    """Masked SpGEMM: drop partial products outside ``allowed_keys`` *before*
    computing them — the dominant cost when the mask is sparse (triangle
    counting's ``C<L> = L ⊗ L``).  ``allowed_keys`` are sorted flat row-major
    keys.
    """
    if a.nvals == 0 or b.nvals == 0 or allowed_keys.size == 0:
        return CSRMatrix.empty(a.nrows, b.ncols, out_type)
    expanded = _expand_keys_ws(a, b)
    if expanded is None:
        return CSRMatrix.empty(a.nrows, b.ncols, out_type)
    keys, a_take, b_take, total = expanded
    keyspace = int(a.nrows) * int(b.ncols)
    nslots = allowed_keys.size
    use_map = (
        keyspace <= _SLOT_MAP_CAP
        and keyspace <= 64 * total + (1 << 20)
        and nslots < np.iinfo(np.int32).max
    )
    if use_map:
        # Fused membership + slot lookup: one gather through the dense slot
        # map (slot + 1 at allowed keys, 0 elsewhere) answers both "is this
        # coordinate allowed" and "which accumulator slot" — O(1) per probe.
        slot_map = mask_slot_map(keyspace)
        slot_map[allowed_keys] = np.arange(1, nslots + 1, dtype=np.int32)
        try:
            probe = scratch("spgemm.probe", total, np.int32)
            np.take(slot_map, keys, out=probe)
        finally:
            slot_map[allowed_keys] = 0  # restore the all-zeros invariant
        if _pair_count_ok(semiring, a, out_type):
            # Counting semiring: the reduction is a histogram of slots —
            # no value gather, no multiply, no accumulator scatter.
            counts = np.bincount(probe, minlength=nslots + 1)[1:]
            idx = np.flatnonzero(counts).astype(np.int64)
            if idx.size == 0:
                return CSRMatrix.empty(a.nrows, b.ncols, out_type)
            return _csr_from_flat(
                a.nrows, b.ncols, allowed_keys[idx], counts[idx], out_type
            )
        keep = probe != 0
        slots = probe[keep].astype(np.int64)
        slots -= 1
    else:
        pos = np.searchsorted(allowed_keys, keys)
        pos_c = np.minimum(pos, nslots - 1)
        keep = (allowed_keys[pos_c] == keys) & (pos < nslots)
        slots = pos[keep]
    if slots.size == 0:
        return CSRMatrix.empty(a.nrows, b.ncols, out_type)
    # Only surviving coordinates are ever multiplied.
    prods = np.asarray(
        semiring.mult(a.values[a_take[keep]], b.values[b_take[keep]])
    )
    # Reduce into mask-slot space: each kept key's position in allowed_keys
    # is its accumulator slot, so the dense accumulator is nnz(M)-sized no
    # matter how large the output keyspace is.
    fast = fast_reduce_by_key(slots, prods, nslots, semiring.add)
    if fast is not None:
        slot_idx, out_vals = fast
        return _csr_from_flat(
            a.nrows, b.ncols, allowed_keys[slot_idx], out_vals, out_type
        )
    return _sorted_reduce_flat(
        a.nrows, b.ncols, keys[keep], prods, semiring, out_type
    )


def spgemm_esr(
    a: CSRMatrix,
    b: CSRMatrix,
    semiring: Semiring,
    out_type: GrBType,
) -> CSRMatrix:
    """Expand–reduce SpGEMM producing canonical CSR (sort-free when the
    output keyspace affords a dense accumulator, sorted otherwise)."""
    if a.nvals == 0 or b.nvals == 0:
        return CSRMatrix.empty(a.nrows, b.ncols, out_type)
    rows, cols, prods = expand_products(a, b, semiring)
    if rows.size == 0:
        return CSRMatrix.empty(a.nrows, b.ncols, out_type)
    keys = rows * np.int64(b.ncols) + cols
    keyspace = int(a.nrows) * int(b.ncols)
    if dense_keyspace_ok(keyspace, keys.size):
        fast = fast_reduce_by_key(keys, prods, keyspace, semiring.add)
        if fast is not None:
            out_keys, out_vals = fast
            return _csr_from_flat(a.nrows, b.ncols, out_keys, out_vals, out_type)
    return _sorted_reduce_flat(a.nrows, b.ncols, keys, prods, semiring, out_type)
