"""gbsan static lint: kernel contracts enforced at the AST.

The dynamic sanitizer (:mod:`repro.sanitizer.runtime`) checks what actually
ran; this module checks what *could* run.  Five rules keep the simulated
device code honest:

``kernel-decl``
    Every :class:`~repro.gpu.kernel.Kernel` instantiated under
    ``repro/backends/`` or ``repro/lazy/`` must declare its access sets
    (the ``accesses=`` argument, or a fourth positional) — otherwise the
    dynamic checkers are blind to its launches.

``fused-kernel-decl``
    Anywhere in the tree, a ``Kernel`` whose name contains ``fused`` must
    declare ``accesses=``.  Fused kernels are *emitted by the optimizer*
    (the lazy pass pipeline rewrites tapes to launch them), so an
    undeclared one would silently skip the race/residency checks exactly
    on the launches the optimizer invented.

``container-mutation``
    No direct stores into container payload arrays (``.values``,
    ``.indices``, ``.indptr``, ``.data``) in backends, algorithms, or core.
    Payload mutation outside a declared kernel bypasses the version counter
    (dirty bit) and therefore residency tracking.

``argsort``
    No ``argsort`` calls on hot paths (backends, algorithms): the sort-free
    kernels replaced comparison sorts with counting sort/segment tricks,
    and an ``argsort`` that sneaks back in silently reverts that.

``uncharged-numpy``
    The device orchestrators (``backends/cuda_sim/backend.py``,
    ``backends/multi_sim/backend.py``) may not call heavy NumPy routines
    outside kernel semantics — host work there is real compute the cost
    model never charges.

A finding is suppressed by a directive on the same line or the line above::

    order = np.argsort(keys, kind="stable")  # gbsan: ok(argsort) -- cold fallback path, not kernel-hot

The reason is mandatory and must say *why* the flagged pattern is safe at
this site; a bare ``ok(...)`` does not suppress, and the gbcheck
suppression audit (:mod:`repro.analysis`) rejects placeholder reasons and
directives that no longer match a live finding.  Run from the command line
via ``tools/lint_kernels.py`` or ``python -m repro.sanitizer.lint``.
"""

from __future__ import annotations

import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Set, Tuple

__all__ = ["LintFinding", "lint_source", "lint_file", "lint_tree", "main"]

#: Container payload attributes no non-kernel code may store through.
_PAYLOAD_ATTRS = frozenset({"values", "indices", "indptr", "data"})

#: NumPy routines that are real compute when they appear in an orchestrator.
_HEAVY_NUMPY = frozenset(
    {
        "sort",
        "argsort",
        "lexsort",
        "searchsorted",
        "unique",
        "bincount",
        "cumsum",
        "einsum",
        "dot",
        "matmul",
        "tensordot",
    }
)

#: Files whose module-level code *is* the device orchestrator.
_ORCHESTRATORS = (
    "backends/cuda_sim/backend.py",
    "backends/multi_sim/backend.py",
)

_DIRECTIVE = re.compile(r"#\s*gbsan:\s*ok\(([a-z, -]+)\)\s*--\s*\S")


@dataclass(frozen=True)
class LintFinding:
    """One static-lint violation."""

    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rules suppressed on that line.

    A directive covers its own line and the line below it, so it can sit
    either trailing the flagged statement or on its own line above.
    """
    out: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _DIRECTIVE.search(text)
        if m is None:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        out.setdefault(lineno, set()).update(rules)
        out.setdefault(lineno + 1, set()).update(rules)
    return out


def _rules_for(relpath: str) -> Set[str]:
    """The rule set applying to one repo-relative ``repro/``-rooted path."""
    rules: Set[str] = {"fused-kernel-decl"}
    if relpath.startswith("backends/"):
        rules |= {"kernel-decl", "container-mutation", "argsort"}
    if relpath.startswith("lazy/"):
        # The optimizer rewrites tapes and may synthesize kernels; it is
        # hot-path device code and held to the backend rules.
        rules |= {"kernel-decl", "container-mutation", "argsort"}
    if relpath.startswith("algorithms/"):
        rules |= {"container-mutation", "argsort"}
    if relpath.startswith("core/"):
        rules |= {"container-mutation"}
    if relpath in _ORCHESTRATORS:
        rules |= {"uncharged-numpy"}
    return rules


class _Visitor(ast.NodeVisitor):
    def __init__(self, relpath: str, rules: Set[str]) -> None:
        self.relpath = relpath
        self.rules = rules
        self.raw: List[LintFinding] = []

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        if rule in self.rules:
            self.raw.append(
                LintFinding(self.relpath, getattr(node, "lineno", 0), rule, message)
            )

    # -- kernel-decl ----------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = self._call_name(node)
        if name == "Kernel":
            has_accesses = len(node.args) >= 4 or any(
                kw.arg == "accesses" for kw in node.keywords
            )
            if not has_accesses:
                self._flag(
                    node,
                    "kernel-decl",
                    "Kernel(...) without an accesses= declaration; the "
                    "sanitizer cannot check launches of an undeclared kernel",
                )
                if self._kernel_name_is_fused(node):
                    self._flag(
                        node,
                        "fused-kernel-decl",
                        "optimizer-emitted fused kernel without accesses=; "
                        "gbsan would skip exactly the launches the lazy "
                        "pass pipeline synthesizes",
                    )
        if name == "argsort" or self._is_np_call(node, {"argsort"}):
            self._flag(
                node,
                "argsort",
                "argsort on a hot path; use counting sort / segment "
                "reduction (see backends/cpu sort-free kernels)",
            )
        elif self._is_np_call(node, _HEAVY_NUMPY) or (
            "uncharged-numpy" in self.rules
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _HEAVY_NUMPY
            and not isinstance(node.func.value, ast.Name)
        ):
            self._flag(
                node,
                "uncharged-numpy",
                f"heavy NumPy call ({self._call_name(node)}) in a device "
                "orchestrator; host work here is compute the cost model "
                "never charges — move it into a kernel semantic or charge it",
            )
        self.generic_visit(node)

    @staticmethod
    def _kernel_name_is_fused(node: ast.Call) -> bool:
        if not node.args:
            return False
        first = node.args[0]
        return (
            isinstance(first, ast.Constant)
            and isinstance(first.value, str)
            and "fused" in first.value
        )

    @staticmethod
    def _call_name(node: ast.Call) -> str:
        f = node.func
        if isinstance(f, ast.Name):
            return f.id
        if isinstance(f, ast.Attribute):
            return f.attr
        return ""

    @staticmethod
    def _is_np_call(node: ast.Call, names: Iterable[str]) -> bool:
        f = node.func
        return (
            isinstance(f, ast.Attribute)
            and isinstance(f.value, ast.Name)
            and f.value.id in ("np", "numpy")
            and f.attr in names
        )

    # -- container-mutation ---------------------------------------------

    def _check_store_target(self, target: ast.expr) -> None:
        # X.values = ..., X.values[k] = ..., X.values[a:b] = ...
        attr: ast.expr = target
        if isinstance(attr, ast.Subscript):
            attr = attr.value
        if isinstance(attr, ast.Attribute) and attr.attr in _PAYLOAD_ATTRS:
            self._flag(
                target,
                "container-mutation",
                f"direct store into container payload .{attr.attr} outside "
                "a declared kernel; this bypasses the version counter "
                "(dirty bit) and residency tracking",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for t in node.targets:
            for el in ast.walk(t) if isinstance(t, (ast.Tuple, ast.List)) else (t,):
                if isinstance(el, (ast.Attribute, ast.Subscript)):
                    self._check_store_target(el)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_store_target(node.target)
        self.generic_visit(node)


def lint_source(source: str, relpath: str) -> List[LintFinding]:
    """Lint one module's source; ``relpath`` is rooted at ``repro/``."""
    rules = _rules_for(relpath)
    if not rules:
        return []
    tree = ast.parse(source, filename=relpath)
    visitor = _Visitor(relpath, rules)
    visitor.visit(tree)
    if not visitor.raw:
        return []
    ok = _suppressions(source)
    return [f for f in visitor.raw if f.rule not in ok.get(f.line, ())]


def lint_file(path: Path, package_root: Path) -> List[LintFinding]:
    rel = path.relative_to(package_root).as_posix()
    return lint_source(path.read_text(encoding="utf-8"), rel)


def lint_tree(package_root: Path) -> List[LintFinding]:
    """Lint every module under ``package_root`` (the ``repro/`` directory)."""
    findings: List[LintFinding] = []
    for path in sorted(package_root.rglob("*.py")):
        findings.extend(lint_file(path, package_root))
    return findings


def _default_root() -> Path:
    return Path(__file__).resolve().parent.parent


def main(argv: Sequence[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    root = Path(args[0]).resolve() if args else _default_root()
    findings = lint_tree(root)
    for f in findings:
        print(f)
    if findings:
        print(f"gbsan-lint: {len(findings)} violation(s)")
        return 1
    print("gbsan-lint: clean")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    raise SystemExit(main())
