"""Tests for the multi-device subsystem (``repro.distributed`` + multi_sim).

Four families:

- partition round-trips: slicing a container into P block-rows and
  reassembling is the identity, for both splitter policies (property-tested
  with hypothesis over random CSR structures);
- the communication model's cost algebra (free at P=1, ring/tree step
  counts, stats accounting);
- cluster scheduling invariants (barrier synchronisation, comm on the
  critical path, per-device counters);
- backend equivalence: multi_sim at P=1 is *counter*-identical to
  cuda_sim, and at any P its results are bit-identical for exact additive
  monoids (the push→pull demotion guard for inexact float adds).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro as gb
from repro.backends.dispatch import get_backend, use_backend
from repro.containers.csr import CSRMatrix
from repro.containers.sparsevec import SparseVector
from repro.core import operations as ops
from repro.core.semiring import MIN_PLUS, PLUS_TIMES
from repro.distributed.comm import CommModel, CommStats
from repro.distributed.partition import (
    PartitionedCSR,
    PartitionedVector,
    concat_row_blocks,
    degree_balanced_splitters,
    equal_rows_splitters,
    make_splitters,
)
from repro.distributed.topology import DGX_NVLINK, PCIE_ONLY
from repro.generators.rmat import rmat
from repro.testing.equivalence import assert_same
from repro.gpu.device import get_device, reset_device
from repro.types import FP64

from .conftest import random_dense_matrix, random_dense_vector


def multi_sim(nparts, splitter="equal_rows", topology=DGX_NVLINK):
    return get_backend("multi_sim").configure(
        nparts=nparts, splitter=splitter, topology=topology
    )


# ---------------------------------------------------------------------------
# Partition → reassemble round trips
# ---------------------------------------------------------------------------

csr_strategies = st.builds(
    lambda nrows, ncols, density, seed: (nrows, ncols, density, seed),
    st.integers(1, 40),
    st.integers(1, 40),
    st.floats(0.0, 0.6),
    st.integers(0, 2**31 - 1),
)


def _random_csr(nrows, ncols, density, seed) -> CSRMatrix:
    rng = np.random.default_rng(seed)
    dense = random_dense_matrix(rng, nrows, ncols, density=density)
    return gb.Matrix.from_dense(dense).container


class TestPartitionRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(params=csr_strategies, nparts=st.integers(1, 6),
           splitter=st.sampled_from(["equal_rows", "degree_balanced"]))
    def test_matrix_round_trip(self, params, nparts, splitter):
        a = _random_csr(*params)
        part = PartitionedCSR(a, nparts, splitter)
        back = part.reassemble()
        np.testing.assert_array_equal(back.indptr, a.indptr)
        np.testing.assert_array_equal(back.indices, a.indices)
        np.testing.assert_array_equal(back.values, a.values)
        assert back.nrows == a.nrows and back.ncols == a.ncols

    @settings(max_examples=60, deadline=None)
    @given(n=st.integers(1, 200), density=st.floats(0.0, 1.0),
           seed=st.integers(0, 2**31 - 1), nparts=st.integers(1, 6))
    def test_vector_round_trip(self, n, density, seed, nparts):
        rng = np.random.default_rng(seed)
        u = gb.Vector.from_dense(
            random_dense_vector(rng, n, density=density)
        ).container
        sp = equal_rows_splitters(n, nparts)
        pv = PartitionedVector(u, sp)
        shards = [pv.shard(p) for p in range(pv.nparts)]
        back = PartitionedVector.reassemble(shards, sp, typ=u.type)
        np.testing.assert_array_equal(back.indices, u.indices)
        np.testing.assert_array_equal(back.values, u.values)
        assert back.size == u.size

    @settings(max_examples=40, deadline=None)
    @given(params=csr_strategies, nparts=st.integers(1, 6))
    def test_concat_inverts_shards(self, params, nparts):
        a = _random_csr(*params)
        part = PartitionedCSR(a, nparts, "degree_balanced")
        back = concat_row_blocks(part.shards, a.ncols, a.type)
        np.testing.assert_array_equal(back.indptr, a.indptr)
        np.testing.assert_array_equal(back.indices, a.indices)
        np.testing.assert_array_equal(back.values, a.values)

    def test_splitters_are_valid_partitions(self):
        g = rmat(8, 8, seed=2).container
        for nparts in (1, 2, 3, 5, 8):
            for policy in ("equal_rows", "degree_balanced"):
                sp = make_splitters(g, nparts, policy)
                assert sp[0] == 0 and sp[-1] == g.nrows
                assert (np.diff(sp) >= 0).all()
                assert len(sp) == nparts + 1

    def test_degree_balanced_beats_equal_rows_on_skew(self):
        # One hub row holding half the edges: degree-balanced isolates it.
        n = 64
        indptr = np.zeros(n + 1, np.int64)
        deg = np.ones(n, np.int64)
        deg[0] = n  # hub
        indptr[1:] = np.cumsum(deg)
        indices = np.concatenate([np.arange(d) % n for d in deg]).astype(np.int64)
        a = CSRMatrix(n, n, indptr, indices, np.ones(indices.size), FP64)
        for nparts in (2, 4):
            sp = degree_balanced_splitters(a.indptr, nparts)
            nnz_per = np.diff(a.indptr[sp])
            eq = np.diff(a.indptr[equal_rows_splitters(n, nparts)])
            assert nnz_per.max() <= eq.max()

    def test_p1_partition_aliases_source(self):
        a = rmat(6, 4, seed=1).container
        part = PartitionedCSR(a, 1)
        assert part.shards[0] is a
        u = SparseVector(8, np.array([1, 5]), np.array([1.0, 2.0]), FP64)
        pv = PartitionedVector(u, equal_rows_splitters(8, 1))
        assert pv.shard(0) is u

    def test_owner_of(self):
        a = rmat(6, 4, seed=1).container
        part = PartitionedCSR(a, 4, "equal_rows")
        for row in (0, 17, a.nrows - 1):
            p = part.owner_of(row)
            lo, hi = part.shard_range(p)
            assert lo <= row < hi


# ---------------------------------------------------------------------------
# Communication model
# ---------------------------------------------------------------------------

class TestCommModel:
    def test_free_at_p1(self):
        m = CommModel(DGX_NVLINK, 1)
        assert m.allgather(1e6) == 0.0
        assert m.reduce_scatter(1e6) == 0.0
        assert m.broadcast(1e6) == 0.0
        assert m.all_to_all(1e6) == 0.0
        assert m.frontier_exchange([0.0]) == 0.0
        assert m.allreduce_scalar() == 0.0
        assert m.stats.total_count == 0

    def test_ring_collectives_scale_with_p(self):
        nbytes = 1 << 20
        prev = 0.0
        for p in (2, 4, 8):
            m = CommModel(DGX_NVLINK, p)
            dt = m.allgather(nbytes)
            # (P−1) steps of a 1/P chunk: latency grows, bandwidth term ~constant.
            assert dt > 0
            steps = (p - 1) * m._ring_step_us(nbytes / p)
            assert dt == pytest.approx(steps)
            assert dt >= prev * 0.5  # monotone-ish: latency term dominates growth
            prev = dt

    def test_slow_topology_costs_more(self):
        fast = CommModel(DGX_NVLINK, 4)
        slow = CommModel(PCIE_ONLY, 4)
        assert slow.allgather(1 << 20) > fast.allgather(1 << 20)

    def test_frontier_exchange_bottlenecked_by_busiest(self):
        m = CommModel(DGX_NVLINK, 4)
        balanced = m.frontier_exchange([1000.0] * 4)
        skewed = m.frontier_exchange([4000.0, 0.0, 0.0, 0.0])
        assert skewed > balanced

    def test_stats_accounting(self):
        m = CommModel(DGX_NVLINK, 4)
        m.allgather(1000.0)
        m.broadcast(500.0)
        m.frontier_exchange([10.0, 20.0, 0.0, 5.0])
        s = m.stats
        assert s.counts["allgather"] == 1
        assert s.bytes["allgather"] == 3 * 1000.0  # (P−1)·total wire bytes
        assert s.counts["broadcast"] == 1
        assert s.bytes["frontier_exchange"] == 35.0
        assert s.total_count == 3
        assert s.time_us > 0
        d = s.as_dict()
        assert d["counts"]["allgather"] == 1
        m.stats.reset()
        assert m.stats.total_count == 0 and m.stats.time_us == 0.0


# ---------------------------------------------------------------------------
# Cluster scheduling
# ---------------------------------------------------------------------------

class TestCluster:
    def test_comm_sits_on_critical_path(self):
        from repro.distributed.cluster import SimCluster

        c = SimCluster(4)
        # Unbalanced compute: device 2 is the straggler.
        c.devices[2].advance(100.0)
        c.charge_comm("allgather", 10.0, 4000.0)
        # Barrier first (everyone to 100), then +10 everywhere.
        assert c.makespan_us == pytest.approx(110.0)
        for d in c.devices:
            assert d.clock_us == pytest.approx(110.0)

    def test_comm_records_excluded_from_kernel_aggregates(self):
        from repro.distributed.cluster import SimCluster

        c = SimCluster(2)
        c.charge_comm("broadcast", 5.0, 1000.0)
        for d in c.devices:
            assert d.profiler.launch_count == 0
            assert d.profiler.kernel_time_us == 0.0
            assert any(r.kind == "comm" for r in d.profiler.records)

    def test_reset_clears_everything(self):
        from repro.distributed.cluster import SimCluster

        c = SimCluster(2)
        c.devices[0].advance(50.0)
        c.charge_comm("allgather", 5.0, 100.0)
        c.reset()
        assert c.makespan_us == 0.0
        assert c.comm.stats.total_count == 0

    def test_metrics_shape(self):
        from repro.distributed.cluster import SimCluster

        m = SimCluster(2).metrics()
        for key in ("nparts", "kernel_launches", "h2d_bytes", "makespan_us", "comm"):
            assert key in m


# ---------------------------------------------------------------------------
# Backend equivalence
# ---------------------------------------------------------------------------

class TestMultiSimBackend:
    @pytest.fixture(autouse=True)
    def _fresh(self):
        reset_device()
        get_backend("cuda_sim").evict_all()
        yield

    def test_registered(self):
        from repro.backends.dispatch import available_backends

        assert "multi_sim" in available_backends()

    def test_p1_counters_match_cuda_sim(self):
        g = rmat(8, 8, seed=5)
        # Eager-to-eager comparison: multi_sim shards execute eagerly, so
        # pin the single-device run eager too (no lazy loop aggregation).
        with gb.lazy.lazy_disabled(), use_backend("cuda_sim"):
            gb.algorithms.bfs_levels(g, 0)
        dev = get_device()
        base_launches = dev.profiler.launch_count
        base_h2d = dev.profiler.h2d_bytes

        ms = multi_sim(1)
        ms.reset()
        with use_backend("multi_sim"):
            gb.algorithms.bfs_levels(g, 0)
        m = ms.metrics()
        assert m["kernel_launches"] == base_launches
        assert m["h2d_bytes"] == pytest.approx(base_h2d)
        assert m["comm"]["total_bytes"] == 0

    def test_p1_results_bitwise_cuda_sim(self):
        g = rmat(7, 6, seed=3, weighted=True)
        with use_backend("cuda_sim"):
            expect = gb.algorithms.sssp(g, 0)
        with use_backend(multi_sim(1)):
            got = gb.algorithms.sssp(g, 0)
        assert_same(got, expect, exact=True)

    @pytest.mark.parametrize("nparts", [2, 4])
    def test_comm_charged_only_at_p_gt_1(self, nparts):
        g = rmat(8, 8, seed=5)
        ms = multi_sim(nparts)
        ms.reset()
        with use_backend("multi_sim"):
            gb.algorithms.bfs_levels(g, 0)
        m = ms.metrics()
        assert m["comm"]["total_bytes"] > 0
        assert m["nparts"] == nparts
        assert m["makespan_us"] > 0

    def test_inexact_push_demoted_to_pull(self):
        # A float PLUS-add push would fold partials in shard order; the
        # backend must demote it to the per-row (bit-exact) pull kernel.
        rng = np.random.default_rng(12)
        a = gb.Matrix.from_dense(random_dense_matrix(rng, 24, 24, density=0.2))
        # A very sparse input vector: the heuristic would pick push.
        u = gb.Vector.from_lists([3], [2.5], 24)

        def go():
            w = gb.Vector.sparse(gb.FP64, 24)
            return ops.mxv(w, a, u, PLUS_TIMES, direction="push")

        with use_backend("reference"):
            expect = go()
        with use_backend(multi_sim(4)):
            got = go()
        assert_same(got, expect, exact=True)  # bitwise: pull decomposes by row

    def test_exact_push_stays_push_and_matches(self):
        rng = np.random.default_rng(13)
        a = gb.Matrix.from_dense(random_dense_matrix(rng, 24, 24, density=0.2))
        u = gb.Vector.from_lists([3, 17], [2.5, 1.0], 24)

        def go():
            w = gb.Vector.sparse(gb.FP64, 24)
            return ops.mxv(w, a, u, MIN_PLUS, direction="push")

        with use_backend("reference"):
            expect = go()
        ms = multi_sim(4)
        ms.reset()
        with use_backend(ms):
            got = go()
        assert_same(got, expect, exact=True)
        # Push across shards is a frontier exchange, not an allgather.
        assert ms.metrics()["comm"]["counts"]["frontier_exchange"] >= 1

    @pytest.mark.parametrize("splitter", ["equal_rows", "degree_balanced"])
    def test_results_identical_across_splitters(self, splitter):
        g = rmat(8, 8, seed=9, weighted=True)
        with use_backend("reference"):
            expect = gb.algorithms.sssp(g, 0)
        with use_backend(multi_sim(3, splitter=splitter)):
            got = gb.algorithms.sssp(g, 0)
        assert_same(got, expect, exact=True)

    def test_configure_validates(self):
        from repro.exceptions import InvalidValueError

        ms = get_backend("multi_sim")
        with pytest.raises(InvalidValueError):
            ms.configure(nparts=0)
        with pytest.raises(InvalidValueError):
            ms.configure(splitter="bogus")
        ms.configure(nparts=2, splitter="equal_rows")
