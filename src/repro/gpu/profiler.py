"""Kernel-launch profiler for the simulated device.

Records one :class:`LaunchRecord` per kernel launch and per transfer; the
benchmark harness reads the aggregate to report simulated GPU times (the
host wall-clock of the simulation itself is meaningless for the GPU series).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["LaunchRecord", "Profiler"]


@dataclass(frozen=True)
class LaunchRecord:
    """One simulated event: a kernel launch, a PCIe transfer, or a collective.

    An aggregated ``graph_replay[...]`` record carries its member kernels in
    ``members`` as ``(name, busy_us, flops, bytes)`` tuples so per-kernel
    attribution survives replay aggregation (see :meth:`Profiler.by_kernel`).

    ``reads``/``writes`` hold the launch's declared access sets as buffer
    labels.  They are populated only while the sanitizer is enabled (access
    resolution is skipped otherwise) and exist for diagnostics — a gbsan
    report can be correlated with the launch record that triggered it.
    """

    name: str
    kind: str  # "kernel" | "h2d" | "d2h" | "comm"
    start_us: float
    duration_us: float
    flops: float = 0.0
    bytes: float = 0.0
    threads: int = 0
    members: Tuple[Tuple[str, float, float, float], ...] = field(default=())
    reads: Tuple[str, ...] = field(default=())
    writes: Tuple[str, ...] = field(default=())

    @property
    def end_us(self) -> float:
        return self.start_us + self.duration_us


class Profiler:
    """Accumulates launch records and provides aggregates."""

    def __init__(self) -> None:
        self.records: List[LaunchRecord] = []

    def record(self, rec: LaunchRecord) -> None:
        self.records.append(rec)

    def reset(self) -> None:
        self.records.clear()

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    @property
    def total_time_us(self) -> float:
        return sum(r.duration_us for r in self.records)

    @property
    def kernel_time_us(self) -> float:
        return sum(r.duration_us for r in self.records if r.kind == "kernel")

    @property
    def transfer_time_us(self) -> float:
        return sum(r.duration_us for r in self.records if r.kind in ("h2d", "d2h"))

    @property
    def launch_count(self) -> int:
        return sum(1 for r in self.records if r.kind == "kernel")

    @property
    def h2d_bytes(self) -> float:
        """Bytes actually copied host→device (elided uploads excluded)."""
        return sum(r.bytes for r in self.records if r.kind == "h2d")

    @property
    def replay_count(self) -> int:
        """Aggregated graph-replay launches (see repro.gpu.graph)."""
        return sum(
            1
            for r in self.records
            if r.kind == "kernel" and r.name.startswith("graph_replay[")
        )

    def by_kernel(self, expand_replays: bool = False) -> Dict[str, Dict[str, float]]:
        """Per-kernel-name aggregate: count, total time, flops, bytes.

        With ``expand_replays=True``, aggregated ``graph_replay[...]``
        records are attributed back to their member kernels (one count and
        its busy time each); the single launch overhead the replay actually
        paid stays on the ``graph_replay[...]`` row, so column sums still
        equal :attr:`kernel_time_us`.
        """
        out: Dict[str, Dict[str, float]] = {}

        def bump(
            name: str, count: float, time_us: float, flops: float, nbytes: float
        ) -> None:
            agg = out.setdefault(
                name, {"count": 0, "time_us": 0.0, "flops": 0.0, "bytes": 0.0}
            )
            agg["count"] += count
            agg["time_us"] += time_us
            agg["flops"] += flops
            agg["bytes"] += nbytes

        for r in self.records:
            if r.kind != "kernel":
                continue
            if expand_replays and r.members:
                busy_total = 0.0
                for name, busy, flops, nbytes in r.members:
                    bump(name, 1, busy, flops, nbytes)
                    busy_total += busy
                bump(r.name, 1, r.duration_us - busy_total, 0.0, 0.0)
            else:
                bump(r.name, 1, r.duration_us, r.flops, r.bytes)
        return out

    def summary(self, expand_replays: bool = False) -> str:
        """Human-readable per-kernel table (for examples/EXPERIMENTS)."""
        lines = [f"{'kernel':<28}{'count':>7}{'time_us':>12}{'GB':>9}"]
        for name, agg in sorted(self.by_kernel(expand_replays).items()):
            lines.append(
                f"{name:<28}{int(agg['count']):>7}{agg['time_us']:>12.1f}"
                f"{agg['bytes'] / 1e9:>9.3f}"
            )
        lines.append(
            f"{'transfers':<28}{'':>7}{self.transfer_time_us:>12.1f}"
        )
        return "\n".join(lines)
