"""Figure 1 — SpMV (mxv) runtime vs graph scale.

Reconstructed experiment: one dense-input mxv over (PLUS, TIMES) on R-MAT
graphs of increasing scale.  Shape claims:

- reference grows linearly in nnz and is slowest throughout;
- the simulated GPU shows the launch-latency floor (flat curve at small
  scales) and then memory-bound linear growth — the signature GPU SpMV
  curve;
- the GPU-vs-reference gap widens with scale.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro as gb
from repro.backends.dispatch import use_backend
from repro.bench.harness import time_operation
from repro.bench.tables import format_series
from repro.core import operations as ops
from repro.core.descriptor import Descriptor, STRUCTURE_MASK
from repro.core.semiring import LOR_LAND, PLUS_PAIR, PLUS_TIMES

from conftest import bench_backend, save_json, save_table, sim_metrics

# Wall-clock of the pre-fastpath (seed) cpu kernels on this container, R-MAT
# scale 12 / edge factor 8 — the baselines the fast-path layer is measured
# against.  Recorded at the seed commit with the same best-of-N protocol.
SEED_BASELINES_MS = {"push_mxv": 0.254, "masked_spgemm": 58.9}

SCALES = [6, 8, 10, 12]
REFERENCE_MAX_SCALE = 10
BACKENDS = ["reference", "cpu", "cuda_sim"]


def make_case(scale):
    g = gb.generators.rmat(scale=scale, edge_factor=8, seed=20, weighted=True)
    u = gb.Vector.full(1.0, g.nrows, gb.FP64)

    def run():
        w = gb.Vector.sparse(gb.FP64, g.nrows)
        return ops.mxv(w, g, u, PLUS_TIMES)

    return run


_CASES = {s: make_case(s) for s in SCALES}


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("scale", SCALES)
def test_fig1_mxv(benchmark, backend, scale):
    if backend == "reference" and scale > REFERENCE_MAX_SCALE:
        pytest.skip("sequential baseline capped at scale 10")
    bench_backend(benchmark, backend, _CASES[scale], rounds=2)


def _best_of(fn, n: int) -> float:
    """Best-of-n wall time in milliseconds (first call warms caches)."""
    fn()
    best = float("inf")
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best * 1e3


def hot_path_scale12_ms() -> dict:
    """Wall-clock of the two mask-fused hot paths on the cpu backend."""
    g = gb.generators.rmat(scale=12, edge_factor=8, seed=20, weighted=True)
    from repro.algorithms.triangles import lower_triangle

    L = lower_triangle(g)
    gs = gb.generators.rmat(scale=12, edge_factor=8, seed=20, weighted=False)
    rng = np.random.default_rng(7)
    idx = np.unique(rng.integers(0, gs.nrows, 200))
    frontier = gb.Vector.from_lists(
        idx.astype(np.int64), np.ones(idx.size, bool), gs.nrows, gb.BOOL
    )
    visited = gb.Vector.from_lists(
        idx.astype(np.int64), np.ones(idx.size, bool), gs.nrows, gb.BOOL
    )
    unvisited = Descriptor(
        complement_mask=True, structural_mask=True, replace=True
    )
    with use_backend("cpu"):

        def masked_spgemm():
            c = gb.Matrix.sparse(gb.INT64, g.nrows, g.ncols)
            ops.mxm(c, L, L, PLUS_PAIR, mask=L, desc=STRUCTURE_MASK)

        def push_mxv():
            out = gb.Vector.sparse(gb.BOOL, gs.nrows)
            ops.vxm(
                out, frontier, gs, LOR_LAND,
                mask=visited, desc=unvisited, direction="push",
            )

        return {
            "masked_spgemm": _best_of(masked_spgemm, 7),
            "push_mxv": _best_of(push_mxv, 30),
        }


def test_fig1_render(benchmark):
    def build():
        series = {b: [] for b in BACKENDS}
        for s in SCALES:
            for b in BACKENDS:
                if b == "reference" and s > REFERENCE_MAX_SCALE:
                    series[b].append(float("nan"))
                    continue
                series[b].append(
                    time_operation(b, _CASES[s], repeat=1 if b == "reference" else 3).seconds
                )
        fig = format_series(
            "Figure 1 — mxv runtime vs R-MAT scale (seconds)",
            "scale",
            SCALES,
            series,
        )
        save_table("fig1_mxv_scaling", fig)
        # Shape: gpu-sim beats reference increasingly with scale.
        gaps = [
            series["reference"][i] / series["cuda_sim"][i]
            for i, s in enumerate(SCALES)
            if s <= REFERENCE_MAX_SCALE
        ]
        assert gaps[-1] > gaps[0], f"GPU gap must widen with scale, got {gaps}"
        # Shape: launch-latency floor — small scales nearly flat on gpu-sim.
        assert series["cuda_sim"][1] < 3 * series["cuda_sim"][0], (
            "small-scale GPU times should sit near the launch floor"
        )
        # Shape: gpu-sim time grows with size at large scale (memory bound).
        assert series["cuda_sim"][-1] > series["cuda_sim"][0]
        # Machine-readable record: the scaling series plus the mask-fused
        # hot-path wall clocks vs their recorded seed baselines.
        hot = hot_path_scale12_ms()
        record = {
            "figure": "fig1_mxv_scaling",
            "scales": SCALES,
            "seconds": series,
            "cuda_sim_metrics": {
                str(s): sim_metrics(_CASES[s]) for s in SCALES
            },
            "hot_path_scale12_ms": {
                op: {
                    "now": round(ms, 4),
                    "seed": SEED_BASELINES_MS[op],
                    "speedup": round(SEED_BASELINES_MS[op] / ms, 2),
                }
                for op, ms in hot.items()
            },
        }
        save_json("fig1", record)
        for op, cell in record["hot_path_scale12_ms"].items():
            assert cell["speedup"] >= 2.0, (
                f"{op} regressed below the 2x acceptance bar: {cell}"
            )
        return fig

    benchmark.pedantic(build, rounds=1, iterations=1)
