"""Minimum spanning tree — Prim's algorithm in GraphBLAS form.

Maintains the sparse vector ``d`` of cheapest crossing-edge weights from the
tree to each outside vertex; each step extracts the global minimum (a
``reduce`` plus a ``select``), adds that vertex, and relaxes ``d`` with one
row of the adjacency matrix (an ``ewise_add`` under MIN).  n-1 steps of
O(mxv)-ish work — the formulation GBTL ships as ``mst.hpp``.
"""

from __future__ import annotations

from typing import Tuple

from ..core import operations as ops
from ..core.assign import assign_scalar
from ..core.descriptor import Descriptor
from ..core.matrix import Matrix
from ..core.monoid import MIN_MONOID
from ..core.operators import EQ, IDENTITY, MIN, VALUEEQ
from ..core.vector import Vector
from ..exceptions import InvalidValueError
from ..types import BOOL, FP64, INT64

__all__ = ["mst_prim"]


def mst_prim(g: Matrix, root: int = 0) -> Tuple[float, Vector]:
    """(total weight, parents) of the MST of ``root``'s component.

    ``g`` must be a symmetric weighted adjacency matrix.  ``parents[v]`` is
    v's MST parent (root points to itself); vertices outside the component
    have no entry.
    """
    if g.nrows != g.ncols:
        raise InvalidValueError(f"adjacency must be square, got {g.shape}")
    n = g.nrows
    parents = Vector.sparse(INT64, n)
    parents.set_element(root, root)
    total = 0.0
    # d[v]: cheapest edge weight from the tree to v; seeded with root's row.
    d = Vector.sparse(FP64, n)
    ops.extract_row(d, g, root)
    # Edge provenance: src[v] = tree endpoint of the cheapest edge to v.
    src = Vector.sparse(INT64, n)
    for i in d.indices_array():
        src.set_element(int(i), root)
    d.remove_element(root)
    src.remove_element(root)
    in_tree = Vector.sparse(BOOL, n)
    in_tree.set_element(root, True)
    while d.nvals:
        # Cheapest crossing edge.
        w = float(ops.reduce(d, MIN_MONOID))
        pick = Vector.sparse(BOOL, n)
        ops.select(pick, d, VALUEEQ, thunk=w)
        v = int(pick.indices_array()[0])
        total += w
        parents.set_element(v, int(src[v]))
        in_tree.set_element(v, True)
        d.remove_element(v)
        src.remove_element(v)
        # Relax with v's row, restricted to non-tree vertices.
        row = Vector.sparse(FP64, n)
        ops.extract_row(row, g, v)
        candidate = Vector.sparse(FP64, n)
        ops.apply(
            candidate,
            row,
            IDENTITY,
            mask=in_tree,
            desc=Descriptor(complement_mask=True, structural_mask=True, replace=True),
        )
        old = d.dup()
        ops.ewise_add(d, old, candidate, MIN)
        # Entries that changed (new or improved) now cross via v.
        unchanged = Vector.sparse(BOOL, n)
        ops.ewise_mult(unchanged, d, old, EQ)
        improved = Vector.sparse(BOOL, n)
        ops.apply(
            improved,
            d,
            IDENTITY,
            mask=unchanged,
            desc=Descriptor(complement_mask=True, replace=True),
        )
        if improved.nvals:
            assign_scalar(src, v, indices=improved.indices_array())
    return total, parents
