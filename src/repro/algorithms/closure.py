"""Transitive closure and reachability over the Boolean semiring.

``R = (A ⊕ I)^⌈log₂ n⌉`` over (LOR, LAND): repeated squaring doubles the
reachable hop count per ``mxm`` — the Boolean sibling of min-plus APSP.
``reachable_from`` answers single-source reachability with BFS-style
masked products instead (cheaper than the full closure when only one row
is needed).
"""

from __future__ import annotations

from ..core import operations as ops
from ..core.descriptor import Descriptor
from ..core.matrix import Matrix
from ..core.operators import LOR
from ..core.semiring import LOR_LAND
from ..core.vector import Vector
from ..exceptions import IndexOutOfBoundsError, InvalidValueError
from ..types import BOOL

__all__ = ["transitive_closure", "reachable_from"]


def transitive_closure(g: Matrix, reflexive: bool = True) -> Matrix:
    """Boolean reachability matrix: R[i,j] present ⇔ j reachable from i.

    ``reflexive=True`` includes the identity (every vertex reaches itself),
    matching the reflexive-transitive closure; ``False`` gives the strict
    transitive closure (paths of length ≥ 1).
    """
    if g.nrows != g.ncols:
        raise InvalidValueError(f"adjacency must be square, got {g.shape}")
    n = g.nrows
    if n == 0:
        return Matrix.sparse(BOOL, 0, 0)
    from ..core.operators import ONE

    r = Matrix.sparse(BOOL, n, n)
    ops.apply(r, g, ONE)
    if reflexive:
        eye = Matrix.identity(n, value=True, typ=BOOL)
        ops.ewise_add(r, r, eye, LOR)
    hops = 1
    while hops < n:
        nxt = Matrix.sparse(BOOL, n, n)
        ops.mxm(nxt, r, r, LOR_LAND)
        if not reflexive:
            # Without the diagonal, squaring alone misses odd-length paths:
            # keep the running union R ∪ R² instead.
            ops.ewise_add(nxt, nxt, r, LOR)
        if nxt == r:
            break
        r = nxt
        hops *= 2
    return r


def reachable_from(g: Matrix, source: int) -> Vector:
    """BOOL vector of vertices reachable from ``source`` (itself included)."""
    if not 0 <= source < g.nrows:
        raise IndexOutOfBoundsError(f"source {source} outside [0, {g.nrows})")
    n = g.nrows
    seen = Vector.sparse(BOOL, n)
    seen.set_element(source, True)
    frontier = seen.dup()
    unvisited = Descriptor(complement_mask=True, structural_mask=True, replace=True)
    while frontier.nvals:
        ops.vxm(frontier, frontier, g, LOR_LAND, mask=seen, desc=unvisited)
        ops.ewise_add(seen, seen, frontier, LOR)
    return seen
