"""SIMT execution modeling helpers.

Real CUDA kernels lose throughput to two data-dependent effects that matter
enormously for sparse kernels and that the cost model needs numbers for:

- **warp divergence** — lanes of a warp that follow different trip counts
  serialise.  For a thread-per-row CSR kernel, a warp takes as long as its
  longest row; :func:`divergence_thread_per_row` computes the resulting
  work-inflation factor directly from the row-length distribution.  A
  warp-per-row kernel (CSR-vector, the CUSP strategy GBTL-CUDA uses for
  SpMV) keeps lanes uniform and only pays stride underutilisation for rows
  shorter than a warp; :func:`divergence_warp_per_row` models that.
- **coalescing** — effective bandwidth divides by the number of memory
  transactions a warp's access pattern needs.  :data:`COALESCING` gives the
  standard factors for the access classes sparse kernels exhibit.

These are *estimators*, not cycle-accurate simulation; they are computed
from the actual input arrays at launch time, so the modeled time responds to
the same structural properties (skewed degree distributions, scatter
patterns) that move real GPU timings.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = [
    "divergence_thread_per_row",
    "divergence_warp_per_row",
    "COALESCING",
    "warps_for",
    "blocks_for",
]

# Effective-bandwidth divisors per access class (32 = one transaction per
# lane, fully scattered).
COALESCING: Dict[str, float] = {
    "sequential": 1.0,  # unit-stride streaming
    "segmented": 2.0,  # mostly-contiguous segment starts (CSR row slices)
    "gather": 8.0,  # data-dependent reads (e.g. x[col[i]])
    "scatter": 16.0,  # data-dependent writes
    "atomic": 32.0,  # contended atomic read-modify-write
}


def warps_for(threads: int, warp_size: int = 32) -> int:
    """Number of warps covering ``threads`` lanes."""
    return max(1, -(-int(threads) // warp_size))


def blocks_for(threads: int, block_size: int = 256) -> int:
    """Number of thread blocks covering ``threads`` lanes."""
    return max(1, -(-int(threads) // block_size))


def divergence_thread_per_row(row_lengths: np.ndarray, warp_size: int = 32) -> float:
    """Work-inflation factor for a thread-per-row kernel.

    Each warp serialises to its longest row: effective work is
    ``Σ_warps warp_size · max(rows in warp)`` versus useful work
    ``Σ rows``.  Returns a factor ≥ 1 (1 when all rows in every warp are
    equal).
    """
    lens = np.asarray(row_lengths, dtype=np.float64)
    if lens.size == 0:
        return 1.0
    useful = float(lens.sum())
    if useful <= 0:
        return 1.0
    pad = (-lens.size) % warp_size
    if pad:
        lens = np.concatenate([lens, np.zeros(pad)])
    per_warp_max = lens.reshape(-1, warp_size).max(axis=1)
    effective = float(per_warp_max.sum()) * warp_size
    return max(1.0, effective / useful)


def divergence_warp_per_row(row_lengths: np.ndarray, warp_size: int = 32) -> float:
    """Lane-underutilisation factor for a warp-per-row kernel.

    Lanes stride the row cooperatively, so a row of length L uses
    ``ceil(L / warp_size) · warp_size`` lane-steps.  Short rows waste lanes;
    long rows are perfectly utilised.
    """
    lens = np.asarray(row_lengths, dtype=np.float64)
    if lens.size == 0:
        return 1.0
    useful = float(lens.sum())
    if useful <= 0:
        return 1.0
    effective = float((np.ceil(lens / warp_size) * warp_size).sum())
    return max(1.0, effective / useful)
