"""The simulated CUDA backend.

Orchestrates the device kernels in :mod:`.kernels` exactly the way
GBTL-CUDA's backend orchestrated CUSP kernels:

- operand containers are **uploaded** to simulated device memory on first
  use and cached (a resident set), so repeated operations on the same graph
  pay the PCIe cost once — as a real GPU graph library keeps the graph on
  the device across BFS iterations;
- results are **created device-resident** (no download charged; use
  :meth:`CudaSimBackend.download` to model an explicit copy-out);
- each operation is one or more kernel launches whose modeled times
  accumulate on the device clock; benchmarks read
  ``get_device().profiler`` for the simulated GPU series.

Semantics are bit-identical to the other backends (the kernels share the
CPU backend's vectorized semantic code), so the test suite cross-checks all
three.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Optional

import numpy as np

from ...containers.csc import CSCMatrix
from ...containers.csr import CSRMatrix
from ...containers.sparsevec import SparseVector
from ...core.descriptor import DEFAULT, Descriptor
from ...core.monoid import Monoid
from ...core.operators import BinaryOp, UnaryOp
from ...core.semiring import Semiring
from ...gpu.device import get_device
from ...gpu.kernel import LaunchConfig, charge_transfer, launch
from ..base import Backend
from ..cpu.spmv import choose_direction, mask_pull_rows
from .kernels import (
    APPLY_M,
    APPLY_V,
    EWISE_ADD_M,
    EWISE_ADD_V,
    EWISE_APPLY_FUSED_M,
    EWISE_APPLY_FUSED_V,
    EWISE_MULT_M,
    EWISE_MULT_V,
    GATHER,
    REDUCE_ROWS,
    REDUCE_TREE,
    SCATTER_ASSIGN,
    SELECT_COMPACT,
    SPGEMM_HASH,
    SPGEMM_HASH_MASKED,
    SPMSV_PUSH,
    SPMV_CSR_VECTOR,
    SPMV_PULL_FUSED,
    SPMV_PUSH_FUSED,
    TRANSPOSE_COUNTSORT,
)

__all__ = ["CudaSimBackend"]

_RESIDENT_CAP = 256


class CudaSimBackend(Backend):
    """GraphBLAS kernels on the simulated GPU."""

    name = "cuda_sim"

    def __init__(self) -> None:
        # id(container) -> (container, device buffer); strong refs pin ids
        # (no reuse while cached). OrderedDict gives cheap LRU eviction;
        # evicting frees the simulated device memory.
        self._resident: "OrderedDict[int, Any]" = OrderedDict()

    # ------------------------------------------------------------------
    # Residency management
    # ------------------------------------------------------------------

    def _ensure_resident(self, container) -> None:
        """Charge an H2D upload unless the container is already on-device."""
        key = id(container)
        if key in self._resident:
            self._resident.move_to_end(key)
            return
        charge_transfer(container.nbytes, "h2d")
        self._mark_resident(container, record_h2d=True)

    def _mark_resident(self, container, record_h2d: bool = False) -> None:
        key = id(container)
        if key in self._resident:
            self._resident.move_to_end(key)
            return
        buf = get_device().allocator.reserve(container.nbytes, record_h2d=record_h2d)
        self._resident[key] = (container, buf)
        self._resident.move_to_end(key)
        while len(self._resident) > _RESIDENT_CAP:
            _, (_, old_buf) = self._resident.popitem(last=False)
            old_buf.free()

    def download(self, container) -> Any:
        """Model an explicit D2H copy of a result; returns the container."""
        charge_transfer(container.nbytes, "d2h")
        return container

    def evict_all(self) -> None:
        """Forget residency (e.g. between benchmark repetitions)."""
        for _, buf in self._resident.values():
            buf.free()
        self._resident.clear()

    # ------------------------------------------------------------------
    # Products
    # ------------------------------------------------------------------

    def mxv(
        self,
        a: CSRMatrix,
        u: SparseVector,
        semiring: Semiring,
        mask: Optional[SparseVector] = None,
        desc: Descriptor = DEFAULT,
        direction: str = "auto",
        csc: Optional[CSCMatrix] = None,
    ) -> SparseVector:
        self._ensure_resident(a)
        self._ensure_resident(u)
        out_t = semiring.result_type(a.type, u.type)
        d = choose_direction(
            a,
            u,
            mask,
            desc,
            direction,
            csc is not None,
            push_indptr=csc.indptr if csc is not None else None,
            pull_indptr=a.indptr,
        )
        if d == "push":
            tcsr = csc.tcsr if csc is not None else launch(
                TRANSPOSE_COUNTSORT, LaunchConfig.cover(a.nvals), a
            )
            cfg = LaunchConfig.cover(max(u.nvals, 1) * 32)
            out = launch(SPMSV_PUSH, cfg, tcsr, u, semiring, out_t, False, mask, desc)
        else:
            rows = mask_pull_rows(mask, desc, a.nrows)
            nrows = a.nrows if rows is None else len(rows)
            cfg = LaunchConfig.cover(max(nrows, 1) * 32)
            out = launch(SPMV_CSR_VECTOR, cfg, a, u, semiring, out_t, False, rows)
        self._mark_resident(out)
        return out

    def vxm(
        self,
        u: SparseVector,
        a: CSRMatrix,
        semiring: Semiring,
        mask: Optional[SparseVector] = None,
        desc: Descriptor = DEFAULT,
        direction: str = "auto",
        csc: Optional[CSCMatrix] = None,
    ) -> SparseVector:
        self._ensure_resident(a)
        self._ensure_resident(u)
        out_t = semiring.result_type(u.type, a.type)
        d = choose_direction(
            a,
            u,
            mask,
            desc,
            direction,
            True,
            push_indptr=a.indptr,
            pull_indptr=csc.indptr if csc is not None else None,
        )
        if d == "push":
            cfg = LaunchConfig.cover(max(u.nvals, 1) * 32)
            out = launch(SPMSV_PUSH, cfg, a, u, semiring, out_t, True, mask, desc)
        else:
            tcsr = csc.tcsr if csc is not None else launch(
                TRANSPOSE_COUNTSORT, LaunchConfig.cover(a.nvals), a
            )
            rows = mask_pull_rows(mask, desc, a.ncols)
            nrows = tcsr.nrows if rows is None else len(rows)
            cfg = LaunchConfig.cover(max(nrows, 1) * 32)
            out = launch(SPMV_CSR_VECTOR, cfg, tcsr, u, semiring, out_t, True, rows)
        self._mark_resident(out)
        return out

    def mxm(
        self,
        a: CSRMatrix,
        b: CSRMatrix,
        semiring: Semiring,
        mask: Optional[CSRMatrix] = None,
        desc: Descriptor = DEFAULT,
    ) -> CSRMatrix:
        self._ensure_resident(a)
        self._ensure_resident(b)
        out_t = semiring.result_type(a.type, b.type)
        cfg = LaunchConfig.cover(max(a.nrows, 1) * 64)
        if mask is not None and not desc.complement_mask:
            from ..cpu.spgemm import mask_keys_for

            self._ensure_resident(mask)
            keys = mask_keys_for(mask, desc)
            out = launch(SPGEMM_HASH_MASKED, cfg, a, b, semiring, out_t, keys)
        else:
            out = launch(SPGEMM_HASH, cfg, a, b, semiring, out_t)
        self._mark_resident(out)
        return out

    # ------------------------------------------------------------------
    # Elementwise
    # ------------------------------------------------------------------

    def _ewise(self, kernel, x, y, op):
        self._ensure_resident(x)
        self._ensure_resident(y)
        out = launch(kernel, LaunchConfig.cover(x.nvals + y.nvals), x, y, op)
        self._mark_resident(out)
        return out

    def ewise_add_vector(self, u: SparseVector, v: SparseVector, op: BinaryOp) -> SparseVector:
        return self._ewise(EWISE_ADD_V, u, v, op)

    def ewise_mult_vector(self, u: SparseVector, v: SparseVector, op: BinaryOp) -> SparseVector:
        return self._ewise(EWISE_MULT_V, u, v, op)

    def ewise_add_matrix(self, a: CSRMatrix, b: CSRMatrix, op: BinaryOp) -> CSRMatrix:
        return self._ewise(EWISE_ADD_M, a, b, op)

    def ewise_mult_matrix(self, a: CSRMatrix, b: CSRMatrix, op: BinaryOp) -> CSRMatrix:
        return self._ewise(EWISE_MULT_M, a, b, op)

    # ------------------------------------------------------------------
    # Fused kernels — single launches instead of compositions
    # ------------------------------------------------------------------

    def ewise_apply_vector(self, u, v, binop, unop, union=True):
        self._ensure_resident(u)
        self._ensure_resident(v)
        out = launch(
            EWISE_APPLY_FUSED_V,
            LaunchConfig.cover(u.nvals + v.nvals),
            u, v, binop, unop, union,
        )
        self._mark_resident(out)
        return out

    def ewise_apply_matrix(self, a, b, binop, unop, union=True):
        self._ensure_resident(a)
        self._ensure_resident(b)
        out = launch(
            EWISE_APPLY_FUSED_M,
            LaunchConfig.cover(a.nvals + b.nvals),
            a, b, binop, unop, union,
        )
        self._mark_resident(out)
        return out

    def frontier_step(
        self,
        levels: SparseVector,
        frontier: SparseVector,
        a: CSRMatrix,
        value: Any,
        semiring: Semiring,
        desc: Descriptor,
        direction: str = "auto",
        csc: Optional[CSCMatrix] = None,
    ):
        """Level assign + masked SpMSpV + frontier merge as ONE launch."""
        self._ensure_resident(a)
        self._ensure_resident(frontier)
        self._ensure_resident(levels)
        d = choose_direction(
            a,
            frontier,
            levels,
            desc,
            direction,
            True,
            push_indptr=a.indptr,
            pull_indptr=csc.indptr if csc is not None else None,
        )
        if d == "push":
            cfg = LaunchConfig.cover(max(frontier.nvals, 1) * 32)
            out = launch(
                SPMV_PUSH_FUSED, cfg, levels, frontier, a, value, semiring, desc
            )
        else:
            tcsr = csc.tcsr if csc is not None else launch(
                TRANSPOSE_COUNTSORT, LaunchConfig.cover(a.nvals), a
            )
            cfg = LaunchConfig.cover(max(tcsr.nrows, 1) * 32)
            out = launch(
                SPMV_PULL_FUSED, cfg, levels, frontier, tcsr, value, semiring, desc
            )
        new_levels, new_frontier = out
        self._mark_resident(new_levels)
        self._mark_resident(new_frontier)
        return out

    # ------------------------------------------------------------------
    # Apply / reduce / transpose
    # ------------------------------------------------------------------

    def apply_vector(self, u: SparseVector, op: UnaryOp) -> SparseVector:
        self._ensure_resident(u)
        out = launch(APPLY_V, LaunchConfig.cover(u.nvals), u, op)
        self._mark_resident(out)
        return out

    def apply_matrix(self, a: CSRMatrix, op: UnaryOp) -> CSRMatrix:
        self._ensure_resident(a)
        out = launch(APPLY_M, LaunchConfig.cover(a.nvals), a, op)
        self._mark_resident(out)
        return out

    def reduce_vector_scalar(self, u: SparseVector, monoid: Monoid) -> Any:
        self._ensure_resident(u)
        t = monoid.result_type(u.type)
        val = launch(REDUCE_TREE, LaunchConfig.cover(u.nvals), u.values, monoid, u.type)
        return t.cast(val)

    def reduce_matrix_vector(self, a: CSRMatrix, monoid: Monoid) -> SparseVector:
        self._ensure_resident(a)
        out = launch(REDUCE_ROWS, LaunchConfig.cover(max(a.nrows, 1) * 32), a, monoid)
        self._mark_resident(out)
        return out

    def reduce_matrix_scalar(self, a: CSRMatrix, monoid: Monoid) -> Any:
        self._ensure_resident(a)
        t = monoid.result_type(a.type)
        val = launch(REDUCE_TREE, LaunchConfig.cover(a.nvals), a.values, monoid, a.type)
        return t.cast(val)

    def transpose(self, a: CSRMatrix) -> CSRMatrix:
        self._ensure_resident(a)
        out = launch(TRANSPOSE_COUNTSORT, LaunchConfig.cover(a.nvals), a)
        self._mark_resident(out)
        return out

    # ------------------------------------------------------------------
    # Select / indexed apply accounting
    # ------------------------------------------------------------------

    def _select_launch(self, src, thunk_fn):
        self._ensure_resident(src)
        out = launch(
            SELECT_COMPACT,
            LaunchConfig.cover(src.nvals),
            thunk_fn,
            float(src.nvals),
            src.type.nbytes,
        )
        self._mark_resident(out)
        return out

    def select_vector(self, u, op, thunk):
        return self._select_launch(u, lambda: super(CudaSimBackend, self).select_vector(u, op, thunk))

    def select_matrix(self, a, op, thunk):
        return self._select_launch(a, lambda: super(CudaSimBackend, self).select_matrix(a, op, thunk))

    def apply_indexop_vector(self, u, op, thunk):
        return self._select_launch(
            u, lambda: super(CudaSimBackend, self).apply_indexop_vector(u, op, thunk)
        )

    def apply_indexop_matrix(self, a, op, thunk):
        return self._select_launch(
            a, lambda: super(CudaSimBackend, self).apply_indexop_matrix(a, op, thunk)
        )

    # ------------------------------------------------------------------
    # Extract / assign accounting
    # ------------------------------------------------------------------

    def extract_vector(self, u: SparseVector, idx: np.ndarray) -> SparseVector:
        self._ensure_resident(u)
        out = launch(
            GATHER,
            LaunchConfig.cover(len(idx)),
            lambda: super(CudaSimBackend, self).extract_vector(u, idx),
            len(idx),
            u.type.nbytes,
        )
        self._mark_resident(out)
        return out

    def extract_matrix(self, a: CSRMatrix, rows: np.ndarray, cols: np.ndarray) -> CSRMatrix:
        self._ensure_resident(a)
        out = launch(
            GATHER,
            LaunchConfig.cover(len(rows) * max(len(cols), 1)),
            lambda: super(CudaSimBackend, self).extract_matrix(a, rows, cols),
            float(len(rows)) * max(len(cols), 1),
            a.type.nbytes,
        )
        self._mark_resident(out)
        return out

    def charge_assign(self, nvals: int, out) -> None:
        launch(SCATTER_ASSIGN, LaunchConfig.cover(nvals), float(nvals), 8)
