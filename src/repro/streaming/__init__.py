"""Streaming/dynamic graphs: batched edge churn with incremental recompute.

The mutable front (:class:`DynamicGraph`) layers a delta-COO overlay over
the canonical CSR; compaction folds it back in place, charged through the
active backend's cost model.  Incremental views keep BFS levels, connected
components, and PageRank current under edge batches, falling back to full
recompute when a delete (or a too-large delta) makes that the sound
choice.  See ``docs/streaming.md``.
"""

from .batch import EdgeBatch, random_edge_batch
from .graph import CompactionPolicy, DynamicGraph, StreamStats
from .incremental import (
    IncrementalBFS,
    IncrementalCC,
    IncrementalPageRank,
    RecomputePolicy,
    ViewStats,
)
from .overlay import DeltaOverlay, merge_overlay

__all__ = [
    "EdgeBatch",
    "random_edge_batch",
    "CompactionPolicy",
    "DynamicGraph",
    "StreamStats",
    "DeltaOverlay",
    "merge_overlay",
    "IncrementalBFS",
    "IncrementalCC",
    "IncrementalPageRank",
    "RecomputePolicy",
    "ViewStats",
]
