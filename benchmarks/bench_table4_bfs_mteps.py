"""Table 4 — BFS throughput in MTEPS (the Graph500 headline metric).

Millions of Traversed Edges Per Second: edges in the source's reachable
component divided by BFS time, averaged over several sources — the number
every Graph500-era GPU paper headlines.  Shape claims: MTEPS ordering
reference ≪ cpu < cuda_sim; cuda_sim MTEPS *rises* with scale (launch
overhead amortises), the signature GPU-BFS curve.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro as gb
from repro.bench.harness import time_operation
from repro.bench.tables import format_table

from repro.backends.dispatch import get_backend, use_backend
from repro.gpu.device import get_device, reset_device

from conftest import bench_backend, save_json, save_table

# Kernel launches per scale-12 BFS at the seed commit (assign + masked vxm
# pipeline, two launches per hop); the fused frontier_step must beat this.
SEED_BFS_LAUNCHES_SCALE12 = 8

SCALES = [8, 10, 12]
REFERENCE_MAX_SCALE = 10
BACKENDS = ["reference", "cpu", "cuda_sim"]
SOURCES = [0, 1, 2, 3]


def make_graph(scale):
    return gb.generators.rmat(scale=scale, edge_factor=16, seed=44)


_GRAPHS = {s: make_graph(s) for s in SCALES}


def traversed_edges(g, source) -> int:
    """Edges incident to the reachable set (Graph500 counts each once)."""
    reached = gb.algorithms.bfs_levels(g, source)
    idx = reached.indices_array()
    deg = g.row_degrees()
    return int(deg[idx].sum()) // 2


def mteps(backend: str, g, sources) -> float:
    total_edges = 0
    total_time = 0.0
    for s in sources:
        m = time_operation(
            backend,
            lambda s=s: gb.algorithms.bfs_levels(g, s),
            repeat=1 if backend == "reference" else 2,
        )
        total_time += m.seconds
        total_edges += traversed_edges(g, s)
    return total_edges / max(total_time, 1e-12) / 1e6


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("scale", SCALES)
def test_table4_bfs(benchmark, backend, scale):
    if backend == "reference" and scale > REFERENCE_MAX_SCALE:
        pytest.skip("sequential baseline capped at scale 10")
    g = _GRAPHS[scale]
    rate = mteps(backend, g, SOURCES[:2])
    benchmark.extra_info["mteps"] = round(rate, 3)
    bench_backend(
        benchmark,
        backend,
        lambda: gb.algorithms.bfs_levels(g, 0),
        rounds=1 if backend == "reference" else 2,
    )


def test_table4_render(benchmark):
    def build():
        rows = []
        series = {b: [] for b in BACKENDS}
        for s in SCALES:
            g = _GRAPHS[s]
            row = [s, g.nvals // 2]
            for b in BACKENDS:
                if b == "reference" and s > REFERENCE_MAX_SCALE:
                    row.append(float("nan"))
                    series[b].append(float("nan"))
                    continue
                rate = mteps(b, g, SOURCES)
                row.append(round(rate, 3))
                series[b].append(rate)
            rows.append(row)
        table = format_table(
            "Table 4 — BFS throughput (MTEPS; cuda_sim from modeled time)",
            ["scale", "edges", "reference", "cpu", "cuda_sim"],
            rows,
        )
        save_table("table4_bfs_mteps", table)
        # Shape: ordering at every measured scale.
        for i, s in enumerate(SCALES):
            if s <= REFERENCE_MAX_SCALE:
                assert series["cpu"][i] > series["reference"][i]
                assert series["cuda_sim"][i] > series["cpu"][i]
        # Shape: GPU MTEPS grows with scale (launch overhead amortises).
        assert series["cuda_sim"][-1] > series["cuda_sim"][0]
        # Machine-readable record: MTEPS series + simulated launch counts
        # (the fused frontier_step runs ONE kernel per BFS hop).
        launches = {}
        for s in SCALES:
            reset_device()
            get_backend("cuda_sim").evict_all()
            with use_backend("cuda_sim"):
                gb.algorithms.bfs_levels(_GRAPHS[s], 0)
                launches[str(s)] = sum(
                    1
                    for r in get_device().profiler.records
                    if r.kind == "kernel"
                )
        record = {
            "table": "table4_bfs_mteps",
            "scales": SCALES,
            "mteps": series,
            "bfs_kernel_launches": launches,
            "seed_bfs_kernel_launches_scale12": SEED_BFS_LAUNCHES_SCALE12,
        }
        save_json("table4", record)
        assert launches["12"] < SEED_BFS_LAUNCHES_SCALE12, (
            "fused BFS must launch strictly fewer kernels than the seed "
            f"pipeline: {launches['12']} vs {SEED_BFS_LAUNCHES_SCALE12}"
        )
        return table

    benchmark.pedantic(build, rounds=1, iterations=1)
