"""Delta-stepping SSSP (Meyer & Sanders) in GraphBLAS form.

The algorithm the Lumsdaine group's SSSP papers revolve around: vertices are
processed in distance buckets of width Δ; inside a bucket, *light* edges
(w ≤ Δ) are relaxed to a fixpoint (they can keep a vertex in the current
bucket), then *heavy* edges (w > Δ) are relaxed once (they always jump to a
later bucket).  Δ interpolates between Dijkstra (Δ→0: one vertex per
bucket) and Bellman–Ford (Δ→∞: one bucket) — the knob the Fig. 7 bench
sweeps.

GraphBLAS formulation: the light/heavy split is two ``select`` calls; a
bucket is a ``select`` on the distance vector; every relaxation is a masked
(MIN, PLUS) ``vxm`` + MIN merge, with the "changed" frontier computed the
same way as :func:`~repro.algorithms.sssp.sssp`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core import operations as ops
from ..core.descriptor import Descriptor
from ..core.matrix import Matrix
from ..core.operators import EQ, IDENTITY, MIN, VALUEGE, VALUEGT, VALUELE, VALUELT
from ..core.semiring import MIN_PLUS
from ..core.vector import Vector
from ..exceptions import IndexOutOfBoundsError, InvalidValueError
from ..types import BOOL, FP64

__all__ = ["sssp_delta_stepping", "split_light_heavy"]

_NOT_EQ = Descriptor(complement_mask=True, replace=True)


def split_light_heavy(g: Matrix, delta: float) -> Tuple[Matrix, Matrix]:
    """(light, heavy): edges with weight ≤ Δ and > Δ."""
    light = Matrix.sparse(g.type, g.nrows, g.ncols)
    ops.select(light, g, VALUELE, thunk=delta)
    heavy = Matrix.sparse(g.type, g.nrows, g.ncols)
    ops.select(heavy, g, VALUEGT, thunk=delta)
    return light, heavy


def _relax(d: Vector, frontier: Vector, edges: Matrix) -> Vector:
    """One (MIN, PLUS) relaxation; returns the improved-vertices frontier."""
    n = d.size
    t = Vector.sparse(FP64, n)
    ops.vxm(t, frontier, edges, MIN_PLUS)
    old = d.dup()
    ops.ewise_add(d, old, t, MIN)
    unchanged = Vector.sparse(BOOL, n)
    ops.ewise_mult(unchanged, d, old, EQ)
    improved = Vector.sparse(FP64, n)
    ops.apply(improved, d, IDENTITY, mask=unchanged, desc=_NOT_EQ)
    return improved


def _bucket(d: Vector, lo: float, hi: float) -> Vector:
    """Entries of d with lo ≤ value < hi."""
    ge = Vector.sparse(FP64, d.size)
    ops.select(ge, d, VALUEGE, thunk=lo)
    out = Vector.sparse(FP64, d.size)
    ops.select(out, ge, VALUELT, thunk=hi)
    return out


def sssp_delta_stepping(
    g: Matrix,
    source: int,
    delta: Optional[float] = None,
) -> Vector:
    """Distances from ``source`` (nonnegative weights).

    ``delta=None`` picks the standard heuristic Δ = max_weight / avg_degree
    (clamped to ≥ the smallest positive weight).
    """
    if not 0 <= source < g.nrows:
        raise IndexOutOfBoundsError(f"source {source} outside [0, {g.nrows})")
    n = g.nrows
    if g.nvals == 0:
        d0 = Vector.sparse(FP64, n)
        d0.set_element(source, 0.0)
        return d0
    weights = g.container.values
    if float(weights.min()) < 0:
        raise InvalidValueError("delta-stepping requires nonnegative weights")
    if delta is None:
        avg_deg = max(g.nvals / max(n, 1), 1.0)
        delta = max(float(weights.max()) / avg_deg, float(weights[weights > 0].min(initial=1.0)))
    if delta <= 0:
        raise InvalidValueError(f"delta must be positive, got {delta}")

    light, heavy = split_light_heavy(g, delta)
    d = Vector.sparse(FP64, n)
    d.set_element(source, 0.0)

    bucket_idx = 0
    # Light-edge relaxations repeat an identical kernel sequence until the
    # bucket settles; the lazy optimizer (repro.lazy.capture) spots the
    # repeated flush signature and aggregates the replays automatically.
    # Max useful bucket: longest shortest path < n · max weight.
    max_buckets = int(n * float(weights.max()) / delta) + 2
    while bucket_idx < max_buckets:
        lo, hi = bucket_idx * delta, (bucket_idx + 1) * delta
        frontier = _bucket(d, lo, hi)
        if not frontier.nvals:
            # Jump to the next nonempty bucket (or finish).
            remaining = Vector.sparse(FP64, n)
            ops.select(remaining, d, VALUEGE, thunk=hi)
            if not remaining.nvals:
                break
            nxt = float(np.min(remaining.values_array()))
            bucket_idx = int(nxt // delta)
            continue
        # Settle the bucket over light edges.
        settled = Vector.sparse(FP64, n)
        while frontier.nvals:
            improved = _relax(d, frontier, light)
            # Improved vertices that fell into the current bucket re-relax.
            frontier = _bucket(improved, lo, hi)
            # Remember every bucket member for the heavy phase.
            members = _bucket(d, lo, hi)
            ops.ewise_add(settled, settled, members, MIN)
        # One heavy relaxation from everything the bucket settled.
        if settled.nvals:
            _relax(d, settled, heavy)
        bucket_idx += 1
    return d
