"""Breadth-first search, the GraphBLAS way.

Level BFS is repeated masked ``vxm`` over the Boolean semiring: the frontier
is a sparse vector, the "visited" vector is the complemented structural mask,
and ``replace`` clears the old frontier — the exact formulation GBTL-CUDA
runs on the GPU.  Parent BFS swaps in the (MIN, FIRST) semiring so the value
that propagates is the parent's vertex id.

``direction`` forwards to the backend's SpMSpV strategy ("push", "pull",
"auto") — the Fig. 5 ablation knob.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core import operations as ops
from ..core.assign import assign
from ..core.descriptor import Descriptor
from ..core.fused import frontier_step
from ..core.matrix import Matrix
from ..core.operators import ROWINDEX
from ..core.semiring import LOR_LAND, MIN_FIRST
from ..core.vector import Vector
from ..exceptions import IndexOutOfBoundsError
from ..types import BOOL, INT64

__all__ = ["bfs_levels", "bfs_parents"]

_UNVISITED_MASK = Descriptor(complement_mask=True, structural_mask=True, replace=True)


def _check_source(g: Matrix, source: int) -> None:
    if not 0 <= source < g.nrows:
        raise IndexOutOfBoundsError(f"source {source} outside [0, {g.nrows})")


def bfs_levels(
    g: Matrix,
    source: int,
    direction: str = "auto",
    max_depth: Optional[int] = None,
) -> Vector:
    """Hop distance from ``source`` (source itself gets level 0).

    Unreachable vertices have no entry.  ``g`` is the adjacency matrix
    (``g[i, j]`` present ⇒ edge i→j); values are ignored (structure only).
    """
    _check_source(g, source)
    n = g.nrows
    levels = Vector.sparse(INT64, n)
    frontier = Vector.sparse(BOOL, n)
    frontier.set_element(source, True)
    depth = 0
    limit = max_depth if max_depth is not None else n
    # Steady-state hops are captured automatically by the lazy optimizer
    # (repro.lazy.capture): repeated flush signatures aggregate into one
    # replay record, so no manual capture scope is needed here.
    while frontier.nvals and depth <= limit:
        # One fused step: record this hop's levels and expand the frontier
        # through the complemented (unvisited) mask — a single kernel
        # launch on fusing backends instead of an assign + masked vxm pair.
        frontier_step(
            levels, frontier, g, depth, LOR_LAND, _UNVISITED_MASK, direction
        )
        depth += 1
    return levels


def bfs_parents(
    g: Matrix,
    source: int,
    direction: str = "auto",
) -> Vector:
    """BFS tree: ``parents[v]`` is v's predecessor (source points to itself).

    Ties (several same-level predecessors) resolve to the smallest vertex id
    via the MIN monoid, so results are deterministic across backends.
    """
    _check_source(g, source)
    n = g.nrows
    parents = Vector.sparse(INT64, n)
    parents.set_element(source, source)
    # Frontier values carry the *would-be parent* id = the vertex itself.
    frontier = Vector.sparse(INT64, n)
    frontier.set_element(source, source)
    while frontier.nvals:
        # Propagate parent ids along out-edges; keep only unvisited targets.
        ops.vxm(
            frontier,
            frontier,
            g,
            MIN_FIRST,
            mask=parents,
            desc=_UNVISITED_MASK,
            direction=direction,
        )
        if not frontier.nvals:
            break
        # Record the discovered parents, then relabel the new frontier with
        # its own indices for the next hop.
        packed = Vector.from_lists(
            np.arange(frontier.nvals, dtype=np.int64),
            frontier.values_array(),
            frontier.nvals,
            INT64,
        )
        assign(parents, packed, indices=frontier.indices_array())
        ops.apply(frontier, frontier, ROWINDEX, thunk=0)
    return parents
