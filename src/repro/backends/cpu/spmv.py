"""Vectorized sparse matrix–vector kernels (mxv / vxm).

Two strategies, the classic GBTL-CUDA/direction-optimizing pair:

- **pull** (row gather): for each output row, intersect the matrix row with
  the input vector.  Cost ~O(nnz(A)) independent of frontier size, but a
  non-complemented mask restricts the computed rows — the pull-BFS win.
- **push** (column scatter): expand only the rows of the (logically
  transposed) matrix selected by the input vector's present entries, then
  sort-and-reduce by output index.  Cost ~O(Σ deg(frontier)) — the sparse
  frontier win.

Both reduce with :func:`~repro.backends.cpu.segments.segment_reduce`.  The
``flip`` flag makes one kernel serve mxv and vxm (the semiring multiply is
not commutative in general: mxv computes ``mult(A_ij, u_j)``, vxm computes
``mult(u_k, A_kj)``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...containers.csc import CSCMatrix
from ...containers.csr import CSRMatrix
from ...containers.sparsevec import SparseVector
from ...core.descriptor import DEFAULT, Descriptor
from ...core.semiring import Semiring
from ...types import GrBType
from .segments import run_starts, segment_reduce

__all__ = [
    "row_gather_product",
    "scatter_product",
    "choose_direction",
    "mask_row_candidates",
    "take_ranges",
]


def take_ranges(indptr: np.ndarray, rows: np.ndarray) -> tuple:
    """Gather index array covering ``indices[indptr[r]:indptr[r+1]]`` per row.

    Returns ``(take, lens)`` where ``take`` indexes the flat nnz arrays and
    ``lens[k]`` is the run length of ``rows[k]``.  This is the standard
    "expand variable-length slices without a Python loop" trick.
    """
    lo = indptr[rows]
    lens = indptr[rows + 1] - lo
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), lens
    seg_starts = np.concatenate(([0], np.cumsum(lens)[:-1]))
    take = np.arange(total, dtype=np.int64) + np.repeat(lo - seg_starts, lens)
    return take, lens


def mask_row_candidates(
    mask: Optional[SparseVector], desc: Descriptor
) -> Optional[np.ndarray]:
    """Rows a non-complemented mask allows, or None when pruning is unsafe."""
    if mask is None or desc.complement_mask:
        return None
    if desc.structural_mask:
        return mask.indices
    return mask.indices[mask.values.astype(bool)]


def _products(a_vals: np.ndarray, u_vals: np.ndarray, semiring: Semiring, flip: bool):
    if flip:
        return semiring.mult(u_vals, a_vals)
    return semiring.mult(a_vals, u_vals)


def row_gather_product(
    csr: CSRMatrix,
    u: SparseVector,
    semiring: Semiring,
    out_type: GrBType,
    flip: bool = False,
    rows: Optional[np.ndarray] = None,
) -> SparseVector:
    """Pull kernel: ``t[i] = ⊕_j mult'(csr[i,j], u[j])`` over selected rows."""
    n_out = csr.nrows
    if csr.nvals == 0 or u.nvals == 0:
        return SparseVector.empty(n_out, out_type)
    if rows is None:
        flat_idx = csr.indices
        flat_vals = csr.values
        row_ids = np.repeat(np.arange(csr.nrows, dtype=np.int64), csr.row_degrees())
    else:
        rows = np.asarray(rows, dtype=np.int64)
        take, lens = take_ranges(csr.indptr, rows)
        flat_idx = csr.indices[take]
        flat_vals = csr.values[take]
        row_ids = np.repeat(rows, lens)
    if u.nvals == u.size:
        # Dense-vector fast path: every column is present, so the membership
        # probe collapses to a direct gather — the win that makes pull the
        # right direction for dense frontiers (Fig. 5).
        prods = np.asarray(_products(flat_vals, u.values[flat_idx], semiring, flip))
        keys = row_ids
    else:
        # Membership of each stored column in u (both sides sorted per row;
        # u global-sorted, so searchsorted per element is exact).
        pos = np.searchsorted(u.indices, flat_idx)
        pos_c = np.minimum(pos, u.indices.size - 1)
        hit = u.indices[pos_c] == flat_idx
        hit &= pos < u.indices.size
        if not hit.any():
            return SparseVector.empty(n_out, out_type)
        prods = np.asarray(
            _products(flat_vals[hit], u.values[pos[hit]], semiring, flip)
        )
        keys = row_ids[hit]  # already sorted: CSR order is row-major
    starts = run_starts(keys)
    out_vals = segment_reduce(prods, starts, semiring.add, out_type.dtype)
    return SparseVector(n_out, keys[starts], out_vals, out_type)


def scatter_product(
    csr: CSRMatrix,
    u: SparseVector,
    semiring: Semiring,
    out_type: GrBType,
    flip: bool = False,
) -> SparseVector:
    """Push kernel: ``t[j] = ⊕_{k present in u} mult'(csr[k,j], u[k])``."""
    n_out = csr.ncols
    if csr.nvals == 0 or u.nvals == 0:
        return SparseVector.empty(n_out, out_type)
    take, lens = take_ranges(csr.indptr, u.indices)
    if take.size == 0:
        return SparseVector.empty(n_out, out_type)
    cols = csr.indices[take]
    prods = np.asarray(
        _products(csr.values[take], np.repeat(u.values, lens), semiring, flip)
    )
    order = np.argsort(cols, kind="stable")
    keys = cols[order]
    prods = prods[order]
    starts = run_starts(keys)
    out_vals = segment_reduce(prods, starts, semiring.add, out_type.dtype)
    return SparseVector(n_out, keys[starts], out_vals, out_type)


def choose_direction(
    a: CSRMatrix,
    u: SparseVector,
    mask: Optional[SparseVector],
    desc: Descriptor,
    direction: str,
    csc_available: bool,
) -> str:
    """Resolve "auto" into "push" or "pull".

    Push wins when the frontier is small: its cost is the frontier's total
    degree, versus pull's cost of nnz(A) (or the masked-row subset).  The
    factor-of-4 margin accounts for push's extra sort.  Auto never picks
    push when it would require materialising a transpose first.
    """
    if direction in ("push", "pull"):
        return direction
    if not csc_available:
        return "pull"
    n = max(a.nrows, 1)
    avg_deg = a.nvals / n
    push_cost = u.nvals * max(avg_deg, 1.0) * 4.0
    rows = mask_row_candidates(mask, desc)
    pull_cost = float(a.nvals) if rows is None else rows.size * max(avg_deg, 1.0)
    return "push" if push_cost < pull_cost else "pull"
