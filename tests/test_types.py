"""Type system: lookup, promotion, casting, user types."""

import numpy as np
import pytest

from repro import types as t
from repro.types import (
    ALL_TYPES,
    BOOL,
    FP32,
    FP64,
    INT8,
    INT32,
    INT64,
    UINT8,
    UINT64,
    from_dtype,
    from_value,
    lookup,
    promote,
    register_type,
)


class TestPredefined:
    def test_eleven_predefined_domains(self):
        assert len(ALL_TYPES) == 11

    def test_names_match_spec(self):
        names = {x.name for x in ALL_TYPES}
        assert names == {
            "BOOL", "INT8", "INT16", "INT32", "INT64",
            "UINT8", "UINT16", "UINT32", "UINT64", "FP32", "FP64",
        }

    def test_dtype_sizes(self):
        assert INT8.nbytes == 1
        assert INT64.nbytes == 8
        assert FP32.nbytes == 4

    def test_kind_predicates(self):
        assert BOOL.is_boolean and not BOOL.is_integral and not BOOL.is_floating
        assert INT32.is_integral and INT32.is_signed
        assert UINT8.is_integral and not UINT8.is_signed
        assert FP64.is_floating


class TestLookup:
    def test_lookup_by_name(self):
        assert lookup("FP64") is FP64
        assert lookup("UINT64") is UINT64

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            lookup("FP16")

    def test_from_dtype(self):
        assert from_dtype(np.float64) is FP64
        assert from_dtype("int32") is INT32
        assert from_dtype(np.bool_) is BOOL

    def test_from_dtype_unknown_raises(self):
        with pytest.raises(KeyError):
            from_dtype(np.complex128)

    def test_from_value(self):
        assert from_value(True) is BOOL
        assert from_value(3) is INT64
        assert from_value(2.5) is FP64

    def test_from_value_numpy_scalars(self):
        assert from_value(np.int32(3)) is INT64
        assert from_value(np.float32(1.5)) is FP64
        assert from_value(np.bool_(False)) is BOOL

    def test_from_value_unknown_raises(self):
        with pytest.raises(TypeError):
            from_value("hello")


class TestPromotion:
    def test_identical(self):
        assert promote(FP64, FP64) is FP64

    def test_int_float(self):
        assert promote(INT32, FP64) is FP64
        assert promote(FP32, INT8) is FP32

    def test_bool_is_weakest(self):
        assert promote(BOOL, INT8) is INT8
        assert promote(BOOL, FP32) is FP32
        assert promote(BOOL, BOOL) is BOOL

    def test_widths(self):
        assert promote(INT8, INT32) is INT32
        assert promote(UINT8, UINT64) is UINT64

    def test_signed_unsigned(self):
        # NumPy/C promotion: int8 with uint8 -> int16.
        assert promote(INT8, UINT8).name == "INT16"


class TestCast:
    def test_cast_truncates_float_to_int(self):
        assert INT32.cast(3.9) == 3

    def test_cast_bool(self):
        assert BOOL.cast(7) == True  # noqa: E712

    def test_zeros(self):
        z = FP32.zeros(4)
        assert z.dtype == np.float32 and z.shape == (4,)


class TestUserTypes:
    def test_register_and_promote_above(self):
        mytype = register_type("TEST_T1", np.float64, rank=50)
        assert lookup("TEST_T1") is mytype

    def test_duplicate_name_rejected(self):
        register_type("TEST_T2", np.int16)
        with pytest.raises(ValueError):
            register_type("TEST_T2", np.int16)
