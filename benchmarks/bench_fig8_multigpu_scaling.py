"""Figure 8 — multi-device strong scaling on the partitioned backend.

Reconstructed experiment: BFS, PageRank, and delta-stepping SSSP on R-MAT
graphs, executed by the ``multi_sim`` backend over P ∈ {1, 2, 4, 8}
simulated devices (degree-balanced block-row shards, NVLink-class links).

Shape claims:

- the P=1 cluster is the single-device backend: its launch and H2D
  counters match plain ``cuda_sim`` (the delegation invariant);
- BFS speedup grows with P at scale ≥ 14 — compute shrinks ~1/P while the
  frontier exchange grows only with frontier size;
- the comm/compute ratio grows monotonically with P for every algorithm —
  adding devices buys less and less as collectives take over the critical
  path (PageRank visibly rolls over by P=8, and delta-stepping's many
  small bucket relaxations are comm-bound outright: a 1-D partition does
  not pay for fine-grained frontiers).
"""

from __future__ import annotations

import pytest

import repro as gb
from repro.backends.dispatch import get_backend, use_backend
from repro.bench.tables import format_series
from conftest import save_json, save_table, sim_metrics

PARTS = [1, 2, 4, 8]
SPLITTER = "degree_balanced"
SCALE = 14
SCALE_WEIGHTED = 13


def _cases():
    g = gb.generators.rmat(scale=SCALE, edge_factor=8, seed=21)
    gw = gb.generators.rmat(
        scale=SCALE_WEIGHTED, edge_factor=8, seed=22, weighted=True
    )
    return {
        "bfs": lambda: gb.algorithms.bfs_levels(g, 0),
        "pagerank": lambda: gb.algorithms.pagerank(g, max_iter=20),
        "delta_stepping": lambda: gb.algorithms.sssp_delta_stepping(gw, 0),
    }


def run_case(ms, fn) -> dict:
    """One (algorithm, P) cell: reset the cluster, run, read the counters."""
    ms.reset()
    with use_backend("multi_sim"):
        fn()
    m = ms.metrics()
    comm_us = m["comm"]["time_us"]
    compute_us = max(m["makespan_us"] - comm_us, 1e-9)
    return {
        "kernel_launches": m["kernel_launches"],
        "h2d_bytes": round(m["h2d_bytes"]),
        "makespan_us": m["makespan_us"],
        "comm_us": round(comm_us, 3),
        "comm_bytes": round(m["comm"]["total_bytes"]),
        "comm_compute_ratio": round(comm_us / compute_us, 4),
    }


def test_fig8_render(benchmark):
    def build():
        cases = _cases()
        ms = get_backend("multi_sim")
        cells = {}  # {algo: {P: row}}
        for algo, fn in cases.items():
            cells[algo] = {}
            for nparts in PARTS:
                ms.configure(nparts=nparts, splitter=SPLITTER)
                cells[algo][nparts] = run_case(ms, fn)

        # P=1 delegation invariant: the one-device cluster must report the
        # same deterministic counters as the plain single-device backend.
        base = sim_metrics(cases["bfs"])
        p1 = cells["bfs"][1]
        assert abs(p1["kernel_launches"] - base["kernel_launches"]) <= (
            0.10 * base["kernel_launches"]
        )
        assert abs(p1["h2d_bytes"] - base["h2d_bytes"]) <= 0.10 * base["h2d_bytes"]

        speedups = {
            algo: [
                cells[algo][1]["makespan_us"] / cells[algo][p]["makespan_us"]
                for p in PARTS
            ]
            for algo in cells
        }
        ratios = {
            algo: [cells[algo][p]["comm_compute_ratio"] for p in PARTS]
            for algo in cells
        }

        fig = format_series(
            f"Figure 8 — multi-device speedup vs P (R-MAT scale {SCALE}, "
            f"{SPLITTER})",
            "P",
            PARTS,
            speedups,
        )
        save_table("fig8_multigpu_scaling", fig)

        # Shape: BFS strong-scales — every added device still helps.
        bfs = speedups["bfs"]
        assert all(b > a for a, b in zip(bfs, bfs[1:])), bfs
        assert bfs[-1] > 2.0
        # Shape: communication takes over the critical path as P grows.
        for algo, r in ratios.items():
            assert all(b > a for a, b in zip(r, r[1:])), (algo, r)

        record = {
            "figure": "fig8_multigpu_scaling",
            "parts": PARTS,
            "splitter": SPLITTER,
            "scale": SCALE,
            "scale_weighted": SCALE_WEIGHTED,
            "makespan_us": {
                algo: [cells[algo][p]["makespan_us"] for p in PARTS]
                for algo in cells
            },
            "speedup": speedups,
            "comm_bytes": {
                algo: [cells[algo][p]["comm_bytes"] for p in PARTS]
                for algo in cells
            },
            "comm_compute_ratio": ratios,
            "p1_parity": {"cuda_sim": base, "multi_sim_p1": {
                "kernel_launches": p1["kernel_launches"],
                "h2d_bytes": p1["h2d_bytes"],
            }},
            # Deterministic counters per (algo, P) cell — diffed by CI's
            # regression gate exactly like the single-device figures.
            "cuda_sim_metrics": {
                f"{algo}_P{p}": {
                    "kernel_launches": cells[algo][p]["kernel_launches"],
                    "h2d_bytes": cells[algo][p]["h2d_bytes"],
                }
                for algo in sorted(cells)
                for p in PARTS
            },
        }
        save_json("fig8", record)
        return fig

    benchmark.pedantic(build, rounds=1, iterations=1)
