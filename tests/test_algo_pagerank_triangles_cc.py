"""PageRank, triangle counting, connected components vs networkx."""

import networkx as nx
import numpy as np
import pytest

import repro as gb
from repro.algorithms import (
    component_count,
    connected_components,
    pagerank,
    row_stochastic,
    triangle_count,
    triangles_per_vertex,
)


def to_nx_undirected(g):
    G = nx.Graph()
    G.add_nodes_from(range(g.nrows))
    r, c, _ = g.to_lists()
    G.add_edges_from(zip(r, c))
    return G


class TestPageRank:
    def test_ranks_sum_to_one(self, backend):
        g = gb.generators.erdos_renyi_gnp(30, 0.15, seed=1)
        r = pagerank(g)
        assert float(np.sum(r.to_dense())) == pytest.approx(1.0, abs=1e-8)

    def test_matches_networkx(self, backend):
        g = gb.generators.erdos_renyi_gnp(40, 0.1, seed=2)
        G = nx.DiGraph()
        G.add_nodes_from(range(40))
        rr, cc, _ = g.to_lists()
        G.add_edges_from(zip(rr, cc))
        expected = nx.pagerank(G, alpha=0.85, tol=1e-12, max_iter=500)
        r = pagerank(g, tol=1e-14, max_iter=500)
        for v in range(40):
            assert r.get(v, 0.0) == pytest.approx(expected[v], abs=1e-9)

    def test_dangling_nodes_handled(self, backend):
        # Vertex 2 has no out-edges.
        g = gb.Matrix.from_lists([0, 1], [1, 2], [1.0, 1.0], 3, 3)
        r = pagerank(g)
        assert float(np.sum(r.to_dense())) == pytest.approx(1.0, abs=1e-8)
        assert r.get(2) > r.get(0)

    def test_star_center_dominates(self, backend):
        g = gb.generators.star_graph(10)
        r = pagerank(g)
        center = r.get(0)
        assert all(center > r.get(i) for i in range(1, 10))

    def test_symmetric_graph_uniform_on_regular(self, backend):
        g = gb.generators.cycle_graph(8)
        r = pagerank(g)
        vals = r.to_dense()
        np.testing.assert_allclose(vals, 1.0 / 8, atol=1e-10)

    def test_damping_validation(self, backend):
        g = gb.generators.cycle_graph(4)
        with pytest.raises(gb.InvalidValueError):
            pagerank(g, damping=1.5)

    def test_empty_graph(self, backend):
        assert pagerank(gb.Matrix.sparse(gb.FP64, 0, 0)).size == 0

    def test_row_stochastic_rows_sum_to_one(self, backend):
        g = gb.generators.erdos_renyi_gnp(20, 0.2, seed=3)
        m, dangling = row_stochastic(g)
        sums = m.to_dense().sum(axis=1)
        deg = g.row_degrees()
        for i in range(20):
            if deg[i]:
                assert sums[i] == pytest.approx(1.0)
            else:
                assert dangling.get(i) == 1.0


class TestTriangles:
    def test_single_triangle(self, backend):
        g = gb.generators.complete_graph(3)
        assert triangle_count(g) == 1

    def test_k4_has_four(self, backend):
        assert triangle_count(gb.generators.complete_graph(4)) == 4

    def test_triangle_free(self, backend):
        assert triangle_count(gb.generators.cycle_graph(5)) == 0
        assert triangle_count(gb.generators.star_graph(6)) == 0

    def test_matches_networkx(self, backend):
        g = gb.generators.erdos_renyi_gnp(40, 0.15, seed=5)
        G = to_nx_undirected(g)
        assert triangle_count(g) == sum(nx.triangles(G).values()) // 3

    def test_per_vertex_matches_networkx(self, backend):
        g = gb.generators.erdos_renyi_gnp(30, 0.2, seed=6)
        G = to_nx_undirected(g)
        per = triangles_per_vertex(g)
        expected = nx.triangles(G)
        for v in range(30):
            assert per.get(v, 0) == expected[v]

    def test_undirected_fixture(self, backend, undirected_graph):
        assert triangle_count(undirected_graph) == 1

    def test_requires_square(self, backend):
        with pytest.raises(gb.InvalidValueError):
            triangle_count(gb.Matrix.sparse(gb.FP64, 2, 3))


class TestConnectedComponents:
    def test_two_components(self, backend):
        g = gb.Matrix.from_lists(
            [0, 1, 2, 3], [1, 0, 3, 2], [1.0] * 4, 5, 5
        )
        labels = connected_components(g)
        assert labels.get(0) == labels.get(1) == 0
        assert labels.get(2) == labels.get(3) == 2
        assert labels.get(4) == 4
        assert component_count(g) == 3

    def test_fully_connected(self, backend):
        g = gb.generators.complete_graph(6)
        assert component_count(g) == 1

    def test_empty_graph_all_singletons(self, backend):
        g = gb.Matrix.sparse(gb.FP64, 4, 4)
        assert component_count(g) == 4

    def test_matches_networkx(self, backend):
        g = gb.generators.erdos_renyi_gnp(60, 0.03, seed=7)
        G = to_nx_undirected(g)
        assert component_count(g) == nx.number_connected_components(G)

    def test_labels_are_component_minima(self, backend):
        g = gb.generators.erdos_renyi_gnp(30, 0.1, seed=8)
        G = to_nx_undirected(g)
        labels = connected_components(g)
        for comp in nx.connected_components(G):
            m = min(comp)
            for v in comp:
                assert labels.get(v) == m

    def test_path_graph_single_component(self, backend):
        g = gb.generators.path_graph(50)
        labels = connected_components(g)
        assert np.all(labels.to_dense(-1) == 0)
