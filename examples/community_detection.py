#!/usr/bin/env python
"""Community structure: label propagation, modularity, cores, coloring.

Builds a planted-partition-style graph (dense cliques, sparse bridges),
recovers the communities with synchronous label propagation, scores them
with Newman modularity, and contrasts with the k-core/k-truss cohesion view
and a greedy coloring (e.g. for register-allocation-style scheduling).

Run:  python examples/community_detection.py
"""

import numpy as np

import repro as gb
from repro.algorithms import (
    core_numbers,
    greedy_color,
    ktruss,
    label_propagation,
    modularity,
    verify_coloring,
)


def planted_partition(n_blocks=4, block=12, bridges=3, seed=0):
    """Cliquish blocks joined by a few random bridge edges."""
    rng = np.random.default_rng(seed)
    n = n_blocks * block
    rows, cols = [], []
    for b in range(n_blocks):
        base = b * block
        for i in range(block):
            for j in range(i + 1, block):
                if rng.random() < 0.85:
                    rows.append(base + i)
                    cols.append(base + j)
    for _ in range(bridges * n_blocks):
        b1, b2 = rng.choice(n_blocks, 2, replace=False)
        rows.append(int(b1) * block + int(rng.integers(block)))
        cols.append(int(b2) * block + int(rng.integers(block)))
    from repro.generators import finalize_edges

    return finalize_edges(
        n, np.array(rows, dtype=np.int64), np.array(cols, dtype=np.int64), seed=seed
    )


def main() -> None:
    g = planted_partition()
    n = g.nrows
    print(f"planted-partition graph: {n} vertices, {g.nvals // 2} edges")

    # --- communities ---------------------------------------------------------
    labels = label_propagation(g)
    lv = labels.to_dense(-1)
    communities = [np.flatnonzero(lv == c) for c in np.unique(lv)]
    q = modularity(g, labels)
    print(f"\nlabel propagation found {len(communities)} communities, Q = {q:.3f}")
    for k, comm in enumerate(sorted(communities, key=len, reverse=True)[:6]):
        print(f"  community {k}: {len(comm)} members (e.g. {comm[:6].tolist()})")

    # --- cohesion view ---------------------------------------------------------
    cores = core_numbers(g)
    cd = cores.to_dense(0)
    print(f"\ncore numbers: max k-core = {cd.max()}, "
          f"{np.count_nonzero(cd == cd.max())} vertices in it")
    t4 = ktruss(g, 4)
    print(f"4-truss: {t4.nvals // 2} edges survive")

    # --- conflict-free scheduling via coloring -----------------------------------
    colors = greedy_color(g, seed=7)
    assert verify_coloring(g, colors)
    ncolors = len(set(colors.to_dense(-1).tolist()))
    print(f"\ngreedy coloring: {ncolors} rounds schedule all {n} vertices "
          "with no conflicting neighbours")

    # --- the same pipeline, simulated GPU ----------------------------------------
    with gb.use_backend("cuda_sim"):
        labels_gpu = label_propagation(g)
    assert labels_gpu == labels
    dev = gb.gpu.get_device()
    print(f"\n(cuda_sim agrees; {dev.profiler.launch_count} kernel launches, "
          f"{dev.profiler.kernel_time_us:.0f} simulated µs)")


if __name__ == "__main__":
    main()
