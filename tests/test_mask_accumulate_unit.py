"""Container-level unit tests for mask evaluation and the merge pipeline.

These test :mod:`repro.core.mask` and :mod:`repro.core.accumulate` directly
(below the frontend), covering boundary cases the operation-level tests
can't isolate: empty masks, empty outputs, all-false masks, and the exact
positions semantics of complements.
"""

import numpy as np
import pytest

from repro.containers.csr import CSRMatrix
from repro.containers.sparsevec import SparseVector
from repro.core.accumulate import merge_matrix, merge_vector
from repro.core.descriptor import DEFAULT, Descriptor
from repro.core.mask import flat_keys, matrix_mask_at, vector_mask_at
from repro.core.operators import MAX, PLUS
from repro.exceptions import DimensionMismatchError
from repro.types import BOOL, FP64, INT64


def sv(size, idx, vals, typ=FP64):
    return SparseVector(size, np.asarray(idx, dtype=np.int64), np.asarray(vals, dtype=typ.dtype), typ)


class TestVectorMaskAt:
    def test_no_mask_allows_everything(self):
        out = vector_mask_at(None, DEFAULT, np.array([0, 5, 9]))
        assert out.all()

    def test_valued_mask(self):
        mask = sv(10, [2, 5], [True, False], BOOL)
        out = vector_mask_at(mask, DEFAULT, np.array([0, 2, 5]))
        np.testing.assert_array_equal(out, [False, True, False])

    def test_structural_mask(self):
        mask = sv(10, [2, 5], [True, False], BOOL)
        out = vector_mask_at(mask, Descriptor(structural_mask=True), np.array([0, 2, 5]))
        np.testing.assert_array_equal(out, [False, True, True])

    def test_complement(self):
        mask = sv(10, [2], [True], BOOL)
        out = vector_mask_at(mask, Descriptor(complement_mask=True), np.array([1, 2, 3]))
        np.testing.assert_array_equal(out, [True, False, True])

    def test_empty_mask_all_false(self):
        mask = SparseVector.empty(10, BOOL)
        out = vector_mask_at(mask, DEFAULT, np.array([0, 1]))
        assert not out.any()

    def test_empty_mask_complement_all_true(self):
        mask = SparseVector.empty(10, BOOL)
        out = vector_mask_at(mask, Descriptor(complement_mask=True), np.array([0, 1]))
        assert out.all()

    def test_empty_positions(self):
        mask = sv(10, [1], [True], BOOL)
        out = vector_mask_at(mask, DEFAULT, np.empty(0, dtype=np.int64))
        assert out.size == 0

    def test_numeric_mask_values_truthiness(self):
        mask = sv(10, [0, 1], [0.0, 2.5], FP64)
        out = vector_mask_at(mask, DEFAULT, np.array([0, 1]))
        np.testing.assert_array_equal(out, [False, True])


class TestMatrixMaskAt:
    def test_flat_keys(self):
        keys = flat_keys(np.array([0, 1]), np.array([2, 0]), ncols=3)
        np.testing.assert_array_equal(keys, [2, 3])

    def test_membership(self):
        mask = CSRMatrix.from_dense(np.array([[0, 1], [1, 0]], dtype=bool))
        keys = np.array([0, 1, 2, 3])
        out = matrix_mask_at(mask, DEFAULT, keys)
        np.testing.assert_array_equal(out, [False, True, True, False])

    def test_no_mask(self):
        out = matrix_mask_at(None, DEFAULT, np.array([7]))
        assert out.all()


class TestMergeVector:
    def test_plain_replace_all(self):
        c = sv(5, [0, 4], [9.0, 9.0])
        t = sv(5, [1], [1.0])
        out = merge_vector(c, t)
        assert list(out.indices) == [1]

    def test_accum_union(self):
        c = sv(5, [0, 1], [10.0, 20.0])
        t = sv(5, [1, 2], [1.0, 2.0])
        out = merge_vector(c, t, accum=PLUS)
        assert list(out.indices) == [0, 1, 2]
        np.testing.assert_array_equal(out.values, [10.0, 21.0, 2.0])

    def test_accum_max(self):
        c = sv(3, [0], [5.0])
        t = sv(3, [0], [3.0])
        out = merge_vector(c, t, accum=MAX)
        assert out.values[0] == 5.0

    def test_empty_t_with_accum_keeps_c(self):
        c = sv(3, [1], [7.0])
        t = SparseVector.empty(3, FP64)
        out = merge_vector(c, t, accum=PLUS)
        assert out.get(1) == 7.0

    def test_empty_t_no_accum_clears(self):
        c = sv(3, [1], [7.0])
        t = SparseVector.empty(3, FP64)
        out = merge_vector(c, t)
        assert out.nvals == 0

    def test_all_false_mask_keeps_c(self):
        c = sv(3, [1], [7.0])
        t = sv(3, [0], [1.0])
        mask = sv(3, [0], [False], BOOL)
        out = merge_vector(c, t, mask=mask)
        assert out.to_dense(0).tolist() == [0.0, 7.0, 0.0]

    def test_replace_without_mask_equals_plain(self):
        c = sv(3, [1], [7.0])
        t = sv(3, [0], [1.0])
        a = merge_vector(c, t, desc=Descriptor(replace=True))
        b = merge_vector(c, t)
        assert list(a.indices) == list(b.indices)

    def test_output_domain_is_c_domain(self):
        c = SparseVector.empty(3, INT64)
        t = sv(3, [0], [2.9])
        out = merge_vector(c, t)
        assert out.type is INT64 and out.get(0) == 2

    def test_size_mismatch_rejected(self):
        with pytest.raises(DimensionMismatchError):
            merge_vector(SparseVector.empty(3, FP64), SparseVector.empty(4, FP64))

    def test_mask_size_mismatch_rejected(self):
        with pytest.raises(DimensionMismatchError):
            merge_vector(
                SparseVector.empty(3, FP64),
                SparseVector.empty(3, FP64),
                mask=SparseVector.empty(4, BOOL),
            )


class TestMergeMatrix:
    def mat(self, dense, typ=FP64):
        return CSRMatrix.from_dense(np.asarray(dense, dtype=typ.dtype))

    def test_plain_write(self):
        c = self.mat([[1.0, 0], [0, 0]])
        t = self.mat([[0, 2.0], [0, 0]])
        out = merge_matrix(c, t)
        assert out.get(0, 0) is None and out.get(0, 1) == 2.0

    def test_accum(self):
        c = self.mat([[1.0, 0], [0, 4.0]])
        t = self.mat([[2.0, 3.0], [0, 0]])
        out = merge_matrix(c, t, accum=PLUS)
        assert out.get(0, 0) == 3.0
        assert out.get(0, 1) == 3.0
        assert out.get(1, 1) == 4.0

    def test_masked_replace(self):
        c = self.mat([[1.0, 1.0], [1.0, 1.0]])
        t = self.mat([[5.0, 5.0], [5.0, 5.0]])
        mask = CSRMatrix.from_dense(np.array([[1, 0], [0, 0]], dtype=bool))
        out = merge_matrix(c, t, mask=mask, desc=Descriptor(replace=True))
        assert out.nvals == 1 and out.get(0, 0) == 5.0

    def test_empty_everything(self):
        c = CSRMatrix.empty(2, 3, FP64)
        t = CSRMatrix.empty(2, 3, FP64)
        out = merge_matrix(c, t)
        assert out.nvals == 0 and out.shape == (2, 3)
        out.validate()

    def test_result_canonical(self):
        c = self.mat([[0, 1.0, 0], [2.0, 0, 0]])
        t = self.mat([[3.0, 0, 4.0], [0, 0, 5.0]])
        out = merge_matrix(c, t, accum=PLUS)
        out.validate()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DimensionMismatchError):
            merge_matrix(CSRMatrix.empty(2, 2, FP64), CSRMatrix.empty(2, 3, FP64))
