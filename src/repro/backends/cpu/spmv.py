"""Vectorized sparse matrix–vector kernels (mxv / vxm).

Two strategies, the classic GBTL-CUDA/direction-optimizing pair:

- **pull** (row gather): for each output row, intersect the matrix row with
  the input vector.  Cost ~O(nnz(A)) independent of frontier size, but a
  non-complemented mask restricts the computed rows — the pull-BFS win.
- **push** (column scatter): expand only the rows of the (logically
  transposed) matrix selected by the input vector's present entries, then
  sort-and-reduce by output index.  Cost ~O(Σ deg(frontier)) — the sparse
  frontier win.

Both reduce with :func:`~repro.backends.cpu.segments.segment_reduce`.  The
``flip`` flag makes one kernel serve mxv and vxm (the semiring multiply is
not commutative in general: mxv computes ``mult(A_ij, u_j)``, vxm computes
``mult(u_k, A_kj)``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...containers.csc import CSCMatrix
from ...containers.csr import CSRMatrix
from ...containers.sparsevec import SparseVector
from ...core.descriptor import DEFAULT, Descriptor
from ...core.mask import vector_mask_at
from ...core.semiring import Semiring
from ...types import GrBType
from .fastpath import dense_keyspace_ok, fast_reduce_by_key
from .segments import run_starts, segment_reduce

__all__ = [
    "row_gather_product",
    "scatter_product",
    "choose_direction",
    "mask_row_candidates",
    "mask_pull_rows",
    "take_ranges",
]


def take_ranges(indptr: np.ndarray, rows: np.ndarray) -> tuple:
    """Gather index array covering ``indices[indptr[r]:indptr[r+1]]`` per row.

    Returns ``(take, lens)`` where ``take`` indexes the flat nnz arrays and
    ``lens[k]`` is the run length of ``rows[k]``.  This is the standard
    "expand variable-length slices without a Python loop" trick.
    """
    lo = indptr[rows]
    lens = indptr[rows + 1] - lo
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), lens
    seg_starts = np.concatenate(([0], np.cumsum(lens)[:-1]))
    take = np.arange(total, dtype=np.int64) + np.repeat(lo - seg_starts, lens)
    return take, lens


def mask_row_candidates(
    mask: Optional[SparseVector], desc: Descriptor
) -> Optional[np.ndarray]:
    """Rows a non-complemented mask allows, or None when pruning is unsafe."""
    if mask is None or desc.complement_mask:
        return None
    if desc.structural_mask:
        return mask.indices
    return mask.indices[mask.values.astype(bool)]


def mask_pull_rows(
    mask: Optional[SparseVector], desc: Descriptor, nrows: int
) -> Optional[np.ndarray]:
    """Rows worth computing in a pull kernel under the effective mask.

    Extends :func:`mask_row_candidates` to complemented masks: there, the
    allowed rows are everything *except* the mask's fired positions (BFS's
    visited set).  Complement pruning only pays once the excluded set is a
    meaningful fraction of the graph, so small complements return None
    (compute all rows) rather than an almost-complete row list.
    """
    if mask is None:
        return None
    if not desc.complement_mask:
        return mask_row_candidates(mask, desc)
    truthy = (
        mask.indices
        if desc.structural_mask
        else mask.indices[mask.values.astype(bool)]
    )
    if truthy.size * 4 < nrows:
        return None
    allowed = np.ones(nrows, dtype=bool)
    allowed[truthy] = False
    return np.flatnonzero(allowed).astype(np.int64)


def _products(a_vals: np.ndarray, u_vals: np.ndarray, semiring: Semiring, flip: bool):
    if flip:
        return semiring.mult(u_vals, a_vals)
    return semiring.mult(a_vals, u_vals)


def row_gather_product(
    csr: CSRMatrix,
    u: SparseVector,
    semiring: Semiring,
    out_type: GrBType,
    flip: bool = False,
    rows: Optional[np.ndarray] = None,
) -> SparseVector:
    """Pull kernel: ``t[i] = ⊕_j mult'(csr[i,j], u[j])`` over selected rows."""
    n_out = csr.nrows
    if csr.nvals == 0 or u.nvals == 0:
        return SparseVector.empty(n_out, out_type)
    if rows is None:
        flat_idx = csr.indices
        flat_vals = csr.values
        row_ids = np.repeat(np.arange(csr.nrows, dtype=np.int64), csr.row_degrees())
    else:
        rows = np.asarray(rows, dtype=np.int64)
        take, lens = take_ranges(csr.indptr, rows)
        flat_idx = csr.indices[take]
        flat_vals = csr.values[take]
        row_ids = np.repeat(rows, lens)
    if u.nvals == u.size:
        # Dense-vector fast path: every column is present, so the membership
        # probe collapses to a direct gather — the win that makes pull the
        # right direction for dense frontiers (Fig. 5).
        prods = np.asarray(_products(flat_vals, u.values[flat_idx], semiring, flip))
        keys = row_ids
    else:
        # Membership of each stored column in u (both sides sorted per row;
        # u global-sorted, so searchsorted per element is exact).
        pos = np.searchsorted(u.indices, flat_idx)
        pos_c = np.minimum(pos, u.indices.size - 1)
        hit = u.indices[pos_c] == flat_idx
        hit &= pos < u.indices.size
        if not hit.any():
            return SparseVector.empty(n_out, out_type)
        prods = np.asarray(
            _products(flat_vals[hit], u.values[pos[hit]], semiring, flip)
        )
        keys = row_ids[hit]  # already sorted: CSR order is row-major
    starts = run_starts(keys)
    out_vals = segment_reduce(prods, starts, semiring.add, out_type.dtype)
    return SparseVector(n_out, keys[starts], out_vals, out_type)


def scatter_product(
    csr: CSRMatrix,
    u: SparseVector,
    semiring: Semiring,
    out_type: GrBType,
    flip: bool = False,
    mask: Optional[SparseVector] = None,
    desc: Descriptor = DEFAULT,
) -> SparseVector:
    """Push kernel: ``t[j] = ⊕_{k present in u} mult'(csr[k,j], u[k])``.

    When ``mask``/``desc`` are given, expanded entries whose output position
    the effective mask forbids are dropped *before* the multiply and the
    reduction (mask fusion).  This commutes with the write pipeline: a T
    entry at a mask-false position never survives the merge, with or without
    accumulate/replace, so pre-filtering is always semantics-preserving —
    and for BFS it means products into the visited set are never formed.

    The reduction is sort-free for standard additive monoids (see
    :mod:`.fastpath`); unknown monoids keep the stable-sort + segment-reduce
    path, which is bit-identical.
    """
    n_out = csr.ncols
    if csr.nvals == 0 or u.nvals == 0:
        return SparseVector.empty(n_out, out_type)
    take, lens = take_ranges(csr.indptr, u.indices)
    if take.size == 0:
        return SparseVector.empty(n_out, out_type)
    cols = csr.indices[take]
    a_vals = csr.values[take]
    u_vals = np.repeat(u.values, lens)
    if mask is not None:
        keep = vector_mask_at(mask, desc, cols)
        if not keep.all():
            cols = cols[keep]
            a_vals = a_vals[keep]
            u_vals = u_vals[keep]
        if cols.size == 0:
            return SparseVector.empty(n_out, out_type)
    prods = np.asarray(_products(a_vals, u_vals, semiring, flip))
    if dense_keyspace_ok(n_out, cols.size):
        fast = fast_reduce_by_key(cols, prods, n_out, semiring.add)
        if fast is not None:
            keys, vals = fast
            return SparseVector(
                n_out, keys, vals.astype(out_type.dtype, copy=False), out_type
            )
    order = np.argsort(cols, kind="stable")  # gbsan: ok(argsort) -- generic fallback; hot shapes take the sort-free fastpath
    keys = cols[order]
    prods = prods[order]
    starts = run_starts(keys)
    out_vals = segment_reduce(prods, starts, semiring.add, out_type.dtype)
    return SparseVector(n_out, keys[starts], out_vals, out_type)


def choose_direction(
    a: CSRMatrix,
    u: SparseVector,
    mask: Optional[SparseVector],
    desc: Descriptor,
    direction: str,
    csc_available: bool,
    push_indptr: Optional[np.ndarray] = None,
    pull_indptr: Optional[np.ndarray] = None,
) -> str:
    """Resolve "auto" into "push" or "pull".

    Push wins when the frontier is small: its cost is the frontier's total
    degree, versus pull's cost of nnz(A) (or the masked-row subset).  Auto
    never picks push when it would require materialising a transpose first.

    ``push_indptr`` is the row-pointer array of the matrix the push kernel
    would expand (Aᵀ for mxv, A for vxm).  When provided, the push cost is
    the *exact* frontier degree sum ``Σ (indptr[u_k+1] − indptr[u_k])`` — an
    O(frontier) probe.  R-MAT frontiers are heavy-tailed, so the old
    ``u.nvals · avg_deg`` estimate was routinely off by an order of
    magnitude in either direction.  ``pull_indptr`` likewise sharpens the
    masked pull cost to the exact degree sum of the mask-allowed rows.
    Without the hints the avg-degree estimate is kept.
    """
    if direction in ("push", "pull"):
        return direction
    if not csc_available:
        return "pull"
    n = max(a.nrows, 1)
    avg_deg = a.nvals / n
    if push_indptr is not None and u.nvals:
        deg = push_indptr[u.indices + 1] - push_indptr[u.indices]
        # Sort-free push no longer pays the old 4× sort penalty; keep a 2×
        # margin for its scattered (atomic-like) writes.
        push_cost = float(deg.sum()) * 2.0
    else:
        push_cost = u.nvals * max(avg_deg, 1.0) * 4.0
    # The mask covers the output vector, whose length is the pull-side row
    # count (a.nrows for mxv, a.ncols for vxm) — so size the complement off it.
    rows = mask_pull_rows(mask, desc, mask.size) if mask is not None else None
    if rows is None:
        pull_cost = float(a.nvals)
    elif pull_indptr is not None:
        pull_cost = float((pull_indptr[rows + 1] - pull_indptr[rows]).sum())
    else:
        pull_cost = rows.size * max(avg_deg, 1.0)
    return "push" if push_cost < pull_cost else "pull"
