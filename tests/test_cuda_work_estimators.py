"""cuda_sim work estimators: FLOPs/bytes/divergence respond to structure."""

import numpy as np
import pytest

import repro as gb
from repro.backends.cuda_sim.kernels import (
    SPGEMM_HASH,
    SPMSV_PUSH,
    SPMV_CSR_VECTOR,
    TRANSPOSE_COUNTSORT,
    combine_coalescing,
)
from repro.containers.csr import CSRMatrix
from repro.containers.sparsevec import SparseVector
from repro.core.semiring import PLUS_TIMES
from repro.gpu import loadbalance
from repro.types import FP64


def dense_csr(n, density, seed=0):
    rng = np.random.default_rng(seed)
    m = rng.random((n, n))
    m[m < 1 - density] = 0
    return CSRMatrix.from_dense(m)


def full_vec(n):
    return SparseVector.full(n, 1.0, FP64)


class TestSpmvWork:
    def test_flops_two_per_nnz(self):
        a = dense_csr(32, 0.2)
        w = SPMV_CSR_VECTOR.work(a, full_vec(32), PLUS_TIMES, FP64, False, None)
        assert w.flops == 2.0 * a.nvals

    def test_row_restriction_reduces_work(self):
        a = dense_csr(64, 0.2)
        full = SPMV_CSR_VECTOR.work(a, full_vec(64), PLUS_TIMES, FP64, False, None)
        sub = SPMV_CSR_VECTOR.work(
            a, full_vec(64), PLUS_TIMES, FP64, False, np.arange(8)
        )
        assert sub.flops < full.flops
        assert sub.bytes_read < full.bytes_read
        assert sub.threads < full.threads

    def test_short_rows_raise_divergence(self):
        uniform_short = CSRMatrix.from_dense(np.eye(64))  # rows of length 1
        # Native warp-per-row wastes 31 of 32 lanes on length-1 rows.
        with loadbalance.forced("vector"):
            w = SPMV_CSR_VECTOR.work(
                uniform_short, full_vec(64), PLUS_TIMES, FP64, False, None
            )
        assert w.divergence == pytest.approx(32.0)
        # The lane balancer routes uniformly-short rows to the scalar lane,
        # where equal-length rows have no warp serialisation at all.
        w_auto = SPMV_CSR_VECTOR.work(
            uniform_short, full_vec(64), PLUS_TIMES, FP64, False, None
        )
        assert w_auto.divergence == pytest.approx(1.0)

    def test_run_matches_semantics(self):
        a = dense_csr(16, 0.3)
        u = full_vec(16)
        out = SPMV_CSR_VECTOR.run(a, u, PLUS_TIMES, FP64, False, None)
        np.testing.assert_allclose(
            out.to_dense(0), a.to_dense() @ u.to_dense(), atol=1e-9
        )


class TestSpmsvWork:
    def test_work_scales_with_frontier_degree(self):
        a = dense_csr(64, 0.2, seed=1)
        small = SparseVector(64, [0], [1.0], FP64)
        big = SparseVector(64, np.arange(32), np.ones(32), FP64)
        w_small = SPMSV_PUSH.work(a, small, PLUS_TIMES, FP64, False)
        w_big = SPMSV_PUSH.work(a, big, PLUS_TIMES, FP64, False)
        assert w_big.flops > w_small.flops

    def test_skewed_frontier_rows_diverge(self):
        # One huge row + tiny rows in the frontier: thread-per-row skew.
        d = np.zeros((64, 64))
        d[0, :] = 1.0
        d[1:33, 0] = 1.0
        a = CSRMatrix.from_dense(d)
        u = SparseVector(64, np.arange(33), np.ones(33), FP64)
        with loadbalance.forced("scalar"):
            w = SPMSV_PUSH.work(a, u, PLUS_TIMES, FP64, False)
        assert w.divergence > 5.0
        # The balancer bins the hub row away from the singletons, cutting
        # the warp-serialisation penalty.
        w_auto = SPMSV_PUSH.work(a, u, PLUS_TIMES, FP64, False)
        assert w_auto.divergence < w.divergence


class TestSpgemmWork:
    def test_flops_count_partial_products(self):
        a = CSRMatrix.from_dense(np.ones((8, 8)))
        w = SPGEMM_HASH.work(a, a, PLUS_TIMES, FP64)
        assert w.flops == 2.0 * 8 * 8 * 8  # n³ products for dense

    def test_empty_matrix_zero_flops(self):
        a = CSRMatrix.empty(8, 8, FP64)
        w = SPGEMM_HASH.work(a, a, PLUS_TIMES, FP64)
        assert w.flops == 0.0


class TestTransposeWork:
    def test_bytes_scale_with_nnz(self):
        small = dense_csr(32, 0.1)
        big = dense_csr(32, 0.5)
        assert (
            TRANSPOSE_COUNTSORT.work(big).bytes_read
            > TRANSPOSE_COUNTSORT.work(small).bytes_read
        )


class TestCoalescingCombination:
    def test_weighted_mean(self):
        total, f = combine_coalescing([(300.0, "sequential"), (100.0, "atomic")])
        assert total == 400.0
        assert f == pytest.approx((300 * 1 + 100 * 32) / 400)

    def test_pure_classes(self):
        _, f_seq = combine_coalescing([(10.0, "sequential")])
        _, f_at = combine_coalescing([(10.0, "atomic")])
        assert f_seq == 1.0 and f_at == 32.0


class TestEndToEndTiming:
    def test_skewed_graph_slower_than_uniform_same_nnz(self):
        """The signature divergence result: same nnz, different time."""
        from repro.backends.dispatch import get_backend, use_backend
        from repro.core import operations as ops
        from repro.gpu.device import get_device, reset_device

        n = 512
        # Uniform: every row has 8 entries.
        rng = np.random.default_rng(3)
        cols = np.concatenate([rng.choice(n, 8, replace=False) for _ in range(n)])
        rows = np.repeat(np.arange(n), 8)
        uniform = gb.Matrix.from_lists(rows, cols, np.ones(rows.size), n, n)
        # Skewed: same nnz concentrated on a few huge rows + singletons.
        hub_rows = np.repeat(np.arange(8), (n * 8 - (n - 8)) // 8)
        tail_rows = np.arange(8, n)
        s_rows = np.concatenate([hub_rows, tail_rows])
        s_cols = rng.integers(0, n, s_rows.size)
        from repro.core.operators import FIRST

        skewed = gb.Matrix.from_lists(
            s_rows, s_cols, np.ones(s_rows.size), n, n, dup=FIRST
        )

        def sim_time(g, lane=None):
            reset_device()
            get_backend("cuda_sim").evict_all()
            u = gb.Vector.full(1.0, n, gb.FP64)
            import contextlib

            ctx = loadbalance.forced(lane) if lane else contextlib.nullcontext()
            with ctx, use_backend("cuda_sim"):
                w = gb.Vector.sparse(gb.FP64, n)
                ops.mxv(w, g, u, PLUS_TIMES, direction="pull")
            return get_device().profiler.kernel_time_us

        # Warp-per-row: the skewed graph's many length-1 rows waste lanes.
        assert sim_time(skewed, "vector") > sim_time(uniform, "vector")
        # Lane binning claws back most of that skew penalty.
        assert sim_time(skewed) < sim_time(skewed, "vector")
