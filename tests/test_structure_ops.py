"""diag / diag_extract / concat / split structural ops."""

import numpy as np
import pytest

import repro as gb
from repro.core.structure import concat, diag, diag_extract, split


class TestDiag:
    def test_main_diagonal(self):
        v = gb.Vector.from_lists([0, 2], [1.0, 3.0], 3)
        m = diag(v)
        assert m.shape == (3, 3)
        assert m.get(0, 0) == 1.0 and m.get(2, 2) == 3.0 and m.nvals == 2

    def test_super_diagonal(self):
        v = gb.Vector.from_lists([1], [5.0], 2)
        m = diag(v, 1)
        assert m.shape == (3, 3) and m.get(1, 2) == 5.0

    def test_sub_diagonal(self):
        v = gb.Vector.from_lists([0], [7.0], 2)
        m = diag(v, -2)
        assert m.shape == (4, 4) and m.get(2, 0) == 7.0

    def test_empty_vector(self):
        m = diag(gb.Vector.sparse(gb.FP64, 3))
        assert m.nvals == 0 and m.shape == (3, 3)

    def test_roundtrip_with_extract(self):
        v = gb.Vector.from_lists([0, 1, 3], [1.0, 2.0, 4.0], 5)
        for k in (-2, 0, 3):
            assert diag_extract(diag(v, k), k) == v


class TestDiagExtract:
    def test_main(self):
        a = gb.Matrix.from_dense(np.arange(9.0).reshape(3, 3))
        d = diag_extract(a)
        np.testing.assert_array_equal(d.to_dense(), [0.0, 4.0, 8.0])
        assert d.nvals == 2  # the 0.0 at (0,0) was implicit in from_dense

    def test_rectangular(self):
        a = gb.Matrix.from_dense(np.ones((2, 5)))
        assert diag_extract(a, 0).size == 2
        assert diag_extract(a, 3).size == 2
        assert diag_extract(a, -1).size == 1

    def test_values(self):
        a = gb.Matrix.from_lists([0, 1], [1, 2], [5.0, 6.0], 3, 3)
        d = diag_extract(a, 1)
        assert d.to_lists() == ([0, 1], [5.0, 6.0])


class TestConcatSplit:
    def test_concat_2x2(self):
        a = gb.Matrix.from_dense(np.ones((2, 2)))
        b = gb.Matrix.from_dense(2 * np.ones((2, 3)))
        c = gb.Matrix.from_dense(3 * np.ones((1, 2)))
        d = gb.Matrix.from_dense(4 * np.ones((1, 3)))
        m = concat([[a, b], [c, d]])
        assert m.shape == (3, 5)
        assert m.get(0, 0) == 1.0 and m.get(0, 4) == 2.0
        assert m.get(2, 0) == 3.0 and m.get(2, 4) == 4.0
        m.container.validate()

    def test_concat_type_promotion(self):
        a = gb.Matrix.from_lists([0], [0], [1], 1, 1, gb.INT32)
        b = gb.Matrix.from_lists([0], [0], [1.5], 1, 1, gb.FP64)
        m = concat([[a, b]])
        assert m.type is gb.FP64

    def test_concat_validation(self):
        a = gb.Matrix.sparse(gb.FP64, 2, 2)
        bad = gb.Matrix.sparse(gb.FP64, 3, 2)
        with pytest.raises(gb.DimensionMismatchError):
            concat([[a, bad]])
        with pytest.raises(gb.InvalidValueError):
            concat([])
        with pytest.raises(gb.InvalidValueError):
            concat([[a], [a, a]])

    def test_split_roundtrip(self, rng):
        from .conftest import random_dense_matrix

        A = random_dense_matrix(rng, 6, 7)
        m = gb.Matrix.from_dense(A)
        tiles = split(m, [2, 4], [3, 3, 1])
        assert len(tiles) == 2 and len(tiles[0]) == 3
        assert concat(tiles) == m

    def test_split_validation(self):
        m = gb.Matrix.sparse(gb.FP64, 4, 4)
        with pytest.raises(gb.DimensionMismatchError):
            split(m, [2, 1], [4])
        with pytest.raises(gb.InvalidValueError):
            split(m, [5, -1], [4])

    def test_split_empty_tiles(self):
        m = gb.Matrix.identity(4)
        tiles = split(m, [2, 2], [2, 2])
        assert tiles[0][1].nvals == 0 and tiles[1][0].nvals == 0
        assert tiles[0][0].nvals == 2 and tiles[1][1].nvals == 2

    def test_concat_block_diagonal_algebra(self):
        # concat of diagonal blocks behaves like a direct sum under mxm.
        a = gb.Matrix.from_dense(np.array([[2.0]]))
        z = gb.Matrix.sparse(gb.FP64, 1, 1)
        m = concat([[a, z], [z, a]])
        sq = m @ m
        assert sq.get(0, 0) == 4.0 and sq.get(1, 1) == 4.0 and sq.nvals == 2
