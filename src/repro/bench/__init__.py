"""Benchmark substrate: timing harness, workload suite, table rendering."""

from .harness import Measurement, simulated_gpu_time, time_operation
from .tables import check_ordering, format_series, format_table, speedup
from .workloads import WORKLOADS, get_workload, random_frontier, workload_names

__all__ = [
    "Measurement",
    "simulated_gpu_time",
    "time_operation",
    "check_ordering",
    "format_series",
    "format_table",
    "speedup",
    "WORKLOADS",
    "get_workload",
    "random_frontier",
    "workload_names",
]
