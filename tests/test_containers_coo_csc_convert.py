"""COO staging, CSC view, and format conversions."""

import numpy as np
import pytest

from repro.containers import convert
from repro.containers.coo import COO, dedupe_triplets
from repro.containers.csc import CSCMatrix
from repro.containers.csr import CSRMatrix
from repro.core.operators import MIN, PLUS, SECOND
from repro.exceptions import IndexOutOfBoundsError, InvalidValueError
from repro.types import FP64


class TestCOO:
    def test_basic(self):
        coo = COO(3, 3, [0, 2], [1, 2], [1.0, 2.0])
        assert coo.nvals == 2 and coo.type is FP64

    def test_bounds_checked(self):
        with pytest.raises(IndexOutOfBoundsError):
            COO(2, 2, [2], [0], [1.0])
        with pytest.raises(IndexOutOfBoundsError):
            COO(2, 2, [0], [-1], [1.0])

    def test_length_mismatch(self):
        with pytest.raises(InvalidValueError):
            COO(2, 2, [0, 1], [0], [1.0])

    def test_negative_dims(self):
        with pytest.raises(InvalidValueError):
            COO(-2, 2, [], [], [])

    def test_deduped_sorts(self):
        coo = COO(3, 3, [2, 0], [0, 1], [9.0, 1.0]).deduped(None)
        np.testing.assert_array_equal(coo.rows, [0, 2])

    def test_deduped_combines_plus(self):
        coo = COO(2, 2, [0, 0, 0], [1, 1, 1], [1.0, 2.0, 4.0]).deduped(PLUS)
        assert coo.nvals == 1 and coo.vals[0] == 7.0

    def test_deduped_second_keeps_input_order(self):
        coo = COO(2, 2, [0, 0], [1, 1], [1.0, 9.0]).deduped(SECOND)
        assert coo.vals[0] == 9.0

    def test_duplicates_without_dup_raise(self):
        with pytest.raises(InvalidValueError):
            COO(2, 2, [0, 0], [1, 1], [1.0, 2.0]).deduped(None)


class TestDedupeTriplets:
    def test_no_dups_passthrough(self):
        r, c, v = dedupe_triplets(
            np.array([1, 0]), np.array([0, 1]), np.array([2.0, 1.0]), None
        )
        np.testing.assert_array_equal(r, [0, 1])
        np.testing.assert_array_equal(v, [1.0, 2.0])

    def test_min_dup(self):
        r, c, v = dedupe_triplets(
            np.array([0, 0, 1]),
            np.array([0, 0, 1]),
            np.array([5.0, 3.0, 7.0]),
            MIN,
        )
        np.testing.assert_array_equal(v, [3.0, 7.0])

    def test_empty(self):
        r, c, v = dedupe_triplets(
            np.array([], dtype=np.int64), np.array([], dtype=np.int64), np.array([]), None
        )
        assert r.size == 0


class TestCSC:
    @pytest.fixture
    def m(self):
        return CSRMatrix.from_dense(
            np.array([[1.0, 0, 2.0], [0, 3.0, 0], [4.0, 0, 0]])
        )

    def test_shape_swapped_back(self, m):
        csc = CSCMatrix.from_csr(m)
        assert csc.shape == m.shape

    def test_col_access(self, m):
        csc = CSCMatrix.from_csr(m)
        rows, vals = csc.col(0)
        np.testing.assert_array_equal(rows, [0, 2])
        np.testing.assert_array_equal(vals, [1.0, 4.0])

    def test_col_degrees(self, m):
        csc = CSCMatrix.from_csr(m)
        np.testing.assert_array_equal(csc.col_degrees(), [2, 1, 1])

    def test_roundtrip(self, m):
        back = CSCMatrix.from_csr(m).to_csr()
        np.testing.assert_array_equal(back.to_dense(), m.to_dense())

    def test_tcsr_is_transpose(self, m):
        csc = CSCMatrix.from_csr(m)
        np.testing.assert_array_equal(csc.tcsr.to_dense(), m.to_dense().T)


class TestConvert:
    def test_build_matrix(self):
        m = convert.build_matrix(2, 3, [0, 1], [2, 0], [1.0, 2.0])
        assert m.get(0, 2) == 1.0

    def test_build_vector(self):
        v = convert.build_vector(5, [4, 0], [1.0, 2.0])
        assert v.get(4) == 1.0

    def test_matrix_row_as_vector(self):
        m = CSRMatrix.from_dense(np.array([[0, 5.0, 0], [1.0, 0, 0]]))
        v = convert.matrix_row_as_vector(m, 0)
        assert v.size == 3 and v.get(1) == 5.0

    def test_vector_as_row_matrix(self):
        v = convert.build_vector(4, [1, 3], [1.0, 2.0])
        m = convert.vector_as_row_matrix(v)
        assert m.shape == (1, 4) and m.get(0, 3) == 2.0

    def test_vector_as_col_matrix(self):
        v = convert.build_vector(4, [1, 3], [1.0, 2.0])
        m = convert.vector_as_col_matrix(v)
        assert m.shape == (4, 1) and m.get(3, 0) == 2.0
        m.validate()

    def test_sparse_bitmap_roundtrip(self):
        v = convert.build_vector(6, [2, 5], [1.0, 2.0])
        bv = convert.sparse_to_bitmap(v)
        back = convert.bitmap_to_sparse(bv)
        np.testing.assert_array_equal(back.indices, v.indices)
