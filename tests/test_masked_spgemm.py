"""Masked SpGEMM pruning: correctness across backends and mask variants."""

import numpy as np
import pytest

import repro as gb
from repro.backends.cpu.spgemm import mask_keys_for, spgemm_masked_esr
from repro.backends.dispatch import use_backend
from repro.core import operations as ops
from repro.core.descriptor import DEFAULT, STRUCTURE_MASK, Descriptor
from repro.core.semiring import PLUS_PAIR, PLUS_TIMES

from .conftest import random_dense_matrix


def run_on(backend, fn):
    with use_backend(backend):
        return fn()


class TestMaskedMxmOracle:
    @pytest.mark.parametrize("desc", [DEFAULT, STRUCTURE_MASK, Descriptor(complement_mask=True)], ids=str)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_reference(self, desc, seed):
        rng = np.random.default_rng(seed)
        A = random_dense_matrix(rng, 12, 12, density=0.3)
        B = random_dense_matrix(rng, 12, 12, density=0.3)
        M = random_dense_matrix(rng, 12, 12, density=0.25) != 0
        # Give the mask mixed truth values.
        mvals = rng.random(int(M.sum())) > 0.3
        mr, mc = np.nonzero(M)
        mask = gb.Matrix.from_lists(mr, mc, mvals, 12, 12, gb.BOOL)
        a, b = gb.Matrix.from_dense(A), gb.Matrix.from_dense(B)

        def go():
            c = gb.Matrix.from_lists([0, 5], [0, 5], [100.0, 200.0], 12, 12)
            return ops.mxm(c, a, b, PLUS_PAIR, mask=mask, desc=desc)

        expected = run_on("reference", go)
        for backend in ("cpu", "cuda_sim"):
            assert run_on(backend, go) == expected, f"{backend} {desc}"

    def test_masked_with_accum(self):
        rng = np.random.default_rng(3)
        A = random_dense_matrix(rng, 10, 10, density=0.3)
        mask = gb.Matrix.from_lists([0, 1], [1, 2], [True, True], 10, 10, gb.BOOL)
        a = gb.Matrix.from_dense(A)
        from repro.core.operators import PLUS

        def go():
            c = gb.Matrix.from_lists([0], [1], [5.0], 10, 10)
            return ops.mxm(c, a, a, PLUS_TIMES, mask=mask, accum=PLUS)

        expected = run_on("reference", go)
        for backend in ("cpu", "cuda_sim"):
            got = run_on(backend, go)
            assert got.nvals == expected.nvals
            gc, ec = got.container, expected.container
            np.testing.assert_array_equal(gc.indices, ec.indices)
            np.testing.assert_allclose(gc.values, ec.values, rtol=1e-12)


class TestMaskKeysFor:
    def test_structural_keeps_all(self):
        m = gb.Matrix.from_lists([0, 1], [1, 0], [True, False], 2, 2, gb.BOOL)
        keys = mask_keys_for(m.container, STRUCTURE_MASK)
        np.testing.assert_array_equal(keys, [1, 2])

    def test_valued_filters_false(self):
        m = gb.Matrix.from_lists([0, 1], [1, 0], [True, False], 2, 2, gb.BOOL)
        keys = mask_keys_for(m.container, DEFAULT)
        np.testing.assert_array_equal(keys, [1])


class TestSpgemmMaskedEsr:
    def test_equals_filtered_full_product(self):
        rng = np.random.default_rng(5)
        A = random_dense_matrix(rng, 15, 15, density=0.3)
        a = gb.Matrix.from_dense(A).container
        full = (A != 0).astype(float)
        mask_keys = np.sort(
            rng.choice(15 * 15, size=40, replace=False).astype(np.int64)
        )
        from repro.types import FP64

        got = spgemm_masked_esr(a, a, PLUS_TIMES, FP64, mask_keys)
        dense = A @ A
        for i in range(15):
            for j in range(15):
                k = i * 15 + j
                v = got.get(i, j)
                if k in set(mask_keys.tolist()) and dense[i, j] != 0:
                    # Entry present iff some partial product existed there.
                    pass  # value check below
                if v is not None:
                    assert k in set(mask_keys.tolist())
                    assert v == pytest.approx(dense[i, j])

    def test_empty_mask_empty_result(self):
        a = gb.Matrix.from_dense(np.ones((4, 4))).container
        from repro.types import FP64

        out = spgemm_masked_esr(a, a, PLUS_TIMES, FP64, np.empty(0, dtype=np.int64))
        assert out.nvals == 0

    def test_triangle_count_uses_masked_path(self):
        # End-to-end: triangle counting still exact with the pruning.
        g = gb.generators.erdos_renyi_gnp(40, 0.2, seed=9)
        import networkx as nx

        G = nx.Graph()
        G.add_nodes_from(range(40))
        r, c, _ = g.to_lists()
        G.add_edges_from(zip(r, c))
        expected = sum(nx.triangles(G).values()) // 3
        for backend in ("cpu", "cuda_sim"):
            with use_backend(backend):
                assert gb.algorithms.triangle_count(g) == expected
