"""Cross-backend oracle: cpu and cuda_sim must match reference bit-for-bit.

Randomised operation-level comparisons over many seeds and several
semirings — the test that guards GBTL's core claim (same answer on every
backend).
"""

import numpy as np
import pytest

import repro as gb
from repro.backends.dispatch import use_backend
from repro.core import operations as ops
from repro.core.monoid import MAX_MONOID, MIN_MONOID, PLUS_MONOID
from repro.core.operators import MAX, MIN, PLUS, TIMES
from repro.core.semiring import (
    LOR_LAND,
    MAX_SECOND,
    MIN_FIRST,
    MIN_PLUS,
    PLUS_PAIR,
    PLUS_TIMES,
)

from repro.testing.equivalence import assert_same, product_exact, reduce_exact

from .conftest import random_dense_matrix, random_dense_vector

SEMIRINGS = [PLUS_TIMES, MIN_PLUS, LOR_LAND, MIN_FIRST, MAX_SECOND, PLUS_PAIR]
FAST_BACKENDS = ["cpu", "cuda_sim"]


def run_on(backend_name, fn):
    with use_backend(backend_name):
        return fn()


@pytest.mark.parametrize("semiring", SEMIRINGS, ids=lambda s: s.name)
@pytest.mark.parametrize("seed", [0, 1, 2])
class TestProductsMatchReference:
    def test_mxv(self, semiring, seed):
        rng = np.random.default_rng(seed)
        A = random_dense_matrix(rng, 12, 10, density=0.35)
        u = random_dense_vector(rng, 10, density=0.5)
        a, v = gb.Matrix.from_dense(A), gb.Vector.from_dense(u)

        def go():
            w = gb.Vector.sparse(gb.FP64, 12)
            return ops.mxv(w, a, v, semiring)

        expected = run_on("reference", go)
        for b in FAST_BACKENDS:
            got = run_on(b, go)
            assert_same(got, expected, exact=product_exact(semiring))

    def test_vxm(self, semiring, seed):
        rng = np.random.default_rng(seed + 100)
        A = random_dense_matrix(rng, 10, 12, density=0.35)
        u = random_dense_vector(rng, 10, density=0.5)
        a, v = gb.Matrix.from_dense(A), gb.Vector.from_dense(u)

        def go():
            w = gb.Vector.sparse(gb.FP64, 12)
            return ops.vxm(w, v, a, semiring)

        expected = run_on("reference", go)
        for b in FAST_BACKENDS:
            assert_same(run_on(b, go), expected, exact=product_exact(semiring))

    def test_mxm(self, semiring, seed):
        rng = np.random.default_rng(seed + 200)
        A = random_dense_matrix(rng, 8, 9, density=0.3)
        B = random_dense_matrix(rng, 9, 7, density=0.3)
        a, b_ = gb.Matrix.from_dense(A), gb.Matrix.from_dense(B)

        def go():
            c = gb.Matrix.sparse(gb.FP64, 8, 7)
            return ops.mxm(c, a, b_, semiring)

        expected = run_on("reference", go)
        for b in FAST_BACKENDS:
            assert_same(run_on(b, go), expected, exact=product_exact(semiring))


@pytest.mark.parametrize("op", [PLUS, MIN, MAX, TIMES], ids=lambda o: o.name)
@pytest.mark.parametrize("seed", [0, 1])
class TestEwiseMatchReference:
    def test_vector_add_mult(self, op, seed):
        rng = np.random.default_rng(seed + 300)
        u = gb.Vector.from_dense(random_dense_vector(rng, 30, density=0.4))
        v = gb.Vector.from_dense(random_dense_vector(rng, 30, density=0.4))

        def go_add():
            w = gb.Vector.sparse(gb.FP64, 30)
            return ops.ewise_add(w, u, v, op)

        def go_mult():
            w = gb.Vector.sparse(gb.FP64, 30)
            return ops.ewise_mult(w, u, v, op)

        for go in (go_add, go_mult):
            expected = run_on("reference", go)
            for b in FAST_BACKENDS:
                assert run_on(b, go) == expected

    def test_matrix_add_mult(self, op, seed):
        rng = np.random.default_rng(seed + 400)
        a = gb.Matrix.from_dense(random_dense_matrix(rng, 9, 8, density=0.3))
        b_ = gb.Matrix.from_dense(random_dense_matrix(rng, 9, 8, density=0.3))

        def go_add():
            c = gb.Matrix.sparse(gb.FP64, 9, 8)
            return ops.ewise_add(c, a, b_, op)

        def go_mult():
            c = gb.Matrix.sparse(gb.FP64, 9, 8)
            return ops.ewise_mult(c, a, b_, op)

        for go in (go_add, go_mult):
            expected = run_on("reference", go)
            for b in FAST_BACKENDS:
                assert run_on(b, go) == expected


@pytest.mark.parametrize("monoid", [PLUS_MONOID, MIN_MONOID, MAX_MONOID], ids=lambda m: m.name)
class TestReduceMatchReference:
    def test_vector_scalar(self, monoid):
        rng = np.random.default_rng(7)
        u = gb.Vector.from_dense(random_dense_vector(rng, 40))

        def go():
            return ops.reduce(u, monoid)

        expected = run_on("reference", go)
        for b in FAST_BACKENDS:
            assert_same(run_on(b, go), expected, exact=reduce_exact(monoid))

    def test_matrix_rows(self, monoid):
        rng = np.random.default_rng(8)
        a = gb.Matrix.from_dense(random_dense_matrix(rng, 12, 9, density=0.3))

        def go():
            w = gb.Vector.sparse(gb.FP64, 12)
            return ops.reduce_to_vector(w, a, monoid)

        expected = run_on("reference", go)
        for b in FAST_BACKENDS:
            assert_same(run_on(b, go), expected, exact=reduce_exact(monoid))


class TestMaskedOpsMatchReference:
    """Mask pruning in fast backends must not change results."""

    @pytest.mark.parametrize("desc", [
        gb.DEFAULT,
        gb.STRUCTURE_MASK,
        gb.COMP_MASK,
        gb.REPLACE,
        gb.COMP_STRUCTURE_MASK,
    ], ids=str)
    def test_masked_mxv(self, desc):
        rng = np.random.default_rng(9)
        a = gb.Matrix.from_dense(random_dense_matrix(rng, 15, 15, density=0.3))
        u = gb.Vector.from_dense(random_dense_vector(rng, 15, density=0.4))
        midx = rng.choice(15, size=6, replace=False)
        mask = gb.Vector.from_lists(
            np.sort(midx), rng.random(6) > 0.4, 15, gb.BOOL
        )

        def go():
            w = gb.Vector.from_lists([1, 2], [100.0, 200.0], 15)
            return ops.mxv(w, a, u, PLUS_TIMES, mask=mask, desc=desc)

        expected = run_on("reference", go)
        for b in FAST_BACKENDS:
            assert run_on(b, go) == expected, f"{b} with {desc}"

    @pytest.mark.parametrize("direction", ["push", "pull", "auto"])
    def test_masked_directions(self, direction):
        rng = np.random.default_rng(10)
        a = gb.Matrix.from_dense(random_dense_matrix(rng, 20, 20, density=0.2))
        u = gb.Vector.from_dense(random_dense_vector(rng, 20, density=0.2))
        mask = gb.Vector.from_lists([0, 5, 10], [True] * 3, 20, gb.BOOL)

        def go():
            w = gb.Vector.sparse(gb.FP64, 20)
            return ops.mxv(w, a, u, MIN_PLUS, mask=mask, direction=direction)

        expected = run_on("reference", go)
        for b in FAST_BACKENDS:
            assert run_on(b, go) == expected


class TestAlgorithmsMatchAcrossBackends:
    """End-to-end: whole algorithms agree across backends."""

    @pytest.fixture(scope="class")
    def graph(self):
        return gb.generators.rmat(scale=7, edge_factor=6, seed=11, weighted=True)

    def test_bfs(self, graph):
        expected = run_on("reference", lambda: gb.algorithms.bfs_levels(graph, 0))
        for b in FAST_BACKENDS:
            assert run_on(b, lambda: gb.algorithms.bfs_levels(graph, 0)) == expected

    def test_sssp(self, graph):
        expected = run_on("reference", lambda: gb.algorithms.sssp(graph, 0))
        for b in FAST_BACKENDS:
            assert run_on(b, lambda: gb.algorithms.sssp(graph, 0)) == expected

    def test_triangle_count(self, graph):
        expected = run_on("reference", lambda: gb.algorithms.triangle_count(graph))
        for b in FAST_BACKENDS:
            assert run_on(b, lambda: gb.algorithms.triangle_count(graph)) == expected

    def test_connected_components(self, graph):
        expected = run_on(
            "reference", lambda: gb.algorithms.connected_components(graph)
        )
        for b in FAST_BACKENDS:
            assert (
                run_on(b, lambda: gb.algorithms.connected_components(graph))
                == expected
            )

    def test_pagerank_close(self, graph):
        # PageRank accumulates float rounding differently per backend's
        # reduction order; compare with tolerance instead of bit equality.
        expected = run_on(
            "reference", lambda: gb.algorithms.pagerank(graph, max_iter=30)
        )
        for b in FAST_BACKENDS:
            got = run_on(b, lambda: gb.algorithms.pagerank(graph, max_iter=30))
            np.testing.assert_allclose(
                got.to_dense(), expected.to_dense(), atol=1e-10
            )


def multi_sim_backend(nparts, splitter):
    from repro.backends.dispatch import get_backend

    return get_backend("multi_sim").configure(nparts=nparts, splitter=splitter)


@pytest.mark.parametrize("splitter", ["equal_rows", "degree_balanced"])
@pytest.mark.parametrize("nparts", [1, 2, 4])
class TestMultiSimMatchesReference:
    """Sharded execution must not change any algorithm's answer.

    Every algorithm below runs on the partitioned backend with zero edits
    (frontend dispatch is backend-agnostic); results are bit-identical to
    the reference backend for exact additive monoids, and bit-identical to
    cuda_sim for PageRank (both run the same pull-mode float kernels in the
    same per-row order, regardless of P).
    """

    @pytest.fixture(scope="class")
    def graph(self):
        return gb.generators.rmat(scale=7, edge_factor=6, seed=11, weighted=True)

    def test_bfs(self, graph, nparts, splitter):
        expected = run_on("reference", lambda: gb.algorithms.bfs_levels(graph, 0))
        ms = multi_sim_backend(nparts, splitter)
        assert run_on(ms, lambda: gb.algorithms.bfs_levels(graph, 0)) == expected

    def test_sssp(self, graph, nparts, splitter):
        expected = run_on("reference", lambda: gb.algorithms.sssp(graph, 0))
        ms = multi_sim_backend(nparts, splitter)
        assert run_on(ms, lambda: gb.algorithms.sssp(graph, 0)) == expected

    def test_delta_stepping(self, graph, nparts, splitter):
        expected = run_on(
            "reference", lambda: gb.algorithms.sssp_delta_stepping(graph, 0)
        )
        ms = multi_sim_backend(nparts, splitter)
        got = run_on(ms, lambda: gb.algorithms.sssp_delta_stepping(graph, 0))
        assert got == expected

    def test_triangle_count(self, graph, nparts, splitter):
        expected = run_on("reference", lambda: gb.algorithms.triangle_count(graph))
        ms = multi_sim_backend(nparts, splitter)
        assert run_on(ms, lambda: gb.algorithms.triangle_count(graph)) == expected

    def test_connected_components(self, graph, nparts, splitter):
        expected = run_on(
            "reference", lambda: gb.algorithms.connected_components(graph)
        )
        ms = multi_sim_backend(nparts, splitter)
        got = run_on(ms, lambda: gb.algorithms.connected_components(graph))
        assert got == expected

    def test_pagerank(self, graph, nparts, splitter):
        reference = run_on(
            "reference", lambda: gb.algorithms.pagerank(graph, max_iter=30)
        )
        cuda = run_on("cuda_sim", lambda: gb.algorithms.pagerank(graph, max_iter=30))
        ms = multi_sim_backend(nparts, splitter)
        got = run_on(ms, lambda: gb.algorithms.pagerank(graph, max_iter=30))
        np.testing.assert_allclose(
            got.to_dense(), reference.to_dense(), atol=1e-10
        )
        # Sharded pull runs the same per-row float kernels in the same
        # order, so against the single-device backend it is bitwise.
        assert got == cuda

    def test_mxv_products(self, graph, nparts, splitter):
        rng = np.random.default_rng(17)
        u = gb.Vector.from_dense(
            random_dense_vector(rng, graph.ncols, density=0.3)
        )
        ms = multi_sim_backend(nparts, splitter)
        for semiring in SEMIRINGS:
            def go():
                w = gb.Vector.sparse(gb.FP64, graph.nrows)
                return ops.mxv(w, graph, u, semiring)

            expected = run_on("reference", go)
            got = run_on(ms, go)
            assert_same(got, expected, exact=product_exact(semiring))
