"""Fused multi-op frontends.

GraphBLAS programs chain cheap memory-bound operations — BFS's loop body is
``assign; masked vxm``, PageRank's convergence check is ``ewise_add; apply``
— and on a real GPU each op is a kernel launch plus a full round trip of the
intermediate through device memory.  These helpers expose the chain as one
frontend call with a backend hook: backends that cannot fuse inherit a
composition default (bit-identical to the separate ops), while the
simulated CUDA backend lowers each to a single fused kernel launch, which
is where the launch-count and modeled-time wins in
:mod:`repro.gpu.profiler` output come from.
"""

from __future__ import annotations

from typing import Optional

from ..backends.dispatch import current_backend
from ..exceptions import DimensionMismatchError
from ..lazy import schedule as _lz
from .accumulate import merge_matrix, merge_vector
from .descriptor import DEFAULT, Descriptor
from .matrix import Matrix
from .operators import BinaryOp, UnaryOp
from .semiring import Semiring
from .vector import Vector

__all__ = ["ewise_apply", "frontier_step"]


def _require(cond: bool, what: str, expected, actual) -> None:
    if not cond:
        raise DimensionMismatchError(what, expected=expected, actual=actual)


def ewise_apply(
    out,
    a,
    b,
    binop: BinaryOp,
    unop: UnaryOp,
    union: bool = True,
    mask=None,
    accum: Optional[BinaryOp] = None,
    desc: Descriptor = DEFAULT,
):
    """``out<mask> accum= unop(a (∪|∩) b)`` — elementwise combine + map, fused.

    Equivalent to ``ewise_add``/``ewise_mult`` into ``out`` followed by
    ``apply(out, out, unop)`` with the same mask/accum/desc on both — the
    common "difference then abs" convergence idiom.
    """
    be = current_backend()
    if isinstance(out, Vector):
        _require(a.size == b.size, "ewise input sizes", a.size, b.size)
        _require(out.size == a.size, "output size", a.size, out.size)
        if mask is not None:
            _require(mask.size == out.size, "mask shape", (out.size,), (mask.size,))

        def run(inp, params):
            x, y = inp["a"], inp["b"]
            if params.get("sink"):
                x = be.sink_restrict(x, inp.get("mask"))
                y = be.sink_restrict(y, inp.get("mask"))
            t = be.ewise_apply_vector(x, y, binop, unop, union)
            return merge_vector(inp["out"], t, inp.get("mask"), accum, desc)

        return _lz.emit(
            "ewise_apply_v",
            run,
            {
                "a": _lz.arg(a),
                "b": _lz.arg(b),
                "mask": _lz.arg_mask(mask),
                "out": _lz.out_arg(out, mask, accum),
            },
            {
                "binop": binop,
                "unop": unop,
                "union": union,
                "trivial": mask is None and accum is None,
                "accum": accum,
                "desc": desc,
            },
            (out,),
        )
    _require(a.shape == b.shape, "ewise input shapes", a.shape, b.shape)
    _require(out.shape == a.shape, "output shape", a.shape, out.shape)
    t = be.ewise_apply_matrix(a.container, b.container, binop, unop, union)
    mc = mask.container if mask is not None else None
    return out._replace(merge_matrix(out.container, t, mc, accum, desc))


def frontier_step(
    levels: Vector,
    frontier: Vector,
    g: Matrix,
    value,
    semiring: Semiring,
    desc: Descriptor,
    direction: str = "auto",
):
    """One fused BFS expansion step, mutating ``levels`` and ``frontier``.

    Semantically ``assign_scalar(levels, value, indices=frontier.indices)``
    then ``vxm(frontier, frontier, g, semiring, mask=levels, desc=desc)`` —
    but dispatched as a single backend call so a fusing backend can run the
    level write, the masked product, and the frontier merge in one kernel.
    """
    _require(g.nrows == g.ncols, "square adjacency", g.nrows, g.ncols)
    _require(frontier.size == g.nrows, "frontier size", g.nrows, frontier.size)
    _require(levels.size == g.nrows, "levels size", g.nrows, levels.size)
    be = current_backend()
    csc = g.csc()

    def run(inp, params):
        return be.frontier_step(
            inp["levels"],
            inp["frontier"],
            inp["a"],
            value,
            semiring,
            desc,
            params["direction"],
            csc,
        )

    _lz.emit(
        "frontier_step",
        run,
        {
            "levels": _lz.arg(levels),
            "frontier": _lz.arg(frontier),
            "a": g.container,
        },
        {"direction": direction, "semiring": semiring, "desc": desc},
        (levels, frontier),
    )
    return levels, frontier
