"""k-core decomposition via iterated degree filtering.

The k-core is the maximal subgraph where every vertex has degree ≥ k inside
the subgraph.  One GraphBLAS round computes surviving degrees (row reduce of
the induced pattern) and drops under-degree vertices with a masked extract;
iterate to fixpoint.  :func:`core_numbers` peels k = 1, 2, ... to label every
vertex with its coreness — the standard peeling formulation.
"""

from __future__ import annotations

import numpy as np

from ..core import operations as ops
from ..core.assign import assign_scalar
from ..core.matrix import Matrix
from ..core.monoid import PLUS_MONOID
from ..core.operators import ONE, VALUEGE
from ..core.vector import Vector
from ..exceptions import InvalidValueError
from ..types import INT64

__all__ = ["kcore", "core_numbers"]


def _induced_degrees(g: Matrix, alive: Vector) -> Vector:
    """Degrees within the subgraph induced by the ``alive`` vertex set."""
    from ..core.semiring import PLUS_SECOND

    # deg[i] = Σ_j A[i,j]·alive[j] over (PLUS, SECOND) with alive values 1.
    deg = Vector.sparse(INT64, g.nrows)
    ops.mxv(deg, g, alive, PLUS_SECOND)
    # Rows of dead vertices must not count.
    out = Vector.sparse(INT64, g.nrows)
    from ..core.descriptor import STRUCTURE_MASK
    from ..core.operators import IDENTITY

    ops.apply(out, deg, IDENTITY, mask=alive, desc=STRUCTURE_MASK)
    return out


def kcore(g: Matrix, k: int) -> Vector:
    """BOOL vector marking the vertices of the k-core (possibly empty).

    ``g`` must be a symmetric adjacency matrix; values are ignored.
    """
    if k < 0:
        raise InvalidValueError(f"k must be nonnegative, got {k}")
    if g.nrows != g.ncols:
        raise InvalidValueError(f"adjacency must be square, got {g.shape}")
    n = g.nrows
    alive = Vector.full(1, n, INT64)
    while True:
        deg = _induced_degrees(g, alive)
        survivors = Vector.sparse(INT64, n)
        ops.select(survivors, deg, VALUEGE, thunk=k)
        from ..core.operators import ONE as _ONE

        next_alive = Vector.sparse(INT64, n)
        ops.apply(next_alive, survivors, _ONE)
        if next_alive.nvals == alive.nvals:
            break
        alive = next_alive
        if not alive.nvals:
            break
    from ..types import BOOL

    out = Vector.sparse(BOOL, n)
    ops.apply(out, alive, ONE)
    return out


def core_numbers(g: Matrix) -> Vector:
    """Coreness of every vertex (INT64, dense; isolated vertices get 0).

    Peels cores k = 1, 2, … until the graph empties; each vertex's core
    number is the largest k whose k-core contains it.
    """
    if g.nrows != g.ncols:
        raise InvalidValueError(f"adjacency must be square, got {g.shape}")
    n = g.nrows
    out = Vector.from_lists(
        np.arange(n, dtype=np.int64), np.zeros(n, dtype=np.int64), n, INT64
    )
    k = 1
    while True:
        members = kcore(g, k)
        if not members.nvals:
            break
        assign_scalar(out, k, indices=members.indices_array())
        k += 1
    return out
