"""Simulated device memory.

The allocator hands out :class:`DeviceBuffer` objects backed by host NumPy
arrays (the simulation computes on the host) while accounting for capacity
and traffic exactly as a real ``cudaMalloc``/``cudaMemcpy`` sequence would:
allocations count against the device's global memory, and every host↔device
copy is recorded so transfer time can be charged by the cost model.

Buffers are freed explicitly or by garbage collection (a finalizer returns
the bytes to the pool), mirroring RAII device vectors in CUSP/GBTL-CUDA.

The allocator additionally keeps **size-class free-lists** (a memory pool in
the cnmem / RMM style): freed blocks are binned by power-of-two size class
and satisfy later requests without a fresh ``cudaMalloc``.  Pool hits are
counted separately from allocations — ``alloc_count`` remains the number of
real (pool-missing) allocations, which is the quantity a device driver
would observe.  The pool only changes *accounting*; capacity semantics
(``in_use``/``free_bytes``) are identical with or without it.
"""

from __future__ import annotations

import weakref
from typing import Any, Dict, List, Optional

import numpy as np

from ..exceptions import DeviceOutOfMemoryError, InvalidValueError
from ..sanitizer import runtime as _gbsan

__all__ = ["DeviceBuffer", "DeviceAllocator", "MemoryStats"]

#: Freed blocks retained per size class before falling back to a real free.
_POOL_BLOCKS_PER_CLASS = 64


def _size_class(nbytes: int) -> int:
    """Power-of-two size class covering ``nbytes`` (0 maps to class 0)."""
    n = int(nbytes)
    if n <= 0:
        return 0
    return 1 << (n - 1).bit_length()


class MemoryStats:
    """Counters for allocations, pooling, and transfers."""

    __slots__ = (
        "alloc_count",
        "free_count",
        "bytes_allocated_total",
        "pool_hit_count",
        "pool_hit_bytes",
        "h2d_count",
        "h2d_bytes",
        "h2d_elided_count",
        "h2d_elided_bytes",
        "d2h_count",
        "d2h_bytes",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.alloc_count = 0
        self.free_count = 0
        self.bytes_allocated_total = 0
        self.pool_hit_count = 0
        self.pool_hit_bytes = 0
        self.h2d_count = 0
        self.h2d_bytes = 0
        self.h2d_elided_count = 0
        self.h2d_elided_bytes = 0
        self.d2h_count = 0
        self.d2h_bytes = 0

    @property
    def pool_hit_rate(self) -> float:
        """Fraction of allocation requests served from the pool."""
        total = self.alloc_count + self.pool_hit_count
        return self.pool_hit_count / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        d = {name: getattr(self, name) for name in self.__slots__}
        d["pool_hit_rate"] = round(self.pool_hit_rate, 4)
        return d


class DeviceBuffer:
    """A device allocation holding a host-side mirror array.

    ``block`` is the sanitizer's identity for the underlying pool block
    (``None`` whenever the sanitizer was off at allocation time); it travels
    through free/reuse so gbsan can detect aliased reissues and leaks.
    """

    def __init__(
        self,
        allocator: "DeviceAllocator",
        nbytes: int,
        array: np.ndarray,
        block: Optional[int] = None,
    ):
        self._allocator = allocator
        self.nbytes = int(nbytes)
        self.array = array
        self.block = block
        self._alive = True
        self._finalizer = weakref.finalize(
            self, allocator._release, self.nbytes, block
        )
        san = _gbsan.ACTIVE
        if san is not None:
            san.on_buffer_created(allocator, self)

    def free(self) -> None:
        """Explicitly return the allocation to the pool (idempotent)."""
        if self._alive:
            self._alive = False
            self._finalizer()

    @property
    def alive(self) -> bool:
        return self._alive

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "alive" if self._alive else "freed"
        return f"<DeviceBuffer {self.nbytes}B {state}>"


class DeviceAllocator:
    """Capacity-tracked, size-class-pooled allocator for the simulated device."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise InvalidValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity = int(capacity_bytes)
        self.in_use = 0
        self.stats = MemoryStats()
        # size class -> count of pooled (freed, reusable) blocks.  Blocks
        # are accounting fictions (the simulation computes on host arrays),
        # so the free-list stores counts, not storage.
        self._pool: Dict[int, int] = {}

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.in_use

    @property
    def pooled_blocks(self) -> int:
        """Total blocks currently parked in the size-class free-lists."""
        return sum(self._pool.values())

    def _reserve(self, nbytes: int) -> Optional[int]:
        """Account one allocation; returns the sanitizer's block identity."""
        if nbytes > self.free_bytes:
            raise DeviceOutOfMemoryError(nbytes, self.free_bytes)
        self.in_use += nbytes
        cls = _size_class(nbytes)
        pooled = self._pool.get(cls, 0) > 0
        if pooled:
            # Pool hit: no cudaMalloc; the request reuses a freed block.
            self._pool[cls] -= 1
            self.stats.pool_hit_count += 1
            self.stats.pool_hit_bytes += nbytes
        else:
            self.stats.alloc_count += 1
            self.stats.bytes_allocated_total += nbytes
        san = _gbsan.ACTIVE
        if san is not None:
            return san.on_reserve(self, cls, pooled)
        return None

    def _release(self, nbytes: int, block: Optional[int] = None) -> None:
        self.in_use = max(0, self.in_use - nbytes)
        self.stats.free_count += 1
        cls = _size_class(nbytes)
        pooled = self._pool.get(cls, 0) < _POOL_BLOCKS_PER_CLASS
        if pooled:
            self._pool[cls] = self._pool.get(cls, 0) + 1
        san = _gbsan.ACTIVE
        if san is not None:
            san.on_release(self, cls, block, pooled)

    def alloc(self, shape: Any, dtype: Any) -> DeviceBuffer:
        """``cudaMalloc`` analogue: uninitialised device array."""
        arr = np.empty(shape, dtype=dtype)
        block = self._reserve(arr.nbytes)
        return DeviceBuffer(self, arr.nbytes, arr, block)

    def reserve(self, nbytes: int, record_h2d: bool = False) -> DeviceBuffer:
        """Capacity-only allocation (no host mirror array).

        Used when the simulation computes on existing host arrays and only
        needs the device-memory *accounting* — e.g. the cuda_sim backend's
        resident-container tracking.  With ``record_h2d`` the bytes also
        count as upload traffic.
        """
        nbytes = int(nbytes)
        block = self._reserve(nbytes)
        if record_h2d:
            self.stats.h2d_count += 1
            self.stats.h2d_bytes += nbytes
        return DeviceBuffer(self, nbytes, np.empty(0, dtype=np.uint8), block)

    def upload(self, host_array: np.ndarray) -> DeviceBuffer:
        """``cudaMemcpy`` H2D into a fresh allocation; records traffic."""
        arr = np.ascontiguousarray(host_array)
        block = self._reserve(arr.nbytes)
        self.stats.h2d_count += 1
        self.stats.h2d_bytes += arr.nbytes
        # The simulation shares the host array (read-only by convention);
        # copying here would double host memory for zero fidelity gain.
        return DeviceBuffer(self, arr.nbytes, arr, block)

    def record_h2d_elided(self, nbytes: int) -> None:
        """Count one upload skipped because the target was clean-resident."""
        self.stats.h2d_elided_count += 1
        self.stats.h2d_elided_bytes += int(nbytes)

    def download(self, buf: DeviceBuffer) -> np.ndarray:
        """``cudaMemcpy`` D2H; records traffic and returns the host array."""
        if not buf.alive:
            raise InvalidValueError("download from freed device buffer")
        self.stats.d2h_count += 1
        self.stats.d2h_bytes += buf.nbytes
        return buf.array

    def reset(self) -> None:
        """Drop accounting and the pool (buffers already handed out keep working)."""
        self.in_use = 0
        self._pool.clear()
        self.stats.reset()
