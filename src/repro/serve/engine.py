"""Batched query execution over shared resident graphs.

The engine owns the *device side* of serving: it holds registered graphs
(which stay resident across every query — the reuse layer elides repeat
uploads), per-graph derived caches (the PPR transition matrix, the vertex
feature store), and the batched kernel paths that turn a set of coalesced
queries into a handful of launches:

- traversals (BFS / k-hop) become one
  :func:`~repro.algorithms.msbfs.bfs_levels_multi` call — k frontiers as a
  Boolean matrix, one masked ``mxm`` per level, hop-bounded when every
  query in the batch is hop-bounded;
- PPR becomes one :func:`~repro.algorithms.ppr.ppr_batch` call — k rank
  vectors as a matrix, one SpMM per iteration over the cached transition;
- feature lookups read the materialised per-vertex feature store (built on
  first touch, one masked SpGEMM, then free).

Duplicate sources inside a batch are deduplicated — Zipf traffic makes hot
sources *common*, so k queries frequently cost far fewer than k rows — and
every per-query result is sliced from the batch output on the host, which
is exactly the row a batch-of-one run would produce (see the bit-identity
notes in :mod:`repro.algorithms.ppr`).

Batch cost is read from the simulator's own accounting (kernel + transfer
time on ``cuda_sim``, cluster makespan on ``multi_sim``), so latency and
QPS numbers downstream are deterministic, not wall-clock noise.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..algorithms.msbfs import bfs_levels_multi
from ..algorithms.ppr import ppr_batch, ppr_transition
from ..algorithms.triangles import triangles_per_vertex
from ..backends.dispatch import get_backend, use_backend
from ..core.matrix import Matrix
from ..exceptions import InvalidValueError
from .queries import FeatureQuery, KHopQuery, PprQuery, Query, QueryResult

__all__ = ["GraphHandle", "ExecutionEngine"]


class GraphHandle:
    """One registered, shared, resident graph plus its derived caches.

    Caches are stamped with the container version so a mutated graph
    invalidates them the same way the reuse layer invalidates device
    residency.
    """

    def __init__(self, name: str, matrix: Matrix) -> None:
        self.name = name
        self.matrix = matrix
        self._transition: Optional[Tuple[int, Any]] = None
        self._features: Optional[Tuple[int, np.ndarray, np.ndarray]] = None

    @property
    def n(self) -> int:
        return self.matrix.nrows

    def transition(self) -> Any:
        """(M, d) for PPR, rebuilt only when the graph version moves."""
        v = self.matrix.container.version
        if self._transition is None or self._transition[0] != v:
            self._transition = (v, ppr_transition(self.matrix))
        return self._transition[1]

    def features(self) -> Tuple[np.ndarray, np.ndarray]:
        """(out_degrees, triangles) dense arrays — the feature store."""
        v = self.matrix.container.version
        if self._features is None or self._features[0] != v:
            deg = self.matrix.container.row_degrees().astype(np.float64)
            tri_v = triangles_per_vertex(self.matrix)
            tri = np.zeros(self.n)
            tri[tri_v.indices_array()] = tri_v.values_array()
            self._features = (v, deg, tri)
        return self._features[1], self._features[2]


class ExecutionEngine:
    """Runs coalesced batches on one backend and meters their device cost."""

    def __init__(self, backend: str = "cuda_sim") -> None:
        self.backend_name = backend
        self._be = get_backend(backend)
        self._graphs: Dict[str, GraphHandle] = {}

    # ------------------------------------------------------------------
    # Graph registry
    # ------------------------------------------------------------------

    def register(self, name: str, matrix: Matrix, warm: bool = False) -> GraphHandle:
        if matrix.nrows != matrix.ncols:
            raise InvalidValueError(
                f"served graphs must be square adjacencies, got {matrix.shape}"
            )
        h = GraphHandle(name, matrix)
        self._graphs[name] = h
        if warm:
            self.warm(h)
        return h

    def graph(self, name: str) -> GraphHandle:
        try:
            return self._graphs[name]
        except KeyError:
            raise KeyError(
                f"unknown graph {name!r}; registered: {sorted(self._graphs)}"
            ) from None

    def warm(self, h: GraphHandle) -> float:
        """Upload the graph and build every derived cache now.

        Returns the device time spent — setup cost the caller can report
        separately instead of taxing the first unlucky query batch.
        """
        t0 = self.busy_us()
        with use_backend(self._be):
            # A 0-hop traversal touches (and uploads) the adjacency.
            bfs_levels_multi(h.matrix, [0], max_level=0)
            h.transition()
            h.features()
        return self.busy_us() - t0

    # ------------------------------------------------------------------
    # Device-time accounting
    # ------------------------------------------------------------------

    def busy_us(self) -> float:
        """Monotone simulated busy time of this engine's backend."""
        if self.backend_name == "cuda_sim":
            from ..gpu.device import get_device

            prof = get_device().profiler
            return prof.kernel_time_us + prof.transfer_time_us
        if self.backend_name == "multi_sim":
            return float(self._be.cluster.makespan_us)
        # Real (non-simulated) backends: wall-clock microseconds.
        return time.perf_counter() * 1e6

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------

    def execute(
        self, graph: str, key: Tuple[Any, ...], queries: Sequence[Query]
    ) -> Tuple[List[QueryResult], float]:
        """Run one coalesced batch; returns (per-query results, device µs).

        ``queries`` must all share ``key`` (the coalescer guarantees it).
        Results are positionally parallel to ``queries``.
        """
        h = self.graph(graph)
        t0 = self.busy_us()
        with use_backend(self._be):
            if key[0] == "traverse":
                results = self._run_traverse(h, queries)
            elif key[0] == "ppr":
                results = self._run_ppr(h, queries, key[1], key[2])
            elif key[0] == "feature":
                results = self._run_feature(h, queries)
            else:  # pragma: no cover - defensive
                raise InvalidValueError(f"unknown batch key {key!r}")
        return results, self.busy_us() - t0

    def _run_traverse(
        self, h: GraphHandle, queries: Sequence[Query]
    ) -> List[QueryResult]:
        # Hop bound: the deepest query decides; any full BFS ⇒ fixpoint.
        max_level: Optional[int] = 0
        for q in queries:
            if isinstance(q, KHopQuery):
                if max_level is not None:
                    max_level = max(max_level, q.hops)
            else:
                max_level = None
        uniq = sorted({q.source for q in queries})
        row_of = {s: i for i, s in enumerate(uniq)}
        levels = bfs_levels_multi(h.matrix, uniq, max_level=max_level)
        csr = levels.container
        out: List[QueryResult] = []
        for q in queries:
            idx, vals = csr.row(row_of[q.source])
            if isinstance(q, KHopQuery):
                keep = vals <= q.hops
                out.append(QueryResult("khop", idx[keep].copy(), vals[keep].copy()))
            else:
                out.append(QueryResult("bfs", idx.copy(), vals.copy()))
        return out

    def _run_ppr(
        self, h: GraphHandle, queries: Sequence[Query], damping: float, iters: int
    ) -> List[QueryResult]:
        uniq = sorted({q.source for q in queries})
        row_of = {s: i for i, s in enumerate(uniq)}
        ranks = ppr_batch(
            h.matrix, uniq, damping=damping, iters=iters,
            transition=h.transition(),
        )
        csr = ranks.container
        out: List[QueryResult] = []
        for q in queries:
            idx, vals = csr.row(row_of[q.source])
            out.append(QueryResult("ppr", idx.copy(), vals.copy()))
        return out

    def _run_feature(
        self, h: GraphHandle, queries: Sequence[Query]
    ) -> List[QueryResult]:
        deg, tri = h.features()
        out: List[QueryResult] = []
        for q in queries:
            s = q.source
            out.append(
                QueryResult(
                    "feature",
                    np.array([s], dtype=np.int64),
                    np.array([deg[s], tri[s]]),
                )
            )
        return out
